(* Bechamel micro-benchmark harness: one Test.make per paper table/figure
   (Figure 5, Table 3 top/bottom), plus ablations for the Section 9
   optimizations and the interval-join integration point.

   Workloads are scaled to keep the full run in the low minutes; the
   experiment binary (bin/experiments.exe) runs the larger, closer-to-paper
   configurations and prints the comparison tables. *)

open Bechamel
open Toolkit
module M = Tkr_middleware.Middleware
module B = Tkr_baseline.Baseline
module W = Tkr_workload.Employees
module T = Tkr_workload.Tpcbih
module Q = Tkr_workload.Queries
module Ops = Tkr_engine.Ops
module Rewriter = Tkr_sqlenc.Rewriter
module Pool = Tkr_par.Pool

(* [--jobs N] sizes the worker pool of the par-ablation group (default:
   half the cores, at least 2 — enough to show scaling without pinning
   the machine) *)
let jobs =
  let rec find = function
    | "--jobs" :: n :: _ -> ( match int_of_string_opt n with Some n -> n | None -> 2)
    | _ :: rest -> find rest
    | [] -> max 2 (Domain.recommended_domain_count () / 2)
  in
  find (Array.to_list Sys.argv)

let pool = Pool.create ~jobs ()

(* ---- fixtures (built once) ---- *)

let emp_db = W.generate { (W.scaled 300) with tmax = 2500 }
let tpc_db = T.generate { T.default with scale = 0.5 }
let emp_m = M.create ~db:emp_db ()
let emp_m_literal = M.create ~options:Rewriter.literal ~db:emp_db ()

let emp_m_unfused =
  M.create
    ~options:{ Rewriter.final_coalesce_only = true; fused_split_agg = false }
    ~db:emp_db ()

let emp_m_perop =
  M.create
    ~options:{ Rewriter.final_coalesce_only = false; fused_split_agg = true }
    ~db:emp_db ()

let tpc_m = M.create ~db:tpc_db ()
let emp_m_compiled = M.create ~backend:M.Compiled ~db:emp_db ()
let emp_m_no_opt = M.create ~optimize:false ~db:emp_db ()

let seq_test m suite name =
  let p = M.prepare m (Q.lookup name suite) in
  Staged.stage (fun () -> ignore (M.run_prepared m p))

let nat_test db m suite name =
  let algebra, _ = M.snapshot_algebra m (Q.lookup name suite) in
  Staged.stage (fun () -> ignore (B.eval_coalesced B.Alignment db algebra))

(* ---- Figure 5: multiset coalescing scaling ---- *)

let fig5_tests =
  Test.make_grouped ~name:"fig5-coalescing"
    (List.map
       (fun n ->
         let t = W.coalesce_input ~n ~seed:11 ~tmax:2500 in
         Test.make
           ~name:(Printf.sprintf "%dk-rows" (n / 1000))
           (Staged.stage (fun () -> ignore (Ops.coalesce t))))
       [ 1_000; 10_000; 50_000 ])

(* ---- Table 3 (top): employee workload ---- *)

let table3_emp_tests =
  Test.make_grouped ~name:"table3-emp"
    (List.map
       (fun (name, _) -> Test.make ~name:(name ^ "-seq") (seq_test emp_m Q.employee name))
       Q.employee
    @ List.map
        (fun name ->
          Test.make ~name:(name ^ "-nat") (nat_test emp_db emp_m Q.employee name))
        [ "join-1"; "join-3"; "agg-1"; "agg-2"; "diff-1"; "diff-2" ])

(* ---- Table 3 (bottom): TPC-BiH workload ---- *)

let table3_tpc_tests =
  Test.make_grouped ~name:"table3-tpc"
    (List.map
       (fun name -> Test.make ~name:(name ^ "-seq") (seq_test tpc_m Q.tpch name))
       Q.tpch_perf_names
    @ List.map
        (fun name ->
          Test.make ~name:(name ^ "-nat") (nat_test tpc_db tpc_m Q.tpch name))
        [ "Q1"; "Q6"; "Q12" ])

(* ---- ablations (Section 9 optimizations) ---- *)

let ablation_tests =
  Test.make_grouped ~name:"ablation"
    ([
       Test.make ~name:"agg-1-optimized" (seq_test emp_m Q.employee "agg-1");
       Test.make ~name:"agg-1-unfused-agg" (seq_test emp_m_unfused Q.employee "agg-1");
       Test.make ~name:"agg-1-per-op-coalesce" (seq_test emp_m_perop Q.employee "agg-1");
       Test.make ~name:"agg-1-literal-fig4" (seq_test emp_m_literal Q.employee "agg-1");
       Test.make ~name:"join-1-optimized" (seq_test emp_m Q.employee "join-1");
       Test.make ~name:"join-1-per-op-coalesce" (seq_test emp_m_perop Q.employee "join-1");
       Test.make ~name:"join-1-compiled-backend" (seq_test emp_m_compiled Q.employee "join-1");
       Test.make ~name:"agg-1-compiled-backend" (seq_test emp_m_compiled Q.employee "agg-1");
       Test.make ~name:"join-4-no-join-reorder" (seq_test emp_m_no_opt Q.employee "join-4");
       Test.make ~name:"join-4-with-join-reorder" (seq_test emp_m Q.employee "join-4");
     ]
    @
    let salaries = Tkr_engine.Database.find emp_db "salaries" in
    let titles = Tkr_engine.Database.find emp_db "titles" in
    let module Expr = Tkr_relation.Expr in
    let pred =
      Expr.(
        And
          ( Cmp (Eq, Col 0, Col 4),
            And (Cmp (Lt, Col 2, Col 7), Cmp (Lt, Col 6, Col 3)) ))
    in
    [
      Test.make ~name:"overlap-join-hash"
        (Staged.stage (fun () -> ignore (Tkr_engine.Exec.join pred salaries titles)));
      Test.make ~name:"overlap-join-sweep"
        (Staged.stage (fun () ->
             ignore
               (Tkr_engine.Interval_join.overlap_join ~left_keys:[ 0 ]
                  ~right_keys:[ 0 ] salaries titles)));
    ])

(* ---- parallel ablations: serial vs pooled temporal operators ---- *)

let par_ablation_tests =
  let salaries = Tkr_engine.Database.find emp_db "salaries" in
  let titles = Tkr_engine.Database.find emp_db "titles" in
  let coalesce_in = W.coalesce_input ~n:50_000 ~seed:11 ~tmax:2500 in
  let sa_aggs =
    [ { Tkr_relation.Algebra.func = Tkr_relation.Agg.Count_star; agg_name = "cnt" } ]
  in
  Test.make_grouped
    ~name:(Printf.sprintf "par-j%d" jobs)
    [
      Test.make ~name:"overlap-join-sweep-par"
        (Staged.stage (fun () ->
             ignore
               (Tkr_engine.Interval_join.overlap_join ~pool ~left_keys:[ 0 ]
                  ~right_keys:[ 0 ] salaries titles)));
      Test.make ~name:"coalesce-par"
        (Staged.stage (fun () -> ignore (Ops.coalesce ~pool coalesce_in)));
      Test.make ~name:"coalesce-serial"
        (Staged.stage (fun () -> ignore (Ops.coalesce coalesce_in)));
      Test.make ~name:"split-agg-par"
        (Staged.stage (fun () ->
             ignore
               (Ops.split_agg ~pool ~group:[ 0 ] ~aggs:sa_aggs ~gap:None
                  coalesce_in)));
      Test.make ~name:"split-agg-serial"
        (Staged.stage (fun () ->
             ignore
               (Ops.split_agg ~group:[ 0 ] ~aggs:sa_aggs ~gap:None coalesce_in)));
    ]

(* ---- harness ---- *)

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

(* collected (test name, ns/run) pairs for the JSON dump *)
let collected : (string * float) list ref = ref []

let print_results results =
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) ->
          collected := (name, est) :: !collected;
          Printf.printf "%-48s %12.3f us/run\n%!" name (est /. 1000.)
      | _ -> Printf.printf "%-48s %12s\n%!" name "n/a")
    rows

(* ---- canonical JSON dump (Tkr_perf schema, BENCH_PR<n>.json) ---- *)

module Trace = Tkr_obs.Trace
module Json = Tkr_obs.Json
module Bench_result = Tkr_perf.Bench_result

(* one traced execution per employee query: per-operator counters
   (rows in/out, join strategy, coalesce groups/segments, ...), now with
   per-span GC/allocation deltas *)
let operator_traces () : Json.t =
  Json.List
    (List.map
       (fun (name, sql) ->
         let p = M.prepare emp_m sql in
         let obs = Trace.create ~gc:true () in
         ignore (M.run_prepared ~obs emp_m p);
         Json.Obj
           [
             ("query", Json.Str name);
             ("trace", Json.List (List.map Trace.to_json_value (Trace.roots obs)));
           ])
       Q.employee)

(* bechamel names tests "group/test"; the canonical schema keys on the
   same two components *)
let split_bechamel_name full =
  match String.index_opt full '/' with
  | Some i ->
      ( String.sub full 0 i,
        String.sub full (i + 1) (String.length full - i - 1) )
  | None -> ("bench", full)

let write_json path =
  let results =
    List.rev_map
      (fun (name, ns) ->
        let suite, test = split_bechamel_name name in
        Bench_result.result ~suite ~name:test ~runs:1 ns)
      !collected
  in
  Bench_result.write path
    (Bench_result.make ~source:"bench/main.ml"
       ~extra:[ ("operator_traces", operator_traces ()) ]
       results);
  Printf.printf "wrote %s\n%!" path

let () =
  let json_path =
    (* [--json PATH] overrides; the default derives the next trajectory
       name (BENCH_PR<n>.json) from the files already present *)
    let rec find = function
      | "--json" :: path :: _ -> path
      | _ :: rest -> find rest
      | [] -> Bench_result.default_filename ()
    in
    find (Array.to_list Sys.argv)
  in
  List.iter
    (fun (label, tests) ->
      Printf.printf "== %s ==\n%!" label;
      print_results (benchmark tests);
      print_newline ())
    [
      ("Figure 5: multiset coalescing", fig5_tests);
      ("Table 3 (top): employee workload", table3_emp_tests);
      ("Table 3 (bottom): TPC-BiH workload", table3_tpc_tests);
      ("Ablations (Section 9)", ablation_tests);
      (Printf.sprintf "Parallel ablations (%d jobs)" jobs, par_ablation_tests);
    ];
  write_json json_path;
  Pool.shutdown pool
