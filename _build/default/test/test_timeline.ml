open Tkr_timeline

let interval = Alcotest.testable Interval.pp Interval.equal

let test_make_valid () =
  let i = Interval.make 3 10 in
  Alcotest.(check int) "b" 3 (Interval.b i);
  Alcotest.(check int) "e" 10 (Interval.e i);
  Alcotest.(check int) "duration" 7 (Interval.duration i)

let test_make_invalid () =
  Alcotest.check_raises "empty interval" (Invalid_argument
                                            "Interval.make: need b < e, got [5, 5)")
    (fun () -> ignore (Interval.make 5 5));
  Alcotest.(check (option interval)) "make_opt empty" None (Interval.make_opt 7 3)

let test_mem () =
  let i = Interval.make 3 10 in
  Alcotest.(check bool) "start in" true (Interval.mem 3 i);
  Alcotest.(check bool) "end out" false (Interval.mem 10 i);
  Alcotest.(check bool) "before out" false (Interval.mem 2 i)

let test_overlap_adjacent () =
  let i = Interval.make 3 10 and j = Interval.make 8 16 and k = Interval.make 10 12 in
  Alcotest.(check bool) "overlap" true (Interval.overlaps i j);
  Alcotest.(check bool) "no overlap adjacent" false (Interval.overlaps i k);
  Alcotest.(check bool) "adjacent" true (Interval.adjacent i k);
  Alcotest.(check bool) "not adjacent" false (Interval.adjacent i j)

let test_intersect_union () =
  let i = Interval.make 3 10 and j = Interval.make 8 16 in
  Alcotest.(check (option interval)) "intersect" (Some (Interval.make 8 10))
    (Interval.intersect i j);
  Alcotest.(check (option interval)) "union overlap" (Some (Interval.make 3 16))
    (Interval.union i j);
  Alcotest.(check (option interval)) "union disjoint" None
    (Interval.union (Interval.make 0 2) (Interval.make 5 7));
  Alcotest.(check (option interval)) "union adjacent" (Some (Interval.make 0 7))
    (Interval.union (Interval.make 0 5) (Interval.make 5 7))

let test_subset () =
  Alcotest.(check bool) "subset" true
    (Interval.subset (Interval.make 4 6) (Interval.make 3 10));
  Alcotest.(check bool) "not subset" false
    (Interval.subset (Interval.make 4 11) (Interval.make 3 10))

let test_domain () =
  let d = Domain.make ~tmin:0 ~tmax:24 in
  Alcotest.(check int) "size" 24 (Domain.size d);
  Alcotest.(check bool) "contains 0" true (Domain.contains d 0);
  Alcotest.(check bool) "contains 23" true (Domain.contains d 23);
  Alcotest.(check bool) "not contains 24" false (Domain.contains d 24);
  Alcotest.(check (list int)) "points" [ 0; 1; 2 ]
    (Domain.points (Domain.make ~tmin:0 ~tmax:3));
  Alcotest.check_raises "invalid domain"
    (Invalid_argument "Domain.make: need tmin < tmax, got [5, 5)") (fun () ->
      ignore (Domain.make ~tmin:5 ~tmax:5))

let test_endpoints_elementary () =
  let ep = Endpoints.of_list [ 10; 3; 8; 3; 16 ] in
  Alcotest.(check (list int)) "sorted unique" [ 3; 8; 10; 16 ] (Endpoints.to_list ep);
  Alcotest.(check (list interval)) "elementary"
    [ Interval.make 3 8; Interval.make 8 10; Interval.make 10 16 ]
    (Endpoints.elementary ep);
  Alcotest.(check (list interval)) "elementary empty" [] (Endpoints.elementary (Endpoints.of_list []));
  Alcotest.(check (list interval)) "elementary singleton" []
    (Endpoints.elementary (Endpoints.of_list [ 5 ]))

let test_endpoints_closed () =
  let ep = Endpoints.of_list [ 3; 8 ] in
  Alcotest.(check (list interval)) "closed at tmax"
    [ Interval.make 3 8; Interval.make 8 24 ]
    (Endpoints.elementary_closed ~tmax:24 ep);
  Alcotest.(check (list interval)) "already at tmax"
    [ Interval.make 3 24 ]
    (Endpoints.elementary_closed ~tmax:24 (Endpoints.of_list [ 3; 24 ]))

let test_endpoints_of_intervals () =
  let ep = Endpoints.of_intervals [ Interval.make 3 10; Interval.make 8 16 ] in
  Alcotest.(check (list int)) "endpoints" [ 3; 8; 10; 16 ] (Endpoints.to_list ep)

let qcheck_union_covers =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"interval union covers both inputs"
       QCheck.(quad (int_range 0 50) (int_range 1 20) (int_range 0 50) (int_range 1 20))
       (fun (b1, d1, b2, d2) ->
         let i = Interval.make b1 (b1 + d1) and j = Interval.make b2 (b2 + d2) in
         match Interval.union i j with
         | None -> not (Interval.overlaps i j) && not (Interval.adjacent i j)
         | Some u ->
             Interval.subset i u && Interval.subset j u
             && Interval.duration u <= Interval.duration i + Interval.duration j))

let qcheck_elementary_partition =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"elementary intervals partition the span"
       QCheck.(list_of_size Gen.(int_range 2 10) (int_range 0 100))
       (fun points ->
         QCheck.assume (List.length (List.sort_uniq Int.compare points) >= 2);
         let ep = Endpoints.of_list points in
         let segs = Endpoints.elementary ep in
         let sorted = List.sort_uniq Int.compare points in
         let lo = List.hd sorted and hi = List.nth sorted (List.length sorted - 1) in
         (* contiguity and coverage *)
         let rec contiguous prev = function
           | [] -> prev = hi
           | s :: rest -> Interval.b s = prev && contiguous (Interval.e s) rest
         in
         contiguous lo segs))

let suite =
  ( "timeline",
    [
      Alcotest.test_case "interval make" `Quick test_make_valid;
      Alcotest.test_case "interval invalid" `Quick test_make_invalid;
      Alcotest.test_case "interval mem" `Quick test_mem;
      Alcotest.test_case "overlap/adjacent" `Quick test_overlap_adjacent;
      Alcotest.test_case "intersect/union" `Quick test_intersect_union;
      Alcotest.test_case "subset" `Quick test_subset;
      Alcotest.test_case "domain" `Quick test_domain;
      Alcotest.test_case "endpoints elementary" `Quick test_endpoints_elementary;
      Alcotest.test_case "endpoints closed" `Quick test_endpoints_closed;
      Alcotest.test_case "endpoints of intervals" `Quick test_endpoints_of_intervals;
      qcheck_union_covers;
      qcheck_elementary_partition;
    ] )
