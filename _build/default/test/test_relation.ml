(* Unit tests for the relation substrate: values (SQL three-valued logic,
   coercions), expressions, aggregation accumulators, schemas and generic
   K-relations (including the paper's Example 4.1). *)

open Tkr_relation
module B = Tkr_semiring.Boolean
module N = Tkr_semiring.Nat

let v = Alcotest.testable Value.pp Value.equal

(* --- values --- *)

let test_value_compare () =
  Alcotest.(check (option int)) "int vs float coercion" (Some 0)
    (Value.sql_compare (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check (option int)) "int less" (Some (-1))
    (Option.map (fun c -> compare c 0) (Value.sql_compare (Value.Int 2) (Value.Float 2.5)));
  Alcotest.(check (option int)) "null incomparable" None
    (Value.sql_compare Value.Null (Value.Int 1));
  Alcotest.check_raises "incompatible types"
    (Invalid_argument "Value.sql_compare: incompatible types (2 vs 4)")
    (fun () -> ignore (Value.sql_compare (Value.Int 1) (Value.Str "x")))

let test_value_arith () =
  Alcotest.check v "int add" (Value.Int 7) (Value.add (Value.Int 3) (Value.Int 4));
  Alcotest.check v "mixed mul" (Value.Float 7.5)
    (Value.mul (Value.Int 3) (Value.Float 2.5));
  Alcotest.check v "null propagates" Value.Null (Value.add Value.Null (Value.Int 1));
  Alcotest.check v "div by zero is null" Value.Null
    (Value.div (Value.Int 3) (Value.Int 0));
  Alcotest.check v "float div" (Value.Float 1.5)
    (Value.div (Value.Float 3.0) (Value.Int 2));
  Alcotest.check v "neg" (Value.Int (-3)) (Value.neg (Value.Int 3))

(* --- expressions --- *)

let t3 = Tuple.make [ Value.Int 10; Value.Str "abc"; Value.Null ]

let test_expr_3vl () =
  let open Expr in
  (* UNKNOWN AND FALSE = FALSE; UNKNOWN OR TRUE = TRUE *)
  let unknown = Cmp (Eq, Col 2, Const (Value.Int 1)) in
  Alcotest.check v "unknown" Value.Null (eval t3 unknown);
  Alcotest.check v "unknown and false" (Value.Bool false)
    (eval t3 (And (unknown, Const (Value.Bool false))));
  Alcotest.check v "unknown or true" (Value.Bool true)
    (eval t3 (Or (unknown, Const (Value.Bool true))));
  Alcotest.check v "not unknown" Value.Null (eval t3 (Not unknown));
  Alcotest.(check bool) "holds filters unknown" false (holds t3 unknown);
  Alcotest.check v "is null" (Value.Bool true) (eval t3 (Is_null (Col 2)))

let test_expr_like () =
  let open Expr in
  let like p s = eval (Tuple.make [ Value.Str s ]) (Like (Col 0, p)) in
  Alcotest.check v "prefix" (Value.Bool true) (like "PROMO%" "PROMO BRUSHED");
  Alcotest.check v "infix" (Value.Bool true) (like "%green%" "dark green part");
  Alcotest.check v "no match" (Value.Bool false) (like "%green%" "blue part");
  Alcotest.check v "underscore" (Value.Bool true) (like "a_c" "abc");
  Alcotest.check v "underscore strict" (Value.Bool false) (like "a_c" "abxc");
  Alcotest.check v "empty pattern" (Value.Bool false) (like "" "x");
  Alcotest.check v "double percent" (Value.Bool true) (like "%a%b%" "xxaYYb")

let test_expr_case_in () =
  let open Expr in
  let e =
    Case
      ( [ (Cmp (Gt, Col 0, Const (Value.Int 5)), Const (Value.Str "big")) ],
        Some (Const (Value.Str "small")) )
  in
  Alcotest.check v "case then" (Value.Str "big") (eval t3 e);
  Alcotest.check v "case else" (Value.Str "small")
    (eval (Tuple.make [ Value.Int 1 ]) e);
  Alcotest.check v "in list hit" (Value.Bool true)
    (eval t3 (In_list (Col 0, [ Value.Int 9; Value.Int 10 ])));
  Alcotest.check v "in list miss" (Value.Bool false)
    (eval t3 (In_list (Col 0, [ Value.Int 9 ])));
  Alcotest.check v "in list null" Value.Null
    (eval t3 (In_list (Col 2, [ Value.Int 9 ])));
  Alcotest.check v "greatest" (Value.Int 10)
    (eval t3 (Greatest (Col 0, Const (Value.Int 4))));
  Alcotest.check v "least" (Value.Int 4)
    (eval t3 (Least (Col 0, Const (Value.Int 4))))

let test_expr_cols_shift () =
  let open Expr in
  let e = And (Cmp (Eq, Col 1, Col 4), Cmp (Lt, Col 0, Const (Value.Int 3))) in
  Alcotest.(check (list int)) "cols" [ 1; 4; 0 ] (cols e);
  let shifted = shift_cols ~from:2 ~by:2 e in
  Alcotest.(check (list int)) "shifted" [ 1; 6; 0 ] (cols shifted)

let test_equi_keys () =
  let open Expr in
  let p =
    And
      ( Cmp (Eq, Col 0, Col 3),
        And (Cmp (Eq, Col 4, Col 1), Cmp (Lt, Col 2, Col 5)) )
  in
  let keys, residual = equi_keys ~left_arity:3 p in
  Alcotest.(check (list (pair int int))) "keys" [ (0, 0); (1, 1) ] keys;
  Alcotest.(check bool) "residual" true (residual <> None)

(* --- aggregation accumulators --- *)

let test_agg_acc () =
  let open Agg in
  let acc =
    List.fold_left (fun a x -> step a x) empty
      [ Value.Int 4; Value.Null; Value.Int 2; Value.Int 6 ]
  in
  Alcotest.check v "count(*)" (Value.Int 4) (final Count_star acc);
  Alcotest.check v "count(x)" (Value.Int 3) (final (Count (Expr.Col 0)) acc);
  Alcotest.check v "sum" (Value.Int 12) (final (Sum (Expr.Col 0)) acc);
  Alcotest.check v "min" (Value.Int 2) (final (Min (Expr.Col 0)) acc);
  Alcotest.check v "max" (Value.Int 6) (final (Max (Expr.Col 0)) acc);
  Alcotest.check v "avg" (Value.Float 4.0) (final (Avg (Expr.Col 0)) acc)

let test_agg_empty_and_combine () =
  let open Agg in
  Alcotest.check v "count over empty" (Value.Int 0) (final Count_star empty);
  Alcotest.check v "sum over empty" Value.Null (final (Sum (Expr.Col 0)) empty);
  Alcotest.check v "avg over empty" Value.Null (final (Avg (Expr.Col 0)) empty);
  (* combine = running both halves *)
  let xs = [ Value.Int 1; Value.Int 5; Value.Null; Value.Int 3 ] in
  let whole = List.fold_left (fun a x -> step a x) empty xs in
  let h1 = List.fold_left (fun a x -> step a x) empty [ Value.Int 1; Value.Int 5 ] in
  let h2 = List.fold_left (fun a x -> step a x) empty [ Value.Null; Value.Int 3 ] in
  let merged = combine h1 h2 in
  List.iter
    (fun f -> Alcotest.check v "combine" (final f whole) (final f merged))
    [ Count_star; Count (Expr.Col 0); Sum (Expr.Col 0); Min (Expr.Col 0);
      Max (Expr.Col 0); Avg (Expr.Col 0) ]

let test_agg_multiplicity () =
  let open Agg in
  let acc = step ~mult:3 empty (Value.Int 5) in
  Alcotest.check v "count x3" (Value.Int 3) (final Count_star acc);
  Alcotest.check v "sum x3" (Value.Int 15) (final (Sum (Expr.Col 0)) acc);
  Alcotest.check v "min unaffected" (Value.Int 5) (final (Min (Expr.Col 0)) acc);
  (* string values with multiplicity: min/max fine, sum stays NULL *)
  let sacc = step ~mult:2 empty (Value.Str "b") in
  Alcotest.check v "string max" (Value.Str "b") (final (Max (Expr.Col 0)) sacc);
  Alcotest.check v "string sum is null" Value.Null (final (Sum (Expr.Col 0)) sacc)

(* --- schema resolution --- *)

let schema =
  Schema.make
    [
      Schema.attr "w.name" Value.TStr;
      Schema.attr "w.skill" Value.TStr;
      Schema.attr "a.mach" Value.TStr;
      Schema.attr "a.skill" Value.TStr;
    ]

let test_schema_resolution () =
  Alcotest.(check (option int)) "unique suffix" (Some 0) (Schema.find_opt schema "name");
  Alcotest.(check (option int)) "qualified" (Some 3) (Schema.find_opt schema "a.skill");
  Alcotest.(check (option int)) "unknown" None (Schema.find_opt schema "nope");
  Alcotest.check_raises "ambiguous" (Schema.Ambiguous "skill") (fun () ->
      ignore (Schema.find_opt schema "skill"))

(* --- K-relations: Example 4.1 --- *)

module NR = Krel.MakeMonus (N)

let test_example_41 () =
  let works_schema =
    Schema.make [ Schema.attr "name" Value.TStr; Schema.attr "skill" Value.TStr ]
  in
  let assign_schema =
    Schema.make [ Schema.attr "mach" Value.TStr; Schema.attr "skill" Value.TStr ]
  in
  let works =
    NR.of_list works_schema
      [
        (Tuple.make [ Value.Str "Pete"; Value.Str "SP" ], 1);
        (Tuple.make [ Value.Str "Bob"; Value.Str "SP" ], 1);
        (Tuple.make [ Value.Str "Alice"; Value.Str "NS" ], 1);
      ]
  in
  let assign =
    NR.of_list assign_schema
      [
        (Tuple.make [ Value.Str "M1"; Value.Str "SP" ], 4);
        (Tuple.make [ Value.Str "M2"; Value.Str "NS" ], 5);
      ]
  in
  let joined =
    NR.join (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Col 3)) works assign
  in
  let result =
    NR.project [ Expr.Col 2 ]
      (Schema.make [ Schema.attr "mach" Value.TStr ])
      joined
  in
  (* M1 with multiplicity 1*4 + 1*4 = 8, M2 with 5*1 = 5 *)
  Alcotest.(check int) "M1 = 8" 8 (NR.annot result (Tuple.make [ Value.Str "M1" ]));
  Alcotest.(check int) "M2 = 5" 5 (NR.annot result (Tuple.make [ Value.Str "M2" ]));
  (* homomorphism h : N -> B maps the result to set semantics *)
  let module BR = Krel.Make (B) in
  let set_result =
    NR.fold
      (fun t k acc -> BR.add acc t (k > 0))
      result
      (BR.empty (Schema.make [ Schema.attr "mach" Value.TStr ]))
  in
  Alcotest.(check bool) "h(8) = true" true
    (BR.annot set_result (Tuple.make [ Value.Str "M1" ]))

let test_krel_ops () =
  let s = Schema.make [ Schema.attr "x" Value.TInt ] in
  let r = NR.of_list s [ (Tuple.make [ Value.Int 1 ], 2); (Tuple.make [ Value.Int 2 ], 1) ] in
  (* selection keeps annotations *)
  let sel = NR.select (Expr.Cmp (Expr.Gt, Expr.Col 0, Expr.Const (Value.Int 1))) r in
  Alcotest.(check int) "selected" 1 (NR.size sel);
  (* union adds *)
  let u = NR.union r r in
  Alcotest.(check int) "union doubles" 4 (NR.annot u (Tuple.make [ Value.Int 1 ]));
  (* diff is monus *)
  let d = NR.diff u r in
  Alcotest.(check int) "diff" 2 (NR.annot d (Tuple.make [ Value.Int 1 ]));
  let d2 = NR.diff r u in
  Alcotest.(check bool) "diff to zero removes" true (NR.is_empty d2);
  (* projection sums annotations of collapsing tuples *)
  let p =
    NR.project
      [ Expr.Const (Value.Int 0) ]
      (Schema.make [ Schema.attr "c" Value.TInt ])
      r
  in
  Alcotest.(check int) "projection sums" 3 (NR.annot p (Tuple.make [ Value.Int 0 ]))

let test_krel_zero_invariant () =
  let s = Schema.make [ Schema.attr "x" Value.TInt ] in
  let r = NR.of_list s [ (Tuple.make [ Value.Int 1 ], 0) ] in
  Alcotest.(check bool) "zero annotations dropped" true (NR.is_empty r);
  let r = NR.add (NR.empty s) (Tuple.make [ Value.Int 1 ]) 3 in
  let r = NR.set r (Tuple.make [ Value.Int 1 ]) 0 in
  Alcotest.(check bool) "set to zero removes" true (NR.is_empty r)

let suite =
  ( "relation substrate",
    [
      Alcotest.test_case "value comparison" `Quick test_value_compare;
      Alcotest.test_case "value arithmetic" `Quick test_value_arith;
      Alcotest.test_case "three-valued logic" `Quick test_expr_3vl;
      Alcotest.test_case "LIKE patterns" `Quick test_expr_like;
      Alcotest.test_case "CASE / IN / greatest" `Quick test_expr_case_in;
      Alcotest.test_case "column sets and shifting" `Quick test_expr_cols_shift;
      Alcotest.test_case "equi-key extraction" `Quick test_equi_keys;
      Alcotest.test_case "aggregation accumulator" `Quick test_agg_acc;
      Alcotest.test_case "empty aggregates and combine" `Quick test_agg_empty_and_combine;
      Alcotest.test_case "aggregation with multiplicities" `Quick test_agg_multiplicity;
      Alcotest.test_case "schema resolution" `Quick test_schema_resolution;
      Alcotest.test_case "example 4.1 (provenance join)" `Quick test_example_41;
      Alcotest.test_case "K-relation operators" `Quick test_krel_ops;
      Alcotest.test_case "zero-annotation invariant" `Quick test_krel_zero_invariant;
    ] )
