(* End-to-end middleware tests: the paper's running example entered as SQL
   (DDL + SEQ VT queries), checked against the exact relations of Figure 1,
   and cross-checked against the logical model. *)

open Fixtures
module M = Tkr_middleware.Middleware
module Table = Tkr_engine.Table
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Rewriter = Tkr_sqlenc.Rewriter

let table_bag = Alcotest.testable Table.pp Table.equal_bag

let setup_sql =
  {|
  CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
  INSERT INTO works VALUES
    ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
    ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
  CREATE TABLE assign (mach text, skill text, b int, e int) PERIOD (b, e);
  INSERT INTO assign VALUES
    ('M1', 'SP', 3, 12), ('M2', 'SP', 6, 14), ('M3', 'NS', 3, 16);
|}

let fresh ?options () =
  let m = M.create ?options () in
  (* pin the time domain to the paper's [0, 24) day *)
  Tkr_engine.Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore (M.execute_script m setup_sql);
  m

let row vs = Tuple.make vs

let expect_table schema rows = Table.make (Schema.make schema) rows

let qonduty_sql =
  "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')"

let test_figure_1b () =
  let m = fresh () in
  let result = M.query m qonduty_sql in
  let expected =
    expect_table
      [
        Schema.attr "cnt" Value.TInt;
        Schema.attr "vt_begin" Value.TInt;
        Schema.attr "vt_end" Value.TInt;
      ]
      [
        row [ Value.Int 0; Value.Int 0; Value.Int 3 ];
        row [ Value.Int 1; Value.Int 3; Value.Int 8 ];
        row [ Value.Int 2; Value.Int 8; Value.Int 10 ];
        row [ Value.Int 1; Value.Int 10; Value.Int 16 ];
        row [ Value.Int 0; Value.Int 16; Value.Int 18 ];
        row [ Value.Int 1; Value.Int 18; Value.Int 20 ];
        row [ Value.Int 0; Value.Int 20; Value.Int 24 ];
      ]
  in
  Alcotest.check table_bag "figure 1b" expected result

let test_figure_1c () =
  let m = fresh () in
  let result =
    M.query m
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)"
  in
  let expected =
    expect_table
      [
        Schema.attr "skill" Value.TStr;
        Schema.attr "vt_begin" Value.TInt;
        Schema.attr "vt_end" Value.TInt;
      ]
      [
        row [ Value.Str "SP"; Value.Int 6; Value.Int 8 ];
        row [ Value.Str "SP"; Value.Int 10; Value.Int 12 ];
        row [ Value.Str "NS"; Value.Int 3; Value.Int 8 ];
      ]
  in
  Alcotest.check table_bag "figure 1c" expected result

let test_all_option_configs_agree () =
  let configs =
    [
      Rewriter.optimized;
      Rewriter.literal;
      { Rewriter.final_coalesce_only = true; fused_split_agg = false };
      { Rewriter.final_coalesce_only = false; fused_split_agg = true };
    ]
  in
  let sqls =
    [
      qonduty_sql;
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)";
      "SEQ VT (SELECT skill, count(*) AS c FROM works GROUP BY skill)";
      "SEQ VT (SELECT a.mach FROM assign a, works w WHERE a.skill = w.skill)";
      "SEQ VT (SELECT DISTINCT skill FROM works)";
    ]
  in
  List.iter
    (fun sql ->
      let reference = M.query (fresh ~options:Rewriter.literal ()) sql in
      List.iter
        (fun options ->
          let result = M.query (fresh ~options ()) sql in
          Alcotest.check table_bag sql reference result)
        configs)
    sqls

let test_join_result () =
  let m = fresh () in
  let result =
    M.query m
      "SEQ VT (SELECT a.mach FROM assign a JOIN works w ON a.skill = w.skill)"
  in
  (* cross-check against the logical model (test_core's qmachines) *)
  let module PE = Tkr_sqlenc.Period_enc.Make (D24) in
  let logical = PE.to_table (NP.eval period_db qmachines) in
  let relabeled =
    Table.of_array (Table.schema result) (Table.rows logical)
  in
  Alcotest.check table_bag "machines via SQL" relabeled result

let test_order_by_limit () =
  let m = fresh () in
  let result =
    M.query m (qonduty_sql ^ " ORDER BY cnt DESC, vt_begin LIMIT 2")
  in
  Alcotest.(check int) "limit" 2 (Table.cardinality result);
  match Table.rows result with
  | [| r1; r2 |] ->
      Alcotest.(check bool) "sorted desc" true
        (Value.compare (Tuple.get r1 0) (Tuple.get r2 0) >= 0);
      Alcotest.(check bool) "top count is 2" true
        (Value.equal (Tuple.get r1 0) (Value.Int 2))
  | _ -> Alcotest.fail "expected 2 rows"

let test_non_snapshot_query () =
  let m = fresh () in
  (* without SEQ VT the period attributes are plain columns *)
  let result = M.query m "SELECT name, b, e FROM works WHERE skill = 'SP'" in
  Alcotest.(check int) "rows" 3 (Table.cardinality result);
  Alcotest.(check (list string)) "columns" [ "name"; "b"; "e" ]
    (Schema.names (Table.schema result))

let test_snapshot_rejects_plain_table () =
  let m = fresh () in
  ignore (M.execute m "CREATE TABLE plain (x int)");
  try
    ignore (M.query m "SEQ VT (SELECT x FROM plain)");
    Alcotest.fail "expected error"
  with M.Error _ -> ()

let test_subquery_in_snapshot () =
  let m = fresh () in
  let result =
    M.query m
      "SEQ VT (SELECT s.skill, count(*) AS c FROM (SELECT skill FROM works \
       UNION ALL SELECT skill FROM assign) AS s GROUP BY s.skill)"
  in
  (* spot check: at time 8, four SP rows exist (Ann, Sam, M1, M2) *)
  let hit =
    Array.exists
      (fun r ->
        Value.equal (Tuple.get r 0) (Value.Str "SP")
        && Value.equal (Tuple.get r 1) (Value.Int 4)
        && Value.equal (Tuple.get r 2) (Value.Int 8))
      (Table.rows result)
  in
  Alcotest.(check bool) "SP count 4 during [8,10)" true hit

let test_insert_widens_domain () =
  let m = fresh () in
  ignore (M.execute m "INSERT INTO works VALUES ('Zoe', 'SP', 0, 30)");
  let tmin, tmax = Tkr_engine.Database.time_bounds (M.database m) in
  Alcotest.(check (pair int int)) "bounds" (0, 30) (tmin, tmax)

let test_drop_table () =
  let m = fresh () in
  ignore (M.execute m "DROP TABLE assign");
  try
    ignore (M.query m "SELECT * FROM assign");
    Alcotest.fail "expected unknown table"
  with _ -> ()

let suite =
  ( "middleware (SQL end-to-end)",
    [
      Alcotest.test_case "figure 1b via SQL" `Quick test_figure_1b;
      Alcotest.test_case "figure 1c via SQL" `Quick test_figure_1c;
      Alcotest.test_case "all optimizer configs agree" `Quick
        test_all_option_configs_agree;
      Alcotest.test_case "join via SQL = logical model" `Quick test_join_result;
      Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
      Alcotest.test_case "non-snapshot query" `Quick test_non_snapshot_query;
      Alcotest.test_case "SEQ VT rejects non-period tables" `Quick
        test_snapshot_rejects_plain_table;
      Alcotest.test_case "subquery inside SEQ VT" `Quick test_subquery_in_snapshot;
      Alcotest.test_case "insert widens time domain" `Quick test_insert_widens_domain;
      Alcotest.test_case "drop table" `Quick test_drop_table;
    ] )
