(* Workload sanity: the generators produce well-formed period tables, every
   workload query parses/analyzes/rewrites/executes at small scale, and the
   optimized and literal rewritings agree on real workload queries. *)

module M = Tkr_middleware.Middleware
module W = Tkr_workload.Employees
module T = Tkr_workload.Tpcbih
module Q = Tkr_workload.Queries
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Rewriter = Tkr_sqlenc.Rewriter

let table_bag = Alcotest.testable Table.pp Table.equal_bag

let emp_db () = W.generate { (W.scaled 60) with tmax = 1000 }
let tpc_db () = T.generate { T.default with scale = 0.15; tmax = 600 }

let mw ?options db = M.create ?options ~db ()

let check_period_table db name =
  let t = Database.find db name in
  Alcotest.(check bool) (name ^ " is period") true (Database.is_period db name);
  Array.iter
    (fun row ->
      let n = Tuple.arity row in
      match (Tuple.get row (n - 2), Tuple.get row (n - 1)) with
      | Value.Int b, Value.Int e ->
          if b >= e then Alcotest.failf "%s: empty interval [%d,%d)" name b e
      | _ -> Alcotest.failf "%s: non-integer period" name)
    (Table.rows t)

let test_employees_generator () =
  let db = emp_db () in
  List.iter (check_period_table db)
    [ "departments"; "employees"; "salaries"; "titles"; "dept_emp"; "dept_manager" ];
  (* salaries cover each employee from hire to tmax without overlap *)
  Alcotest.(check bool) "salaries larger than employees" true
    (Table.cardinality (Database.find db "salaries")
    > Table.cardinality (Database.find db "employees"))

let test_employees_deterministic () =
  let a = W.generate (W.scaled 40) and b = W.generate (W.scaled 40) in
  List.iter
    (fun name ->
      Alcotest.check table_bag (name ^ " deterministic") (Database.find a name)
        (Database.find b name))
    [ "salaries"; "dept_manager" ]

let test_tpc_generator () =
  let db = tpc_db () in
  List.iter (check_period_table db)
    [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp"; "orders"; "lineitem" ];
  Alcotest.(check int) "5 regions" 5 (Table.cardinality (Database.find db "region"));
  Alcotest.(check int) "25 nations" 25 (Table.cardinality (Database.find db "nation"))

let test_employee_queries_run () =
  let m = mw (emp_db ()) in
  List.iter
    (fun (name, sql) ->
      let t = M.query m sql in
      Alcotest.(check bool) (name ^ " executes") true (Table.cardinality t >= 0))
    Q.employee

let test_tpch_queries_run () =
  let m = mw (tpc_db ()) in
  List.iter
    (fun (name, sql) ->
      let t = M.query m sql in
      Alcotest.(check bool) (name ^ " executes") true (Table.cardinality t >= 0))
    Q.tpch

let test_optimizations_agree_on_workload () =
  (* the heart of the ablation: all rewriter configurations produce the
     same relation on real workload queries *)
  let queries =
    [ "join-1"; "join-3"; "agg-1"; "agg-2"; "agg-3"; "diff-1"; "diff-2" ]
  in
  let m_opt = mw ~options:Rewriter.optimized (emp_db ()) in
  let m_lit = mw ~options:Rewriter.literal (emp_db ()) in
  List.iter
    (fun name ->
      let sql = Q.lookup name Q.employee in
      Alcotest.check table_bag name (M.query m_lit sql) (M.query m_opt sql))
    queries

let test_baseline_agrees_on_joins () =
  (* positive RA: native approaches are snapshot-reducible, so they agree
     with the middleware modulo coalescing *)
  let db = emp_db () in
  let m = mw db in
  List.iter
    (fun name ->
      let sql = Q.lookup name Q.employee in
      let ours = M.query m sql in
      let algebra, _ = M.snapshot_algebra m sql in
      List.iter
        (fun style ->
          let native =
            Tkr_baseline.Baseline.eval_coalesced style db algebra
          in
          let relabeled = Table.of_array (Table.schema ours) (Table.rows native) in
          Alcotest.check table_bag
            (name ^ " vs " ^ Tkr_baseline.Baseline.style_name style)
            ours relabeled)
        [ Tkr_baseline.Baseline.Interval_preservation; Tkr_baseline.Baseline.Alignment ])
    [ "join-1"; "join-3"; "join-4" ]

let test_manager_coverage () =
  (* every department is managed at every time point: agg-2 (avg manager
     salary, ungrouped) should report no NULL gap rows except possibly at
     the very start when no manager has a salary yet *)
  let m = mw (emp_db ()) in
  let t = M.query m (Q.lookup "agg-2" Q.employee) in
  Alcotest.(check bool) "agg-2 has rows" true (Table.cardinality t > 0)

let test_tourism () =
  let db =
    Tkr_workload.Tourism.generate
      { Tkr_workload.Tourism.default with facilities = 30; stays_per_facility = 10 }
  in
  List.iter (check_period_table db) [ "facilities"; "stays" ];
  let m = mw db in
  List.iter
    (fun (name, sql) ->
      let t = M.query m sql in
      Alcotest.(check bool) (name ^ " executes") true (Table.cardinality t >= 0))
    Tkr_workload.Tourism.queries;
  (* the off-season gap rows exist: total-guests has stays_now = 0 rows *)
  let t = M.query m (Q.lookup "total-guests" Tkr_workload.Tourism.queries) in
  let has_gap =
    Array.exists
      (fun row -> Value.equal (Tuple.get row 0) (Value.Int 0))
      (Table.rows t)
  in
  Alcotest.(check bool) "off-season gap rows" true has_gap

let test_coalesce_input () =
  let t = W.coalesce_input ~n:500 ~seed:1 ~tmax:1000 in
  Alcotest.(check int) "rows" 500 (Table.cardinality t);
  let c = Tkr_engine.Ops.coalesce t in
  Alcotest.check table_bag "coalesced output is a fixpoint" c
    (Tkr_engine.Ops.coalesce c)

let suite =
  ( "workload",
    [
      Alcotest.test_case "employees generator" `Quick test_employees_generator;
      Alcotest.test_case "employees deterministic" `Quick test_employees_deterministic;
      Alcotest.test_case "tpc-bih generator" `Quick test_tpc_generator;
      Alcotest.test_case "all 10 employee queries run" `Slow test_employee_queries_run;
      Alcotest.test_case "all 11 tpch queries run" `Slow test_tpch_queries_run;
      Alcotest.test_case "optimizations agree on workload" `Slow
        test_optimizations_agree_on_workload;
      Alcotest.test_case "baselines agree on join queries" `Slow
        test_baseline_agrees_on_joins;
      Alcotest.test_case "manager coverage" `Quick test_manager_coverage;
      Alcotest.test_case "tourism dataset and queries" `Quick test_tourism;
      Alcotest.test_case "coalesce input generator" `Quick test_coalesce_input;
    ] )
