(* The representation-system theorems on randomized inputs AND randomized
   queries: for random databases D and random RAagg queries Q,

     abstract model   =  logical model   =  rewritten SQL over the encoding

   pointwise at every time point (Thm. 6.6 / 7.3 / 8.1).  This is the
   strongest correctness statement in the paper, tested end to end. *)

open Fixtures
module Value = Tkr_relation.Value
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Agg = Tkr_relation.Agg
module Algebra = Tkr_relation.Algebra
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Rewriter = Tkr_sqlenc.Rewriter
module PE = Tkr_sqlenc.Period_enc.Make (D24)

(* ---- random query generation over the works/assign schemas ----

   Queries are generated together with their output arity; all generated
   columns are strings except those introduced by aggregation or constant
   projection, which tracks enough typing to keep expressions valid. *)

type col_ty = S | I

let gen_query : (Algebra.t * col_ty list) QCheck.Gen.t =
  let open QCheck.Gen in
  let value_pool = [ "SP"; "NS"; "Ann"; "Sam"; "Joe"; "M1"; "M2"; "a"; "b" ] in
  let leaf =
    oneofl
      [ (Algebra.Rel "works", [ S; S ]); (Algebra.Rel "assign", [ S; S ]) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        let gen_select =
          sub >>= fun (q, tys) ->
          int_range 0 (List.length tys - 1) >>= fun i ->
          (match List.nth tys i with
          | S -> map (fun v -> Expr.Const (Value.Str v)) (oneofl value_pool)
          | I -> map (fun v -> Expr.Const (Value.Int v)) (int_range 0 3))
          >>= fun const ->
          oneofl [ Expr.Eq; Expr.Ne; Expr.Le ] >>= fun op ->
          return (Algebra.Select (Expr.Cmp (op, Expr.Col i, const), q), tys)
        in
        let gen_project =
          sub >>= fun (q, tys) ->
          let n = List.length tys in
          list_size (int_range 1 (min 3 n)) (int_range 0 (n - 1))
          >>= fun cols ->
          bool >>= fun add_const ->
          let projs =
            List.mapi
              (fun k i -> Algebra.proj (Expr.Col i) (Printf.sprintf "c%d" k))
              cols
          in
          let out_tys = List.map (fun i -> List.nth tys i) cols in
          if add_const then
            int_range 1 5 >>= fun c ->
            return
              ( Algebra.Project
                  (projs @ [ Algebra.proj (Expr.Const (Value.Int c)) "k" ], q),
                out_tys @ [ I ] )
          else return (Algebra.Project (projs, q), out_tys)
        in
        let gen_join =
          sub >>= fun (q1, tys1) ->
          sub >>= fun (q2, tys2) ->
          let n1 = List.length tys1 in
          let s1 = List.filteri (fun i _ -> List.nth tys1 i = S) (List.mapi (fun i _ -> i) tys1) in
          let s2 = List.filteri (fun i _ -> List.nth tys2 i = S) (List.mapi (fun i _ -> i) tys2) in
          match (s1, s2) with
          | [], _ | _, [] -> return (q1, tys1)
          | _ ->
              oneofl s1 >>= fun i ->
              oneofl s2 >>= fun j ->
              return
                ( Algebra.Join
                    (Expr.Cmp (Expr.Eq, Expr.Col i, Expr.Col (n1 + j)), q1, q2),
                  tys1 @ tys2 )
        in
        let one_str_col (q, tys) =
          (* project to a single string column for union compatibility *)
          let strs =
            List.filteri (fun i _ -> List.nth tys i = S) (List.mapi (fun i _ -> i) tys)
          in
          match strs with
          | [] -> None
          | i :: _ -> Some (Algebra.Project ([ Algebra.proj (Expr.Col i) "u" ], q))
        in
        let gen_union_diff =
          sub >>= fun a ->
          sub >>= fun b ->
          bool >>= fun is_union ->
          match (one_str_col a, one_str_col b) with
          | Some qa, Some qb ->
              return
                ( (if is_union then Algebra.Union (qa, qb) else Algebra.Diff (qa, qb)),
                  [ S ] )
          | _ -> return a
        in
        let gen_agg =
          sub >>= fun (q, tys) ->
          let n = List.length tys in
          bool >>= fun grouped ->
          int_range 0 (n - 1) >>= fun g ->
          int_range 0 3 >>= fun flavour ->
          let group =
            if grouped then [ Algebra.proj (Expr.Col g) "g" ] else []
          in
          int_range 0 (n - 1) >>= fun a ->
          let int_cols =
            List.filteri (fun i _ -> List.nth tys i = I)
              (List.mapi (fun i _ -> i) tys)
          in
          let second =
            (* numeric aggregates when an int column exists *)
            match (flavour, int_cols) with
            | 0, _ -> ({ Algebra.func = Agg.Max (Expr.Col a); agg_name = "mx" },
                       List.nth tys a)
            | 1, _ -> ({ Algebra.func = Agg.Count (Expr.Col a); agg_name = "ca" }, I)
            | 2, i :: _ -> ({ Algebra.func = Agg.Sum (Expr.Col i); agg_name = "sm" }, I)
            | _, i :: _ -> ({ Algebra.func = Agg.Avg (Expr.Col i); agg_name = "av" }, I)
            | _, [] -> ({ Algebra.func = Agg.Min (Expr.Col a); agg_name = "mn" },
                        List.nth tys a)
          in
          let aggs =
            [ { Algebra.func = Agg.Count_star; agg_name = "cnt" }; fst second ]
          in
          let out_tys =
            (if grouped then [ List.nth tys g ] else []) @ [ I; snd second ]
          in
          return (Algebra.Agg (group, aggs, q), out_tys)
        in
        let gen_distinct =
          sub >>= fun (q, tys) -> return (Algebra.Distinct q, tys)
        in
        frequency
          [
            (2, gen_select); (2, gen_project); (2, gen_join);
            (2, gen_union_diff); (2, gen_agg); (1, gen_distinct); (1, leaf);
          ])
    3

(* random database instances over the fixed schemas *)
let gen_db =
  let open QCheck.Gen in
  let facts names =
    list_size (int_range 0 6)
      (map3
         (fun n s (b, d) -> (Tuple.make [ Value.Str n; Value.Str s ], (b, min 24 (b + d)), 1))
         (oneofl names)
         (oneofl [ "SP"; "NS"; "XX" ])
         (pair (int_range 0 22) (int_range 1 10)))
  in
  map2
    (fun w a -> (w, a))
    (facts [ "Ann"; "Sam"; "Joe" ])
    (facts [ "M1"; "M2"; "M3" ])

let arb =
  QCheck.make
    ~print:(fun ((q, _), (w, a)) ->
      Format.asprintf "%a@.works=%d facts assign=%d facts" Algebra.pp q
        (List.length w) (List.length a))
    QCheck.Gen.(pair gen_query gen_db)

let run_three_levels ((q, _tys), (wfacts, afacts)) =
  let works_p = NP.P.of_facts works_schema wfacts in
  let assign_p = NP.P.of_facts assign_schema afacts in
  let pdb = function
    | "works" -> works_p
    | "assign" -> assign_p
    | n -> invalid_arg n
  in
  let sdb = function
    | "works" -> Snap.of_facts D24.domain works_schema wfacts
    | "assign" -> Snap.of_facts D24.domain assign_schema afacts
    | n -> invalid_arg n
  in
  let logical = NP.eval pdb q in
  let abstract = Snap.eval sdb q in
  (* engine over the rewritten encoding *)
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "works" (PE.to_table works_p);
  Database.add_period_table db "assign" (PE.to_table assign_p);
  let lookup = function
    | "works" -> works_schema
    | "assign" -> assign_schema
    | n -> raise (Schema.Unknown n)
  in
  let engine options =
    PE.of_table
      (Exec.eval db (Rewriter.rewrite ~options ~tmin:0 ~tmax:24 ~lookup q))
  in
  (abstract, logical, engine)

let qt name prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:250 ~name arb prop)

let prop_abstract_vs_logical =
  qt "random query: abstract = logical at every snapshot (Thm 6.6/7.3)"
    (fun input ->
      let abstract, logical, _ = run_three_levels input in
      List.for_all
        (fun t ->
          NP.P.KR.equal (Snap.timeslice abstract t) (NP.P.timeslice logical t))
        (List.init 24 Fun.id))

let prop_logical_vs_engine_optimized =
  qt "random query: logical = rewritten engine, optimized (Thm 8.1)"
    (fun input ->
      let _, logical, engine = run_three_levels input in
      NP.R.equal logical (engine Rewriter.optimized))

let prop_logical_vs_engine_literal =
  qt "random query: logical = rewritten engine, literal Fig. 4 (Thm 8.1)"
    (fun input ->
      let _, logical, engine = run_three_levels input in
      NP.R.equal logical (engine Rewriter.literal))

let prop_timeslice_commutes_through_engine =
  qt "random query: timeslice commutes with rewritten queries" (fun input ->
      let _, logical, engine = run_three_levels input in
      let enc = engine Rewriter.optimized in
      List.for_all
        (fun t -> NP.P.KR.equal (NP.P.timeslice enc t) (NP.P.timeslice logical t))
        [ 0; 6; 12; 18; 23 ])

let suite =
  ( "representation system (random queries x 3 levels)",
    [
      prop_abstract_vs_logical;
      prop_logical_vs_engine_optimized;
      prop_logical_vs_engine_literal;
      prop_timeslice_commutes_through_engine;
    ] )
