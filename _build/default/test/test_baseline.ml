(* The baselines reproduce exactly the bugs the paper attributes to native
   approaches (Table 1 / Figure 1's highlighted rows), while agreeing with
   our approach on positive relational algebra. *)

open Fixtures
module B = Tkr_baseline.Baseline
module M = Tkr_middleware.Middleware
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Ops = Tkr_engine.Ops
module PE = Tkr_sqlenc.Period_enc.Make (D24)
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Algebra = Tkr_relation.Algebra
module Expr = Tkr_relation.Expr

let table_bag = Alcotest.testable Table.pp Table.equal_bag

let make_db () =
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "works" (PE.to_table works_period);
  Database.add_period_table db "assign" (PE.to_table assign_period);
  db

let has_row table pred = Array.exists pred (Table.rows table)

let cnt_row n b e row =
  Value.equal (Tuple.get row 0) (Value.Int n)
  && Value.equal (Tuple.get row 1) (Value.Int b)
  && Value.equal (Tuple.get row 2) (Value.Int e)

(* --- the AG bug: no count=0 rows over gaps --- *)

let test_ag_bug () =
  let db = make_db () in
  List.iter
    (fun style ->
      let result = B.eval_coalesced style db qonduty in
      Alcotest.(check bool)
        (B.style_name style ^ " misses the [0,3) gap")
        false
        (has_row result (cnt_row 0 0 3));
      Alcotest.(check bool)
        (B.style_name style ^ " still reports cnt=2 during [8,10)")
        true
        (has_row result (cnt_row 2 8 10)))
    [ B.Interval_preservation; B.Alignment ]

let test_ours_has_gaps () =
  let db = make_db () in
  ignore db;
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  Database.add_period_table (M.database m) "works" (PE.to_table works_period);
  let result =
    M.query m "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')"
  in
  Alcotest.(check bool) "our approach reports the [0,3) gap" true
    (has_row result (cnt_row 0 0 3))

(* --- the BD bug: EXCEPT ALL treated as NOT EXISTS --- *)

let test_bd_bug () =
  let db = make_db () in
  List.iter
    (fun style ->
      let result = B.eval_coalesced style db qskillreq in
      let sp_row row = Value.equal (Tuple.get row 0) (Value.Str "SP") in
      Alcotest.(check bool)
        (B.style_name style ^ " drops the SP rows (fig 1c highlights)")
        false
        (has_row result sp_row);
      (* the NS row survives: no NS worker at all during [3,8) *)
      Alcotest.(check bool)
        (B.style_name style ^ " keeps the NS gap row")
        true
        (has_row result (fun row ->
             Value.equal (Tuple.get row 0) (Value.Str "NS")
             && Value.equal (Tuple.get row 1) (Value.Int 3)
             && Value.equal (Tuple.get row 2) (Value.Int 8))))
    [ B.Interval_preservation; B.Alignment ]

(* --- positive RA agrees with the correct implementation --- *)

let positive_queries =
  [
    ("qmachines", qmachines);
    ( "select",
      Algebra.Select
        (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (str "SP")), Algebra.Rel "works") );
    ( "union",
      Algebra.Union
        ( Algebra.Project ([ Algebra.proj (Expr.Col 1) "s" ], Algebra.Rel "works"),
          Algebra.Project ([ Algebra.proj (Expr.Col 1) "s" ], Algebra.Rel "assign") ) );
  ]

let test_positive_ra_agrees () =
  let db = make_db () in
  let lookup = function
    | "works" -> works_schema
    | "assign" -> assign_schema
    | n -> raise (Schema.Unknown n)
  in
  List.iter
    (fun (name, q) ->
      let ours =
        let rewritten =
          Tkr_sqlenc.Rewriter.rewrite ~options:Tkr_sqlenc.Rewriter.optimized
            ~tmin:0 ~tmax:24 ~lookup q
        in
        Tkr_engine.Exec.eval db rewritten
      in
      List.iter
        (fun style ->
          let native = B.eval_coalesced style db q in
          (* compare modulo schema names *)
          let relabel t = Table.of_array (Table.schema ours) (Table.rows t) in
          Alcotest.check table_bag
            (name ^ " / " ^ B.style_name style)
            ours (relabel native))
        [ B.Interval_preservation; B.Alignment ])
    positive_queries

(* --- non-unique encodings: interval preservation depends on the input
   representation, coalescing restores uniqueness (Table 1, last column) --- *)

let test_unique_encoding () =
  let schema =
    Schema.make
      [
        Schema.attr "x" Value.TStr;
        Schema.attr "__b" Value.TInt;
        Schema.attr "__e" Value.TInt;
      ]
  in
  let v1 =
    Table.make schema [ Tuple.make [ str "a"; int 3; int 10 ] ]
  in
  let v2 =
    Table.make schema
      [
        Tuple.make [ str "a"; int 3; int 8 ];
        Tuple.make [ str "a"; int 8; int 10 ];
      ]
  in
  (* same snapshots, different representations *)
  Alcotest.(check bool) "snapshot-equivalent inputs" true
    (NP.R.equal (PE.of_table v1) (PE.of_table v2));
  let db1 = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db1 "t" v1;
  let db2 = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db2 "t" v2;
  let q =
    Algebra.Project ([ Algebra.proj (Expr.Col 0) "x" ], Algebra.Rel "t")
  in
  let r1 = B.eval B.Interval_preservation db1 q in
  let r2 = B.eval B.Interval_preservation db2 q in
  Alcotest.(check bool) "interval preservation: encoding differs" false
    (Table.equal_bag r1 r2);
  Alcotest.check table_bag "coalescing restores uniqueness" (Ops.coalesce r1)
    (Ops.coalesce r2)

let test_teradata_style () =
  let db = make_db () in
  (* positive RA behaves like interval preservation *)
  let r1 = B.eval B.Teradata db qmachines in
  let r2 = B.eval B.Interval_preservation db qmachines in
  Alcotest.check table_bag "teradata join = interval preservation" r1 r2;
  (* still has the AG bug *)
  let agg = B.eval_coalesced B.Teradata db qonduty in
  Alcotest.(check bool) "AG bug" false (has_row agg (cnt_row 0 0 3));
  (* difference is unsupported (the paper's N/A) *)
  Alcotest.check_raises "difference unsupported"
    (B.Unsupported_operation
       "teradata-modifiers: snapshot difference is not supported") (fun () ->
      ignore (B.eval B.Teradata db qskillreq))

let suite =
  ( "baselines (native approaches)",
    [
      Alcotest.test_case "aggregation gap bug" `Quick test_ag_bug;
      Alcotest.test_case "our middleware reports gaps" `Quick test_ours_has_gaps;
      Alcotest.test_case "bag difference bug" `Quick test_bd_bug;
      Alcotest.test_case "positive RA agrees with ours" `Quick
        test_positive_ra_agrees;
      Alcotest.test_case "unique encoding comparison" `Quick test_unique_encoding;
      Alcotest.test_case "teradata style" `Quick test_teradata_style;
    ] )
