(* Shared fixtures: the paper's running example (Figure 1) and small
   helpers used across test suites. *)

open Tkr_relation
module Domain = Tkr_timeline.Domain
module Interval = Tkr_timeline.Interval

module D24 = struct
  let domain = Domain.make ~tmin:0 ~tmax:24
end

module NT = Tkr_temporal.Period_semiring.MakeMonus (Tkr_semiring.Nat) (D24)
module BT = Tkr_temporal.Period_semiring.MakeMonus (Tkr_semiring.Boolean) (D24)
module NP = Tkr_core.Nperiod.Make (D24)

let str s = Value.Str s
let int i = Value.Int i
let tup vs = Tuple.make vs

let works_schema =
  Schema.make [ Schema.attr "name" Value.TStr; Schema.attr "skill" Value.TStr ]

let assign_schema =
  Schema.make [ Schema.attr "mach" Value.TStr; Schema.attr "skill" Value.TStr ]

(* Figure 1a *)
let works_facts =
  [
    (tup [ str "Ann"; str "SP" ], (3, 10), 1);
    (tup [ str "Joe"; str "NS" ], (8, 16), 1);
    (tup [ str "Sam"; str "SP" ], (8, 16), 1);
    (tup [ str "Ann"; str "SP" ], (18, 20), 1);
  ]

let assign_facts =
  [
    (tup [ str "M1"; str "SP" ], (3, 12), 1);
    (tup [ str "M2"; str "SP" ], (6, 14), 1);
    (tup [ str "M3"; str "NS" ], (3, 16), 1);
  ]

let works_period = NP.P.of_facts works_schema works_facts
let assign_period = NP.P.of_facts assign_schema assign_facts

let period_db name =
  match name with
  | "works" -> works_period
  | "assign" -> assign_period
  | _ -> invalid_arg ("unknown relation " ^ name)

module Snap = Tkr_snapshot.Snapshot_rel.Nsnapshot

let works_snapshot = Snap.of_facts D24.domain works_schema works_facts
let assign_snapshot = Snap.of_facts D24.domain assign_schema assign_facts

let snapshot_db name =
  match name with
  | "works" -> works_snapshot
  | "assign" -> assign_snapshot
  | _ -> invalid_arg ("unknown relation " ^ name)

(* Qonduty: SELECT count(·) AS cnt FROM works WHERE skill = 'SP' *)
let qonduty : Algebra.t =
  Algebra.Agg
    ( [],
      [ { func = Agg.Count_star; agg_name = "cnt" } ],
      Algebra.Select
        (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (str "SP")), Algebra.Rel "works")
    )

(* Qskillreq: SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works *)
let qskillreq : Algebra.t =
  Algebra.Diff
    ( Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "assign"),
      Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works") )

(* A positive query: machines with a matching worker (Example 4.1 shape). *)
let qmachines : Algebra.t =
  Algebra.Project
    ( [ Algebra.proj (Expr.Col 0) "mach" ],
      Algebra.Join
        (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Col 3), Algebra.Rel "assign", Algebra.Rel "works")
    )

(* Expected Figure 1b as a period N-relation. *)
let expected_onduty =
  NP.R.of_list
    (Schema.make [ Schema.attr "cnt" Value.TInt ])
    [
      (tup [ int 0 ], NT.of_assoc [ ((0, 3), 1); ((16, 18), 1); ((20, 24), 1) ]);
      (tup [ int 1 ], NT.of_assoc [ ((3, 8), 1); ((10, 16), 1); ((18, 20), 1) ]);
      (tup [ int 2 ], NT.of_assoc [ ((8, 10), 1) ]);
    ]

(* Expected Figure 1c as a period N-relation. *)
let expected_skillreq =
  NP.R.of_list
    (Schema.make [ Schema.attr "skill" Value.TStr ])
    [
      (tup [ str "SP" ], NT.of_assoc [ ((6, 8), 1); ((10, 12), 1) ]);
      (tup [ str "NS" ], NT.of_assoc [ ((3, 8), 1) ]);
    ]

(* Generator for raw temporal N-elements over the [0,24) domain. *)
let raw_nt_gen =
  let open QCheck.Gen in
  list_size (int_range 0 5)
    (map3
       (fun b d k -> (Interval.make b (min 24 (b + d)), k))
       (int_range 0 22) (int_range 1 8) (int_range 1 3))

let nt_gen = QCheck.Gen.map NT.of_raw raw_nt_gen

let raw_bt_gen =
  let open QCheck.Gen in
  list_size (int_range 0 5)
    (map2
       (fun b d -> (Interval.make b (min 24 (b + d)), true))
       (int_range 0 22) (int_range 1 8))

let bt_gen = QCheck.Gen.map BT.of_raw raw_bt_gen

(* Generator for random interval facts over a small schema, used by
   round-trip and representation-system tests. *)
let facts_gen =
  let open QCheck.Gen in
  list_size (int_range 0 8)
    (map3
       (fun name (b, d) k -> (tup [ str name ], (b, min 24 (b + d)), k))
       (oneofl [ "a"; "b"; "c" ])
       (pair (int_range 0 22) (int_range 1 8))
       (int_range 1 3))

let one_col_schema = Schema.make [ Schema.attr "x" Value.TStr ]
