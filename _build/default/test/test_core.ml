(* The logical model end to end: period N-relations evaluate the paper's
   running example correctly (Figure 1), are snapshot-reducible against the
   abstract model, and encode/decode is a bijection. *)

open Fixtures
module Algebra = Tkr_relation.Algebra
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Expr = Tkr_relation.Expr
module Krel = Tkr_relation.Krel
module Domain = Tkr_timeline.Domain

let period_rel = Alcotest.testable NP.R.pp NP.R.equal

let test_qonduty () =
  let result = NP.eval period_db qonduty in
  Alcotest.check period_rel "figure 1b" expected_onduty result

let test_qskillreq () =
  let result = NP.eval period_db qskillreq in
  Alcotest.check period_rel "figure 1c" expected_skillreq result

let test_qmachines () =
  let result = NP.eval period_db qmachines in
  (* M1 (SP): works SP during [3,10) with 1 and [8,10) adds Sam... compute:
     M1 valid [3,12) joins Ann-SP [3,10) and Sam-SP [8,16):
       [3,8) -> 1, [8,10) -> 2, [10,12) -> 1
     M2 valid [6,14): [6,8) -> 1, [8,10) -> 2, [10,14) -> 1
     M3 (NS) valid [3,16) joins Joe-NS [8,16): [8,16) -> 1 *)
  let expected =
    NP.R.of_list
      (Schema.make [ Schema.attr "mach" Value.TStr ])
      [
        (tup [ str "M1" ], NT.of_assoc [ ((3, 8), 1); ((8, 10), 2); ((10, 12), 1) ]);
        (tup [ str "M2" ], NT.of_assoc [ ((6, 8), 1); ((8, 10), 2); ((10, 14), 1) ]);
        (tup [ str "M3" ], NT.of_assoc [ ((8, 16), 1) ]);
      ]
  in
  Alcotest.check period_rel "machines" expected result

let test_grouped_aggregation () =
  (* Count workers per skill: grouped aggregation has no gap rows for
     absent groups (snapshot-reducibility), but counts correctly. *)
  let q =
    Algebra.Agg
      ( [ Algebra.proj (Expr.Col 1) "skill" ],
        [ { func = Tkr_relation.Agg.Count_star; agg_name = "cnt" } ],
        Algebra.Rel "works" )
  in
  let expected =
    NP.R.of_list
      (Schema.make [ Schema.attr "skill" Value.TStr; Schema.attr "cnt" Value.TInt ])
      [
        ( tup [ str "SP"; int 1 ],
          NT.of_assoc [ ((3, 8), 1); ((10, 16), 1); ((18, 20), 1) ] );
        (tup [ str "SP"; int 2 ], NT.of_assoc [ ((8, 10), 1) ]);
        (tup [ str "NS"; int 1 ], NT.of_assoc [ ((8, 16), 1) ]);
      ]
  in
  Alcotest.check period_rel "per-skill counts" expected (NP.eval period_db q)

let test_sum_gap_null () =
  (* Ungrouped SUM over gaps yields NULL rows (empty snapshot -> SQL NULL). *)
  let q =
    Algebra.Agg
      ( [],
        [ { func = Tkr_relation.Agg.Sum (Expr.Col 0); agg_name = "s" } ],
        Algebra.Project
          ( [ Algebra.proj (Expr.Const (Value.Int 5)) "v" ],
            Algebra.Select
              ( Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (str "NS")),
                Algebra.Rel "works" ) ) )
  in
  let expected =
    NP.R.of_list
      (Schema.make [ Schema.attr "s" Value.TInt ])
      [
        (tup [ Value.Null ], NT.of_assoc [ ((0, 8), 1); ((16, 24), 1) ]);
        (tup [ int 5 ], NT.of_assoc [ ((8, 16), 1) ]);
      ]
  in
  Alcotest.check period_rel "sum with NULL gaps" expected (NP.eval period_db q)

let test_distinct () =
  let q = Algebra.Distinct (Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works")) in
  let expected =
    NP.R.of_list
      (Schema.make [ Schema.attr "skill" Value.TStr ])
      [
        (tup [ str "SP" ], NT.of_assoc [ ((3, 16), 1); ((18, 20), 1) ]);
        (tup [ str "NS" ], NT.of_assoc [ ((8, 16), 1) ]);
      ]
  in
  Alcotest.check period_rel "distinct skills" expected (NP.eval period_db q)

(* --- Snapshot-reducibility: the logical model commutes with the abstract
   model on a family of queries, at every time point. --- *)

let union_query =
  Algebra.Union
    ( Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works"),
      Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "assign") )

let queries =
  [
    ("qonduty", qonduty);
    ("qskillreq", qskillreq);
    ("qmachines", qmachines);
    ("union", union_query);
    ("select", Algebra.Select (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (str "SP")), Algebra.Rel "works"));
  ]

let nrel = Alcotest.testable NP.P.KR.pp NP.P.KR.equal

let test_snapshot_reducibility () =
  List.iter
    (fun (name, q) ->
      let period_result = NP.eval period_db q in
      let snapshot_result = Snap.eval snapshot_db q in
      for t = 0 to 23 do
        Alcotest.check nrel
          (Printf.sprintf "%s at %d" name t)
          (Snap.timeslice snapshot_result t)
          (NP.P.timeslice period_result t)
      done)
    queries

(* --- ENC is a bijection preserving snapshots (Lemmas 6.4, 6.5) --- *)

let facts_arb =
  QCheck.make
    ~print:(fun facts ->
      String.concat "; "
        (List.map
           (fun (t, (b, e), k) ->
             Printf.sprintf "%s@[%d,%d)x%d" (Tkr_relation.Tuple.to_string t) b e k)
           facts))
    facts_gen

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"decode . encode = id (Lemmas 6.4/6.5)"
       facts_arb (fun facts ->
         let snap = Snap.of_facts D24.domain one_col_schema facts in
         let period = NP.P.encode snap in
         let back = NP.P.decode period in
         Snap.equal snap back))

let prop_encode_coalesced =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"encode produces normal forms" facts_arb
       (fun facts ->
         let snap = Snap.of_facts D24.domain one_col_schema facts in
         let period = NP.P.encode snap in
         NP.R.fold
           (fun _ el acc -> acc && NT.equal el (NT.of_raw el))
           period true))

let prop_of_facts_agrees_with_encode =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"of_facts = encode . snapshots (unique encoding)" facts_arb
       (fun facts ->
         let direct = NP.P.of_facts one_col_schema facts in
         let via_snapshots =
           NP.P.encode (Snap.of_facts D24.domain one_col_schema facts)
         in
         NP.R.equal direct via_snapshots))

let suite =
  ( "core (logical model)",
    [
      Alcotest.test_case "Qonduty = figure 1b" `Quick test_qonduty;
      Alcotest.test_case "Qskillreq = figure 1c" `Quick test_qskillreq;
      Alcotest.test_case "machine join" `Quick test_qmachines;
      Alcotest.test_case "grouped aggregation" `Quick test_grouped_aggregation;
      Alcotest.test_case "sum over gaps is NULL" `Quick test_sum_gap_null;
      Alcotest.test_case "distinct" `Quick test_distinct;
      Alcotest.test_case "snapshot reducibility (5 queries x 24 points)" `Quick
        test_snapshot_reducibility;
      prop_roundtrip;
      prop_encode_coalesced;
      prop_of_facts_agrees_with_encode;
    ] )
