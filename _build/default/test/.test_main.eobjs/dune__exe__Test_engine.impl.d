test/test_engine.ml: Agg Alcotest Algebra Expr Filename Krel Neval QCheck QCheck_alcotest Schema String Sys Tkr_engine Tkr_relation Tkr_semiring Tuple Value
