test/laws.ml: Format QCheck QCheck_alcotest Tkr_semiring
