test/test_representation.ml: D24 Fixtures Format Fun List NP Printf QCheck QCheck_alcotest Snap Tkr_engine Tkr_relation Tkr_sqlenc
