test/test_semiring.ml: Alcotest Array Boolean Fuzzy Laws Lineage List Nat Natpoly QCheck Security Semiring_intf Tkr_semiring Tkr_workload Tropical Why_prov
