test/test_optimizer.ml: Alcotest List QCheck QCheck_alcotest Tkr_engine Tkr_middleware Tkr_relation Tkr_workload
