test/test_baseline.ml: Alcotest Array D24 Fixtures List NP Tkr_baseline Tkr_engine Tkr_middleware Tkr_relation Tkr_sqlenc
