test/test_timeline.ml: Alcotest Domain Endpoints Gen Int Interval List QCheck QCheck_alcotest Tkr_timeline
