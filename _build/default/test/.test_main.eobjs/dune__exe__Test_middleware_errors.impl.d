test/test_middleware_errors.ml: Alcotest Array Tkr_engine Tkr_middleware Tkr_relation Tkr_sql
