test/test_extensions.ml: Alcotest Array Fixtures List Printf Tkr_core Tkr_engine Tkr_middleware Tkr_relation Tkr_semiring Tkr_timeline
