test/test_workload.ml: Alcotest Array List Tkr_baseline Tkr_engine Tkr_middleware Tkr_relation Tkr_sqlenc Tkr_workload
