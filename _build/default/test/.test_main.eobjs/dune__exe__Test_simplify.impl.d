test/test_simplify.ml: Alcotest Fixtures Format List NP QCheck QCheck_alcotest Test_representation Tkr_relation
