test/test_sql.ml: Alcotest List Tkr_relation Tkr_sql
