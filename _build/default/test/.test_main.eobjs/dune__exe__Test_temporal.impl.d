test/test_temporal.ml: Alcotest BT Fixtures Format Fun Laws List NT QCheck QCheck_alcotest Tkr_semiring Tkr_temporal Tkr_timeline
