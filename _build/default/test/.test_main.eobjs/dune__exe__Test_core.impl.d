test/test_core.ml: Alcotest D24 Fixtures List NP NT Printf QCheck QCheck_alcotest Snap String Tkr_relation Tkr_timeline
