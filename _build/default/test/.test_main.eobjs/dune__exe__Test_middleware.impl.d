test/test_middleware.ml: Alcotest Array D24 Fixtures List NP Tkr_engine Tkr_middleware Tkr_relation Tkr_sqlenc
