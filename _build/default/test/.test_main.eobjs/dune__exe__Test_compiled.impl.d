test/test_compiled.ml: Alcotest D24 Fixtures Format List NP QCheck QCheck_alcotest Test_representation Tkr_engine Tkr_middleware Tkr_relation Tkr_sqlenc Tkr_workload
