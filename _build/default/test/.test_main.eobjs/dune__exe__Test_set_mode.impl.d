test/test_set_mode.ml: Alcotest Array D24 Fixtures List Printf QCheck QCheck_alcotest Tkr_core Tkr_engine Tkr_middleware Tkr_relation Tkr_semiring Tkr_sqlenc Tkr_timeline
