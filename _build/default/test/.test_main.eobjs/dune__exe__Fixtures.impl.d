test/fixtures.ml: Agg Algebra Expr QCheck Schema Tkr_core Tkr_relation Tkr_semiring Tkr_snapshot Tkr_temporal Tkr_timeline Tuple Value
