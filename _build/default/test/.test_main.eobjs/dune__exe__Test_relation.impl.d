test/test_relation.ml: Agg Alcotest Expr Krel List Option Schema Tkr_relation Tkr_semiring Tuple Value
