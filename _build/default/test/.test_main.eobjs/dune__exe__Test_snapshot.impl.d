test/test_snapshot.ml: Alcotest D24 Fixtures Fun List NP Printf QCheck QCheck_alcotest Snap Tkr_core Tkr_relation Tkr_semiring Tkr_snapshot Tkr_timeline
