test/test_sqlenc.ml: Alcotest D24 Fixtures List NP Printf QCheck QCheck_alcotest Tkr_engine Tkr_relation Tkr_sqlenc
