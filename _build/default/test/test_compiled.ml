(* The closure-compiling executor produces exactly the interpreter's
   multisets: on random expressions, on random rewritten snapshot queries,
   and through the middleware on the paper workload. *)

open Fixtures
module M = Tkr_middleware.Middleware
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Compiled = Tkr_engine.Compiled
module Rewriter = Tkr_sqlenc.Rewriter
module PE = Tkr_sqlenc.Period_enc.Make (D24)
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr

let table_bag = Alcotest.testable Table.pp Table.equal_bag

(* random rewritten snapshot queries: compiled = interpreted *)
let prop_random_queries =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"compiled = interpreted on random plans"
       (QCheck.make
          ~print:(fun ((q, _), _) -> Tkr_relation.Algebra.to_string q)
          QCheck.Gen.(pair Test_representation.gen_query Test_representation.gen_db))
       (fun ((q, _), (wfacts, afacts)) ->
         let works_p = NP.P.of_facts works_schema wfacts in
         let assign_p = NP.P.of_facts assign_schema afacts in
         let db = Database.create ~tmin:0 ~tmax:24 () in
         Database.add_period_table db "works" (PE.to_table works_p);
         Database.add_period_table db "assign" (PE.to_table assign_p);
         let lookup = function
           | "works" -> works_schema
           | "assign" -> assign_schema
           | n -> raise (Schema.Unknown n)
         in
         let plan =
           Rewriter.rewrite ~options:Rewriter.optimized ~tmin:0 ~tmax:24 ~lookup q
         in
         Table.equal_bag (Exec.eval db plan) (Compiled.eval db plan)))

(* expression compiler agrees with the interpreter on every expression the
   simplifier generator produces *)
let prop_exprs =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"compiled expressions = interpreted"
       (QCheck.make ~print:(Format.asprintf "%a" Expr.pp)
         QCheck.Gen.(
           let leaf =
             oneof
               [
                 map (fun i -> Expr.Col (i mod 2)) (int_range 0 1);
                 map (fun i -> Expr.Const (Value.Int i)) (int_range (-3) 3);
                 return (Expr.Const Value.Null);
               ]
           in
           fix
             (fun self depth ->
               if depth = 0 then leaf
               else
                 let sub = self (depth - 1) in
                 oneof
                   [
                     leaf;
                     map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) sub sub;
                     map2 (fun a b -> Expr.Binop (Expr.Mul, a, b)) sub sub;
                     map2 (fun a b -> Expr.Cmp (Expr.Le, a, b)) sub sub;
                     map2 (fun a b -> Expr.Greatest (a, b)) sub sub;
                     map (fun a -> Expr.Is_null a) sub;
                   ])
             3))
       (fun e ->
         let c = Compiled.compile_expr e in
         (* ill-typed combinations raise identically in both executors *)
         List.for_all
           (fun t ->
             match Expr.eval t e with
             | v -> ( match c t with cv -> Value.equal v cv | exception _ -> false)
             | exception Invalid_argument _ -> (
                 match c t with
                 | _ -> false
                 | exception Invalid_argument _ -> true))
           [
             Tuple.make [ Value.Int 1; Value.Int 2 ];
             Tuple.make [ Value.Null; Value.Int 0 ];
             Tuple.make [ Value.Int (-5); Value.Null ];
           ]))

let test_workload_backend_equivalence () =
  let db = Tkr_workload.Employees.generate { (Tkr_workload.Employees.scaled 60) with tmax = 900 } in
  let mi = M.create ~backend:M.Interpreted ~db () in
  let mc = M.create ~backend:M.Compiled ~db () in
  List.iter
    (fun name ->
      let sql = Tkr_workload.Queries.lookup name Tkr_workload.Queries.employee in
      Alcotest.check table_bag name (M.query mi sql) (M.query mc sql))
    [ "join-1"; "join-3"; "agg-1"; "agg-2"; "agg-3"; "diff-1"; "diff-2"; "agg-join" ]

let test_case_like_compiled () =
  (* the branches the random generators don't reach *)
  let e =
    Expr.Case
      ( [ (Expr.Like (Expr.Col 0, "PROMO%"), Expr.Const (Value.Int 1)) ],
        Some (Expr.Const (Value.Int 0)) )
  in
  let c = Compiled.compile_expr e in
  let t1 = Tuple.make [ Value.Str "PROMO X" ] in
  let t2 = Tuple.make [ Value.Str "OTHER" ] in
  Alcotest.(check bool) "promo" true (Value.equal (c t1) (Value.Int 1));
  Alcotest.(check bool) "other" true (Value.equal (c t2) (Value.Int 0));
  let inlist = Expr.In_list (Expr.Col 0, [ Value.Str "A"; Value.Str "B" ]) in
  let ci = Compiled.compile_pred inlist in
  Alcotest.(check bool) "in" true (ci (Tuple.make [ Value.Str "B" ]));
  Alcotest.(check bool) "not in" false (ci (Tuple.make [ Value.Str "C" ]))

let suite =
  ( "compiled executor",
    [
      prop_random_queries;
      prop_exprs;
      Alcotest.test_case "workload: compiled = interpreted" `Slow
        test_workload_backend_equivalence;
      Alcotest.test_case "CASE/LIKE/IN compiled" `Quick test_case_like_compiled;
    ] )
