open Fixtures
module Interval = Tkr_timeline.Interval
module TE = Tkr_temporal.Temporal_element.MakeMonus (Tkr_semiring.Nat)
module TEB = Tkr_temporal.Temporal_element.Make (Tkr_semiring.Boolean)

let nt_testable = Alcotest.testable NT.pp NT.equal

let of_assoc = TE.of_assoc

(* --- Examples from the paper --- *)

let test_example_52 () =
  (* T1 ~ T2 ~ T3 from Examples 5.1/5.2 share the same coalesced form. *)
  let t1 = of_assoc [ ((3, 9), 3); ((18, 20), 2) ] in
  let t2 = of_assoc [ ((3, 9), 1); ((3, 6), 2); ((6, 9), 2); ((18, 20), 2) ] in
  let t3 = of_assoc [ ((3, 5), 3); ((5, 9), 3); ((18, 20), 2) ] in
  Alcotest.check nt_testable "coalesce T1" (TE.coalesce t1) (TE.coalesce t2);
  Alcotest.check nt_testable "coalesce T3" (TE.coalesce t1) (TE.coalesce t3);
  Alcotest.check nt_testable "T1 already coalesced" t1 (TE.coalesce t1)

let test_example_53 () =
  (* N-coalesce of the salary relation history (Figure 3 / Example 5.3). *)
  let t30k = of_assoc [ ((3, 13), 1); ((3, 10), 1) ] in
  Alcotest.check nt_testable "CN(T30k)"
    (of_assoc [ ((3, 10), 2); ((10, 13), 1) ])
    (TE.coalesce t30k);
  (* B-coalesce merges into a single maximal interval. *)
  let t30k_b = TEB.of_assoc [ ((3, 10), true); ((3, 13), true) ] in
  let expected_b = TEB.of_assoc [ ((3, 13), true) ] in
  Alcotest.(check bool) "CB(T30k')" true
    (TEB.equal_coalesced expected_b (TEB.coalesce t30k_b))

let test_timeslice_overlap () =
  (* Section 5.1: overlapping intervals add up. *)
  let t = of_assoc [ ((0, 5), 2); ((4, 5), 1) ] in
  Alcotest.(check int) "τ4" 3 (TE.timeslice t 4);
  Alcotest.(check int) "τ3" 2 (TE.timeslice t 3);
  Alcotest.(check int) "τ5" 0 (TE.timeslice t 5)

let test_example_61 () =
  (* Addition in NT: Example 6.1. *)
  let t1 = of_assoc [ ((3, 10), 1); ((18, 20), 1) ] in
  let t2 = of_assoc [ ((8, 16), 1) ] in
  Alcotest.check nt_testable "T1 + T2"
    (of_assoc [ ((3, 8), 1); ((8, 10), 2); ((10, 16), 1); ((18, 20), 1) ])
    (NT.add t1 t2)

let test_section_71_difference () =
  (* The worked bag-difference example at the end of Section 7.1. *)
  let a = NT.add (of_assoc [ ((3, 12), 1) ]) (of_assoc [ ((6, 14), 1) ]) in
  Alcotest.check nt_testable "assign side"
    (of_assoc [ ((3, 6), 1); ((6, 12), 2); ((12, 14), 1) ])
    a;
  let b =
    NT.add
      (NT.add (of_assoc [ ((3, 10), 1) ]) (of_assoc [ ((8, 16), 1) ]))
      (of_assoc [ ((18, 20), 1) ])
  in
  Alcotest.check nt_testable "works side"
    (of_assoc [ ((3, 8), 1); ((8, 10), 2); ((10, 16), 1); ((18, 20), 1) ])
    b;
  Alcotest.check nt_testable "monus"
    (of_assoc [ ((6, 8), 1); ((10, 12), 1) ])
    (NT.monus a b)

let test_changepoints () =
  (* Example 5.3: the coalesced salary history changes at 3, 10 and at its
     end, 13 (the paper's "14" counts the first point after the last
     covered one in its 1-closed reading; our half-open encoding uses 13) *)
  let t30k = of_assoc [ ((3, 13), 1); ((3, 10), 1) ] in
  Alcotest.(check (list int)) "changepoints" [ 3; 10; 13 ] (TE.changepoints t30k);
  Alcotest.(check (list int)) "empty element" [] (TE.changepoints TE.zero);
  Alcotest.(check int) "covered duration" 10
    (TE.covered_duration (TE.coalesce t30k))

let test_zero_one () =
  Alcotest.(check int) "τ of one" 1 (NT.timeslice NT.one 12);
  Alcotest.(check int) "τ of zero" 0 (NT.timeslice NT.zero 12);
  Alcotest.check nt_testable "one is [0,24)" (of_assoc [ ((0, 24), 1) ]) NT.one

let test_mul_example () =
  (* Multiplication restricts to intersections (join semantics). *)
  let a = of_assoc [ ((0, 10), 2) ] and b = of_assoc [ ((5, 15), 3) ] in
  Alcotest.check nt_testable "product" (of_assoc [ ((5, 10), 6) ]) (NT.mul a b);
  let c = of_assoc [ ((0, 4), 1) ] in
  Alcotest.check nt_testable "disjoint product is zero" NT.zero (NT.mul b c)

(* --- Property-based checks of Lemma 5.1, Lemma 6.1, Thm 6.3/7.2 --- *)

let raw_arb =
  QCheck.make
    ~print:(fun l -> Format.asprintf "%a" TE.pp l)
    raw_nt_gen

let qt name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb prop)

let prop_idempotent =
  qt "coalesce idempotent (Lemma 5.1)" raw_arb (fun el ->
      let c = TE.coalesce el in
      TE.equal_coalesced c (TE.coalesce c))

let prop_equivalence_preserving =
  qt "coalesce preserves snapshots (Lemma 5.1)" raw_arb (fun el ->
      let c = TE.coalesce el in
      List.for_all (fun t -> TE.timeslice el t = TE.timeslice c t)
        (List.init 24 Fun.id))

let prop_is_coalesced =
  qt "coalesce output is in normal form" raw_arb (fun el ->
      TE.is_coalesced (TE.coalesce el))

let prop_uniqueness =
  qt "snapshot-equivalent iff equal coalesced (Lemma 5.1)"
    (QCheck.pair raw_arb raw_arb) (fun (a, b) ->
      let se =
        List.for_all (fun t -> TE.timeslice a t = TE.timeslice b t)
          (List.init 24 Fun.id)
      in
      se = TE.equal_coalesced (TE.coalesce a) (TE.coalesce b))

let prop_lemma_61_add =
  qt "coalesce pushes into +KP (Lemma 6.1)" (QCheck.pair raw_arb raw_arb)
    (fun (a, b) ->
      TE.equal_coalesced
        (TE.coalesce (TE.add_pointwise a b))
        (TE.coalesce (TE.add_pointwise (TE.coalesce a) b)))

let prop_lemma_61_mul =
  qt "coalesce pushes into ·KP (Lemma 6.1)" (QCheck.pair raw_arb raw_arb)
    (fun (a, b) ->
      TE.equal_coalesced
        (TE.coalesce (TE.mul_pointwise a b))
        (TE.coalesce (TE.mul_pointwise (TE.coalesce a) b)))

let prop_lemma_61_monus =
  qt "coalesce pushes into -KP (extended Lemma 6.1)"
    (QCheck.pair raw_arb raw_arb) (fun (a, b) ->
      TE.equal_coalesced
        (TE.coalesce (TE.monus_pointwise a b))
        (TE.coalesce (TE.monus_pointwise (TE.coalesce a) (TE.coalesce b))))

let nt_arb =
  QCheck.make ~print:(fun k -> Format.asprintf "%a" NT.pp k) nt_gen

let prop_timeslice_hom_add =
  qt "τ is additive (Thm 6.3)" (QCheck.pair nt_arb nt_arb) (fun (a, b) ->
      List.for_all
        (fun t -> NT.timeslice (NT.add a b) t = NT.timeslice a t + NT.timeslice b t)
        (List.init 24 Fun.id))

let prop_timeslice_hom_mul =
  qt "τ is multiplicative (Thm 6.3)" (QCheck.pair nt_arb nt_arb) (fun (a, b) ->
      List.for_all
        (fun t -> NT.timeslice (NT.mul a b) t = NT.timeslice a t * NT.timeslice b t)
        (List.init 24 Fun.id))

let prop_timeslice_hom_monus =
  qt "τ commutes with monus (Thm 7.2)" (QCheck.pair nt_arb nt_arb)
    (fun (a, b) ->
      List.for_all
        (fun t ->
          NT.timeslice (NT.monus a b) t
          = max 0 (NT.timeslice a t - NT.timeslice b t))
        (List.init 24 Fun.id))

(* --- Period semirings are semirings (Thm 6.2) --- *)

module NT_arb = struct
  type t = NT.t

  let gen = nt_gen
end

module BT_arb = struct
  type t = BT.t

  let gen = bt_gen
end

module NTL = Laws.Semiring_laws (NT) (NT_arb)
module NTM = Laws.Monus_laws (NT) (NT_arb)
module BTL = Laws.Semiring_laws (BT) (BT_arb)
module BTM = Laws.Monus_laws (BT) (BT_arb)

let suite =
  ( "temporal",
    [
      Alcotest.test_case "examples 5.1/5.2" `Quick test_example_52;
      Alcotest.test_case "example 5.3 (fig 3)" `Quick test_example_53;
      Alcotest.test_case "overlap sums" `Quick test_timeslice_overlap;
      Alcotest.test_case "example 6.1 (addition)" `Quick test_example_61;
      Alcotest.test_case "section 7.1 difference" `Quick test_section_71_difference;
      Alcotest.test_case "changepoints and duration" `Quick test_changepoints;
      Alcotest.test_case "zero and one of NT" `Quick test_zero_one;
      Alcotest.test_case "multiplication" `Quick test_mul_example;
      prop_idempotent;
      prop_equivalence_preserving;
      prop_is_coalesced;
      prop_uniqueness;
      prop_lemma_61_add;
      prop_lemma_61_mul;
      prop_lemma_61_monus;
      prop_timeslice_hom_add;
      prop_timeslice_hom_mul;
      prop_timeslice_hom_monus;
    ]
    @ NTL.tests @ NTM.tests @ BTL.tests @ BTM.tests )
