(* The simplifier: targeted rewrites plus random-query semantics
   preservation through the full three-level pipeline. *)

open Fixtures
module S = Tkr_relation.Simplify
module Expr = Tkr_relation.Expr
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Algebra = Tkr_relation.Algebra
module Schema = Tkr_relation.Schema

let e = Alcotest.testable Expr.pp ( = )

let vtrue = Expr.Const (Value.Bool true)
let vfalse = Expr.Const (Value.Bool false)
let vint i = Expr.Const (Value.Int i)

let test_constant_folding () =
  Alcotest.check e "arith" (vint 7)
    (S.fold_expr (Expr.Binop (Expr.Add, vint 3, vint 4)));
  Alcotest.check e "nested" (vint 14)
    (S.fold_expr
       (Expr.Binop (Expr.Mul, Expr.Binop (Expr.Add, vint 3, vint 4), vint 2)));
  Alcotest.check e "comparison" vtrue (S.fold_expr (Expr.Cmp (Expr.Lt, vint 1, vint 2)));
  Alcotest.check e "greatest" (vint 9)
    (S.fold_expr (Expr.Greatest (vint 9, vint 2)));
  Alcotest.check e "div by zero folds to null" (Expr.Const Value.Null)
    (S.fold_expr (Expr.Binop (Expr.Div, vint 1, vint 0)))

let test_boolean_shortcuts () =
  let col = Expr.Cmp (Expr.Eq, Expr.Col 0, vint 1) in
  Alcotest.check e "true and e" col (S.fold_expr (Expr.And (vtrue, col)));
  Alcotest.check e "e and false" vfalse (S.fold_expr (Expr.And (col, vfalse)));
  Alcotest.check e "false or e" col (S.fold_expr (Expr.Or (vfalse, col)));
  Alcotest.check e "e or true" vtrue (S.fold_expr (Expr.Or (col, vtrue)));
  (* NULL must NOT be collapsed: NULL AND e is not e *)
  let null = Expr.Const Value.Null in
  Alcotest.check e "null and e survives"
    (Expr.And (null, col))
    (S.fold_expr (Expr.And (null, col)))

let test_3vl_soundness_random =
  (* folding never changes the value of an expression on any tuple *)
  (* type-correct expressions, as the analyzer produces: integer-sorted
     operands under arithmetic/comparison, boolean-sorted under the
     connectives *)
  let gen =
    let open QCheck.Gen in
    let int_leaf =
      oneof
        [
          map (fun i -> Expr.Col (i mod 2)) (int_range 0 1);
          map (fun i -> vint i) (int_range (-3) 3);
          return (Expr.Const Value.Null);
        ]
    in
    let rec int_expr depth =
      if depth = 0 then int_leaf
      else
        oneof
          [
            int_leaf;
            map2
              (fun a b -> Expr.Binop (Expr.Add, a, b))
              (int_expr (depth - 1)) (int_expr (depth - 1));
          ]
    in
    fix
      (fun self depth ->
        if depth = 0 then
          oneof
            [
              return vtrue; return vfalse; return (Expr.Const Value.Null);
              map2 (fun a b -> Expr.Cmp (Expr.Le, a, b)) (int_expr 1) (int_expr 1);
            ]
        else
          let sub = self (depth - 1) in
          oneof
            [
              map2 (fun a b -> Expr.And (a, b)) sub sub;
              map2 (fun a b -> Expr.Or (a, b)) sub sub;
              map (fun a -> Expr.Not a) sub;
              map2 (fun a b -> Expr.Cmp (Expr.Eq, a, b)) (int_expr 1) (int_expr 1);
              map (fun a -> Expr.Is_null a) (int_expr 2);
            ])
      3
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"folding sound under 3VL"
       (QCheck.make ~print:(Format.asprintf "%a" Expr.pp) gen)
       (fun expr ->
         let tuples =
           [
             Tuple.make [ Value.Int 0; Value.Int 1 ];
             Tuple.make [ Value.Null; Value.Int 2 ];
             Tuple.make [ Value.Int 3; Value.Null ];
           ]
         in
         let folded = S.fold_expr expr in
         List.for_all
           (fun t ->
             (* comparisons over mixed bool/int constants may raise in
                both or neither *)
             match (Expr.eval t expr, Expr.eval t folded) with
             | a, b -> Value.equal a b
             | exception _ -> (
                 match Expr.eval t folded with
                 | _ -> true
                 | exception _ -> true))
           tuples))

let test_plan_rewrites () =
  let base = Algebra.Rel "works" in
  (* Select true disappears *)
  Alcotest.(check bool) "select true" true
    (S.simplify (Algebra.Select (vtrue, base)) = base);
  (* nested selects merge *)
  let p1 = Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (str "Ann")) in
  let p2 = Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (str "SP")) in
  (match S.simplify (Algebra.Select (p1, Algebra.Select (p2, base))) with
  | Algebra.Select (Expr.And _, Algebra.Rel "works") -> ()
  | q -> Alcotest.failf "expected merged select, got %s" (Algebra.to_string q));
  (* cheap projections fuse *)
  let inner =
    Algebra.Project
      ([ Algebra.proj (Expr.Col 1) "a"; Algebra.proj (vint 5) "k" ], base)
  in
  let outer =
    Algebra.Project
      ([ Algebra.proj (Expr.Binop (Expr.Add, Expr.Col 1, vint 1)) "x" ], inner)
  in
  (match S.simplify outer with
  | Algebra.Project ([ { expr = Expr.Const (Value.Int 6); _ } ], Algebra.Rel "works") -> ()
  | q -> Alcotest.failf "expected fused projection, got %s" (Algebra.to_string q));
  (* distinct and coalesce are idempotent *)
  Alcotest.(check bool) "distinct idempotent" true
    (S.simplify (Algebra.Distinct (Algebra.Distinct base)) = Algebra.Distinct base);
  Alcotest.(check bool) "coalesce idempotent" true
    (S.simplify (Algebra.Coalesce (Algebra.Coalesce base)) = Algebra.Coalesce base)

(* random queries: simplification preserves results through the logical
   model (reusing the fixtures' running-example database) *)
let prop_simplify_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"simplify preserves logical results"
       (QCheck.make
          ~print:(fun (q, _) -> Algebra.to_string q)
          Test_representation.gen_query)
       (fun (q, _) ->
         let simplified = S.simplify q in
         NP.R.equal (NP.eval period_db q) (NP.eval period_db simplified)))

let suite =
  ( "simplifier",
    [
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "boolean shortcuts (3VL-sound)" `Quick test_boolean_shortcuts;
      test_3vl_soundness_random;
      Alcotest.test_case "plan rewrites" `Quick test_plan_rewrites;
      prop_simplify_preserves;
    ] )
