(* The abstract model in isolation: snapshot K-relations over several
   semirings, pointwise evaluation, timeslice bounds, and set semantics
   (B^T) as a second concrete instance of the whole logical pipeline. *)

open Fixtures
module Domain = Tkr_timeline.Domain
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra

module BSnap = Tkr_snapshot.Snapshot_rel.Make (Tkr_semiring.Boolean)
module BPeriod = Tkr_core.Period_rel.Make (Tkr_semiring.Boolean) (D24)

let bool_facts =
  [
    (tup [ str "a" ], (3, 10), true);
    (tup [ str "a" ], (8, 14), true);
    (tup [ str "b" ], (0, 5), true);
  ]

let test_timeslice_bounds () =
  let r = Snap.of_facts D24.domain works_schema works_facts in
  Alcotest.check_raises "outside domain"
    (Invalid_argument "Snapshot_rel.timeslice: time point outside domain")
    (fun () -> ignore (Snap.timeslice r 24))

let test_constant_relation () =
  let rel =
    Snap.R.of_list works_schema [ (tup [ str "x"; str "y" ], 2) ]
  in
  let c = Snap.constant D24.domain rel in
  List.iter
    (fun t -> Alcotest.(check bool) "same everywhere" true
        (Snap.R.equal rel (Snap.timeslice c t)))
    [ 0; 12; 23 ]

(* set semantics end to end: B-relations coalesce overlapping intervals
   into maximal ones (standard coalescing), and difference is set
   difference *)
let test_set_semantics_coalescing () =
  let one_schema = Schema.make [ Schema.attr "x" Value.TStr ] in
  let r = BPeriod.of_facts one_schema bool_facts in
  (* 'a' holds during [3, 14): one maximal interval, true *)
  let el = BPeriod.R.annot r (tup [ str "a" ]) in
  Alcotest.(check int) "single coalesced interval" 1 (List.length el);
  let i, v = List.hd el in
  Alcotest.(check bool) "true" true v;
  Alcotest.(check (pair int int)) "[3,14)" (3, 14)
    (Tkr_timeline.Interval.b i, Tkr_timeline.Interval.e i)

let test_set_difference () =
  let one_schema = Schema.make [ Schema.attr "x" Value.TStr ] in
  let l = BPeriod.of_facts one_schema [ (tup [ str "a" ], (0, 20), true) ] in
  let r = BPeriod.of_facts one_schema [ (tup [ str "a" ], (5, 9), true) ] in
  let db = function "l" -> l | "r" -> r | n -> invalid_arg n in
  let result = BPeriod.eval db (Algebra.Diff (Algebra.Rel "l", Algebra.Rel "r")) in
  let el = BPeriod.R.annot result (tup [ str "a" ]) in
  Alcotest.(check int) "two remainder intervals" 2 (List.length el);
  (* snapshot check at a few points *)
  List.iter
    (fun (t, expected) ->
      let snap = BPeriod.timeslice result t in
      Alcotest.(check bool)
        (Printf.sprintf "at %d" t)
        expected
        (BPeriod.KR.annot snap (tup [ str "a" ])))
    [ (2, true); (6, false); (12, true) ]

let test_set_vs_bag_projection () =
  (* projecting works onto skill: bag semantics keeps multiplicity 2
     during [8, 10), set semantics keeps true *)
  let q = Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works") in
  let bag = NP.eval period_db q in
  let sp = tup [ str "SP" ] in
  Alcotest.(check int) "bag multiplicity at 9" 2
    (NP.P.KR.annot (NP.P.timeslice bag 9) sp);
  let bworks =
    BPeriod.of_facts works_schema
      (List.map (fun (t, iv, _) -> (t, iv, true)) works_facts)
  in
  let bdb = function "works" -> bworks | n -> invalid_arg n in
  let bres = BPeriod.eval bdb q in
  Alcotest.(check bool) "set membership at 9" true
    (BPeriod.KR.annot (BPeriod.timeslice bres 9) sp)

(* snapshot reducibility for B over random facts *)
let bool_facts_gen =
  QCheck.Gen.(
    list_size (int_range 0 8)
      (map3
         (fun name b d -> (tup [ str name ], (b, min 24 (b + d)), true))
         (oneofl [ "a"; "b"; "c" ])
         (int_range 0 22) (int_range 1 8)))

let prop_b_reducibility =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"B^T: snapshot reducibility for select/project/union/diff"
       (QCheck.make
          ~print:(fun (f1, f2) ->
            Printf.sprintf "%d + %d facts" (List.length f1) (List.length f2))
          QCheck.Gen.(pair bool_facts_gen bool_facts_gen))
       (fun (f1, f2) ->
         let one_schema = Schema.make [ Schema.attr "x" Value.TStr ] in
         let l = BPeriod.of_facts one_schema f1 in
         let r = BPeriod.of_facts one_schema f2 in
         let db = function "l" -> l | "r" -> r | n -> invalid_arg n in
         let sl = BSnap.of_facts D24.domain one_schema f1 in
         let sr = BSnap.of_facts D24.domain one_schema f2 in
         let sdb = function "l" -> sl | "r" -> sr | n -> invalid_arg n in
         List.for_all
           (fun q ->
             let p = BPeriod.eval db q in
             let s = BSnap.eval sdb q in
             List.for_all
               (fun t -> BPeriod.KR.equal (BPeriod.timeslice p t) (BSnap.timeslice s t))
               (List.init 24 Fun.id))
           [
             Algebra.Diff (Algebra.Rel "l", Algebra.Rel "r");
             Algebra.Union (Algebra.Rel "l", Algebra.Rel "r");
             Algebra.Select
               (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (Value.Str "a")), Algebra.Rel "l");
             Algebra.Join
               (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Col 1), Algebra.Rel "l", Algebra.Rel "r");
           ]))

(* the same history stated through different fact lists encodes uniquely *)
let prop_unique_encoding =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"of_facts is representation-unique"
       (QCheck.make ~print:(fun fs -> string_of_int (List.length fs)) facts_gen)
       (fun facts ->
         (* split every fact into two halves: same snapshots, so the
            canonical encodings must be structurally equal *)
         let split_facts =
           List.concat_map
             (fun (t, (b, e), k) ->
               if e - b >= 2 then
                 let m = (b + e) / 2 in
                 [ (t, (b, m), k); (t, (m, e), k) ]
               else [ (t, (b, e), k) ])
             facts
         in
         NP.R.equal
           (NP.P.of_facts one_col_schema facts)
           (NP.P.of_facts one_col_schema split_facts)))

let suite =
  ( "abstract model & set semantics",
    [
      Alcotest.test_case "timeslice bounds" `Quick test_timeslice_bounds;
      Alcotest.test_case "constant snapshot relation" `Quick test_constant_relation;
      Alcotest.test_case "B^T coalesces to maximal intervals" `Quick
        test_set_semantics_coalescing;
      Alcotest.test_case "B^T set difference" `Quick test_set_difference;
      Alcotest.test_case "set vs bag projection" `Quick test_set_vs_bag_projection;
      prop_b_reducibility;
      prop_unique_encoding;
    ] )
