(* The implementation level: PERIODENC round trips, the engine's sweep
   implementations of coalesce/split agree with the spec-level transcriptions
   of Defs. 8.2/8.3, and — the heart of Theorem 8.1 — rewritten queries
   executed by the engine produce exactly the logical model's results, with
   and without the Section 9 optimizations. *)

open Fixtures
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Ops = Tkr_engine.Ops
module Reference = Tkr_sqlenc.Reference
module Rewriter = Tkr_sqlenc.Rewriter
module PE = Tkr_sqlenc.Period_enc.Make (D24)
module Algebra = Tkr_relation.Algebra
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Expr = Tkr_relation.Expr
module Tuple = Tkr_relation.Tuple

let table_bag = Alcotest.testable Table.pp Table.equal_bag
let period_rel = Alcotest.testable NP.R.pp NP.R.equal

(* Engine database holding the running example as period tables. *)
let make_db () =
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "works" (PE.to_table works_period);
  Database.add_period_table db "assign" (PE.to_table assign_period);
  db

let lookup = function
  | "works" -> works_schema
  | "assign" -> assign_schema
  | n -> raise (Schema.Unknown n)

let run_rewritten options q =
  let db = make_db () in
  let rewritten = Rewriter.rewrite ~options ~tmin:0 ~tmax:24 ~lookup q in
  PE.of_table (Exec.eval db rewritten)

let queries =
  [
    ("qonduty", qonduty);
    ("qskillreq", qskillreq);
    ("qmachines", qmachines);
    ( "grouped-count",
      Algebra.Agg
        ( [ Algebra.proj (Expr.Col 1) "skill" ],
          [ { func = Tkr_relation.Agg.Count_star; agg_name = "cnt" } ],
          Algebra.Rel "works" ) );
    ( "avg-ungrouped",
      Algebra.Agg
        ( [],
          [
            {
              func = Tkr_relation.Agg.Avg (Expr.Const (Value.Int 10));
              agg_name = "a";
            };
          ],
          Algebra.Rel "works" ) );
    ( "distinct-skill",
      Algebra.Distinct
        (Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works"))
    );
    ( "union",
      Algebra.Union
        ( Algebra.Project ([ Algebra.proj (Expr.Col 1) "s" ], Algebra.Rel "works"),
          Algebra.Project ([ Algebra.proj (Expr.Col 1) "s" ], Algebra.Rel "assign") ) );
    ( "select-scan",
      Algebra.Select
        (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (str "SP")), Algebra.Rel "works") );
    ( "join-then-diff",
      Algebra.Diff
        ( Algebra.Project ([ Algebra.proj (Expr.Col 1) "s" ], Algebra.Rel "assign"),
          Algebra.Project
            ( [ Algebra.proj (Expr.Col 1) "s" ],
              Algebra.Join
                ( Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Col 3),
                  Algebra.Rel "assign",
                  Algebra.Rel "works" ) ) ) );
  ]

let test_theorem_81 options () =
  List.iter
    (fun (name, q) ->
      let logical = NP.eval period_db q in
      let via_engine = run_rewritten options q in
      Alcotest.check period_rel name logical via_engine)
    queries

(* PERIODENC round trip *)
let test_periodenc_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.check period_rel "roundtrip" r (PE.of_table (PE.to_table r)))
    [ works_period; assign_period; expected_onduty; expected_skillreq ]

(* random encoded tables for differential operator tests *)
let table_gen =
  let open QCheck.Gen in
  let row =
    map3
      (fun name b d ->
        Tuple.make
          [ Value.Str name; Value.Int b; Value.Int (min 24 (b + d)) ])
      (oneofl [ "a"; "b"; "c" ])
      (int_range 0 22) (int_range 1 8)
  in
  map
    (fun rows ->
      Table.make
        (Schema.make
           [
             Schema.attr "x" Value.TStr;
             Schema.attr "__b" Value.TInt;
             Schema.attr "__e" Value.TInt;
           ])
        rows)
    (list_size (int_range 0 15) row)

let table_arb = QCheck.make ~print:(fun t -> Table.to_text t) table_gen

let prop_coalesce_matches_spec =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"engine coalesce = Def 8.2 spec"
       table_arb (fun t ->
         Table.equal_bag (Ops.coalesce t) (Reference.coalesce_spec t)))

let prop_coalesce_idempotent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"engine coalesce idempotent" table_arb
       (fun t ->
         let c = Ops.coalesce t in
         Table.equal_bag c (Ops.coalesce c)))

let prop_coalesce_preserves_snapshots =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"engine coalesce snapshot-preserving"
       table_arb (fun t ->
         NP.R.equal (PE.of_table t) (PE.of_table (Ops.coalesce t))))

let prop_split_matches_spec =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"engine split = Def 8.3 spec"
       (QCheck.pair table_arb table_arb) (fun (l, r) ->
         (* group on the data column *)
         Table.equal_bag (Ops.split [ 0 ] l r) (Reference.split_spec [ 0 ] l r)))

let prop_split_empty_group =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"engine split with empty grouping"
       (QCheck.pair table_arb table_arb) (fun (l, r) ->
         Table.equal_bag (Ops.split [] l r) (Reference.split_spec [] l r)))

let prop_split_preserves_snapshots =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"split is snapshot-preserving"
       (QCheck.pair table_arb table_arb) (fun (l, r) ->
         NP.R.equal (PE.of_table l) (PE.of_table (Ops.split [ 0 ] l r))))

(* the sort-based overlap join agrees with hash join + overlap residual *)
let prop_interval_join =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"interval join = hash join + residual"
       (QCheck.pair table_arb table_arb) (fun (l, r) ->
         let via_sweep =
           Tkr_engine.Interval_join.overlap_join ~left_keys:[ 0 ]
             ~right_keys:[ 0 ] l r
         in
         let pred =
           Expr.(
             And
               ( Cmp (Eq, Col 0, Col 3),
                 And
                   ( Cmp (Lt, Col 1, Col 5),
                     Cmp (Lt, Col 4, Col 2) ) ))
         in
         let via_hash = Exec.join pred l r in
         Table.equal_bag via_sweep via_hash))

(* direct operator-level check: the fused split+aggregate equals the
   logical Def. 7.1 aggregation, on tables with an integer data column so
   SUM/AVG/MIN/MAX are all exercised *)
let int_table_gen =
  let open QCheck.Gen in
  let row =
    map3
      (fun k b d ->
        Tuple.make
          [ Value.Int k; Value.Int b; Value.Int (min 24 (b + d)) ])
      (int_range 0 4) (int_range 0 22) (int_range 1 8)
  in
  map
    (fun rows ->
      Table.make
        (Schema.make
           [
             Schema.attr "k" Value.TInt;
             Schema.attr "__b" Value.TInt;
             Schema.attr "__e" Value.TInt;
           ])
        rows)
    (list_size (int_range 0 15) row)

let agg_specs : Algebra.agg_spec list =
  [
    { func = Tkr_relation.Agg.Count (Expr.Col 0); agg_name = "c" };
    { func = Tkr_relation.Agg.Sum (Expr.Col 0); agg_name = "s" };
    { func = Tkr_relation.Agg.Min (Expr.Col 0); agg_name = "mn" };
    { func = Tkr_relation.Agg.Avg (Expr.Col 0); agg_name = "av" };
  ]

let prop_split_agg_vs_logical grouped =
  let name =
    Printf.sprintf "fused split+agg = Def 7.1 aggregation (%s)"
      (if grouped then "grouped" else "gap-covering")
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name
       (QCheck.make ~print:Table.to_text int_table_gen)
       (fun t ->
         let fused =
           Ops.split_agg
             ~group:(if grouped then [ 0 ] else [])
             ~aggs:agg_specs
             ~gap:(if grouped then None else Some (0, 24))
             t
         in
         let logical =
           let db = function
             | "t" -> PE.of_table t
             | n -> invalid_arg n
           in
           NP.eval db
             (Algebra.Agg
                ( (if grouped then [ Algebra.proj (Expr.Col 0) "g" ] else []),
                  agg_specs,
                  Algebra.Rel "t" ))
         in
         NP.R.equal (PE.of_table fused) logical))

let suite =
  ( "sqlenc (implementation level)",
    [
      Alcotest.test_case "PERIODENC round trip" `Quick test_periodenc_roundtrip;
      Alcotest.test_case "theorem 8.1 (optimized rewriting)" `Quick
        (test_theorem_81 Rewriter.optimized);
      Alcotest.test_case "theorem 8.1 (literal Fig. 4 rewriting)" `Quick
        (test_theorem_81 Rewriter.literal);
      Alcotest.test_case "theorem 8.1 (final coalesce, unfused agg)" `Quick
        (test_theorem_81
           { Rewriter.final_coalesce_only = true; fused_split_agg = false });
      Alcotest.test_case "theorem 8.1 (per-op coalesce, fused agg)" `Quick
        (test_theorem_81
           { Rewriter.final_coalesce_only = false; fused_split_agg = true });
      prop_coalesce_matches_spec;
      prop_coalesce_idempotent;
      prop_coalesce_preserves_snapshots;
      prop_split_matches_spec;
      prop_split_empty_group;
      prop_split_preserves_snapshots;
      prop_interval_join;
      prop_split_agg_vs_logical true;
      prop_split_agg_vs_logical false;
    ] )
