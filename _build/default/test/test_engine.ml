(* Unit tests for the physical engine: each operator against the reference
   multiset evaluator on random inputs, plus CSV persistence. *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Csv_io = Tkr_engine.Csv_io
module NR = Krel.MakeMonus (Tkr_semiring.Nat)

let table_bag = Alcotest.testable Table.pp Table.equal_bag

let schema2 =
  Schema.make [ Schema.attr "k" Value.TInt; Schema.attr "v" Value.TStr ]

let gen_table =
  let open QCheck.Gen in
  let row =
    map2
      (fun k v -> Tuple.make [ Value.Int k; Value.Str v ])
      (int_range 0 5)
      (oneofl [ "a"; "b"; "c" ])
  in
  map (Table.make schema2) (list_size (int_range 0 12) row)

let arb2 =
  QCheck.make ~print:(fun (a, b) -> Table.to_text a ^ "---\n" ^ Table.to_text b)
    QCheck.Gen.(pair gen_table gen_table)

let qt name prop = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:300 ~name arb2 prop)

(* reference via Neval over N-relations *)
let eval_ref q (a : Table.t) (b : Table.t) =
  let db = function
    | "a" -> Table.to_nrel a
    | "b" -> Table.to_nrel b
    | n -> invalid_arg n
  in
  Table.of_nrel (Neval.eval db q)

let eval_engine q (a : Table.t) (b : Table.t) =
  let db = Database.create () in
  Database.add_table db "a" a;
  Database.add_table db "b" b;
  Exec.eval db q

let check_query name q =
  qt name (fun (a, b) -> Table.equal_bag (eval_ref q a b) (eval_engine q a b))

let prop_union = check_query "union all" (Algebra.Union (Rel "a", Rel "b"))

let prop_except =
  check_query "except all (counting)" (Algebra.Diff (Rel "a", Rel "b"))

let prop_select =
  check_query "selection"
    (Algebra.Select
       (Expr.Cmp (Expr.Le, Expr.Col 0, Expr.Const (Value.Int 2)), Rel "a"))

let prop_hash_join =
  check_query "equi join (hash)"
    (Algebra.Join (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Col 2), Rel "a", Rel "b"))

let prop_theta_join =
  check_query "theta join (nested loop)"
    (Algebra.Join (Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.Col 2), Rel "a", Rel "b"))

let prop_agg =
  check_query "grouped aggregation"
    (Algebra.Agg
       ( [ Algebra.proj (Expr.Col 1) "v" ],
         [
           { Algebra.func = Agg.Count_star; agg_name = "c" };
           { Algebra.func = Agg.Sum (Expr.Col 0); agg_name = "s" };
           { Algebra.func = Agg.Min (Expr.Col 0); agg_name = "m" };
         ],
         Rel "a" ))

let prop_agg_ungrouped =
  check_query "ungrouped aggregation (single row on empty input)"
    (Algebra.Agg
       ( [],
         [
           { Algebra.func = Agg.Count_star; agg_name = "c" };
           { Algebra.func = Agg.Avg (Expr.Col 0); agg_name = "a" };
         ],
         Rel "a" ))

let prop_distinct = check_query "distinct" (Algebra.Distinct (Rel "a"))

let prop_project =
  check_query "projection with expressions"
    (Algebra.Project
       ( [
           Algebra.proj (Expr.Binop (Expr.Mul, Expr.Col 0, Expr.Const (Value.Int 2))) "d";
         ],
         Rel "a" ))

(* hash join with NULL keys never matches *)
let test_null_keys () =
  let a = Table.make schema2 [ Tuple.make [ Value.Null; Value.Str "x" ] ] in
  let b = Table.make schema2 [ Tuple.make [ Value.Null; Value.Str "y" ] ] in
  let q = Algebra.Join (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Col 2), Algebra.Rel "a", Algebra.Rel "b") in
  Alcotest.(check int) "null keys don't join" 0
    (Table.cardinality (eval_engine q a b))

(* database catalog *)
let test_database_period_reorder () =
  let schema =
    Schema.make
      [
        Schema.attr "b" Value.TInt; Schema.attr "x" Value.TStr;
        Schema.attr "e" Value.TInt;
      ]
  in
  let t =
    Table.make schema [ Tuple.make [ Value.Int 1; Value.Str "a"; Value.Int 5 ] ]
  in
  let db = Database.create () in
  Database.add_period_table db "t" ~begin_col:0 ~end_col:2 t;
  let stored = Database.find db "t" in
  Alcotest.(check (list string)) "period moved last" [ "x"; "b"; "e" ]
    (Schema.names (Table.schema stored));
  Alcotest.(check (pair int int)) "bounds widened" (0, 5) (Database.time_bounds db);
  Alcotest.(check (list string)) "data schema hides period" [ "x" ]
    (Schema.names (Database.data_schema_of db "t"))

let test_database_errors () =
  let db = Database.create () in
  Alcotest.check_raises "unknown table" (Schema.Unknown "nope") (fun () ->
      ignore (Database.find db "nope"))

(* CSV round trip with tricky values *)
let test_csv_roundtrip () =
  let schema =
    Schema.make
      [
        Schema.attr "i" Value.TInt; Schema.attr "f" Value.TFloat;
        Schema.attr "s" Value.TStr; Schema.attr "b" Value.TBool;
      ]
  in
  let t =
    Table.make schema
      [
        Tuple.make [ Value.Int 1; Value.Float 2.5; Value.Str "plain"; Value.Bool true ];
        Tuple.make [ Value.Null; Value.Null; Value.Str "with, comma"; Value.Bool false ];
        Tuple.make [ Value.Int (-3); Value.Float 1e-9; Value.Str "quo\"te"; Value.Null ];
        Tuple.make [ Value.Int 0; Value.Float 0.1; Value.Str ""; Value.Bool true ];
      ]
  in
  let path = Filename.temp_file "tkr" ".csv" in
  Csv_io.write_table path t;
  let back = Csv_io.read_table path in
  Sys.remove path;
  Alcotest.check table_bag "roundtrip" t back;
  Alcotest.(check bool) "schema preserved" true
    (Schema.equal schema (Table.schema back))

let csv_gen =
  let open QCheck.Gen in
  let value =
    frequency
      [
        (1, return Value.Null);
        (3, map (fun i -> Value.Int i) (int_range (-100) 100));
        (3, map (fun s -> Value.Str s) (oneofl [ "x"; "a,b"; "q\"q"; ""; "nl" ]));
      ]
  in
  map
    (fun rows ->
      Table.make
        (Schema.make [ Schema.attr "a" Value.TInt; Schema.attr "b" Value.TStr ])
        rows)
    (list_size (int_range 0 10)
       (map2 (fun a b ->
            let a = match a with Value.Str _ -> Value.Null | v -> v in
            let b = match b with Value.Int _ -> Value.Null | v -> v in
            Tuple.make [ a; b ]) value value))

let prop_csv =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"csv roundtrip (random)"
       (QCheck.make ~print:Table.to_text csv_gen)
       (fun t ->
         let path = Filename.temp_file "tkr" ".csv" in
         Csv_io.write_table path t;
         let back = Csv_io.read_table path in
         Sys.remove path;
         Table.equal_bag t back))

let test_to_text () =
  let t =
    Table.make schema2
      [ Tuple.make [ Value.Int 1; Value.Str "hello" ] ]
  in
  let text = Table.to_text t in
  Alcotest.(check bool) "header" true
    (String.length text > 0 && String.sub text 0 1 = "k")

let suite =
  ( "engine (physical operators)",
    [
      prop_union; prop_except; prop_select; prop_hash_join; prop_theta_join;
      prop_agg; prop_agg_ungrouped; prop_distinct; prop_project;
      Alcotest.test_case "null join keys" `Quick test_null_keys;
      Alcotest.test_case "period table registration" `Quick
        test_database_period_reorder;
      Alcotest.test_case "catalog errors" `Quick test_database_errors;
      Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
      prop_csv;
      Alcotest.test_case "table rendering" `Quick test_to_text;
    ] )
