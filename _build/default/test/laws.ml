(* Functorized QCheck law suites for (m-)semirings.  Each instance of the
   paper's framework (including every period semiring K^T) must satisfy
   these; Thm. 6.2 is exercised by instantiating them on K^T. *)

module type ARB = sig
  type t

  val gen : t QCheck.Gen.t
end

module Semiring_laws
    (K : Tkr_semiring.Semiring_intf.S)
    (A : ARB with type t = K.t) =
struct
  let arb = QCheck.make ~print:(fun k -> Format.asprintf "%a" K.pp k) A.gen
  let pair = QCheck.pair arb arb
  let triple = QCheck.triple arb arb arb
  let count = 200

  let test name arb prop =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:(K.name ^ ": " ^ name) arb prop)

  let tests =
    [
      test "add commutative" pair (fun (a, b) ->
          K.equal (K.add a b) (K.add b a));
      test "add associative" triple (fun (a, b, c) ->
          K.equal (K.add a (K.add b c)) (K.add (K.add a b) c));
      test "add zero neutral" arb (fun a -> K.equal (K.add a K.zero) a);
      test "mul commutative" pair (fun (a, b) ->
          K.equal (K.mul a b) (K.mul b a));
      test "mul associative" triple (fun (a, b, c) ->
          K.equal (K.mul a (K.mul b c)) (K.mul (K.mul a b) c));
      test "mul one neutral" arb (fun a -> K.equal (K.mul a K.one) a);
      test "mul distributes over add" triple (fun (a, b, c) ->
          K.equal (K.mul a (K.add b c)) (K.add (K.mul a b) (K.mul a c)));
      test "zero annihilates mul" arb (fun a ->
          K.equal (K.mul a K.zero) K.zero);
      test "compare consistent with equal" pair (fun (a, b) ->
          K.equal a b = (K.compare a b = 0));
    ]
end

module Monus_laws
    (K : Tkr_semiring.Semiring_intf.MONUS)
    (A : ARB with type t = K.t) =
struct
  let arb = QCheck.make ~print:(fun k -> Format.asprintf "%a" K.pp k) A.gen
  let pair = QCheck.pair arb arb
  let count = 200

  let test name arb prop =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:(K.name ^ ": " ^ name) arb prop)

  let triple = QCheck.triple arb arb arb

  (* The axioms of commutative monoids with monus (Amer 1984), which
     characterize the well-defined monus of Section 7.1. *)
  let tests =
    [
      test "monus by zero is identity" arb (fun a ->
          K.equal (K.monus a K.zero) a);
      test "zero monus anything is zero" arb (fun a ->
          K.equal (K.monus K.zero a) K.zero);
      test "a monus a is zero" arb (fun a -> K.equal (K.monus a a) K.zero);
      test "a + (b - a) = b + (a - b)" pair (fun (a, b) ->
          K.equal (K.add a (K.monus b a)) (K.add b (K.monus a b)));
      test "(a - b) - c = a - (b + c)" triple (fun (a, b, c) ->
          K.equal (K.monus (K.monus a b) c) (K.monus a (K.add b c)));
    ]
end
