(* Extensions beyond the paper's core: timeslice queries (SEQ VT AS OF),
   SQL:2011 FOR PORTION OF updates/deletes, and bitemporal relations via
   functor composition — the paper's future-work items. *)

open Fixtures
module M = Tkr_middleware.Middleware
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra

let table_bag = Alcotest.testable Table.pp Table.equal_bag

let fresh () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
     |});
  m

(* --- SEQ VT AS OF: timeslice queries --- *)

let test_as_of_matches_snapshot () =
  let m = fresh () in
  (* for every time point, AS OF t equals the rows of the full snapshot
     query whose period contains t *)
  let full =
    M.query m "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')"
  in
  for t = 0 to 23 do
    let sliced =
      M.query m
        (Printf.sprintf
           "SEQ VT AS OF %d (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')"
           t)
    in
    Alcotest.(check int) (Printf.sprintf "one row at %d" t) 1
      (Table.cardinality sliced);
    let expected =
      Array.to_list (Table.rows full)
      |> List.filter_map (fun row ->
             match (Tuple.get row 1, Tuple.get row 2) with
             | Value.Int b, Value.Int e when b <= t && t < e ->
                 Some (Tuple.get row 0)
             | _ -> None)
    in
    Alcotest.(check int) "matches full query" 0
      (Value.compare (List.hd expected) (Tuple.get (Table.rows sliced).(0) 0))
  done

let test_as_of_schema () =
  let m = fresh () in
  let t = M.query m "SEQ VT AS OF 9 (SELECT name FROM works WHERE skill = 'SP')" in
  Alcotest.(check (list string)) "no period columns" [ "name" ]
    (Schema.names (Table.schema t));
  Alcotest.(check int) "Ann and Sam at 9" 2 (Table.cardinality t)

(* --- FOR PORTION OF --- *)

let count_query m sql = Table.cardinality (M.query m sql)

let test_portion_update () =
  let m = fresh () in
  (* retrain Ann as NS during [5, 8): her SP row [3,10) must split *)
  ignore
    (M.execute m
       "UPDATE works FOR PORTION OF vt FROM 5 TO 8 SET skill = 'NS' WHERE name = 'Ann'");
  let rows =
    M.query m "SELECT name, skill, b, e FROM works WHERE name = 'Ann' ORDER BY b"
  in
  let expected =
    Table.make
      (Schema.make
         [
           Schema.attr "name" Value.TStr; Schema.attr "skill" Value.TStr;
           Schema.attr "b" Value.TInt; Schema.attr "e" Value.TInt;
         ])
      [
        Tuple.make [ str "Ann"; str "SP"; int 3; int 5 ];
        Tuple.make [ str "Ann"; str "NS"; int 5; int 8 ];
        Tuple.make [ str "Ann"; str "SP"; int 8; int 10 ];
        Tuple.make [ str "Ann"; str "SP"; int 18; int 20 ];
      ]
  in
  Alcotest.check table_bag "row splitting" expected rows;
  (* snapshot count must now dip to 0 during [5, 8) at SP *)
  let t =
    M.query m "SEQ VT AS OF 6 (SELECT count(*) AS c FROM works WHERE skill = 'SP')"
  in
  Alcotest.(check bool) "SP count is 0 at 6" true
    (Value.equal (Tuple.get (Table.rows t).(0) 0) (Value.Int 0))

let test_portion_update_outside () =
  let m = fresh () in
  ignore
    (M.execute m
       "UPDATE works FOR PORTION OF vt FROM 20 TO 24 SET skill = 'NS' WHERE name = 'Joe'");
  (* Joe's row [8,16) does not overlap [20,24): unchanged *)
  Alcotest.(check int) "unchanged" 4 (count_query m "SELECT * FROM works")

let test_portion_delete () =
  let m = fresh () in
  ignore (M.execute m "DELETE FROM works FOR PORTION OF vt FROM 9 TO 12 WHERE name = 'Sam'");
  let rows = M.query m "SELECT b, e FROM works WHERE name = 'Sam' ORDER BY b" in
  let expected =
    Table.make
      (Schema.make [ Schema.attr "b" Value.TInt; Schema.attr "e" Value.TInt ])
      [ Tuple.make [ int 8; int 9 ]; Tuple.make [ int 12; int 16 ] ]
  in
  Alcotest.check table_bag "delete splits" expected rows

let test_plain_update_delete () =
  let m = fresh () in
  ignore (M.execute m "UPDATE works SET skill = 'XX' WHERE name = 'Joe'");
  Alcotest.(check int) "one XX row" 1
    (count_query m "SELECT * FROM works WHERE skill = 'XX'");
  ignore (M.execute m "DELETE FROM works WHERE skill = 'XX'");
  Alcotest.(check int) "deleted" 3 (count_query m "SELECT * FROM works")

let test_portion_requires_period_table () =
  let m = fresh () in
  ignore (M.execute m "CREATE TABLE plain (x int)");
  (try
     ignore (M.execute m "UPDATE plain FOR PORTION OF vt FROM 1 TO 2 SET x = 1");
     Alcotest.fail "expected error"
   with M.Error _ -> ());
  try
    ignore
      (M.execute m "UPDATE works FOR PORTION OF vt FROM 1 TO 2 SET b = 99");
    Alcotest.fail "expected error on setting period column"
  with M.Error _ -> ()

(* --- bitemporal (K^VT)^TT --- *)

module VT = struct
  let domain = Tkr_timeline.Domain.make ~tmin:0 ~tmax:24
end

module TT = struct
  let domain = Tkr_timeline.Domain.make ~tmin:100 ~tmax:200
end

module Bi = Tkr_core.Bitemporal.Make (Tkr_semiring.Nat) (VT) (TT)

let bi_schema = Schema.make [ Schema.attr "name" Value.TStr ]

(* At transaction time 100 we recorded Ann as working [3, 10); at
   transaction time 150 the record was corrected to [3, 12). *)
let bi_facts =
  [
    (tup [ str "Ann" ], (100, 150), (3, 10), 1);
    (tup [ str "Ann" ], (150, 200), (3, 12), 1);
    (tup [ str "Sam" ], (120, 200), (8, 16), 1);
  ]

let test_bitemporal_timeslices () =
  let r = Bi.of_facts bi_schema bi_facts in
  (* before the correction: Ann not working at vt = 11 *)
  let before = Bi.timeslice r ~tt:120 ~vt:11 in
  Alcotest.(check int) "Ann at (120, 11)" 0 (Bi.RK.annot before (tup [ str "Ann" ]));
  (* after the correction: she is *)
  let after = Bi.timeslice r ~tt:160 ~vt:11 in
  Alcotest.(check int) "Ann at (160, 11)" 1 (Bi.RK.annot after (tup [ str "Ann" ]));
  (* Sam only exists from tt = 120 *)
  Alcotest.(check int) "Sam unknown at tt=110" 0
    (Bi.RK.annot (Bi.timeslice r ~tt:110 ~vt:12) (tup [ str "Sam" ]));
  Alcotest.(check int) "Sam known at tt=130" 1
    (Bi.RK.annot (Bi.timeslice r ~tt:130 ~vt:12) (tup [ str "Sam" ]))

let test_bitemporal_query_commutes () =
  (* snapshot reducibility in both dimensions: project and compare at
     every (tt, vt) pair on a coarse grid *)
  let r = Bi.of_facts bi_schema bi_facts in
  let db = function "r" -> r | n -> invalid_arg n in
  let q =
    Algebra.Project ([ Algebra.proj (Expr.Col 0) "name" ], Algebra.Rel "r")
  in
  let result = Bi.eval db q in
  List.iter
    (fun tt ->
      List.iter
        (fun vt ->
          let direct = Bi.timeslice result ~tt ~vt in
          let via_slices =
            (* slice first, then evaluate over the plain K-relation *)
            let module NE = Tkr_relation.Eval.Make (Tkr_semiring.Nat) in
            NE.eval (fun _ -> Bi.timeslice r ~tt ~vt) q
          in
          Alcotest.(check bool)
            (Printf.sprintf "commutes at tt=%d vt=%d" tt vt)
            true
            (Bi.RK.equal direct via_slices))
        [ 0; 5; 9; 11; 15; 23 ])
    [ 100; 119; 120; 149; 150; 199 ]

let test_bitemporal_union_multiplicity () =
  let r = Bi.of_facts bi_schema bi_facts in
  let db = function "r" -> r | n -> invalid_arg n in
  let q = Algebra.Union (Algebra.Rel "r", Algebra.Rel "r") in
  let result = Bi.eval db q in
  Alcotest.(check int) "doubled multiplicity" 2
    (Bi.RK.annot (Bi.timeslice result ~tt:160 ~vt:11) (tup [ str "Ann" ]))

let suite =
  ( "extensions (AS OF, portion updates, bitemporal)",
    [
      Alcotest.test_case "AS OF matches full snapshot query" `Quick
        test_as_of_matches_snapshot;
      Alcotest.test_case "AS OF output schema" `Quick test_as_of_schema;
      Alcotest.test_case "FOR PORTION OF update splits rows" `Quick
        test_portion_update;
      Alcotest.test_case "portion update outside period" `Quick
        test_portion_update_outside;
      Alcotest.test_case "FOR PORTION OF delete splits rows" `Quick
        test_portion_delete;
      Alcotest.test_case "plain update/delete" `Quick test_plain_update_delete;
      Alcotest.test_case "portion errors" `Quick test_portion_requires_period_table;
      Alcotest.test_case "bitemporal timeslices" `Quick test_bitemporal_timeslices;
      Alcotest.test_case "bitemporal snapshot reducibility" `Quick
        test_bitemporal_query_commutes;
      Alcotest.test_case "bitemporal multiset union" `Quick
        test_bitemporal_union_multiplicity;
    ] )
