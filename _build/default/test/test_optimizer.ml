(* The cost-based optimizer is semantics-preserving: optimized and
   unoptimized plans produce identical multisets on random join queries,
   on the paper workload, and through the full snapshot pipeline. *)

module O = Tkr_engine.Optimizer
module M = Tkr_middleware.Middleware
module W = Tkr_workload.Employees
module Q = Tkr_workload.Queries
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra

let table_bag = Alcotest.testable Table.pp Table.equal_bag

(* three small tables with different sizes to trigger reordering *)
let schema name = Schema.make [ Schema.attr name Value.TInt; Schema.attr (name ^ "v") Value.TStr ]

let mk n count =
  Table.make (schema n)
    (List.init count (fun i ->
         Tuple.make [ Value.Int (i mod 7); Value.Str (if i mod 2 = 0 then "x" else "y") ]))

let db () =
  let db = Database.create () in
  Database.add_table db "big" (mk "a" 60);
  Database.add_table db "mid" (mk "b" 20);
  Database.add_table db "small" (mk "c" 4);
  db

let lookup = function
  | "big" -> schema "a"
  | "mid" -> schema "b"
  | "small" -> schema "c"
  | n -> raise (Schema.Unknown n)

let stats = { O.card = (function "big" -> 60 | "mid" -> 20 | "small" -> 4 | _ -> 0) }

(* random three-way join queries with conjunct pools *)
let gen_join_query =
  let open QCheck.Gen in
  let key t = match t with "big" -> 0 | "mid" -> 2 | _ -> 4 in
  (* a left-deep join of the three tables in a random order with random
     equality conjuncts between adjacent key columns *)
  map2
    (fun shuffle extra_filter ->
      let tables = if shuffle then [ "big"; "mid"; "small" ] else [ "small"; "big"; "mid" ] in
      ignore key;
      match tables with
      | [ t1; t2; t3 ] ->
          let j1 =
            Algebra.Join
              (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Col 2), Algebra.Rel t1, Algebra.Rel t2)
          in
          let j2 =
            Algebra.Join
              (Expr.Cmp (Expr.Eq, Expr.Col 2, Expr.Col 4), j1, Algebra.Rel t3)
          in
          if extra_filter then
            Algebra.Select
              (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (Value.Str "x")), j2)
          else j2
      | _ -> assert false)
    bool bool

let arb =
  QCheck.make ~print:Algebra.to_string gen_join_query

let prop_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"optimizer preserves multisets" arb
       (fun q ->
         let d = db () in
         let plain = Exec.eval d q in
         let optimized = Exec.eval d (O.optimize ~stats ~lookup q) in
         (* the optimizer restores column order, so plain bag equality *)
         Table.equal_bag plain
           (Table.of_array (Table.schema plain) (Table.rows optimized))))

let test_reorders_small_first () =
  (* big ⋈ mid ⋈ small should start from "small" *)
  let q =
    Algebra.Join
      ( Expr.Cmp (Expr.Eq, Expr.Col 2, Expr.Col 4),
        Algebra.Join
          (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Col 2), Algebra.Rel "big", Algebra.Rel "mid"),
        Algebra.Rel "small" )
  in
  let optimized = O.optimize ~stats ~lookup q in
  let rec leftmost = function
    | Algebra.Join (_, l, _) -> leftmost l
    | Algebra.Select (_, q) | Algebra.Project (_, q) -> leftmost q
    | Algebra.Rel n -> Some n
    | _ -> None
  in
  Alcotest.(check (option string)) "smallest first" (Some "small")
    (leftmost optimized)

let test_single_table_untouched () =
  let q = Algebra.Select (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (Value.Int 1)), Algebra.Rel "big") in
  let optimized = O.optimize ~stats ~lookup q in
  Alcotest.(check bool) "no structural change" true (q = optimized)

let test_estimate_monotone () =
  let e q = O.estimate stats q in
  Alcotest.(check bool) "selection shrinks" true
    (e (Algebra.Select (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (Value.Int 1)), Algebra.Rel "big"))
    < e (Algebra.Rel "big"));
  Alcotest.(check bool) "union grows" true
    (e (Algebra.Union (Algebra.Rel "big", Algebra.Rel "mid")) > e (Algebra.Rel "big"))

(* full pipeline: workload queries give identical results with and
   without the optimizer *)
let test_workload_equivalence () =
  let d = W.generate { (W.scaled 80) with tmax = 1200 } in
  let m_on = M.create ~optimize:true ~db:d () in
  let m_off = M.create ~optimize:false ~db:d () in
  List.iter
    (fun name ->
      let sql = Q.lookup name Q.employee in
      Alcotest.check table_bag name (M.query m_off sql) (M.query m_on sql))
    [ "join-1"; "join-3"; "join-4"; "agg-1"; "agg-join"; "diff-2" ]

let suite =
  ( "optimizer",
    [
      prop_preserves_semantics;
      Alcotest.test_case "reorders smallest first" `Quick test_reorders_small_first;
      Alcotest.test_case "single table untouched" `Quick test_single_table_untouched;
      Alcotest.test_case "estimates are monotone" `Quick test_estimate_monotone;
      Alcotest.test_case "workload equivalence on/off" `Slow test_workload_equivalence;
    ] )
