open Tkr_semiring

module Nat_arb = struct
  type t = Nat.t

  let gen = QCheck.Gen.int_range 0 20
end

module Bool_arb = struct
  type t = Boolean.t

  let gen = QCheck.Gen.bool
end

module Fuzzy_arb = struct
  type t = Fuzzy.t

  let gen = QCheck.Gen.(map Fuzzy.of_float (float_bound_inclusive 1.0))
end

module Trop_arb = struct
  type t = Tropical.t

  let gen =
    QCheck.Gen.(
      frequency
        [ (1, return Tropical.Inf); (5, map (fun c -> Tropical.Fin c) (int_range 0 20)) ])
end

module Sec_arb = struct
  type t = Security.t

  let gen =
    QCheck.Gen.oneofl
      Security.[ Public; Confidential; Secret; Top ]
end

module Lin_arb = struct
  type t = Lineage.t

  let gen =
    QCheck.Gen.(
      frequency
        [
          (1, return Lineage.Bot);
          ( 5,
            map
              (fun ids -> Lineage.of_ids ids)
              (list_size (int_range 0 4) (oneofl [ "a"; "b"; "c"; "d" ])) );
        ])
end

module Why_arb = struct
  type t = Why_prov.t

  let gen =
    QCheck.Gen.(
      map Why_prov.of_witnesses
        (list_size (int_range 0 3)
           (list_size (int_range 0 3) (oneofl [ "x"; "y"; "z" ]))))
end

module Poly_arb = struct
  type t = Natpoly.t

  let gen =
    let open QCheck.Gen in
    let mono = list_size (int_range 0 2) (oneofl [ "x"; "y"; "z" ]) in
    let term = map (fun vars -> List.fold_left (fun p v -> Natpoly.mul p (Natpoly.var v)) Natpoly.one vars) mono in
    let scaled = map2 (fun c t -> Natpoly.mul (Natpoly.const c) t) (int_range 0 3) term in
    map
      (fun terms -> List.fold_left Natpoly.add Natpoly.zero terms)
      (list_size (int_range 0 3) scaled)
end

module NL = Laws.Semiring_laws (Nat) (Nat_arb)
module NM = Laws.Monus_laws (Nat) (Nat_arb)
module BL = Laws.Semiring_laws (Boolean) (Bool_arb)
module BM = Laws.Monus_laws (Boolean) (Bool_arb)
module FL = Laws.Semiring_laws (Fuzzy) (Fuzzy_arb)
module FM = Laws.Monus_laws (Fuzzy) (Fuzzy_arb)
module TL = Laws.Semiring_laws (Tropical) (Trop_arb)
module SL = Laws.Semiring_laws (Security) (Sec_arb)
module SM = Laws.Monus_laws (Security) (Sec_arb)
module LL = Laws.Semiring_laws (Lineage) (Lin_arb)
module WL = Laws.Semiring_laws (Why_prov) (Why_arb)
module PL = Laws.Semiring_laws (Natpoly) (Poly_arb)

let test_nat_monus () =
  Alcotest.(check int) "5-3" 2 (Nat.monus 5 3);
  Alcotest.(check int) "3-5" 0 (Nat.monus 3 5);
  Alcotest.check_raises "negative rejected" (Invalid_argument "Nat.of_int: negative value -1")
    (fun () -> ignore (Nat.of_int (-1)))

let test_poly_example () =
  (* Example 4.1 of the paper: (M1) is annotated 1*4 + 1*4 = 8 under N.
     Check it symbolically: x*z + y*z evaluated with x=y=1, z=4. *)
  let open Natpoly in
  let p = add (mul (var "x") (var "z")) (mul (var "y") (var "z")) in
  let v = function "z" -> 4 | _ -> 1 in
  Alcotest.(check int) "eval to N" 8 (eval (module Nat) v p);
  (* homomorphism to B: any nonzero count maps to true *)
  let vb = function _ -> true in
  Alcotest.(check bool) "eval to B" true (eval (module Boolean) vb p)

let test_poly_canonical () =
  let open Natpoly in
  let a = add (var "x") (var "y") and b = add (var "y") (var "x") in
  Alcotest.(check bool) "x+y = y+x structurally" true (equal a b);
  let sq = mul (add (var "x") (var "y")) (add (var "x") (var "y")) in
  let expanded =
    add
      (add (mul (var "x") (var "x")) (mul (const 2) (mul (var "x") (var "y"))))
      (mul (var "y") (var "y"))
  in
  Alcotest.(check bool) "(x+y)^2 expands" true (equal sq expanded)

let test_security_order () =
  let open Security in
  Alcotest.(check bool) "P + S = P" true (equal (add Public Secret) Public);
  Alcotest.(check bool) "P * S = S" true (equal (mul Public Secret) Secret);
  Alcotest.(check bool) "zero = T0" true (equal zero Top)

let test_ops_helpers () =
  let module O = Semiring_intf.Ops (Nat) in
  Alcotest.(check bool) "is_zero" true (O.is_zero 0);
  Alcotest.(check bool) "is_one" true (O.is_one 1);
  Alcotest.(check int) "sum" 10 (O.sum [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "product" 24 (O.product [ 1; 2; 3; 4 ]);
  Alcotest.(check int) "empty sum is zero" 0 (O.sum []);
  Alcotest.(check int) "empty product is one" 1 (O.product [])

let test_prng_determinism () =
  (* splitmix64 reference behaviour: deterministic and well-spread *)
  let module P = Tkr_workload.Prng in
  let a = P.create 42 and b = P.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (P.int a 1000) (P.int b 1000)
  done;
  let g = P.create 7 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = P.int g 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    buckets;
  let g = P.create 3 in
  for _ = 1 to 100 do
    let f = P.float g in
    Alcotest.(check bool) "float in range" true (0. <= f && f < 1.)
  done

let test_tropical () =
  let open Tropical in
  Alcotest.(check bool) "min" true (equal (add (Fin 3) (Fin 5)) (Fin 3));
  Alcotest.(check bool) "plus" true (equal (mul (Fin 3) (Fin 5)) (Fin 8));
  Alcotest.(check bool) "inf annihilates" true (equal (mul (Fin 3) Inf) Inf)

let suite =
  ( "semiring",
    NL.tests @ NM.tests @ BL.tests @ BM.tests @ FL.tests @ FM.tests @ TL.tests
    @ SL.tests @ SM.tests @ LL.tests @ WL.tests @ PL.tests
    @ [
        Alcotest.test_case "nat monus" `Quick test_nat_monus;
        Alcotest.test_case "provenance polynomial example 4.1" `Quick test_poly_example;
        Alcotest.test_case "polynomial canonical form" `Quick test_poly_canonical;
        Alcotest.test_case "security order" `Quick test_security_order;
        Alcotest.test_case "tropical" `Quick test_tropical;
        Alcotest.test_case "ops helpers" `Quick test_ops_helpers;
        Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
      ] )
