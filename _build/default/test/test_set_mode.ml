(* SEQ VT SET: the set-semantics (B) instance of the framework through the
   middleware, cross-checked against the B^T logical model. *)

open Fixtures
module M = Tkr_middleware.Middleware
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra
module Interval = Tkr_timeline.Interval
module BPeriod = Tkr_core.Period_rel.Make (Tkr_semiring.Boolean) (D24)
module PE = Tkr_sqlenc.Period_enc.Make (D24)

let table_bag = Alcotest.testable Table.pp Table.equal_bag

let fresh () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
       CREATE TABLE assign (mach text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO assign VALUES
         ('M1', 'SP', 3, 12), ('M2', 'SP', 6, 14), ('M3', 'NS', 3, 16);
     |});
  m

(* B^T element -> canonical period table rows (true becomes one row) *)
let btable_of schema (r : BPeriod.t) : Table.t =
  let buf = ref [] in
  BPeriod.R.iter
    (fun tuple el ->
      List.iter
        (fun (i, v) ->
          if v then
            buf :=
              Tuple.append tuple
                (Tuple.make [ Value.Int (Interval.b i); Value.Int (Interval.e i) ])
              :: !buf)
        el)
    r;
  Table.make schema !buf

let out_schema names =
  Schema.make
    (List.map (fun n -> Schema.attr n Value.TStr) names
    @ [ Schema.attr "vt_begin" Value.TInt; Schema.attr "vt_end" Value.TInt ])

let bworks =
  BPeriod.of_facts works_schema
    (List.map (fun (t, iv, _) -> (t, iv, true)) works_facts)

let bassign =
  BPeriod.of_facts assign_schema
    (List.map (fun (t, iv, _) -> (t, iv, true)) assign_facts)

let bdb = function
  | "works" -> bworks
  | "assign" -> bassign
  | n -> invalid_arg n

let test_set_projection () =
  (* under set semantics the SP multiplicity collapses: one maximal row *)
  let m = fresh () in
  let result = M.query m "SEQ VT SET (SELECT skill FROM works)" in
  let logical =
    BPeriod.eval bdb
      (Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works"))
  in
  Alcotest.check table_bag "projection"
    (btable_of (out_schema [ "skill" ]) logical)
    result;
  (* sanity: SP covers [3,16) as ONE row under sets *)
  Alcotest.(check bool) "maximal SP row" true
    (Array.exists
       (fun r ->
         Value.equal (Tuple.get r 0) (Value.Str "SP")
         && Value.equal (Tuple.get r 1) (Value.Int 3)
         && Value.equal (Tuple.get r 2) (Value.Int 16))
       (Table.rows result))

let test_set_difference () =
  (* Qskillreq under SET semantics: the SP rows vanish (there is always
     *some* SP worker), only the NS gap remains — TSQL2-style behaviour *)
  let m = fresh () in
  let result =
    M.query m
      "SEQ VT SET (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)"
  in
  let expected =
    Table.make
      (out_schema [ "skill" ])
      [ Tuple.make [ Value.Str "NS"; Value.Int 3; Value.Int 8 ] ]
  in
  Alcotest.check table_bag "set difference" expected result;
  let logical =
    BPeriod.eval bdb
      (Algebra.Diff
         ( Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "assign"),
           Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works") ))
  in
  Alcotest.check table_bag "matches B^T model"
    (btable_of (out_schema [ "skill" ]) logical)
    result

let test_set_vs_bag_counts () =
  (* count under SET semantics counts distinct tuples per snapshot *)
  let m = fresh () in
  ignore (M.execute m "INSERT INTO works VALUES ('Ann', 'SP', 3, 10)");
  (* duplicate row: bag count at 4 includes it, set count does not *)
  let bag =
    M.query m "SEQ VT AS OF 4 (SELECT count(*) AS c FROM works)"
  in
  let set_q =
    M.query m "SEQ VT SET (SELECT count(*) AS c FROM works)"
  in
  Alcotest.(check bool) "bag counts duplicate" true
    (Value.equal (Tuple.get (Table.rows bag).(0) 0) (Value.Int 2));
  let set_at_4 =
    Array.to_list (Table.rows set_q)
    |> List.find (fun r ->
           match (Tuple.get r 1, Tuple.get r 2) with
           | Value.Int b, Value.Int e -> b <= 4 && 4 < e
           | _ -> false)
  in
  Alcotest.(check bool) "set counts distinct" true
    (Value.equal (Tuple.get set_at_4 0) (Value.Int 1))

(* random facts: SEQ VT SET projection/union/diff match the B^T model *)
let prop_set_mode_matches_bt =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name:"SEQ VT SET = B^T model (random facts)"
       (QCheck.make
          ~print:(fun (f1, f2) ->
            Printf.sprintf "%d/%d facts" (List.length f1) (List.length f2))
          QCheck.Gen.(pair facts_gen facts_gen))
       (fun (f1, f2) ->
         let m = M.create () in
         Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
         let to_table facts =
           Table.make
             (Schema.make
                [
                  Schema.attr "x" Value.TStr;
                  Schema.attr "vt_b" Value.TInt;
                  Schema.attr "vt_e" Value.TInt;
                ])
             (List.concat_map
                (fun (t, (b, e), k) ->
                  List.init k (fun _ ->
                      Tuple.append t (Tuple.make [ Value.Int b; Value.Int e ])))
                facts)
         in
         Database.add_period_table (M.database m) "l" (to_table f1);
         Database.add_period_table (M.database m) "r" (to_table f2);
         let bl = BPeriod.of_facts one_col_schema (List.map (fun (t, iv, _) -> (t, iv, true)) f1) in
         let br = BPeriod.of_facts one_col_schema (List.map (fun (t, iv, _) -> (t, iv, true)) f2) in
         let bdb = function "l" -> bl | "r" -> br | n -> invalid_arg n in
         List.for_all
           (fun (sql, alg) ->
             let result = M.query m sql in
             let logical = BPeriod.eval bdb alg in
             Table.equal_bag
               (Table.of_array (Table.schema result)
                  (Table.rows (btable_of (out_schema [ "x" ]) logical)))
               result)
           [
             ( "SEQ VT SET (SELECT x FROM l UNION ALL SELECT x FROM r)",
               Algebra.Union
                 ( Algebra.Project ([ Algebra.proj (Expr.Col 0) "x" ], Algebra.Rel "l"),
                   Algebra.Project ([ Algebra.proj (Expr.Col 0) "x" ], Algebra.Rel "r") ) );
             ( "SEQ VT SET (SELECT x FROM l EXCEPT ALL SELECT x FROM r)",
               Algebra.Diff
                 ( Algebra.Project ([ Algebra.proj (Expr.Col 0) "x" ], Algebra.Rel "l"),
                   Algebra.Project ([ Algebra.proj (Expr.Col 0) "x" ], Algebra.Rel "r") ) );
           ]))

let suite =
  ( "set semantics (SEQ VT SET)",
    [
      Alcotest.test_case "projection collapses duplicates" `Quick test_set_projection;
      Alcotest.test_case "set difference (TSQL2 behaviour)" `Quick test_set_difference;
      Alcotest.test_case "set vs bag counts" `Quick test_set_vs_bag_counts;
      prop_set_mode_matches_bt;
    ] )
