(* Quickstart: the paper's running example (Section 1) through the SQL
   middleware.

     dune exec examples/quickstart.exe

   Creates the two period tables of Figure 1a, then evaluates the snapshot
   aggregation Qonduty and the snapshot bag difference Qskillreq.  Compare
   the outputs with Figures 1b and 1c of the paper — including the
   highlighted rows that buggy approaches omit. *)

module M = Tkr_middleware.Middleware
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table

let () =
  let m = M.create () in
  (* the paper restricts time to the 24 hours of 2018-01-01 *)
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;

  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10),
         ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16),
         ('Ann', 'SP', 18, 20);

       CREATE TABLE assign (mach text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO assign VALUES
         ('M1', 'SP', 3, 12),
         ('M2', 'SP', 6, 14),
         ('M3', 'NS', 3, 16);
     |});

  print_endline "Qonduty — number of specialized workers on duty, over time:";
  print_endline
    "  SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
  print_newline ();
  print_string
    (Table.to_text
       (M.query m
          "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP') \
           ORDER BY vt_begin"));
  print_newline ();
  print_endline
    "The cnt = 0 rows are the safety violations; approaches with the";
  print_endline "aggregation gap (AG) bug silently drop them.";
  print_newline ();

  print_endline "Qskillreq — skills missing for machine assignments:";
  print_endline
    "  SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)";
  print_newline ();
  print_string
    (Table.to_text
       (M.query m
          "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works) \
           ORDER BY skill DESC, vt_begin"));
  print_newline ();
  print_endline
    "The SP rows exist because *two* machines need an SP worker while only";
  print_endline
    "one is on duty — bag difference respects multiplicities. Approaches";
  print_endline "with the bag difference (BD) bug evaluate NOT EXISTS and drop them."
