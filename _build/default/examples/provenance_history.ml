(* Temporal provenance: period K-relations beyond bags.

     dune exec examples/provenance_history.exe

   The framework is generic in the semiring K (Section 6): this example
   annotates tuples with provenance polynomials N[X] and evaluates a
   snapshot join, so each result tuple carries a *time-varying provenance
   polynomial* — which input tuples justify it, with multiplicities, at
   every moment.  The timeslice homomorphism then specializes the history
   to (a) a concrete time point and (b) plain bag semantics, illustrating
   Example 4.1's homomorphism story in the temporal setting. *)

module Domain = Tkr_timeline.Domain
module Poly = Tkr_semiring.Natpoly
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra
module Krel = Tkr_relation.Krel

(* N[X] lacks a well-defined monus in our implementation, so we extend it
   trivially for the functor (difference is not used in this example). *)
module Poly_m = struct
  include Poly

  let monus _ _ =
    invalid_arg "N[X]: difference of provenance polynomials is not supported"
end

module D = struct
  let domain = Domain.make ~tmin:0 ~tmax:24
end

module P = Tkr_core.Period_rel.Make (Poly_m) (D)

let str s = Value.Str s

let () =
  (* works/assign as in Figure 1, but every base tuple is annotated with
     its own provenance variable *)
  let works =
    P.of_facts
      (Schema.make [ Schema.attr "name" Value.TStr; Schema.attr "skill" Value.TStr ])
      [
        (Tuple.make [ str "Ann"; str "SP" ], (3, 10), Poly.var "w1");
        (Tuple.make [ str "Joe"; str "NS" ], (8, 16), Poly.var "w2");
        (Tuple.make [ str "Sam"; str "SP" ], (8, 16), Poly.var "w3");
        (Tuple.make [ str "Ann"; str "SP" ], (18, 20), Poly.var "w4");
      ]
  in
  let assign =
    P.of_facts
      (Schema.make [ Schema.attr "mach" Value.TStr; Schema.attr "skill" Value.TStr ])
      [
        (Tuple.make [ str "M1"; str "SP" ], (3, 12), Poly.var "a1");
        (Tuple.make [ str "M2"; str "SP" ], (6, 14), Poly.var "a2");
        (Tuple.make [ str "M3"; str "NS" ], (3, 16), Poly.var "a3");
      ]
  in
  let db = function
    | "works" -> works
    | "assign" -> assign
    | n -> invalid_arg n
  in
  (* which machines can be operated, and why *)
  let q =
    Algebra.Project
      ( [ Algebra.proj (Expr.Col 0) "mach" ],
        Algebra.Join
          ( Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Col 3),
            Algebra.Rel "assign", Algebra.Rel "works" ) )
  in
  let result = P.eval db q in

  print_endline "Provenance history of Π_mach(assign ⋈ works) over N[X]^T:";
  print_newline ();
  P.R.iter
    (fun tuple el ->
      Format.printf "  %a ↦ %a@." Tuple.pp tuple P.KT.pp el)
    result;
  print_newline ();

  (* timeslice: the provenance polynomial valid at 09:00 *)
  print_endline "Timeslice at T = 9 (a plain N[X]-relation):";
  let at9 = P.timeslice result 9 in
  P.KR.iter
    (fun tuple poly -> Format.printf "  %a ↦ %a@." Tuple.pp tuple Poly.pp poly)
    at9;
  print_newline ();

  (* the polynomial specializes to bag semantics: every variable := 1 *)
  print_endline "Evaluating the annotations under bag semantics (x := 1):";
  P.KR.iter
    (fun tuple poly ->
      let count = Poly.eval (module Tkr_semiring.Nat) (fun _ -> 1) poly in
      Format.printf "  %a has multiplicity %d at T = 9@." Tuple.pp tuple count)
    at9;
  print_newline ();

  (* ... or to set semantics, or access-control levels, etc. *)
  print_endline
    "Evaluating under an access-control valuation (w3 is classified):";
  let module Sec = Tkr_semiring.Security in
  P.KR.iter
    (fun tuple poly ->
      let level =
        Poly.eval
          (module Sec)
          (fun v -> if v = "w3" then Sec.Secret else Sec.Public)
          poly
      in
      Format.printf "  %a requires clearance %a at T = 9@." Tuple.pp tuple
        Sec.pp level)
    at9
