(* Payroll analytics over the employees dataset (the paper's Section 10
   workload), contrasting the middleware with a buggy native evaluator.

     dune exec examples/payroll_analytics.exe

   Generates a small deterministic employees database, then:
   1. average salary per department over time (snapshot aggregation),
   2. the manager pay-gap query: average manager salary with gap rows,
   3. the same query through the temporal-alignment baseline, showing the
      rows the AG bug loses. *)

module M = Tkr_middleware.Middleware
module B = Tkr_baseline.Baseline
module W = Tkr_workload.Employees
module Q = Tkr_workload.Queries
module Table = Tkr_engine.Table
module Tuple = Tkr_relation.Tuple
module Value = Tkr_relation.Value

let () =
  let db = W.generate { (W.scaled 120) with tmax = 1500 } in
  let m = M.create ~db () in

  print_endline "Average salary per department (first periods shown):";
  print_string
    (Table.to_text ~max_rows:12
       (M.query m (Q.lookup "agg-1" Q.employee ^ " ORDER BY dept_no, vt_begin")));
  print_newline ();

  print_endline "Average manager salary over time (agg-2), with gap rows:";
  let ours = M.query m (Q.lookup "agg-2" Q.employee ^ " ORDER BY vt_begin") in
  print_string (Table.to_text ~max_rows:12 ours);
  print_newline ();

  (* the same query through the native-style evaluator *)
  let algebra, _ = M.snapshot_algebra m (Q.lookup "agg-2" Q.employee) in
  let native = B.eval_coalesced B.Alignment db algebra in
  let count_gaps t =
    Array.fold_left
      (fun acc row -> if Value.is_null (Tuple.get row 0) then acc + 1 else acc)
      0 (Table.rows t)
  in
  Printf.printf
    "Gap rows (periods without any salaried manager):\n\
    \  our middleware:            %d\n\
    \  temporal alignment (Nat):  %d   <- the aggregation gap bug\n\n"
    (count_gaps ours) (count_gaps native);

  print_endline "Employees who are not managers (diff-1, first rows):";
  print_string
    (Table.to_text ~max_rows:8
       (M.query m (Q.lookup "diff-1" Q.employee ^ " ORDER BY emp_no, vt_begin")));
  print_newline ();

  print_endline "Top salary earners per department right now (agg-join):";
  print_string
    (Table.to_text ~max_rows:8
       (M.query m (Q.lookup "agg-join" Q.employee ^ " ORDER BY vt_begin DESC LIMIT 8")))
