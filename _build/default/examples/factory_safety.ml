(* Factory safety monitoring: a larger scenario in the spirit of the
   paper's introduction.

     dune exec examples/factory_safety.exe

   A factory runs three shifts of workers with different certifications and
   a fleet of machines, each requiring a certification to be staffed at
   every moment it is powered on.  Snapshot queries find (a) staffing
   levels per certification over time, (b) periods where a machine is
   running with *fewer* certified workers than powered machines (the bag
   difference that set-based approaches get wrong), and (c) periods where
   the factory floor is completely unstaffed (the aggregation gaps that
   other approaches silently omit). *)

module M = Tkr_middleware.Middleware
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table

let () =
  let m = M.create () in
  (* a work week in hours: [0, 120) *)
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:120;

  ignore
    (M.execute_script m
       {|
       CREATE TABLE staff (worker text, cert text, b int, e int) PERIOD (b, e);
       INSERT INTO staff VALUES
         -- Monday early + late shift, welding certified
         ('ana',   'weld',  6, 14), ('bo',   'weld', 14, 22),
         ('carla', 'forge',  6, 14), ('dev',  'forge', 14, 22),
         -- Tuesday: only a welding crew, double staffed in the morning
         ('ana',   'weld', 30, 38), ('erik', 'weld', 30, 34),
         -- Wednesday: forge crew around the clock
         ('carla', 'forge', 54, 66), ('dev', 'forge', 60, 72),
         -- Thursday: a single long welding shift
         ('bo',    'weld', 78, 94);

       CREATE TABLE machines (mach text, cert text, b int, e int) PERIOD (b, e);
       INSERT INTO machines VALUES
         -- two welding robots run Monday and Tuesday daytime
         ('W-1', 'weld',  6, 20), ('W-2', 'weld',  8, 18),
         ('W-1', 'weld', 30, 40),
         -- the forge press runs Wednesday and Thursday
         ('F-1', 'forge', 54, 70), ('F-1', 'forge', 80, 90);
     |});

  print_endline "Staffing level per certification over the week:";
  print_string
    (Table.to_text ~max_rows:100
       (M.query m
          "SEQ VT (SELECT cert, count(*) AS staffed FROM staff GROUP BY cert) \
           ORDER BY cert, vt_begin"));
  print_newline ();

  print_endline
    "Understaffed periods (a powered machine without its own certified worker):";
  print_string
    (Table.to_text ~max_rows:100
       (M.query m
          "SEQ VT (SELECT cert FROM machines EXCEPT ALL SELECT cert FROM staff) \
           ORDER BY cert, vt_begin"));
  print_endline
    "(one row per missing worker; multiplicities matter — EXCEPT ALL)";
  print_newline ();

  print_endline "Total machines running vs workers present, over the whole week:";
  print_string
    (Table.to_text ~max_rows:100
       (M.query m
          "SEQ VT (SELECT count(*) AS running FROM machines) ORDER BY vt_begin"));
  print_newline ();
  print_endline
    "Rows with running = 0 are the gaps a native evaluator omits; here they";
  print_endline "make the idle periods of the factory explicit.";
  print_newline ();

  print_endline
    "Machines whose certification is completely absent from the floor:";
  print_string
    (Table.to_text ~max_rows:100
       (M.query m
          "SEQ VT (SELECT mc.mach FROM machines mc \
           EXCEPT ALL \
           SELECT mc2.mach FROM machines mc2, staff s WHERE mc2.cert = s.cert) \
           ORDER BY mach, vt_begin"))
