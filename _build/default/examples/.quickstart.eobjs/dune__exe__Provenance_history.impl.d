examples/provenance_history.ml: Format Tkr_core Tkr_relation Tkr_semiring Tkr_timeline
