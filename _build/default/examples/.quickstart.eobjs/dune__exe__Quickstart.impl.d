examples/quickstart.ml: Tkr_engine Tkr_middleware
