examples/provenance_history.mli:
