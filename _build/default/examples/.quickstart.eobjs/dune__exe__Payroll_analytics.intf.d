examples/payroll_analytics.mli:
