examples/quickstart.mli:
