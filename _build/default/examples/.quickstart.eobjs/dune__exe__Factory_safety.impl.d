examples/factory_safety.ml: Tkr_engine Tkr_middleware
