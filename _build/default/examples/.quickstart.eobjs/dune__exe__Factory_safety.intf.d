examples/factory_safety.mli:
