(** The tropical (min-plus) semiring [(N ∪ {∞}, min, +, ∞, 0)].

    Annotations are costs; alternative use keeps the cheapest derivation,
    conjunctive use adds the costs of premises. *)

type t = Inf | Fin of int

let zero = Inf
let one = Fin 0

let add a b =
  match (a, b) with
  | Inf, x | x, Inf -> x
  | Fin x, Fin y -> Fin (min x y)

let mul a b =
  match (a, b) with Inf, _ | _, Inf -> Inf | Fin x, Fin y -> Fin (x + y)

let equal a b =
  match (a, b) with
  | Inf, Inf -> true
  | Fin x, Fin y -> Int.equal x y
  | Inf, Fin _ | Fin _, Inf -> false

let compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, Fin _ -> 1
  | Fin _, Inf -> -1
  | Fin x, Fin y -> Int.compare x y

let hash = function Inf -> 0x7fffffff | Fin x -> x

let pp ppf = function
  | Inf -> Format.pp_print_string ppf "∞"
  | Fin x -> Format.pp_print_int ppf x

let name = "Trop"

let of_cost c =
  if c < 0 then invalid_arg "Tropical.of_cost: negative cost";
  Fin c
