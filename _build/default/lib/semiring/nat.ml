(** The semiring of natural numbers [(N, +, *, 0, 1)]: multiset semantics.

    Values are machine integers with the invariant [>= 0]; the invariant is
    enforced at construction ({!of_int}) and preserved by all operations. *)

type t = int

let zero = 0
let one = 1
let add = ( + )
let mul = ( * )
let equal = Int.equal
let compare = Int.compare
let hash x = x
let pp = Format.pp_print_int
let name = "N"

(* Truncating subtraction: the monus of the naturals (Section 7.1). *)
let monus a b = max 0 (a - b)

let of_int n =
  if n < 0 then invalid_arg (Printf.sprintf "Nat.of_int: negative value %d" n);
  n

let to_int n = n
