(** Provenance polynomials N\[X\] (Green et al., PODS 2007), the most
    general semiring for positive relational algebra: every other
    commutative semiring is its homomorphic image via {!eval}.

    Kept in a canonical sorted form, so structural equality coincides with
    polynomial equality. *)

type monomial = (string * int) list
(** Sorted (variable, exponent >= 1) pairs. *)

type t = (monomial * int) list
(** Sorted (monomial, coefficient >= 1) pairs. *)

include Semiring_intf.S with type t := t

val var : string -> t
(** The polynomial consisting of one variable. *)

val const : int -> t
(** A constant polynomial ([const 0 = zero]). *)

val eval :
  (module Semiring_intf.S with type t = 'k) -> (string -> 'k) -> t -> 'k
(** [eval (module K) valuation p] specializes [p] under a variable
    valuation into any semiring K — e.g. bag multiplicities with
    [fun _ -> 1] into {!Nat}, or set membership into {!Boolean}. *)
