(** The semiring of natural numbers [(N, +, ·, 0, 1)]: multiset semantics.

    Its monus is truncating subtraction, giving SQL's [EXCEPT ALL]
    (Section 7.1).  Values are machine integers with a [>= 0] invariant. *)

include Semiring_intf.MONUS with type t = int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
