(** The fuzzy / Viterbi-style semiring [(\[0,1\], max, min, 0, 1)].

    Annotations are confidence degrees; alternative use keeps the most
    confident derivation, conjunctive use the least confident premise. *)

type t = float

let clamp x = if x < 0. then 0. else if x > 1. then 1. else x
let of_float x = clamp x
let to_float x = x
let zero = 0.
let one = 1.
let add a b = Float.max a b
let mul a b = Float.min a b
let equal a b = Float.equal a b
let compare = Float.compare
let hash = Hashtbl.hash
let pp ppf x = Format.fprintf ppf "%.3f" x
let name = "Fuzzy"

(* Residual of max: smallest c with a <= max (b, c). *)
let monus a b = if a <= b then 0. else a
