(** The fuzzy / Viterbi-style semiring [(\[0,1\], max, min, 0, 1)]:
    annotations are confidence degrees. *)

include Semiring_intf.MONUS with type t = float

val of_float : float -> t
(** Clamps to [\[0, 1\]]. *)

val to_float : t -> float
