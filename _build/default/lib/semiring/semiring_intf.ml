(** Signatures for commutative semirings and m-semirings.

    A commutative semiring [(K, +, *, 0, 1)] (Section 4.1 of the paper) has
    commutative, associative [+] and [*] with neutral elements [0] and [1];
    [*] distributes over [+]; and [0] annihilates [*].

    An m-semiring (Geerts & Poggi; Section 7.1) additionally has a monus
    operation [a - b], defined as the smallest [c] with [a <= b + c] in the
    natural order of the semiring. *)

module type S = sig
  type t

  val zero : t
  (** Neutral element of addition; tuples annotated [zero] are absent. *)

  val one : t
  (** Neutral element of multiplication; annotation of "present once". *)

  val add : t -> t -> t
  (** Alternative use of tuples (e.g. union, projection). *)

  val mul : t -> t -> t
  (** Conjunctive use of tuples (e.g. join). *)

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** A total order compatible with [equal], used only to produce canonical
      orderings (map keys, deterministic printing); it carries no algebraic
      meaning. *)

  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val name : string
  (** Human-readable name of the semiring, e.g. ["N"] or ["B"]. *)
end

module type MONUS = sig
  include S

  val monus : t -> t -> t
  (** [monus a b] is the smallest [c] such that [a <= add b c] in the
      natural order.  For [N] this is truncating subtraction. *)
end

(** Convenience: derived helpers shared by all semirings. *)
module Ops (K : S) = struct
  let is_zero k = K.equal k K.zero
  let is_one k = K.equal k K.one
  let sum = List.fold_left K.add K.zero
  let product = List.fold_left K.mul K.one
end
