lib/semiring/lineage.ml: Fmt Format Hashtbl Set String
