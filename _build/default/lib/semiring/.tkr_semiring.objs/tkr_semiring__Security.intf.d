lib/semiring/security.mli: Semiring_intf
