lib/semiring/security.ml: Format Int
