lib/semiring/natpoly.ml: Fmt Format Hashtbl List Semiring_intf Stdlib String
