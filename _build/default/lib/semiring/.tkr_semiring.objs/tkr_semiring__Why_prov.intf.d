lib/semiring/why_prov.mli: Semiring_intf
