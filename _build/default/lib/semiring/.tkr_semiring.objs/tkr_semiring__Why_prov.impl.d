lib/semiring/why_prov.ml: Fmt Format Hashtbl List Set String
