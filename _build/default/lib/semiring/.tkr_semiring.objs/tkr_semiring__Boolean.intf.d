lib/semiring/boolean.mli: Semiring_intf
