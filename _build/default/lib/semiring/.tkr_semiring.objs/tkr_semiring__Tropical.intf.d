lib/semiring/tropical.mli: Semiring_intf
