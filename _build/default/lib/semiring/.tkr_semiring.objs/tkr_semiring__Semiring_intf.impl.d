lib/semiring/semiring_intf.ml: Format List
