lib/semiring/fuzzy.mli: Semiring_intf
