lib/semiring/boolean.ml: Bool Format
