lib/semiring/tropical.ml: Format Int
