lib/semiring/nat.ml: Format Int Printf
