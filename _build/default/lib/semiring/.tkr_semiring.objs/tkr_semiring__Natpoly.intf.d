lib/semiring/natpoly.mli: Semiring_intf
