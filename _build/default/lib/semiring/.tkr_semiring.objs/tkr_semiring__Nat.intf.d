lib/semiring/nat.mli: Semiring_intf
