lib/semiring/lineage.mli: Semiring_intf Set
