lib/semiring/fuzzy.ml: Float Format Hashtbl
