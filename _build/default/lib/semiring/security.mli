(** The access-control semiring: clearance levels with
    [Public < Confidential < Secret < Top], least-restrictive as addition,
    most-restrictive as multiplication, and [Top] ("nobody") as zero. *)

type t = Public | Confidential | Secret | Top

include Semiring_intf.MONUS with type t := t
