(** The why-provenance semiring (Why(X), ∪, ⋓, ∅, {∅}).

    Annotations are sets of witnesses, each witness being a set of input
    tuple identifiers sufficient to derive the output tuple.  Addition
    unions the witness sets, multiplication pairs witnesses by union. *)

module SS = Set.Make (String)
module Wset = Set.Make (SS)

type t = Wset.t

let zero = Wset.empty
let one = Wset.singleton SS.empty
let of_witnesses ws = Wset.of_list (List.map SS.of_list ws)
let add = Wset.union

let mul a b =
  Wset.fold
    (fun wa acc ->
      Wset.fold (fun wb acc -> Wset.add (SS.union wa wb) acc) b acc)
    a Wset.empty

let equal = Wset.equal
let compare = Wset.compare
let hash t = Hashtbl.hash (List.map SS.elements (Wset.elements t))

let pp ppf t =
  let pp_w ppf w =
    Format.fprintf ppf "{%a}" Fmt.(list ~sep:(any ",") string) (SS.elements w)
  in
  Format.fprintf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_w) (Wset.elements t)

let name = "Why"
