(** The lineage semiring (Lin(X), ∪, ∪, ⊥, ∅): an annotation is either ⊥
    (tuple absent) or the set of input-tuple identifiers the tuple depends
    on. *)

module SS : Set.S with type elt = string

type t = Bot | Wit of SS.t

include Semiring_intf.S with type t := t

val of_ids : string list -> t
(** A witness set from identifiers ([Wit]). *)
