(** The boolean semiring [(B, ∨, ∧, false, true)]: set semantics.

    Its monus is ["and not"], making B an m-semiring whose difference
    coincides with set difference (Section 7.1). *)

include Semiring_intf.MONUS with type t = bool

val of_bool : bool -> t
val to_bool : t -> bool
