(** The access-control semiring A = ({P < C < S < T0}, min, max, T0, P).

    Annotations are clearance levels required to see a tuple: alternative
    use takes the least restrictive level, conjunctive use the most
    restrictive.  [T0] ("top secret / nobody") is the zero. *)

type t = Public | Confidential | Secret | Top

let rank = function Public -> 0 | Confidential -> 1 | Secret -> 2 | Top -> 3
let of_rank = function
  | 0 -> Public
  | 1 -> Confidential
  | 2 -> Secret
  | _ -> Top

let zero = Top
let one = Public
let add a b = of_rank (min (rank a) (rank b))
let mul a b = of_rank (max (rank a) (rank b))
let equal a b = rank a = rank b
let compare a b = Int.compare (rank a) (rank b)
let hash = rank

let pp ppf l =
  Format.pp_print_string ppf
    (match l with
    | Public -> "P"
    | Confidential -> "C"
    | Secret -> "S"
    | Top -> "T0")

let name = "Access"

(* Natural order: a <= b iff min(a,b) = b, i.e. b is at most as restrictive.
   monus a b = smallest c with a <= min(b,c). *)
let monus a b = if rank b <= rank a then zero else a
