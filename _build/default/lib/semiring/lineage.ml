(** The lineage semiring (Lin(X), ∪, ∪*, ⊥, ∅).

    An annotation is either ⊥ (absent) or the set of identifiers of input
    tuples the output depends on.  Both addition and multiplication union
    the witness sets; ⊥ annihilates multiplication. *)

module SS = Set.Make (String)

type t = Bot | Wit of SS.t

let zero = Bot
let one = Wit SS.empty
let of_ids ids = Wit (SS.of_list ids)

let add a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Wit s, Wit s' -> Wit (SS.union s s')

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Wit s, Wit s' -> Wit (SS.union s s')

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Wit s, Wit s' -> SS.equal s s'
  | Bot, Wit _ | Wit _, Bot -> false

let compare a b =
  match (a, b) with
  | Bot, Bot -> 0
  | Bot, Wit _ -> -1
  | Wit _, Bot -> 1
  | Wit s, Wit s' -> SS.compare s s'

let hash = function Bot -> 0 | Wit s -> Hashtbl.hash (SS.elements s)

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "⊥"
  | Wit s ->
      Format.fprintf ppf "{%a}" Fmt.(list ~sep:(any ",") string) (SS.elements s)

let name = "Lin"
