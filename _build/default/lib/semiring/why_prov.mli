(** The why-provenance semiring (Why(X), ∪, ⋓, ∅, {∅}): annotations are
    sets of witnesses, each witness a set of input-tuple identifiers
    sufficient to derive the tuple. *)

include Semiring_intf.S

val of_witnesses : string list list -> t
