(** The tropical (min-plus) semiring [(N ∪ {∞}, min, +, ∞, 0)]:
    annotations are derivation costs. *)

type t = Inf | Fin of int

include Semiring_intf.S with type t := t

val of_cost : int -> t
(** @raise Invalid_argument on negative cost. *)
