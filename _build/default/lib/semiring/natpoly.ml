(** Provenance polynomials N\[X\]: the most general semiring for positive
    relational algebra (Green et al., PODS 2007).

    A polynomial is kept in canonical form: a sorted association list from
    monomials to positive coefficients, where a monomial is a sorted list of
    (variable, exponent > 0) pairs.  The canonical form makes structural
    equality coincide with semantic equality. *)

type monomial = (string * int) list
(** Sorted by variable name; exponents are >= 1. *)

type t = (monomial * int) list
(** Sorted by monomial (lexicographic); coefficients are >= 1. *)

let zero : t = []
let one : t = [ ([], 1) ]

let var x : t = [ ([ (x, 1) ], 1) ]
let const n : t = if n = 0 then [] else [ ([], n) ]

let compare_mono (a : monomial) (b : monomial) = Stdlib.compare a b

let rec merge_add (a : t) (b : t) : t =
  match (a, b) with
  | [], p | p, [] -> p
  | (ma, ca) :: ra, (mb, cb) :: rb ->
      let c = compare_mono ma mb in
      if c < 0 then (ma, ca) :: merge_add ra b
      else if c > 0 then (mb, cb) :: merge_add a rb
      else (ma, ca + cb) :: merge_add ra rb

let add = merge_add

let mul_mono (a : monomial) (b : monomial) : monomial =
  let rec go a b =
    match (a, b) with
    | [], m | m, [] -> m
    | (xa, ea) :: ra, (xb, eb) :: rb ->
        let c = String.compare xa xb in
        if c < 0 then (xa, ea) :: go ra b
        else if c > 0 then (xb, eb) :: go a rb
        else (xa, ea + eb) :: go ra rb
  in
  go a b

let mul (a : t) (b : t) : t =
  List.fold_left
    (fun acc (ma, ca) ->
      let row = List.map (fun (mb, cb) -> (mul_mono ma mb, ca * cb)) b in
      let row = List.sort (fun (m1, _) (m2, _) -> compare_mono m1 m2) row in
      merge_add acc row)
    zero a

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = Hashtbl.hash t

let pp_mono ppf (m : monomial) =
  match m with
  | [] -> Format.pp_print_string ppf "1"
  | _ ->
      Fmt.(list ~sep:(any "·") (fun ppf (x, e) ->
               if e = 1 then Format.pp_print_string ppf x
               else Format.fprintf ppf "%s^%d" x e))
        ppf m

let pp ppf (t : t) =
  match t with
  | [] -> Format.pp_print_string ppf "0"
  | _ ->
      Fmt.(list ~sep:(any " + ") (fun ppf (m, c) ->
               if c = 1 && m <> [] then pp_mono ppf m
               else if m = [] then Format.pp_print_int ppf c
               else Format.fprintf ppf "%d·%a" c pp_mono m))
        ppf t

let name = "N[X]"

(* Evaluate a polynomial under a valuation of variables into a semiring. *)
let eval (type k) (module K : Semiring_intf.S with type t = k)
    (valuation : string -> k) (t : t) : k =
  let pow k n =
    let rec go acc n = if n = 0 then acc else go (K.mul acc k) (n - 1) in
    go K.one n
  in
  List.fold_left
    (fun acc (m, c) ->
      let mono =
        List.fold_left (fun acc (x, e) -> K.mul acc (pow (valuation x) e)) K.one m
      in
      let rec times acc n = if n = 0 then acc else times (K.add acc mono) (n - 1) in
      times acc c)
    K.zero t
