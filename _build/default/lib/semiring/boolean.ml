(** The boolean semiring [(B, \/, /\, false, true)]: set semantics. *)

type t = bool

let zero = false
let one = true
let add = ( || )
let mul = ( && )
let equal = Bool.equal
let compare = Bool.compare
let hash = Bool.to_int
let pp = Format.pp_print_bool
let name = "B"

(* The natural order of B is implication; the monus is "and not". *)
let monus a b = a && not b
let of_bool b = b
let to_bool b = b
