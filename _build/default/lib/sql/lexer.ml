(** A hand-written SQL lexer.  Keywords are case-insensitive; identifiers
    are lower-cased; strings use single quotes with [''] escaping. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of string

let keywords =
  [
    "select"; "from"; "where"; "group"; "by"; "having"; "order"; "limit";
    "as"; "and"; "or"; "not"; "null"; "is"; "like"; "in"; "between"; "case";
    "when"; "then"; "else"; "end"; "union"; "except"; "intersect"; "all";
    "distinct"; "join"; "inner"; "cross"; "on"; "true"; "false"; "seq";
    "vt"; "count"; "sum"; "avg"; "min"; "max"; "create"; "table"; "insert";
    "into"; "values"; "period"; "int"; "integer"; "float"; "real"; "text";
    "varchar"; "bool"; "boolean"; "asc"; "desc"; "drop"; "update"; "set";
    "delete"; "for"; "portion"; "of"; "to";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize a full SQL string.  Line comments ([-- ...]) are skipped. *)
let tokenize (s : string) : token list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '-' when i + 1 < n && s.[i + 1] = '-' ->
          let rec skip j = if j < n && s.[j] <> '\n' then skip (j + 1) else j in
          go (skip i) acc
      | '(' -> go (i + 1) (LPAREN :: acc)
      | ')' -> go (i + 1) (RPAREN :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | '.' when not (i + 1 < n && is_digit s.[i + 1] && acc_is_numeric acc) ->
          go (i + 1) (DOT :: acc)
      | ';' -> go (i + 1) (SEMI :: acc)
      | '*' -> go (i + 1) (STAR :: acc)
      | '+' -> go (i + 1) (PLUS :: acc)
      | '-' -> go (i + 1) (MINUS :: acc)
      | '/' -> go (i + 1) (SLASH :: acc)
      | '%' -> go (i + 1) (PERCENT :: acc)
      | '=' -> go (i + 1) (EQ :: acc)
      | '!' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (NE :: acc)
      | '<' when i + 1 < n && s.[i + 1] = '>' -> go (i + 2) (NE :: acc)
      | '<' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (LE :: acc)
      | '<' -> go (i + 1) (LT :: acc)
      | '>' when i + 1 < n && s.[i + 1] = '=' -> go (i + 2) (GE :: acc)
      | '>' -> go (i + 1) (GT :: acc)
      | '\'' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then raise (Error "unterminated string literal")
            else if s.[j] = '\'' then
              if j + 1 < n && s.[j + 1] = '\'' then (
                Buffer.add_char buf '\'';
                str (j + 2))
              else j + 1
            else (
              Buffer.add_char buf s.[j];
              str (j + 1))
          in
          let i' = str (i + 1) in
          go i' (STRING (Buffer.contents buf) :: acc)
      | c when is_digit c ->
          let rec num j = if j < n && is_digit s.[j] then num (j + 1) else j in
          let j = num i in
          if j < n && s.[j] = '.' && j + 1 < n && is_digit s.[j + 1] then (
            let j' = num (j + 1) in
            let f = float_of_string (String.sub s i (j' - i)) in
            go j' (FLOAT f :: acc))
          else go j (INT (int_of_string (String.sub s i (j - i))) :: acc)
      | c when is_ident_start c ->
          let rec ident j = if j < n && is_ident_char s.[j] then ident (j + 1) else j in
          let j = ident i in
          let word = String.lowercase_ascii (String.sub s i (j - i)) in
          go j (IDENT word :: acc)
      | c -> raise (Error (Printf.sprintf "unexpected character %C at offset %d" c i))
  and acc_is_numeric = function INT _ :: _ -> true | _ -> false in
  go 0 []

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "%s" s
  | INT i -> Format.fprintf ppf "%d" i
  | FLOAT f -> Format.fprintf ppf "%g" f
  | STRING s -> Format.fprintf ppf "'%s'" s
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | DOT -> Format.pp_print_string ppf "."
  | SEMI -> Format.pp_print_string ppf ";"
  | STAR -> Format.pp_print_string ppf "*"
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | SLASH -> Format.pp_print_string ppf "/"
  | PERCENT -> Format.pp_print_string ppf "%"
  | EQ -> Format.pp_print_string ppf "="
  | NE -> Format.pp_print_string ppf "<>"
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
  | EOF -> Format.pp_print_string ppf "<eof>"
