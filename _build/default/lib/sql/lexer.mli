(** Hand-written SQL lexer.  Keywords and identifiers are case-insensitive
    (lower-cased); strings use single quotes with [''] escaping; [-- ...]
    comments are skipped. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of string

val is_keyword : string -> bool

val tokenize : string -> token list
(** @raise Error on malformed input. *)

val pp_token : Format.formatter -> token -> unit
