lib/sql/analyzer.ml: Agg Algebra Ast Expr Format List Option Printf Schema String Tkr_relation Value
