lib/sql/analyzer.mli: Algebra Ast Expr Schema Tkr_relation
