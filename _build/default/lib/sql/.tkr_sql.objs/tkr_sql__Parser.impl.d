lib/sql/parser.ml: Ast Format Lexer List Printf String Tkr_relation
