lib/sql/ast.ml: Tkr_relation
