lib/sql/lexer.mli: Format
