(** Half-open time intervals [\[b, e)] over integer time points.

    Intervals are always non-empty ([b < e]).  They denote the set of
    contiguous time points [{t | b <= t < e}] (Section 5.1 of the paper). *)

type t = private { b : int; e : int }
(** An interval [\[b, e)] with the invariant [b < e]. *)

val make : int -> int -> t
(** [make b e] is the interval [\[b, e)].
    @raise Invalid_argument if [b >= e]. *)

val make_opt : int -> int -> t option
(** [make_opt b e] is [Some \[b, e)] if [b < e] and [None] otherwise. *)

val b : t -> int
(** Inclusive start point (the paper's [I+]). *)

val e : t -> int
(** Exclusive end point (the paper's [I-]). *)

val duration : t -> int
(** Number of time points covered. *)

val singleton : int -> t
(** [singleton t] is [\[t, t+1)]. *)

val mem : int -> t -> bool
(** [mem t i] is [true] iff time point [t] lies in [i]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic order on [(b, e)]; a total order used for canonical
    representations of temporal elements. *)

val overlaps : t -> t -> bool
(** [overlaps i j] is [true] iff [i] and [j] share at least one point. *)

val adjacent : t -> t -> bool
(** The paper's [adj]: the intervals meet end-to-start in either order. *)

val subset : t -> t -> bool
(** [subset i j] is [true] iff every point of [i] lies in [j]. *)

val intersect : t -> t -> t option
(** Interval covering exactly the common points, if any. *)

val union : t -> t -> t option
(** Union as an interval; defined only when the inputs overlap or are
    adjacent (Section 5.1), otherwise [None]. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
