module IS = Set.Make (Int)

type t = IS.t

let of_list l = IS.of_list l

let of_intervals is =
  List.fold_left (fun s i -> IS.add (Interval.b i) (IS.add (Interval.e i) s)) IS.empty is

let union = IS.union
let to_list = IS.elements
let is_empty = IS.is_empty
let cardinal = IS.cardinal
let add = IS.add

let elementary ep =
  match IS.elements ep with
  | [] | [ _ ] -> []
  | first :: rest ->
      let segs, _ =
        List.fold_left
          (fun (acc, prev) point -> (Interval.make prev point :: acc, point))
          ([], first) rest
      in
      List.rev segs

let elementary_closed ~tmax ep =
  let ep = if IS.is_empty ep then ep else IS.add (min tmax (IS.max_elt ep)) ep in
  let ep =
    match IS.max_elt_opt ep with
    | Some m when m < tmax -> IS.add tmax ep
    | _ -> ep
  in
  elementary ep

let pp ppf s =
  Format.fprintf ppf "{%a}" Fmt.(list ~sep:(any "; ") int) (IS.elements s)
