type t = { b : int; e : int }

let make b e =
  if b >= e then
    invalid_arg (Printf.sprintf "Interval.make: need b < e, got [%d, %d)" b e);
  { b; e }

let make_opt b e = if b < e then Some { b; e } else None
let b i = i.b
let e i = i.e
let duration i = i.e - i.b
let singleton t = { b = t; e = t + 1 }
let mem t i = i.b <= t && t < i.e
let equal i j = i.b = j.b && i.e = j.e
let compare i j = if i.b <> j.b then Int.compare i.b j.b else Int.compare i.e j.e
let overlaps i j = i.b < j.e && j.b < i.e
let adjacent i j = i.e = j.b || j.e = i.b
let subset i j = j.b <= i.b && i.e <= j.e
let intersect i j = make_opt (max i.b j.b) (min i.e j.e)

let union i j =
  if overlaps i j || adjacent i j then Some { b = min i.b j.b; e = max i.e j.e }
  else None

let hash i = (i.b * 1000003) lxor i.e
let pp ppf i = Format.fprintf ppf "[%02d, %02d)" i.b i.e
let to_string i = Format.asprintf "%a" pp i
