lib/timeline/domain.mli: Format
