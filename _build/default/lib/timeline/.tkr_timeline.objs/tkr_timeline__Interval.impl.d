lib/timeline/interval.ml: Format Int Printf
