lib/timeline/interval.mli: Format
