lib/timeline/domain.ml: Format Printf
