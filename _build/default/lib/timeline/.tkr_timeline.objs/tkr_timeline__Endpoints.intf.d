lib/timeline/endpoints.mli: Format Interval
