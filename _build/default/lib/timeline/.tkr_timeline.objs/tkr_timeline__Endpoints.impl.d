lib/timeline/endpoints.ml: Fmt Format Int Interval List Set
