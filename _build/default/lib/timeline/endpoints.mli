(** Endpoint sets and elementary intervals.

    Several constructions in the paper (K-coalescing, the split operator
    [N_G], the monus of period semirings) partition time into the maximal
    segments induced by a finite set of endpoints, on which annotations are
    guaranteed constant.  This module computes those segments. *)

type t
(** A sorted, duplicate-free set of time points. *)

val of_list : int list -> t
(** Build an endpoint set from an arbitrary list of points. *)

val of_intervals : Interval.t list -> t
(** All begin and end points of the given intervals. *)

val union : t -> t -> t
val to_list : t -> int list
val is_empty : t -> bool
val cardinal : t -> int
val add : int -> t -> t

val elementary : t -> Interval.t list
(** [elementary ep] is the list of intervals between consecutive points of
    [ep], in ascending order (the paper's [EPI] without the implicit
    [Tmax]-closing rule).  Empty or singleton sets yield []. *)

val elementary_closed : tmax:int -> t -> Interval.t list
(** Like {!elementary} but additionally closes the last segment at [tmax]
    when the largest endpoint is below it, matching [EPI] of Def. 8.3. *)

val pp : Format.formatter -> t -> unit
