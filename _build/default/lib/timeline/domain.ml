type t = { tmin : int; tmax : int }

let make ~tmin ~tmax =
  if tmin >= tmax then
    invalid_arg
      (Printf.sprintf "Domain.make: need tmin < tmax, got [%d, %d)" tmin tmax);
  { tmin; tmax }

let tmin d = d.tmin
let tmax d = d.tmax
let size d = d.tmax - d.tmin
let contains d t = d.tmin <= t && t < d.tmax

let points d =
  let rec go t acc = if t < d.tmin then acc else go (t - 1) (t :: acc) in
  go (d.tmax - 1) []

let fold f d init =
  let rec go t acc = if t >= d.tmax then acc else go (t + 1) (f t acc) in
  go d.tmin init

let whole d = (d.tmin, d.tmax)
let equal a b = a.tmin = b.tmin && a.tmax = b.tmax
let pp ppf d = Format.fprintf ppf "[%d, %d)" d.tmin d.tmax
