(** Finite, totally ordered time domains.

    The paper assumes a finite domain [T] of time points with a minimal
    point [Tmin] and a maximal (exclusive) point [Tmax].  We represent time
    points as integers; a domain is the half-open integer range
    [\[tmin, tmax)]. *)

type t
(** A finite time domain [\[tmin, tmax)]. *)

val make : tmin:int -> tmax:int -> t
(** [make ~tmin ~tmax] is the domain of points [tmin, tmin+1, ..., tmax-1].
    @raise Invalid_argument if [tmin >= tmax]. *)

val tmin : t -> int
(** Smallest time point of the domain. *)

val tmax : t -> int
(** Exclusive upper bound of the domain (the paper's [Tmax]). *)

val size : t -> int
(** Number of time points. *)

val contains : t -> int -> bool
(** [contains d t] is [true] iff [tmin d <= t < tmax d]. *)

val points : t -> int list
(** All time points in ascending order.  Intended for tests and small
    examples; the library never materializes domains on hot paths. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f d init] folds [f] over all points in ascending order. *)

val whole : t -> int * int
(** [whole d] is [(tmin d, tmax d)], the bounds of the all-time interval. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
