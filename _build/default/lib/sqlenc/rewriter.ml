(** REWR (Fig. 4): reduction of snapshot queries over N^T to non-temporal
    multiset queries over the period encoding.

    Conventions: encoded relations carry their period as the last two
    (integer) columns [__b]/[__e]; every rule below preserves this
    invariant.

    Two optimizations from Section 9 are controlled by {!options}:
    - [final_coalesce_only]: apply K-coalescing once, as the query's final
      operator, instead of after every operator (sound by Lemma 6.1 and its
      monus extension);
    - [fused_split_agg]: replace the literal
      [γ_{G,b,e}(N_G(Q, Q))] pipeline by the fused pre-aggregating
      {!Algebra.Split_agg} operator. *)

open Tkr_relation

type options = { final_coalesce_only : bool; fused_split_agg : bool }

let optimized = { final_coalesce_only = true; fused_split_agg = true }

(** The unoptimized, rule-by-rule transcription of Fig. 4. *)
let literal = { final_coalesce_only = false; fused_split_agg = false }

let range lo hi = List.init (hi - lo) (fun i -> lo + i)

(** [rewrite ~options ~tmin ~tmax ~lookup q] rewrites the logical snapshot
    query [q] (whose base relations have the data-only schemas given by
    [lookup]) into a query over the period encoding. *)
let rewrite ~(options : options) ~tmin ~tmax
    ~(lookup : string -> Schema.t) (q : Algebra.t) : Algebra.t =
  let data_schema q = Algebra.schema_of ~lookup q in
  let arity q = Schema.arity (data_schema q) in
  let c q = if options.final_coalesce_only then q else Algebra.Coalesce q in
  let b_proj n = Algebra.proj (Expr.Col n) "__b" in
  let e_proj n = Algebra.proj (Expr.Col (n + 1)) "__e" in
  let rec go (q : Algebra.t) : Algebra.t =
    match q with
    | Rel n -> Rel n
    | ConstRel (schema, tuples) ->
        (* constants hold at every snapshot: valid over the whole domain *)
        let enc_schema = Period_enc.encoded_schema schema in
        let enc_tuples =
          List.map
            (fun t ->
              Tuple.append t (Tuple.make [ Value.Int tmin; Value.Int tmax ]))
            tuples
        in
        ConstRel (enc_schema, enc_tuples)
    | Select (p, q0) -> c (Select (p, go q0))
    | Project (projs, q0) ->
        let n = arity q0 in
        c (Project (projs @ [ b_proj n; e_proj n ], go q0))
    | Join (p, l, r) ->
        let nl = arity l and nr = arity r in
        (* concatenated encoded schema: dataL bL eL dataR bR eR *)
        let bl = nl and el = nl + 1 in
        let br = nl + 2 + nr and er = nl + 2 + nr + 1 in
        let p' = Expr.map_cols (fun i -> if i >= nl then i + 2 else i) p in
        let overlap =
          Expr.And
            ( Expr.Cmp (Expr.Lt, Expr.Col bl, Expr.Col er),
              Expr.Cmp (Expr.Lt, Expr.Col br, Expr.Col el) )
        in
        let sl = data_schema l and sr = data_schema r in
        let out_projs =
          List.map
            (fun i -> Algebra.proj (Expr.Col i) (Schema.name sl i))
            (range 0 nl)
          @ List.map
              (fun i ->
                Algebra.proj (Expr.Col (nl + 2 + i)) (Schema.name sr i))
              (range 0 nr)
          @ [
              Algebra.proj (Expr.Greatest (Expr.Col bl, Expr.Col br)) "__b";
              Algebra.proj (Expr.Least (Expr.Col el, Expr.Col er)) "__e";
            ]
        in
        c (Project (out_projs, Join (Expr.And (p', overlap), go l, go r)))
    | Union (l, r) -> c (Union (go l, go r))
    | Diff (l, r) ->
        let g = range 0 (arity l) in
        let le = go l and re = go r in
        c (Diff (Split (g, le, re), Split (g, re, le)))
    | Agg (group, aggs, q0) -> rewrite_agg group aggs q0
    | Distinct q0 ->
        let g = range 0 (arity q0) in
        let e = go q0 in
        c (Distinct (Split (g, e, e)))
    | Coalesce _ | Split _ | Split_agg _ ->
        invalid_arg "Rewriter.rewrite: query is already rewritten"
  and rewrite_agg group aggs q0 =
    let s0 = data_schema q0 in
    let n = Schema.arity s0 in
    let enc = go q0 in
    let k = List.length group in
    let m = List.length aggs in
    let ungrouped = k = 0 in
    (* materialize group expressions and aggregate inputs as columns, so
       the split operator can group on column positions *)
    let agg_input (spec : Algebra.agg_spec) =
      match Agg.input_expr spec.func with
      | Some e -> e
      | None -> Expr.Const (Value.Int 1) (* count(·): constant non-null *)
    in
    let prep_projs =
      group
      @ List.mapi
          (fun i spec -> Algebra.proj (agg_input spec) (Printf.sprintf "__a%d" i))
          aggs
      @ [ b_proj n; e_proj n ]
    in
    let prep = Algebra.Project (prep_projs, enc) in
    (* remap aggregate functions onto the materialized input columns; the
       count(·) preprocessing of Fig. 4 (count over a constant-1 column)
       makes the NULL gap row invisible to COUNT *)
    let remapped =
      List.mapi
        (fun i (spec : Algebra.agg_spec) ->
          let col = Expr.Col (k + i) in
          let func : Agg.func =
            match spec.func with
            | Agg.Count_star | Agg.Count _ -> Agg.Count col
            | Agg.Sum _ -> Agg.Sum col
            | Agg.Avg _ -> Agg.Avg col
            | Agg.Min _ -> Agg.Min col
            | Agg.Max _ -> Agg.Max col
          in
          { spec with func })
        aggs
    in
    if options.fused_split_agg then
      c
        (Split_agg
           {
             sa_group = range 0 k;
             sa_aggs = remapped;
             sa_gap = (if ungrouped then Some (tmin, tmax) else None);
             sa_child = prep;
           })
    else
      (* the literal Fig. 4 pipeline *)
      let prep_schema =
        Schema.make
          (List.map
             (fun (p : Algebra.proj) ->
               Schema.attr p.name (Expr.infer_ty s0 p.expr))
             (group
             @ List.mapi
                 (fun i spec ->
                   Algebra.proj (agg_input spec) (Printf.sprintf "__a%d" i))
                 aggs)
          @ [ Schema.attr "__b" Value.TInt; Schema.attr "__e" Value.TInt ])
      in
      let left =
        if ungrouped then
          let null_row =
            Tuple.make
              (List.init m (fun _ -> Value.Null)
              @ [ Value.Int tmin; Value.Int tmax ])
          in
          Algebra.Union (prep, ConstRel (prep_schema, [ null_row ]))
        else prep
      in
      let split = Algebra.Split (range 0 k, left, prep) in
      let group_projs =
        List.map2
          (fun i (p : Algebra.proj) -> Algebra.proj (Expr.Col i) p.name)
          (range 0 k) group
        @ [ b_proj (k + m); e_proj (k + m) ]
      in
      let agg_node = Algebra.Agg (group_projs, remapped, split) in
      (* agg output: g..., __b, __e, aggs...; restore the encoding order *)
      let reorder =
        List.map2
          (fun i (p : Algebra.proj) -> Algebra.proj (Expr.Col i) p.name)
          (range 0 k) group
        @ List.map2
            (fun i (spec : Algebra.agg_spec) ->
              Algebra.proj (Expr.Col (k + 2 + i)) spec.agg_name)
            (range 0 m) remapped
        @ [ Algebra.proj (Expr.Col k) "__b"; Algebra.proj (Expr.Col (k + 1)) "__e" ]
      in
      c (Project (reorder, agg_node))
  in
  let rewritten = go q in
  match rewritten with
  | Algebra.Coalesce _ -> rewritten
  | r -> Algebra.Coalesce r
