lib/sqlenc/period_enc.ml: Array Fun Hashtbl Krel List Schema Tkr_core Tkr_engine Tkr_relation Tkr_temporal Tkr_timeline Tuple Value
