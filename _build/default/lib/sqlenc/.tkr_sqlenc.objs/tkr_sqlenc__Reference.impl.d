lib/sqlenc/reference.ml: Array Hashtbl List Tkr_engine Tkr_relation Tkr_semiring Tkr_temporal Tkr_timeline Tuple Value
