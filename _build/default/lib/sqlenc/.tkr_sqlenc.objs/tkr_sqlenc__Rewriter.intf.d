lib/sqlenc/rewriter.mli: Algebra Schema Tkr_relation
