lib/sqlenc/period_enc.mli: Schema Tkr_core Tkr_engine Tkr_relation Tkr_temporal
