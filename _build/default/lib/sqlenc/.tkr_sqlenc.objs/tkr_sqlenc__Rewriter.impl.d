lib/sqlenc/rewriter.ml: Agg Algebra Expr List Period_enc Printf Schema Tkr_relation Tuple Value
