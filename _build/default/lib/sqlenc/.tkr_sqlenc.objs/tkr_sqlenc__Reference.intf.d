lib/sqlenc/reference.mli: Tkr_engine
