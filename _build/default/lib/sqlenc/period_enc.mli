(** PERIODENC (Def. 8.1): the bijection between N^T-relations (the logical
    model) and SQL period tables — multiset tables with [__b]/[__e] as the
    trailing columns. *)

open Tkr_relation
module Table = Tkr_engine.Table

val begin_attr : Schema.attr
val end_attr : Schema.attr

val encoded_schema : Schema.t -> Schema.t
(** Data schema plus trailing period attributes. *)

val data_schema : Schema.t -> Schema.t
(** Drop the trailing period attributes. *)

module Make (D : Tkr_temporal.Period_semiring.DOMAIN) : sig
  module NP : module type of Tkr_core.Nperiod.Make (D)

  val to_table : NP.t -> Table.t
  (** One row per (interval, multiplicity) entry, duplicated per
      multiplicity: the canonical period-table encoding. *)

  val of_table : Table.t -> NP.t
  (** PERIODENC⁻¹ followed by coalescing: the canonical N^T-relation an
      arbitrary period table is snapshot-equivalent to.  Exact inverse of
      {!to_table}.  Rows with empty intervals are ignored. *)
end
