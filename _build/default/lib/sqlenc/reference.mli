(** Specification-level transcriptions of the coalesce (Def. 8.2) and
    split (Def. 8.3) operators: quadratic, used only as differential-test
    oracles for the engine's sweep implementations. *)

module Table = Tkr_engine.Table

val coalesce_spec : Table.t -> Table.t
val split_spec : int list -> Table.t -> Table.t -> Table.t
