(** PERIODENC (Def. 8.1): the bijection between N^T-relations (the logical
    model) and SQL period relations (physical multiset tables with
    [Abegin]/[Aend] as the last two columns). *)

open Tkr_relation
module Table = Tkr_engine.Table
module Interval = Tkr_timeline.Interval

let begin_attr = Schema.attr "__b" Value.TInt
let end_attr = Schema.attr "__e" Value.TInt

(** Schema of the encoding of an N^T-relation with the given data schema. *)
let encoded_schema (data : Schema.t) : Schema.t =
  Schema.make (Schema.attrs data @ [ begin_attr; end_attr ])

let data_schema (encoded : Schema.t) : Schema.t =
  Schema.project encoded (List.init (Schema.arity encoded - 2) Fun.id)

module Make (D : Tkr_temporal.Period_semiring.DOMAIN) = struct
  module NP = Tkr_core.Nperiod.Make (D)

  (** PERIODENC: one row per (interval, multiplicity) entry of each tuple's
      temporal element, duplicated per multiplicity. *)
  let to_table (r : NP.t) : Table.t =
    let schema = encoded_schema (Krel.schema r) in
    let buf = ref [] in
    NP.R.iter
      (fun tuple el ->
        List.iter
          (fun (i, m) ->
            let row =
              Tuple.append tuple
                (Tuple.make
                   [ Value.Int (Interval.b i); Value.Int (Interval.e i) ])
            in
            for _ = 1 to m do
              buf := row :: !buf
            done)
          el)
      r;
    Table.make schema (List.rev !buf)

  (** PERIODENC⁻¹ followed by K-coalescing: decode an arbitrary period
      table into the canonical N^T-relation it is snapshot-equivalent to.
      On tables produced by {!to_table} this is the exact inverse. *)
  let of_table (t : Table.t) : NP.t =
    let data = data_schema (Table.schema t) in
    let raws : (Tuple.t, (Interval.t * int) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    Array.iter
      (fun row ->
        let d = Tkr_engine.Ops.data_of_row row in
        let b, e = Tkr_engine.Ops.period_of_row row in
        if b < e then
          match Hashtbl.find_opt raws d with
          | Some cell -> cell := (Interval.make b e, 1) :: !cell
          | None -> Hashtbl.add raws d (ref [ (Interval.make b e, 1) ]))
      (Table.rows t);
    Hashtbl.fold
      (fun tuple cell acc -> NP.R.add acc tuple (NP.KT.of_raw !cell))
      raws
      (NP.R.empty data)
end
