(** REWR (Fig. 4): reduction of snapshot queries over N^T to non-temporal
    multiset queries over the period encoding.

    Every rule preserves the invariant that encoded relations carry their
    period as the trailing two integer columns. *)

open Tkr_relation

type options = {
  final_coalesce_only : bool;
      (** apply K-coalescing once as the final operator instead of after
          every operator — sound by Lemma 6.1 and its monus extension
          (Section 9) *)
  fused_split_agg : bool;
      (** replace the literal [γ(N_G(Q, Q))] aggregation pipeline with the
          fused pre-aggregating {!Algebra.Split_agg} operator (Section 9) *)
}

val optimized : options
(** Both optimizations on (the middleware default). *)

val literal : options
(** The rule-by-rule transcription of Fig. 4, for comparison. *)

val rewrite :
  options:options ->
  tmin:int ->
  tmax:int ->
  lookup:(string -> Schema.t) ->
  Algebra.t ->
  Algebra.t
(** [rewrite ~options ~tmin ~tmax ~lookup q] rewrites the logical snapshot
    query [q], whose base relations have the {e data-only} schemas given
    by [lookup], into a query over the encoding ready for the engine.
    [\[tmin, tmax)] is the time domain (gap rows, constants).
    @raise Invalid_argument if [q] already contains encoding operators. *)
