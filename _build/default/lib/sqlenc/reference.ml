(** Specification-level implementations of the coalesce (Def. 8.2) and
    split (Def. 8.3) operators, written by direct transcription of the
    definitions.  They are quadratic and exist purely as differential-test
    oracles for the engine's O(n log n) sweep implementations. *)

open Tkr_relation
module Table = Tkr_engine.Table
module Interval = Tkr_timeline.Interval
module Endpoints = Tkr_timeline.Endpoints
module TE = Tkr_temporal.Temporal_element.Make (Tkr_semiring.Nat)

let coalesce_spec (t : Table.t) : Table.t =
  (* Def. 8.2: decode each tuple's raw temporal element, apply C_N,
     re-encode. *)
  let raws : (Tuple.t, (Interval.t * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  Array.iter
    (fun row ->
      let d = Tkr_engine.Ops.data_of_row row in
      let b, e = Tkr_engine.Ops.period_of_row row in
      match Hashtbl.find_opt raws d with
      | Some cell -> cell := (Interval.make b e, 1) :: !cell
      | None ->
          Hashtbl.add raws d (ref [ (Interval.make b e, 1) ]);
          order := d :: !order)
    (Table.rows t);
  let buf = ref [] in
  List.iter
    (fun d ->
      let el = TE.coalesce !(Hashtbl.find raws d) in
      List.iter
        (fun (i, m) ->
          let row =
            Tuple.append d
              (Tuple.make [ Value.Int (Interval.b i); Value.Int (Interval.e i) ])
          in
          for _ = 1 to m do
            buf := row :: !buf
          done)
        el)
    (List.rev !order);
  Table.make (Table.schema t) (List.rev !buf)

let split_spec (group_cols : int list) (left : Table.t) (right : Table.t) :
    Table.t =
  (* Def. 8.3, literally: for every candidate output tuple (d, I) where I
     is an elementary interval of the endpoint set of d's group, the output
     multiplicity is the number of left rows (d, I') with I ⊆ I'. *)
  let ep : (Tuple.t, Endpoints.t ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun t ->
      Array.iter
        (fun row ->
          let key = Tuple.project group_cols row in
          let b, e = Tkr_engine.Ops.period_of_row row in
          match Hashtbl.find_opt ep key with
          | Some cell -> cell := Endpoints.add b (Endpoints.add e !cell)
          | None -> Hashtbl.add ep key (ref (Endpoints.of_list [ b; e ])))
        (Table.rows t))
    [ left; right ];
  (* left rows grouped by full data *)
  let by_data : (Tuple.t, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let d = Tkr_engine.Ops.data_of_row row in
      let p = Tkr_engine.Ops.period_of_row row in
      match Hashtbl.find_opt by_data d with
      | Some cell -> cell := p :: !cell
      | None ->
          Hashtbl.add by_data d (ref [ p ]);
          order := d :: !order)
    (Table.rows left);
  let buf = ref [] in
  List.iter
    (fun d ->
      let intervals = !(Hashtbl.find by_data d) in
      (* the group key of data d: project data positions onto group cols *)
      let key = Tuple.project group_cols d in
      let eps = match Hashtbl.find_opt ep key with Some c -> !c | None -> Endpoints.of_list [] in
      List.iter
        (fun seg ->
          let count =
            List.length
              (List.filter
                 (fun (b, e) -> b <= Interval.b seg && Interval.e seg <= e)
                 intervals)
          in
          let row =
            Tuple.append d
              (Tuple.make
                 [ Value.Int (Interval.b seg); Value.Int (Interval.e seg) ])
          in
          for _ = 1 to count do
            buf := row :: !buf
          done)
        (Endpoints.elementary eps))
    (List.rev !order);
  Table.make (Table.schema left) (List.rev !buf)
