(** A closure-compiling executor: expressions and operators are compiled
    once into closures instead of being re-interpreted per row.  Produces
    exactly {!Exec}'s multisets (differentially tested); useful for
    prepared statements executed repeatedly. *)

open Tkr_relation

val compile_expr : Expr.t -> Tuple.t -> Value.t
val compile_pred : Expr.t -> Tuple.t -> bool

type plan = Database.t -> Table.t

val compile : lookup:(string -> Schema.t) -> Algebra.t -> plan
(** [lookup] must give the schema of every base relation referenced;
    the compiled plan may be run against any database with compatible
    schemas. *)

val eval : Database.t -> Algebra.t -> Table.t
