(** Minimal CSV persistence for tables.  The header encodes the schema as
    [name:type] pairs so files round-trip without an external catalog.
    Strings containing commas, quotes or newlines are double-quoted with
    [""] escaping; NULL is the empty unquoted field. *)

open Tkr_relation

let ty_to_string = function
  | Value.TBool -> "bool"
  | Value.TInt -> "int"
  | Value.TFloat -> "float"
  | Value.TStr -> "text"

let ty_of_string = function
  | "bool" -> Value.TBool
  | "int" -> Value.TInt
  | "float" -> Value.TFloat
  | "text" -> Value.TStr
  | s -> invalid_arg ("Csv_io: unknown type " ^ s)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  || s = ""

let quote s =
  if needs_quoting s then (
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf)
  else s

let field_of_value = function
  | Value.Null -> ""
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Str s -> quote (if s = "" then "" else s)

let value_of_field ty (raw : string) (quoted : bool) =
  if raw = "" && not quoted then Value.Null
  else
    match ty with
    | Value.TBool -> Value.Bool (bool_of_string raw)
    | Value.TInt -> Value.Int (int_of_string raw)
    | Value.TFloat -> Value.Float (float_of_string raw)
    | Value.TStr -> Value.Str raw

(* Split one CSV line into (field, was_quoted) pairs. *)
let split_line (line : string) : (string * bool) list =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let quoted = ref false in
  let i = ref 0 in
  let flush () =
    fields := (Buffer.contents buf, !quoted) :: !fields;
    Buffer.clear buf;
    quoted := false
  in
  while !i < n do
    (match line.[!i] with
    | '"' when Buffer.length buf = 0 && not !quoted ->
        quoted := true;
        let rec scan j =
          if j >= n then invalid_arg "Csv_io: unterminated quote"
          else if line.[j] = '"' then
            if j + 1 < n && line.[j + 1] = '"' then (
              Buffer.add_char buf '"';
              scan (j + 2))
            else j + 1
          else (
            Buffer.add_char buf line.[j];
            scan (j + 1))
        in
        i := scan (!i + 1) - 1
    | ',' -> flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !fields

let write_table (path : string) (t : Table.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let header =
        String.concat ","
          (List.map
             (fun (a : Schema.attr) ->
               Printf.sprintf "%s:%s" a.name (ty_to_string a.ty))
             (Schema.attrs (Table.schema t)))
      in
      output_string oc header;
      output_char oc '\n';
      Array.iter
        (fun row ->
          output_string oc
            (String.concat "," (List.map field_of_value (Tuple.to_list row)));
          output_char oc '\n')
        (Table.rows t))

let read_table (path : string) : Table.t =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      let schema =
        Schema.make
          (List.map
             (fun (field, _) ->
               match String.index_opt field ':' with
               | Some i ->
                   Schema.attr
                     (String.sub field 0 i)
                     (ty_of_string
                        (String.sub field (i + 1) (String.length field - i - 1)))
               | None -> Schema.attr field Value.TStr)
             (split_line header))
      in
      let tys = List.map (fun (a : Schema.attr) -> a.ty) (Schema.attrs schema) in
      let rows = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             let fields = split_line line in
             if List.length fields <> List.length tys then
               invalid_arg
                 (Printf.sprintf "Csv_io: arity mismatch on line %S" line);
             rows :=
               Tuple.make
                 (List.map2 (fun ty (raw, q) -> value_of_field ty raw q) tys fields)
               :: !rows
         done
       with End_of_file -> ());
      Table.make schema (List.rev !rows))
