lib/engine/interval_join.ml: Array Hashtbl Int Ops Schema Table Tkr_relation Tuple Value
