lib/engine/exec.ml: Agg Algebra Array Database Expr Hashtbl List Neval Ops Schema Seq Table Tkr_relation Tuple Value
