lib/engine/optimizer.mli: Algebra Schema Tkr_relation
