lib/engine/table.ml: Array Buffer Fmt Format Krel List Printf Schema String Tkr_relation Tkr_semiring Tuple Value
