lib/engine/interval_join.mli: Table
