lib/engine/exec.mli: Algebra Database Expr Table Tkr_relation
