lib/engine/csv_io.mli: Table
