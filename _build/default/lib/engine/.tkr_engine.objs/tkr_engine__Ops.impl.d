lib/engine/ops.ml: Agg Algebra Array Expr Fun Hashtbl Int List Schema Set Table Tkr_relation Tuple Value
