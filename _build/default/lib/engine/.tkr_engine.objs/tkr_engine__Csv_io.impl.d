lib/engine/csv_io.ml: Array Buffer Fun List Printf Schema String Table Tkr_relation Tuple Value
