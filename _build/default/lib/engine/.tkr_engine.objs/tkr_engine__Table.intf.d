lib/engine/table.mli: Format Krel Schema Tkr_relation Tkr_semiring Tuple
