lib/engine/ops.mli: Algebra Hashtbl Set Table Tkr_relation Tuple
