lib/engine/database.ml: Array Fun Hashtbl List Option Schema String Table Tkr_relation Tuple Value
