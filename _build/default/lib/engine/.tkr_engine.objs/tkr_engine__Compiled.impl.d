lib/engine/compiled.ml: Agg Algebra Array Database Exec Expr Hashtbl List Neval Ops Schema Seq Table Tkr_relation Tuple Value
