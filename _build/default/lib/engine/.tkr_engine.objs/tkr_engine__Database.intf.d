lib/engine/database.mli: Schema Table Tkr_relation Tuple
