lib/engine/compiled.mli: Algebra Database Expr Schema Table Tkr_relation Tuple Value
