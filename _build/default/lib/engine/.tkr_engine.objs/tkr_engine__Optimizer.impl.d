lib/engine/optimizer.ml: Algebra Array Expr Float List Schema Tkr_relation Value
