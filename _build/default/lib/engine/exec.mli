(** The plan interpreter: evaluates (rewritten) algebra over physical
    multiset tables.

    Joins extract equi-keys from conjunctive predicates and run as hash
    joins with the remaining conjuncts (e.g. interval overlap) as a
    residual filter; predicates without equi-keys fall back to a nested
    loop. *)

open Tkr_relation

val select : Expr.t -> Table.t -> Table.t
val project : Algebra.proj list -> Table.t -> Table.t

val union : Table.t -> Table.t -> Table.t
(** UNION ALL. @raise Invalid_argument on incompatible schemas. *)

val except_all : Table.t -> Table.t -> Table.t
(** Counting EXCEPT ALL: each right row cancels one matching left row. *)

val nested_loop_join : Expr.t -> Table.t -> Table.t -> Table.t
val hash_join :
  (int * int) list -> Expr.t option -> Table.t -> Table.t -> Table.t

val join : Expr.t -> Table.t -> Table.t -> Table.t
(** Strategy selection: hash join when equi-keys exist, else nested loop. *)

val aggregate :
  Algebra.proj list -> Algebra.agg_spec list -> Table.t -> Table.t
(** Hash aggregation with SQL semantics (one row over empty ungrouped
    input). *)

val distinct : Table.t -> Table.t

val eval : Database.t -> Algebra.t -> Table.t
(** Evaluate a full plan.  [Split] with physically equal children
    evaluates the shared subplan once. *)
