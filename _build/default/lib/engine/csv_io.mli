(** Minimal CSV persistence.  The header encodes the schema as
    [name:type] pairs so files round-trip without an external catalog;
    NULL is the empty unquoted field; strings quote with [""] escaping. *)

val write_table : string -> Table.t -> unit

val read_table : string -> Table.t
(** @raise Invalid_argument on malformed files. *)
