(** Full RAagg over period N-relations (N^T): the multiset instance of the
    logical model, with the aggregation of Def. 7.1 and per-snapshot
    DISTINCT.

    Aggregation runs on the elementary segments induced by each group's
    annotation endpoints.  Without GROUP BY, the segments additionally
    cover the whole time domain, so gaps produce result rows (count 0 /
    NULL) — the fix for the paper's aggregation-gap bug. *)

module Algebra = Tkr_relation.Algebra

module Make (D : Tkr_temporal.Period_semiring.DOMAIN) : sig
  module P : module type of Period_rel.Make (Tkr_semiring.Nat) (D)
  module KT = P.KT
  module R = P.R

  type t = P.t

  val aggregate : Algebra.proj list -> Algebra.agg_spec list -> t -> t
  (** Def. 7.1, extended to the SQL aggregate functions. *)

  val distinct : t -> t
  (** Set semantics per snapshot: multiplicities become 1, re-coalesced. *)

  val eval : (string -> t) -> Algebra.t -> t
end
