(** Bitemporal K-relations by functor composition: since K^T is an
    m-semiring whenever K is (Thms. 6.2 / 7.1), [(K^VT)^TT] annotates each
    tuple with a transaction-time history of valid-time histories — the
    paper's "bi-temporal data" future-work item, for free.

    Both timeslice operators are homomorphisms, so snapshot reducibility
    holds independently per dimension. *)

module Schema = Tkr_relation.Schema
module Algebra = Tkr_relation.Algebra
module Period_semiring = Tkr_temporal.Period_semiring

module Make
    (K : Tkr_semiring.Semiring_intf.MONUS)
    (VT : Period_semiring.DOMAIN)
    (TT : Period_semiring.DOMAIN) : sig
  module KVT : module type of Period_semiring.MakeMonus (K) (VT)
  module KBT : module type of Period_semiring.MakeMonus (KVT) (TT)
  module E : module type of Tkr_relation.Eval.Make (KBT)
  module R = E.R
  module RVT : module type of Tkr_relation.Krel.MakeMonus (KVT)
  module RK : module type of Tkr_relation.Krel.MakeMonus (K)

  type t = R.t

  val of_facts :
    Schema.t -> (Tkr_relation.Tuple.t * (int * int) * (int * int) * K.t) list -> t
  (** [(tuple, (tb, te), (vb, ve), k)]: between transaction times [tb] and
      [te], [tuple] was recorded as holding with [k] during [\[vb, ve)]. *)

  val timeslice_tt : t -> int -> RVT.t
  (** The valid-time database as recorded at a transaction time. *)

  val timeslice : t -> tt:int -> vt:int -> RK.t
  (** The snapshot believed (at [tt]) to hold at [vt]. *)

  val eval : (string -> t) -> Algebra.t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
