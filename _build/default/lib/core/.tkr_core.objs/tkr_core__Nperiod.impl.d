lib/core/nperiod.ml: Array Hashtbl List Period_rel Tkr_relation Tkr_semiring Tkr_temporal Tkr_timeline
