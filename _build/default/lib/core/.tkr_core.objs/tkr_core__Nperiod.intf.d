lib/core/nperiod.mli: Period_rel Tkr_relation Tkr_semiring Tkr_temporal
