lib/core/bitemporal.ml: List Tkr_relation Tkr_semiring Tkr_temporal Tkr_timeline
