lib/core/bitemporal.mli: Format Tkr_relation Tkr_semiring Tkr_temporal
