lib/core/period_rel.ml: Hashtbl List Tkr_relation Tkr_semiring Tkr_snapshot Tkr_temporal Tkr_timeline
