lib/core/period_rel.mli: Format Tkr_relation Tkr_semiring Tkr_snapshot Tkr_temporal Tkr_timeline
