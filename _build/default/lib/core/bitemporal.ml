(** Bitemporal K-relations by functor composition.

    The paper's conclusion lists "extensions for bi-temporal data" as
    future work.  In the period-semiring framework this needs no new
    theory: since K^T is itself an m-semiring whenever K is (Thms. 6.2 and
    7.1), the construction composes — [(K^VT)^TT] annotates every tuple
    with a transaction-time history of valid-time histories.  Both
    timeslice operators are semiring homomorphisms, so snapshot
    reducibility holds in each dimension independently:

    - [timeslice_tt r tt] is the valid-time period K-relation as recorded
      at transaction time [tt];
    - [timeslice r ~tt ~vt] is the plain K-relation that was believed (at
      [tt]) to hold at [vt]. *)

module Domain = Tkr_timeline.Domain
module Schema = Tkr_relation.Schema
module Krel = Tkr_relation.Krel
module Algebra = Tkr_relation.Algebra
module Period_semiring = Tkr_temporal.Period_semiring

module Make
    (K : Tkr_semiring.Semiring_intf.MONUS)
    (VT : Period_semiring.DOMAIN)
    (TT : Period_semiring.DOMAIN) =
struct
  module KVT = Period_semiring.MakeMonus (K) (VT)
  (** Valid-time period semiring K^VT. *)

  module KBT = Period_semiring.MakeMonus (KVT) (TT)
  (** The bitemporal semiring (K^VT)^TT. *)

  module E = Tkr_relation.Eval.Make (KBT)
  module R = E.R
  module RVT = Tkr_relation.Krel.MakeMonus (KVT)
  module RK = Tkr_relation.Krel.MakeMonus (K)

  type t = R.t

  (** Build from bitemporal facts: [(tuple, (tb, te), (vb, ve), k)] states
      that between transaction times [tb] and [te] the database recorded
      [tuple] as holding with annotation [k] during valid time
      [\[vb, ve)]. *)
  let of_facts schema facts : t =
    List.fold_left
      (fun acc (tuple, (tb, te), (vb, ve), k) ->
        let inner = KVT.of_assoc [ ((vb, ve), k) ] in
        let outer =
          KBT.of_raw [ (Tkr_timeline.Interval.make tb te, inner) ]
        in
        R.add acc tuple outer)
      (R.empty schema) facts

  (** The valid-time database as recorded at transaction time [tt]. *)
  let timeslice_tt (r : t) (tt : int) : RVT.t =
    R.fold
      (fun tuple el acc -> RVT.add acc tuple (KBT.timeslice el tt))
      r
      (RVT.empty (Krel.schema r))

  (** The snapshot believed (at transaction time [tt]) to hold at valid
      time [vt]. *)
  let timeslice (r : t) ~(tt : int) ~(vt : int) : RK.t =
    R.fold
      (fun tuple el acc ->
        RK.add acc tuple (KVT.timeslice (KBT.timeslice el tt) vt))
      r
      (RK.empty (Krel.schema r))

  (** Queries evaluate with (K^VT)^TT semantics; both timeslices commute
      with them. *)
  let eval (db : string -> t) (q : Algebra.t) : t = E.eval db q

  let equal = R.equal
  let pp = R.pp
end
