(** The abstract model: snapshot K-relations (Section 4.2) — total
    functions from time points to K-relations, with pointwise query
    evaluation (Def. 4.4).  Snapshot reducibility holds by construction;
    this model is the semantic ground truth the logical model and the SQL
    implementation are verified against. *)

module Domain = Tkr_timeline.Domain
module Schema = Tkr_relation.Schema
module Krel = Tkr_relation.Krel
module Algebra = Tkr_relation.Algebra

module Make (K : Tkr_semiring.Semiring_intf.MONUS) : sig
  module E : module type of Tkr_relation.Eval.Make (K)
  module R = E.R

  type t

  val domain : t -> Domain.t
  val schema : t -> Schema.t

  val make : Domain.t -> Schema.t -> (int -> R.t) -> t
  val constant : Domain.t -> R.t -> t

  val timeslice : t -> int -> R.t
  (** τ_T (Def. 4.3ff).
      @raise Invalid_argument outside the domain. *)

  val of_facts : Domain.t -> Schema.t -> (Tkr_relation.Tuple.t * (int * int) * K.t) list -> t
  (** Interval-stamped facts: annotation [k] at every point of [\[b, e)]. *)

  val equal : t -> t -> bool

  val eval : (string -> t) -> Algebra.t -> t
  (** Snapshot semantics (Def. 4.4): evaluate pointwise with RA
      semantics.  Aggregation/DISTINCT raise (see {!Nsnapshot}). *)

  val pp : Format.formatter -> t -> unit
end

(** Snapshot N-relations with the full algebra RAagg (pointwise reference
    multiset evaluation). *)
module Nsnapshot : sig
  include module type of Make (Tkr_semiring.Nat)

  val eval : (string -> t) -> Algebra.t -> t
  (** Pointwise RAagg, including SQL-faithful aggregation and DISTINCT. *)
end
