lib/snapshot/snapshot_rel.mli: Format Tkr_relation Tkr_semiring Tkr_timeline
