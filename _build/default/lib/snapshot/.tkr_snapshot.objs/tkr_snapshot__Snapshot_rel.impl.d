lib/snapshot/snapshot_rel.ml: Array Format List Tkr_relation Tkr_semiring Tkr_timeline
