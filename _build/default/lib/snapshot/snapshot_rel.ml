(** The abstract model: snapshot K-relations (Section 4.2).

    A snapshot K-relation is a total function from the time points of a
    finite domain to K-relations; queries are evaluated pointwise
    (Def. 4.4), so snapshot-reducibility holds by construction.  This model
    is deliberately verbose — it exists as the semantic ground truth
    against which the logical model and the SQL implementation are checked. *)

module Domain = Tkr_timeline.Domain
module Schema = Tkr_relation.Schema
module Krel = Tkr_relation.Krel
module Algebra = Tkr_relation.Algebra

module Make (K : Tkr_semiring.Semiring_intf.MONUS) = struct
  module E = Tkr_relation.Eval.Make (K)
  module R = E.R

  type t = { domain : Domain.t; schema : Schema.t; snaps : R.t array }
  (** [snaps.(i)] is the snapshot at time point [Domain.tmin + i]. *)

  let domain r = r.domain
  let schema r = r.schema

  let make domain schema f =
    let tmin = Domain.tmin domain in
    {
      domain;
      schema;
      snaps = Array.init (Domain.size domain) (fun i -> f (tmin + i));
    }

  let constant domain (rel : R.t) =
    make domain (Tkr_relation.Krel.schema rel) (fun _ -> rel)

  (** τ_T: the snapshot at time [t]. *)
  let timeslice (r : t) t : R.t =
    if not (Domain.contains r.domain t) then
      invalid_arg "Snapshot_rel.timeslice: time point outside domain";
    r.snaps.(t - Domain.tmin r.domain)

  (** Build from interval-stamped facts: each [(tuple, (b, e), k)] adds
      annotation [k] to [tuple] at every point of [\[b, e)]. *)
  let of_facts domain schema facts =
    make domain schema (fun t ->
        List.fold_left
          (fun acc (tuple, (b, e), k) ->
            if b <= t && t < e then R.add acc tuple k else acc)
          (R.empty schema) facts)

  let equal (a : t) (b : t) =
    Domain.equal a.domain b.domain
    && Array.for_all2 R.equal a.snaps b.snaps

  (** Snapshot semantics (Def. 4.4): evaluate [q] pointwise. *)
  let eval (db : string -> t) (q : Algebra.t) : t =
    let domain =
      (* any base relation fixes the domain; queries without base relations
         are rejected at a higher level *)
      let rec find = function
        | Algebra.Rel n -> Some (db n).domain
        | ConstRel _ -> None
        | Select (_, q) | Project (_, q) | Agg (_, _, q) | Distinct q
        | Coalesce q | Split_agg { sa_child = q; _ } ->
            find q
        | Join (_, l, r) | Union (l, r) | Diff (l, r) | Split (_, l, r) -> (
            match find l with Some d -> Some d | None -> find r)
      in
      match find q with
      | Some d -> d
      | None -> invalid_arg "Snapshot_rel.eval: query has no base relation"
    in
    let lookup n = (db n).schema in
    let out_schema = Algebra.schema_of ~lookup q in
    make domain out_schema (fun t -> E.eval (fun n -> timeslice (db n) t) q)

  let pp ppf (r : t) =
    let tmin = Domain.tmin r.domain in
    Array.iteri
      (fun i snap ->
        if not (R.is_empty snap) then
          Format.fprintf ppf "@[<v 2>%d ↦@ %a@]@." (tmin + i) R.pp snap)
      r.snaps
end

(** Snapshot N-relations with the full algebra RAagg: pointwise evaluation
    through the reference multiset evaluator. *)
module Nsnapshot = struct
  module M = Make (Tkr_semiring.Nat)
  include M

  let eval (db : string -> t) (q : Algebra.t) : t =
    let rec find = function
      | Algebra.Rel n -> Some (db n).domain
      | ConstRel _ -> None
      | Select (_, q) | Project (_, q) | Agg (_, _, q) | Distinct q
      | Coalesce q | Split_agg { sa_child = q; _ } ->
          find q
      | Join (_, l, r) | Union (l, r) | Diff (l, r) | Split (_, l, r) -> (
          match find l with Some d -> Some d | None -> find r)
    in
    let domain =
      match find q with
      | Some d -> d
      | None -> invalid_arg "Nsnapshot.eval: query has no base relation"
    in
    let lookup n = (db n).schema in
    let out_schema = Algebra.schema_of ~lookup q in
    make domain out_schema (fun t ->
        Tkr_relation.Neval.eval (fun n -> timeslice (db n) t) q)
end
