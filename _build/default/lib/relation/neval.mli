(** The reference multiset (N-relation) evaluator for the full algebra
    RAagg, with SQL-faithful aggregation (an empty input without GROUP BY
    yields exactly one row) and DISTINCT.

    Deliberately simple: the correctness oracle for the abstract model's
    pointwise evaluation and for the physical engine. *)

module E : module type of Eval.Make (Tkr_semiring.Nat)
module R = E.R

type db = E.db

val agg_out_schema :
  Schema.t -> Algebra.proj list -> Algebra.agg_spec list -> Schema.t
(** Output schema of an aggregation: grouping attributes then aggregate
    results. *)

val aggregate : Algebra.proj list -> Algebra.agg_spec list -> R.t -> R.t

val eval : db -> Algebra.t -> R.t
