(** K-relations: total functions from tuples to semiring annotations with
    finite support (Green et al., PODS 2007; Section 4.1 of the paper).

    The relation type ['k t] is concrete and shared by all functor
    instances, so that independently instantiated [Make (K)] modules agree
    on types. *)

type 'k t = { schema : Schema.t; data : 'k Tuple.Tmap.t }
(** Invariant: no tuple is mapped to the semiring's zero. *)

val schema : 'k t -> Schema.t

(** Operations over K-relations for a fixed semiring. *)
module type OPS = sig
  type annot
  type nonrec t = annot t

  val empty : Schema.t -> t
  val is_empty : t -> bool

  val annot : t -> Tuple.t -> annot
  (** Total: zero for absent tuples. *)

  val add : t -> Tuple.t -> annot -> t
  (** Accumulating add (annotations of equal tuples are summed). *)

  val set : t -> Tuple.t -> annot -> t
  (** Overwrite an annotation (zero removes the tuple). *)

  val of_list : Schema.t -> (Tuple.t * annot) list -> t
  val to_list : t -> (Tuple.t * annot) list
  val support : t -> Tuple.t list
  val size : t -> int
  val fold : (Tuple.t -> annot -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (Tuple.t -> annot -> unit) -> t -> unit

  val select : Expr.t -> t -> t
  (** σ_θ(R)(t) = R(t) · θ(t). *)

  val project : Expr.t list -> Schema.t -> t -> t
  (** Π_A(R)(t) = Σ_u:u.A=t R(u) — annotations of colliding tuples add. *)

  val join : Expr.t -> t -> t -> t
  (** (R ⋈_θ S)(t) = R(t\[R\]) · S(t\[S\]) under θ. *)

  val union : t -> t -> t
  (** (R ∪ S)(t) = R(t) + S(t).
      @raise Invalid_argument on incompatible schemas. *)

  val with_schema : Schema.t -> t -> t
  val map_annot : (annot -> annot) -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (K : Tkr_semiring.Semiring_intf.S) : OPS with type annot = K.t

module MakeMonus (K : Tkr_semiring.Semiring_intf.MONUS) : sig
  include OPS with type annot = K.t

  val diff : t -> t -> t
  (** (R − S)(t) = R(t) monus S(t); bag difference for K = N. *)
end
