(** SQL values and their scalar types.

    Comparison comes in two flavours: {!compare} is a canonical total order
    used for map keys and deterministic output (NULLs first, then by type
    tag), while {!sql_compare} implements SQL comparison semantics with
    numeric coercion between integers and floats and three-valued logic
    ([None] whenever a NULL is involved). *)

type ty = TBool | TInt | TFloat | TStr

type t = Null | Bool of bool | Int of int | Float of float | Str of string

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr

let tag = function Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 3 | Str _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0
let hash = Hashtbl.hash
let is_null = function Null -> true | _ -> false

(* SQL comparison: numeric coercion, NULL incomparable. *)
let sql_compare a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Bool x, Bool y -> Some (Bool.compare x y)
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Str x, Str y -> Some (String.compare x y)
  | _ ->
      invalid_arg
        (Printf.sprintf "Value.sql_compare: incompatible types (%d vs %d)"
           (tag a) (tag b))

let numeric2 fi ff a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> fi x y
  | Int x, Float y -> ff (float_of_int x) y
  | Float x, Int y -> ff x (float_of_int y)
  | Float x, Float y -> ff x y
  | _ -> invalid_arg "Value: arithmetic on non-numeric value"

let add = numeric2 (fun x y -> Int (x + y)) (fun x y -> Float (x +. y))
let sub = numeric2 (fun x y -> Int (x - y)) (fun x y -> Float (x -. y))
let mul = numeric2 (fun x y -> Int (x * y)) (fun x y -> Float (x *. y))

let div =
  numeric2
    (fun x y -> if y = 0 then Null else Int (x / y))
    (fun x y -> if y = 0. then Null else Float (x /. y))

let modulo =
  numeric2
    (fun x y -> if y = 0 then Null else Int (x mod y))
    (fun x y -> if y = 0. then Null else Float (Float.rem x y))

let neg = function
  | Null -> Null
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | _ -> invalid_arg "Value.neg: non-numeric value"

let to_float_opt = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | _ -> None

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "'%s'" s

let to_string v = Format.asprintf "%a" pp v

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with TBool -> "bool" | TInt -> "int" | TFloat -> "float" | TStr -> "text")
