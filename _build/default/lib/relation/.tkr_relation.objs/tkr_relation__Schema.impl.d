lib/relation/schema.ml: Array Fmt Format List String Value
