lib/relation/algebra.ml: Agg Expr Fmt Format List Schema Tuple Value
