lib/relation/eval.mli: Algebra Krel Schema Tkr_semiring
