lib/relation/expr.mli: Format Schema Tuple Value
