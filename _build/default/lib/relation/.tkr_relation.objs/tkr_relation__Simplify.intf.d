lib/relation/simplify.mli: Algebra Expr
