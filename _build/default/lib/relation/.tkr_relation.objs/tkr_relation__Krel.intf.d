lib/relation/krel.mli: Expr Format Schema Tkr_semiring Tuple
