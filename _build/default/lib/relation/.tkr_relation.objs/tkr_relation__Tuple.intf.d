lib/relation/tuple.mli: Format Map Value
