lib/relation/krel.ml: Array Expr Fmt Format List Schema Tkr_semiring Tuple
