lib/relation/neval.mli: Algebra Eval Schema Tkr_semiring
