lib/relation/algebra.mli: Agg Expr Format Schema Tuple
