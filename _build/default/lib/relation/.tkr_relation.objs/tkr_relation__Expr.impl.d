lib/relation/expr.ml: Char Fmt Format Hashtbl List Option Schema String Tuple Value
