lib/relation/eval.ml: Algebra Expr Krel List Schema Tkr_semiring
