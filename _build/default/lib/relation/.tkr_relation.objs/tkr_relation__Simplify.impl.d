lib/relation/simplify.ml: Agg Algebra Array Expr List Option Tuple Value
