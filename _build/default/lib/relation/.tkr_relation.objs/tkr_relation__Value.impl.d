lib/relation/value.ml: Bool Float Format Hashtbl Int Printf String
