lib/relation/neval.ml: Agg Algebra Array Eval Expr Hashtbl Krel List Schema Tkr_semiring Tuple Value
