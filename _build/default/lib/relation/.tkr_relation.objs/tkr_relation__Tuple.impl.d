lib/relation/tuple.ml: Array Fmt Format Hashtbl Int List Map Value
