lib/relation/agg.ml: Expr Format Schema Value
