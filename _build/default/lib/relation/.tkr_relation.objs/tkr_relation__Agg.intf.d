lib/relation/agg.mli: Expr Format Schema Value
