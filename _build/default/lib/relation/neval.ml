(** The reference multiset (N-relation) evaluator for the full algebra
    RAagg, including SQL-faithful aggregation and DISTINCT.

    This evaluator is deliberately simple; it is the correctness oracle for
    both the snapshot evaluator of the abstract model and the physical
    engine.  SQL semantics of aggregation: with a GROUP BY clause an empty
    group yields no row; without one, an empty input still yields exactly
    one row ([count = 0], other aggregates NULL). *)

module N = Tkr_semiring.Nat
module E = Eval.Make (N)
module R = E.R

type db = E.db

let agg_out_schema child_schema (group : Algebra.proj list)
    (aggs : Algebra.agg_spec list) =
  let gattrs =
    List.map
      (fun (p : Algebra.proj) ->
        Schema.attr p.name (Expr.infer_ty child_schema p.expr))
      group
  in
  let aattrs =
    List.map
      (fun (a : Algebra.agg_spec) ->
        Schema.attr a.agg_name (Agg.output_ty child_schema a.func))
      aggs
  in
  Schema.make (gattrs @ aattrs)

let aggregate (group : Algebra.proj list) (aggs : Algebra.agg_spec list)
    (r : R.t) : R.t =
  let child_schema = Krel.schema r in
  let out_schema = agg_out_schema child_schema group aggs in
  let table : (Tuple.t, Agg.acc array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  R.iter
    (fun tuple mult ->
      let key =
        Tuple.of_array
          (Array.of_list
             (List.map (fun (p : Algebra.proj) -> Expr.eval tuple p.expr) group))
      in
      let accs =
        match Hashtbl.find_opt table key with
        | Some a -> a
        | None ->
            let a = Array.make (List.length aggs) Agg.empty in
            Hashtbl.add table key a;
            order := key :: !order;
            a
      in
      List.iteri
        (fun i (spec : Algebra.agg_spec) ->
          let v =
            match Agg.input_expr spec.func with
            | None -> Value.Int 1 (* count star: any non-null value *)
            | Some e -> Expr.eval tuple e
          in
          accs.(i) <- Agg.step ~mult accs.(i) v)
        aggs)
    r;
  let emit key accs acc =
    let avals =
      List.mapi
        (fun i (spec : Algebra.agg_spec) -> Agg.final spec.func accs.(i))
        aggs
    in
    let out = Tuple.append key (Tuple.make avals) in
    R.add acc out 1
  in
  if group = [] && Hashtbl.length table = 0 then
    (* SQL: aggregation without grouping over empty input yields one row. *)
    emit (Tuple.make []) (Array.make (List.length aggs) Agg.empty)
      (R.empty out_schema)
  else
    List.fold_left
      (fun acc key -> emit key (Hashtbl.find table key) acc)
      (R.empty out_schema) (List.rev !order)

let rec eval (db : db) (q : Algebra.t) : R.t =
  match q with
  | Agg (group, aggs, q) -> aggregate group aggs (eval db q)
  | Distinct q -> R.map_annot (fun _ -> 1) (eval db q)
  | Select (p, q) -> R.select p (eval db q)
  | Project (projs, q) ->
      let r = eval db q in
      R.project
        (List.map (fun (p : Algebra.proj) -> p.expr) projs)
        (E.project_out_schema (Krel.schema r) projs)
        r
  | Join (p, l, r) -> R.join p (eval db l) (eval db r)
  | Union (l, r) -> R.union (eval db l) (eval db r)
  | Diff (l, r) -> R.diff (eval db l) (eval db r)
  | Rel _ | ConstRel _ | Coalesce _ | Split _ | Split_agg _ -> E.eval db q
