(** Tuples are immutable value arrays.  [Tmap] is the single, shared
    tuple-keyed map used by all K-relation functor instances so that two
    applications of the same functor produce compatible types. *)

type t = Value.t array

let make vs : t = Array.of_list vs
let of_array (a : Value.t array) : t = a
let to_list (t : t) = Array.to_list t
let arity (t : t) = Array.length t
let get (t : t) i = t.(i)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0
let hash (t : t) = Hashtbl.hash (Array.map Value.hash t)
let append (a : t) (b : t) : t = Array.append a b
let project idxs (t : t) : t = Array.of_list (List.map (fun i -> t.(i)) idxs)

let pp ppf (t : t) =
  Format.fprintf ppf "(%a)" Fmt.(list ~sep:(any ", ") Value.pp) (to_list t)

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Tmap = Map.Make (Ord)
