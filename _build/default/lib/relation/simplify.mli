(** Logical simplification: NULL-aware constant folding on expressions
    and plan-level cleanups (trivial/merged selections, fused cheap
    projections, idempotent DISTINCT/coalesce).  Semantics-preserving. *)

val fold_expr : Expr.t -> Expr.t
(** Bottom-up constant folding; only rewrites sound in three-valued logic
    are applied. *)

val simplify : Algebra.t -> Algebra.t
