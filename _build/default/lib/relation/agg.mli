(** SQL aggregation functions with mergeable partial states.

    The accumulator {!acc} tracks enough for all supported aggregates at
    once and supports {!combine}, which is what enables the paper's
    pre-aggregation optimization: pre-aggregate per (group, interval),
    split, then combine per elementary segment (Section 9). *)

type func =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

val input_expr : func -> Expr.t option
(** [None] for [count(·)]. *)

type acc

val empty : acc

val step : ?mult:int -> acc -> Value.t -> acc
(** Add one input value with multiplicity [mult] (the annotation of the
    contributing tuple).  NULL inputs count only towards [count(·)]. *)

val combine : acc -> acc -> acc
(** [combine a b] aggregates the union of the inputs of [a] and [b]. *)

val final : func -> acc -> Value.t
(** SQL results over the accumulated inputs: count over empty input is 0,
    every other aggregate is NULL. *)

val output_ty : Schema.t -> func -> Value.ty
val default_name : func -> string
val map_cols : (int -> int) -> func -> func
val pp : Format.formatter -> func -> unit
