(** The logical relational algebra AST shared by all evaluation levels.

    One AST, four evaluators: plain K-relations ({!Eval}), the pointwise
    abstract model ([tkr_snapshot]), period K-relations
    ([tkr_core]) and — after the rewriting REWR — the physical engine over
    the period encoding ([tkr_engine]).

    [Coalesce], [Split] and [Split_agg] are implementation-level operators
    that only appear in rewritten queries over the period encoding
    (Section 8/9); they follow the convention that the last two columns of
    an encoded relation are [Abegin]/[Aend]. *)

type proj = { expr : Expr.t; name : string }

type agg_spec = { func : Agg.func; agg_name : string }

type t =
  | Rel of string
  | ConstRel of Schema.t * Tuple.t list
  | Select of Expr.t * t
  | Project of proj list * t
  | Join of Expr.t * t * t
  | Union of t * t
  | Diff of t * t  (** bag difference (EXCEPT ALL) / monus *)
  | Agg of proj list * agg_spec list * t
  | Distinct of t
  | Coalesce of t  (** K-coalesce the encoding on all data columns (Def. 8.2) *)
  | Split of int list * t * t  (** the split operator N_G (Def. 8.3) *)
  | Split_agg of split_agg

and split_agg = {
  sa_group : int list;
  sa_aggs : agg_spec list;
  sa_gap : (int * int) option;
      (** [Some (tmin, tmax)] covers the whole domain with gap rows
          (aggregation without GROUP BY) *)
  sa_child : t;
}
(** The fused pre-aggregating split+aggregate of Section 9.  Output
    columns: group columns, aggregate results, [Abegin], [Aend]. *)

exception Unsupported of string

val proj : Expr.t -> string -> proj
val cols_proj : Schema.t -> int -> int -> proj list
(** Identity projections for columns [lo..hi-1]. *)

val schema_of : lookup:(string -> Schema.t) -> t -> Schema.t
(** Output schema, given the base-relation schemas. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
