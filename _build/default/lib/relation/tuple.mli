(** Tuples: immutable value arrays, plus the single shared tuple-keyed map
    functor instance ([Tmap]) used by every K-relation so that repeated
    functor applications produce compatible types. *)

type t = Value.t array

val make : Value.t list -> t
val of_array : Value.t array -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t

val compare : t -> t -> int
(** Lexicographic in {!Value.compare}; shorter tuples first. *)

val equal : t -> t -> bool
val hash : t -> int
val append : t -> t -> t

val project : int list -> t -> t
(** [project [2; 0] t] is [(t.(2), t.(0))]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Ord : sig
  type nonrec t = t

  val compare : t -> t -> int
end

module Tmap : Map.S with type key = t
