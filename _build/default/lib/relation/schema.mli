(** Relation schemas: named, typed attribute lists.

    Attribute names may be qualified ("s.salary").  Name resolution follows
    SQL: an exact match wins, otherwise a unique suffix match after the
    dot; ambiguity raises {!Ambiguous}. *)

type attr = { name : string; ty : Value.ty }

type t = attr array

exception Ambiguous of string
exception Unknown of string

val attr : string -> Value.ty -> attr
val make : attr list -> t
val arity : t -> int
val attrs : t -> attr list
val names : t -> string list
val get : t -> int -> attr
val ty : t -> int -> Value.ty
val name : t -> int -> string

val local_name : string -> string
(** The part after the last dot ("salary" for "s.salary"). *)

val find_opt : t -> string -> int option
(** @raise Ambiguous when several attributes match. *)

val find : t -> string -> int
(** @raise Unknown when no attribute matches. *)

val find_all : t -> string -> int list
val concat : t -> t -> t
val project : t -> int list -> t

val qualify : string -> t -> t
(** [qualify "s" schema] renames every attribute to ["s." ^ local name]. *)

val rename_all : string list -> t -> t

val equal : t -> t -> bool
(** Same names and types. *)

val union_compatible : t -> t -> bool
(** Same types (names may differ), as SQL set operations require. *)

val pp : Format.formatter -> t -> unit
