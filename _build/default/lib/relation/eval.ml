(** Evaluation of the logical algebra over K-relations, for any
    m-semiring K.  RA (selection, projection, join, union, difference) is
    supported generically; aggregation and DISTINCT need semiring-specific
    definitions and are provided for N by {!Neval}. *)

module Make (K : Tkr_semiring.Semiring_intf.MONUS) = struct
  module R = Krel.MakeMonus (K)

  type db = string -> R.t

  let project_out_schema child_schema projs =
    Schema.make
      (List.map
         (fun (p : Algebra.proj) ->
           Schema.attr p.name (Expr.infer_ty child_schema p.expr))
         projs)

  let rec eval (db : db) (q : Algebra.t) : R.t =
    match q with
    | Rel n -> db n
    | ConstRel (schema, tuples) ->
        R.of_list schema (List.map (fun t -> (t, K.one)) tuples)
    | Select (p, q) -> R.select p (eval db q)
    | Project (projs, q) ->
        let r = eval db q in
        R.project
          (List.map (fun (p : Algebra.proj) -> p.expr) projs)
          (project_out_schema (Krel.schema r) projs)
          r
    | Join (p, l, r) -> R.join p (eval db l) (eval db r)
    | Union (l, r) -> R.union (eval db l) (eval db r)
    | Diff (l, r) -> R.diff (eval db l) (eval db r)
    | Agg _ -> raise (Algebra.Unsupported "aggregation requires semiring N")
    | Distinct _ -> raise (Algebra.Unsupported "DISTINCT requires semiring N")
    | Coalesce _ | Split _ | Split_agg _ ->
        raise (Algebra.Unsupported "temporal operator outside period encoding")
end
