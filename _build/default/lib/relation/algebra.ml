(** The logical relational algebra AST shared by all evaluation levels.

    One AST, four evaluators: plain K-relations ({!Eval}), pointwise
    snapshot evaluation (abstract model, [tkr_snapshot]), period
    K-relations (logical model, [tkr_core]) and — after rewriting REWR —
    the physical engine over the period encoding ([tkr_engine]).

    [Coalesce] and [Split] only appear in rewritten queries over the period
    encoding (Section 8); they follow the convention that the last two
    columns of an encoded relation are [Abegin] and [Aend]. *)

type proj = { expr : Expr.t; name : string }

type agg_spec = { func : Agg.func; agg_name : string }

type t =
  | Rel of string
  | ConstRel of Schema.t * Tuple.t list
  | Select of Expr.t * t
  | Project of proj list * t
  | Join of Expr.t * t * t
  | Union of t * t
  | Diff of t * t  (** bag difference (EXCEPT ALL) / monus *)
  | Agg of proj list * agg_spec list * t
      (** group-by expressions, aggregate functions *)
  | Distinct of t
  | Coalesce of t
      (** K-coalesce the period encoding on all data columns (Def. 8.2) *)
  | Split of int list * t * t
      (** N_G(R1, R2): split R1's intervals at the endpoints of tuples of
          R1 ∪ R2 agreeing on the given group columns (Def. 8.3) *)
  | Split_agg of split_agg

and split_agg = {
  sa_group : int list;  (** grouping columns (data positions) *)
  sa_aggs : agg_spec list;  (** aggregates over the child's columns *)
  sa_gap : (int * int) option;
      (** [Some (tmin, tmax)]: cover the whole domain, producing rows over
          gaps (aggregation without GROUP BY); [None] for grouped
          aggregation *)
  sa_child : t;
}
(** The fused split-and-aggregate operator produced by the optimized
    rewriting (Section 9): the input is pre-aggregated per (group,
    interval), the pre-aggregates are split at the group's endpoints and
    combined per elementary segment.  Output columns: group columns,
    aggregate results, [Abegin], [Aend]. *)

exception Unsupported of string

let proj expr name = { expr; name }

(* Identity projection columns for a schema range. *)
let cols_proj schema lo hi =
  let rec go i acc =
    if i < lo then acc
    else go (i - 1) ({ expr = Expr.Col i; name = Schema.name schema i } :: acc)
  in
  go (hi - 1) []

let rec schema_of ~(lookup : string -> Schema.t) (q : t) : Schema.t =
  match q with
  | Rel n -> lookup n
  | ConstRel (s, _) -> s
  | Select (_, q) -> schema_of ~lookup q
  | Project (projs, q) ->
      let s = schema_of ~lookup q in
      Schema.make
        (List.map (fun p -> Schema.attr p.name (Expr.infer_ty s p.expr)) projs)
  | Join (_, l, r) -> Schema.concat (schema_of ~lookup l) (schema_of ~lookup r)
  | Union (l, _) -> schema_of ~lookup l
  | Diff (l, _) -> schema_of ~lookup l
  | Agg (group, aggs, q) ->
      let s = schema_of ~lookup q in
      let gattrs =
        List.map (fun p -> Schema.attr p.name (Expr.infer_ty s p.expr)) group
      in
      let aattrs =
        List.map (fun a -> Schema.attr a.agg_name (Agg.output_ty s a.func)) aggs
      in
      Schema.make (gattrs @ aattrs)
  | Distinct q -> schema_of ~lookup q
  | Coalesce q -> schema_of ~lookup q
  | Split (_, l, _) -> schema_of ~lookup l
  | Split_agg sa ->
      let s = schema_of ~lookup sa.sa_child in
      let gattrs = List.map (fun i -> Schema.get s i) sa.sa_group in
      let aattrs =
        List.map
          (fun (a : agg_spec) -> Schema.attr a.agg_name (Agg.output_ty s a.func))
          sa.sa_aggs
      in
      Schema.make
        (gattrs @ aattrs
        @ [ Schema.attr "__b" Value.TInt; Schema.attr "__e" Value.TInt ])

let rec pp ppf (q : t) =
  match q with
  | Rel n -> Format.fprintf ppf "%s" n
  | ConstRel (s, ts) ->
      Format.fprintf ppf "const%a[%d rows]" Schema.pp s (List.length ts)
  | Select (p, q) -> Format.fprintf ppf "@[<hv 2>σ[%a](@,%a)@]" Expr.pp p pp q
  | Project (projs, q) ->
      Format.fprintf ppf "@[<hv 2>Π[%a](@,%a)@]"
        Fmt.(
          list ~sep:(any ", ") (fun ppf p ->
              Format.fprintf ppf "%a as %s" Expr.pp p.expr p.name))
        projs pp q
  | Join (p, l, r) ->
      Format.fprintf ppf "@[<hv 2>(%a@ ⋈[%a]@ %a)@]" pp l Expr.pp p pp r
  | Union (l, r) -> Format.fprintf ppf "@[<hv 2>(%a@ ∪@ %a)@]" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "@[<hv 2>(%a@ −@ %a)@]" pp l pp r
  | Agg (group, aggs, q) ->
      Format.fprintf ppf "@[<hv 2>γ[%a; %a](@,%a)@]"
        Fmt.(list ~sep:(any ", ") (fun ppf p -> Expr.pp ppf p.expr))
        group
        Fmt.(
          list ~sep:(any ", ") (fun ppf a ->
              Format.fprintf ppf "%a as %s" Agg.pp a.func a.agg_name))
        aggs pp q
  | Distinct q -> Format.fprintf ppf "@[<hv 2>δ(@,%a)@]" pp q
  | Coalesce q -> Format.fprintf ppf "@[<hv 2>C(@,%a)@]" pp q
  | Split (g, l, r) ->
      Format.fprintf ppf "@[<hv 2>N[%a](@,%a,@ %a)@]"
        Fmt.(list ~sep:(any ",") int)
        g pp l pp r
  | Split_agg sa ->
      Format.fprintf ppf "@[<hv 2>Nγ[%a; %a%s](@,%a)@]"
        Fmt.(list ~sep:(any ",") int)
        sa.sa_group
        Fmt.(
          list ~sep:(any ", ") (fun ppf a ->
              Format.fprintf ppf "%a as %s" Agg.pp a.func a.agg_name))
        sa.sa_aggs
        (match sa.sa_gap with Some _ -> "; gaps" | None -> "")
        pp sa.sa_child

let to_string q = Format.asprintf "%a" pp q
