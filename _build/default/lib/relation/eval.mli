(** Generic evaluation of the logical algebra over K-relations, for any
    m-semiring K: RA (selection, projection, join, union, difference).

    Aggregation and DISTINCT need semiring-specific definitions
    (Section 7.2) and are provided for N by {!Neval}; the temporal
    operators only exist over the period encoding.  Both raise
    {!Algebra.Unsupported} here. *)

module Make (K : Tkr_semiring.Semiring_intf.MONUS) : sig
  module R : sig
    include Krel.OPS with type annot = K.t

    val diff : t -> t -> t
  end

  type db = string -> R.t

  val project_out_schema : Schema.t -> Algebra.proj list -> Schema.t
  val eval : db -> Algebra.t -> R.t
end
