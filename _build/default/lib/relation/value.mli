(** SQL values and scalar types. *)

type ty = TBool | TInt | TFloat | TStr

type t = Null | Bool of bool | Int of int | Float of float | Str of string

val type_of : t -> ty option
(** [None] for NULL. *)

val compare : t -> t -> int
(** Canonical total order (NULLs first, then by type tag, then by value);
    used for map keys and deterministic output, {e not} SQL comparison. *)

val equal : t -> t -> bool
val hash : t -> int
val is_null : t -> bool

val sql_compare : t -> t -> int option
(** SQL comparison semantics: numeric coercion between [Int] and [Float],
    [None] whenever a NULL is involved.
    @raise Invalid_argument on incompatible non-null types. *)

val add : t -> t -> t
(** Numeric addition, NULL-propagating; [Int]/[Float] coercion.
    @raise Invalid_argument on non-numeric operands.  Likewise for
    {!sub}, {!mul}, {!div}, {!modulo} and {!neg}. *)

val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Division by zero yields NULL. *)

val modulo : t -> t -> t
val neg : t -> t
val to_float_opt : t -> float option
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_ty : Format.formatter -> ty -> unit
