(** Relation schemas: named, typed attribute lists.

    Attribute names may be qualified ("s.salary").  Resolution by name
    first tries an exact match, then a unique suffix match after the dot,
    mirroring SQL name resolution; ambiguity raises. *)

type attr = { name : string; ty : Value.ty }

type t = attr array

exception Ambiguous of string
exception Unknown of string

let attr name ty = { name; ty }
let make attrs : t = Array.of_list attrs
let arity (s : t) = Array.length s
let attrs (s : t) = Array.to_list s
let names (s : t) = Array.to_list s |> List.map (fun a -> a.name)
let get (s : t) i = s.(i)
let ty (s : t) i = s.(i).ty
let name (s : t) i = s.(i).name

let local_name n =
  match String.rindex_opt n '.' with
  | None -> n
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)

let find_all (s : t) n =
  let exact = ref [] and by_suffix = ref [] in
  Array.iteri
    (fun i a ->
      if String.equal a.name n then exact := i :: !exact
      else if String.equal (local_name a.name) n then by_suffix := i :: !by_suffix)
    s;
  match List.rev !exact with [] -> List.rev !by_suffix | l -> l

let find_opt (s : t) n =
  match find_all s n with
  | [ i ] -> Some i
  | [] -> None
  | _ :: _ :: _ -> raise (Ambiguous n)

let find (s : t) n =
  match find_opt s n with Some i -> i | None -> raise (Unknown n)

let concat (a : t) (b : t) : t = Array.append a b
let project (s : t) idxs : t = Array.of_list (List.map (fun i -> s.(i)) idxs)

let qualify prefix (s : t) : t =
  Array.map (fun a -> { a with name = prefix ^ "." ^ local_name a.name }) s

let rename_all new_names (s : t) : t =
  if List.length new_names <> Array.length s then
    invalid_arg "Schema.rename_all: arity mismatch";
  Array.of_list (List.map2 (fun n a -> { a with name = n }) new_names (attrs s))

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> String.equal x.name y.name && x.ty = y.ty) a b

(* Union compatibility only requires matching types, like SQL. *)
let union_compatible (a : t) (b : t) =
  Array.length a = Array.length b
  && Array.for_all2 (fun (x : attr) (y : attr) -> x.ty = y.ty) a b

let pp ppf (s : t) =
  Format.fprintf ppf "(%a)"
    Fmt.(
      list ~sep:(any ", ") (fun ppf a ->
          Format.fprintf ppf "%s:%a" a.name Value.pp_ty a.ty))
    (attrs s)
