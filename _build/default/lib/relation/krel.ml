(** K-relations: total functions from tuples to semiring annotations, with
    finite support (Green et al., PODS 2007; Section 4.1 of the paper).

    The relation type is polymorphic in the annotation and defined outside
    the functor, so that every [Make (K)] instance works on the same
    concrete representation (important when several libraries instantiate
    the functor on the same semiring). *)

type 'k t = { schema : Schema.t; data : 'k Tuple.Tmap.t }

let schema r = r.schema

module type OPS = sig
  type annot
  type nonrec t = annot t

  val empty : Schema.t -> t
  val is_empty : t -> bool
  val annot : t -> Tuple.t -> annot
  val add : t -> Tuple.t -> annot -> t
  val set : t -> Tuple.t -> annot -> t
  val of_list : Schema.t -> (Tuple.t * annot) list -> t
  val to_list : t -> (Tuple.t * annot) list
  val support : t -> Tuple.t list
  val size : t -> int
  val fold : (Tuple.t -> annot -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (Tuple.t -> annot -> unit) -> t -> unit
  val select : Expr.t -> t -> t
  val project : Expr.t list -> Schema.t -> t -> t
  val join : Expr.t -> t -> t -> t
  val union : t -> t -> t
  val with_schema : Schema.t -> t -> t
  val map_annot : (annot -> annot) -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module Make (K : Tkr_semiring.Semiring_intf.S) = struct
  type annot = K.t
  type nonrec t = K.t t

  let empty schema : t = { schema; data = Tuple.Tmap.empty }
  let is_empty (r : t) = Tuple.Tmap.is_empty r.data

  (** [annot r t] is the annotation of [t]; [K.zero] when absent. *)
  let annot (r : t) tuple =
    match Tuple.Tmap.find_opt tuple r.data with Some k -> k | None -> K.zero

  (** [add r t k] adds [k] to the annotation of [t] (accumulating), keeping
      the invariant that no tuple is mapped to zero. *)
  let add (r : t) tuple k : t =
    let k' = K.add (annot r tuple) k in
    if K.equal k' K.zero then { r with data = Tuple.Tmap.remove tuple r.data }
    else { r with data = Tuple.Tmap.add tuple k' r.data }

  (** [set r t k] overwrites the annotation of [t]. *)
  let set (r : t) tuple k : t =
    if K.equal k K.zero then { r with data = Tuple.Tmap.remove tuple r.data }
    else { r with data = Tuple.Tmap.add tuple k r.data }

  let of_list schema pairs : t =
    List.fold_left (fun r (t, k) -> add r t k) (empty schema) pairs

  let to_list (r : t) = Tuple.Tmap.bindings r.data
  let support (r : t) = List.map fst (to_list r)
  let size (r : t) = Tuple.Tmap.cardinal r.data
  let fold f (r : t) init = Tuple.Tmap.fold f r.data init
  let iter f (r : t) = Tuple.Tmap.iter f r.data

  (** σ_θ(R)(t) = R(t) * θ(t)  — filtering by a predicate. *)
  let select pred (r : t) : t =
    { r with data = Tuple.Tmap.filter (fun t _ -> Expr.holds t pred) r.data }

  (** Π_A(R)(t) = Σ_{u : u.A = t} R(u) — generalized projection; colliding
      output tuples have their annotations added. *)
  let project exprs out_schema (r : t) : t =
    fold
      (fun tuple k acc ->
        let out = Tuple.of_array (Array.of_list (List.map (Expr.eval tuple) exprs)) in
        add acc out k)
      r (empty out_schema)

  (** (R ⋈_θ S)(t) = R(t[R]) * S(t[S]) filtered by θ over the concatenation. *)
  let join pred (l : t) (rr : t) : t =
    let out_schema = Schema.concat l.schema rr.schema in
    fold
      (fun tl kl acc ->
        fold
          (fun tr kr acc ->
            let t = Tuple.append tl tr in
            if Expr.holds t pred then add acc t (K.mul kl kr) else acc)
          rr acc)
      l (empty out_schema)

  (** (R ∪ S)(t) = R(t) + S(t). *)
  let union (l : t) (r : t) : t =
    if not (Schema.union_compatible l.schema r.schema) then
      invalid_arg "Krel.union: incompatible schemas";
    fold (fun t k acc -> add acc t k) r l

  (** Rename/retype the schema without touching the data. *)
  let with_schema schema (r : t) : t = { r with schema }

  let map_annot f (r : t) : t =
    fold (fun t k acc -> add acc t (f k)) r (empty r.schema)

  let equal (a : t) (b : t) = Tuple.Tmap.equal K.equal a.data b.data

  let pp ppf (r : t) =
    Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
      Fmt.(
        list ~sep:cut (fun ppf (t, k) ->
            Format.fprintf ppf "%a ↦ %a" Tuple.pp t K.pp k))
      (to_list r)
end

module MakeMonus (K : Tkr_semiring.Semiring_intf.MONUS) = struct
  include Make (K)

  (** (R - S)(t) = R(t) monus S(t) — e.g. bag difference for K = N. *)
  let diff (l : t) (r : t) : t =
    if not (Schema.union_compatible l.schema r.schema) then
      invalid_arg "Krel.diff: incompatible schemas";
    fold
      (fun t kl acc ->
        let k = K.monus kl (annot r t) in
        if K.equal k K.zero then acc else set acc t k)
      l (empty l.schema)
end
