(** Logical simplification: constant folding on expressions and
    plan-level cleanups (trivial selections, fused projections, merged
    selections).  Purely semantics-preserving — verified on random queries
    in [test/test_simplify.ml]. *)

let vtrue = Expr.Const (Value.Bool true)
let vfalse = Expr.Const (Value.Bool false)

let is_const = function Expr.Const _ -> true | _ -> false

(** Bottom-up constant folding with boolean short-circuits.  NULL-aware:
    only rewrites that are sound in three-valued logic are applied (e.g.
    [e AND false] folds to [false], but [e OR NULL] does not fold). *)
let rec fold_expr (e : Expr.t) : Expr.t =
  let e =
    match e with
    | Expr.Col _ | Expr.Const _ -> e
    | Expr.Binop (op, a, b) -> Expr.Binop (op, fold_expr a, fold_expr b)
    | Expr.Neg a -> Expr.Neg (fold_expr a)
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, fold_expr a, fold_expr b)
    | Expr.And (a, b) -> Expr.And (fold_expr a, fold_expr b)
    | Expr.Or (a, b) -> Expr.Or (fold_expr a, fold_expr b)
    | Expr.Not a -> Expr.Not (fold_expr a)
    | Expr.Is_null a -> Expr.Is_null (fold_expr a)
    | Expr.Like (a, p) -> Expr.Like (fold_expr a, p)
    | Expr.In_list (a, vs) -> Expr.In_list (fold_expr a, vs)
    | Expr.Case (bs, d) ->
        Expr.Case
          ( List.map (fun (c, r) -> (fold_expr c, fold_expr r)) bs,
            Option.map fold_expr d )
    | Expr.Greatest (a, b) -> Expr.Greatest (fold_expr a, fold_expr b)
    | Expr.Least (a, b) -> Expr.Least (fold_expr a, fold_expr b)
  in
  match e with
  (* full constant folding when every operand is a literal *)
  | Expr.Binop (_, a, b) | Expr.Cmp (_, a, b)
  | Expr.Greatest (a, b) | Expr.Least (a, b)
    when is_const a && is_const b -> (
      match Expr.eval (Tuple.make []) e with
      | v -> Expr.Const v
      | exception _ -> e)
  | Expr.Neg a | Expr.Not a | Expr.Is_null a | Expr.Like (a, _)
    when is_const a -> (
      match Expr.eval (Tuple.make []) e with
      | v -> Expr.Const v
      | exception _ -> e)
  (* sound boolean short-circuits under 3VL *)
  | Expr.And (a, b) ->
      if a = vtrue then b
      else if b = vtrue then a
      else if a = vfalse || b = vfalse then vfalse
      else e
  | Expr.Or (a, b) ->
      if a = vfalse then b
      else if b = vfalse then a
      else if a = vtrue || b = vtrue then vtrue
      else e
  (* CASE with a constant-true first branch *)
  | Expr.Case ((c, r) :: _, _) when c = vtrue -> r
  | e -> e

let fold_proj (p : Algebra.proj) : Algebra.proj =
  { p with expr = fold_expr p.expr }

let fold_agg (spec : Algebra.agg_spec) : Algebra.agg_spec =
  let func : Agg.func =
    match spec.func with
    | Agg.Count_star -> Agg.Count_star
    | Agg.Count e -> Agg.Count (fold_expr e)
    | Agg.Sum e -> Agg.Sum (fold_expr e)
    | Agg.Avg e -> Agg.Avg (fold_expr e)
    | Agg.Min e -> Agg.Min (fold_expr e)
    | Agg.Max e -> Agg.Max (fold_expr e)
  in
  { spec with func }

(* Substitute child projection expressions into a parent projection when
   the child's expressions are cheap (columns or constants). *)
let substitutable (projs : Algebra.proj list) =
  List.for_all
    (fun (p : Algebra.proj) ->
      match p.expr with Expr.Col _ | Expr.Const _ -> true | _ -> false)
    projs

let substitute (inner : Algebra.proj list) (e : Expr.t) : Expr.t =
  let arr = Array.of_list inner in
  let rec go = function
    | Expr.Col i -> arr.(i).Algebra.expr
    | Expr.Const v -> Expr.Const v
    | Expr.Binop (op, a, b) -> Expr.Binop (op, go a, go b)
    | Expr.Neg a -> Expr.Neg (go a)
    | Expr.Cmp (op, a, b) -> Expr.Cmp (op, go a, go b)
    | Expr.And (a, b) -> Expr.And (go a, go b)
    | Expr.Or (a, b) -> Expr.Or (go a, go b)
    | Expr.Not a -> Expr.Not (go a)
    | Expr.Is_null a -> Expr.Is_null (go a)
    | Expr.Like (a, p) -> Expr.Like (go a, p)
    | Expr.In_list (a, vs) -> Expr.In_list (go a, vs)
    | Expr.Case (bs, d) ->
        Expr.Case (List.map (fun (c, r) -> (go c, go r)) bs, Option.map go d)
    | Expr.Greatest (a, b) -> Expr.Greatest (go a, go b)
    | Expr.Least (a, b) -> Expr.Least (go a, go b)
  in
  go e

(** Plan-level simplification. *)
let rec simplify (q : Algebra.t) : Algebra.t =
  match q with
  | Rel _ | ConstRel _ -> q
  | Select (p, q0) -> (
      let p = fold_expr p in
      let q0 = simplify q0 in
      match (p, q0) with
      | Expr.Const (Value.Bool true), q0 -> q0
      | Expr.Const (Value.Bool false), ConstRel (s, _) -> ConstRel (s, [])
      | p, Select (p2, q1) -> Select (fold_expr (Expr.And (p, p2)), q1)
      | p, q0 -> Select (p, q0))
  | Project (projs, q0) -> (
      let projs = List.map fold_proj projs in
      let q0 = simplify q0 in
      match q0 with
      (* fuse Project over Project when the inner one is cheap *)
      | Project (inner, q1) when substitutable inner ->
          Project
            ( List.map
                (fun (p : Algebra.proj) ->
                  { p with expr = fold_expr (substitute inner p.expr) })
                projs,
              q1 )
      | q0 -> Project (projs, q0))
  | Join (p, l, r) -> Join (fold_expr p, simplify l, simplify r)
  | Union (l, r) -> Union (simplify l, simplify r)
  | Diff (l, r) -> Diff (simplify l, simplify r)
  | Agg (group, aggs, q0) ->
      Agg (List.map fold_proj group, List.map fold_agg aggs, simplify q0)
  | Distinct q0 -> (
      match simplify q0 with
      | Distinct _ as d -> d (* idempotent *)
      | q0 -> Distinct q0)
  | Coalesce q0 -> (
      match simplify q0 with
      | Coalesce _ as c -> c (* idempotent *)
      | q0 -> Coalesce q0)
  | Split (g, l, r) ->
      if l == r then
        let l' = simplify l in
        Split (g, l', l')
      else Split (g, simplify l, simplify r)
  | Split_agg sa -> Split_agg { sa with sa_child = simplify sa.sa_child }
