(** "Native" interval-based evaluators for snapshot semantics, implemented
    with exactly the semantics the paper attributes to previous systems
    (Table 1) — including their bugs:

    - {!Interval_preservation} (ATSQL [9] / SQL/Temporal [42] style, also
      the shape of Teradata's rewrites): positive relational algebra is
      snapshot-reducible, but aggregation produces no rows over gaps
      ({b AG bug}) and difference behaves like [NOT EXISTS], ignoring
      multiplicities ({b BD bug}).  No coalescing: the output encoding
      depends on the input representation (no unique encoding).
    - {!Alignment} (the temporal-alignment kernel approach of Dignös et
      al. [16, 18], the paper's PG-Nat comparator): joins align {e both}
      inputs against each other before a standard equi-join — correct, but
      with the normalization overhead the paper measures; difference uses
      {e set} semantics; aggregation splits the full input at the group's
      endpoints with no pre-aggregation and no gap rows (AG bug).

    Both evaluators consume the same logical algebra as the rewriter and
    produce period tables in the last-two-columns encoding, so they are
    drop-in comparators for correctness (Table 1) and performance
    (Table 3). *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Ops = Tkr_engine.Ops

type style = Interval_preservation | Alignment | Teradata

exception Unsupported_operation of string

let style_name = function
  | Interval_preservation -> "interval-preservation"
  | Alignment -> "alignment"
  | Teradata -> "teradata-modifiers"

let range lo hi = List.init (hi - lo) (fun i -> lo + i)

(* Set-semantics interval subtraction: remove from each left row the union
   of the intervals of data-equal right rows, ignoring multiplicities.
   This is precisely the NOT EXISTS behaviour behind the BD bug. *)
let not_exists_diff (left : Table.t) (right : Table.t) : Table.t =
  let covered : (Tuple.t, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun row ->
      let d = Ops.data_of_row row in
      let p = Ops.period_of_row row in
      match Hashtbl.find_opt covered d with
      | Some cell -> cell := p :: !cell
      | None -> Hashtbl.add covered d (ref [ p ]))
    (Table.rows right);
  let buf = ref [] in
  Array.iter
    (fun row ->
      let d = Ops.data_of_row row in
      let b, e = Ops.period_of_row row in
      let holes =
        match Hashtbl.find_opt covered d with
        | None -> []
        | Some cell -> List.sort compare !cell
      in
      (* walk the sorted right intervals, emitting uncovered fragments *)
      let rec walk cur = function
        | [] -> if cur < e then [ (cur, e) ] else []
        | (hb, he) :: rest ->
            if he <= cur then walk cur rest
            else if hb >= e then if cur < e then [ (cur, e) ] else []
            else if hb <= cur then walk (max cur he) rest
            else (cur, hb) :: walk he rest
      in
      List.iter
        (fun (fb, fe) ->
          buf :=
            Tuple.append d (Tuple.make [ Value.Int fb; Value.Int fe ]) :: !buf)
        (walk b holes))
    (Table.rows left);
  Table.make (Table.schema left) (List.rev !buf)

(* The rewritten-join shape shared by both baselines: predicate over the
   concatenated encoded schema, overlap condition, intersection period. *)
let join_projection sl sr nl nr =
  let bl = nl and el = nl + 1 in
  let br = nl + 2 + nr and er = nl + 2 + nr + 1 in
  List.map (fun i -> Algebra.proj (Expr.Col i) (Schema.name sl i)) (range 0 nl)
  @ List.map
      (fun i -> Algebra.proj (Expr.Col (nl + 2 + i)) (Schema.name sr i))
      (range 0 nr)
  @ [
      Algebra.proj (Expr.Greatest (Expr.Col bl, Expr.Col br)) "__b";
      Algebra.proj (Expr.Least (Expr.Col el, Expr.Col er)) "__e";
    ]

let overlap_pred nl nr =
  let bl = nl and el = nl + 1 in
  let br = nl + 2 + nr and er = nl + 2 + nr + 1 in
  Expr.And
    ( Expr.Cmp (Expr.Lt, Expr.Col bl, Expr.Col er),
      Expr.Cmp (Expr.Lt, Expr.Col br, Expr.Col el) )

(** Evaluate the logical snapshot query [q] (over data-only base schemas)
    in the given native style.  The output is a period table; apply
    [Ops.coalesce] on top to emulate the paper's "-Nat paired with our
    coalescing" configuration. *)
let eval (style : style) (db : Database.t) (q : Algebra.t) : Table.t =
  let lookup n = Database.data_schema_of db n in
  let data_schema q = Algebra.schema_of ~lookup q in
  let arity q = Schema.arity (data_schema q) in
  let rec go (q : Algebra.t) : Table.t =
    match q with
    | Rel n -> Database.find db n
    | ConstRel (schema, tuples) ->
        let tmin, tmax = Database.time_bounds db in
        let enc =
          List.map
            (fun t ->
              Tuple.append t (Tuple.make [ Value.Int tmin; Value.Int tmax ]))
            tuples
        in
        Table.make
          (Schema.make
             (Schema.attrs schema
             @ [ Schema.attr "__b" Value.TInt; Schema.attr "__e" Value.TInt ]))
          enc
    | Select (p, q0) -> Exec.select p (go q0)
    | Project (projs, q0) ->
        let n = arity q0 in
        Exec.project
          (projs
          @ [
              Algebra.proj (Expr.Col n) "__b"; Algebra.proj (Expr.Col (n + 1)) "__e";
            ])
          (go q0)
    | Join (p, l, r) -> (
        let nl = arity l and nr = arity r in
        let sl = data_schema l and sr = data_schema r in
        let p' = Expr.map_cols (fun i -> if i >= nl then i + 2 else i) p in
        let lt = go l and rt = go r in
        match style with
        | Interval_preservation | Teradata ->
            (* direct overlap join, intervals intersected *)
            Exec.project (join_projection sl sr nl nr)
              (Exec.join (Expr.And (p', overlap_pred nl nr)) lt rt)
        | Alignment ->
            (* normalize BOTH inputs against each other on the equi-keys,
               then join aligned fragments on equal intervals *)
            let keys, _residual =
              Expr.equi_keys ~left_arity:nl
                (Expr.map_cols (fun i -> i) p)
            in
            let lkeys = List.map fst keys and rkeys = List.map snd keys in
            let eps =
              Ops.endpoint_sets_keyed [ (lkeys, lt); (rkeys, rt) ]
            in
            let lt' = Ops.split_with eps lkeys lt in
            let rt' = Ops.split_with eps rkeys rt in
            let bl = nl and el = nl + 1 in
            let br = nl + 2 + nr and er = nl + 2 + nr + 1 in
            let same_interval =
              Expr.And
                ( Expr.Cmp (Expr.Eq, Expr.Col bl, Expr.Col br),
                  Expr.Cmp (Expr.Eq, Expr.Col el, Expr.Col er) )
            in
            Exec.project (join_projection sl sr nl nr)
              (Exec.join (Expr.And (p', same_interval)) lt' rt'))
    | Union (l, r) -> Exec.union (go l) (go r)
    | Diff (l, r) ->
        (* Teradata's rewrites do not support snapshot difference at all
           (Table 1: N/A); the other styles implement a set-like one *)
        if style = Teradata then
          raise
            (Unsupported_operation
               "teradata-modifiers: snapshot difference is not supported")
        else not_exists_diff (go l) (go r)
    | Agg (group, aggs, q0) ->
        (* split at the group's endpoints only where input exists: no gap
           row, hence the AG bug *)
        let child = go q0 in
        let n = arity q0 in
        let k = List.length group in
        let prep =
          Exec.project
            (group
            @ List.mapi
                (fun i (spec : Algebra.agg_spec) ->
                  let e =
                    match Agg.input_expr spec.func with
                    | Some e -> e
                    | None -> Expr.Const (Value.Int 1)
                  in
                  Algebra.proj e (Printf.sprintf "__a%d" i))
                aggs
            @ [
                Algebra.proj (Expr.Col n) "__b";
                Algebra.proj (Expr.Col (n + 1)) "__e";
              ])
            child
        in
        let remapped =
          List.mapi
            (fun i (spec : Algebra.agg_spec) ->
              let col = Expr.Col (k + i) in
              let func : Agg.func =
                match spec.func with
                | Agg.Count_star -> Agg.Count_star
                | Agg.Count _ -> Agg.Count col
                | Agg.Sum _ -> Agg.Sum col
                | Agg.Avg _ -> Agg.Avg col
                | Agg.Min _ -> Agg.Min col
                | Agg.Max _ -> Agg.Max col
              in
              { spec with func })
            aggs
        in
        let m = List.length aggs in
        (match style with
        | Interval_preservation | Alignment | Teradata ->
            (* split the FULL input (no pre-aggregation), then hash
               aggregate per (group, interval) *)
            let split = Ops.split (range 0 k) prep prep in
            let agg_node =
              Exec.aggregate
                (List.mapi
                   (fun i (p : Algebra.proj) -> Algebra.proj (Expr.Col i) p.name)
                   group
                @ [
                    Algebra.proj (Expr.Col (k + m)) "__b";
                    Algebra.proj (Expr.Col (k + m + 1)) "__e";
                  ])
                remapped split
            in
            (* reorder to the (data..., __b, __e) convention *)
            Exec.project
              (List.mapi
                 (fun i (p : Algebra.proj) -> Algebra.proj (Expr.Col i) p.name)
                 group
              @ List.mapi
                  (fun i (spec : Algebra.agg_spec) ->
                    Algebra.proj (Expr.Col (k + 2 + i)) spec.agg_name)
                  remapped
              @ [
                  Algebra.proj (Expr.Col k) "__b";
                  Algebra.proj (Expr.Col (k + 1)) "__e";
                ])
              agg_node)
    | Distinct q0 ->
        let t = go q0 in
        let n = Schema.arity (Table.schema t) - 2 in
        Exec.distinct (Ops.split (range 0 n) t t)
    | Coalesce _ | Split _ | Split_agg _ ->
        invalid_arg "Baseline.eval: physical operator in logical query"
  in
  go q

(** The paper's "-Nat" configurations pair the native evaluator with the
    middleware's coalescing to obtain a canonical result. *)
let eval_coalesced style db q = Ops.coalesce (eval style db q)
