lib/baseline/baseline.ml: Agg Algebra Array Expr Hashtbl List Printf Schema Tkr_engine Tkr_relation Tuple Value
