lib/baseline/baseline.mli: Algebra Tkr_engine Tkr_relation
