(** "Native" interval-based evaluators for snapshot semantics, implemented
    with exactly the semantics the paper attributes to previous systems
    (Table 1) — including their bugs.  Drop-in comparators for the
    correctness and performance experiments.

    - [Interval_preservation]: ATSQL/SQL-Temporal style (also the shape of
      Teradata's rewrites): correct for positive RA, {b AG bug} on
      aggregation (no gap rows), {b BD bug} on difference (NOT EXISTS),
      non-unique output encoding.
    - [Alignment]: the temporal-alignment approach of Dignös et al.
      (PG-Nat): joins align both inputs before matching (correct but with
      normalization overhead), set-semantics difference, aggregation
      without pre-aggregation or gap rows (AG bug). *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database

type style = Interval_preservation | Alignment | Teradata
(** [Teradata]: interval-preservation semantics via statement modifiers,
    but snapshot difference is unsupported (Table 1's N/A column) and
    coalescing (NORMALIZE) is optional. *)

exception Unsupported_operation of string

val style_name : style -> string

val not_exists_diff : Table.t -> Table.t -> Table.t
(** The BD-bugged difference: remove from each left row the union of the
    intervals of data-equal right rows, ignoring multiplicities. *)

val eval : style -> Database.t -> Algebra.t -> Table.t
(** Evaluate a logical snapshot query (over data-only base schemas, as
    produced by [Middleware.snapshot_algebra]) in the given native style;
    the result is a period table, {e not} coalesced. *)

val eval_coalesced : style -> Database.t -> Algebra.t -> Table.t
(** The paper's "-Nat" configuration: native evaluation paired with the
    middleware's coalescing. *)
