lib/middleware/middleware.ml: Algebra Array Expr Format Fun Hashtbl List Option Printf Schema Seq Simplify String Tkr_engine Tkr_relation Tkr_sql Tkr_sqlenc Tuple Value
