lib/middleware/middleware.mli: Algebra Schema Tkr_engine Tkr_relation Tkr_sql Tkr_sqlenc
