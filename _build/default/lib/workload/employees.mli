(** A scaled synthetic reproduction of the MySQL [employees] dataset
    (Section 10.1): six period tables — departments, employees, salaries,
    titles, dept_emp, dept_manager — with realistic temporal correlation.
    Deterministic in the seed. *)

type config = {
  employees : int;  (** the scale knob *)
  departments : int;
  tmax : int;  (** time domain [\[0, tmax)], days *)
  seed : int;
}

val default : config
val scaled : int -> config

val generate : config -> Tkr_engine.Database.t
(** A database with all six tables registered as period tables
    ([vt_b]/[vt_e]). *)

val coalesce_input : n:int -> seed:int -> tmax:int -> Tkr_engine.Table.t
(** The selection-shaped input of the Figure 5 coalescing microbenchmark. *)
