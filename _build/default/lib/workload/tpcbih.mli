(** A compact valid-time TPC-H (TPC-BiH) generator: the eight TPC-H tables
    as period tables, with order/lineitem validity derived from order and
    shipment dates.  [scale] plays the role of the paper's SF. *)

type config = { scale : float; tmax : int; seed : int }

val default : config
val generate : config -> Tkr_engine.Database.t
