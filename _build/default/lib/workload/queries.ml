(** The paper's query workloads (Section 10.1), expressed in the
    middleware's SQL dialect with [SEQ VT] snapshot blocks.

    Employee workload: the ten queries join-1..4, agg-1..3, agg-join,
    diff-1..2.  TPC-BiH workload: the TPC-H queries the paper evaluates
    under snapshot semantics, adapted to the supported subset (date-range
    predicates become the snapshot time dimension). *)

let employee : (string * string) list =
  [
    ( "join-1",
      {|SEQ VT (SELECT d.dept_no, s.emp_no, s.salary
               FROM dept_emp d, salaries s WHERE d.emp_no = s.emp_no)|} );
    ( "join-2",
      {|SEQ VT (SELECT t.title, s.emp_no, s.salary
               FROM salaries s, titles t WHERE s.emp_no = t.emp_no)|} );
    ( "join-3",
      {|SEQ VT (SELECT m.dept_no
               FROM dept_manager m, salaries s
               WHERE m.emp_no = s.emp_no AND s.salary > 70000)|} );
    ( "join-4",
      {|SEQ VT (SELECT m.dept_no, m.emp_no, s.salary, e.name
               FROM dept_manager m, salaries s, employees e
               WHERE m.emp_no = s.emp_no AND m.emp_no = e.emp_no)|} );
    ( "agg-1",
      {|SEQ VT (SELECT d.dept_no, avg(s.salary) AS avg_salary
               FROM dept_emp d, salaries s WHERE d.emp_no = s.emp_no
               GROUP BY d.dept_no)|} );
    ( "agg-2",
      {|SEQ VT (SELECT avg(s.salary) AS avg_salary
               FROM dept_manager m, salaries s WHERE m.emp_no = s.emp_no)|} );
    ( "agg-3",
      {|SEQ VT (SELECT count(*) AS cnt
               FROM (SELECT dept_no, count(*) AS c
                     FROM dept_emp GROUP BY dept_no) AS t
               WHERE t.c > 21)|} );
    ( "agg-join",
      {|SEQ VT (SELECT e.name
               FROM employees e, dept_emp d, salaries s,
                    (SELECT d2.dept_no AS dn, max(s2.salary) AS ms
                     FROM dept_emp d2, salaries s2
                     WHERE d2.emp_no = s2.emp_no
                     GROUP BY d2.dept_no) AS mx
               WHERE e.emp_no = d.emp_no AND e.emp_no = s.emp_no
                 AND d.dept_no = mx.dn AND s.salary = mx.ms)|} );
    ( "diff-1",
      {|SEQ VT (SELECT emp_no FROM employees
               EXCEPT ALL
               SELECT emp_no FROM dept_manager)|} );
    ( "diff-2",
      {|SEQ VT (SELECT emp_no, salary FROM salaries
               EXCEPT ALL
               SELECT s.emp_no, s.salary FROM salaries s, dept_manager m
               WHERE s.emp_no = m.emp_no)|} );
  ]

let tpch : (string * string) list =
  [
    ( "Q1",
      {|SEQ VT (SELECT l_returnflag, l_linestatus,
                      sum(l_quantity) AS sum_qty,
                      sum(l_extendedprice) AS sum_base_price,
                      sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
                      avg(l_quantity) AS avg_qty,
                      avg(l_extendedprice) AS avg_price,
                      avg(l_discount) AS avg_disc,
                      count(*) AS count_order
               FROM lineitem
               GROUP BY l_returnflag, l_linestatus)|} );
    ( "Q3",
      {|SEQ VT (SELECT o.o_orderkey,
                      sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
               FROM customer c, orders o, lineitem l
               WHERE c.c_mktsegment = 'BUILDING'
                 AND c.c_custkey = o.o_custkey
                 AND l.l_orderkey = o.o_orderkey
               GROUP BY o.o_orderkey)|} );
    ( "Q5",
      {|SEQ VT (SELECT n.n_name,
                      sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
               FROM customer c, orders o, lineitem l, supplier s, nation n, region r
               WHERE c.c_custkey = o.o_custkey
                 AND l.l_orderkey = o.o_orderkey
                 AND l.l_suppkey = s.s_suppkey
                 AND c.c_nationkey = s.s_nationkey
                 AND s.s_nationkey = n.n_nationkey
                 AND n.n_regionkey = r.r_regionkey
                 AND r.r_name = 'ASIA'
               GROUP BY n.n_name)|} );
    ( "Q6",
      {|SEQ VT (SELECT sum(l_extendedprice * l_discount) AS revenue
               FROM lineitem
               WHERE l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24)|} );
    ( "Q7",
      {|SEQ VT (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
                      sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
               FROM supplier s, lineitem l, orders o, customer c,
                    nation n1, nation n2
               WHERE s.s_suppkey = l.l_suppkey
                 AND o.o_orderkey = l.l_orderkey
                 AND c.c_custkey = o.o_custkey
                 AND s.s_nationkey = n1.n_nationkey
                 AND c.c_nationkey = n2.n_nationkey
                 AND (n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY'
                      OR n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')
               GROUP BY n1.n_name, n2.n_name)|} );
    ( "Q8",
      {|SEQ VT (SELECT sum(CASE WHEN n2.n_name = 'BRAZIL'
                               THEN l.l_extendedprice * (1 - l.l_discount)
                               ELSE 0.0 END)
                      / sum(l.l_extendedprice * (1 - l.l_discount)) AS mkt_share
               FROM part p, supplier s, lineitem l, orders o, customer c,
                    nation n1, nation n2, region r
               WHERE p.p_partkey = l.l_partkey
                 AND s.s_suppkey = l.l_suppkey
                 AND l.l_orderkey = o.o_orderkey
                 AND o.o_custkey = c.c_custkey
                 AND c.c_nationkey = n1.n_nationkey
                 AND n1.n_regionkey = r.r_regionkey
                 AND r.r_name = 'AMERICA'
                 AND s.s_nationkey = n2.n_nationkey
                 AND p.p_type = 'ECONOMY ANODIZED STEEL')|} );
    ( "Q9",
      {|SEQ VT (SELECT n.n_name AS nation,
                      sum(l.l_extendedprice * (1 - l.l_discount)
                          - ps.ps_supplycost * l.l_quantity) AS sum_profit
               FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
               WHERE s.s_suppkey = l.l_suppkey
                 AND ps.ps_suppkey = l.l_suppkey
                 AND ps.ps_partkey = l.l_partkey
                 AND p.p_partkey = l.l_partkey
                 AND o.o_orderkey = l.l_orderkey
                 AND s.s_nationkey = n.n_nationkey
                 AND p.p_name LIKE '%green%'
               GROUP BY n.n_name)|} );
    ( "Q10",
      {|SEQ VT (SELECT c.c_custkey, c.c_name,
                      sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
               FROM customer c, orders o, lineitem l, nation n
               WHERE c.c_custkey = o.o_custkey
                 AND l.l_orderkey = o.o_orderkey
                 AND l.l_returnflag = 'R'
                 AND c.c_nationkey = n.n_nationkey
               GROUP BY c.c_custkey, c.c_name)|} );
    ( "Q12",
      {|SEQ VT (SELECT l.l_shipmode,
                      sum(CASE WHEN o.o_orderstatus = 'P' THEN 1 ELSE 0 END)
                        AS high_line_count,
                      sum(CASE WHEN o.o_orderstatus <> 'P' THEN 1 ELSE 0 END)
                        AS low_line_count
               FROM orders o, lineitem l
               WHERE o.o_orderkey = l.l_orderkey
                 AND l.l_shipmode IN ('MAIL', 'SHIP')
               GROUP BY l.l_shipmode)|} );
    ( "Q14",
      {|SEQ VT (SELECT 100.0 * sum(CASE WHEN p.p_type LIKE 'PROMO%'
                                       THEN l.l_extendedprice * (1 - l.l_discount)
                                       ELSE 0.0 END)
                      / sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
               FROM lineitem l, part p
               WHERE l.l_partkey = p.p_partkey)|} );
    ( "Q19",
      {|SEQ VT (SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
               FROM lineitem l, part p
               WHERE p.p_partkey = l.l_partkey
                 AND (p.p_brand = 'Brand#12'
                        AND p.p_container IN ('SM CASE', 'SM BOX')
                        AND l.l_quantity BETWEEN 1 AND 11
                      OR p.p_brand = 'Brand#23'
                        AND p.p_container IN ('MED BAG', 'MED BOX')
                        AND l.l_quantity BETWEEN 10 AND 20
                      OR p.p_brand = 'Brand#34'
                        AND p.p_container IN ('LG CASE', 'LG BOX')
                        AND l.l_quantity BETWEEN 20 AND 30))|} );
  ]

(** The nine TPC-H queries used in the performance experiment of Table 3
    (bottom); Q3 and Q10 additionally appear in the row-count Table 2. *)
let tpch_perf_names = [ "Q1"; "Q5"; "Q6"; "Q7"; "Q8"; "Q9"; "Q12"; "Q14"; "Q19" ]

let lookup name suite =
  match List.assoc_opt name suite with
  | Some q -> q
  | None -> invalid_arg ("unknown workload query " ^ name)
