(** A compact valid-time TPC-H (TPC-BiH [25]) generator.

    Schemas follow TPC-H; every table is a period table.  Reference tables
    (region, nation) live for the whole history; suppliers, customers and
    parts from their creation; orders and their lineitems are valid from
    the order date until (shipment + receipt) — giving the temporal overlap
    structure the snapshot queries aggregate over.  [scale] is a row-count
    multiplier playing the role of the paper's SF (SF 1 here is laptop
    sized; the paper's absolute sizes are not reproducible in a container,
    the scaling *shape* is). *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database

type config = { scale : float; tmax : int; seed : int }

let default = { scale = 1.0; tmax = 2500; seed = 7 }

let regions = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nations =
  (* (name, region index) — the 25 TPC-H nations *)
  [|
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1);
    ("EGYPT", 4); ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3);
    ("INDIA", 2); ("INDONESIA", 2); ("IRAN", 4); ("IRAQ", 4);
    ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0); ("MOROCCO", 0);
    ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
    ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3);
    ("UNITED KINGDOM", 3); ("UNITED STATES", 1);
  |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let brands = [| "Brand#12"; "Brand#23"; "Brand#34"; "Brand#45"; "Brand#51" |]

let containers =
  [| "SM CASE"; "SM BOX"; "MED BAG"; "MED BOX"; "LG CASE"; "LG BOX"; "JUMBO PKG" |]

let types =
  [| "ECONOMY ANODIZED STEEL"; "PROMO BURNISHED COPPER"; "STANDARD POLISHED TIN";
     "SMALL PLATED BRASS"; "PROMO BRUSHED NICKEL"; "MEDIUM ANODIZED COPPER" |]

let part_adjectives = [| "green"; "blush"; "powder"; "chocolate"; "azure"; "ivory" |]

let shipmodes = [| "MAIL"; "SHIP"; "AIR"; "TRUCK"; "RAIL"; "FOB" |]

let sz scale base = max 1 (int_of_float (float_of_int base *. scale))

let generate (cfg : config) : Database.t =
  let g = Prng.create cfg.seed in
  let db = Database.create ~tmin:0 ~tmax:cfg.tmax () in
  let whole = (0, cfg.tmax) in
  let add name data_cols rows =
    let schema =
      Schema.make
        (List.map (fun (n, ty) -> Schema.attr n ty) data_cols
        @ [ Schema.attr "vt_b" Value.TInt; Schema.attr "vt_e" Value.TInt ])
    in
    Database.add_period_table db name (Table.make schema (List.rev rows))
  in
  let iv (b, e) = [ Value.Int b; Value.Int e ] in

  add "region"
    [ ("r_regionkey", Value.TInt); ("r_name", Value.TStr) ]
    (List.rev
       (Array.to_list
          (Array.mapi
             (fun i name -> Tuple.make ([ Value.Int i; Value.Str name ] @ iv whole))
             regions)));
  add "nation"
    [ ("n_nationkey", Value.TInt); ("n_name", Value.TStr); ("n_regionkey", Value.TInt) ]
    (List.rev
       (Array.to_list
          (Array.mapi
             (fun i (name, r) ->
               Tuple.make ([ Value.Int i; Value.Str name; Value.Int r ] @ iv whole))
             nations)));

  let n_supplier = sz cfg.scale 60 in
  let n_customer = sz cfg.scale 250 in
  let n_part = sz cfg.scale 300 in
  let n_orders = sz cfg.scale 900 in

  let supplier_rows = ref [] in
  for s = 1 to n_supplier do
    let birth = Prng.int g (cfg.tmax / 3) in
    supplier_rows :=
      Tuple.make
        ([ Value.Int s; Value.Str (Printf.sprintf "Supplier#%05d" s);
           Value.Int (Prng.int g (Array.length nations)) ]
        @ iv (birth, cfg.tmax))
      :: !supplier_rows
  done;
  add "supplier"
    [ ("s_suppkey", Value.TInt); ("s_name", Value.TStr); ("s_nationkey", Value.TInt) ]
    !supplier_rows;

  let customer_rows = ref [] in
  for c = 1 to n_customer do
    let birth = Prng.int g (cfg.tmax / 2) in
    customer_rows :=
      Tuple.make
        ([ Value.Int c; Value.Str (Printf.sprintf "Customer#%06d" c);
           Value.Int (Prng.int g (Array.length nations));
           Value.Str (Prng.choice g segments) ]
        @ iv (birth, cfg.tmax))
      :: !customer_rows
  done;
  add "customer"
    [ ("c_custkey", Value.TInt); ("c_name", Value.TStr);
      ("c_nationkey", Value.TInt); ("c_mktsegment", Value.TStr) ]
    !customer_rows;

  let part_rows = ref [] in
  for p = 1 to n_part do
    part_rows :=
      Tuple.make
        ([ Value.Int p;
           Value.Str
             (Printf.sprintf "%s %s part-%d" (Prng.choice g part_adjectives)
                (Prng.choice g part_adjectives) p);
           Value.Str (Prng.choice g types);
           Value.Str (Prng.choice g brands);
           Value.Str (Prng.choice g containers);
           Value.Int (Prng.range g 1 50) ]
        @ iv whole)
      :: !part_rows
  done;
  add "part"
    [ ("p_partkey", Value.TInt); ("p_name", Value.TStr); ("p_type", Value.TStr);
      ("p_brand", Value.TStr); ("p_container", Value.TStr); ("p_size", Value.TInt) ]
    !part_rows;

  let partsupp_rows = ref [] in
  for p = 1 to n_part do
    let n_links = Prng.range g 1 3 in
    for _ = 1 to n_links do
      partsupp_rows :=
        Tuple.make
          ([ Value.Int p; Value.Int (Prng.range g 1 n_supplier);
             Value.Float (float_of_int (Prng.range g 100 99900) /. 100.) ]
          @ iv whole)
        :: !partsupp_rows
    done
  done;
  add "partsupp"
    [ ("ps_partkey", Value.TInt); ("ps_suppkey", Value.TInt);
      ("ps_supplycost", Value.TFloat) ]
    !partsupp_rows;

  let order_rows = ref [] in
  let lineitem_rows = ref [] in
  for o = 1 to n_orders do
    let odate = Prng.int g (cfg.tmax - 60) in
    let oclose = min cfg.tmax (odate + Prng.range g 30 180) in
    let status = if Prng.flip g 0.3 then "P" else if Prng.flip g 0.5 then "F" else "O" in
    order_rows :=
      Tuple.make
        ([ Value.Int o; Value.Int (Prng.range g 1 n_customer); Value.Str status ]
        @ iv (odate, oclose))
      :: !order_rows;
    let n_lines = Prng.range g 1 5 in
    for _ = 1 to n_lines do
      let ship = min (oclose - 1) (odate + Prng.range g 1 60) in
      let receipt = min cfg.tmax (ship + Prng.range g 5 40) in
      let qty = Prng.range g 1 50 in
      let price = float_of_int (Prng.range g 90000 1100000) /. 100. in
      lineitem_rows :=
        Tuple.make
          ([ Value.Int o; Value.Int (Prng.range g 1 n_part);
             Value.Int (Prng.range g 1 n_supplier);
             Value.Int qty; Value.Float price;
             Value.Float (float_of_int (Prng.range g 0 10) /. 100.);
             Value.Float (float_of_int (Prng.range g 0 8) /. 100.);
             Value.Str (if Prng.flip g 0.25 then "R" else if Prng.flip g 0.5 then "A" else "N");
             Value.Str (if Prng.flip g 0.5 then "O" else "F");
             Value.Str (Prng.choice g shipmodes) ]
          @ iv (ship, max (ship + 1) receipt))
        :: !lineitem_rows
    done
  done;
  add "orders"
    [ ("o_orderkey", Value.TInt); ("o_custkey", Value.TInt);
      ("o_orderstatus", Value.TStr) ]
    !order_rows;
  add "lineitem"
    [ ("l_orderkey", Value.TInt); ("l_partkey", Value.TInt);
      ("l_suppkey", Value.TInt); ("l_quantity", Value.TInt);
      ("l_extendedprice", Value.TFloat); ("l_discount", Value.TFloat);
      ("l_tax", Value.TFloat); ("l_returnflag", Value.TStr);
      ("l_linestatus", Value.TStr); ("l_shipmode", Value.TStr) ]
    !lineitem_rows;
  db
