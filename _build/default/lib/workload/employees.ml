(** A scaled synthetic reproduction of the MySQL [employees] dataset used
    in Section 10: six period tables with the same schemas and realistic
    temporal correlation (consecutive salary/title periods per employee,
    department assignments, manager stints covering each department's
    lifetime).  The generator is deterministic in its seed. *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database

type config = {
  employees : int;  (** number of employees (the scale knob) *)
  departments : int;
  tmax : int;  (** time domain is [\[0, tmax)], in days *)
  seed : int;
}

let default = { employees = 500; departments = 9; tmax = 4000; seed = 42 }

(** [scaled n] is the default configuration with [n] employees. *)
let scaled n = { default with employees = n; departments = max 4 (n / 60) }

let first_names =
  [| "Georgi"; "Bezalel"; "Parto"; "Chirstian"; "Kyoichi"; "Anneke";
     "Tzvetan"; "Saniya"; "Sumant"; "Duangkaew"; "Mary"; "Patricio" |]

let titles_pool =
  [| "Engineer"; "Senior Engineer"; "Staff"; "Senior Staff";
     "Assistant Engineer"; "Technique Leader"; "Manager" |]

let generate (cfg : config) : Database.t =
  let g = Prng.create cfg.seed in
  let db = Database.create ~tmin:0 ~tmax:cfg.tmax () in
  let add name data_cols rows =
    let schema =
      Schema.make
        (List.map (fun (n, ty) -> Schema.attr n ty) data_cols
        @ [ Schema.attr "vt_b" Value.TInt; Schema.attr "vt_e" Value.TInt ])
    in
    Database.add_period_table db name (Table.make schema (List.rev rows))
  in

  (* departments: alive for the whole history *)
  let dept_rows = ref [] in
  for d = 1 to cfg.departments do
    dept_rows :=
      Tuple.make
        [
          Value.Int d;
          Value.Str (Printf.sprintf "Department %02d" d);
          Value.Int 0;
          Value.Int cfg.tmax;
        ]
      :: !dept_rows
  done;
  add "departments"
    [ ("dept_no", Value.TInt); ("dept_name", Value.TStr) ]
    !dept_rows;

  (* employees and their dependent history tables *)
  let emp_rows = ref [] in
  let salary_rows = ref [] in
  let title_rows = ref [] in
  let dept_emp_rows = ref [] in
  for e = 1 to cfg.employees do
    let hire = Prng.int g (cfg.tmax * 3 / 4) in
    let gender = if Prng.flip g 0.45 then "F" else "M" in
    let name = Printf.sprintf "%s %04d" (Prng.choice g first_names) e in
    emp_rows :=
      Tuple.make
        [ Value.Int e; Value.Str name; Value.Str gender;
          Value.Int hire; Value.Int cfg.tmax ]
      :: !emp_rows;
    (* consecutive salary periods from hire to tmax *)
    let salary = ref (Prng.range g 38000 65000) in
    let t = ref hire in
    while !t < cfg.tmax do
      let len = Prng.range g 200 500 in
      let stop = min cfg.tmax (!t + len) in
      salary_rows :=
        Tuple.make [ Value.Int e; Value.Int !salary; Value.Int !t; Value.Int stop ]
        :: !salary_rows;
      salary := !salary + Prng.range g 0 6000;
      t := stop
    done;
    (* one to three consecutive title periods *)
    let n_titles = Prng.range g 1 3 in
    let t = ref hire in
    for i = 1 to n_titles do
      let stop =
        if i = n_titles then cfg.tmax
        else min cfg.tmax (!t + Prng.range g 300 1200)
      in
      if !t < stop then
        title_rows :=
          Tuple.make
            [ Value.Int e; Value.Str (Prng.choice g titles_pool);
              Value.Int !t; Value.Int stop ]
          :: !title_rows;
      t := stop
    done;
    (* department assignments: one or two stints *)
    let n_depts = if Prng.flip g 0.2 then 2 else 1 in
    let t = ref hire in
    for i = 1 to n_depts do
      let stop =
        if i = n_depts then cfg.tmax
        else min cfg.tmax (!t + Prng.range g 400 1500)
      in
      if !t < stop then
        dept_emp_rows :=
          Tuple.make
            [ Value.Int e; Value.Int (Prng.range g 1 cfg.departments);
              Value.Int !t; Value.Int stop ]
          :: !dept_emp_rows;
      t := stop
    done
  done;
  add "employees"
    [ ("emp_no", Value.TInt); ("name", Value.TStr); ("gender", Value.TStr) ]
    !emp_rows;
  add "salaries" [ ("emp_no", Value.TInt); ("salary", Value.TInt) ] !salary_rows;
  add "titles" [ ("emp_no", Value.TInt); ("title", Value.TStr) ] !title_rows;
  add "dept_emp" [ ("emp_no", Value.TInt); ("dept_no", Value.TInt) ] !dept_emp_rows;

  (* manager stints: each department is managed at all times *)
  let manager_rows = ref [] in
  for d = 1 to cfg.departments do
    let t = ref 0 in
    while !t < cfg.tmax do
      let stop = min cfg.tmax (!t + Prng.range g 600 1800) in
      manager_rows :=
        Tuple.make
          [ Value.Int (Prng.range g 1 cfg.employees); Value.Int d;
            Value.Int !t; Value.Int stop ]
        :: !manager_rows;
      t := stop
    done
  done;
  add "dept_manager" [ ("emp_no", Value.TInt); ("dept_no", Value.TInt) ] !manager_rows;
  db

(** A single selection-shaped table for the coalescing microbenchmark of
    Figure 5: [n] rows of employee salary periods whose data column has the
    given duplication level, so that coalescing has real merging work. *)
let coalesce_input ~n ~seed ~tmax : Table.t =
  let g = Prng.create seed in
  let schema =
    Schema.make
      [
        Schema.attr "emp_no" Value.TInt;
        Schema.attr "vt_b" Value.TInt;
        Schema.attr "vt_e" Value.TInt;
      ]
  in
  let rows =
    List.init n (fun _ ->
        let emp = Prng.range g 1 (max 1 (n / 4)) in
        let b = Prng.int g (tmax - 1) in
        let e = min tmax (b + Prng.range g 1 (tmax / 8)) in
        Tuple.make [ Value.Int emp; Value.Int b; Value.Int e ])
  in
  Table.make schema rows
