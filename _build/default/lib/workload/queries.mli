(** The paper's query workloads (Section 10.1) in the middleware's SQL
    dialect: the ten employee queries (join-1..4, agg-1..3, agg-join,
    diff-1..2) and the TPC-H queries evaluated under snapshot semantics. *)

val employee : (string * string) list
val tpch : (string * string) list

val tpch_perf_names : string list
(** The nine queries of the Table 3 performance experiment. *)

val lookup : string -> (string * string) list -> string
(** @raise Invalid_argument on unknown names. *)
