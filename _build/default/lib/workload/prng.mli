(** A tiny deterministic PRNG (splitmix64): generated datasets are
    reproducible across runs and platforms. *)

type t

val create : int -> t
val next : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]. @raise Invalid_argument on bound <= 0. *)

val range : t -> int -> int -> int
(** Uniform in [\[lo, hi\]], inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val choice : t -> 'a array -> 'a
val flip : t -> float -> bool
