(** A simulated stand-in for the real-world Tourism dataset the paper's
    technical report evaluates on (835k records of South Tyrol
    accommodation data, not publicly distributable): registered
    accommodation facilities and guest stays, both period tables.

    The temporal texture mimics the real data: facilities are registered
    for long periods with occasional category changes; stays are short,
    heavily overlapping within each facility, and seasonal (clustered
    around two peaks per year). *)

open Tkr_relation
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database

type config = {
  facilities : int;
  stays_per_facility : int;
  years : int;  (** time domain is [\[0, 365 * years)], days *)
  seed : int;
}

let default = { facilities = 120; stays_per_facility = 40; years = 3; seed = 99 }

let categories = [| "hotel"; "bnb"; "camping"; "farm" |]

let generate (cfg : config) : Database.t =
  let g = Prng.create cfg.seed in
  let tmax = 365 * cfg.years in
  let db = Database.create ~tmin:0 ~tmax () in
  let add name data_cols rows =
    let schema =
      Schema.make
        (List.map (fun (n, ty) -> Schema.attr n ty) data_cols
        @ [ Schema.attr "vt_b" Value.TInt; Schema.attr "vt_e" Value.TInt ])
    in
    Database.add_period_table db name (Table.make schema (List.rev rows))
  in
  (* a seasonal arrival day: clustered around winter and summer peaks *)
  let seasonal_day year =
    let peak = if Prng.flip g 0.5 then 15 (* mid January *) else 200 (* July *) in
    let jitter = Prng.range g (-40) 40 in
    let day = (year * 365) + peak + jitter in
    max 0 (min (tmax - 2) day)
  in
  let fac_rows = ref [] in
  let stay_rows = ref [] in
  for f = 1 to cfg.facilities do
    let capacity = Prng.range g 4 120 in
    (* registration history: one or two category periods *)
    let reg_start = Prng.int g (tmax / 4) in
    let change =
      if Prng.flip g 0.25 then Some (reg_start + Prng.range g 200 (max 201 (tmax / 2)))
      else None
    in
    (match change with
    | Some c when c < tmax ->
        fac_rows :=
          Tuple.make
            [ Value.Int f; Value.Str (Prng.choice g categories);
              Value.Int capacity; Value.Int reg_start; Value.Int c ]
          :: Tuple.make
               [ Value.Int f; Value.Str (Prng.choice g categories);
                 Value.Int capacity; Value.Int c; Value.Int tmax ]
          :: !fac_rows
    | _ ->
        fac_rows :=
          Tuple.make
            [ Value.Int f; Value.Str (Prng.choice g categories);
              Value.Int capacity; Value.Int reg_start; Value.Int tmax ]
          :: !fac_rows);
    for _ = 1 to cfg.stays_per_facility do
      let year = Prng.int g cfg.years in
      let arrive = max reg_start (seasonal_day year) in
      let nights = Prng.range g 1 21 in
      let depart = min tmax (arrive + nights) in
      if arrive < depart then
        stay_rows :=
          Tuple.make
            [ Value.Int f; Value.Int (Prng.range g 1 6);
              Value.Int arrive; Value.Int depart ]
          :: !stay_rows
    done
  done;
  add "facilities"
    [ ("fac_id", Value.TInt); ("category", Value.TStr); ("capacity", Value.TInt) ]
    !fac_rows;
  add "stays" [ ("fac_id", Value.TInt); ("guests", Value.TInt) ] !stay_rows;
  db

(** The tourism query suite: occupancy analytics under snapshot semantics. *)
let queries : (string * string) list =
  [
    ( "occupancy-by-category",
      {|SEQ VT (SELECT f.category, sum(s.guests) AS guests
               FROM facilities f, stays s
               WHERE f.fac_id = s.fac_id
               GROUP BY f.category)|} );
    ( "total-guests",
      (* the AG fix matters here: gap rows are the off-season *)
      {|SEQ VT (SELECT count(*) AS stays_now, sum(guests) AS guests_now
               FROM stays)|} );
    ( "overbooked",
      {|SEQ VT (SELECT f.fac_id
               FROM facilities f,
                    (SELECT fac_id AS fid, sum(guests) AS gs
                     FROM stays GROUP BY fac_id) AS o
               WHERE f.fac_id = o.fid AND o.gs > f.capacity)|} );
    ( "idle-facilities",
      {|SEQ VT (SELECT fac_id FROM facilities
               EXCEPT ALL
               SELECT DISTINCT fac_id FROM stays)|} );
  ]
