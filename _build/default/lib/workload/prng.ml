(** A tiny deterministic PRNG (splitmix64) so that generated datasets are
    reproducible across runs and platforms, independent of [Stdlib.Random]
    version changes. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next (g : t) : int64 =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer in [\[0, bound)]. *)
let int (g : t) bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next g) 1) (Int64.of_int bound))

(** Uniform integer in [\[lo, hi\]] (inclusive). *)
let range (g : t) lo hi = lo + int g (hi - lo + 1)

(** Uniform float in [\[0, 1)]. *)
let float (g : t) =
  Int64.to_float (Int64.shift_right_logical (next g) 11) /. 9007199254740992.0

let choice (g : t) (a : 'a array) = a.(int g (Array.length a))

(** Bernoulli with probability [p]. *)
let flip (g : t) p = float g < p
