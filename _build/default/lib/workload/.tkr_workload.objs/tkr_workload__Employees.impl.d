lib/workload/employees.ml: List Printf Prng Schema Tkr_engine Tkr_relation Tuple Value
