lib/workload/prng.mli:
