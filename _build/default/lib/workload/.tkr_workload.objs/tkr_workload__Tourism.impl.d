lib/workload/tourism.ml: List Prng Schema Tkr_engine Tkr_relation Tuple Value
