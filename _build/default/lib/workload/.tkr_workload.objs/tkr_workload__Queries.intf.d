lib/workload/queries.mli:
