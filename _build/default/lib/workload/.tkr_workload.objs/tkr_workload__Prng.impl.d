lib/workload/prng.ml: Array Int64
