lib/workload/queries.ml: List
