lib/workload/tpcbih.mli: Tkr_engine
