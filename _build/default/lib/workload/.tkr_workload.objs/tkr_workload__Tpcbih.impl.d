lib/workload/tpcbih.ml: Array List Printf Prng Schema Tkr_engine Tkr_relation Tuple Value
