lib/workload/employees.mli: Tkr_engine
