lib/workload/tourism.mli: Tkr_engine
