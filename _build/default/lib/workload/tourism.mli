(** A simulated stand-in for the technical report's real-world Tourism
    dataset: accommodation facilities and seasonal guest stays as period
    tables, plus an occupancy-analytics snapshot query suite. *)

type config = {
  facilities : int;
  stays_per_facility : int;
  years : int;
  seed : int;
}

val default : config
val generate : config -> Tkr_engine.Database.t
val queries : (string * string) list
