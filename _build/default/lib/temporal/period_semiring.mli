(** Period semirings K^T (Def. 6.1): coalesced temporal K-elements over a
    fixed time domain form a commutative semiring (Thm. 6.2); if K has a
    well-defined monus, so does K^T (Thm. 7.1).

    The timeslice operator is a (m-)semiring homomorphism K^T → K
    (Thms. 6.3 / 7.2) — the property behind snapshot reducibility of
    period K-relations. *)

module Domain = Tkr_timeline.Domain
module Interval = Tkr_timeline.Interval

module type DOMAIN = sig
  val domain : Domain.t
end

module Make (K : Tkr_semiring.Semiring_intf.S) (D : DOMAIN) : sig
  module Elt : Temporal_element.S with type k = K.t

  include Tkr_semiring.Semiring_intf.S with type t = Elt.t
  (** [zero] maps everything to 0_K; [one] maps the whole domain to 1_K;
      [add]/[mul] are the coalesced pointwise operations of Def. 6.1. *)

  val domain : Domain.t

  val of_raw : (Interval.t * K.t) list -> t
  (** Normalize an arbitrary raw element (coalesces). *)

  val of_assoc : ((int * int) * K.t) list -> t

  val timeslice : t -> int -> K.t
  (** The homomorphism τ_T. *)
end

module MakeMonus (K : Tkr_semiring.Semiring_intf.MONUS) (D : DOMAIN) : sig
  module Elt : Temporal_element.S with type k = K.t
  module EltM : module type of Temporal_element.MakeMonus (K)

  include Tkr_semiring.Semiring_intf.MONUS with type t = Elt.t

  val domain : Domain.t
  val of_raw : (Interval.t * K.t) list -> t
  val of_assoc : ((int * int) * K.t) list -> t
  val timeslice : t -> int -> K.t
end
