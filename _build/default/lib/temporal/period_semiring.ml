(** Period semirings K^T (Def. 6.1): the semiring of coalesced temporal
    K-elements over a fixed time domain.

    [Make (K) (D)] builds K^T for an arbitrary commutative semiring [K];
    [MakeMonus] additionally provides the monus (Thm. 7.1), making K^T an
    m-semiring whenever [K] is one.  The timeslice operator {!Make.timeslice}
    is a (m-)semiring homomorphism K^T → K (Thms. 6.3 / 7.2); this is the
    property that makes period K-relations snapshot-reducible. *)

module Domain = Tkr_timeline.Domain
module Interval = Tkr_timeline.Interval

module type DOMAIN = sig
  val domain : Domain.t
end

module Make (K : Tkr_semiring.Semiring_intf.S) (D : DOMAIN) = struct
  module Elt = Temporal_element.Make (K)

  type t = Elt.t
  (** Invariant: always in coalesced normal form. *)

  let domain = D.domain
  let zero : t = []

  let one : t =
    let tmin, tmax = Domain.whole D.domain in
    [ (Interval.make tmin tmax, K.one) ]

  let add a b = Elt.coalesce (Elt.add_pointwise a b)
  let mul a b = Elt.coalesce (Elt.mul_pointwise a b)
  let equal = Elt.equal_coalesced
  let compare = Elt.compare
  let hash = Elt.hash
  let pp = Elt.pp
  let name = K.name ^ "^T"

  (** Normalize an arbitrary raw temporal element into K^T. *)
  let of_raw (l : (Interval.t * K.t) list) : t = Elt.coalesce l

  let of_assoc l : t = Elt.coalesce (Elt.of_assoc l)

  (** τ_T as a function K^T → K. *)
  let timeslice (el : t) t = Elt.timeslice el t
end

module MakeMonus (K : Tkr_semiring.Semiring_intf.MONUS) (D : DOMAIN) = struct
  include Make (K) (D)
  module EltM = Temporal_element.MakeMonus (K)

  let monus a b = EltM.coalesce (EltM.monus_pointwise a b)
end
