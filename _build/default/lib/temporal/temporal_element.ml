(** Temporal K-elements (Section 5): functions from intervals to K,
    recording how a tuple's annotation changes over time.

    Representation: a list of [(interval, k)] pairs with non-zero [k].
    Following the paper's semantics for overlap, the annotation at time [t]
    is the {e sum} of all entries whose interval contains [t]; a list is
    therefore a faithful representation of a temporal K-element viewed as a
    finitely-supported function (duplicate intervals act as added values).

    {!coalesce} computes the unique normal form of Def. 5.3: maximal
    intervals of constant, non-zero annotation — sorted, pairwise disjoint,
    with adjacent intervals carrying different annotations. *)

module Interval = Tkr_timeline.Interval
module Endpoints = Tkr_timeline.Endpoints

module type S = sig
  type k
  type t = (Interval.t * k) list

  val zero : t
  val is_zero : t -> bool
  val of_list : (Interval.t * k) list -> t
  val of_assoc : ((int * int) * k) list -> t
  val singleton : Interval.t -> k -> t
  val timeslice : t -> int -> k
  val coalesce : t -> t
  val is_coalesced : t -> bool
  val changepoints : t -> int list
  val add_pointwise : t -> t -> t
  val mul_pointwise : t -> t -> t
  val equal_coalesced : t -> t -> bool
  val snapshot_equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val covered_duration : t -> int
  val support_endpoints : t -> Endpoints.t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Make (K : Tkr_semiring.Semiring_intf.S) = struct
  type k = K.t
  type t = (Interval.t * K.t) list

  let zero : t = []
  let is_zero (el : t) = el = []

  (** Drop explicit zero entries; any list is a valid raw element. *)
  let of_list (l : (Interval.t * K.t) list) : t =
    List.filter (fun (_, k) -> not (K.equal k K.zero)) l

  let of_assoc l = of_list (List.map (fun ((b, e), k) -> (Interval.make b e, k)) l)

  let singleton i k : t = if K.equal k K.zero then [] else [ (i, k) ]

  (** τ_T: the annotation valid at time point [t]. *)
  let timeslice (el : t) (t : int) : K.t =
    List.fold_left
      (fun acc (i, k) -> if Interval.mem t i then K.add acc k else acc)
      K.zero el

  let support_endpoints (el : t) =
    Endpoints.of_intervals (List.map fst el)

  (** K-coalesce (Def. 5.3): sweep the elementary segments induced by all
      endpoints, compute the constant annotation of each, and merge maximal
      runs of adjacent segments with equal annotations. *)
  let coalesce (el : t) : t =
    let el = of_list el in
    match el with
    | [] -> []
    | _ ->
        let segments = Endpoints.elementary (support_endpoints el) in
        let annotated =
          List.filter_map
            (fun seg ->
              let k = timeslice el (Interval.b seg) in
              if K.equal k K.zero then None else Some (seg, k))
            segments
        in
        (* merge adjacent segments with equal annotations *)
        let rec merge = function
          | (i1, k1) :: (i2, k2) :: rest
            when Interval.e i1 = Interval.b i2 && K.equal k1 k2 ->
              merge ((Interval.make (Interval.b i1) (Interval.e i2), k1) :: rest)
          | entry :: rest -> entry :: merge rest
          | [] -> []
        in
        merge annotated

  (** A coalesced element is sorted, disjoint, zero-free, and adjacent
      entries carry different annotations. *)
  let is_coalesced (el : t) =
    let rec go = function
      | [] | [ _ ] -> true
      | (i1, k1) :: ((i2, k2) :: _ as rest) ->
          Interval.e i1 <= Interval.b i2
          && (not (Interval.e i1 = Interval.b i2 && K.equal k1 k2))
          && go rest
    in
    List.for_all (fun (_, k) -> not (K.equal k K.zero)) el && go el

  (** Annotation changepoints (Def. 5.2), excluding the implicit [Tmin]. *)
  let changepoints (el : t) : int list
      =
    let cps =
      List.concat_map
        (fun seg ->
          [ Interval.b seg; Interval.e seg ])
        (coalesce el |> List.map fst)
    in
    List.sort_uniq Int.compare cps

  (** Pointwise addition +_KP: the multiset union of the entries. *)
  let add_pointwise (a : t) (b : t) : t = a @ b

  (** Pointwise multiplication ·_KP: products over all overlapping pairs,
      valid on the intersections (Def. 6.1). *)
  let mul_pointwise (a : t) (b : t) : t =
    List.concat_map
      (fun (ia, ka) ->
        List.filter_map
          (fun (ib, kb) ->
            match Interval.intersect ia ib with
            | Some i ->
                let k = K.mul ka kb in
                if K.equal k K.zero then None else Some (i, k)
            | None -> None)
          b)
      a

  (** Snapshot equivalence: same annotation at every time point.  By the
      uniqueness of the normal form this is equality of coalesced forms. *)
  let equal_coalesced (a : t) (b : t) =
    List.length a = List.length b
    && List.for_all2
         (fun (ia, ka) (ib, kb) -> Interval.equal ia ib && K.equal ka kb)
         a b

  let snapshot_equal (a : t) (b : t) = equal_coalesced (coalesce a) (coalesce b)

  let compare (a : t) (b : t) =
    List.compare
      (fun (ia, ka) (ib, kb) ->
        let c = Interval.compare ia ib in
        if c <> 0 then c else K.compare ka kb)
      a b

  let hash (el : t) =
    List.fold_left
      (fun acc (i, k) -> (acc * 31) lxor Interval.hash i lxor K.hash k)
      0 el

  (** Total duration (number of time points with non-zero annotation);
      meaningful on coalesced elements. *)
  let covered_duration (el : t) =
    List.fold_left (fun acc (i, _) -> acc + Interval.duration i) 0 el

  let pp ppf (el : t) =
    Format.fprintf ppf "{%a}"
      Fmt.(
        list ~sep:(any ", ") (fun ppf (i, k) ->
            Format.fprintf ppf "%a ↦ %a" Interval.pp i K.pp k))
      el

  let to_string el = Format.asprintf "%a" pp el
end

module MakeMonus (K : Tkr_semiring.Semiring_intf.MONUS) = struct
  include Make (K)

  (** Pointwise monus −_KP, computed segment-wise: align both elements on
      the elementary intervals of their combined endpoints (on which both
      are constant) and apply [K.monus] per segment (Section 7.1). *)
  let monus_pointwise (a : t) (b : t) : t =
    let eps = Endpoints.union (support_endpoints a) (support_endpoints b) in
    Endpoints.elementary eps
    |> List.filter_map (fun seg ->
           let p = Interval.b seg in
           let k = K.monus (timeslice a p) (timeslice b p) in
           if K.equal k K.zero then None else Some (seg, k))
end
