lib/temporal/temporal_element.ml: Fmt Format Int List Tkr_semiring Tkr_timeline
