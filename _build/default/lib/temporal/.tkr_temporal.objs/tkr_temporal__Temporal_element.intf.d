lib/temporal/temporal_element.mli: Format Tkr_semiring Tkr_timeline
