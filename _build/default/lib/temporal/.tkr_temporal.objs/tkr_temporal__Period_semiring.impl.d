lib/temporal/period_semiring.ml: Temporal_element Tkr_semiring Tkr_timeline
