lib/temporal/period_semiring.mli: Temporal_element Tkr_semiring Tkr_timeline
