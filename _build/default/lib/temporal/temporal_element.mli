(** Temporal K-elements (Section 5): interval-indexed annotation histories.

    Represented as lists of [(interval, k)] pairs with the paper's overlap
    semantics — the annotation at a time point is the {e sum} of the
    entries whose interval contains it — so any list is a faithful raw
    element.  {!Make.coalesce} computes the unique normal form of
    Def. 5.3. *)

module Interval = Tkr_timeline.Interval
module Endpoints = Tkr_timeline.Endpoints

module type S = sig
  type k
  type t = (Interval.t * k) list

  val zero : t
  val is_zero : t -> bool

  val of_list : (Interval.t * k) list -> t
  (** Drops explicit zero entries. *)

  val of_assoc : ((int * int) * k) list -> t
  val singleton : Interval.t -> k -> t

  val timeslice : t -> int -> k
  (** τ_T: the annotation valid at a time point. *)

  val coalesce : t -> t
  (** K-coalesce (Def. 5.3): maximal intervals of constant non-zero
      annotation.  Idempotent; unique on snapshot-equivalence classes;
      snapshot-preserving (Lemma 5.1). *)

  val is_coalesced : t -> bool

  val changepoints : t -> int list
  (** Annotation changepoints (Def. 5.2), as the sorted boundary points of
      the coalesced form. *)

  val add_pointwise : t -> t -> t
  (** +_KP of Def. 6.1 (not coalesced). *)

  val mul_pointwise : t -> t -> t
  (** ·_KP of Def. 6.1: products over interval intersections. *)

  val equal_coalesced : t -> t -> bool
  (** Structural equality; decides snapshot equivalence on coalesced
      elements (Lemma 5.1, uniqueness). *)

  val snapshot_equal : t -> t -> bool
  (** τ-pointwise equality, decided via coalescing. *)

  val compare : t -> t -> int
  val hash : t -> int
  val covered_duration : t -> int
  val support_endpoints : t -> Endpoints.t
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Make (K : Tkr_semiring.Semiring_intf.S) : S with type k = K.t

module MakeMonus (K : Tkr_semiring.Semiring_intf.MONUS) : sig
  include S with type k = K.t

  val monus_pointwise : t -> t -> t
  (** −_KP (Section 7.1), computed on the elementary segments of the
      combined endpoints, where both elements are constant. *)
end
