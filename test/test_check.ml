(* The static analyzer (Tkr_check): golden diagnostics where every TKR
   code of the registry triggers at least once, the linter's Table 1
   bug-matrix predictions, and property tests that the plan validator
   accepts every optimizer and rewriter output. *)

module M = Tkr_middleware.Middleware
module An = Tkr_sql.Analyzer
module Ast = Tkr_sql.Ast
module D = Tkr_check.Diagnostic
module Check = Tkr_check.Check
module Typecheck = Tkr_check.Typecheck
module Plan_check = Tkr_check.Plan_check
module Lint = Tkr_check.Lint
module Database = Tkr_engine.Database
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Expr = Tkr_relation.Expr
module Agg = Tkr_relation.Agg
module Algebra = Tkr_relation.Algebra
module W = Tkr_workload.Employees
module Q = Tkr_workload.Queries

let fresh () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16);
       CREATE TABLE plain (x int, y text);
     |});
  m

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds
let pos0 = { Ast.line = 1; col = 1 }
let count = { Algebra.func = Agg.Count_star; agg_name = "c" }

(* hand-built schemas for the direct (non-SQL) triggers *)
let enc = (* an encoded relation: one data column plus the period *)
  Schema.make
    [ Schema.attr "x" Value.TInt; Schema.attr "__b" Value.TInt;
      Schema.attr "__e" Value.TInt ]

let enc_lookup = function "enc" -> Some enc | _ -> None

(* [M.check] never raises; [exec_err] captures the typed exceptions of
   the execution entry points *)
let chk sql () = M.check (fresh ()) sql

let exec_err sql () =
  let m = fresh () in
  match M.execute m sql with
  | _ -> []
  | exception M.Error d -> [ d ]
  | exception M.Rejected ds -> ds

(* TKR015 is unreachable through the parser (an unknown function name is
   a syntax error before the analyzer runs): call the analyzer on a
   hand-built AST instead *)
let unknown_aggregate () =
  let q =
    Ast.Select_q
      {
        distinct = false;
        items =
          [
            Ast.Item
              {
                item_expr =
                  Ast.Agg_call ("median", Ast.Arg (Ast.Ref ([ "x" ], pos0)), pos0);
                item_alias = None;
              };
          ];
        from = [ (Ast.Table { name = "t"; alias = None }, None) ];
        where = None;
        group_by = [];
        having = None;
      }
  in
  let cat =
    { An.cat_schema = (fun _ -> Schema.make [ Schema.attr "x" Value.TInt ]) }
  in
  match An.analyze_query cat q with _ -> [] | exception An.Error d -> [ d ]

(* one producer per registry code; the coverage test below enforces that
   this list spans the whole registry *)
let golden : (string * (unit -> D.t list)) list =
  [
    ("TKR001", chk "SELECT wat FROM works");
    ("TKR002", chk "SELECT name FROM works w1, works w2");
    ("TKR003", chk "SELECT x FROM missing");
    ("TKR004", chk "SELECT FROM works");
    ("TKR005", chk "SELECT 'oops");
    ("TKR010", chk "SEQ VT (SELECT name FROM (SEQ VT (SELECT name FROM works)) AS x)");
    ("TKR011", chk "SELECT name, skill FROM works UNION ALL SELECT name FROM works");
    ("TKR012", chk "SELECT name FROM works WHERE name IN (skill)");
    ("TKR013", chk "SELECT name FROM works WHERE count(*) > 1");
    ("TKR014", chk "SELECT sum(*) AS s FROM works");
    ("TKR015", unknown_aggregate);
    ("TKR016", chk "SELECT name FROM works HAVING name = 'a'");
    ("TKR017", chk "SELECT name FROM works GROUP BY skill");
    ("TKR018", chk "SELECT * FROM works GROUP BY skill");
    ("TKR019", chk "SELECT name FROM works ORDER BY 7");
    ("TKR020", chk "SEQ VT (SELECT x FROM plain)");
    ("TKR021", fun () ->
        let m = fresh () in
        (match M.query m "DROP TABLE plain" with
        | _ -> []
        | exception M.Error d -> [ d ]));
    ("TKR022", exec_err "INSERT INTO works VALUES ('x', 'y', 1)");
    ("TKR023", exec_err "INSERT INTO works VALUES (name, 'y', 1, 2)");
    ("TKR024", exec_err "CREATE TABLE t2 (a text, b text, e int) PERIOD (b, e)");
    ("TKR025", exec_err "UPDATE plain FOR PORTION OF vt FROM 1 TO 2 SET x = 1");
    ("TKR101", chk "SELECT name + 1 AS z FROM works");
    ("TKR102", chk "SELECT name FROM works WHERE name > 1");
    ("TKR103", chk "SELECT name FROM works WHERE b + 1");
    ("TKR104", chk "SELECT name FROM works WHERE b LIKE 'x%'");
    ("TKR105", chk "SELECT name FROM works WHERE b IN (1, 'x')");
    ("TKR106", chk "SELECT CASE WHEN b > 1 THEN 1 ELSE 'x' END AS c FROM works");
    ("TKR107", chk "SELECT sum(name) AS s FROM works");
    ("TKR108", fun () ->
        let lookup = function
          | "a" -> Some (Schema.make [ Schema.attr "x" Value.TInt ])
          | "b" -> Some (Schema.make [ Schema.attr "y" Value.TStr ])
          | _ -> None
        in
        Typecheck.algebra ~lookup (Algebra.Union (Rel "a", Rel "b")));
    ("TKR109", fun () ->
        snd (Typecheck.expr ~schema:enc (Expr.Col 9)));
    ("TKR110", chk "SELECT name FROM works WHERE name = NULL");
    ("TKR201", fun () -> Plan_check.logical (Algebra.Coalesce (Rel "enc")));
    ("TKR202", fun () ->
        let lookup = function
          | "short" -> Some (Schema.make [ Schema.attr "x" Value.TStr ])
          | _ -> None
        in
        Plan_check.physical ~lookup (Algebra.Coalesce (Rel "short")));
    ("TKR203", fun () ->
        Plan_check.physical ~lookup:enc_lookup
          (Algebra.Coalesce (Split ([ 5 ], Rel "enc", Rel "enc"))));
    ("TKR204", fun () ->
        (* not a mirrored pair: both splits have the same operand order *)
        Plan_check.physical ~lookup:enc_lookup
          (Algebra.Coalesce
             (Diff
                ( Split ([ 0 ], Rel "enc", Rel "enc"),
                  Split ([ 0 ], Algebra.Distinct (Rel "enc"), Rel "enc") ))));
    ("TKR205", fun () ->
        Plan_check.physical ~lookup:enc_lookup
          (Algebra.Coalesce (Agg ([], [ count ], Rel "enc"))));
    ("TKR206", fun () -> Plan_check.physical ~lookup:enc_lookup (Rel "enc"));
    ("TKR207", fun () ->
        Plan_check.physical ~lookup:enc_lookup
          (Algebra.Coalesce
             (Split_agg
                { sa_group = []; sa_aggs = [ count ]; sa_gap = None;
                  sa_child = Rel "enc" })));
    ("TKR301", fun () ->
        Lint.plan Lint.teradata (Algebra.Agg ([], [ count ], Rel "t")));
    ("TKR302", fun () -> Lint.plan Lint.alignment (Algebra.Diff (Rel "t", Rel "t")));
    ("TKR303", fun () -> Lint.plan Lint.teradata (Algebra.Diff (Rel "t", Rel "t")));
    ("TKR304", fun () -> Lint.plan Lint.alignment (Rel "t"));
    (* abstract interpretation (Tkr_check.Absint) *)
    ("TKR401", chk "SELECT x FROM plain WHERE x > 5 AND x < 3");
    ("TKR402", chk "SELECT x FROM plain WHERE x > 5 AND x < 3");
    (* period columns of a plain query over a period table are seeded
       from the stored time bounds ([0,24] in [fresh]) *)
    ("TKR403", chk "SELECT name FROM works WHERE b >= 0");
    ("TKR404",
     chk "SELECT DISTINCT skill, count(*) AS c FROM works GROUP BY skill");
    ("TKR405", fun () ->
        Check.physical ~lookup:enc_lookup
          (Algebra.Coalesce (Algebra.Coalesce (Rel "enc"))));
    ("TKR406", fun () ->
        Check.logical ~lookup:enc_lookup
          (Algebra.Join
             ( Expr.(
                 And
                   ( Cmp (Eq, Col 0, Const (Value.Int 1)),
                     Cmp (Eq, Col 0, Const (Value.Int 2)) )),
               Rel "enc", Rel "enc" )));
    ("TKR407", chk "SELECT name FROM works WHERE e <= 0");
    ("TKR408", chk "SEQ VT AS OF 99 (SELECT name FROM works)");
  ]

let test_golden () =
  List.iter
    (fun (code, produce) ->
      let ds = produce () in
      if not (List.mem code (codes ds)) then
        Alcotest.failf "expected %s, got [%s]" code
          (String.concat "; " (codes ds)))
    golden

(* the golden list is complete: every code of the stable registry has a
   trigger (adding a code without a test fails here) *)
let test_registry_coverage () =
  let produced = List.concat_map (fun (_, produce) -> codes (produce ())) golden in
  List.iter
    (fun (code, _) ->
      if not (List.mem code produced) then
        Alcotest.failf "registry code %s never triggered" code)
    D.registry

let test_positions () =
  (* diagnostics anchor to the offending token, 1-based *)
  match M.check (fresh ()) "SELECT wat FROM works" with
  | [ d ] ->
      Alcotest.(check string) "code" "TKR001" d.D.code;
      Alcotest.(check (option (pair int int)))
        "position" (Some (1, 8))
        (Option.map (fun (p : D.pos) -> (p.line, p.col)) d.D.pos)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

(* --- the linter's Table 1: which evaluation style has which bug --- *)

let test_table1 () =
  let agg = Algebra.Agg ([], [ count ], Rel "t") in
  let grouped =
    Algebra.Agg ([ Algebra.proj (Expr.Col 0) "g" ], [ count ], Rel "t")
  in
  let diff = Algebra.Diff (Rel "t", Rel "t") in
  let has p q c = List.mem c (codes (Lint.plan p q)) in
  (* the middleware's REWR pipeline is bug-free *)
  Alcotest.(check bool) "middleware AG" false (has Lint.middleware agg "TKR301");
  Alcotest.(check bool) "middleware BD" false (has Lint.middleware diff "TKR302");
  Alcotest.(check int) "middleware clean" 0
    (D.count_errors (Lint.plan Lint.middleware agg @ Lint.plan Lint.middleware diff));
  (* every baseline style has the AG bug on ungrouped aggregation ... *)
  List.iter
    (fun (p : Lint.profile) ->
      Alcotest.(check bool) (p.prof_name ^ " AG") true (has p agg "TKR301");
      Alcotest.(check bool)
        (p.prof_name ^ " grouped ok") false (has p grouped "TKR301"))
    [ Lint.interval_preservation; Lint.alignment; Lint.teradata ];
  (* ... and gets difference wrong (BD) or rejects it outright *)
  Alcotest.(check bool) "ip BD" true (has Lint.interval_preservation diff "TKR302");
  Alcotest.(check bool) "alignment BD" true (has Lint.alignment diff "TKR302");
  Alcotest.(check bool) "teradata no diff" true (has Lint.teradata diff "TKR303")

(* --- CHECK / strict mode through the middleware --- *)

let test_check_statement () =
  let m = fresh () in
  (match M.execute m "CHECK (SEQ VT (SELECT count(*) AS c FROM works))" with
  | M.Done msg ->
      Alcotest.(check string) "clean" "OK: no diagnostics" msg
  | M.Rows _ -> Alcotest.fail "CHECK must not return rows");
  match M.execute m "CHECK (SELECT name + 1 AS z FROM works)" with
  | M.Done msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s
                       && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "reports TKR101" true (contains msg "TKR101")
  | M.Rows _ -> Alcotest.fail "CHECK must not return rows"

let test_rejects_before_execution () =
  let m = fresh () in
  (match M.query m "SELECT name + 1 AS z FROM works" with
  | _ -> Alcotest.fail "ill-typed query must be rejected"
  | exception M.Rejected ds ->
      Alcotest.(check bool) "TKR101" true (List.mem "TKR101" (codes ds)));
  (* warnings pass by default but fail under --Werror *)
  let warn = "SELECT name FROM works WHERE name = NULL" in
  ignore (M.query m warn);
  let strict = M.create ~strict:true ~db:(Database.create ()) () in
  Database.set_time_bounds (M.database strict) ~tmin:0 ~tmax:24;
  ignore
    (M.execute strict
       "CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e)");
  match M.query strict warn with
  | _ -> Alcotest.fail "strict mode must reject warnings"
  | exception M.Rejected ds ->
      Alcotest.(check bool) "TKR110" true (List.mem "TKR110" (codes ds))

(* --- property: the plan validator accepts every optimizer output --- *)

let prop_optimizer_outputs_validate =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"plan validator accepts optimizer outputs"
       Test_optimizer.arb (fun q ->
         let optimized =
           Tkr_engine.Optimizer.optimize ~stats:Test_optimizer.stats
             ~lookup:Test_optimizer.lookup q
         in
         let lookup n =
           match Test_optimizer.lookup n with
           | s -> Some s
           | exception Schema.Unknown _ -> None
         in
         D.count_errors (Check.logical ~lookup optimized) = 0))

(* --- every REWR output over the workload passes the physical checks ---

   The middleware runs the validator after analyze, optimize and rewrite
   and raises [Rejected] on any error, so preparing the whole employee
   workload under all four rewrite configurations is the assertion. *)

let test_rewriter_outputs_validate () =
  let db = W.generate (W.scaled 30) in
  List.iter
    (fun (options, optimize) ->
      let m = M.create ~options ~optimize ~db () in
      List.iter
        (fun (name, sql) ->
          match M.prepare m sql with
          | p ->
              Alcotest.(check int)
                (Printf.sprintf "%s (optimize=%b)" name optimize)
                0
                (D.count_errors p.M.diags)
          | exception M.Rejected ds ->
              Alcotest.failf "%s rejected: %s" name (D.report_to_text ds))
        Q.employee)
    [
      (M.Rewriter.optimized, true);
      (M.Rewriter.optimized, false);
      (M.Rewriter.literal, true);
      (M.Rewriter.literal, false);
    ]

let suite =
  ( "static analyzer",
    [
      Alcotest.test_case "golden diagnostics" `Quick test_golden;
      Alcotest.test_case "registry coverage" `Quick test_registry_coverage;
      Alcotest.test_case "diagnostic positions" `Quick test_positions;
      Alcotest.test_case "Table 1 bug matrix" `Quick test_table1;
      Alcotest.test_case "CHECK statement" `Quick test_check_statement;
      Alcotest.test_case "reject before execution" `Quick
        test_rejects_before_execution;
      prop_optimizer_outputs_validate;
      Alcotest.test_case "REWR outputs validate" `Quick
        test_rewriter_outputs_validate;
    ] )
