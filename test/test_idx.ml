(* Tkr_idx: delta-summation prefix sums at interval boundaries, interval
   index probe units, and qcheck differential properties asserting the
   index access paths are byte-identical to the scan paths — on the row
   interpreter, the compiled backend and the vectorized engine, over
   NULL-heavy and empty inputs. *)

module Value = Tkr_relation.Value
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Compiled = Tkr_engine.Compiled
module Idx_cache = Tkr_engine.Idx_cache
module Vexec = Tkr_vec.Vexec
module Delta = Tkr_idx.Delta
module Interval = Tkr_idx.Interval
module Probe = Tkr_idx.Probe
module M = Tkr_middleware.Middleware

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let byte_identical a b =
  let ra = Table.rows a and rb = Table.rows b in
  Array.length ra = Array.length rb
  && Array.for_all2 Tuple.equal ra rb
  && String.equal (Table.to_text a) (Table.to_text b)

(* ---- delta summation at interval boundaries ---- *)

let test_delta_boundaries () =
  (* adjacent periods [0,5) and [5,10): half-open, no double count at
     the seam *)
  let d = Delta.build [| (0, 5); (5, 10) |] in
  check_int "alive at 0 (closed begin)" 1 (Delta.count_at d 0);
  check_int "alive at 4" 1 (Delta.count_at d 4);
  check_int "seam at 5: first ended exactly as second starts" 1
    (Delta.count_at d 5);
  check_int "alive at 9" 1 (Delta.count_at d 9);
  check_int "dead at 10 (open end)" 0 (Delta.count_at d 10);
  check_int "before all begins" 0 (Delta.count_at d (-1));
  check_int "overlap [4,6) sees both" 2 (Delta.count_overlapping d ~lo:4 ~hi:6);
  check_int "empty window [5,5)" 0 (Delta.count_overlapping d ~lo:5 ~hi:5);
  check_int "inverted window" 0 (Delta.count_overlapping d ~lo:9 ~hi:2);
  (* zero-length period [3,3): the +1 and -1 deltas cancel everywhere *)
  let z = Delta.build [| (3, 3) |] in
  check_int "zero-length period alive nowhere" 0 (Delta.count_at z 3);
  (* count_overlapping is the endpoint estimate [b < hi && e > lo]: a
     zero-length period inside the window is a candidate (the full
     predicate later rejects it), one outside the endpoint bounds not *)
  check_int "zero-length inside window is a candidate" 1
    (Delta.count_overlapping z ~lo:0 ~hi:10);
  check_int "zero-length right of window" 0
    (Delta.count_overlapping z ~lo:0 ~hi:3);
  check_int "zero-length left of window" 0
    (Delta.count_overlapping z ~lo:3 ~hi:10);
  (* open-ended period [2, max_int): alive arbitrarily far out *)
  let o = Delta.build [| (2, max_int) |] in
  check_int "open-ended alive at max_int - 1" 1 (Delta.count_at o (max_int - 1));
  check_int "open-ended not alive before its begin" 0 (Delta.count_at o 1);
  (* empty structure *)
  let e = Delta.build [||] in
  check_int "empty delta counts zero" 0 (Delta.count_at e 0);
  check_int "empty delta overlaps zero" 0 (Delta.count_overlapping e ~lo:0 ~hi:9)

(* ---- interval index probes vs brute force ---- *)

let brute_stab periods at =
  let out = ref [] in
  Array.iteri (fun i (b, e) -> if b <= at && at < e then out := i :: !out) periods;
  Array.of_list (List.rev !out)

let test_interval_probe () =
  let periods = [| (3, 10); (8, 16); (8, 16); (18, 20); (5, 5); (0, max_int) |] in
  let idx = Interval.build periods in
  List.iter
    (fun at ->
      Alcotest.(check (array int))
        (Printf.sprintf "stab %d = brute force, in physical order" at)
        (brute_stab periods at) (Interval.stab idx at);
      check_int
        (Printf.sprintf "delta count_at %d = reported candidates" at)
        (Array.length (brute_stab periods at))
        (Interval.count_at idx at))
    [ -1; 0; 3; 5; 8; 9; 10; 15; 16; 18; 19; 20; 1000 ];
  (* an exclusive lower bound at max_int matches nothing (no end lies
     beyond max_int); guards the min_end overflow *)
  Alcotest.(check (array int))
    "exclusive max_int end bound is empty" [||]
    (Interval.probe idx
       ~b_hi:{ Interval.v = max_int; incl = true }
       ~e_lo:{ Interval.v = max_int; incl = false });
  (* inclusive max_int keeps the open-ended row *)
  Alcotest.(check (array int))
    "inclusive max_int end bound keeps open-ended rows" [| 5 |]
    (Interval.probe idx
       ~b_hi:{ Interval.v = max_int; incl = true }
       ~e_lo:{ Interval.v = max_int; incl = true });
  let empty = Interval.build [||] in
  Alcotest.(check (array int)) "empty index stabs empty" [||]
    (Interval.stab empty 0);
  check_int "empty index size" 0 (Interval.size empty)

let prop_probe_vs_brute =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"random probe: interval index = brute-force filter"
       QCheck.(
         pair
           (small_list (pair (int_range (-5) 30) (int_range (-5) 30)))
           (quad (int_range (-6) 31) bool (int_range (-6) 31) bool))
       (fun (ps, (bv, bi, ev, ei)) ->
         let periods = Array.of_list ps in
         let idx = Interval.build periods in
         let b_hi = { Interval.v = bv; incl = bi }
         and e_lo = { Interval.v = ev; incl = ei } in
         let brute =
           let out = ref [] in
           Array.iteri
             (fun i (b, e) ->
               let b_ok = if bi then b <= bv else b < bv
               and e_ok = if ei then e >= ev else e > ev in
               if b_ok && e_ok then out := i :: !out)
             periods;
           Array.of_list (List.rev !out)
         in
         Interval.probe idx ~b_hi ~e_lo = brute))

(* ---- engine-level differential: index path = scan path ---- *)

let w_schema =
  Schema.make
    [
      Schema.attr "name" Value.TStr;
      Schema.attr "b" Value.TInt;
      Schema.attr "e" Value.TInt;
    ]

(* NULL-heavy data column, arbitrary (including degenerate) periods *)
let gen_rows =
  QCheck.Gen.(
    list_size (0 -- 25)
      (triple
         (oneof [ return None; map Option.some (string_size (0 -- 2)) ])
         (int_range (-4) 28) (int_range (-4) 28)))

let arb_rows =
  QCheck.make
    ~print:(fun rows ->
      String.concat ";"
        (List.map
           (fun (n, b, e) ->
             Printf.sprintf "(%s,%d,%d)" (Option.value n ~default:"NULL") b e)
           rows))
    gen_rows

let mk_db rows =
  let tuples =
    List.map
      (fun (n, b, e) ->
        Tuple.make
          [
            (match n with None -> Value.Null | Some s -> Value.Str s);
            Value.Int b;
            Value.Int e;
          ])
      rows
  in
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "w" (Table.make w_schema tuples);
  db

let alive_pred arity t =
  Expr.(
    And
      ( Cmp (Le, Col (arity - 2), Const (Value.Int t)),
        Cmp (Lt, Const (Value.Int t), Col (arity - 1)) ))

let prop_select_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"AS OF selection: index = scan on row, compiled and vec engines"
       QCheck.(pair arb_rows (int_range (-4) 28))
       (fun (rows, t) ->
         let db = mk_db rows in
         let q = Algebra.Select (alive_pred 3 t, Algebra.Rel "w") in
         let oracle = Exec.eval ~use_index:false db q in
         byte_identical oracle (Exec.eval ~use_index:true db q)
         && byte_identical oracle (Compiled.eval ~use_index:true db q)
         && byte_identical oracle (Vexec.eval ~use_index:true db q)))

(* interval join: overlap of the left row's period with the right
   table's, the no-equi-key regime the index nested loop serves *)
let overlap_join_pred ~la ~ra =
  let lb = la - 2 and le = la - 1 in
  let rb = la + ra - 2 and re_ = la + ra - 1 in
  Expr.(
    And (Cmp (Lt, Col lb, Col re_), Cmp (Lt, Col rb, Col le)))

let prop_join_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"overlap join: index nested loop = scan nested loop"
       QCheck.(pair arb_rows arb_rows)
       (fun (lrows, rrows) ->
         let db = mk_db lrows in
         let tuples =
           List.map
             (fun (n, b, e) ->
               Tuple.make
                 [
                   (match n with None -> Value.Null | Some s -> Value.Str s);
                   Value.Int b;
                   Value.Int e;
                 ])
             rrows
         in
         Database.add_period_table db "r" (Table.make w_schema tuples);
         let q =
           Algebra.Join
             (overlap_join_pred ~la:3 ~ra:3, Algebra.Rel "w", Algebra.Rel "r")
         in
         let oracle = Exec.eval ~use_index:false db q in
         byte_identical oracle (Exec.eval ~use_index:true db q)
         && byte_identical oracle (Compiled.eval ~use_index:true db q)))

(* ---- middleware end to end: flag, DML invalidation, EXPLAIN ---- *)

let seed_m () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
     |});
  m

let test_middleware_flag () =
  let m = seed_m () in
  List.iter
    (fun sql ->
      M.set_index m true;
      let on_ = Table.to_text (M.query m sql) in
      M.set_index m false;
      let off = Table.to_text (M.query m sql) in
      Alcotest.(check string) sql on_ off)
    [
      "SEQ VT AS OF 9 (SELECT name FROM works)";
      "SEQ VT AS OF 9 (SELECT name FROM works WHERE skill = 'SP')";
      "SEQ VT (SELECT count(*) AS c FROM works)";
      "SELECT name FROM works WHERE b <= 9 AND e >= 10";
    ]

let test_dml_invalidation () =
  let m = seed_m () in
  let q = "SEQ VT AS OF 9 (SELECT name FROM works)" in
  check_int "three alive at 9" 3 (Table.cardinality (M.query m q));
  (* the DML installs a fresh table value and bumps the version; a stale
     cached index must not be consulted *)
  ignore (M.execute m "INSERT INTO works VALUES ('Eve', 'SP', 1, 23)");
  check_int "index rebuilt after INSERT" 4 (Table.cardinality (M.query m q));
  ignore (M.execute m "DELETE FROM works WHERE name = 'Joe'");
  check_int "index rebuilt after DELETE" 3 (Table.cardinality (M.query m q))

let test_explain_access () =
  let m = seed_m () in
  let ex = M.explain m "SEQ VT AS OF 9 (SELECT name FROM works)" in
  check "EXPLAIN shows the index access path" true
    (contains ex "access: works=index");
  M.set_index m false;
  let ex = M.explain m "SEQ VT AS OF 9 (SELECT name FROM works)" in
  check "EXPLAIN shows the scan path when disabled" true
    (contains ex "access: works=scan");
  M.set_index m true;
  (* a data-column-only filter is not index-answerable *)
  let ex = M.explain m "SELECT name FROM works WHERE skill = 'SP'" in
  check "non-period predicate scans" true (contains ex "works=scan")

let test_cache_reuse () =
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "w"
    (Table.make w_schema
       [ Tuple.make [ Value.Str "a"; Value.Int 0; Value.Int 9 ] ]);
  match (Idx_cache.get db "w", Idx_cache.get db "w") with
  | Some a, Some b ->
      check "second lookup reuses the cached index" true (a == b);
      check_int "index covers the rows" 1 (Interval.size a)
  | _ -> Alcotest.fail "expected an index over a period table"

let suite =
  ( "temporal indexes (Tkr_idx)",
    [
      Alcotest.test_case "delta summation at boundaries" `Quick
        test_delta_boundaries;
      Alcotest.test_case "interval probe vs brute force" `Quick
        test_interval_probe;
      prop_probe_vs_brute;
      prop_select_differential;
      prop_join_differential;
      Alcotest.test_case "middleware index on/off identity" `Quick
        test_middleware_flag;
      Alcotest.test_case "DML invalidates the cached index" `Quick
        test_dml_invalidation;
      Alcotest.test_case "EXPLAIN access line" `Quick test_explain_access;
      Alcotest.test_case "index cache reuse" `Quick test_cache_reuse;
    ] )
