(* Tkr_tel: the structured JSONL event log.  Field-level checks through
   an Fn sink with injected clocks, the free disabled sink, rate-limit
   windowing with its synthetic announcement line, and close
   semantics. *)

module Json = Tkr_obs.Json
module Tel = Tkr_tel.Tel

let jstr j key =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "missing string field %s" key)

let jint j key =
  match Option.bind (Json.member key j) Json.to_int_opt with
  | Some i -> i
  | None -> Alcotest.fail (Printf.sprintf "missing int field %s" key)

(* an Fn-sink log with a deterministic clock: mono starts at 0 and the
   wall clock is pinned, so envelope fields are exact *)
let collecting ?rate_limit () =
  let lines = ref [] in
  let t =
    Tel.create
      ~clock:(fun () -> 0L)
      ~wall:(fun () -> 1234.5)
      ?rate_limit
      (Tel.Fn (fun j -> lines := j :: !lines))
  in
  (t, fun () -> List.rev !lines)

let test_envelope_and_fields () =
  let t, lines = collecting () in
  Alcotest.(check bool) "enabled" true (Tel.enabled t);
  Tel.emit t (Tel.Conn_open { session = 7 });
  Tel.emit t
    (Tel.Request_start
       { session = 7; req_id = 3; trace_id = "t7-1"; stmt = "SELECT 1" });
  Tel.emit t
    (Tel.Request_finish
       {
         session = 7;
         req_id = 3;
         trace_id = "t7-1";
         status = "ok";
         cached = true;
         elapsed_us = 42;
       });
  Tel.emit t
    (Tel.Slow_query
       {
         trace_id = "t7-1";
         fingerprint = "abcdef012345";
         stmt = "SELECT 1";
         queue_us = 5;
         exec_us = 37;
         total_us = 42;
         disposition = "hit";
       });
  Tel.emit t (Tel.Admission_reject { session = 7; reason = "queue_full" });
  Tel.emit t
    (Tel.Request_finish
       {
         session = 7;
         req_id = 4;
         trace_id = "t7-2";
         status = "INVALID_SQL";
         cached = false;
         elapsed_us = 1;
       });
  match lines () with
  | [ open_; start; finish; slow; reject; failed ] ->
      (* envelope: pinned wall clock in exact integer ms, counting seq *)
      Alcotest.(check int) "ts_ms" 1_234_500 (jint open_ "ts_ms");
      Alcotest.(check int) "mono_ns" 0 (jint open_ "mono_ns");
      Alcotest.(check int) "seq 1" 1 (jint open_ "seq");
      Alcotest.(check int) "seq 2" 2 (jint start "seq");
      Alcotest.(check string) "conn_open event" "conn_open"
        (jstr open_ "event");
      Alcotest.(check string) "debug severity" "debug"
        (jstr open_ "severity");
      (* request events carry the wire trace id *)
      Alcotest.(check string) "start trace" "t7-1" (jstr start "trace_id");
      Alcotest.(check string) "start stmt" "SELECT 1" (jstr start "stmt");
      Alcotest.(check string) "finish trace" "t7-1" (jstr finish "trace_id");
      Alcotest.(check string) "ok is info" "info" (jstr finish "severity");
      Alcotest.(check int) "elapsed" 42 (jint finish "elapsed_us");
      Alcotest.(check string) "slow is warn" "warn" (jstr slow "severity");
      Alcotest.(check string) "slow fingerprint" "abcdef012345"
        (jstr slow "fingerprint");
      Alcotest.(check string) "slow disposition" "hit"
        (jstr slow "disposition");
      Alcotest.(check int) "queue_us" 5 (jint slow "queue_us");
      Alcotest.(check string) "reject is warn" "warn"
        (jstr reject "severity");
      Alcotest.(check string) "reject reason" "queue_full"
        (jstr reject "reason");
      (* a failed request logs at error severity with the wire code *)
      Alcotest.(check string) "error severity" "error"
        (jstr failed "severity");
      Alcotest.(check string) "error status" "INVALID_SQL"
        (jstr failed "status");
      Alcotest.(check int) "emitted" 6 (Tel.emitted t);
      Alcotest.(check int) "nothing dropped" 0 (Tel.dropped t)
  | l -> Alcotest.fail (Printf.sprintf "expected 6 lines, got %d" (List.length l))

let test_disabled_noop () =
  Alcotest.(check bool) "disabled" false (Tel.enabled Tel.disabled);
  Tel.emit Tel.disabled (Tel.Drain { reason = "test" });
  Alcotest.(check int) "no lines" 0 (Tel.emitted Tel.disabled);
  Alcotest.(check int) "no drops" 0 (Tel.dropped Tel.disabled)

let test_rate_limit () =
  (* a stepping clock: the window rolls only when we advance it *)
  let now = ref 0L in
  let lines = ref [] in
  let t =
    Tel.create
      ~clock:(fun () -> !now)
      ~wall:(fun () -> 0.)
      ~rate_limit:2
      (Tel.Fn (fun j -> lines := j :: !lines))
  in
  for i = 1 to 5 do
    Tel.emit t (Tel.Epoch_bump { epoch = i })
  done;
  Alcotest.(check int) "ceiling applied" 2 (Tel.emitted t);
  Alcotest.(check int) "excess dropped" 3 (Tel.dropped t);
  (* rolling the window announces the drop count on a synthetic line,
     then admits events again *)
  now := 1_000_000_000L;
  Tel.emit t (Tel.Epoch_bump { epoch = 6 });
  (match List.rev !lines with
  | [ _; _; announce; after ] ->
      Alcotest.(check string) "synthetic line" "rate_limited"
        (jstr announce "event");
      Alcotest.(check int) "announced drops" 3 (jint announce "dropped");
      Alcotest.(check string) "window reopened" "epoch_bump"
        (jstr after "event")
  | l -> Alcotest.fail (Printf.sprintf "expected 4 lines, got %d" (List.length l)));
  Alcotest.(check int) "emitted excludes synthetic" 3 (Tel.emitted t)

let test_close () =
  let t, lines = collecting () in
  Tel.emit t (Tel.Drain { reason = "stop" });
  Tel.close t;
  Tel.close t (* idempotent *);
  Alcotest.(check bool) "closed reads disabled" false (Tel.enabled t);
  Tel.emit t (Tel.Drain { reason = "after close" });
  Alcotest.(check int) "no lines after close" 1 (List.length (lines ()));
  Alcotest.(check int) "emitted frozen" 1 (Tel.emitted t)

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "envelope and event fields" `Quick
        test_envelope_and_fields;
      Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_noop;
      Alcotest.test_case "rate limiting" `Quick test_rate_limit;
      Alcotest.test_case "close" `Quick test_close;
    ] )
