(* The vectorized engine (Tkr_vec): batch representation roundtrips,
   selection-vector edge cases, per-operator differential tests against the
   interpreted row oracle, and qcheck properties asserting byte-identity of
   full random plans — including plans crossing the batch↔row boundary at
   random subtrees — plus the middleware Row/Vec end-to-end surface. *)

open Fixtures
module Value = Tkr_relation.Value
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra
module Agg = Tkr_relation.Agg
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Batch = Tkr_vec.Batch
module Veval = Tkr_vec.Veval
module Vexec = Tkr_vec.Vexec
module M = Tkr_middleware.Middleware
module Rewriter = Tkr_sqlenc.Rewriter
module PE = Tkr_sqlenc.Period_enc.Make (D24)

let check = Alcotest.(check bool)

(* byte-identity: same rows in the same order, and the same rendered
   text (the surface the CI differential job diffs) *)
let byte_identical a b =
  let ra = Table.rows a and rb = Table.rows b in
  Array.length ra = Array.length rb
  && Array.for_all2 Tuple.equal ra rb
  && String.equal (Table.to_text a) (Table.to_text b)

(* the engine's encoded test database: Figure 1 under the period encoding *)
let fig1_db () =
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "works" (PE.to_table works_period);
  Database.add_period_table db "assign" (PE.to_table assign_period);
  db

let differential ?force_row db q =
  byte_identical (Exec.eval db q) (Vexec.eval ?force_row db q)

(* ---- batch representation ---- *)

let mixed_schema =
  Schema.make
    [
      Schema.attr "i" Value.TInt;
      Schema.attr "f" Value.TFloat;
      Schema.attr "s" Value.TStr;
      Schema.attr "b" Value.TBool;
    ]

let mixed_rows =
  [|
    Tuple.make [ Value.Int 1; Value.Float 1.5; Value.Str "x"; Value.Bool true ];
    Tuple.make [ Value.Null; Value.Null; Value.Null; Value.Null ];
    Tuple.make [ Value.Int 3; Value.Float nan; Value.Str ""; Value.Bool false ];
  |]

let test_roundtrip () =
  let tbl = Table.of_array mixed_schema mixed_rows in
  check "of_table/to_table roundtrips every value (incl. NULLs, NaN)" true
    (byte_identical tbl (Batch.to_table (Batch.of_table tbl)));
  (* a column that mixes types falls back to Boxed and still roundtrips *)
  let s = Schema.make [ Schema.attr "v" Value.TInt ] in
  let rows = [| Tuple.make [ Value.Int 1 ]; Tuple.make [ Value.Str "oops" ] |] in
  let tbl = Table.of_array s rows in
  check "type-mismatched column roundtrips via the boxed fallback" true
    (byte_identical tbl (Batch.to_table (Batch.of_table tbl)));
  (* the columnar image is memoized on the table value *)
  let tbl = Table.of_array mixed_schema mixed_rows in
  check "of_table memoizes on the table" true
    (Batch.of_table tbl == Batch.of_table tbl)

let test_selection_edges () =
  let tbl = Table.of_array mixed_schema mixed_rows in
  let b = Batch.of_table tbl in
  let empty = Batch.with_sel b [||] in
  check "empty selection has length 0" true (Batch.length empty = 0);
  check "empty selection renders an empty table" true
    (Table.cardinality (Batch.to_table empty) = 0);
  let full = Batch.with_sel b [| 0; 1; 2 |] in
  check "full selection reproduces the table" true
    (byte_identical tbl (Batch.to_table full));
  let single = Batch.with_sel b [| 1 |] in
  check "single-row selection picks that physical row" true
    (Tuple.equal (Table.rows (Batch.to_table single)).(0) mixed_rows.(1));
  let reordered = Batch.with_sel b [| 2; 0 |] in
  check "selection order is logical order" true
    (let rows = Table.rows (Batch.to_table reordered) in
     Tuple.equal rows.(0) mixed_rows.(2) && Tuple.equal rows.(1) mixed_rows.(0));
  check "compact preserves the logical rows" true
    (byte_identical
       (Batch.to_table reordered)
       (Batch.to_table (Batch.compact reordered)))

let test_empty_batch () =
  let tbl = Table.of_array mixed_schema [||] in
  let b = Batch.of_table tbl in
  check "empty table gives a zero-length batch" true (Batch.length b = 0);
  check "empty batch roundtrips" true (byte_identical tbl (Batch.to_table b));
  check "filter over an empty batch selects nothing" true
    (Veval.filter b (Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Const (Value.Int 1)))
    = [||])

(* ---- per-operator differentials on encoded Figure 1 plans ---- *)

let works = Algebra.Rel "works"
let assign = Algebra.Rel "assign"
let col i = Expr.Col i
let str_const s = Expr.Const (Value.Str s)

let test_op_select () =
  let db = fig1_db () in
  check "select: vec = row" true
    (differential db
       (Algebra.Select (Expr.Cmp (Expr.Eq, col 1, str_const "SP"), works)));
  (* conjunct fusion: two conjuncts, second only sees survivors *)
  check "select with fused conjuncts: vec = row" true
    (differential db
       (Algebra.Select
          ( Expr.And
              ( Expr.Cmp (Expr.Eq, col 1, str_const "SP"),
                Expr.Cmp (Expr.Lt, col 2, Expr.Const (Value.Int 11)) ),
            works )))

let test_op_project () =
  let db = fig1_db () in
  check "project (expressions over periods): vec = row" true
    (differential db
       (Algebra.Project
          ( [
              Algebra.proj (col 0) "name";
              Algebra.proj
                (Expr.Binop (Expr.Sub, col 3, col 2))
                "len";
            ],
            works )))

let test_op_join () =
  let db = fig1_db () in
  (* equi-join on skill with interval-overlap residual: the hash path *)
  let overlap =
    Expr.And
      ( Expr.Cmp (Expr.Eq, col 1, Expr.Col 5),
        Expr.And
          ( Expr.Cmp (Expr.Lt, col 2, Expr.Col 7),
            Expr.Cmp (Expr.Lt, Expr.Col 6, col 3) ) )
  in
  check "hash join with residual: vec = row" true
    (differential db (Algebra.Join (overlap, works, assign)));
  (* no equi key: the nested-loop path *)
  let lt = Expr.Cmp (Expr.Lt, col 2, Expr.Col 6) in
  check "nested-loop join: vec = row" true
    (differential db (Algebra.Join (lt, works, assign)))

let test_op_union_diff () =
  let db = fig1_db () in
  check "union all: vec = row" true
    (differential db (Algebra.Union (works, works)));
  let sp = Algebra.Select (Expr.Cmp (Expr.Eq, col 1, str_const "SP"), works) in
  check "except all: vec = row" true
    (differential db (Algebra.Diff (works, sp)));
  check "except all (empty right): vec = row" true
    (differential db
       (Algebra.Diff (works, Algebra.ConstRel (Tkr_sqlenc.Period_enc.encoded_schema works_schema, []))))

let test_op_agg_distinct () =
  let db = fig1_db () in
  check "group-by aggregate: vec = row" true
    (differential db
       (Algebra.Agg
          ( [ Algebra.proj (col 1) "skill" ],
            [
              { Algebra.func = Agg.Count_star; agg_name = "cnt" };
              { Algebra.func = Agg.Min (col 2); agg_name = "mn" };
            ],
            works )));
  check "global aggregate over empty input: vec = row" true
    (differential db
       (Algebra.Agg
          ( [],
            [ { Algebra.func = Agg.Count_star; agg_name = "cnt" } ],
            Algebra.ConstRel (Tkr_sqlenc.Period_enc.encoded_schema works_schema, []) )));
  check "distinct: vec = row" true
    (differential db
       (Algebra.Distinct (Algebra.Project ([ Algebra.proj (col 1) "skill" ], works))))

let test_op_temporal () =
  let db = fig1_db () in
  check "coalesce: vec = row" true
    (differential db (Algebra.Coalesce works));
  check "split (shared child): vec = row" true
    (let w = works in
     differential db (Algebra.Split ([ 1 ], w, w)));
  check "split (two children): vec = row" true
    (differential db (Algebra.Split ([ 1 ], works, assign)));
  check "split_agg grouped: vec = row" true
    (differential db
       (Algebra.Split_agg
          {
            sa_group = [ 1 ];
            sa_aggs = [ { Algebra.func = Agg.Count_star; agg_name = "cnt" } ];
            sa_gap = None;
            sa_child = works;
          }));
  check "split_agg with gap filling: vec = row" true
    (differential db
       (Algebra.Split_agg
          {
            sa_group = [];
            sa_aggs = [ { Algebra.func = Agg.Count_star; agg_name = "cnt" } ];
            sa_gap = Some (0, 24);
            sa_child = works;
          }))

(* NULL-heavy inputs: every operator's NULL semantics must match the
   oracle (NULL join keys never match, NULLs group together, NULL
   predicate results drop the row) *)
let test_null_heavy () =
  let s =
    Schema.make
      [
        Schema.attr "k" Value.TInt;
        Schema.attr "v" Value.TInt;
        Schema.attr "b" Value.TInt;
        Schema.attr "e" Value.TInt;
      ]
  in
  let rows =
    [
      Tuple.make [ Value.Null; Value.Int 1; Value.Int 0; Value.Int 5 ];
      Tuple.make [ Value.Int 1; Value.Null; Value.Int 2; Value.Int 8 ];
      Tuple.make [ Value.Null; Value.Null; Value.Int 3; Value.Int 9 ];
      Tuple.make [ Value.Int 1; Value.Int 4; Value.Int 1; Value.Int 4 ];
    ]
  in
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "t" (Table.make s rows);
  let t = Algebra.Rel "t" in
  check "NULL keys: hash join never matches them (vec = row)" true
    (differential db
       (Algebra.Join (Expr.Cmp (Expr.Eq, col 0, Expr.Col 4), t, t)));
  check "NULL groups coincide in GROUP BY (vec = row)" true
    (differential db
       (Algebra.Agg
          ( [ Algebra.proj (col 0) "k" ],
            [ { Algebra.func = Agg.Sum (col 1); agg_name = "s" } ],
            t )));
  check "NULL predicate drops rows (vec = row)" true
    (differential db
       (Algebra.Select (Expr.Cmp (Expr.Gt, col 1, Expr.Const (Value.Int 0)), t)));
  check "IS NULL selects them (vec = row)" true
    (differential db (Algebra.Select (Expr.Is_null (col 0), t)));
  check "distinct with NULLs (vec = row)" true
    (differential db
       (Algebra.Distinct (Algebra.Project ([ Algebra.proj (col 0) "k" ], t))));
  check "except all with NULLs (vec = row)" true
    (differential db
       (Algebra.Diff (t, Algebra.Select (Expr.Is_null (col 0), t))))

(* ---- batch↔row boundary ---- *)

(* forcing every node to the row path turns Vexec into a wrapper around
   the oracle; forcing random subtrees exercises the of_table/to_table
   boundary in the middle of plans *)
let test_boundary_everywhere () =
  let db = fig1_db () in
  let q =
    Algebra.Coalesce
      (Algebra.Project
         ( [
             Algebra.proj (col 1) "skill";
             Algebra.proj (col 2) "b";
             Algebra.proj (col 3) "e";
           ],
           works ))
  in
  check "force_row everywhere: vec = row" true
    (differential ~force_row:(fun _ -> true) db q);
  check "force_row at scans only: vec = row" true
    (differential
       ~force_row:(function Algebra.Rel _ -> true | _ -> false)
       db q)

(* ---- qcheck: random plans are byte-identical, row vs vec ---- *)

let rewrite_random ((q, _tys), (wfacts, afacts)) =
  let works_p = NP.P.of_facts works_schema wfacts in
  let assign_p = NP.P.of_facts assign_schema afacts in
  let db = Database.create ~tmin:0 ~tmax:24 () in
  Database.add_period_table db "works" (PE.to_table works_p);
  Database.add_period_table db "assign" (PE.to_table assign_p);
  let lookup = function
    | "works" -> works_schema
    | "assign" -> assign_schema
    | n -> raise (Schema.Unknown n)
  in
  (db, Rewriter.rewrite ~options:Rewriter.optimized ~tmin:0 ~tmax:24 ~lookup q)

let prop_random_plans =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"random plan: vec rows = row-oracle rows (byte-identical)"
       Test_representation.arb
       (fun input ->
         let db, q' = rewrite_random input in
         differential db q'))

(* salt-driven pseudo-random boundary: structural hashing of the subtree
   is deterministic, so failures shrink and replay *)
let prop_random_boundary =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"random plan + random batch↔row boundary: vec = row"
       QCheck.(pair (make ~print:string_of_int QCheck.Gen.(0 -- 1000)) Test_representation.arb)
       (fun (salt, input) ->
         let db, q' = rewrite_random input in
         let force_row sub = Hashtbl.hash (salt, sub) mod 3 = 0 in
         differential ~force_row db q'))

(* ---- middleware end to end ---- *)

let setup_sql =
  {|
  CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
  INSERT INTO works VALUES
    ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
    ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
  CREATE TABLE assign (mach text, skill text, b int, e int) PERIOD (b, e);
  INSERT INTO assign VALUES
    ('M1', 'SP', 3, 12), ('M2', 'SP', 6, 14), ('M3', 'NS', 3, 16);
|}

let e2e_queries =
  [
    "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
    "SEQ VT (SELECT w.name, a.mach FROM works w JOIN assign a ON w.skill = \
     a.skill)";
    "SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)";
    "SEQ VT (SELECT DISTINCT skill FROM works)";
    "SELECT name, skill FROM works EXCEPT ALL SELECT name, skill FROM works \
     WHERE skill = 'NS'";
  ]

let test_middleware_engines () =
  let fresh engine =
    let m = M.create ~engine () in
    Tkr_engine.Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
    ignore (M.execute_script m setup_sql);
    m
  in
  let mrow = fresh M.Row and mvec = fresh M.Vec in
  check "middleware reports its engine" true
    (M.engine mrow = M.Row && M.engine mvec = M.Vec);
  List.iter
    (fun sql ->
      check (Printf.sprintf "middleware row = vec: %s" sql) true
        (byte_identical (M.query mrow sql) (M.query mvec sql)))
    e2e_queries;
  (* switching the engine on a live middleware affects later statements *)
  M.set_engine mrow M.Vec;
  check "set_engine switches the live middleware" true
    (M.engine mrow = M.Vec
    && byte_identical
         (M.query mrow (List.hd e2e_queries))
         (M.query mvec (List.hd e2e_queries)))

let suite =
  ( "vectorized engine (Tkr_vec)",
    [
      Alcotest.test_case "batch: roundtrips (typed, boxed, memoized)" `Quick
        test_roundtrip;
      Alcotest.test_case "batch: selection-vector edge cases" `Quick
        test_selection_edges;
      Alcotest.test_case "batch: empty batches" `Quick test_empty_batch;
      Alcotest.test_case "operator: select" `Quick test_op_select;
      Alcotest.test_case "operator: project" `Quick test_op_project;
      Alcotest.test_case "operator: join (hash + nested loop)" `Quick
        test_op_join;
      Alcotest.test_case "operator: union / except all" `Quick
        test_op_union_diff;
      Alcotest.test_case "operator: aggregate / distinct" `Quick
        test_op_agg_distinct;
      Alcotest.test_case "operator: coalesce / split / split_agg" `Quick
        test_op_temporal;
      Alcotest.test_case "NULL-heavy inputs" `Quick test_null_heavy;
      Alcotest.test_case "batch↔row boundary" `Quick test_boundary_everywhere;
      prop_random_plans;
      prop_random_boundary;
      Alcotest.test_case "middleware: row vs vec end to end" `Quick
        test_middleware_engines;
    ] )
