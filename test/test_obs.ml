(* Observability: metrics/span arithmetic, join-strategy reporting in
   EXPLAIN ANALYZE, and trace parity between the two execution backends
   (interpreted AST walker vs compiled closures). *)

module Metrics = Tkr_obs.Metrics
module Trace = Tkr_obs.Trace
module Clock = Tkr_obs.Clock
module M = Tkr_middleware.Middleware
module Database = Tkr_engine.Database
module Expr = Tkr_relation.Expr

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* --- (a) counter / timer / histogram / span arithmetic --- *)

let test_metrics () =
  let r = Metrics.create ~clock:Clock.frozen () in
  let c = Metrics.counter r "rows" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "counter" 42 (Metrics.value c);
  Alcotest.(check int) "find-or-create" 42 Metrics.(value (counter r "rows"));
  let t = Metrics.timer r "t" in
  Metrics.record_ns t 5L;
  Metrics.record_ns t 7L;
  Alcotest.(check int) "timer samples" 2 (Metrics.timer_samples t);
  Alcotest.(check int64) "timer total" 12L (Metrics.timer_total_ns t);
  let h = Metrics.histogram ~bounds:[| 10; 100 |] r "h" in
  List.iter (Metrics.observe h) [ 5; 50; 5000 ];
  Alcotest.(check int) "histogram n" 3 (Metrics.histogram_observations h);
  Alcotest.(check int) "histogram sum" 5055 (Metrics.histogram_sum h);
  Alcotest.(check (array int)) "buckets" [| 1; 1; 1 |]
    (Metrics.histogram_buckets h);
  let g = Metrics.gauge r "depth" in
  Metrics.set g 7;
  Metrics.gauge_add g 5;
  Metrics.gauge_add g (-2);
  Alcotest.(check int) "gauge level" 10 (Metrics.gauge_value g);
  Alcotest.(check int) "gauge find-or-create" 10
    Metrics.(gauge_value (gauge r "depth"));
  (match Metrics.view r "depth" with
  | Some (Metrics.V_gauge 10) -> ()
  | _ -> Alcotest.fail "gauge view");
  Metrics.reset r;
  Alcotest.(check int) "reset counter" 0 (Metrics.value c);
  Alcotest.(check int) "reset timer" 0 (Metrics.timer_samples t);
  Alcotest.(check int) "reset gauge" 0 (Metrics.gauge_value g);
  Alcotest.(check (list string))
    "names survive reset"
    [ "rows"; "t"; "h"; "depth" ]
    (Metrics.names r)

(* quantile estimation at the degenerate ends: nothing observed, a
   single populated bucket, and a boundless histogram *)
let test_quantile_edges () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 8 |] r "one_bucket" in
  Alcotest.(check int) "empty histogram" 0 (Metrics.histogram_quantile h 0.5);
  Metrics.observe h 3;
  (* the single observation sits in (0,8]; rank q interpolates inside *)
  Alcotest.(check int) "single obs p50" 4 (Metrics.histogram_quantile h 0.5);
  Alcotest.(check int) "single obs p100" 8 (Metrics.histogram_quantile h 1.0);
  (* out-of-range q clamps rather than faulting *)
  Alcotest.(check int) "q below 0 clamps" 0 (Metrics.histogram_quantile h (-1.));
  Alcotest.(check int) "q above 1 clamps" 8 (Metrics.histogram_quantile h 2.);
  (* only the overflow bucket populated: report the largest finite bound *)
  let ho = Metrics.histogram ~bounds:[| 8 |] r "overflow_only" in
  Metrics.observe ho 99;
  Alcotest.(check int) "overflow clamps" 8 (Metrics.histogram_quantile ho 0.5)

let test_spans () =
  let obs = Trace.create ~clock:Clock.frozen () in
  let result =
    Trace.with_span obs "root" (fun sp ->
        Trace.set_int sp "rows_in" 4;
        let x = Trace.with_span obs "child" (fun sp' ->
            Trace.set_str sp' "strategy" "hash";
            3)
        in
        Trace.set_int sp "rows_out" (x + 4);
        x)
  in
  Alcotest.(check int) "body result" 3 result;
  match Trace.roots obs with
  | [ root ] ->
      Alcotest.(check string) "root name" "root" (Trace.name root);
      Alcotest.(check int64) "frozen elapsed" 0L (Trace.elapsed_ns root);
      Alcotest.(check int) "one child" 1 (List.length (Trace.children root));
      (match Trace.find_attr root "rows_out" with
      | Some (Trace.Int 7) -> ()
      | _ -> Alcotest.fail "rows_out attr");
      (* insertion order: rows_in before rows_out *)
      Alcotest.(check (list string)) "attr order" [ "rows_in"; "rows_out" ]
        (List.map fst (Trace.attrs root));
      let child = List.hd (Trace.children root) in
      (match Trace.find_attr child "strategy" with
      | Some (Trace.Str "hash") -> ()
      | _ -> Alcotest.fail "strategy attr")
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_disabled () =
  (* the disabled collector runs the body with no span and records nothing *)
  let r =
    Trace.with_span Trace.disabled "op" (fun sp ->
        Alcotest.(check bool) "no span" true (sp = None);
        Trace.set_int sp "rows_out" 1;
        17)
  in
  Alcotest.(check int) "result" 17 r;
  Alcotest.(check bool) "not enabled" false (Trace.enabled Trace.disabled)

(* --- (b) EXPLAIN ANALYZE reports the join strategy --- *)

let plain_m () =
  let m = M.create () in
  ignore
    (M.execute_script m
       {|
       CREATE TABLE r (a int, x int);
       INSERT INTO r VALUES (1, 10), (2, 20);
       CREATE TABLE s (a int, y int);
       INSERT INTO s VALUES (1, 100), (3, 300);
     |});
  m

let test_join_strategy () =
  let m = plain_m () in
  (* sanity: the strategy reported must mirror Expr.equi_keys *)
  let equi = Expr.Cmp (Expr.Eq, Expr.Col 0, Expr.Col 2) in
  let theta = Expr.Cmp (Expr.Lt, Expr.Col 0, Expr.Col 2) in
  Alcotest.(check bool) "equi_keys finds keys" true
    (fst (Expr.equi_keys ~left_arity:2 equi) <> []);
  Alcotest.(check bool) "equi_keys finds none" true
    (fst (Expr.equi_keys ~left_arity:2 theta) = []);
  let out = M.explain_analyze m "SELECT * FROM r JOIN s ON r.a = s.a" in
  Alcotest.(check bool) "hash join reported" true
    (contains out "strategy=hash");
  Alcotest.(check bool) "hash join only" false
    (contains out "strategy=nested_loop");
  let out = M.explain_analyze m "SELECT * FROM r JOIN s ON r.a < s.a" in
  Alcotest.(check bool) "nested loop reported" true
    (contains out "strategy=nested_loop");
  Alcotest.(check bool) "nested loop only" false
    (contains out "strategy=hash")

let test_explain_statement () =
  (* EXPLAIN ANALYZE as a SQL statement, through execute; the tree carries
     rows in/out and the coalesce internals on the Figure 1b query *)
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
     |});
  match
    M.execute m
      "EXPLAIN ANALYZE (SEQ VT (SELECT count(*) AS cnt FROM works WHERE \
       skill = 'SP') ORDER BY vt_begin)"
  with
  | M.Rows _ -> Alcotest.fail "EXPLAIN ANALYZE must return a report"
  | M.Done out ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (contains out needle))
        [
          "coalesce"; "groups="; "segments="; "rows_in="; "rows_out=";
          "split_agg"; "scan(works)"; "result: 7 rows"; "execute";
        ]

(* --- (c) interpreted and compiled backends emit identical traces --- *)

let seed_m backend =
  let m = M.create ~backend () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
       CREATE TABLE assign (mach text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO assign VALUES
         ('M1', 'SP', 3, 12), ('M2', 'SP', 6, 14), ('M3', 'NS', 3, 16);
     |});
  m

let trace_json m sql =
  let p = M.prepare m sql in
  (* frozen clock: every elapsed_ns is 0, so the JSON compares equal iff
     the operator tree and every cardinality counter agree *)
  let obs = Trace.create ~clock:Clock.frozen () in
  ignore (M.run_prepared ~obs m p);
  String.concat "\n" (List.map Trace.to_json (Trace.roots obs))

let test_backend_trace_parity () =
  let mi = seed_m M.Interpreted in
  let mc = seed_m M.Compiled in
  List.iter
    (fun sql ->
      Alcotest.(check string) sql (trace_json mi sql) (trace_json mc sql))
    [
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
      "SEQ VT (SELECT w.name, a.mach FROM works w JOIN assign a ON \
       w.skill = a.skill)";
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)";
      "SEQ VT (SELECT DISTINCT skill FROM works)";
      "SEQ VT AS OF 9 (SELECT name FROM works)";
      "SELECT name, count(*) AS n FROM works GROUP BY name";
    ]

let suite =
  ( "observability",
    [
      Alcotest.test_case "metrics arithmetic" `Quick test_metrics;
      Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
      Alcotest.test_case "span trees" `Quick test_spans;
      Alcotest.test_case "disabled collector" `Quick test_disabled;
      Alcotest.test_case "join strategy in EXPLAIN ANALYZE" `Quick
        test_join_strategy;
      Alcotest.test_case "EXPLAIN ANALYZE statement" `Quick
        test_explain_statement;
      Alcotest.test_case "backend trace parity" `Quick
        test_backend_trace_parity;
    ] )
