(* The query server (Tkr_serve): wire-protocol round-trips, the
   snapshot-aware result cache (hits, version invalidation, LRU
   eviction), per-table version counters, admission-control semantics,
   thread-safety of one shared middleware hammered from four domains
   (alcotest + qcheck op mix), and end-to-end server/client byte-identity
   against in-process execution with the cache on and off. *)

module Value = Tkr_relation.Value
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module M = Tkr_middleware.Middleware
module Wire = Tkr_serve.Wire
module Cache = Tkr_serve.Cache
module Admission = Tkr_serve.Admission
module Server = Tkr_serve.Server
module Client = Tkr_serve.Client
module Json = Tkr_obs.Json
module Tel = Tkr_tel.Tel
module W = Tkr_workload.Employees
module Q = Tkr_workload.Queries

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---- wire protocol ---- *)

let sample_table () =
  let schema =
    Schema.make
      [
        Schema.attr "ok" Value.TBool;
        Schema.attr "n" Value.TInt;
        Schema.attr "x" Value.TFloat;
        Schema.attr "s" Value.TStr;
      ]
  in
  Table.of_array schema
    [|
      Tuple.of_array
        [| Value.Bool true; Value.Int 42; Value.Float 0.1; Value.Str "a b" |];
      Tuple.of_array
        [| Value.Null; Value.Int (-7); Value.Float 1e-300; Value.Str "" |];
      Tuple.of_array
        [|
          Value.Bool false; Value.Null; Value.Float (-3.75); Value.Str "q'z";
        |];
    |]

let test_wire_table_roundtrip () =
  let t = sample_table () in
  let j = Wire.table_to_json t in
  let t' = Wire.table_of_json (Json.of_string (Json.to_string j)) in
  check "schema survives" true (Table.schema t' = Table.schema t);
  check "rows survive exactly (incl. floats and nulls)" true
    (Array.for_all2 Tuple.equal (Table.rows t) (Table.rows t'));
  (* the payload is the cache's stored unit: serializing again must give
     the same bytes, or cached responses would not be byte-identical *)
  check_str "payload bytes are stable"
    (Wire.body_to_payload (Wire.Rows t))
    (Wire.body_to_payload (Wire.Rows t'))

let test_wire_frames () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally:(fun () -> close a; close b) @@ fun () ->
  Wire.write_frame a "hello";
  Wire.write_frame a "";
  Wire.write_frame a (String.make 100_000 'x');
  check "frame 1" true (Wire.read_frame b = Some "hello");
  check "empty frame" true (Wire.read_frame b = Some "");
  check "large frame" true (Wire.read_frame b = Some (String.make 100_000 'x'));
  Unix.close a;
  check "clean EOF is None" true (Wire.read_frame b = None)

let test_wire_request_response () =
  let req = Wire.request ~id:7 ~deadline_ms:250 ~trace:true "SELECT 1" in
  let req' =
    Wire.request_of_json (Json.of_string (Json.to_string (Wire.request_to_json req)))
  in
  check "request round-trips" true (req' = req);
  (* the trace-id field round-trips when present and is absent otherwise *)
  let traced = Wire.request ~id:8 ~trace_id:"t1-9" "SELECT 2" in
  let traced' =
    Wire.request_of_json
      (Json.of_string (Json.to_string (Wire.request_to_json traced)))
  in
  check "trace id round-trips" true (traced'.Wire.trace_id = Some "t1-9");
  check "no trace id by default" true (req.Wire.trace_id = None);
  let t = sample_table () in
  let payload = Wire.body_to_payload (Wire.Rows t) in
  let frame = Wire.ok_frame ~id:7 ~cached:true ~elapsed_us:12 payload in
  let rsp = Wire.response_of_string frame in
  check_int "response id" 7 rsp.Wire.rsp_id;
  check "response cached flag" true rsp.Wire.cached;
  check "response without trace id" true (rsp.Wire.rsp_trace_id = None);
  let traced_frame =
    Wire.ok_frame ~id:7 ~cached:true ~elapsed_us:12 ~trace_id:"t1-9" payload
  in
  check "response trace id" true
    ((Wire.response_of_string traced_frame).Wire.rsp_trace_id = Some "t1-9");
  (* the splice leaves the payload bytes untouched: minus the trace_id
     field the frames are identical, so cached responses stay
     byte-identical whether or not telemetry is on *)
  check "traced frame is the plain frame plus one field" true
    (String.length traced_frame
     = String.length frame + String.length ",\"trace_id\":\"t1-9\"");
  (match rsp.Wire.body with
  | Ok (Wire.Rows t') ->
      check "response rows" true
        (Array.for_all2 Tuple.equal (Table.rows t) (Table.rows t'))
  | _ -> Alcotest.fail "expected rows");
  let ef_traced =
    Wire.error_frame ~id:3 ~trace_id:"t2-4"
      { Wire.code = Wire.Server_busy; message = "queue full" }
  in
  check "error frame trace id" true
    ((Wire.response_of_string ef_traced).Wire.rsp_trace_id = Some "t2-4");
  let ef =
    Wire.error_frame ~id:3
      { Wire.code = Wire.Server_busy; message = "queue full" }
  in
  match (Wire.response_of_string ef).Wire.body with
  | Error { Wire.code = Wire.Server_busy; message = "queue full" } -> ()
  | _ -> Alcotest.fail "expected SERVER_BUSY error"

(* ---- result cache ---- *)

let test_cache_hit_and_invalidation () =
  let c = Cache.create ~max_bytes:10_000 in
  let deps = [ ("works", 1); ("emp", 3) ] in
  check "miss on empty" true (Cache.find c ~key:"k" ~deps = None);
  ignore (Cache.add c ~key:"k" ~deps "payload-bytes");
  check "hit on same versions" true
    (Cache.find c ~key:"k" ~deps = Some "payload-bytes");
  (* dependency order must not matter *)
  check "hit is order-insensitive" true
    (Cache.find c ~key:"k" ~deps:(List.rev deps) = Some "payload-bytes");
  (* a bumped version invalidates exactly this entry *)
  ignore (Cache.add c ~key:"other" ~deps:[ ("salaries", 2) ] "other-bytes");
  check "stale versions invalidate" true
    (Cache.find c ~key:"k" ~deps:[ ("works", 2); ("emp", 3) ] = None);
  check "unrelated entry survives" true
    (Cache.find c ~key:"other" ~deps:[ ("salaries", 2) ] = Some "other-bytes");
  let s = Cache.stats c in
  check_int "one invalidation" 1 s.Cache.invalidations;
  check_int "entries" 1 s.Cache.entries

let test_cache_lru_eviction () =
  let c = Cache.create ~max_bytes:30 in
  check_int "no eviction adding a" 0
    (Cache.add c ~key:"a" ~deps:[] (String.make 10 'a'));
  check_int "no eviction adding b" 0
    (Cache.add c ~key:"b" ~deps:[] (String.make 10 'b'));
  check_int "no eviction adding c" 0
    (Cache.add c ~key:"c" ~deps:[] (String.make 10 'c'));
  (* touch a so b is the least recently used *)
  check "a hits" true (Cache.find c ~key:"a" ~deps:[] <> None);
  check_int "adding d evicts one" 1
    (Cache.add c ~key:"d" ~deps:[] (String.make 10 'd'));
  check "LRU victim b evicted" true (Cache.find c ~key:"b" ~deps:[] = None);
  check "recently used a survives" true (Cache.find c ~key:"a" ~deps:[] <> None);
  check "newest d present" true (Cache.find c ~key:"d" ~deps:[] <> None);
  let s = Cache.stats c in
  check_int "one eviction" 1 s.Cache.evictions;
  check "byte budget holds" true (s.Cache.bytes <= 30);
  (* a payload alone above the budget is not stored *)
  check_int "oversized add evicts nothing" 0
    (Cache.add c ~key:"huge" ~deps:[] (String.make 100 'h'));
  check "oversized payload not stored" true
    (Cache.find c ~key:"huge" ~deps:[] = None);
  (* disabled cache: every lookup misses, add is a no-op *)
  let off = Cache.create ~max_bytes:0 in
  check_int "disabled add is a no-op" 0 (Cache.add off ~key:"k" ~deps:[] "p");
  check "disabled cache never hits" true (Cache.find off ~key:"k" ~deps:[] = None);
  check "disabled reports disabled" false (Cache.enabled off)

let test_cache_invalidate_table () =
  let c = Cache.create ~max_bytes:10_000 in
  ignore (Cache.add c ~key:"q1" ~deps:[ ("works", 1) ] "p1");
  ignore (Cache.add c ~key:"q2" ~deps:[ ("works", 1); ("emp", 1) ] "p2");
  ignore (Cache.add c ~key:"q3" ~deps:[ ("emp", 1) ] "p3");
  check_int "two entries dropped" 2 (Cache.invalidate_table c "WORKS");
  check "q3 survives" true (Cache.find c ~key:"q3" ~deps:[ ("emp", 1) ] <> None);
  check_int "entries after" 1 (Cache.stats c).Cache.entries

(* ---- per-table version counters ---- *)

let test_database_versions () =
  let db = Database.create () in
  check_int "unknown name is version 0" 0 (Database.version db "t");
  let schema = Schema.make [ Schema.attr "x" Value.TInt ] in
  let row n = Tuple.of_array [| Value.Int n |] in
  Database.add_table db "t" (Table.of_array schema [| row 1 |]);
  check_int "load bumps" 1 (Database.version db "t");
  Database.append_rows db "t" [ row 2 ];
  check_int "insert bumps" 2 (Database.version db "t");
  Database.set_rows db "t" [| row 9 |];
  check_int "update bumps" 3 (Database.version db "t");
  check_int "case-insensitive" 3 (Database.version db "T");
  Database.remove_table db "t";
  check_int "drop bumps, never resets" 4 (Database.version db "t");
  Database.add_table db "t" (Table.of_array schema [| row 1 |]);
  check_int "reload continues monotone" 5 (Database.version db "t")

(* ---- middleware epoch (prepared-plan staleness signal) ---- *)

let test_middleware_epoch () =
  let m = M.create () in
  let e0 = M.epoch m in
  ignore (M.execute m "CREATE TABLE ee (x int)");
  let e1 = M.epoch m in
  check "DDL bumps the epoch" true (e1 > e0);
  ignore (M.execute m "INSERT INTO ee VALUES (1)");
  let e2 = M.epoch m in
  check "DML bumps the epoch" true (e2 > e1);
  ignore (M.query m "SELECT x FROM ee");
  check_int "queries leave the epoch unchanged" e2 (M.epoch m);
  M.set_optimize m true;
  check "settings changes bump the epoch" true (M.epoch m > e2);
  let e3 = M.epoch m in
  let schema = Schema.make [ Schema.attr "x" Value.TInt ] in
  Database.add_table (M.database m) "direct" (Table.of_array schema [||]);
  check "direct database mutation bumps the epoch" true (M.epoch m > e3)

(* ---- admission control ---- *)

let test_admission_busy_and_drain () =
  let q = Admission.create ~depth:2 in
  check "accept 1" true (Admission.submit q 1 = `Accepted);
  check "accept 2" true (Admission.submit q 2 = `Accepted);
  check "high-water rejects" true (Admission.submit q 3 = `Busy);
  check "take 1" true (Admission.take q = Some 1);
  check "freed capacity accepts" true (Admission.submit q 4 = `Accepted);
  Admission.drain q;
  check "draining rejects new work" true (Admission.submit q 5 = `Draining);
  (* accepted work is still handed out after drain *)
  check "drain hands out queued work" true (Admission.take q = Some 2);
  check "drain hands out queued work" true (Admission.take q = Some 4);
  check "dry after drain is None" true (Admission.take q = None)

let test_admission_drain_wakes_takers () =
  let q = Admission.create ~depth:4 in
  let got = Atomic.make `Waiting in
  let th =
    Thread.create
      (fun () ->
        Atomic.set got
          (match Admission.take q with Some _ -> `Job | None -> `Drained))
      ()
  in
  Thread.delay 0.05;
  Admission.drain q;
  Thread.join th;
  check "blocked taker wakes with None" true (Atomic.get got = `Drained)

(* ---- middleware hammered from four domains ---- *)

let hammer_queries =
  [ Q.lookup "join-1" Q.employee; Q.lookup "agg-1" Q.employee ]

let test_middleware_domain_hammer () =
  let m = M.create ~db:(W.generate { (W.scaled 40) with W.tmax = 600 }) () in
  (* serial reference results, computed before the hammer *)
  let expected = List.map (fun sql -> M.query m sql) hammer_queries in
  let runs_before = (M.totals m).M.runs in
  let per_domain = 5 in
  let mismatches = Atomic.make 0 in
  let work () =
    List.iter2
      (fun sql want ->
        let p = M.prepare m sql in
        for _ = 1 to per_domain do
          let got = M.run_prepared m p in
          if
            not
              (Array.length (Table.rows got) = Array.length (Table.rows want)
              && Array.for_all2 Tuple.equal (Table.rows got) (Table.rows want))
          then Atomic.incr mismatches
        done)
      hammer_queries expected
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iter Domain.join domains;
  check_int "every concurrent result matches the serial reference" 0
    (Atomic.get mismatches);
  (* totals are mutex-guarded: no lost updates under contention *)
  check_int "totals.runs counted every execution"
    (runs_before + (4 * per_domain * List.length hammer_queries))
    (M.totals m).M.runs

let test_middleware_dml_hammer () =
  let m = M.create () in
  ignore
    (M.execute_script m
       {|CREATE TABLE h0 (x int); CREATE TABLE h1 (x int);
         CREATE TABLE q0 (x int); INSERT INTO q0 VALUES (1), (2), (3);|});
  let inserts = 25 in
  let writer k () =
    for i = 1 to inserts do
      ignore
        (M.execute m (Printf.sprintf "INSERT INTO h%d VALUES (%d)" k i))
    done
  in
  let errors = Atomic.make 0 in
  let reader () =
    for _ = 1 to 40 do
      match M.query m "SELECT x FROM q0" with
      | t -> if Table.cardinality t <> 3 then Atomic.incr errors
      | exception _ -> Atomic.incr errors
    done
  in
  let domains =
    [ Domain.spawn (writer 0); Domain.spawn (writer 1); Domain.spawn reader;
      Domain.spawn reader ]
  in
  List.iter Domain.join domains;
  check_int "readers always saw a consistent catalog" 0 (Atomic.get errors);
  check_int "writer 0 rows all landed" inserts
    (Table.cardinality (M.query m "SELECT x FROM h0"));
  check_int "writer 1 rows all landed" inserts
    (Table.cardinality (M.query m "SELECT x FROM h1"));
  check "versions bumped once per DML" true
    (Database.version (M.database m) "h0" >= inserts)

(* qcheck: a random mix of concurrent per-domain inserts and shared-table
   queries keeps the middleware consistent — each domain's private table
   ends with exactly its own inserts, and shared reads never tear *)
let qcheck_op_mix =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:15 ~name:"concurrent op mix keeps middleware consistent"
       QCheck.(list_of_size (Gen.int_range 1 12) (QCheck.int_range 0 2))
       (fun ops ->
         let m = M.create () in
         ignore
           (M.execute_script m
              {|CREATE TABLE s (x int); INSERT INTO s VALUES (10), (20);|});
         let n_domains = 4 in
         List.iteri
           (fun k _ ->
             ignore (M.execute m (Printf.sprintf "CREATE TABLE p%d (x int)" k)))
           (List.init n_domains Fun.id);
         let bad = Atomic.make false in
         let work k () =
           let mine = ref 0 in
           List.iter
             (fun op ->
               match op with
               | 0 ->
                   incr mine;
                   ignore
                     (M.execute m
                        (Printf.sprintf "INSERT INTO p%d VALUES (%d)" k !mine))
               | 1 ->
                   if Table.cardinality (M.query m "SELECT x FROM s") <> 2 then
                     Atomic.set bad true
               | _ -> (
                   match
                     M.query m (Printf.sprintf "SELECT x FROM p%d" k)
                   with
                   | t ->
                       if Table.cardinality t <> !mine then Atomic.set bad true
                   | exception _ -> Atomic.set bad true))
             ops;
           if
             Table.cardinality (M.query m (Printf.sprintf "SELECT x FROM p%d" k))
             <> !mine
           then Atomic.set bad true
         in
         let domains = List.init n_domains (fun k -> Domain.spawn (work k)) in
         List.iter Domain.join domains;
         not (Atomic.get bad)))

(* ---- end-to-end: server + client ---- *)

(* the queries the acceptance gate cares about: EXCEPT ALL (bag
   difference) and aggregations, plus a join *)
let e2e_queries =
  List.map
    (fun n -> (n, Q.lookup n Q.employee))
    [ "join-1"; "agg-1"; "agg-3"; "diff-1"; "diff-2" ]

let with_server ?(cache_mb = 16) ?(tel = Tel.disabled) f =
  let m = M.create ~db:(W.generate { (W.scaled 40) with W.tmax = 600 }) () in
  let srv =
    Server.start
      ~config:
        {
          Server.default_config with
          port = 0;
          cache_mb;
          max_sessions = 16;
          workers = 4;
        }
      ~tel m
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      M.shutdown m)
    (fun () -> f m srv)

let render = function
  | M.Rows t -> Table.to_text ~max_rows:1000 t
  | M.Done msg -> msg ^ "\n"

let render_rsp (rsp : Wire.response) =
  match rsp.Wire.body with
  | Ok (Wire.Rows t) -> Table.to_text ~max_rows:1000 t
  | Ok (Wire.Message msg) -> msg ^ "\n"
  | Error e -> Alcotest.fail ("unexpected server error: " ^ e.Wire.message)

let test_e2e_byte_identity_cached () =
  with_server @@ fun m srv ->
  let expected = List.map (fun (_, sql) -> render (M.execute m sql)) e2e_queries in
  Client.with_client ~port:(Server.port srv) @@ fun c ->
  List.iter2
    (fun (name, sql) want ->
      let first = Client.run_exn c sql in
      check (name ^ " first run not cached") false first.Wire.cached;
      check_str (name ^ " cold bytes") want (render_rsp first);
      let second = Client.run_exn c sql in
      check (name ^ " replay is a cache hit") true second.Wire.cached;
      check_str (name ^ " cached bytes identical") want (render_rsp second))
    e2e_queries expected;
  let s = Server.cache_stats srv in
  check "cache saw the hits" true (s.Cache.hits >= List.length e2e_queries)

let test_e2e_byte_identity_cache_off () =
  with_server ~cache_mb:0 @@ fun m srv ->
  let expected = List.map (fun (_, sql) -> render (M.execute m sql)) e2e_queries in
  Client.with_client ~port:(Server.port srv) @@ fun c ->
  List.iter2
    (fun (name, sql) want ->
      let a = Client.run_exn c sql in
      let b = Client.run_exn c sql in
      check (name ^ " never cached") false (a.Wire.cached || b.Wire.cached);
      check_str (name ^ " bytes (1)") want (render_rsp a);
      check_str (name ^ " bytes (2)") want (render_rsp b))
    e2e_queries expected

let test_e2e_concurrent_clients () =
  with_server @@ fun m srv ->
  let expected = List.map (fun (_, sql) -> render (M.execute m sql)) e2e_queries in
  let port = Server.port srv in
  let n_clients = 8 in
  let bad = Atomic.make 0 in
  let worker () =
    try
      Client.with_client ~port @@ fun c ->
      List.iter2
        (fun (_, sql) want ->
          if render_rsp (Client.run_exn c sql) <> want then Atomic.incr bad)
        e2e_queries expected
    with _ -> Atomic.incr bad
  in
  let threads = List.init n_clients (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  check_int "8 concurrent connections, all byte-identical" 0 (Atomic.get bad)

let test_e2e_dml_invalidates () =
  with_server @@ fun _m srv ->
  Client.with_client ~port:(Server.port srv) @@ fun c ->
  ignore (Client.run_exn c "CREATE TABLE kv (x int)");
  ignore (Client.run_exn c "INSERT INTO kv VALUES (1), (2)");
  let q = "SELECT x FROM kv" in
  let r1 = Client.run_exn c q in
  check "cold" false r1.Wire.cached;
  let r2 = Client.run_exn c q in
  check "warm" true r2.Wire.cached;
  ignore (Client.run_exn c "INSERT INTO kv VALUES (3)");
  let r3 = Client.run_exn c q in
  check "DML invalidated the entry" false r3.Wire.cached;
  (match r3.Wire.body with
  | Ok (Wire.Rows t) -> check_int "new row visible" 3 (Table.cardinality t)
  | _ -> Alcotest.fail "expected rows");
  let r4 = Client.run_exn c q in
  check "re-cached after recompute" true r4.Wire.cached;
  check_int "one invalidation recorded" 1
    (Server.cache_stats srv).Cache.invalidations

(* A session's cached prepared plan bakes catalog state: snapshot plans
   bake the time bounds of prepare time, AS OF pushdown bakes schema
   arities.  After DML that extends the time bounds, or DROP+CREATE that
   changes a schema, re-executing the same statement text on the same
   connection must return the bytes a fresh preparation computes — the
   session must notice the stale plan and re-prepare. *)
let test_e2e_session_reprepare () =
  with_server @@ fun m srv ->
  Client.with_client ~port:(Server.port srv) @@ fun c ->
  ignore (Client.run_exn c "CREATE TABLE ep (x int, b int, e int) PERIOD (b, e)");
  ignore (Client.run_exn c "INSERT INTO ep VALUES (1, 0, 10)");
  (* count-per-snapshot: the rewrite constructs whole-domain rows from
     the tmin/tmax of prepare time, so a stale plan is visibly wrong *)
  let agg = "SEQ VT (SELECT count(*) AS cnt FROM ep)" in
  let slice = "SEQ VT AS OF 5 (SELECT x FROM ep)" in
  check_str "snapshot agg before DML" (render (M.execute m agg))
    (render_rsp (Client.run_exn c agg));
  check_str "timeslice before DML" (render (M.execute m slice))
    (render_rsp (Client.run_exn c slice));
  (* extend the time domain well past the baked tmax *)
  ignore (Client.run_exn c "INSERT INTO ep VALUES (2, 5, 5000)");
  check_str "snapshot agg after time bounds moved (re-prepared)"
    (render (M.execute m agg))
    (render_rsp (Client.run_exn c agg));
  (* change the table's schema arity underneath the cached plans *)
  ignore (Client.run_exn c "DROP TABLE ep");
  ignore
    (Client.run_exn c "CREATE TABLE ep (x int, y int, b int, e int) PERIOD (b, e)");
  ignore (Client.run_exn c "INSERT INTO ep VALUES (7, 8, 0, 20)");
  check_str "snapshot agg after DROP+CREATE (re-prepared)"
    (render (M.execute m agg))
    (render_rsp (Client.run_exn c agg));
  check_str "timeslice after DROP+CREATE (re-prepared)"
    (render (M.execute m slice))
    (render_rsp (Client.run_exn c slice))

(* Pipelined requests on one connection: the server must execute them in
   arrival order (an INSERT is visible to the SELECT behind it) and reply
   in request order, even with a pool of workers *)
let test_e2e_pipelined_ordering () =
  with_server @@ fun _m srv ->
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect ~finally:close @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port srv));
  (match Wire.read_frame fd with
  | Some _ -> ()
  | None -> Alcotest.fail "no greeting");
  let send id stmt =
    Wire.write_frame fd
      (Json.to_string (Wire.request_to_json (Wire.request ~id stmt)))
  in
  let inserts = 10 in
  (* fire everything without reading a single response *)
  send 1 "CREATE TABLE pipe (x int)";
  for i = 1 to inserts do
    send (1 + i) (Printf.sprintf "INSERT INTO pipe VALUES (%d)" i)
  done;
  send (inserts + 2) "SELECT x FROM pipe";
  let read_rsp expect_id =
    match Wire.read_frame fd with
    | None -> Alcotest.fail "server closed mid-pipeline"
    | Some frame ->
        let rsp = Wire.response_of_string frame in
        check_int "responses arrive in request order" expect_id rsp.Wire.rsp_id;
        rsp
  in
  for i = 1 to inserts + 1 do
    match (read_rsp i).Wire.body with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("pipelined statement failed: " ^ e.Wire.message)
  done;
  match (read_rsp (inserts + 2)).Wire.body with
  | Ok (Wire.Rows t) ->
      check_int "pipelined SELECT sees every prior INSERT" inserts
        (Table.cardinality t)
  | Ok _ -> Alcotest.fail "expected rows"
  | Error e -> Alcotest.fail ("pipelined SELECT failed: " ^ e.Wire.message)

let test_e2e_error_codes () =
  with_server @@ fun _m srv ->
  Client.with_client ~port:(Server.port srv) @@ fun c ->
  (match (Client.run c "SELEC nonsense").Wire.body with
  | Error { Wire.code = Wire.Parse_error; _ } -> ()
  | _ -> Alcotest.fail "expected PARSE_ERROR");
  (match (Client.run c "SELECT x FROM missing").Wire.body with
  | Error { Wire.code = Wire.Runtime_error; _ } -> ()
  | _ -> Alcotest.fail "expected RUNTIME_ERROR");
  (* deadline 0: always already expired when a worker picks it up *)
  match (Client.run ~deadline_ms:0 c "SELECT x FROM missing").Wire.body with
  | Error { Wire.code = Wire.Deadline_exceeded; _ } -> ()
  | _ -> Alcotest.fail "expected DEADLINE_EXCEEDED"

let test_e2e_session_limit () =
  let m = M.create () in
  let srv =
    Server.start
      ~config:{ Server.default_config with port = 0; max_sessions = 1 }
      m
  in
  Fun.protect ~finally:(fun () -> Server.stop srv; M.shutdown m) @@ fun () ->
  Client.with_client ~port:(Server.port srv) @@ fun _c1 ->
  match Client.connect ~port:(Server.port srv) () with
  | c2 ->
      Client.close c2;
      Alcotest.fail "expected SESSION_LIMIT rejection"
  | exception Client.Server_error { Wire.code = Wire.Session_limit; _ } -> ()

let test_e2e_graceful_stop () =
  let m = M.create () in
  let srv = Server.start ~config:{ Server.default_config with port = 0 } m in
  let c = Client.connect ~port:(Server.port srv) () in
  ignore (Client.run_exn c "CREATE TABLE g (x int)");
  (* stop with a connection open: accepted work finished, reader woken *)
  Server.stop srv;
  check "stop is idempotent" true (Server.stopping srv);
  Server.stop srv;
  (match Client.run c "SELECT x FROM g" with
  | _ -> ()
  | exception _ -> () (* connection torn down by drain is fine *));
  Client.close c;
  M.shutdown m

(* ---- telemetry e2e: every request's log lines carry the trace id the
   response echoed, cache dispositions and invalidations are logged, and
   the scrape commands answer on a live connection ---- *)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let jstr j key =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "missing string field %s" key)

let msg_body (rsp : Wire.response) =
  match rsp.Wire.body with
  | Ok (Wire.Message m) -> m
  | _ -> Alcotest.fail "expected a message body"

let test_e2e_telemetry () =
  let lock = Mutex.create () in
  let events = ref [] in
  let tel =
    Tel.create
      (Tel.Fn
         (fun j ->
           Mutex.lock lock;
           events := j :: !events;
           Mutex.unlock lock))
  in
  let miss_id = ref "" and hit_id = ref "" in
  (with_server ~tel @@ fun _m srv ->
   Client.with_client ~port:(Server.port srv) @@ fun c ->
   (* a client-supplied trace id echoes on the response *)
   let r1 = Client.run_exn ~trace_id:"cli-1" c "CREATE TABLE kv (x int)" in
   check "client trace id echoed" true (r1.Wire.rsp_trace_id = Some "cli-1");
   ignore (Client.run_exn c "INSERT INTO kv VALUES (1), (2)");
   let q = "SELECT x FROM kv" in
   let miss = Client.run_exn c q in
   let hit = Client.run_exn c q in
   check "warm replay cached" true hit.Wire.cached;
   (* the server mints ids when the client sends none *)
   (match (miss.Wire.rsp_trace_id, hit.Wire.rsp_trace_id) with
   | Some a, Some b ->
       miss_id := a;
       hit_id := b;
       check "generated ids distinct" true (a <> b)
   | _ -> Alcotest.fail "expected server-generated trace ids");
   (* invalidate the cached entry so the log sees it *)
   ignore (Client.run_exn c "INSERT INTO kv VALUES (3)");
   check "post-DML replay recomputes" false (Client.run_exn c q).Wire.cached;
   (* scrape surface, all on the same connection *)
   let metrics = msg_body (Client.run_exn c "METRICS") in
   List.iter
     (fun needle -> check ("metrics has " ^ needle) true (contains metrics needle))
     [
       "# TYPE serve_queue_depth gauge";
       "serve_inflight_requests";
       "serve_sessions 1";
       "serve_cache_entries";
       "serve_cache_bytes";
       "serve_pool_domains";
       "uptime_seconds";
       "tkr_build_info";
       "tkr_idx_built";
       "tkr_idx_probes";
       "# EOF\n";
     ];
   let health = Json.of_string (msg_body (Client.run_exn c "health")) in
   check_str "health ready" "ready" (jstr health "status");
   let stats = Json.of_string (msg_body (Client.run_exn c "STATS")) in
   let requests =
     match Option.bind (Json.member "requests" stats) Json.to_int_opt with
     | Some n -> n
     | None -> Alcotest.fail "stats missing requests"
   in
   check "stats counted the requests" true (requests >= 5);
   check "stats have latency quantiles" true
     (Json.member "latency_us" stats <> None);
   match Json.member "index" stats with
   | Some idx ->
       check "stats index enabled flag" true
         (Json.member "enabled" idx = Some (Json.Bool true));
       check "stats index counters present" true
         (Json.member "built" idx <> None && Json.member "probes" idx <> None)
   | None -> Alcotest.fail "stats missing index object");
  (* the server is stopped: the log is complete *)
  let evs = List.rev !events in
  let by name = List.filter (fun j -> jstr j "event" = name) evs in
  let ids name = List.sort_uniq compare (List.map (fun j -> jstr j "trace_id") (by name)) in
  check "conn_open logged" true (by "conn_open" <> []);
  check "conn_close logged" true (by "conn_close" <> []);
  (* every request_start pairs with a request_finish on the same id, and
     the ids the responses carried are among them *)
  Alcotest.(check (list string))
    "start/finish ids pair" (ids "request_start") (ids "request_finish");
  let finish_ids = ids "request_finish" in
  List.iter
    (fun id -> check ("response id " ^ id ^ " logged") true (List.mem id finish_ids))
    [ "cli-1"; !miss_id; !hit_id ];
  (* cache disposition events share one plan fingerprint *)
  (match (by "cache_miss", by "cache_hit") with
  | miss :: _, [ hit ] ->
      check_str "fingerprints match" (jstr miss "fingerprint")
        (jstr hit "fingerprint")
  | _ -> Alcotest.fail "expected cache_miss and exactly one cache_hit");
  (* the post-cache INSERT shows up as an invalidation on the dep table *)
  check "invalidation logged for kv" true
    (List.exists (fun j -> jstr j "table" = "kv") (by "invalidation"));
  check "ddl bumped the epoch" true (by "epoch_bump" <> []);
  (match by "drain" with
  | [ d ] -> check_str "drain reason" "stop" (jstr d "reason")
  | _ -> Alcotest.fail "expected one drain event")

let test_e2e_no_trace_when_tel_off () =
  with_server @@ fun _m srv ->
  Client.with_client ~port:(Server.port srv) @@ fun c ->
  ignore (Client.run_exn c "CREATE TABLE plain (x int)");
  let r = Client.run_exn c "SELECT x FROM plain" in
  check "no trace id minted when telemetry is off" true
    (r.Wire.rsp_trace_id = None);
  (* a client-supplied id still echoes, telemetry or not *)
  let r2 = Client.run_exn ~trace_id:"want-this" c "SELECT x FROM plain" in
  check "client id echoes without telemetry" true
    (r2.Wire.rsp_trace_id = Some "want-this")

let suite =
  ( "serve",
    [
      Alcotest.test_case "wire: table round-trip" `Quick test_wire_table_roundtrip;
      Alcotest.test_case "wire: frame I/O" `Quick test_wire_frames;
      Alcotest.test_case "wire: request/response" `Quick test_wire_request_response;
      Alcotest.test_case "cache: hit and version invalidation" `Quick
        test_cache_hit_and_invalidation;
      Alcotest.test_case "cache: LRU eviction and budget" `Quick
        test_cache_lru_eviction;
      Alcotest.test_case "cache: invalidate_table" `Quick
        test_cache_invalidate_table;
      Alcotest.test_case "database: version counters" `Quick
        test_database_versions;
      Alcotest.test_case "middleware: epoch staleness signal" `Quick
        test_middleware_epoch;
      Alcotest.test_case "admission: busy and drain" `Quick
        test_admission_busy_and_drain;
      Alcotest.test_case "admission: drain wakes takers" `Quick
        test_admission_drain_wakes_takers;
      Alcotest.test_case "middleware: 4-domain query hammer" `Quick
        test_middleware_domain_hammer;
      Alcotest.test_case "middleware: mixed DML hammer" `Quick
        test_middleware_dml_hammer;
      qcheck_op_mix;
      Alcotest.test_case "e2e: byte identity, cache on" `Quick
        test_e2e_byte_identity_cached;
      Alcotest.test_case "e2e: byte identity, cache off" `Quick
        test_e2e_byte_identity_cache_off;
      Alcotest.test_case "e2e: 8 concurrent clients" `Quick
        test_e2e_concurrent_clients;
      Alcotest.test_case "e2e: DML invalidates cache" `Quick
        test_e2e_dml_invalidates;
      Alcotest.test_case "e2e: stale session plans re-prepare" `Quick
        test_e2e_session_reprepare;
      Alcotest.test_case "e2e: pipelined per-session ordering" `Quick
        test_e2e_pipelined_ordering;
      Alcotest.test_case "e2e: typed error codes" `Quick test_e2e_error_codes;
      Alcotest.test_case "e2e: session limit" `Quick test_e2e_session_limit;
      Alcotest.test_case "e2e: graceful stop" `Quick test_e2e_graceful_stop;
      Alcotest.test_case "e2e: telemetry, trace ids, scrapes" `Quick
        test_e2e_telemetry;
      Alcotest.test_case "e2e: no trace ids when telemetry off" `Quick
        test_e2e_no_trace_when_tel_off;
    ] )
