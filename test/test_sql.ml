(* Lexer, parser and analyzer tests for the SQL front end. *)

module L = Tkr_sql.Lexer
module A = Tkr_sql.Ast
module P = Tkr_sql.Parser
module An = Tkr_sql.Analyzer
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Algebra = Tkr_relation.Algebra

let test_lexer_basic () =
  let toks = L.tokenize "SELECT a, b1 FROM t WHERE x >= 10.5 AND y <> 'it''s'" in
  Alcotest.(check int) "token count" 15 (List.length toks);
  (match toks with
  | L.IDENT "select" :: L.IDENT "a" :: L.COMMA :: L.IDENT "b1" :: _ -> ()
  | _ -> Alcotest.fail "unexpected token stream");
  (match List.filter (function L.STRING _ -> true | _ -> false) toks with
  | [ L.STRING "it's" ] -> ()
  | _ -> Alcotest.fail "string escaping failed")

let test_lexer_comments () =
  let toks = L.tokenize "SELECT 1 -- a comment\n, 2" in
  Alcotest.(check int) "tokens" 5 (List.length toks)

let test_lexer_errors () =
  (* lexical errors are TKR005 diagnostics carrying the source position *)
  (try
     ignore (L.tokenize "SELECT 'oops");
     Alcotest.fail "expected failure"
   with L.Error d ->
     Alcotest.(check string) "code" "TKR005" d.code;
     Alcotest.(check bool) "position" true (d.pos <> None));
  (try
     ignore (L.tokenize "SELECT #");
     Alcotest.fail "expected failure"
   with L.Error d -> Alcotest.(check string) "code" "TKR005" d.code)

let parse_q s =
  match P.statement s with
  | A.Query { q; _ } -> q
  | _ -> Alcotest.fail "expected a query"

let test_parse_select () =
  match parse_q "SELECT a AS x, t.b, count(*) FROM t WHERE a > 3 GROUP BY a HAVING count(*) > 1" with
  | A.Select_q s ->
      Alcotest.(check int) "items" 3 (List.length s.items);
      Alcotest.(check bool) "where" true (s.where <> None);
      Alcotest.(check int) "group" 1 (List.length s.group_by);
      Alcotest.(check bool) "having" true (s.having <> None)
  | _ -> Alcotest.fail "expected select"

let test_parse_seq_vt () =
  match parse_q "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)" with
  | A.Seq_vt (A.Except_q (true, _, _)) -> ()
  | _ -> Alcotest.fail "expected SEQ VT(EXCEPT ALL)"

let test_parse_joins () =
  match parse_q "SELECT * FROM a JOIN b ON a.x = b.x, c CROSS JOIN d" with
  | A.Select_q s ->
      Alcotest.(check int) "from items" 4 (List.length s.from);
      let conds = List.filter (fun (_, on) -> on <> None) s.from in
      Alcotest.(check int) "on conditions" 1 (List.length conds)
  | _ -> Alcotest.fail "expected select"

let test_parse_subquery () =
  match parse_q "SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x < 5" with
  | A.Select_q { from = [ (A.Subquery { sub_alias = "sub"; _ }, None) ]; _ } -> ()
  | _ -> Alcotest.fail "expected subquery in FROM"

let test_parse_case_like_in_between () =
  match
    parse_q
      "SELECT CASE WHEN a LIKE 'PROMO%' THEN 1 ELSE 0 END FROM t \
       WHERE b IN (1, 2, 3) AND c BETWEEN 5 AND 7"
  with
  | A.Select_q { items = [ A.Item { item_expr = A.Case ([ (A.Like _, _) ], Some _); _ } ]; _ } ->
      ()
  | _ -> Alcotest.fail "expected CASE/LIKE/IN/BETWEEN to parse"

let test_parse_order_limit () =
  match P.statement "SELECT a FROM t ORDER BY a DESC, 1 ASC LIMIT 10" with
  | A.Query { order_by = [ o1; _ ]; limit = Some 10; _ } ->
      Alcotest.(check bool) "desc" true o1.A.ord_desc
  | _ -> Alcotest.fail "expected order by + limit"

let test_parse_ddl () =
  (match P.statement "CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e)" with
  | A.Create_table { tbl_name = "works"; cols; period = Some ("b", "e") } ->
      Alcotest.(check int) "cols" 4 (List.length cols)
  | _ -> Alcotest.fail "create table");
  match P.statement "INSERT INTO works VALUES ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16)" with
  | A.Insert { rows = [ _; _ ]; _ } -> ()
  | _ -> Alcotest.fail "insert"

let test_parse_script () =
  let stmts = P.script "SELECT a FROM t; SELECT b FROM u;" in
  Alcotest.(check int) "two statements" 2 (List.length stmts)

let test_parse_errors () =
  let expect_fail s =
    try
      ignore (P.statement s);
      Alcotest.failf "expected parse error for %S" s
    with P.Error _ -> ()
  in
  expect_fail "SELECT";
  expect_fail "SELECT a FROM";
  expect_fail "SELECT a FROM t WHERE";
  expect_fail "SELECT a FROM t extra garbage";
  expect_fail "SEQ (SELECT a FROM t)"

(* --- analyzer --- *)

let catalog : An.catalog =
  {
    cat_schema =
      (function
      | "works" ->
          Schema.make [ Schema.attr "name" Value.TStr; Schema.attr "skill" Value.TStr ]
      | "assign" ->
          Schema.make [ Schema.attr "mach" Value.TStr; Schema.attr "skill" Value.TStr ]
      | n -> raise (Schema.Unknown n));
  }

let analyze s = An.analyze_query catalog (parse_q s)

let test_analyze_names () =
  let a = analyze "SELECT w.name, skill FROM works w" in
  Alcotest.(check (list string)) "output names" [ "name"; "skill" ]
    (Schema.names a.schema)

let test_analyze_ambiguous () =
  (try
     ignore (analyze "SELECT skill FROM works, assign");
     Alcotest.fail "expected ambiguity error"
   with An.Error _ -> ());
  (try
     ignore (analyze "SELECT nosuch FROM works");
     Alcotest.fail "expected unknown column"
   with An.Error _ -> ());
  try
    ignore (analyze "SELECT name FROM nosuch");
    Alcotest.fail "expected unknown table"
  with An.Error _ -> ()

let test_analyze_join_planning () =
  (* the equality conjunct must end up in the join, not a post-filter *)
  let a =
    analyze "SELECT w.name FROM works w, assign a WHERE w.skill = a.skill AND w.name = 'Ann'"
  in
  let rec has_cross = function
    | Algebra.Join (Tkr_relation.Expr.Const (Value.Bool true), _, _) -> true
    | Algebra.Join (_, l, r) -> has_cross l || has_cross r
    | Algebra.Select (_, q) | Algebra.Project (_, q) | Algebra.Distinct q -> has_cross q
    | _ -> false
  in
  Alcotest.(check bool) "no cross product" false (has_cross a.algebra)

let test_analyze_agg () =
  let a =
    analyze
      "SELECT skill, count(*) AS c, avg(1) FROM works GROUP BY skill HAVING count(*) > 0"
  in
  Alcotest.(check (list string)) "names" [ "skill"; "c"; "avg" ]
    (Schema.names a.schema);
  (* grouping column referenced bare, non-grouped column rejected *)
  try
    ignore (analyze "SELECT name FROM works GROUP BY skill");
    Alcotest.fail "expected group-by error"
  with An.Error _ -> ()

let test_analyze_agg_in_where () =
  try
    ignore (analyze "SELECT name FROM works WHERE count(*) > 1");
    Alcotest.fail "expected error for aggregate in WHERE"
  with An.Error _ -> ()

let test_analyze_setops () =
  let a = analyze "SELECT skill FROM works UNION ALL SELECT skill FROM assign" in
  (match a.algebra with Algebra.Union _ -> () | _ -> Alcotest.fail "union");
  let a = analyze "SELECT skill FROM works INTERSECT ALL SELECT skill FROM assign" in
  (match a.algebra with Algebra.Diff (_, Algebra.Diff _) -> () | _ -> Alcotest.fail "intersect");
  let a = analyze "SELECT skill FROM works EXCEPT SELECT skill FROM assign" in
  match a.algebra with
  | Algebra.Diff (Algebra.Distinct _, Algebra.Distinct _) -> ()
  | _ -> Alcotest.fail "set except"

let suite =
  ( "sql front end",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
      Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "parse select" `Quick test_parse_select;
      Alcotest.test_case "parse SEQ VT" `Quick test_parse_seq_vt;
      Alcotest.test_case "parse joins" `Quick test_parse_joins;
      Alcotest.test_case "parse subquery" `Quick test_parse_subquery;
      Alcotest.test_case "parse case/like/in/between" `Quick test_parse_case_like_in_between;
      Alcotest.test_case "parse order/limit" `Quick test_parse_order_limit;
      Alcotest.test_case "parse DDL" `Quick test_parse_ddl;
      Alcotest.test_case "parse script" `Quick test_parse_script;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "analyze names" `Quick test_analyze_names;
      Alcotest.test_case "analyze name errors" `Quick test_analyze_ambiguous;
      Alcotest.test_case "analyze join planning" `Quick test_analyze_join_planning;
      Alcotest.test_case "analyze aggregates" `Quick test_analyze_agg;
      Alcotest.test_case "aggregate in WHERE rejected" `Quick test_analyze_agg_in_where;
      Alcotest.test_case "analyze set operations" `Quick test_analyze_setops;
    ] )
