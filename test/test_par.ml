(* The parallel execution engine (Tkr_par): pool combinator semantics,
   boundary duplication of the chunked interval join, byte-identity of the
   pooled temporal operators, and — as a qcheck property — determinism of
   full pooled plans against the serial engine. *)

open Fixtures
module Value = Tkr_relation.Value
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Algebra = Tkr_relation.Algebra
module Agg = Tkr_relation.Agg
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Exec = Tkr_engine.Exec
module Compiled = Tkr_engine.Compiled
module Ops = Tkr_engine.Ops
module Interval_join = Tkr_engine.Interval_join
module Pool = Tkr_par.Pool
module Rewriter = Tkr_sqlenc.Rewriter
module W = Tkr_workload.Employees
module PE = Tkr_sqlenc.Period_enc.Make (D24)

let check = Alcotest.(check bool)

let same_rows a b =
  let ra = Table.rows a and rb = Table.rows b in
  Array.length ra = Array.length rb && Array.for_all2 Tuple.equal ra rb

(* ---- pool combinators ---- *)

let test_pool_basics () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let pool = Option.get pool in
  check "pool reports its size" true (Pool.jobs pool = 4);
  let tasks = Array.init 37 (fun i () -> i * i) in
  let results, stats = Pool.run pool tasks in
  check "run returns results in task order" true
    (results = Array.init 37 (fun i -> i * i));
  check "stats counts one chunk per task" true (stats.Pool.chunks = 37);
  check "per-domain attribution covers all chunks" true
    (List.fold_left (fun acc (_, c, _) -> acc + c) 0 stats.Pool.domains = 37)

let test_pool_exception () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  let pool = Option.get pool in
  let tasks =
    Array.init 8 (fun i () -> if i = 5 then failwith "task 5 exploded" else i)
  in
  check "first task exception is re-raised in the caller" true
    (match Pool.run pool tasks with
    | _ -> false
    | exception Failure m -> m = "task 5 exploded");
  (* the pool survives a failed batch *)
  let results, _ = Pool.run pool (Array.init 4 (fun i () -> i + 1)) in
  check "pool is reusable after an exception" true (results = [| 1; 2; 3; 4 |])

let test_pool_jobs1_inline () =
  let pool = Pool.create ~jobs:1 () in
  let input = Array.init 100 (fun i -> i) in
  let results, stats = Pool.map_array pool (fun x -> x * 3) input in
  check "jobs=1 map_array = Array.map" true
    (results = Array.map (fun x -> x * 3) input);
  check "jobs=1 never steals" true (stats.Pool.steals = 0);
  Pool.shutdown pool

let test_with_pool () =
  check "with_pool jobs<=1 takes the serial path" true
    (Pool.with_pool ~jobs:1 Option.is_none);
  check "with_pool jobs=0 takes the serial path" true
    (Pool.with_pool ~jobs:0 Option.is_none);
  check "with_pool jobs=2 builds a 2-domain pool" true
    (Pool.with_pool ~jobs:2 (fun p -> Pool.jobs (Option.get p) = 2))

let test_ordered_combinators () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  let pool = Option.get pool in
  let xs = List.init 53 (fun i -> i) in
  let mapped, _ = Pool.map_list ~chunks:7 pool (fun x -> x * 2) xs in
  check "map_list preserves element order" true
    (mapped = List.map (fun x -> x * 2) xs);
  let ranges, stats =
    Pool.concat_map_ranges ~chunks:4 pool ~n:10 (fun ~lo ~hi ->
        List.init (hi - lo) (fun k -> lo + k))
  in
  check "concat_map_ranges covers [0, n) in order" true
    (ranges = List.init 10 Fun.id);
  check "concat_map_ranges runs the requested chunks" true
    (stats.Pool.chunks = 4);
  let empty, _ = Pool.concat_map_ranges ~chunks:8 pool ~n:0 (fun ~lo ~hi ->
      List.init (hi - lo) (fun k -> lo + k))
  in
  check "n=0 yields the empty list" true (empty = []);
  let over, _ = Pool.concat_map_ranges ~chunks:32 pool ~n:3 (fun ~lo ~hi ->
      List.init (hi - lo) (fun k -> lo + k))
  in
  check "chunks > n still covers the range exactly once" true
    (over = [ 0; 1; 2 ])

let test_shutdown_degrades_gracefully () =
  let pool = Pool.create ~jobs:4 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  let results, _ = Pool.run pool (Array.init 6 (fun i () -> i * 10)) in
  check "a shut-down pool drains batches on the caller" true
    (results = Array.init 6 (fun i -> i * 10))

(* ---- interval join: boundary duplication / dedup ---- *)

let ij_schema =
  Schema.make
    [
      Schema.attr "k" Value.TStr;
      Schema.attr "vt_b" Value.TInt;
      Schema.attr "vt_e" Value.TInt;
    ]

let mk rows =
  Table.make ij_schema
    (List.map
       (fun (k, b, e) -> Tuple.make [ Value.Str k; Value.Int b; Value.Int e ])
       rows)

let join ?pool ?chunks l r =
  Interval_join.overlap_join ?pool ?chunks ~left_keys:[ 0 ] ~right_keys:[ 0 ]
    l r

(* parallel output must be bag-equal to the serial sweep, and byte-identical
   across every pool size (chunking never depends on jobs) *)
let assert_par_matches_serial name l r ~chunks =
  let serial = join l r in
  let outputs =
    List.map
      (fun jobs ->
        let pool = Pool.create ~jobs () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> join ~pool ~chunks l r))
      [ 1; 2; 3; 8 ]
  in
  List.iteri
    (fun i out ->
      check
        (Printf.sprintf "%s: parallel bag-equal to serial (variant %d)" name i)
        true
        (Table.equal_bag serial out))
    outputs;
  match outputs with
  | first :: rest ->
      List.iteri
        (fun i out ->
          check
            (Printf.sprintf "%s: identical rows at every pool size (%d)" name i)
            true (same_rows first out))
        rest
  | [] -> assert false

let test_ij_chunk_boundaries () =
  (* span [0, 16); chunks=4 cuts at 0/4/8/12/16.  Overlap starts land
     exactly on the cuts, so the emit-once rule (owner = chunk containing
     max(b1, b2)) is exercised on its boundary. *)
  let l = mk [ ("a", 0, 8); ("a", 4, 12); ("a", 8, 16) ] in
  let r = mk [ ("a", 0, 16); ("a", 8, 10); ("a", 12, 16) ] in
  assert_par_matches_serial "straddling boundaries" l r ~chunks:4;
  (* meeting intervals ([0,8) vs [8,10)) must not match at all *)
  let touch = join (mk [ ("a", 0, 8) ]) (mk [ ("a", 8, 10) ]) in
  check "adjacent intervals do not overlap" true (Table.cardinality touch = 0)

let test_ij_empty_chunks () =
  (* all activity in [0, 2) but an 8-way split of the span: most chunks
     hold no rows and must contribute nothing *)
  let l = mk [ ("a", 0, 2); ("a", 1, 2); ("b", 0, 1) ] in
  let r = mk [ ("a", 0, 1); ("a", 1, 2); ("b", 0, 2) ] in
  assert_par_matches_serial "mostly-empty chunks" l r ~chunks:8

let test_ij_single_tuple () =
  let l1 = mk [ ("a", 0, 100) ] in
  let r1 = mk [ ("a", 50, 60) ] in
  assert_par_matches_serial "single tuple each side" l1 r1 ~chunks:8;
  let rn = mk [ ("a", 0, 10); ("a", 20, 30); ("a", 40, 50); ("a", 90, 100) ] in
  assert_par_matches_serial "one long row vs many" l1 rn ~chunks:3;
  assert_par_matches_serial "empty right" l1 (Table.empty ij_schema) ~chunks:4

let test_ij_duplicates () =
  (* duplicate rows are real multiset members: every copy pairs *)
  let l = mk [ ("a", 0, 10); ("a", 0, 10); ("a", 5, 15) ] in
  let r = mk [ ("a", 5, 20); ("a", 5, 20) ] in
  let serial = join l r in
  check "duplicates multiply" true (Table.cardinality serial = 6);
  assert_par_matches_serial "duplicate rows" l r ~chunks:2

(* ---- pooled temporal operators: byte-identical to serial ---- *)

let test_ops_byte_identical () =
  let t = W.coalesce_input ~n:2_000 ~seed:7 ~tmax:200 in
  Pool.with_pool ~jobs:3 @@ fun pool ->
  check "coalesce: pooled rows byte-identical" true
    (same_rows (Ops.coalesce t) (Ops.coalesce ?pool t));
  check "split: pooled rows byte-identical" true
    (same_rows (Ops.split [ 0 ] t t) (Ops.split ?pool [ 0 ] t t));
  let aggs = [ { Algebra.func = Agg.Count_star; agg_name = "cnt" } ] in
  check "split_agg: pooled rows byte-identical" true
    (same_rows
       (Ops.split_agg ~group:[ 0 ] ~aggs ~gap:None t)
       (Ops.split_agg ?pool ~group:[ 0 ] ~aggs ~gap:None t));
  check "split_agg with gap: pooled rows byte-identical" true
    (same_rows
       (Ops.split_agg ~group:[] ~aggs ~gap:(Some (0, 200)) t)
       (Ops.split_agg ?pool ~group:[] ~aggs ~gap:(Some (0, 200)) t))

let test_encode_parallel () =
  let snap = NP.P.Snap.of_facts D24.domain works_schema works_facts in
  let serial = NP.P.encode snap in
  Pool.with_pool ~jobs:3 @@ fun pool ->
  check "encode: pooled normalization = serial encoding" true
    (NP.P.equal serial (NP.P.encode ?pool snap))

(* ---- qcheck: pooled full plans are byte-identical to serial ---- *)

let prop_parallel_plans_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80
       ~name:"random plan: pooled Exec/Compiled rows = serial rows"
       Test_representation.arb
       (fun ((q, _tys), (wfacts, afacts)) ->
         let works_p = NP.P.of_facts works_schema wfacts in
         let assign_p = NP.P.of_facts assign_schema afacts in
         let db = Database.create ~tmin:0 ~tmax:24 () in
         Database.add_period_table db "works" (PE.to_table works_p);
         Database.add_period_table db "assign" (PE.to_table assign_p);
         let lookup = function
           | "works" -> works_schema
           | "assign" -> assign_schema
           | n -> raise (Schema.Unknown n)
         in
         let q' =
           Rewriter.rewrite ~options:Rewriter.optimized ~tmin:0 ~tmax:24
             ~lookup q
         in
         Pool.with_pool ~jobs:3 @@ fun pool ->
         same_rows (Exec.eval db q') (Exec.eval ?pool db q')
         && same_rows (Compiled.eval db q') (Compiled.eval ?pool db q')))

let suite =
  ( "parallel engine (Tkr_par)",
    [
      Alcotest.test_case "pool: ordered run + stats" `Quick test_pool_basics;
      Alcotest.test_case "pool: exception propagation" `Quick
        test_pool_exception;
      Alcotest.test_case "pool: jobs=1 runs inline" `Quick
        test_pool_jobs1_inline;
      Alcotest.test_case "pool: with_pool serial fallback" `Quick
        test_with_pool;
      Alcotest.test_case "pool: ordered-merge combinators" `Quick
        test_ordered_combinators;
      Alcotest.test_case "pool: graceful after shutdown" `Quick
        test_shutdown_degrades_gracefully;
      Alcotest.test_case "interval join: chunk-boundary dedup" `Quick
        test_ij_chunk_boundaries;
      Alcotest.test_case "interval join: empty chunks" `Quick
        test_ij_empty_chunks;
      Alcotest.test_case "interval join: single-tuple inputs" `Quick
        test_ij_single_tuple;
      Alcotest.test_case "interval join: duplicate rows" `Quick
        test_ij_duplicates;
      Alcotest.test_case "operators: pooled = serial (byte-identical)" `Quick
        test_ops_byte_identical;
      Alcotest.test_case "encode: pooled = serial" `Quick test_encode_parallel;
      prop_parallel_plans_deterministic;
    ] )
