(* The flight recorder (Tkr_rec / Tkr_replay): recording format
   round-trips and version gating, the per-fingerprint resource ledger
   (ring reuse, hit ratios, quantiles, scrape/OpenMetrics shapes),
   capture through a live server, deterministic replay byte-identity
   over a 4-session interleaved DML workload with the cache on and off
   (alcotest + a qcheck shuffle of cross-session arrival order), the
   LEDGER scrape surface, and the zero-window [tkr_cli top] frame. *)

module M = Tkr_middleware.Middleware
module Wire = Tkr_serve.Wire
module Server = Tkr_serve.Server
module Client = Tkr_serve.Client
module Console = Tkr_serve.Console
module Tel = Tkr_tel.Tel
module Record = Tkr_rec.Record
module Ledger = Tkr_rec.Ledger
module Replay = Tkr_replay.Replay
module Json = Tkr_obs.Json
module W = Tkr_workload.Employees
module Q = Tkr_workload.Queries

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let msg_body (rsp : Wire.response) =
  match rsp.Wire.body with
  | Ok (Wire.Message m) -> m
  | _ -> Alcotest.fail "expected a message body"

let jint j key =
  Option.value ~default:0 (Option.bind (Json.member key j) Json.to_int_opt)

(* ---- recording format ---- *)

let sample_entry =
  {
    Record.e_seq = 7;
    e_session = 3;
    e_req_id = 12;
    e_trace_id = Some "tr-1";
    e_stmt = "SELECT x FROM kv";
    e_deadline_ms = Some 250;
    e_arrive_ms = 1754600000123;
    e_arrive_ns = 987654321098L;
    e_queue_us = 41;
    e_exec_us = 1200;
    e_total_us = 1241;
    e_status = "ok";
    e_cached = true;
    e_disposition = "hit";
    e_fp = "d598abf32d35";
    e_epoch = 6;
    e_deps = [ ("kv", 4); ("aux", 1) ];
    e_rows_in = 626;
    e_rows_out = 9;
    e_gc_minor_w = 15468;
    e_gc_major_w = 112;
    e_digest = "0123456789abcdef0123456789abcdef";
  }

let test_header_roundtrip () =
  let h = Record.header ~workload:"employee" ~source:"test" () in
  let h' = Record.header_of_json (Json.of_string (Json.to_string (Record.header_to_json h))) in
  check "header survives JSON" true (h' = h);
  check_int "current version" Record.format_version h'.Record.h_version;
  (* minimal header: optional workload absent *)
  let bare = Record.header () in
  check "bare header survives" true
    (Record.header_of_json (Record.header_to_json bare) = bare)

let test_header_version_gate () =
  let reject name j =
    match Record.header_of_json j with
    | exception Record.Format_error _ -> ()
    | _ -> Alcotest.fail (name ^ " accepted")
  in
  reject "bad magic"
    (Json.Obj [ ("rec", Json.Str "not-a-recording"); ("version", Json.Int 1) ]);
  reject "future version"
    (Json.Obj
       [
         ("rec", Json.Str "tkr-flight-recording");
         ("version", Json.Int (Record.format_version + 1));
       ]);
  reject "no header at all" (Json.Obj [ ("seq", Json.Int 0) ])

let test_entry_roundtrip () =
  let back e = Record.entry_of_json (Json.of_string (Json.to_string (Record.entry_to_json e))) in
  check "entry survives JSON (all fields)" true (back sample_entry = sample_entry);
  (* optional fields absent, error status *)
  let e2 =
    {
      sample_entry with
      Record.e_trace_id = None;
      e_deadline_ms = None;
      e_status = "CHECK_VIOLATION";
      e_cached = false;
      e_disposition = "error";
      e_deps = [];
    }
  in
  check "entry survives JSON (optionals absent)" true (back e2 = e2)

let test_recorder_sink () =
  let lines = ref [] in
  let r =
    Record.create
      ~header:(Record.header ~workload:"employee" ~source:"unit" ())
      (Record.Fn (fun j -> lines := j :: !lines))
  in
  check "fresh recorder enabled" true (Record.enabled r);
  check "disabled recorder is off" false (Record.enabled Record.disabled);
  Record.write Record.disabled sample_entry;
  Record.write r sample_entry;
  Record.write r { sample_entry with Record.e_seq = 8 };
  check_int "two entries recorded" 2 (Record.recorded r);
  Record.close r;
  Record.close r;
  check "closed recorder disabled" false (Record.enabled r);
  Record.write r sample_entry;
  check_int "writes after close ignored" 2 (Record.recorded r);
  (* header line first, then the entries *)
  match List.rev !lines with
  | hdr :: es ->
      check "header line first" true
        ((Record.header_of_json hdr).Record.h_workload = Some "employee");
      check_int "entry lines" 2 (List.length es)
  | [] -> Alcotest.fail "no lines emitted"

let test_read_restores_arrival_order () =
  let path = Filename.temp_file "tkr_rec" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let r = Record.create (Record.Chan oc) in
  (* completion order 2,0,1 — read_file must restore 0,1,2 *)
  List.iter
    (fun s -> Record.write r { sample_entry with Record.e_seq = s })
    [ 2; 0; 1 ];
  Record.close r;
  close_out oc;
  let h, entries = Record.read_file path in
  check_int "header version" Record.format_version h.Record.h_version;
  Alcotest.(check (list int))
    "entries sorted by seq" [ 0; 1; 2 ]
    (List.map (fun e -> e.Record.e_seq) entries)

(* ---- resource ledger ---- *)

let observe_n l ~fp ~stmt ~disposition ~total_us n =
  for _ = 1 to n do
    Ledger.observe l ~fp ~stmt ~ok:true ~disposition ~queue_us:5
      ~exec_us:(total_us - 5) ~total_us ~rows_out:3 ~gc_minor_w:100
      ~gc_major_w:10
  done

let test_ledger_accounting () =
  let l = Ledger.create ~capacity:8 () in
  check_int "empty ledger tracks nothing" 0 (Ledger.size l);
  Alcotest.(check (list Alcotest.pass)) "empty rows" [] (Ledger.rows l);
  check "empty exposition" true (Ledger.openmetrics l = []);
  observe_n l ~fp:"aaa" ~stmt:"SELECT a" ~disposition:"miss" ~total_us:1000 1;
  observe_n l ~fp:"aaa" ~stmt:"SELECT a" ~disposition:"hit" ~total_us:200 3;
  observe_n l ~fp:"bbb" ~stmt:"SELECT b" ~disposition:"off" ~total_us:9000 1;
  Ledger.observe l ~fp:"bbb" ~stmt:"SELECT b" ~ok:false ~disposition:"error"
    ~queue_us:1 ~exec_us:1 ~total_us:2 ~rows_out:0 ~gc_minor_w:0 ~gc_major_w:0;
  check_int "two fingerprints" 2 (Ledger.size l);
  let row fp = List.find (fun r -> r.Ledger.r_fp = fp) (Ledger.rows l) in
  let a = row "aaa" and b = row "bbb" in
  check_int "aaa count" 4 a.Ledger.r_count;
  check_int "aaa hits" 3 a.Ledger.r_hits;
  check_int "aaa misses" 1 a.Ledger.r_misses;
  check_int "aaa cumulative wall" 1600 a.Ledger.r_total_us;
  check_int "aaa max" 1000 a.Ledger.r_max_us;
  check_int "aaa rows out" 12 a.Ledger.r_rows_out;
  check "aaa hit ratio" true (abs_float (Ledger.hit_ratio a -. 0.75) < 1e-9);
  check "aaa quantiles ordered" true
    (a.Ledger.r_p50_us <= a.Ledger.r_p95_us && a.Ledger.r_p95_us > 0);
  check_int "bbb errors" 1 b.Ledger.r_errors;
  check "bbb untouched cache never nan" true (Ledger.hit_ratio b = 0.0);
  (* rows are sorted by cumulative wall time, bbb (9002us) first *)
  (match Ledger.rows l with
  | first :: _ -> check_str "sorted by wall" "bbb" first.Ledger.r_fp
  | [] -> Alcotest.fail "rows empty");
  (match Ledger.rows ~top:1 l with
  | [ _ ] -> ()
  | rs -> Alcotest.fail (Printf.sprintf "top:1 kept %d" (List.length rs)));
  let j = Ledger.to_json l in
  check_int "scrape capacity" 8 (jint j "capacity");
  check_int "scrape tracked" 2 (jint j "tracked");
  let om = String.concat "" (Ledger.openmetrics l) in
  List.iter
    (fun needle -> check ("exposition has " ^ needle) true (contains om needle))
    [
      "# TYPE tkr_ledger_requests gauge";
      {|tkr_ledger_requests{fingerprint="aaa"} 4|};
      {|tkr_ledger_cache_hit_ratio{fingerprint="aaa"} 0.75|};
      "tkr_ledger_latency_p95_us";
    ]

let test_ledger_ring_reuse () =
  let l = Ledger.create ~capacity:4 () in
  for k = 0 to 9 do
    observe_n l
      ~fp:(Printf.sprintf "fp%d" k)
      ~stmt:"S" ~disposition:"miss" ~total_us:100 1
  done;
  check_int "ring holds capacity" 4 (Ledger.size l);
  check_int "displacements counted" 6 (Ledger.evictions l);
  (* the survivors are the most recent arrivals *)
  let fps = List.map (fun r -> r.Ledger.r_fp) (Ledger.rows l) in
  List.iter
    (fun k ->
      check
        (Printf.sprintf "fp%d survived" k)
        true
        (List.mem (Printf.sprintf "fp%d" k) fps))
    [ 6; 7; 8; 9 ];
  (* a displaced fingerprint starts a fresh slot, not stale counts *)
  observe_n l ~fp:"fp0" ~stmt:"S" ~disposition:"miss" ~total_us:100 1;
  let r0 = List.find (fun r -> r.Ledger.r_fp = "fp0") (Ledger.rows l) in
  check_int "fresh slot after displacement" 1 r0.Ledger.r_count

(* ---- capture + deterministic replay through a live server ---- *)

let fresh_mw () =
  let m = M.create ~db:(W.generate { (W.scaled 40) with W.tmax = 600 }) () in
  ignore (M.execute m "CREATE TABLE kv (x int)");
  m

let with_rec_server ?(cache_mb = 16) ?tel ?recorder f =
  let m = fresh_mw () in
  let srv =
    Server.start
      ~config:
        {
          Server.default_config with
          port = 0;
          cache_mb;
          max_sessions = 16;
          workers = 4;
        }
      ?tel ?recorder m
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      M.shutdown m)
    (fun () -> f m srv)

(* four per-session programs over shared tables: DML on [kv] interleaved
   with catalog queries and a repeated SELECT so the cache sees hits.
   No program depends on another session's statements, so every
   cross-session interleaving that respects program order is a valid
   execution — exactly what replay must reproduce. *)
let session_programs =
  let q name = Q.lookup name Q.employee in
  List.init 4 (fun s ->
      [
        Printf.sprintf "INSERT INTO kv VALUES (%d), (%d)" (10 * s) ((10 * s) + 1);
        "SELECT x FROM kv";
        q (if s mod 2 = 0 then "agg-1" else "join-1");
        Printf.sprintf "DELETE FROM kv WHERE x = %d" (10 * s);
        "SELECT x FROM kv";
        q "diff-1";
        q "diff-1";
      ])

(* drive the capture server with a prescribed global arrival order:
   statements are issued one at a time (each waits for its response), so
   server arrival order is issue order; entry [order] lists session ids,
   each occurrence consuming the next statement of that session's
   program. *)
let capture_workload ~order path =
  let oc = open_out path in
  let recorder =
    Record.create
      ~header:(Record.header ~workload:"employee" ~source:"test" ())
      (Record.Chan oc)
  in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  (* close the recorder only after [with_rec_server] has run Server.stop:
     entries are written by the workers after the response is sent, so
     the last ones land during the stop drain (production does the same
     — tkr_cli closes the recorder after the server has stopped) *)
  Fun.protect ~finally:(fun () -> Record.close recorder) @@ fun () ->
  with_rec_server ~recorder @@ fun _m srv ->
  let port = Server.port srv in
  let clients = Array.init 4 (fun _ -> Client.connect ~port ()) in
  let remaining = Array.of_list (List.map (fun p -> ref p) session_programs) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun c -> try Client.close c with _ -> ()) clients)
    (fun () ->
      List.iter
        (fun s ->
          match !(remaining.(s)) with
          | [] -> ()
          | stmt :: rest ->
              remaining.(s) := rest;
              ignore (Client.run_exn clients.(s) stmt))
        order;
      Array.iter
        (fun r -> check "program fully issued" true (!r = []))
        remaining)

let round_robin_order =
  List.concat_map
    (fun _ -> [ 0; 1; 2; 3 ])
    (List.init (List.length (List.nth session_programs 0)) Fun.id)

let replay_against ~cache_mb entries =
  with_rec_server ~cache_mb @@ fun _m srv ->
  Replay.run ~port:(Server.port srv) entries

let test_capture_replay_byte_identity () =
  let path = Filename.temp_file "tkr_rec_e2e" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  capture_workload ~order:round_robin_order path;
  let h, entries = Record.read_file path in
  check "header names the workload" true (h.Record.h_workload = Some "employee");
  let n = List.length (List.concat session_programs) in
  check_int "every request recorded" n (List.length entries);
  check "deps recorded on queries" true
    (List.exists (fun e -> List.mem_assoc "kv" e.Record.e_deps) entries);
  check "GC words attributed" true
    (List.exists (fun e -> e.Record.e_gc_minor_w > 0) entries);
  check "cache hits recorded" true
    (List.exists (fun e -> e.Record.e_disposition = "hit") entries);
  (* cache on: replayed responses must be byte-identical, hits included *)
  let warm = replay_against ~cache_mb:16 entries in
  check "cache-on replay identical" true (Replay.identical warm);
  check_int "all entries compared" n warm.Replay.compared;
  check_int "four sessions" 4 warm.Replay.sessions;
  check "replay saw cache hits" true (warm.Replay.cached > 0);
  (* cache off: same bytes must come from fresh execution *)
  let cold = replay_against ~cache_mb:0 entries in
  check "cache-off replay identical" true (Replay.identical cold);
  check_int "cache-off compared everything" n cold.Replay.compared;
  check_int "no hits without a cache" 0 cold.Replay.cached

(* qcheck: any shuffle of cross-session arrival order that preserves
   per-session program order records a workload that replays
   byte-identically.  The generator merges the four per-session
   programs using a stream of random picks. *)
let order_of_picks picks =
  let counts = Array.of_list (List.map List.length session_programs) in
  let order = ref [] in
  let picks = ref picks in
  let next_pick () =
    match !picks with
    | [] -> 0
    | p :: rest ->
        picks := rest;
        p
  in
  let total = Array.fold_left ( + ) 0 counts in
  for _ = 1 to total do
    let live = ref [] in
    Array.iteri (fun s c -> if c > 0 then live := s :: !live) counts;
    let live = List.rev !live in
    let s = List.nth live (next_pick () mod List.length live) in
    counts.(s) <- counts.(s) - 1;
    order := s :: !order
  done;
  List.rev !order

let qcheck_shuffled_replay =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:3
       ~name:"shuffled arrival order still replays byte-identically"
       QCheck.(list_of_size (Gen.return 40) (QCheck.int_range 0 1000))
       (fun picks ->
         let order = order_of_picks picks in
         (* per-session subsequences are the programs in order *)
         List.iteri
           (fun s prog ->
             let mine = List.filter (fun x -> x = s) order in
             assert (List.length mine = List.length prog))
           session_programs;
         let path = Filename.temp_file "tkr_rec_q" ".jsonl" in
         Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
         capture_workload ~order path;
         let _, entries = Record.read_file path in
         let o = replay_against ~cache_mb:16 entries in
         Replay.identical o && o.Replay.compared = List.length entries))

(* ---- scrape surface: LEDGER statement and OpenMetrics families ---- *)

let test_ledger_scrape_and_metrics () =
  let tel = Tel.create (Tel.Fn ignore) in
  with_rec_server ~tel @@ fun _m srv ->
  Client.with_client ~port:(Server.port srv) @@ fun c ->
  ignore (Client.run_exn c "INSERT INTO kv VALUES (1), (2)");
  let q = "SELECT x FROM kv" in
  ignore (Client.run_exn c q);
  ignore (Client.run_exn c q);
  (* LEDGER is answered inline by the connection reader, but observe
     runs in the worker's finish after the response is sent — fence with
     one more worker-path statement: per-session FIFO runs it after the
     second SELECT's finish, so its response means both observes landed.
     Fence twice with the same text — the second run fences the first
     fence's own observe, and being the same fingerprint it cannot move
     the tracked-plan count between the scrape and the accessor check *)
  ignore (Client.run_exn c "INSERT INTO kv VALUES (3)");
  ignore (Client.run_exn c "INSERT INTO kv VALUES (3)");
  let ledger = Json.of_string (msg_body (Client.run_exn c "LEDGER")) in
  check "ledger tracks live plans" true (jint ledger "tracked" >= 2);
  let rows =
    match Json.member "rows" ledger with
    | Some (Json.List rows) -> rows
    | _ -> Alcotest.fail "LEDGER payload has no rows"
  in
  let sel =
    List.find_opt
      (fun r ->
        match Option.bind (Json.member "stmt" r) Json.to_string_opt with
        | Some s -> s = q
        | None -> false)
      rows
  in
  (match sel with
  | Some r ->
      check_int "SELECT ran twice" 2 (jint r "count");
      check_int "second run was a hit" 1 (jint r "hits");
      check "p95 populated" true (jint r "p95_us" > 0)
  | None -> Alcotest.fail "SELECT fingerprint missing from LEDGER");
  (* server ledger accessor agrees with the scrape *)
  check_int "accessor sees the same plans" (jint ledger "tracked")
    (Ledger.size (Server.ledger srv));
  let metrics = msg_body (Client.run_exn c "METRICS") in
  List.iter
    (fun needle -> check ("metrics has " ^ needle) true (contains metrics needle))
    [
      "# TYPE tkr_ledger_requests gauge";
      "tkr_ledger_requests{fingerprint=";
      "tkr_ledger_cache_hit_ratio";
      "# TYPE tkr_tel_events_dropped_total counter";
      "tkr_tel_events_dropped_total 0";
      "# EOF\n";
    ]

(* ---- tkr_cli top: zero-window frame golden ---- *)

let test_console_zero_window () =
  check_str "qps before first window" "-"
    (Console.qps_text ~interval:2.0 ~prev_requests:(-1) ~requests:9);
  check_str "qps with degenerate interval" "-"
    (Console.qps_text ~interval:0.0 ~prev_requests:0 ~requests:9);
  check_str "steady qps" "4.5"
    (Console.qps_text ~interval:2.0 ~prev_requests:0 ~requests:9);
  check "hit rate without lookups" true
    (Console.hit_rate_pct ~hits:0 ~misses:0 = 0.0);
  let frame =
    Console.frame ~host:"h" ~port:7 ~interval:2.0 ~prev_requests:(-1)
      ~stats:(Json.Obj []) ~health:(Json.Obj []) ~ledger:None ()
  in
  let golden =
    String.concat "\n"
      [
        "tkr top — h:7      up 0s";
        "requests  0   (- req/s)   errors 0   busy 0   deadline 0";
        "sessions  0   queue 0   inflight 0   pool domains 0";
        "latency   p50 0 us   p95 0 us   p99 0 us   (0 samples)";
        "cache     hit 0.0%   entries 0   0.0/0.0 MiB   evictions 0   \
         invalidations 0";
        "";
      ]
  in
  check_str "zero-window frame golden" golden frame;
  check "no nan in empty frame" false (contains frame "nan");
  (* a ledger payload adds the panel *)
  let l = Ledger.create () in
  observe_n l ~fp:"abc" ~stmt:"SELECT 1" ~disposition:"hit" ~total_us:1000 2;
  let with_ledger =
    Console.frame ~host:"h" ~port:7 ~interval:2.0 ~prev_requests:0
      ~stats:(Json.Obj []) ~health:(Json.Obj [])
      ~ledger:(Some (Ledger.to_json l)) ()
  in
  check "ledger panel renders" true
    (contains with_ledger "ledger (top by wall time):");
  check "ledger row renders" true (contains with_ledger "abc");
  (* an index object in STATS adds the tkr_idx line *)
  let with_index =
    Console.frame ~host:"h" ~port:7 ~interval:2.0 ~prev_requests:0
      ~stats:
        (Json.Obj
           [
             ( "index",
               Json.Obj
                 [
                   ("enabled", Json.Bool true);
                   ("built", Json.Int 2);
                   ("rebuilds", Json.Int 1);
                   ("probes", Json.Int 40);
                   ("candidates", Json.Int 120);
                 ] );
           ])
      ~health:(Json.Obj []) ~ledger:None ()
  in
  check "index line renders" true
    (contains with_index
       "index     on    built 2   rebuilds 1   probes 40   candidates 120")

let suite =
  ( "rec",
    [
      Alcotest.test_case "record: header round-trip" `Quick test_header_roundtrip;
      Alcotest.test_case "record: version gate" `Quick test_header_version_gate;
      Alcotest.test_case "record: entry round-trip" `Quick test_entry_roundtrip;
      Alcotest.test_case "record: recorder sinks" `Quick test_recorder_sink;
      Alcotest.test_case "record: read restores arrival order" `Quick
        test_read_restores_arrival_order;
      Alcotest.test_case "ledger: accounting and exposition" `Quick
        test_ledger_accounting;
      Alcotest.test_case "ledger: ring reuse" `Quick test_ledger_ring_reuse;
      Alcotest.test_case "e2e: capture and replay byte identity" `Quick
        test_capture_replay_byte_identity;
      qcheck_shuffled_replay;
      Alcotest.test_case "e2e: LEDGER scrape and metrics families" `Quick
        test_ledger_scrape_and_metrics;
      Alcotest.test_case "top: zero-window frame" `Quick
        test_console_zero_window;
    ] )
