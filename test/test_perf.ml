(* The perf layer: canonical bench schema round-trip, regression
   detection (a 2x slowdown fails, sub-threshold noise doesn't),
   OpenMetrics golden output, folded-stack export against a hand-built
   trace tree, GC counter monotonicity across a traced query, and
   histogram quantile interpolation. *)

module Json = Tkr_obs.Json
module Trace = Tkr_obs.Trace
module Metrics = Tkr_obs.Metrics
module Openmetrics = Tkr_obs.Openmetrics
module Env = Tkr_perf.Env
module Bench_result = Tkr_perf.Bench_result
module Compare = Tkr_perf.Compare
module Export = Tkr_perf.Export
module Runner = Tkr_perf.Runner
module M = Tkr_middleware.Middleware

(* --- JSON parser (the reader side of the schema) --- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\"\nline\twith\\escapes");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]);
      ]
  in
  Alcotest.(check bool)
    "roundtrip" true
    (Json.of_string (Json.to_string doc) = doc);
  Alcotest.(check bool)
    "ints stay ints" true
    (Json.of_string "7" = Json.Int 7);
  Alcotest.(check bool)
    "floats parse" true
    (Json.of_string "7.25" = Json.Float 7.25);
  Alcotest.(check bool)
    "whitespace tolerated" true
    (Json.of_string "  { \"a\" : [ 1 , 2 ] }  "
    = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "truncated fails" true (fails "{\"a\":");
  Alcotest.(check bool) "garbage tail fails" true (fails "1 x")

(* --- canonical schema round-trip --- *)

let sample_env =
  {
    Env.ocaml_version = "5.1.1";
    git_sha = "abc123";
    dirty = false;
    hostname = "ci";
    word_size = 64;
    os_type = "Unix";
  }

let sample_report ?(extra = []) specs =
  Bench_result.make ~env:sample_env ~extra ~source:"test"
    (List.map
       (fun (suite, name, ns) ->
         Bench_result.result ~suite ~name ~runs:3
           ~counters:[ ("rows_out", 10.); ("gc_minor_words", 123.5) ]
           ns)
       specs)

let test_schema_roundtrip () =
  let rep =
    sample_report
      ~extra:[ ("note", Json.Str "hello") ]
      [ ("employee", "join-1", 1234.5); ("coalesce", "coalesce-1000", 9.9) ]
  in
  let rep' = Bench_result.of_json (Json.of_string (Json.to_string (Bench_result.to_json rep))) in
  Alcotest.(check string) "source" rep.source rep'.source;
  Alcotest.(check bool) "env" true (rep.env = rep'.env);
  Alcotest.(check bool) "results" true (rep.results = rep'.results);
  Alcotest.(check bool)
    "extra passthrough" true
    (List.assoc_opt "note" rep'.extra = Some (Json.Str "hello"));
  (* file round-trip *)
  let path = Filename.temp_file "tkr_bench" ".json" in
  Bench_result.write path rep;
  let rep'' = Bench_result.read path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (rep.results = rep''.results);
  (* version guard *)
  (match
     Bench_result.of_json
       (Json.Obj
          [
            ("schema_version", Json.Int 999);
            ("env", Env.to_json sample_env);
            ("results", Json.List []);
          ])
   with
  | exception Bench_result.Invalid _ -> ()
  | _ -> Alcotest.fail "schema_version 999 accepted")

let test_trajectory_names () =
  Alcotest.(check (option int))
    "parse" (Some 12)
    (Bench_result.pr_of_filename "BENCH_PR12.json");
  Alcotest.(check (option int))
    "reject scratch" None
    (Bench_result.pr_of_filename "BENCH_PR12.tmp.json");
  Alcotest.(check (option int))
    "reject other" None
    (Bench_result.pr_of_filename "results.json");
  Alcotest.(check string) "render" "BENCH_PR4.json" (Bench_result.filename_of_pr 4);
  (* next name comes after the highest file present *)
  let dir = Filename.temp_file "tkr_traj" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let touch f = close_out (open_out (Filename.concat dir f)) in
  Alcotest.(check string)
    "empty dir" "BENCH_PR0.json"
    (Bench_result.default_filename ~dir ());
  touch "BENCH_PR1.json";
  touch "BENCH_PR3.json";
  touch "unrelated.json";
  Alcotest.(check string)
    "next after highest" "BENCH_PR4.json"
    (Bench_result.default_filename ~dir ());
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* --- regression detection --- *)

let test_compare () =
  let base =
    sample_report
      [ ("s", "fast", 100.); ("s", "noisy", 100.); ("s", "gone", 50.) ]
  in
  let fresh =
    sample_report
      [
        ("s", "fast", 200.);  (* injected 2x slowdown *)
        ("s", "noisy", 130.);  (* 1.3x: below the 1.5x threshold *)
        ("s", "new-test", 10.);
      ]
  in
  let o = Compare.compare_reports ~threshold:1.5 base fresh in
  Alcotest.(check bool) "has regression" true (Compare.has_regression o);
  Alcotest.(check (list string))
    "exactly the 2x test" [ "s/fast" ]
    (List.map (fun d -> d.Compare.test) (Compare.regressions o));
  Alcotest.(check (list string)) "disappeared" [ "s/gone" ] o.Compare.only_base;
  Alcotest.(check (list string)) "appeared" [ "s/new-test" ] o.Compare.only_new;
  (* noise is neither regression nor improvement *)
  let noisy = List.find (fun d -> d.Compare.test = "s/noisy") o.Compare.deltas in
  Alcotest.(check bool)
    "noise unchanged" true
    (noisy.Compare.verdict = Compare.Unchanged);
  (* self-compare is clean *)
  let self = Compare.compare_reports ~threshold:1.5 base base in
  Alcotest.(check bool) "self-compare clean" false (Compare.has_regression self);
  (* a symmetric speedup reports an improvement, not a regression *)
  let o' = Compare.compare_reports ~threshold:1.5 fresh base in
  Alcotest.(check bool) "inverse not regression" true
    (List.map (fun d -> d.Compare.test) (Compare.improvements o') = [ "s/fast" ]);
  (match Compare.compare_reports ~threshold:0.9 base base with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "threshold <= 1 accepted")

(* --- OpenMetrics golden --- *)

let test_openmetrics_golden () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "rows scanned") 42;
  Metrics.record_ns (Metrics.timer r "exec") 1500L;
  Metrics.record_ns (Metrics.timer r "exec") 500L;
  let h = Metrics.histogram ~bounds:[| 10; 100 |] r "latency_us" in
  List.iter (Metrics.observe h) [ 5; 50; 5000 ];
  let expected =
    "# TYPE rows_scanned_total counter\n\
     rows_scanned_total 42\n\
     # TYPE exec_ns_total counter\n\
     exec_ns_total 2000\n\
     # TYPE exec_samples_total counter\n\
     exec_samples_total 2\n\
     # TYPE latency_us histogram\n\
     latency_us_bucket{le=\"10\"} 1\n\
     latency_us_bucket{le=\"100\"} 2\n\
     latency_us_bucket{le=\"+Inf\"} 3\n\
     latency_us_sum 5055\n\
     latency_us_count 3\n\
     # EOF\n"
  in
  Alcotest.(check string) "golden" expected (Openmetrics.of_metrics r)

let test_openmetrics_bench_export () =
  let rep = sample_report [ ("employee", "join-1", 1234.5) ] in
  let out = Export.to_openmetrics rep in
  let contains needle =
    let n = String.length out and m = String.length needle in
    let rec go i = i + m <= n && (String.sub out i m = needle || go (i + 1)) in
    Alcotest.(check bool) needle true (go 0)
  in
  contains "tkr_bench_wall_ns_per_run{suite=\"employee\",test=\"join-1\"} 1234.5";
  contains "tkr_bench_runs{suite=\"employee\",test=\"join-1\"} 3";
  contains "tkr_bench_counter{suite=\"employee\",test=\"join-1\",counter=\"rows_out\"} 10";
  contains "git_sha=\"abc123\"";
  contains "# EOF\n";
  (* no stored traces -> no pool families *)
  let rec has i m =
    i + m <= String.length out
    && (String.sub out i m = "tkr_bench_par" || has (i + 1) m)
  in
  Alcotest.(check bool) "no par families" false (has 0 13)

(* exposition-grammar edges: name sanitization, label escaping, and the
   gauge-family renderer the exporters are built on *)
let test_openmetrics_escaping () =
  Alcotest.(check string)
    "spaces and dashes" "rows_scanned_per_sec"
    (Openmetrics.sanitize "rows scanned-per.sec");
  Alcotest.(check string)
    "leading digit prefixed" "_9lives" (Openmetrics.sanitize "9lives");
  Alcotest.(check string)
    "colon kept" "ns:sub_total" (Openmetrics.sanitize "ns:sub total");
  Alcotest.(check string)
    "label escapes" "a\\\\b\\\"c\\nd"
    (Openmetrics.escape_label "a\\b\"c\nd");
  Alcotest.(check string)
    "gauge family golden"
    "# TYPE g gauge\n\
     # HELP g demo\n\
     g{k=\"v\\\"w\"} 1.5\n\
     g 2\n"
    (Openmetrics.gauge ~help:"demo" "g" [ ([ ("k", "v\"w") ], 1.5); ([], 2.0) ]);
  (* a registry gauge exposes as a bare gauge sample *)
  let r = Metrics.create () in
  Metrics.set (Metrics.gauge r "queue depth") 3;
  Alcotest.(check string)
    "registry gauge golden"
    "# TYPE queue_depth gauge\nqueue_depth 3\n# EOF\n"
    (Openmetrics.of_metrics r)

(* pool attribution stored on trace spans surfaces as
   tkr_bench_par{query,stat} and tkr_bench_par_domain_chunks gauges *)
let test_openmetrics_par_export () =
  let span =
    Json.Obj
      [
        ("op", Json.Str "join");
        ("elapsed_ns", Json.Int 1000);
        ( "attrs",
          Json.Obj
            [
              (Trace.par_jobs, Json.Int 4);
              (Trace.par_chunks, Json.Int 8);
              (Trace.par_steals, Json.Int 2);
              (Trace.par_merge_ns, Json.Int 1500);
              (Trace.par_domains, Json.Str "0:5/1.234ms 1:3/0.567ms");
            ] );
        ("children", Json.List []);
      ]
  in
  let rep =
    sample_report
      ~extra:
        [
          ( "operator_traces",
            Json.List
              [
                Json.Obj
                  [ ("query", Json.Str "q-par"); ("trace", Json.List [ span ]) ];
              ] );
        ]
      [ ("employee", "join-1", 1234.5) ]
  in
  let out = Export.to_openmetrics rep in
  let contains needle =
    let n = String.length out and m = String.length needle in
    let rec go i = i + m <= n && (String.sub out i m = needle || go (i + 1)) in
    Alcotest.(check bool) needle true (go 0)
  in
  contains "tkr_bench_par{query=\"q-par\",stat=\"jobs\"} 4";
  contains "tkr_bench_par{query=\"q-par\",stat=\"chunks\"} 8";
  contains "tkr_bench_par{query=\"q-par\",stat=\"steals\"} 2";
  contains "tkr_bench_par{query=\"q-par\",stat=\"merge_ns\"} 1500";
  contains "tkr_bench_par_domain_chunks{query=\"q-par\",domain=\"0\"} 5";
  contains "tkr_bench_par_domain_chunks{query=\"q-par\",domain=\"1\"} 3"

(* --- folded stacks --- *)

(* a hand-built trace tree, via the JSON codec so elapsed times are
   explicit: root 100ns with children 60ns (with a 10ns grandchild) and
   25ns -> root self-time 15, child self 50 *)
let test_folded () =
  let node op ns children =
    Json.Obj
      [
        ("op", Json.Str op);
        ("elapsed_ns", Json.Int ns);
        ("attrs", Json.Obj []);
        ("children", Json.List children);
      ]
  in
  let tree =
    node "root" 100 [ node "child a" 60 [ node "leaf" 10 [] ]; node "b;c" 25 [] ]
  in
  let sp = Trace.of_json_value tree in
  let expected =
    "root 15\nroot;child_a 50\nroot;child_a;leaf 10\nroot;b,c 25\n"
  in
  Alcotest.(check string) "folded" expected (Trace.to_folded sp);
  (* report-level export prefixes the query name *)
  let rep =
    Bench_result.make ~env:sample_env ~source:"test"
      ~extra:
        [
          ( "operator_traces",
            Json.List
              [
                Json.Obj
                  [ ("query", Json.Str "q1"); ("trace", Json.List [ tree ]) ];
              ] );
        ]
      []
  in
  Alcotest.(check string)
    "export prefixes query"
    "q1;root 15\nq1;root;child_a 50\nq1;root;child_a;leaf 10\nq1;root;b,c 25\n"
    (Export.to_folded rep);
  (* children whose summed time exceeds the parent clamp at zero *)
  let weird = Trace.of_json_value (node "p" 5 [ node "c" 9 [] ]) in
  Alcotest.(check string) "clamped" "p 0\np;c 9\n" (Trace.to_folded weird)

(* --- GC profiling across a traced query --- *)

let gc_float sp key =
  match Trace.find_attr sp key with
  | Some (Trace.Float f) -> f
  | Some (Trace.Int i) -> float_of_int i
  | _ -> Alcotest.fail (Printf.sprintf "span %s: missing %s" (Trace.name sp) key)

let test_gc_monotone () =
  let m = M.create () in
  Tkr_engine.Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
     |});
  let p = M.prepare m "SEQ VT (SELECT count(*) AS cnt FROM works)" in
  let obs = Trace.create ~gc:true () in
  ignore (M.run_prepared ~obs m p);
  let roots = Trace.roots obs in
  Alcotest.(check bool) "has roots" true (roots <> []);
  (* every span reports the GC attrs, allocations are non-negative, and a
     parent's delta covers the sum of its children's (the counters are
     monotone snapshots of one global allocation counter) *)
  List.iter
    (fun root ->
      Trace.iter
        (fun sp ->
          let minor = gc_float sp Trace.gc_minor_words in
          Alcotest.(check bool) "minor_words >= 0" true (minor >= 0.);
          Alcotest.(check bool)
            "major_collections >= 0" true
            (gc_float sp Trace.gc_major_collections >= 0.);
          let child_sum =
            List.fold_left
              (fun acc c -> acc +. gc_float c Trace.gc_minor_words)
              0. (Trace.children sp)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s covers children (%g >= %g)" (Trace.name sp)
               minor child_sum)
            true (minor >= child_sum))
        root)
    roots;
  (* the root of a real query allocates *something* *)
  Alcotest.(check bool)
    "root allocates" true
    (List.exists (fun r -> gc_float r Trace.gc_minor_words > 0.) roots)

let test_runner () =
  let s = Runner.measure ~runs:3 (fun () -> List.init 1000 string_of_int) in
  Alcotest.(check bool) "wall time positive" true (s.Runner.wall_ns > 0.);
  Alcotest.(check bool) "allocates" true (s.Runner.minor_words > 0.);
  Alcotest.(check bool)
    "gc counters schema" true
    (List.map fst (Runner.gc_counters s)
    = [
        "gc_minor_words"; "gc_major_words"; "gc_minor_collections";
        "gc_major_collections";
      ]);
  match Runner.measure ~runs:0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "runs=0 accepted"

(* --- histogram quantiles --- *)

let test_histogram_quantile () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 10; 100; 1000 |] r "h" in
  Alcotest.(check int) "empty" 0 (Metrics.histogram_quantile h 0.5);
  (* 100 observations uniform in the (10,100] bucket: the median
     interpolates to the bucket midpoint *)
  for _ = 1 to 100 do
    Metrics.observe h 50
  done;
  Alcotest.(check int) "p50 midpoint" 55 (Metrics.histogram_quantile h 0.5);
  Alcotest.(check int) "p100 top" 100 (Metrics.histogram_quantile h 1.0);
  (* overflow ranks report the largest finite bound *)
  let r2 = Metrics.create () in
  let h2 = Metrics.histogram ~bounds:[| 10; 100 |] r2 "h2" in
  List.iter (Metrics.observe h2) [ 5; 5000; 6000; 7000 ];
  Alcotest.(check int) "overflow clamps" 100 (Metrics.histogram_quantile h2 0.9);
  (* rank 0.4 of the single observation in (0,10] interpolates to 4 *)
  Alcotest.(check int) "low rank in first bucket" 4
    (Metrics.histogram_quantile h2 0.1)

(* --- env metadata --- *)

let test_env () =
  let e = Env.capture () in
  Alcotest.(check string) "ocaml version" Sys.ocaml_version e.Env.ocaml_version;
  Alcotest.(check int) "word size" Sys.word_size e.Env.word_size;
  Alcotest.(check bool) "hostname nonempty" true (e.Env.hostname <> "");
  let e' = Env.of_json (Env.to_json e) in
  Alcotest.(check bool) "env roundtrip" true (e = e');
  (* the dirty-tree flag round-trips ... *)
  let d = { e with Env.dirty = true } in
  Alcotest.(check bool) "dirty roundtrip" true (Env.of_json (Env.to_json d)).Env.dirty;
  (* ... defaults to clean when reading pre-flag reports ... *)
  let legacy =
    match Env.to_json e with
    | Json.Obj fields ->
        Json.Obj (List.filter (fun (k, _) -> k <> "git_dirty") fields)
    | j -> j
  in
  Alcotest.(check bool) "missing flag reads clean" false (Env.of_json legacy).Env.dirty;
  (* ... and is rendered as a +dirty suffix on the SHA *)
  let shown = Format.asprintf "%a" Env.pp d in
  let has_needle needle s =
    let n = String.length needle in
    let rec go i = i + n <= String.length s && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pp marks dirty" true (has_needle "+dirty" shown);
  Alcotest.(check bool) "pp omits marker when clean" false
    (has_needle "+dirty"
       (Format.asprintf "%a" Env.pp { e with Env.dirty = false }))

let suite =
  ( "perf",
    [
      Alcotest.test_case "json parser roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "bench schema roundtrip" `Quick test_schema_roundtrip;
      Alcotest.test_case "trajectory filenames" `Quick test_trajectory_names;
      Alcotest.test_case "regression detection" `Quick test_compare;
      Alcotest.test_case "openmetrics golden" `Quick test_openmetrics_golden;
      Alcotest.test_case "openmetrics bench export" `Quick
        test_openmetrics_bench_export;
      Alcotest.test_case "openmetrics escaping and gauges" `Quick
        test_openmetrics_escaping;
      Alcotest.test_case "openmetrics pool attribution" `Quick
        test_openmetrics_par_export;
      Alcotest.test_case "folded stacks" `Quick test_folded;
      Alcotest.test_case "gc counters monotone" `Quick test_gc_monotone;
      Alcotest.test_case "runner" `Quick test_runner;
      Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantile;
      Alcotest.test_case "env metadata" `Quick test_env;
    ] )
