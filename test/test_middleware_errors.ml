(* Error paths and edge cases of the middleware: a production system's
   behaviour on bad input matters as much as on good input. *)

module M = Tkr_middleware.Middleware
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple

let fresh () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES ('Ann', 'SP', 3, 10);
     |});
  m

let expect_error name f =
  Alcotest.test_case name `Quick (fun () ->
      try
        ignore (f (fresh ()));
        Alcotest.failf "%s: expected an error" name
      with
      | M.Error _ | M.Rejected _ | Tkr_sql.Parser.Error _
      | Tkr_sql.Analyzer.Error _ | Tkr_sql.Lexer.Error _
      | Tkr_relation.Schema.Unknown _ ->
        ())

let errors =
  [
    expect_error "nested SEQ VT" (fun m ->
        M.query m "SEQ VT (SELECT name FROM (SEQ VT (SELECT * FROM works)) AS x)");
    expect_error "unknown table" (fun m -> M.query m "SELECT * FROM missing");
    expect_error "unknown column" (fun m -> M.query m "SELECT wat FROM works");
    expect_error "order by unknown column" (fun m ->
        M.query m "SELECT name FROM works ORDER BY nope");
    expect_error "order by out-of-range position" (fun m ->
        M.query m "SELECT name FROM works ORDER BY 7");
    expect_error "union incompatible arity" (fun m ->
        M.query m "SELECT name, skill FROM works UNION ALL SELECT name FROM works");
    expect_error "aggregate in where" (fun m ->
        M.query m "SELECT name FROM works WHERE count(*) > 1");
    expect_error "bare column with group by" (fun m ->
        M.query m "SELECT name FROM works GROUP BY skill");
    expect_error "insert arity mismatch" (fun m ->
        M.execute m "INSERT INTO works VALUES ('x', 'y', 1)");
    expect_error "insert non-literal" (fun m ->
        M.execute m "INSERT INTO works VALUES (name, 'y', 1, 2)");
    expect_error "update unknown column" (fun m ->
        M.execute m "UPDATE works SET wat = 1");
    expect_error "create with bad period column" (fun m ->
        M.execute m "CREATE TABLE t (a text, b int, e int) PERIOD (missing, e)");
    expect_error "create with non-int period" (fun m ->
        M.execute m "CREATE TABLE t (a text, b text, e int) PERIOD (b, e)");
    expect_error "select star with group by" (fun m ->
        M.query m "SELECT * FROM works GROUP BY skill");
    expect_error "query on DDL entry point" (fun m ->
        M.query m "DROP TABLE works");
    expect_error "limit non-integer" (fun m ->
        M.query m "SELECT name FROM works LIMIT x");
    expect_error "seq vt over later-dropped table" (fun m ->
        ignore (M.execute m "DROP TABLE works");
        M.query m "SEQ VT (SELECT name FROM works)");
  ]

(* edge cases that must NOT error *)

let test_empty_table_snapshot () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:10;
  ignore (M.execute m "CREATE TABLE t (x text, b int, e int) PERIOD (b, e)");
  let r = M.query m "SEQ VT (SELECT count(*) AS c FROM t)" in
  (* count 0 over the whole domain *)
  Alcotest.(check int) "one gap row" 1 (Table.cardinality r);
  match (Table.rows r).(0) with
  | row ->
      Alcotest.(check bool) "count 0" true
        (Value.equal (Tuple.get row 0) (Value.Int 0));
      Alcotest.(check bool) "covers domain" true
        (Value.equal (Tuple.get row 1) (Value.Int 0)
        && Value.equal (Tuple.get row 2) (Value.Int 10))

let test_quoted_identifier_free_sql () =
  let m = fresh () in
  (* keywords are case-insensitive *)
  let r = M.query m "select NAME from WORKS where SKILL = 'SP'" in
  Alcotest.(check int) "case insensitive" 1 (Table.cardinality r)

let test_same_table_twice () =
  let m = fresh () in
  let r =
    M.query m
      "SEQ VT (SELECT w1.name FROM works w1, works w2 WHERE w1.name = w2.name)"
  in
  Alcotest.(check bool) "self join" true (Table.cardinality r >= 1)

let test_whole_domain_insert_then_query () =
  let m = fresh () in
  ignore (M.execute m "INSERT INTO works VALUES ('Zed', 'SP', 0, 24)");
  let r = M.query m "SEQ VT AS OF 0 (SELECT name FROM works)" in
  Alcotest.(check int) "only Zed at 0" 1 (Table.cardinality r)

let suite =
  ( "middleware error handling",
    errors
    @ [
        Alcotest.test_case "empty period table aggregates" `Quick
          test_empty_table_snapshot;
        Alcotest.test_case "case-insensitive keywords" `Quick
          test_quoted_identifier_free_sql;
        Alcotest.test_case "self join with aliases" `Quick test_same_table_twice;
        Alcotest.test_case "AS OF after insert" `Quick
          test_whole_domain_insert_then_query;
      ] )
