let () =
  Alcotest.run "snapshot-semantics"
    [
      Test_timeline.suite;
      Test_semiring.suite;
      Test_temporal.suite;
      Test_core.suite;
      Test_relation.suite;
      Test_engine.suite;
      Test_sqlenc.suite;
      Test_sql.suite;
      Test_middleware.suite;
      Test_baseline.suite;
      Test_middleware_errors.suite;
      Test_workload.suite;
      Test_extensions.suite;
      Test_representation.suite;
      Test_optimizer.suite;
      Test_simplify.suite;
      Test_compiled.suite;
      Test_set_mode.suite;
      Test_snapshot.suite;
      Test_obs.suite;
      Test_check.suite;
      Test_perf.suite;
      Test_par.suite;
      Test_serve.suite;
    ]
