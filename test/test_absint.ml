(* The abstract interpreter (Tkr_check.Absint): interval-lattice unit
   tests, inferred-fact checks, TKR4xx emission rules, EXPLAIN bounds
   rendering, and the soundness bar of analysis-driven pruning — pruned
   plans are byte-identical (same rows, same order) to unpruned ones on
   random plans (both backends) and on the committed workloads. *)

module M = Tkr_middleware.Middleware
module D = Tkr_check.Diagnostic
module Absint = Tkr_check.Absint
module Domain = Tkr_check.Domain
module Check = Tkr_check.Check
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table
module Exec = Tkr_engine.Exec
module Compiled = Tkr_engine.Compiled
module Trace = Tkr_obs.Trace
module Schema = Tkr_relation.Schema
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple
module Expr = Tkr_relation.Expr
module Algebra = Tkr_relation.Algebra
module Agg = Tkr_relation.Agg
module W = Tkr_workload.Employees
module Q = Tkr_workload.Queries

let codes ds = List.map (fun (d : D.t) -> d.D.code) ds

(* ---- the interval lattice ---- *)

let test_itv () =
  let open Domain.Itv in
  Alcotest.(check bool) "bot is bot" true (is_bot bot);
  Alcotest.(check bool) "top not bot" false (is_bot top);
  Alcotest.(check bool) "meet disjoint is bot" true
    (is_bot (meet (at_most 3) (at_least 5)));
  Alcotest.(check bool) "meet overlap not bot" false
    (is_bot (meet (at_most 5) (at_least 3)));
  Alcotest.(check bool) "mem in bounds" true (mem 4 (of_bounds 0 9));
  Alcotest.(check bool) "mem out of bounds" false (mem 10 (of_bounds 0 9));
  Alcotest.(check bool) "subset" true (subset (of_bounds 2 3) (at_least 0));
  Alcotest.(check bool) "not subset" false (subset (at_least 0) (of_bounds 2 3));
  Alcotest.(check bool) "bot subset of anything" true
    (subset bot (singleton 7));
  (* join is the convex hull, with bot as identity *)
  Alcotest.(check bool) "join hull" true
    (join (singleton 1) (singleton 5) = of_bounds 1 5);
  Alcotest.(check bool) "join bot id" true (join bot (singleton 2) = singleton 2);
  (* an impossible column needs bottom AND non-nullness: an all-NULL
     column has a bottom interval but its rows still exist *)
  Alcotest.(check bool) "bot+nonnull impossible" true
    (Domain.col_impossible { Domain.itv = bot; nonnull = true });
  Alcotest.(check bool) "bot+nullable possible" false
    (Domain.col_impossible { Domain.itv = bot; nonnull = false })

(* ---- facts and diagnostics on hand-built plans ---- *)

let enc =
  Schema.make
    [ Schema.attr "x" Value.TInt; Schema.attr "__b" Value.TInt;
      Schema.attr "__e" Value.TInt ]

let enc_lookup = function "enc" -> Some enc | _ -> None

let enc_env =
  Absint.env ~temporal:true
    ~is_period:(fun n -> n = "enc")
    ~time_bounds:(0, 24) enc_lookup

let vi k = Expr.Const (Value.Int k)

let test_facts () =
  (* base relation: period columns seeded from the time bounds *)
  let fact, ds = Absint.analyze enc_env (Algebra.Rel "enc") in
  Alcotest.(check (list string)) "no diags" [] (codes ds);
  Alcotest.(check bool) "period" true fact.Absint.period;
  Alcotest.(check bool) "b seeded" true
    (fact.Absint.cols.(1).Domain.itv = Domain.Itv.of_bounds 0 24);
  (* a selection narrows the window *)
  let sel =
    Algebra.Select (Expr.Cmp (Expr.Ge, Expr.Col 1, vi 5), Algebra.Rel "enc")
  in
  let fact, _ = Absint.analyze enc_env sel in
  Alcotest.(check bool) "b narrowed" true
    (fact.Absint.cols.(1).Domain.itv = Domain.Itv.of_bounds 5 24);
  (* coalesce output is provably coalesced; a second coalesce warns *)
  let fact, ds =
    Absint.analyze enc_env (Algebra.Coalesce (Algebra.Coalesce (Rel "enc")))
  in
  Alcotest.(check bool) "coalesced" true fact.Absint.coalesced;
  Alcotest.(check (list string)) "TKR405" [ "TKR405" ] (codes ds);
  (* distinct over distinct is idempotent *)
  let _, ds =
    Absint.analyze enc_env (Algebra.Distinct (Algebra.Distinct (Rel "enc")))
  in
  Alcotest.(check (list string)) "TKR404" [ "TKR404" ] (codes ds)

let test_emission_rules () =
  let unsat =
    Expr.(And (Cmp (Gt, Col 0, vi 5), Cmp (Lt, Col 0, vi 3)))
  in
  (* TKR401 + TKR402 on an unsatisfiable selection *)
  let _, ds = Absint.analyze enc_env (Algebra.Select (unsat, Rel "enc")) in
  Alcotest.(check (list string)) "401+402" [ "TKR401"; "TKR402" ] (codes ds);
  (* ... but not when the child is already provably empty: one report *)
  let empty = Algebra.ConstRel (enc, []) in
  let _, ds = Absint.analyze enc_env (Algebra.Select (unsat, empty)) in
  Alcotest.(check (list string)) "no 401 on empty child" [ "TKR402" ] (codes ds);
  (* ungrouped aggregation yields its neutral row on empty input: the
     plan is NOT provably empty *)
  let count = { Algebra.func = Agg.Count_star; agg_name = "c" } in
  let fact, ds = Absint.analyze enc_env (Algebra.Agg ([], [ count ], empty)) in
  Alcotest.(check bool) "agg not empty" false fact.Absint.empty;
  Alcotest.(check (list string)) "no 402 through agg" [] (codes ds);
  (* temporal mode suppresses subsumption warnings (rewriter-generated
     predicates), non-temporal mode reports them *)
  let subsumed = Algebra.Select (Expr.Cmp (Expr.Ge, Expr.Col 1, vi 0), Rel "enc") in
  let _, ds = Absint.analyze enc_env subsumed in
  Alcotest.(check (list string)) "403 suppressed" [] (codes ds);
  let plain_env =
    Absint.env ~is_period:(fun n -> n = "enc") ~time_bounds:(0, 24) enc_lookup
  in
  let _, ds = Absint.analyze plain_env subsumed in
  Alcotest.(check (list string)) "403 reported" [ "TKR403" ] (codes ds);
  (* degenerate periods: bounds force Abegin >= Aend *)
  let _, ds =
    Absint.analyze enc_env
      (Algebra.Select (Expr.Cmp (Expr.Le, Expr.Col 2, vi 0), Rel "enc"))
  in
  Alcotest.(check (list string)) "407" [ "TKR407" ] (codes ds);
  (* NULL-aware soundness: a comparison over an all-NULL column infers a
     bottom interval, but the column is nullable so nothing is refuted *)
  let nullrel =
    Algebra.ConstRel (enc, [ Tuple.make [ Value.Null; Value.Int 0; Value.Int 1 ] ])
  in
  let fact, ds =
    Absint.analyze enc_env
      (Algebra.Select (Expr.Is_null (Expr.Col 0), nullrel))
  in
  Alcotest.(check bool) "not empty" false fact.Absint.empty;
  Alcotest.(check (list string)) "no diags" [] (codes ds)

(* ---- pruning: shape and byte identity on hand-built plans ---- *)

let small_db () =
  let db = Database.create () in
  let t =
    Table.make enc
      (List.map
         (fun (x, b, e) -> Tuple.make [ x; Value.Int b; Value.Int e ])
         [ (Value.Int 1, 0, 10); (Value.Int 2, 5, 15); (Value.Int 1, 0, 10);
           (Value.Null, 2, 8) ])
  in
  Database.add_table db "enc" t;
  db

let same_bytes (a : Table.t) (b : Table.t) =
  Schema.equal (Table.schema a) (Table.schema b)
  && Array.length (Table.rows a) = Array.length (Table.rows b)
  && Array.for_all2
       (fun x y -> Tuple.compare x y = 0)
       (Table.rows a) (Table.rows b)

let check_prune_identity ?(env = enc_env) db q =
  let pruned = Absint.prune env q in
  let r1 = Exec.eval db q and r2 = Exec.eval db pruned in
  if not (same_bytes r1 r2) then
    Alcotest.failf "pruned plan differs (Exec):@.%a@.vs@.%a" Algebra.pp q
      Algebra.pp pruned;
  let lookup n = Database.schema_of db n in
  let c1 = Compiled.compile ~lookup q Trace.disabled db
  and c2 = Compiled.compile ~lookup pruned Trace.disabled db in
  if not (same_bytes c1 c2) then
    Alcotest.failf "pruned plan differs (Compiled):@.%a@.vs@.%a" Algebra.pp q
      Algebra.pp pruned;
  pruned

let test_prune_shapes () =
  let db = small_db () in
  let unsat =
    Expr.(And (Cmp (Gt, Col 0, vi 5), Cmp (Lt, Col 0, vi 3)))
  in
  (* unsat selection collapses to an empty constant *)
  (match check_prune_identity db (Algebra.Select (unsat, Rel "enc")) with
  | Algebra.ConstRel (_, []) -> ()
  | p -> Alcotest.failf "expected empty const, got %a" Algebra.pp p);
  (* idempotent distinct is dropped *)
  (match check_prune_identity db (Algebra.Distinct (Algebra.Distinct (Rel "enc"))) with
  | Algebra.Distinct (Algebra.Rel "enc") -> ()
  | p -> Alcotest.failf "expected single distinct, got %a" Algebra.pp p);
  (* idempotent coalesce is dropped *)
  (match check_prune_identity db (Algebra.Coalesce (Algebra.Coalesce (Rel "enc"))) with
  | Algebra.Coalesce (Algebra.Rel "enc") -> ()
  | p -> Alcotest.failf "expected single coalesce, got %a" Algebra.pp p);
  (* one-sided unions shed the empty operand; Union(empty, r) keeps the
     left side's output names with a renaming projection when needed *)
  let empty = Algebra.ConstRel (enc, []) in
  (match check_prune_identity db (Algebra.Union (Rel "enc", empty)) with
  | Algebra.Rel "enc" -> ()
  | p -> Alcotest.failf "expected bare rel, got %a" Algebra.pp p);
  let renamed =
    Schema.make
      [ Schema.attr "y" Value.TInt; Schema.attr "b2" Value.TInt;
        Schema.attr "e2" Value.TInt ]
  in
  (match
     check_prune_identity db (Algebra.Union (Algebra.ConstRel (renamed, []), Rel "enc"))
   with
  | Algebra.Project (_, Algebra.Rel "enc") -> ()
  | p -> Alcotest.failf "expected renaming project, got %a" Algebra.pp p);
  (* difference with a provably-empty subtrahend is the left side *)
  (match check_prune_identity db (Algebra.Diff (Rel "enc", empty)) with
  | Algebra.Rel "enc" -> ()
  | p -> Alcotest.failf "expected bare rel, got %a" Algebra.pp p);
  (* the neutral row survives: Agg([]) over a pruned-empty child *)
  let count = { Algebra.func = Agg.Count_star; agg_name = "c" } in
  ignore
    (check_prune_identity db
       (Algebra.Agg ([], [ count ], Algebra.Select (unsat, Rel "enc"))))

(* ---- random-plan differential: pruned == unpruned, byte for byte ---- *)

(* all generated plans keep the [int; int; int] encoded shape so unions
   and differences stay compatible; constants include NULLs and empties
   to exercise the nullable-column and empty-operand rules *)
let gen_plan : Algebra.t QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_const =
    let* rows = int_range 0 3 in
    let* tuples =
      list_repeat rows
        (let* x = oneof [ map (fun k -> Value.Int k) (int_range (-1) 7); return Value.Null ] in
         let* b = int_range 0 20 in
         let+ len = int_range 0 6 in
         Tuple.make [ x; Value.Int b; Value.Int (b + len) ])
    in
    return (Algebra.ConstRel (enc, tuples))
  in
  let gen_leaf = oneof [ return (Algebra.Rel "enc"); gen_const ] in
  let gen_cmp =
    let* op =
      oneofl [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ]
    in
    let* col = int_range 0 2 in
    let+ k = int_range (-1) 25 in
    Expr.Cmp (op, Expr.Col col, vi k)
  in
  let gen_pred =
    oneof
      [
        gen_cmp;
        map2 (fun a b -> Expr.And (a, b)) gen_cmp gen_cmp;
        map (fun c -> Expr.Is_null (Expr.Col c)) (int_range 0 2);
        map (fun c -> Expr.Not (Expr.Is_null (Expr.Col c))) (int_range 0 2);
        map2
          (fun c ks -> Expr.In_list (Expr.Col c, List.map (fun k -> Value.Int k) ks))
          (int_range 0 2)
          (list_size (int_range 1 3) (int_range 0 8));
      ]
  in
  let identity_projs =
    [ Algebra.proj (Expr.Col 0) "x"; Algebra.proj (Expr.Col 1) "__b";
      Algebra.proj (Expr.Col 2) "__e" ]
  in
  fix
    (fun self depth ->
      if depth = 0 then gen_leaf
      else
        frequency
          [
            (2, gen_leaf);
            (4, map2 (fun p q -> Algebra.Select (p, q)) gen_pred (self (depth - 1)));
            (2, map (fun q -> Algebra.Distinct q) (self (depth - 1)));
            (1, map (fun q -> Algebra.Project (identity_projs, q)) (self (depth - 1)));
            (2, map2 (fun l r -> Algebra.Union (l, r)) (self (depth - 1)) (self (depth - 1)));
            (2, map2 (fun l r -> Algebra.Diff (l, r)) (self (depth - 1)) (self (depth - 1)));
          ])
    3

let arb_plan =
  QCheck.make gen_plan ~print:(fun q -> Format.asprintf "%a" Algebra.pp q)

let prop_prune_byte_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:500 ~name:"pruning is byte-identical (both backends)"
       arb_plan (fun q ->
         let db = small_db () in
         (* the analysis must also never raise while diagnosing *)
         ignore (Absint.diagnose enc_env q);
         ignore (check_prune_identity db q);
         true))

(* random join queries from the optimizer suite, under the same bar *)
let prop_prune_joins =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"pruning is byte-identical on join queries"
       Test_optimizer.arb (fun q ->
         let db = Test_optimizer.db () in
         let lookup n =
           match Test_optimizer.lookup n with
           | s -> Some s
           | exception Schema.Unknown _ -> None
         in
         let env = Absint.env lookup in
         ignore (check_prune_identity ~env db q);
         true))

(* ---- workloads end-to-end: prune on/off through the middleware ---- *)

let test_workload_identity () =
  let db = W.generate { (W.scaled 60) with W.tmax = 1200 } in
  let m_on = M.create ~prune:true ~db ()
  and m_off = M.create ~prune:false ~db () in
  let extra =
    [
      ("as-of", "SEQ VT AS OF 600 (SELECT emp_no, salary FROM salaries)");
      ("as-of-late", "SEQ VT AS OF 5000 (SELECT emp_no FROM employees)");
      ("set", "SEQ VT SET (SELECT dept_no FROM dept_emp)");
      ("plain-dead",
       "SELECT emp_no FROM employees WHERE emp_no > 10 AND emp_no < 5");
      ("distinct-group",
       "SELECT DISTINCT dept_no, count(*) AS c FROM dept_emp GROUP BY dept_no");
    ]
  in
  List.iter
    (fun (name, sql) ->
      let a = M.query m_on sql and b = M.query m_off sql in
      if not (same_bytes a b) then
        Alcotest.failf "%s: prune on/off outputs differ" name)
    (Q.employee @ extra)

(* ---- EXPLAIN surfaces the inferred bounds ---- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_explain_bounds () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE w (x int, b int, e int) PERIOD (b, e);
       INSERT INTO w VALUES (1, 3, 10), (2, 8, 16);
     |});
  let text = M.explain m "SEQ VT (SELECT x FROM w)" in
  Alcotest.(check bool) "has analysis section" true (contains text "analysis:");
  Alcotest.(check bool) "has time window" true (contains text "time=[");
  Alcotest.(check bool) "has coalesced flag" true (contains text "coalesced");
  (* a provably-empty query renders as empty and warns in CHECK *)
  let ds = M.check m "SEQ VT (SELECT x FROM w WHERE x > 5 AND x < 3)" in
  Alcotest.(check bool) "401" true (List.mem "TKR401" (codes ds));
  Alcotest.(check bool) "402" true (List.mem "TKR402" (codes ds));
  (* positions: plan-level warnings carry the statement origin *)
  List.iter
    (fun (d : D.t) ->
      if d.D.pos = None then Alcotest.failf "%s has no position" d.D.code)
    ds

(* ---- Diagnostic.sort orders by position within equal codes ---- *)

let test_sort_positions () =
  let d line col = D.warning ~pos:{ D.line; col } "TKR401" "at %d:%d" line col in
  let nopos = D.warning "TKR401" "unpositioned" in
  let sorted = D.sort [ nopos; d 3 1; d 1 2; d 1 9 ] in
  Alcotest.(check (list (option (pair int int))))
    "source order, unpositioned last"
    [ Some (1, 2); Some (1, 9); Some (3, 1); None ]
    (List.map
       (fun (x : D.t) -> Option.map (fun (p : D.pos) -> (p.D.line, p.D.col)) x.D.pos)
       sorted)

let suite =
  ( "abstract interpretation",
    [
      Alcotest.test_case "interval lattice" `Quick test_itv;
      Alcotest.test_case "inferred facts" `Quick test_facts;
      Alcotest.test_case "TKR4xx emission rules" `Quick test_emission_rules;
      Alcotest.test_case "prune shapes + identity" `Quick test_prune_shapes;
      prop_prune_byte_identity;
      prop_prune_joins;
      Alcotest.test_case "workload prune on/off identity" `Quick
        test_workload_identity;
      Alcotest.test_case "EXPLAIN bounds + positions" `Quick test_explain_bounds;
      Alcotest.test_case "sort by position" `Quick test_sort_positions;
    ] )
