-- CRUD workload: the full statement surface (CREATE / INSERT / UPDATE /
-- DELETE, including the SQL:2011 FOR PORTION OF forms) interleaved with
-- snapshot queries.  Deterministic by construction, so CI byte-diffs its
-- output between the row and vec engines at any --jobs level.  Run with
--   tkr_cli run -f examples/sql/crud.sql --engine vec

CREATE TABLE staff (emp_no int, dept text, salary int, b int, e int)
  PERIOD (b, e);

INSERT INTO staff VALUES
  (1, 'eng',   60000,  0, 40),
  (2, 'eng',   55000,  5, 25),
  (3, 'sales', 50000, 10, 30),
  (4, 'sales', 52000,  0, 15),
  (5, 'eng',   70000, 20, 40);

-- head-count and payroll per department over time
SEQ VT (SELECT dept, count(*) AS heads, sum(salary) AS payroll
        FROM staff GROUP BY dept)
ORDER BY vt_begin;

-- a raise for employee 2 over the middle of their period only: the row
-- splits at the portion boundaries
UPDATE staff FOR PORTION OF PERIOD FROM 10 TO 20
  SET salary = 58000 WHERE emp_no = 2;

SEQ VT (SELECT emp_no, salary FROM staff WHERE emp_no = 2)
ORDER BY vt_begin;

-- sales closes early: remove the tail of every sales period
DELETE FROM staff FOR PORTION OF PERIOD FROM 25 TO 40
  WHERE dept = 'sales';

-- employee 4 leaves entirely
DELETE FROM staff WHERE emp_no = 4;

-- a flat update touching every remaining engineering row
UPDATE staff SET dept = 'platform' WHERE dept = 'eng';

-- final state: per-department aggregates and a self-join pairing
-- concurrent colleagues, over the mutated table
SEQ VT (SELECT dept, count(*) AS heads, min(salary) AS lo, max(salary) AS hi
        FROM staff GROUP BY dept)
ORDER BY vt_begin;

SEQ VT (SELECT s1.emp_no, s2.emp_no
        FROM staff s1, staff s2
        WHERE s1.dept = s2.dept AND s1.emp_no < s2.emp_no)
ORDER BY vt_begin;
