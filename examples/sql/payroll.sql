-- Bag difference and aggregation under snapshot semantics: the two
-- operations interval-based systems get wrong (Sections 3 and 6).
--   tkr_cli lint -f examples/sql/payroll.sql --Werror

CREATE TABLE salaries (emp int, amount int, b int, e int) PERIOD (b, e);
CREATE TABLE managers (emp int, b int, e int) PERIOD (b, e);
INSERT INTO salaries VALUES
  (1, 5000, 0, 12), (1, 6000, 12, 24), (2, 4000, 4, 20), (3, 4500, 8, 16);
INSERT INTO managers VALUES (1, 0, 24), (3, 10, 14);

-- EXCEPT ALL must subtract multiplicities per snapshot (the BD-bug
-- witness): non-manager salary payments at every time
SEQ VT (SELECT emp FROM salaries
        EXCEPT ALL
        SELECT emp FROM managers)
ORDER BY vt_begin;

-- total payroll over time, grouped per employee
SEQ VT (SELECT emp, sum(amount) AS total FROM salaries GROUP BY emp)
ORDER BY vt_begin;

-- ungrouped: the middleware covers gaps (count 0) per Section 6
SEQ VT (SELECT count(*) AS paid FROM salaries);
