-- The paper's running example (Figure 1): a project staffing table and
-- snapshot queries over it.  Run with
--   tkr_cli run -f examples/sql/quickstart.sql
-- or statically analyze without executing:
--   tkr_cli lint -f examples/sql/quickstart.sql --Werror

CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
INSERT INTO works VALUES
  ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
  ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);

-- how many SP workers at every point in time (Figure 1b); the gap rows
-- with count 0 are exactly what interval-based systems lose (the AG bug)
SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')
ORDER BY vt_begin;

-- per-skill staffing, grouped
SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)
ORDER BY vt_begin;

-- pairs working concurrently with the same skill
SEQ VT (SELECT w1.name, w2.name
        FROM works w1, works w2
        WHERE w1.skill = w2.skill AND w1.name <> w2.name);
