-- AS OF timeslices and the temporal interval index.  Run with
--   tkr_cli run -f examples/sql/asof.sql
-- and compare the two access paths (byte-identical results):
--   tkr_cli run -f examples/sql/asof.sql --index off
-- or look at the planner's decision without executing:
--   tkr_cli explain "SEQ VT AS OF 9 (SELECT name FROM works)"

CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
INSERT INTO works VALUES
  ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
  ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);

-- the snapshot at one point in time: the AS OF pushdown becomes a
-- stab probe (Abegin <= 9 < Aend) into the endpoint-sorted index
SEQ VT AS OF 9 (SELECT name, skill FROM works);

-- a user filter above the timeslice fuses with the pushdown into one
-- index-answerable selection; the residual predicate re-filters the
-- candidates, so the result matches the scan byte for byte
SEQ VT AS OF 9 (SELECT name FROM works WHERE skill = 'SP');

-- timeslice cardinality: what the delta-summation structure counts in
-- O(log n) (two binary searches over the endpoint arrays)
SEQ VT AS OF 9 (SELECT count(*) AS headcount FROM works);

-- an overlap range over the period columns directly: rows alive at any
-- point of [8, 16) — begin bounded above, end bounded below
SELECT name, b, e FROM works WHERE b < 16 AND e > 8;
