#!/usr/bin/env bash
# Golden test for the CLI's error hygiene: every failure class prints one
# line to stderr and exits with its documented code (2 parse, 3 check,
# 4 runtime, 5 I/O, 124 usage).  Run by the dune rule in bin/dune, which
# diffs the output against cli_errors.expected.
set -u
CLI="$1"
case "$CLI" in */*) ;; *) CLI="./$CLI" ;; esac

run() {
  "$CLI" "$@" 2>&1
  echo "exit=$?"
}

echo "# ok: query runs, exit 0"
run run -e "CREATE TABLE t (x int); INSERT INTO t VALUES (1); SELECT x FROM t"

echo "# parse error -> 2"
run run -e "SELEC 1"

echo "# static check failure -> 3"
run lint -e "SELECT x FROM nothing"

echo "# runtime/semantic error -> 4"
run run -e "SELECT x FROM nothing"

echo "# I/O error -> 5"
run run -f no-such-file.sql

echo "# usage error -> 124"
run run
