(* Regenerates every table and figure of the paper's evaluation section
   (Section 10) on the synthetic workloads, plus the qualitative Table 1.

   Usage: experiments [fig1|table1|table2|fig5|table3emp|table3tpc|ablation|all]

   Absolute numbers differ from the paper (different hardware, a from-
   scratch in-memory engine, scaled datasets); the comparisons reproduce
   the paper's *shapes*: who wins, by what order of magnitude, and where
   the bugs appear. *)

module M = Tkr_middleware.Middleware
module B = Tkr_baseline.Baseline
module W = Tkr_workload.Employees
module T = Tkr_workload.Tpcbih
module Q = Tkr_workload.Queries
module Table = Tkr_engine.Table
module Database = Tkr_engine.Database
module Ops = Tkr_engine.Ops
module Rewriter = Tkr_sqlenc.Rewriter
module Value = Tkr_relation.Value
module Tuple = Tkr_relation.Tuple

let printf = Printf.printf

(* median-of-3 wall-clock timing with one warmup; a full major collection
   first, so long experiment sequences don't bleed GC debt into each
   other's samples *)
let time_run f =
  Gc.full_major ();
  ignore (f ());
  let sample () =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let samples = List.sort compare [ sample (); sample (); sample () ] in
  List.nth samples 1

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* measurements collected for the --json dump (canonical Tkr_perf
   schema); [runs] is the sample count behind the figure *)
let collected : (string * float * int) list ref = ref []

let record ?(runs = 3) name secs =
  collected := (name, secs, runs) :: !collected;
  secs

(* ------------------------------------------------------------------ *)

let fig1 () =
  printf "=== Figure 1: running example ===\n\n";
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
       CREATE TABLE assign (mach text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO assign VALUES
         ('M1', 'SP', 3, 12), ('M2', 'SP', 6, 14), ('M3', 'NS', 3, 16);
     |});
  printf "Qonduty (snapshot aggregation, note the count-0 gap rows):\n%s\n"
    (Table.to_text
       (M.query m
          "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP') \
           ORDER BY vt_begin"));
  printf "Qskillreq (snapshot bag difference, note the SP rows):\n%s\n"
    (Table.to_text
       (M.query m
          "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works) \
           ORDER BY skill DESC, vt_begin"))

(* ------------------------------------------------------------------ *)

let table1 () =
  printf "=== Table 1: interval-based approaches (empirical check) ===\n\n";
  let module PE =
    Tkr_sqlenc.Period_enc.Make (struct
      let domain = Tkr_timeline.Domain.make ~tmin:0 ~tmax:24
    end)
  in
  let module Schema = Tkr_relation.Schema in
  let module Expr = Tkr_relation.Expr in
  let module Algebra = Tkr_relation.Algebra in
  let schema3 name =
    Schema.make
      [ Schema.attr name Value.TStr; Schema.attr "__b" Value.TInt;
        Schema.attr "__e" Value.TInt ]
  in
  let mkdb rows_works rows_assign =
    let db = Database.create ~tmin:0 ~tmax:24 () in
    let t _name rows =
      Table.make
        (Schema.make
           [ Schema.attr "x" Value.TStr; Schema.attr "skill" Value.TStr;
             Schema.attr "__b" Value.TInt; Schema.attr "__e" Value.TInt ])
        (List.map
           (fun (x, s, b, e) ->
             Tuple.make [ Value.Str x; Value.Str s; Value.Int b; Value.Int e ])
           rows)
    in
    Database.add_period_table db "works" (t "works" rows_works);
    Database.add_period_table db "assign" (t "assign" rows_assign);
    db
  in
  let works =
    [ ("Ann", "SP", 3, 10); ("Joe", "NS", 8, 16); ("Sam", "SP", 8, 16);
      ("Ann", "SP", 18, 20) ]
  in
  let assign = [ ("M1", "SP", 3, 12); ("M2", "SP", 6, 14); ("M3", "NS", 3, 16) ] in
  let db = mkdb works assign in
  let qonduty =
    Algebra.Agg
      ( [],
        [ { Algebra.func = Tkr_relation.Agg.Count_star; agg_name = "cnt" } ],
        Algebra.Select
          (Expr.Cmp (Expr.Eq, Expr.Col 1, Expr.Const (Value.Str "SP")),
           Algebra.Rel "works") )
  in
  let qskillreq =
    Algebra.Diff
      ( Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "assign"),
        Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works") )
  in
  let qdup =
    (* multiset check: a self-union must double multiplicities *)
    Algebra.Project
      ( [ Algebra.proj (Expr.Col 1) "skill" ],
        Algebra.Union (Algebra.Rel "works", Algebra.Rel "works") )
  in
  let lookup n = Database.data_schema_of db n in
  let ours q =
    Tkr_engine.Exec.eval db
      (Rewriter.rewrite ~options:Rewriter.optimized ~tmin:0 ~tmax:24 ~lookup q)
  in
  let has_gap t =
    Array.exists
      (fun r -> Value.equal (Tuple.get r 0) (Value.Int 0))
      (Table.rows t)
  in
  let has_sp t =
    Array.exists
      (fun r -> Value.equal (Tuple.get r 0) (Value.Str "SP"))
      (Table.rows t)
  in
  let multiset_ok t =
    (* 8 rows of skill with doubled multiplicity at peak: check > 4 rows *)
    ignore (schema3 "skill");
    Table.cardinality t > 4
  in
  let unique_check eval =
    (* two snapshot-equivalent encodings of the same relation *)
    let db1 = mkdb [ ("Ann", "SP", 3, 10) ] assign in
    let db2 = mkdb [ ("Ann", "SP", 3, 7); ("Ann", "SP", 7, 10) ] assign in
    let q =
      Algebra.Project ([ Algebra.proj (Expr.Col 1) "skill" ], Algebra.Rel "works")
    in
    Table.equal_bag (eval db1 q) (eval db2 q)
  in
  let approaches =
    [
      ( "Our approach",
        fun db q ->
          let lookup n = Database.data_schema_of db n in
          Tkr_engine.Exec.eval db
            (Rewriter.rewrite ~options:Rewriter.optimized ~tmin:0 ~tmax:24
               ~lookup q) );
      ("Interval preservation (ATSQL)", fun db q -> B.eval B.Interval_preservation db q);
      ("Temporal alignment (PG-Nat)", fun db q -> B.eval B.Alignment db q);
      ("Teradata statement modifiers", fun db q -> B.eval B.Teradata db q);
    ]
  in
  printf "%-32s %-9s %-8s %-8s %-8s\n" "Approach" "Multiset" "AG-free" "BD-free"
    "Unique";
  List.iter
    (fun (name, eval) ->
      let yn b = if b then "yes" else "NO" in
      let bd =
        match has_sp (eval db qskillreq) with
        | b -> yn b
        | exception B.Unsupported_operation _ -> "N/A"
      in
      printf "%-32s %-9s %-8s %-8s %-8s\n" name
        (yn (multiset_ok (eval db qdup)))
        (yn (has_gap (eval db qonduty)))
        bd
        (yn (unique_check eval)))
    approaches;
  ignore ours;
  printf "\n(the paper's Table 1 rows for TSQL2/ATSQL2/TimeDB/SQL-Temporal\n\
          correspond to the two baseline styles above; our approach is the\n\
          only yes/yes/yes/yes row, matching the paper)\n\n"

(* ------------------------------------------------------------------ *)

let emp_config = { (W.scaled 800) with tmax = 4000 }

let table2 () =
  printf "=== Table 2: result row counts ===\n\n";
  let m = M.create ~db:(W.generate emp_config) () in
  printf "Employee workload (%d employees):\n" emp_config.W.employees;
  List.iter
    (fun (name, sql) ->
      let t = M.query m sql in
      printf "  %-10s %8d rows\n%!" name (Table.cardinality t))
    Q.employee;
  List.iter
    (fun (label, scale) ->
      let m = M.create ~db:(T.generate { T.default with scale }) () in
      printf "\nTPC-BiH %s (scale %.2f):\n" label scale;
      List.iter
        (fun (name, sql) ->
          let t = M.query m sql in
          printf "  %-10s %8d rows\n%!" name (Table.cardinality t))
        Q.tpch)
    [ ("small", 1.0); ("large", 4.0) ]

(* ------------------------------------------------------------------ *)

let fig5 () =
  printf "=== Figure 5: multiset coalescing, runtime vs input size ===\n\n";
  printf "%10s %12s %14s\n" "rows" "time (s)" "us per row";
  List.iter
    (fun n ->
      let t = W.coalesce_input ~n ~seed:11 ~tmax:4000 in
      let secs =
        record
          (Printf.sprintf "fig5/coalesce-%d" n)
          (time_run (fun () -> Ops.coalesce t))
      in
      printf "%10d %12.5f %14.3f\n%!" n secs (1e6 *. secs /. float_of_int n))
    [ 1_000; 3_000; 10_000; 30_000; 100_000; 300_000 ]

(* ------------------------------------------------------------------ *)

let bug_of_query = function
  | "agg-2" | "agg-3" -> "AG"
  | "diff-1" | "diff-2" -> "BD"
  | "Q6" | "Q14" | "Q19" -> "AG"
  | _ -> ""

let table3emp () =
  printf "=== Table 3 (top): employee snapshot queries, runtime (s) ===\n\n";
  printf "(Seq = our middleware, optimized rewriting; Lit = ours without the\n";
  printf " Section 9 optimizations; Nat = temporal-alignment native baseline\n";
  printf " paired with coalescing, as PG-Nat in the paper)\n\n";
  let db = W.generate emp_config in
  let m = M.create ~db () in
  let m_lit = M.create ~options:Rewriter.literal ~db () in
  printf "%-10s %10s %10s %10s   %-4s\n" "query" "Seq" "Lit" "Nat" "Bug";
  List.iter
    (fun (name, sql) ->
      let p = M.prepare m sql in
      let seq =
        record ("table3emp/" ^ name ^ "/seq")
          (time_run (fun () -> M.run_prepared m p))
      in
      let p_lit = M.prepare m_lit sql in
      let lit =
        record ("table3emp/" ^ name ^ "/lit")
          (time_run (fun () -> M.run_prepared m_lit p_lit))
      in
      let algebra, _ = M.snapshot_algebra m sql in
      let nat =
        record ("table3emp/" ^ name ^ "/nat")
          (time_run (fun () -> B.eval_coalesced B.Alignment db algebra))
      in
      printf "%-10s %10.4f %10.4f %10.4f   %-4s\n%!" name seq lit nat
        (bug_of_query name))
    Q.employee

let table3tpc () =
  printf "=== Table 3 (bottom): TPC-BiH snapshot queries, runtime (s) ===\n\n";
  List.iter
    (fun (label, scale) ->
      let db = T.generate { T.default with scale } in
      let m = M.create ~db () in
      printf "scale %s (%.2f):\n" label scale;
      printf "  %-6s %10s %10s   %-4s\n" "query" "Seq" "Nat" "Bug";
      List.iter
        (fun name ->
          let sql = Q.lookup name Q.tpch in
          let p = M.prepare m sql in
          let seq =
            record
              (Printf.sprintf "table3tpc/%s/%s/seq" label name)
              (time_run (fun () -> M.run_prepared m p))
          in
          let algebra, _ = M.snapshot_algebra m sql in
          let nat, _ = time_once (fun () -> B.eval_coalesced B.Alignment db algebra) in
          let nat =
            record ~runs:1 (Printf.sprintf "table3tpc/%s/%s/nat" label name) nat
          in
          printf "  %-6s %10.4f %10.4f   %-4s\n%!" name seq nat (bug_of_query name))
        Q.tpch_perf_names;
      printf "\n")
    [ ("small", 1.0); ("large", 4.0) ]

(* ------------------------------------------------------------------ *)

let ablation () =
  printf "=== Ablation: the Section 9 optimizations in isolation ===\n\n";
  let db = W.generate emp_config in
  let configs =
    [
      ("optimized (final C, fused agg)", Rewriter.optimized);
      ("per-op coalesce, fused agg",
        { Rewriter.final_coalesce_only = false; fused_split_agg = true });
      ("final C, literal Fig.4 agg",
        { Rewriter.final_coalesce_only = true; fused_split_agg = false });
      ("literal Fig. 4", Rewriter.literal);
    ]
  in
  printf "%-34s %10s %10s %10s\n" "configuration" "join-1" "agg-1" "agg-2";
  List.iter
    (fun (label, options) ->
      let m = M.create ~options ~db () in
      let t q =
        let p = M.prepare m (Q.lookup q Q.employee) in
        record
          (Printf.sprintf "ablation/%s/%s" label q)
          (time_run (fun () -> M.run_prepared m p))
      in
      printf "%-34s %10.4f %10.4f %10.4f\n%!" label (t "join-1") (t "agg-1")
        (t "agg-2"))
    configs;
  (* hash join + overlap residual vs the dedicated sort-based interval join *)
  (* execution backends and the join-order optimizer *)
  printf "\nExecution backends and join ordering (seconds):\n";
  let m_int = M.create ~backend:M.Interpreted ~db () in
  let m_cmp = M.create ~backend:M.Compiled ~db () in
  let m_noopt = M.create ~optimize:false ~db () in
  let t tag m q =
    let p = M.prepare m (Q.lookup q Q.employee) in
    record
      (Printf.sprintf "ablation/%s/%s" tag q)
      (time_run (fun () -> M.run_prepared m p))
  in
  printf "  %-34s %10s %10s\n" "" "join-4" "agg-1";
  printf "  %-34s %10.4f %10.4f\n" "interpreted, join reordering"
    (t "interpreted" m_int "join-4")
    (t "interpreted" m_int "agg-1");
  printf "  %-34s %10.4f %10.4f\n" "compiled closures"
    (t "compiled" m_cmp "join-4")
    (t "compiled" m_cmp "agg-1");
  printf "  %-34s %10.4f %10.4f\n%!" "no join reordering"
    (t "no-reorder" m_noopt "join-4")
    (t "no-reorder" m_noopt "agg-1");
  printf "\nOverlap join strategies (salaries x titles on emp_no):\n";
  let salaries = Database.find db "salaries" in
  let titles = Database.find db "titles" in
  let module Expr = Tkr_relation.Expr in
  let pred =
    Expr.(
      And
        ( Cmp (Eq, Col 0, Col 4),
          And (Cmp (Lt, Col 2, Col 7), Cmp (Lt, Col 6, Col 3)) ))
  in
  let hash =
    record "ablation/overlap-join/hash"
      (time_run (fun () -> Tkr_engine.Exec.join pred salaries titles))
  in
  let sweep =
    record "ablation/overlap-join/sweep"
      (time_run (fun () ->
           Tkr_engine.Interval_join.overlap_join ~left_keys:[ 0 ]
             ~right_keys:[ 0 ] salaries titles))
  in
  printf "  hash join + overlap residual: %.4f s\n" hash;
  printf "  sort-based interval join:     %.4f s\n" sweep

(* ------------------------------------------------------------------ *)

let tourism () =
  printf "=== Tourism dataset (simulated; technical-report workload) ===\n\n";
  let db = Tkr_workload.Tourism.generate Tkr_workload.Tourism.default in
  let m = M.create ~db () in
  printf "facilities: %d rows, stays: %d rows\n\n"
    (Table.cardinality (Database.find db "facilities"))
    (Table.cardinality (Database.find db "stays"));
  List.iter
    (fun (name, sql) ->
      let p = M.prepare m sql in
      let secs =
        record ("tourism/" ^ name) (time_run (fun () -> M.run_prepared m p))
      in
      let rows = Table.cardinality (M.run_prepared m p) in
      printf "  %-24s %8d rows   %8.4f s\n%!" name rows secs)
    Tkr_workload.Tourism.queries;
  printf
    "\n(the total-guests gap rows are the off-season periods; native\n\
    \ approaches with the AG bug report nothing there)\n\n"

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)

module Trace = Tkr_obs.Trace
module Json = Tkr_obs.Json
module Bench_result = Tkr_perf.Bench_result

(* one traced execution per employee query at a small scale: the JSON dump
   carries per-operator counters (with GC/allocation deltas), not just
   end-to-end wall times *)
let operator_traces () : Json.t =
  let m = M.create ~db:(W.generate { (W.scaled 200) with W.tmax = 2000 }) () in
  Json.List
    (List.map
       (fun (name, sql) ->
         let p = M.prepare m sql in
         let obs = Trace.create ~gc:true () in
         ignore (M.run_prepared ~obs m p);
         Json.Obj
           [
             ("query", Json.Str name);
             ("trace", Json.List (List.map Trace.to_json_value (Trace.roots obs)));
             ("phases", M.phase_stats_json (M.prepared_stats p));
           ])
       Q.employee)

(* collected names are "suite/rest..."; key the canonical schema on the
   same split *)
let split_name full =
  match String.index_opt full '/' with
  | Some i ->
      ( String.sub full 0 i,
        String.sub full (i + 1) (String.length full - i - 1) )
  | None -> ("experiments", full)

let write_json path =
  let results =
    List.rev_map
      (fun (name, secs, runs) ->
        let suite, test = split_name name in
        Bench_result.result ~suite ~name:test ~runs (secs *. 1e9))
      !collected
  in
  Bench_result.write path
    (Bench_result.make ~source:"bin/experiments.ml"
       ~extra:[ ("operator_traces", operator_traces ()) ]
       results);
  printf "wrote %s\n%!" path

let () =
  (* [--json [PATH]] dumps every measurement plus per-operator traces *)
  let args = List.tl (Array.to_list Sys.argv) in
  let json_path, args =
    let rec go acc = function
      | "--json" :: path :: rest when String.length path > 0 && path.[0] <> '-'
        ->
          (Some path, List.rev_append acc rest)
      | "--json" :: rest ->
          (Some (Bench_result.default_filename ()), List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let which = match args with w :: _ -> w | [] -> "all" in
  let run = function
    | "fig1" -> fig1 ()
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "fig5" -> fig5 ()
    | "table3emp" -> table3emp ()
    | "table3tpc" -> table3tpc ()
    | "ablation" -> ablation ()
    | "tourism" -> tourism ()
    | other -> failwith ("unknown experiment " ^ other)
  in
  (match which with
  | "all" ->
      List.iter run
        [
          "fig1"; "table1"; "table2"; "fig5"; "table3emp"; "table3tpc";
          "tourism"; "ablation";
        ]
  | w -> run w);
  match json_path with None -> () | Some path -> write_json path
