(* The middleware's command-line interface.

   Subcommands:
     demo                      run the paper's running example
     gen  --dataset D --out P  generate a workload dataset as CSV files
     run  --data DIR [-e SQL | -f FILE]
                               run SQL (with SEQ VT support) against CSVs
     lint [--workload W] [-e SQL] [-f FILE]...
                               static analysis only: type check, validate
                               plan invariants and lint for snapshot bugs
     bench run|compare|export  perf trajectory: run the quick suite,
                               detect regressions between two BENCH
                               files, export to OpenMetrics/flamegraphs
*)

open Cmdliner
module M = Tkr_middleware.Middleware
module Ast = Tkr_sql.Ast
module Diagnostic = Tkr_check.Diagnostic
module Lint = Tkr_check.Lint
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table
module Csv_io = Tkr_engine.Csv_io
module Bench_result = Tkr_perf.Bench_result
module Perf_compare = Tkr_perf.Compare
module Perf_export = Tkr_perf.Export
module Perf_runner = Tkr_perf.Runner

let print_result ?(max_rows = 100) = function
  | M.Rows t -> print_string (Table.to_text ~max_rows t)
  | M.Done msg -> Printf.printf "%s\n" msg

(* --- demo --- *)

let demo () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
     |});
  print_endline "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
  print_result
    (M.execute m
       "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP') ORDER BY vt_begin")

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run the paper's running example (Figure 1b)")
    Term.(const demo $ const ())

(* --- gen --- *)

let gen dataset out scale =
  let db =
    match dataset with
    | `Employees ->
        Tkr_workload.Employees.generate
          (Tkr_workload.Employees.scaled (int_of_float (500. *. scale)))
    | `Tpcbih ->
        Tkr_workload.Tpcbih.generate { Tkr_workload.Tpcbih.default with scale }
  in
  (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun name ->
      let path = Filename.concat out (name ^ ".csv") in
      Csv_io.write_table path (Database.find db name);
      Printf.printf "wrote %s (%d rows)\n" path
        (Table.cardinality (Database.find db name)))
    (Database.names db)

let gen_cmd =
  let dataset =
    Arg.(
      required
      & opt (some (enum [ ("employees", `Employees); ("tpcbih", `Tpcbih) ])) None
      & info [ "dataset"; "d" ] ~docv:"NAME" ~doc:"employees or tpcbih")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"output directory")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~doc:"scale factor")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload dataset as CSV period tables")
    Term.(const gen $ dataset $ out $ scale)

(* --- run --- *)

let load_dir m dir =
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".csv" then (
        let name = Filename.remove_extension file in
        let table = Csv_io.read_table (Filename.concat dir file) in
        (* tables whose last two columns are integers named vt_* are
           registered as period tables *)
        let schema = Tkr_engine.Table.schema table in
        let n = Tkr_relation.Schema.arity schema in
        let is_period =
          n >= 2
          && (let a = Tkr_relation.Schema.get schema (n - 2) in
              let b = Tkr_relation.Schema.get schema (n - 1) in
              a.ty = Tkr_relation.Value.TInt
              && b.ty = Tkr_relation.Value.TInt
              && String.length a.name >= 3
              && String.sub a.name 0 3 = "vt_")
        in
        if is_period then Database.add_period_table (M.database m) name table
        else Database.add_table (M.database m) name table;
        Printf.eprintf "loaded %s (%d rows%s)\n%!" name
          (Table.cardinality table)
          (if is_period then ", period table" else "")))
    (Sys.readdir dir)

let read_file f =
  let ic = open_in f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run data workload jobs sql file explain stats max_rows =
  match (sql, file, workload) with
  | Some _, Some _, _ -> Error (`Msg "provide at most one of -e SQL or -f FILE")
  | None, None, None ->
      Error (`Msg "provide -e SQL, -f FILE or --workload NAME")
  | _ -> (
      let db =
        match workload with
        | Some `Employee ->
            let module W = Tkr_workload.Employees in
            W.generate { (W.scaled 150) with W.tmax = 2000 }
        | Some `Tpch ->
            Tkr_workload.Tpcbih.generate
              { Tkr_workload.Tpcbih.default with scale = 0.05 }
        | None -> Database.create ()
      in
      let m = M.create ~parallelism:jobs ~db () in
      try
        (match data with Some dir -> load_dir m dir | None -> ());
        (* a built-in workload runs its whole query suite; the output is
           identical at every --jobs (the CI determinism job diffs it
           byte-for-byte across job counts) *)
        (match workload with
        | None -> ()
        | Some w ->
            let queries =
              match w with
              | `Employee -> Tkr_workload.Queries.employee
              | `Tpch -> Tkr_workload.Queries.tpch
            in
            List.iter
              (fun (name, sql) ->
                Printf.printf "-- %s\n" name;
                print_result ~max_rows (M.execute m sql))
              queries);
        (match (sql, file) with
        | None, None -> ()
        | _ ->
            let script =
              match (sql, file) with
              | Some s, _ -> s
              | _, Some f -> read_file f
              | _ -> assert false
            in
            List.iter
              (fun stmt ->
                (* --explain: run queries as EXPLAIN ANALYZE, leave
                   DDL/DML alone *)
                let stmt =
                  match stmt with
                  | Ast.Query _ when explain ->
                      Ast.Explain { analyze = true; target = stmt }
                  | stmt -> stmt
                in
                print_result ~max_rows (M.execute_statement m stmt))
              (Tkr_sql.Parser.script script));
        if stats then Printf.printf "stats: %s\n" (M.totals_report m);
        M.shutdown m;
        Ok ()
      with
      | Sys_error e -> Error (`Msg e)
      | M.Rejected ds -> Error (`Msg (Diagnostic.report_to_text ds))
      | M.Error d
      | Tkr_sql.Parser.Error d
      | Tkr_sql.Lexer.Error d
      | Tkr_sql.Analyzer.Error d ->
          Error (`Msg (Diagnostic.to_string d)))

let run_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("employee", `Employee); ("tpch", `Tpch) ])) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "run a built-in query workload (employee or tpch) against its \
             generated catalog; output is independent of --jobs")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "worker domains for the temporal operators; 1 (the default) \
             is the serial engine, and every value produces the same rows")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "e" ] ~docv:"SQL" ~doc:"SQL script to execute")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f" ] ~docv:"FILE" ~doc:"SQL script file to execute")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"run every query as EXPLAIN ANALYZE: print the annotated \
                operator tree instead of the rows")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"after the script, print cumulative phase timings \
                (parse/analyze/rewrite/optimize/execute)")
  in
  let max_rows =
    Arg.(
      value & opt int 100
      & info [ "max-rows" ] ~docv:"N" ~doc:"print at most $(docv) result rows")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute SQL (including SEQ VT snapshot queries) against CSV data")
    Term.(
      term_result
        (const run $ data $ workload $ jobs $ sql $ file $ explain $ stats
       $ max_rows))

(* --- explain --- *)

let explain data analyze jobs sql =
  let m = M.create ~parallelism:jobs () in
  (match data with Some dir -> load_dir m dir | None -> ());
  print_endline (if analyze then M.explain_analyze m sql else M.explain m sql);
  M.shutdown m

let explain_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:"execute the query and annotate every operator with rows \
                in/out, internals and elapsed time")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "worker domains; with --analyze the pooled operators report \
             par_jobs/chunks/steals/merge_ns and per-domain attribution")
  in
  let sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the optimized, rewritten plan of a query")
    Term.(const explain $ data $ analyze $ jobs $ sql)

(* --- lint --- *)

(* Statically analyze a script: report the check-phase diagnostics of
   every statement without running any query.  DDL/DML statements are
   executed so that later statements in the script resolve against the
   tables they create. *)
let lint_script m profile name text : (string * Diagnostic.t list) list =
  match Tkr_sql.Parser.script text with
  | exception (Tkr_sql.Parser.Error d | Tkr_sql.Lexer.Error d) -> [ (name, [ d ]) ]
  | stmts ->
      let many = List.length stmts > 1 in
      List.mapi
        (fun i stmt ->
          let nm = if many then Printf.sprintf "%s:%d" name (i + 1) else name in
          let diags = M.check_statement m stmt in
          let diags =
            (* under a non-default profile, add what that evaluation
               style would get wrong on this plan (the paper's Table 1) *)
            if profile.Lint.prof_name = Lint.middleware.Lint.prof_name then diags
            else
              match M.lint_statement m profile stmt with
              | extra -> Diagnostic.sort (diags @ extra)
              | exception _ -> diags
          in
          (match stmt with
          | Ast.Create_table _ | Ast.Insert _ | Ast.Drop_table _ | Ast.Update _
          | Ast.Delete _ -> (
              try ignore (M.execute_statement m stmt) with _ -> ())
          | _ -> ());
          (nm, diags))
        stmts

let lint data workload sql files profile werror json_out =
  match Lint.of_name profile with
  | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown profile %s (try %s)" profile
              (String.concat ", "
                 (List.map (fun (p : Lint.profile) -> p.prof_name) Lint.profiles))))
  | Some profile ->
      let db =
        match workload with
        | Some `Employee ->
            Some (Tkr_workload.Employees.generate (Tkr_workload.Employees.scaled 25))
        | Some `Tpch ->
            Some
              (Tkr_workload.Tpcbih.generate
                 { Tkr_workload.Tpcbih.default with scale = 0.01 })
        | None -> None
      in
      let m =
        match db with
        | Some db -> M.create ~strict:werror ~db ()
        | None -> M.create ~strict:werror ()
      in
      match
        (match data with Some dir -> load_dir m dir | None -> ());
        List.map (fun f -> (f, read_file f)) files
      with
      | exception Sys_error e -> Error (`Msg e)
      | file_items ->
      let items =
        (match workload with
        | Some `Employee -> Tkr_workload.Queries.employee
        | Some `Tpch -> Tkr_workload.Queries.tpch
        | None -> [])
        @ (match sql with Some s -> [ ("<cmdline>", s) ] | None -> [])
        @ file_items
      in
      if items = [] then
        Error (`Msg "nothing to lint: give --workload, -e SQL or -f FILE")
      else
        let reports =
          List.concat_map (fun (name, text) -> lint_script m profile name text) items
        in
        let failed (_, ds) = Diagnostic.count_errors ~werror ds > 0 in
        (if json_out then
           print_endline
             (Tkr_obs.Json.to_string
                (Tkr_obs.Json.List
                   (List.map
                      (fun (name, ds) ->
                        Tkr_obs.Json.Obj
                          [
                            ("name", Tkr_obs.Json.Str name);
                            ("profile", Tkr_obs.Json.Str profile.Lint.prof_name);
                            ("report", Diagnostic.report_to_json ds);
                          ])
                      reports)))
         else
           List.iter
             (fun ((name, ds) as r) ->
               if ds = [] then Printf.printf "%s: OK\n" name
               else (
                 Printf.printf "%s:%s\n" name
                   (if failed r then " FAIL" else "");
                 print_endline (Diagnostic.report_to_text ds)))
             reports);
        let bad = List.length (List.filter failed reports) in
        if bad = 0 then Ok ()
        else
          Error
            (`Msg
               (Printf.sprintf "lint: %d of %d statements failed" bad
                  (List.length reports)))

let lint_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("employee", `Employee); ("tpch", `Tpch) ])) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"lint a built-in query workload (employee or tpch) against \
                its generated catalog")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "e" ] ~docv:"SQL" ~doc:"SQL script to lint")
  in
  let files =
    Arg.(
      value & opt_all string []
      & info [ "f" ] ~docv:"FILE" ~doc:"SQL script file to lint (repeatable)")
  in
  let profile =
    Arg.(
      value
      & opt string "middleware"
      & info [ "profile" ] ~docv:"NAME"
          ~doc:"capability profile to lint under: middleware, \
                interval-preservation, alignment or teradata (Table 1)")
  in
  let werror =
    Arg.(
      value & flag
      & info [ "Werror" ] ~doc:"treat warnings as errors (exit non-zero)")
  in
  let json_out =
    Arg.(
      value & flag & info [ "json" ] ~doc:"print diagnostics as JSON")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze SQL without executing it: type check, \
             validate plan invariants and lint for snapshot-semantics bugs \
             (AG/BD)")
    Term.(
      term_result
        (const lint $ data $ workload $ sql $ files $ profile $ werror
       $ json_out))

(* --- bench --- *)

(* The quick, deterministic bench suite behind [bench run]: the employee
   snapshot workload through the middleware, the multiset-coalescing and
   interval-join/split-agg operator microbenchmarks, measured with the
   shared Tkr_perf harness (median of --runs, GC counters included).  It
   is intentionally much smaller than bench/main.exe — small enough for
   CI smoke jobs — but written in the same canonical schema, so
   [bench compare] works across any pair.

   With --jobs N > 1 the middleware and the operator suites run on an
   N-domain pool and a "par-scaling" suite is appended: each pooled
   operator measured serially and on the pool, with the speedup recorded
   as a [speedup_x] counter — the trajectory of parallel efficiency
   across commits and job counts. *)
let bench_suite ~scale ~runs ~jobs :
    Bench_result.result list * (string * Tkr_obs.Json.t) list =
  let module W = Tkr_workload.Employees in
  let module Q = Tkr_workload.Queries in
  let module Ops = Tkr_engine.Ops in
  let module Pool = Tkr_par.Pool in
  let module Trace = Tkr_obs.Trace in
  let module Json = Tkr_obs.Json in
  let employees = max 20 (int_of_float (150. *. scale)) in
  let db = W.generate { (W.scaled employees) with W.tmax = 2000 } in
  let m = M.create ~parallelism:jobs ~db () in
  let jobs_counter = ("jobs", float_of_int jobs) in
  let measured ~suite ~name ?(counters = []) f =
    let s = Perf_runner.measure ~runs f in
    Printf.printf "  %-24s %12.1f us/run\n%!"
      (suite ^ "/" ^ name)
      (s.Perf_runner.wall_ns /. 1e3);
    Bench_result.result ~suite ~name ~runs
      ~counters:((jobs_counter :: counters) @ Perf_runner.gc_counters s)
      s.Perf_runner.wall_ns
  in
  Pool.with_pool ~jobs @@ fun pool ->
  let employee =
    List.map
      (fun (name, sql) ->
        let p = M.prepare m sql in
        let s = Perf_runner.measure ~runs (fun () -> M.run_prepared m p) in
        let rows = Table.cardinality (M.run_prepared m p) in
        Printf.printf "  %-24s %12.1f us/run  %8d rows\n%!" name
          (s.Perf_runner.wall_ns /. 1e3) rows;
        Bench_result.result ~suite:"employee" ~name ~runs
          ~counters:
            (jobs_counter
            :: ("rows_out", float_of_int rows)
            :: Perf_runner.gc_counters s)
          s.Perf_runner.wall_ns)
      Q.employee
  in
  let coalesce =
    List.map
      (fun n ->
        let n = max 100 (int_of_float (float_of_int n *. scale)) in
        let t = W.coalesce_input ~n ~seed:11 ~tmax:2000 in
        measured ~suite:"coalesce"
          ~name:(Printf.sprintf "coalesce-%d" n)
          (fun () -> Ops.coalesce ?pool t))
      [ 1_000; 10_000 ]
  in
  (* scaled interval-join and split-agg suites over the shared generator *)
  let join_inputs n =
    ( W.coalesce_input ~n ~seed:21 ~tmax:2000,
      W.coalesce_input ~n ~seed:22 ~tmax:2000 )
  in
  let interval_join =
    List.map
      (fun n ->
        let n = max 200 (int_of_float (float_of_int n *. scale)) in
        let l, r = join_inputs n in
        measured ~suite:"interval-join"
          ~name:(Printf.sprintf "overlap-join-%d" n)
          (fun () ->
            Tkr_engine.Interval_join.overlap_join ?pool ~left_keys:[ 0 ]
              ~right_keys:[ 0 ] l r))
      [ 2_000; 8_000 ]
  in
  let split_agg_aggs =
    [ { Tkr_relation.Algebra.func = Tkr_relation.Agg.Count_star; agg_name = "cnt" } ]
  in
  let split_agg =
    List.map
      (fun n ->
        let n = max 200 (int_of_float (float_of_int n *. scale)) in
        let t = W.coalesce_input ~n ~seed:23 ~tmax:2000 in
        measured ~suite:"split-agg"
          ~name:(Printf.sprintf "split-agg-%d" n)
          (fun () ->
            Ops.split_agg ?pool ~group:[ 0 ] ~aggs:split_agg_aggs ~gap:None t))
      [ 2_000; 8_000 ]
  in
  (* speedup-vs-jobs: serial vs pooled wall time of the same operator *)
  let par_scaling =
    match pool with
    | None -> []
    | Some pool ->
        let n = max 500 (int_of_float (8_000. *. scale)) in
        let jl, jr = join_inputs n in
        let ct = W.coalesce_input ~n ~seed:11 ~tmax:2000 in
        List.concat_map
          (fun (name, serial, parallel) ->
            let s0 = Perf_runner.measure ~runs serial in
            let s1 = Perf_runner.measure ~runs parallel in
            let speedup = s0.Perf_runner.wall_ns /. s1.Perf_runner.wall_ns in
            Printf.printf "  par-scaling/%-12s jobs %d: %.2fx\n%!" name jobs
              speedup;
            [
              Bench_result.result ~suite:"par-scaling" ~name:(name ^ "-serial")
                ~runs
                ~counters:[ ("jobs", 1.) ]
                s0.Perf_runner.wall_ns;
              Bench_result.result ~suite:"par-scaling" ~name ~runs
                ~counters:[ jobs_counter; ("speedup_x", speedup) ]
                s1.Perf_runner.wall_ns;
            ])
          [
            ( "overlap-join",
              (fun () ->
                Tkr_engine.Interval_join.overlap_join ~left_keys:[ 0 ]
                  ~right_keys:[ 0 ] jl jr),
              fun () ->
                Tkr_engine.Interval_join.overlap_join ~pool ~left_keys:[ 0 ]
                  ~right_keys:[ 0 ] jl jr );
            ( "coalesce",
              (fun () -> Ops.coalesce ct),
              fun () -> Ops.coalesce ~pool ct );
            ( "split-agg",
              (fun () ->
                Ops.split_agg ~group:[ 0 ] ~aggs:split_agg_aggs ~gap:None ct),
              fun () ->
                Ops.split_agg ~pool ~group:[ 0 ] ~aggs:split_agg_aggs ~gap:None
                  ct );
          ]
  in
  (* one traced execution per employee query, so [bench export --folded]
     works on CLI-produced reports too *)
  let traces =
    Json.List
      (List.map
         (fun (name, sql) ->
           let p = M.prepare m sql in
           let obs = Trace.create ~gc:true () in
           ignore (M.run_prepared ~obs m p);
           Json.Obj
             [
               ("query", Json.Str name);
               ( "trace",
                 Json.List (List.map Trace.to_json_value (Trace.roots obs)) );
             ])
         Q.employee)
  in
  M.shutdown m;
  ( employee @ coalesce @ interval_join @ split_agg @ par_scaling,
    [ ("operator_traces", traces) ] )

let bench_run out scale runs jobs =
  let path = match out with Some p -> p | None -> Bench_result.default_filename () in
  Printf.printf "quick bench suite (scale %.2f, %d runs, %d jobs):\n%!" scale
    runs jobs;
  let results, extra = bench_suite ~scale ~runs ~jobs in
  let report = Bench_result.make ~extra ~source:"tkr_cli bench run" results in
  Bench_result.write path report;
  Printf.printf "wrote %s (%d results)\n" path (List.length results);
  Ok ()

let bench_compare base fresh threshold =
  match (Bench_result.read base, Bench_result.read fresh) with
  | exception Sys_error e -> Error (`Msg e)
  | exception Bench_result.Invalid e -> Error (`Msg ("invalid bench file: " ^ e))
  | exception Tkr_obs.Json.Parse_error e ->
      Error (`Msg ("malformed bench file: " ^ e))
  | b, f ->
      if b.Bench_result.env.Tkr_perf.Env.hostname
         <> f.Bench_result.env.Tkr_perf.Env.hostname
      then
        Printf.eprintf
          "warning: comparing runs from different hosts (%s vs %s)\n%!"
          b.Bench_result.env.Tkr_perf.Env.hostname
          f.Bench_result.env.Tkr_perf.Env.hostname;
      (* a +dirty report did not come from the commit its SHA names *)
      List.iter
        (fun (label, path, (r : Bench_result.report)) ->
          if r.Bench_result.env.Tkr_perf.Env.dirty then
            Printf.eprintf
              "warning: %s report %s was recorded on a dirty tree (git %s): \
               its numbers may not match any commit\n%!"
              label path r.Bench_result.env.Tkr_perf.Env.git_sha)
        [ ("base", base, b); ("new", fresh, f) ];
      let outcome = Perf_compare.compare_reports ~threshold b f in
      print_string (Perf_compare.render outcome);
      if Perf_compare.has_regression outcome then
        Error
          (`Msg
             (Printf.sprintf "%d test(s) regressed beyond %.2fx"
                (List.length (Perf_compare.regressions outcome))
                threshold))
      else Ok ()

let bench_export file openmetrics folded =
  match Bench_result.read file with
  | exception Sys_error e -> Error (`Msg e)
  | exception Bench_result.Invalid e -> Error (`Msg ("invalid bench file: " ^ e))
  | exception Tkr_obs.Json.Parse_error e ->
      Error (`Msg ("malformed bench file: " ^ e))
  | rep -> (
      match (openmetrics, folded) with
      | true, false ->
          print_string (Perf_export.to_openmetrics rep);
          Ok ()
      | false, true ->
          let out = Perf_export.to_folded rep in
          if out = "" then
            Error
              (`Msg
                 "no operator_traces in this file (produced by bench \
                  run? use bench/main.exe or experiments --json)")
          else (
            print_string out;
            Ok ())
      | _ -> Error (`Msg "choose exactly one of --openmetrics or --folded"))

let bench_run_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:
            "output file; defaults to the next trajectory name \
             (BENCH_PR<n>.json past the highest one present, or \
             \\$TKR_BENCH_PR)")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale"; "s" ] ~docv:"F" ~doc:"workload scale factor")
  in
  let runs =
    Arg.(
      value & opt int 3
      & info [ "runs"; "r" ] ~docv:"N" ~doc:"timed samples per test (median)")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "worker domains; at N > 1 the temporal operators run on an \
             N-domain pool and a par-scaling suite records the \
             serial-vs-pooled speedup")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the quick bench suite and write the canonical JSON report")
    Term.(term_result (const bench_run $ out $ scale $ runs $ jobs))

let bench_compare_cmd =
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE")
  in
  let fresh = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW") in
  let threshold =
    Arg.(
      value
      & opt float Perf_compare.default_threshold
      & info [ "threshold"; "t" ] ~docv:"F"
          ~doc:
            "regression ratio: NEW/BASE above $(docv) fails, its inverse \
             reports an improvement, anything between is noise")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two bench reports test-by-test; exit non-zero when any \
          test regressed beyond the threshold")
    Term.(term_result (const bench_compare $ base $ fresh $ threshold))

let bench_export_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"print the report as an OpenMetrics/Prometheus text document")
  in
  let folded =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:
            "print the stored operator traces as flamegraph-compatible \
             folded stacks (query;operator;... self-ns)")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a bench report for Prometheus or flamegraph tooling")
    Term.(term_result (const bench_export $ file $ openmetrics $ folded))

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "Performance trajectory: run the quick suite, detect regressions, \
          export to external tooling")
    [ bench_run_cmd; bench_compare_cmd; bench_export_cmd ]

let () =
  let doc = "snapshot-semantics temporal query middleware" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "tkr" ~doc)
          [ demo_cmd; gen_cmd; run_cmd; explain_cmd; lint_cmd; bench_cmd ]))
