(* The middleware's command-line interface.

   Subcommands:
     demo                      run the paper's running example
     gen  --dataset D --out P  generate a workload dataset as CSV files
     run  --data DIR [-e SQL | -f FILE]
                               run SQL (with SEQ VT support) against CSVs
     lint [--workload W] [-e SQL] [-f FILE]...
                               static analysis only: type check, validate
                               plan invariants and lint for snapshot bugs
     serve                     TCP query server: sessions, admission
                               control, snapshot-aware result cache,
                               optional flight recording (--record)
     replay RECORDING          deterministically re-execute a flight
                               recording and byte-diff every response
     connect                   client for a running server
     top                       live console view of a running server
                               (QPS, latency quantiles, cache hit rate,
                               per-fingerprint resource ledger)
     bench run|compare|export|serve|replay
                               perf trajectory: run the quick suite,
                               detect regressions between two BENCH
                               files, export to OpenMetrics/flamegraphs,
                               benchmark the query server or a recording

   Exit codes: 0 ok, 2 parse/lex error, 3 static check failure, 4
   semantic/runtime error, 5 I/O or transport error, 124 usage error. *)

open Cmdliner
module M = Tkr_middleware.Middleware
module Ast = Tkr_sql.Ast
module Diagnostic = Tkr_check.Diagnostic
module Lint = Tkr_check.Lint
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table
module Csv_io = Tkr_engine.Csv_io
module Bench_result = Tkr_perf.Bench_result
module Perf_compare = Tkr_perf.Compare
module Perf_export = Tkr_perf.Export
module Perf_runner = Tkr_perf.Runner
module Server = Tkr_serve.Server
module Client = Tkr_serve.Client
module Wire = Tkr_serve.Wire
module Cache = Tkr_serve.Cache
module Clock = Tkr_obs.Clock
module Json = Tkr_obs.Json
module Tel = Tkr_tel.Tel
module Record = Tkr_rec.Record
module Replay = Tkr_replay.Replay
module Console = Tkr_serve.Console

(* --- error hygiene: distinct exit codes per failure class --- *)

exception Fail of int * string

let usage msg = raise (Fail (124, msg))

let code_of_wire_error : Wire.error_code -> int = function
  | Wire.Parse_error -> 2
  | Wire.Check_error -> 3
  | Wire.Runtime_error -> 4
  | Wire.Server_busy | Wire.Deadline_exceeded | Wire.Server_shutdown
  | Wire.Session_limit | Wire.Protocol_violation ->
      5

(* Every subcommand body runs under this wrapper: failures print one line
   to stderr and map onto the documented exit codes (2 parse, 3 check,
   4 runtime, 5 I/O / transport). *)
let guarded f =
  let fail code msg =
    Printf.eprintf "tkr: %s\n%!" msg;
    code
  in
  match f () with
  | () -> 0
  | exception Fail (code, msg) -> fail code msg
  | exception Tkr_sql.Parser.Error d -> fail 2 (Diagnostic.to_string d)
  | exception Tkr_sql.Lexer.Error d -> fail 2 (Diagnostic.to_string d)
  | exception M.Rejected ds ->
      fail 3 (String.trim (Diagnostic.report_to_text ds))
  | exception M.Error d -> fail 4 (Diagnostic.to_string d)
  | exception Tkr_sql.Analyzer.Error d -> fail 4 (Diagnostic.to_string d)
  | exception Tkr_relation.Schema.Unknown n -> fail 4 ("unknown name " ^ n)
  | exception Invalid_argument msg -> fail 4 msg
  | exception Sys_error e -> fail 5 e
  | exception Unix.Unix_error (e, fn, arg) ->
      fail 5
        (Printf.sprintf "%s: %s%s" fn (Unix.error_message e)
           (if arg = "" then "" else " (" ^ arg ^ ")"))
  | exception Bench_result.Invalid e -> fail 5 ("invalid bench file: " ^ e)
  | exception Tkr_obs.Json.Parse_error e -> fail 5 ("malformed JSON: " ^ e)
  | exception Client.Server_error e ->
      fail
        (code_of_wire_error e.Wire.code)
        (Printf.sprintf "%s: %s"
           (Wire.error_code_to_string e.Wire.code)
           e.Wire.message)
  | exception Wire.Protocol_error msg -> fail 5 ("protocol error: " ^ msg)

let print_result ?(max_rows = 100) = function
  | M.Rows t -> print_string (Table.to_text ~max_rows t)
  | M.Done msg -> Printf.printf "%s\n" msg

(* --- demo --- *)

let demo () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
     |});
  print_endline "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
  print_result
    (M.execute m
       "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP') ORDER BY vt_begin")

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run the paper's running example (Figure 1b)")
    Term.(const (fun () -> guarded demo) $ const ())

(* --- gen --- *)

let gen dataset out scale =
  let db =
    match dataset with
    | `Employees ->
        Tkr_workload.Employees.generate
          (Tkr_workload.Employees.scaled (int_of_float (500. *. scale)))
    | `Tpcbih ->
        Tkr_workload.Tpcbih.generate { Tkr_workload.Tpcbih.default with scale }
  in
  (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun name ->
      let path = Filename.concat out (name ^ ".csv") in
      Csv_io.write_table path (Database.find db name);
      Printf.printf "wrote %s (%d rows)\n" path
        (Table.cardinality (Database.find db name)))
    (Database.names db)

let gen_cmd =
  let dataset =
    Arg.(
      required
      & opt (some (enum [ ("employees", `Employees); ("tpcbih", `Tpcbih) ])) None
      & info [ "dataset"; "d" ] ~docv:"NAME" ~doc:"employees or tpcbih")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"output directory")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~doc:"scale factor")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload dataset as CSV period tables")
    Term.(const (fun d o s -> guarded (fun () -> gen d o s)) $ dataset $ out $ scale)

(* --- run --- *)

let load_dir m dir =
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".csv" then (
        let name = Filename.remove_extension file in
        let table = Csv_io.read_table (Filename.concat dir file) in
        (* tables whose last two columns are integers named vt_* are
           registered as period tables *)
        let schema = Tkr_engine.Table.schema table in
        let n = Tkr_relation.Schema.arity schema in
        let is_period =
          n >= 2
          && (let a = Tkr_relation.Schema.get schema (n - 2) in
              let b = Tkr_relation.Schema.get schema (n - 1) in
              a.ty = Tkr_relation.Value.TInt
              && b.ty = Tkr_relation.Value.TInt
              && String.length a.name >= 3
              && String.sub a.name 0 3 = "vt_")
        in
        if is_period then Database.add_period_table (M.database m) name table
        else Database.add_table (M.database m) name table;
        Printf.eprintf "loaded %s (%d rows%s)\n%!" name
          (Table.cardinality table)
          (if is_period then ", period table" else "")))
    (Sys.readdir dir)

let read_file f =
  let ic = open_in f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* the generated catalog shared by run, serve and connect --workload: the
   CI serve smoke job byte-diffs server output against [run --workload],
   so both sides must see the same tables *)
let workload_db = function
  | Some `Employee ->
      let module W = Tkr_workload.Employees in
      W.generate { (W.scaled 150) with W.tmax = 2000 }
  | Some `Tpch ->
      Tkr_workload.Tpcbih.generate
        { Tkr_workload.Tpcbih.default with scale = 0.05 }
  | None -> Database.create ()

let workload_queries = function
  | `Employee -> Tkr_workload.Queries.employee
  | `Tpch -> Tkr_workload.Queries.tpch

(* --engine row|vec, shared by run, explain, serve and bench run: the
   vectorized engine is byte-identical to the row engine (the CI
   vec-differential job diffs the two), so the flag only changes speed *)
let engine_arg =
  Arg.(
    value
    & opt (enum [ ("row", M.Row); ("vec", M.Vec) ]) M.Row
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "execution engine: $(b,row) (interpreted row-at-a-time, the \
           default and the differential-testing oracle) or $(b,vec) \
           (columnar batch-at-a-time); both produce byte-identical output")

(* --index on|off, shared by run, explain, serve and bench run: interval
   indexes only change the access path (EXPLAIN's [access:] line), never
   a byte of any result — the CI determinism job diffs on/off outputs *)
let index_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "index" ] ~docv:"on|off"
        ~doc:
          "temporal interval indexes: answer $(b,AS OF) timeslices and \
           overlap selections over stored period tables by endpoint-sorted \
           index probes instead of scans; $(b,on) (default) and $(b,off) \
           produce byte-identical output")

let run data workload jobs engine index no_prune sql file explain stats
    max_rows =
  (match (sql, file, workload) with
  | Some _, Some _, _ -> usage "provide at most one of -e SQL or -f FILE"
  | None, None, None -> usage "provide -e SQL, -f FILE or --workload NAME"
  | _ -> ());
  let m =
    M.create ~parallelism:jobs ~engine ~index ~prune:(not no_prune)
      ~db:(workload_db workload) ()
  in
  Fun.protect ~finally:(fun () -> M.shutdown m) @@ fun () ->
  (match data with Some dir -> load_dir m dir | None -> ());
  (* a built-in workload runs its whole query suite; the output is
     identical at every --jobs (the CI determinism job diffs it
     byte-for-byte across job counts) *)
  (match workload with
  | None -> ()
  | Some w ->
      List.iter
        (fun (name, sql) ->
          Printf.printf "-- %s\n" name;
          print_result ~max_rows (M.execute m sql))
        (workload_queries w));
  (match (sql, file) with
  | None, None -> ()
  | _ ->
      let script =
        match (sql, file) with
        | Some s, _ -> s
        | _, Some f -> read_file f
        | _ -> assert false
      in
      List.iter
        (fun stmt ->
          (* --explain: run queries as EXPLAIN ANALYZE, leave
             DDL/DML alone *)
          let stmt =
            match stmt with
            | Ast.Query _ when explain ->
                Ast.Explain { analyze = true; target = stmt }
            | stmt -> stmt
          in
          print_result ~max_rows (M.execute_statement m stmt))
        (Tkr_sql.Parser.script script));
  if stats then Printf.printf "stats: %s\n" (M.totals_report m)

let run_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("employee", `Employee); ("tpch", `Tpch) ])) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "run a built-in query workload (employee or tpch) against its \
             generated catalog; output is independent of --jobs")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "worker domains for the temporal operators; 1 (the default) \
             is the serial engine, and every value produces the same rows")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "e" ] ~docv:"SQL" ~doc:"SQL script to execute")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f" ] ~docv:"FILE" ~doc:"SQL script file to execute")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"run every query as EXPLAIN ANALYZE: print the annotated \
                operator tree instead of the rows")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"after the script, print cumulative phase timings \
                (parse/analyze/rewrite/optimize/execute)")
  in
  let max_rows =
    Arg.(
      value & opt int 100
      & info [ "max-rows" ] ~docv:"N" ~doc:"print at most $(docv) result rows")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:"disable analysis-driven plan pruning (results are \
                byte-identical either way; useful for differential testing)")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute SQL (including SEQ VT snapshot queries) against CSV data")
    Term.(
      const (fun a b c d e f g h i j k ->
          guarded (fun () -> run a b c d e f g h i j k))
      $ data $ workload $ jobs $ engine_arg $ index_arg $ no_prune $ sql
      $ file $ explain $ stats $ max_rows)

(* --- explain --- *)

let explain data analyze jobs engine index no_prune sql =
  let m =
    M.create ~parallelism:jobs ~engine ~index ~prune:(not no_prune) ()
  in
  (match data with Some dir -> load_dir m dir | None -> ());
  print_endline (if analyze then M.explain_analyze m sql else M.explain m sql);
  M.shutdown m

let explain_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:"execute the query and annotate every operator with rows \
                in/out, internals and elapsed time")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "worker domains; with --analyze the pooled operators report \
             par_jobs/chunks/steals/merge_ns and per-domain attribution")
  in
  let sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")
  in
  let no_prune =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:"disable analysis-driven plan pruning before explaining")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the optimized, rewritten plan of a query with the \
             abstract interpreter's inferred per-operator facts")
    Term.(
      const (fun a b c d e f g -> guarded (fun () -> explain a b c d e f g))
      $ data $ analyze $ jobs $ engine_arg $ index_arg $ no_prune $ sql)

(* --- lint --- *)

(* Statically analyze a script: report the check-phase diagnostics of
   every statement without running any query.  DDL/DML statements are
   executed so that later statements in the script resolve against the
   tables they create. *)
let lint_script m profile name text : (string * Diagnostic.t list) list =
  match Tkr_sql.Parser.script text with
  | exception (Tkr_sql.Parser.Error d | Tkr_sql.Lexer.Error d) -> [ (name, [ d ]) ]
  | stmts ->
      let many = List.length stmts > 1 in
      List.mapi
        (fun i stmt ->
          let nm = if many then Printf.sprintf "%s:%d" name (i + 1) else name in
          let diags = M.check_statement m stmt in
          let diags =
            (* under a non-default profile, add what that evaluation
               style would get wrong on this plan (the paper's Table 1) *)
            if profile.Lint.prof_name = Lint.middleware.Lint.prof_name then diags
            else
              match M.lint_statement m profile stmt with
              | extra -> Diagnostic.sort (diags @ extra)
              | exception _ -> diags
          in
          (match stmt with
          | Ast.Create_table _ | Ast.Insert _ | Ast.Drop_table _ | Ast.Update _
          | Ast.Delete _ -> (
              try ignore (M.execute_statement m stmt) with _ -> ())
          | _ -> ());
          (nm, diags))
        stmts

let lint_run data workload sql files profile werror json_out =
  match Lint.of_name profile with
  | None ->
      usage
        (Printf.sprintf "unknown profile %s (try %s)" profile
           (String.concat ", "
              (List.map (fun (p : Lint.profile) -> p.prof_name) Lint.profiles)))
  | Some profile ->
      let db =
        match workload with
        | Some `Employee ->
            Some (Tkr_workload.Employees.generate (Tkr_workload.Employees.scaled 25))
        | Some `Tpch ->
            Some
              (Tkr_workload.Tpcbih.generate
                 { Tkr_workload.Tpcbih.default with scale = 0.01 })
        | None -> None
      in
      let m =
        match db with
        | Some db -> M.create ~strict:werror ~db ()
        | None -> M.create ~strict:werror ()
      in
      (match data with Some dir -> load_dir m dir | None -> ());
      let file_items = List.map (fun f -> (f, read_file f)) files in
      let items =
        (match workload with
        | Some `Employee -> Tkr_workload.Queries.employee
        | Some `Tpch -> Tkr_workload.Queries.tpch
        | None -> [])
        @ (match sql with Some s -> [ ("<cmdline>", s) ] | None -> [])
        @ file_items
      in
      if items = [] then
        usage "nothing to lint: give --workload, -e SQL or -f FILE"
      else
        let reports =
          List.concat_map (fun (name, text) -> lint_script m profile name text) items
        in
        let failed (_, ds) = Diagnostic.count_errors ~werror ds > 0 in
        (if json_out then
           print_endline
             (Tkr_obs.Json.to_string
                (Tkr_obs.Json.List
                   (List.map
                      (fun (name, ds) ->
                        Tkr_obs.Json.Obj
                          [
                            ("name", Tkr_obs.Json.Str name);
                            ("profile", Tkr_obs.Json.Str profile.Lint.prof_name);
                            ("report", Diagnostic.report_to_json ds);
                          ])
                      reports)))
         else
           List.iter
             (fun ((name, ds) as r) ->
               if ds = [] then Printf.printf "%s: OK\n" name
               else (
                 Printf.printf "%s:%s\n" name
                   (if failed r then " FAIL" else "");
                 print_endline (Diagnostic.report_to_text ds)))
             reports);
        let bad = List.length (List.filter failed reports) in
        if bad > 0 then
          raise
            (Fail
               ( 3,
                 Printf.sprintf "lint: %d of %d statements failed" bad
                   (List.length reports) ))

let lint data workload sql files profile werror json_out format list_codes
    describe =
  if list_codes then
    (* expose the stable diagnostic registry: every TKR code with its
       one-line description *)
    List.iter
      (fun (code, desc) -> Printf.printf "%s  %s\n" code desc)
      Diagnostic.registry
  else
    match describe with
    | Some code -> (
        match Diagnostic.describe code with
        | Some desc -> Printf.printf "%s  %s\n" code desc
        | None ->
            raise
              (Fail
                 ( 124,
                   Printf.sprintf
                     "unknown diagnostic code %s (see lint --list-codes)" code
                 )))
    | None ->
        let json_out = json_out || format = `Json in
        lint_run data workload sql files profile werror json_out

let lint_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("employee", `Employee); ("tpch", `Tpch) ])) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"lint a built-in query workload (employee or tpch) against \
                its generated catalog")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "e" ] ~docv:"SQL" ~doc:"SQL script to lint")
  in
  let files =
    Arg.(
      value & opt_all string []
      & info [ "f" ] ~docv:"FILE" ~doc:"SQL script file to lint (repeatable)")
  in
  let profile =
    Arg.(
      value
      & opt string "middleware"
      & info [ "profile" ] ~docv:"NAME"
          ~doc:"capability profile to lint under: middleware, \
                interval-preservation, alignment or teradata (Table 1)")
  in
  let werror =
    Arg.(
      value & flag
      & info [ "Werror" ] ~doc:"treat warnings as errors (exit non-zero)")
  in
  let json_out =
    Arg.(
      value & flag & info [ "json" ] ~doc:"print diagnostics as JSON")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"output format: text (default) or json (same as --json)")
  in
  let list_codes =
    Arg.(
      value & flag
      & info [ "list-codes" ]
          ~doc:"print every registered TKR diagnostic code with its \
                description and exit")
  in
  let describe =
    Arg.(
      value
      & opt (some string) None
      & info [ "describe" ] ~docv:"TKRnnn"
          ~doc:"print the description of one diagnostic code and exit")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze SQL without executing it: type check, \
             validate plan invariants, run the abstract interpreter \
             (TKR4xx) and lint for snapshot-semantics bugs (AG/BD)")
    Term.(
      const (fun a b c d e f g h i j ->
          guarded (fun () -> lint a b c d e f g h i j))
      $ data $ workload $ sql $ files $ profile $ werror $ json_out $ format
      $ list_codes $ describe)

(* --- serve --- *)

let workload_name = function
  | Some `Employee -> Some "employee"
  | Some `Tpch -> Some "tpch"
  | None -> None

let serve data workload host port max_sessions queue_depth cache_mb jobs
    engine index workers metrics_out log log_rate slow_ms record =
  let m =
    M.create ~parallelism:jobs ~engine ~index ~db:(workload_db workload) ()
  in
  Fun.protect ~finally:(fun () -> M.shutdown m) @@ fun () ->
  (match data with Some dir -> load_dir m dir | None -> ());
  (* the JSONL event log: a file path, "stderr", or off entirely *)
  let tel, tel_oc =
    match log with
    | None -> (Tel.disabled, None)
    | Some "stderr" -> (Tel.create ~rate_limit:log_rate (Tel.Chan stderr), None)
    | Some path ->
        let oc = open_out path in
        (Tel.create ~rate_limit:log_rate (Tel.Chan oc), Some oc)
  in
  (* the flight recorder: one JSONL entry per finished request *)
  let recorder, rec_oc =
    match record with
    | None -> (Record.disabled, None)
    | Some path ->
        let oc = open_out path in
        let header =
          Record.header
            ?workload:(workload_name workload)
            ~source:"tkr_cli serve" ()
        in
        (Record.create ~header (Record.Chan oc), Some oc)
  in
  let config =
    { Server.host; port; max_sessions; queue_depth; cache_mb; workers;
      slow_ms }
  in
  let srv = Server.start ~config ~tel ~recorder m in
  Printf.printf
    "tkr_serve listening on %s:%d (sessions %d, queue %d, cache %d MiB, \
     workers %d, jobs %d%s%s)\n%!"
    host (Server.port srv) max_sessions queue_depth cache_mb workers jobs
    (match log with Some dst -> ", log " ^ dst | None -> "")
    (match record with Some dst -> ", record " ^ dst | None -> "");
  (* SIGTERM/SIGINT request a graceful drain: accepted requests finish,
     then every thread joins and the process exits 0 *)
  let stop_requested = Atomic.make false in
  let on_signal _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  while not (Atomic.get stop_requested) do
    Thread.delay 0.1
  done;
  Printf.eprintf "draining...\n%!";
  Server.stop ~reason:"sigterm" srv;
  Tel.close tel;
  (match tel_oc with Some oc -> close_out oc | None -> ());
  (if Record.enabled recorder then
     Printf.eprintf "recorded %d request(s)\n%!" (Record.recorded recorder));
  Record.close recorder;
  (match rec_oc with Some oc -> close_out oc | None -> ());
  let s = Server.cache_stats srv in
  Printf.eprintf "cache: %d hits, %d misses, %d evictions, %d invalidations\n%!"
    s.Cache.hits s.Cache.misses s.Cache.evictions s.Cache.invalidations;
  match metrics_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Server.metrics_text srv);
      close_out oc;
      Printf.eprintf "wrote metrics to %s\n%!" path

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"bind/connect address")

let port_arg =
  Arg.(
    value & opt int 7643
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:"TCP port (0 lets the kernel pick; serve prints the choice)")

let serve_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("employee", `Employee); ("tpch", `Tpch) ])) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"serve a built-in workload catalog (employee or tpch)")
  in
  let max_sessions =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"concurrent connections; further dials get SESSION_LIMIT")
  in
  let queue_depth =
    Arg.(
      value & opt int 128
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "admission queue high-water mark; requests past it get \
             SERVER_BUSY instead of queueing unboundedly")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "result-cache byte budget in MiB; 0 disables the cache \
             (results are then always recomputed)")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"worker domains inside the engine (CPU parallelism per query)")
  in
  let workers =
    Arg.(
      value & opt int 8
      & info [ "workers" ] ~docv:"N"
          ~doc:"worker threads draining the admission queue (request \
                concurrency)")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"PATH"
          ~doc:
            "on shutdown, write the full metrics registry (engine and \
             serve_* instruments) as an OpenMetrics document")
  in
  let log =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"PATH|stderr"
          ~doc:
            "write the structured JSONL event log (connections, requests \
             with trace ids, cache traffic, invalidations, rejects, epoch \
             bumps, slow queries) to $(docv); omitting it disables \
             telemetry entirely")
  in
  let log_rate =
    Arg.(
      value
      & opt int Tel.default_rate_limit
      & info [ "log-rate" ] ~docv:"N"
          ~doc:
            "event-log rate limit in events per second (0 = unlimited); \
             drops are counted in the tkr_tel_events_dropped_total metric \
             and announced in the log itself")
  in
  let slow_ms =
    Arg.(
      value & opt int 500
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "slow-query threshold: requests at or above $(docv) total \
             latency emit a slow_query event with plan fingerprint, \
             queue/execute split and cache disposition")
  in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"PATH"
          ~doc:
            "flight recorder: append one versioned JSONL entry per \
             finished request (statement, session, arrival order, table \
             versions and epoch, cache disposition, resource usage, \
             response digest) to $(docv), for [tkr replay]")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the TCP query server: per-connection sessions with prepared \
          statements, admission control with backpressure, snapshot-aware \
          result cache, live telemetry (STATS/METRICS/HEALTH/LEDGER, event \
          log), optional flight recording; SIGTERM/SIGINT drain gracefully")
    Term.(
      const (fun a b c d e f g h i j k l m n o p ->
          guarded (fun () -> serve a b c d e f g h i j k l m n o p))
      $ data $ workload $ host_arg $ port_arg $ max_sessions $ queue_depth
      $ cache_mb $ jobs $ engine_arg $ index_arg $ workers $ metrics_out
      $ log $ log_rate $ slow_ms $ record)

(* --- replay --- *)

let workload_of_name = function
  | "employee" -> `Employee
  | "tpch" -> `Tpch
  | other ->
      usage (Printf.sprintf "unknown workload %S in recording header" other)

let shorten_stmt s =
  let s = String.map (function '\n' | '\t' -> ' ' | c -> c) s in
  if String.length s <= 60 then s else String.sub s 0 57 ^ "..."

(* Rebuild the catalog a recording was captured against and funnel its
   entries through a fresh in-process server.  Determinism argument: the
   initial database is a pure function of the workload name (or the same
   --data directory), per-session program order is preserved by the
   replay engine and the server's FIFO guarantee, and every response is
   pinned by the (plan fingerprint, table versions, epoch) key the
   recording carries — so the recorded digests must reproduce. *)
let replay_pass ~data ~workload ~cache_mb ~jobs ~paced path =
  let header, entries = Record.read_file path in
  let wl =
    match workload with
    | Some _ -> workload
    | None -> Option.map workload_of_name header.Record.h_workload
  in
  if wl = None && data = None then
    usage "recording has no workload header: provide --workload or --data";
  let m = M.create ~parallelism:jobs ~db:(workload_db wl) () in
  Fun.protect ~finally:(fun () -> M.shutdown m) @@ fun () ->
  (match data with Some dir -> load_dir m dir | None -> ());
  let sessions =
    List.length
      (List.sort_uniq compare
         (List.map (fun (e : Record.entry) -> e.Record.e_session) entries))
  in
  let config =
    {
      Server.default_config with
      port = 0;
      max_sessions = sessions + 4;
      queue_depth = max Server.default_config.Server.queue_depth (sessions * 4);
      cache_mb;
    }
  in
  let srv = Server.start ~config m in
  let outcome =
    Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
    Replay.run ~paced ~port:(Server.port srv) entries
  in
  (header, outcome, Server.cache_stats srv)

let replay data workload cache_mb jobs paced fast show path =
  if paced && fast then usage "--paced excludes --as-fast-as-possible";
  let _header, o, _stats =
    replay_pass ~data ~workload ~cache_mb ~jobs ~paced path
  in
  Printf.printf
    "replayed %d request(s) over %d session(s) in %.1f ms (%s)\n" o.Replay.total
    o.Replay.sessions
    (o.Replay.wall_ns /. 1e6)
    (if paced then "paced" else "as fast as possible");
  Printf.printf
    "  compared %d   matched %d   mismatched %d   skipped %d   failed %d   \
     cached %d\n"
    o.Replay.compared o.Replay.matched
    (List.length o.Replay.mismatches)
    o.Replay.skipped o.Replay.failed o.Replay.cached;
  List.iteri
    (fun i (mm : Replay.mismatch) ->
      if i < show then
        Printf.printf "  mismatch seq %d session %d: expected %s got %s  %s\n"
          mm.Replay.mm_seq mm.Replay.mm_session mm.Replay.mm_expected
          mm.Replay.mm_got
          (shorten_stmt mm.Replay.mm_stmt))
    o.Replay.mismatches;
  if Replay.identical o then
    Printf.printf "recording replayed byte-identically\n"
  else
    raise
      (Fail
         ( 4,
           Printf.sprintf "replay diverged: %d mismatch(es), %d failure(s)"
             (List.length o.Replay.mismatches)
             o.Replay.failed ))

let replay_path_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"RECORDING")

let replay_data_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "data" ] ~docv:"DIR"
        ~doc:
          "directory of CSV tables the recording was captured against \
           (when it was not a built-in workload)")

let replay_workload_arg =
  Arg.(
    value
    & opt (some (enum [ ("employee", `Employee); ("tpch", `Tpch) ])) None
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          "override the catalog to replay against (defaults to the \
           recording header's workload)")

let replay_cache_mb_arg =
  Arg.(
    value & opt int 64
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:
          "result-cache budget of the replay server; byte-identity must \
           hold at any setting, 0 included")

let replay_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N" ~doc:"engine worker domains")

let replay_cmd =
  let paced =
    Arg.(
      value & flag
      & info [ "paced" ]
          ~doc:
            "reproduce the recorded arrival tempo (sleep to each \
             request's recorded offset) instead of replaying as fast as \
             admission allows")
  in
  let fast =
    Arg.(
      value & flag
      & info [ "as-fast-as-possible" ]
          ~doc:"replay at full speed (the default; excludes --paced)")
  in
  let show =
    Arg.(
      value & opt int 5
      & info [ "show-mismatches" ] ~docv:"N"
          ~doc:"print at most $(docv) mismatched entries")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Deterministically re-execute a flight recording against a fresh \
          in-process server — one connection per recorded session, global \
          send order preserved — and byte-diff every response digest \
          against the recording; exits non-zero on any divergence")
    Term.(
      const (fun a b c d e f g h -> guarded (fun () -> replay a b c d e f g h))
      $ replay_data_arg $ replay_workload_arg $ replay_cache_mb_arg
      $ replay_jobs_arg $ paced $ fast $ show $ replay_path_arg)

(* --- connect --- *)

(* split a script into statements client-side (the wire protocol carries
   one statement per request); quote-aware so ';' inside SQL strings
   survives *)
let split_statements text =
  let out = ref [] in
  let buf = Buffer.create 128 in
  let in_str = ref false in
  let flush_stmt () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then out := s :: !out
  in
  String.iter
    (fun ch ->
      match ch with
      | '\'' ->
          in_str := not !in_str;
          Buffer.add_char buf ch
      | ';' when not !in_str -> flush_stmt ()
      | ch -> Buffer.add_char buf ch)
    text;
  flush_stmt ();
  List.rev !out

let connect host port sql file workload connections deadline_ms trace max_rows
    =
  let render (rsp : Wire.response) =
    (match rsp.Wire.rsp_trace with
    | Some t when trace -> Printf.eprintf "%s\n%!" (Tkr_obs.Json.to_string t)
    | _ -> ());
    match rsp.Wire.body with
    | Ok (Wire.Rows t) -> Table.to_text ~max_rows t
    | Ok (Wire.Message msg) -> msg ^ "\n"
    | Error e -> raise (Client.Server_error e)
  in
  match (workload, sql, file) with
  | None, None, None -> usage "provide -e SQL, -f FILE or --workload NAME"
  | Some _, Some _, _ | Some _, _, Some _ ->
      usage "--workload excludes -e/-f"
  | None, _, _ ->
      let script =
        match (sql, file) with
        | Some s, None -> s
        | None, Some f -> read_file f
        | Some _, Some _ -> usage "provide at most one of -e SQL or -f FILE"
        | None, None -> assert false
      in
      Client.with_client ~host ~port @@ fun c ->
      List.iter
        (fun stmt ->
          print_string (render (Client.run ?deadline_ms ~trace c stmt)))
        (split_statements script)
  | Some w, None, None ->
      (* the whole workload suite, fanned over N connections; results
         print in workload order so the bytes match [run --workload] *)
      let queries = Array.of_list (workload_queries w) in
      let n = Array.length queries in
      let results = Array.make n "" in
      let nconn = max 1 connections in
      let first_err = ref None in
      let err_lock = Mutex.create () in
      let worker k () =
        try
          Client.with_client ~host ~port @@ fun c ->
          Array.iteri
            (fun i (name, sql) ->
              if i mod nconn = k then
                let rsp = Client.run ?deadline_ms ~trace c sql in
                results.(i) <- Printf.sprintf "-- %s\n%s" name (render rsp))
            queries
        with e ->
          Mutex.lock err_lock;
          if !first_err = None then first_err := Some e;
          Mutex.unlock err_lock
      in
      let threads = List.init nconn (fun k -> Thread.create (worker k) ()) in
      List.iter Thread.join threads;
      (match !first_err with Some e -> raise e | None -> ());
      Array.iter print_string results

let connect_cmd =
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "e" ] ~docv:"SQL" ~doc:"SQL script to execute remotely")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f" ] ~docv:"FILE" ~doc:"SQL script file to execute remotely")
  in
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("employee", `Employee); ("tpch", `Tpch) ])) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:
            "run a built-in query workload through the server; output is \
             byte-identical to [run --workload] against the same catalog")
  in
  let connections =
    Arg.(
      value & opt int 1
      & info [ "connections"; "c" ] ~docv:"N"
          ~doc:
            "with --workload, fan the queries over $(docv) concurrent \
             connections (results still print in workload order)")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "per-request deadline; requests still queued past it fail \
             with DEADLINE_EXCEEDED")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"request execution traces and print them to stderr as JSON")
  in
  let max_rows =
    Arg.(
      value & opt int 100
      & info [ "max-rows" ] ~docv:"N" ~doc:"print at most $(docv) result rows")
  in
  Cmd.v
    (Cmd.info "connect"
       ~doc:"Run SQL against a tkr serve instance over the wire protocol")
    Term.(
      const (fun a b c d e f g h i ->
          guarded (fun () -> connect a b c d e f g h i))
      $ host_arg $ port_arg $ sql $ file $ workload $ connections
      $ deadline_ms $ trace $ max_rows)

(* --- top --- *)

(* the scrape commands answer with a Message whose text is JSON *)
let json_payload (rsp : Wire.response) : Json.t =
  match rsp.Wire.body with
  | Ok (Wire.Message s) -> Json.of_string s
  | Ok (Wire.Rows _) ->
      raise (Fail (5, "unexpected rows payload from a scrape command"))
  | Error e -> raise (Client.Server_error e)

(* frame rendering lives in Tkr_serve.Console (pure, golden-tested);
   this loop only scrapes, tracks the request delta and paints *)
let top host port interval iterations =
  let clear_screen = Unix.isatty Unix.stdout in
  Client.with_client ~host ~port @@ fun c ->
  let prev_requests = ref (-1) in
  let tick () =
    let stats = json_payload (Client.run_exn c "STATS") in
    let health = json_payload (Client.run_exn c "HEALTH") in
    (* LEDGER is scraped leniently: an older server parses the bare word
       as SQL and answers with an error — the panel is simply omitted *)
    let ledger =
      match (Client.run c "LEDGER").Wire.body with
      | Ok (Wire.Message s) -> (
          try Some (Json.of_string s) with Json.Parse_error _ -> None)
      | Ok (Wire.Rows _) | Error _ -> None
      | exception Client.Server_error _ -> None
    in
    let frame =
      Console.frame ~host ~port ~interval ~prev_requests:!prev_requests ~stats
        ~health ~ledger ()
    in
    prev_requests :=
      Option.value ~default:0
        (Option.bind (Json.member "requests" stats) Json.to_int_opt);
    if clear_screen then print_string "\027[2J\027[H";
    print_string frame;
    flush stdout
  in
  let rec loop n =
    if iterations = 0 || n < iterations then begin
      tick ();
      if iterations = 0 || n + 1 < iterations then Thread.delay interval;
      loop (n + 1)
    end
  in
  loop 0

let top_cmd =
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "i" ] ~docv:"SECONDS"
          ~doc:"seconds between refreshes")
  in
  let iterations =
    Arg.(
      value & opt int 0
      & info [ "iterations"; "n" ] ~docv:"N"
          ~doc:"stop after $(docv) refreshes (0 = until interrupted)")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live console view of a running server: QPS, latency quantiles \
          (p50/p95/p99), queue depth, in-flight requests, cache hit rate \
          and the slowest plan fingerprints, polled over the wire via \
          STATS/HEALTH")
    Term.(
      const (fun a b c d -> guarded (fun () -> top a b c d))
      $ host_arg $ port_arg $ interval $ iterations)

(* --- bench --- *)

(* The quick, deterministic bench suite behind [bench run]: the employee
   snapshot workload through the middleware, the multiset-coalescing and
   interval-join/split-agg operator microbenchmarks, measured with the
   shared Tkr_perf harness (median of --runs, GC counters included).  It
   is intentionally much smaller than bench/main.exe — small enough for
   CI smoke jobs — but written in the same canonical schema, so
   [bench compare] works across any pair.

   With --jobs N > 1 the middleware and the operator suites run on an
   N-domain pool and a "par-scaling" suite is appended: each pooled
   operator measured serially and on the pool, with the speedup recorded
   as a [speedup_x] counter — the trajectory of parallel efficiency
   across commits and job counts. *)
let bench_suite ~scale ~runs ~jobs ~engine ~index :
    Bench_result.result list * (string * Tkr_obs.Json.t) list =
  let module W = Tkr_workload.Employees in
  let module Q = Tkr_workload.Queries in
  let module Ops = Tkr_engine.Ops in
  let module Pool = Tkr_par.Pool in
  let module Trace = Tkr_obs.Trace in
  let module Json = Tkr_obs.Json in
  let employees = max 20 (int_of_float (150. *. scale)) in
  let db = W.generate { (W.scaled employees) with W.tmax = 2000 } in
  let m = M.create ~parallelism:jobs ~engine ~index ~db () in
  (* with --engine vec, a row-engine middleware over the same catalog
     provides the per-query reference timing behind [speedup_vs_row_x] *)
  let m_row =
    match engine with M.Vec -> Some (M.create ~db ()) | M.Row -> None
  in
  let jobs_counter = ("jobs", float_of_int jobs) in
  let measured ~suite ~name ?(counters = []) f =
    let s = Perf_runner.measure ~runs f in
    Printf.printf "  %-24s %12.1f us/run\n%!"
      (suite ^ "/" ^ name)
      (s.Perf_runner.wall_ns /. 1e3);
    Bench_result.result ~suite ~name ~runs
      ~counters:((jobs_counter :: counters) @ Perf_runner.gc_counters s)
      s.Perf_runner.wall_ns
  in
  Pool.with_pool ~jobs @@ fun pool ->
  let employee =
    List.map
      (fun (name, sql) ->
        let p = M.prepare m sql in
        let s = Perf_runner.measure ~runs (fun () -> M.run_prepared m p) in
        let rows = Table.cardinality (M.run_prepared m p) in
        (* the vec-vs-row trajectory: same query, row engine, same runs *)
        let speedup =
          match m_row with
          | None -> []
          | Some mr ->
              let pr = M.prepare mr sql in
              let sr =
                Perf_runner.measure ~runs (fun () -> M.run_prepared mr pr)
              in
              [
                ("row_ns_per_run", sr.Perf_runner.wall_ns);
                ( "speedup_vs_row_x",
                  sr.Perf_runner.wall_ns /. s.Perf_runner.wall_ns );
              ]
        in
        Printf.printf "  %-24s %12.1f us/run  %8d rows%s\n%!" name
          (s.Perf_runner.wall_ns /. 1e3) rows
          (match speedup with
          | [ _; (_, x) ] -> Printf.sprintf "  %5.2fx vs row" x
          | _ -> "");
        Bench_result.result ~suite:"employee" ~name ~runs
          ~counters:
            (jobs_counter
            :: ("rows_out", float_of_int rows)
            :: (speedup @ Perf_runner.gc_counters s))
          s.Perf_runner.wall_ns)
      Q.employee
  in
  let coalesce =
    List.map
      (fun n ->
        let n = max 100 (int_of_float (float_of_int n *. scale)) in
        let t = W.coalesce_input ~n ~seed:11 ~tmax:2000 in
        measured ~suite:"coalesce"
          ~name:(Printf.sprintf "coalesce-%d" n)
          (fun () -> Ops.coalesce ?pool t))
      [ 1_000; 10_000 ]
  in
  (* scaled interval-join and split-agg suites over the shared generator *)
  let join_inputs n =
    ( W.coalesce_input ~n ~seed:21 ~tmax:2000,
      W.coalesce_input ~n ~seed:22 ~tmax:2000 )
  in
  let interval_join =
    List.map
      (fun n ->
        let n = max 200 (int_of_float (float_of_int n *. scale)) in
        let l, r = join_inputs n in
        measured ~suite:"interval-join"
          ~name:(Printf.sprintf "overlap-join-%d" n)
          (fun () ->
            Tkr_engine.Interval_join.overlap_join ?pool ~left_keys:[ 0 ]
              ~right_keys:[ 0 ] l r))
      [ 2_000; 8_000 ]
  in
  let split_agg_aggs =
    [ { Tkr_relation.Algebra.func = Tkr_relation.Agg.Count_star; agg_name = "cnt" } ]
  in
  let split_agg =
    List.map
      (fun n ->
        let n = max 200 (int_of_float (float_of_int n *. scale)) in
        let t = W.coalesce_input ~n ~seed:23 ~tmax:2000 in
        measured ~suite:"split-agg"
          ~name:(Printf.sprintf "split-agg-%d" n)
          (fun () ->
            Ops.split_agg ?pool ~group:[ 0 ] ~aggs:split_agg_aggs ~gap:None t))
      [ 2_000; 8_000 ]
  in
  (* speedup-vs-jobs: serial vs pooled wall time of the same operator *)
  let par_scaling =
    match pool with
    | None -> []
    | Some pool ->
        let n = max 500 (int_of_float (8_000. *. scale)) in
        let jl, jr = join_inputs n in
        let ct = W.coalesce_input ~n ~seed:11 ~tmax:2000 in
        List.concat_map
          (fun (name, serial, parallel) ->
            let s0 = Perf_runner.measure ~runs serial in
            let s1 = Perf_runner.measure ~runs parallel in
            let speedup = s0.Perf_runner.wall_ns /. s1.Perf_runner.wall_ns in
            Printf.printf "  par-scaling/%-12s jobs %d: %.2fx\n%!" name jobs
              speedup;
            [
              Bench_result.result ~suite:"par-scaling" ~name:(name ^ "-serial")
                ~runs
                ~counters:[ ("jobs", 1.) ]
                s0.Perf_runner.wall_ns;
              Bench_result.result ~suite:"par-scaling" ~name ~runs
                ~counters:[ jobs_counter; ("speedup_x", speedup) ]
                s1.Perf_runner.wall_ns;
            ])
          [
            ( "overlap-join",
              (fun () ->
                Tkr_engine.Interval_join.overlap_join ~left_keys:[ 0 ]
                  ~right_keys:[ 0 ] jl jr),
              fun () ->
                Tkr_engine.Interval_join.overlap_join ~pool ~left_keys:[ 0 ]
                  ~right_keys:[ 0 ] jl jr );
            ( "coalesce",
              (fun () -> Ops.coalesce ct),
              fun () -> Ops.coalesce ~pool ct );
            ( "split-agg",
              (fun () ->
                Ops.split_agg ~group:[ 0 ] ~aggs:split_agg_aggs ~gap:None ct),
              fun () ->
                Ops.split_agg ~pool ~group:[ 0 ] ~aggs:split_agg_aggs ~gap:None
                  ct );
          ]
  in
  (* AS OF point lookups over a scaled period table: the interval-index
     stab against the full-scan reference.  [speedup_vs_scan_x] is the
     tracked trajectory (CI gates the asof suite at >= 1.0x), exactly
     like [speedup_vs_row_x] tracks vec-vs-row. *)
  let asof =
    let n = max 2_000 (int_of_float (40_000. *. scale)) in
    let adb = Database.create ~tmin:0 ~tmax:2000 () in
    Database.add_period_table adb "history"
      (W.coalesce_input ~n ~seed:31 ~tmax:2000);
    let mi = M.create ~engine ~db:adb () in
    let ms = M.create ~engine ~index:false ~db:adb () in
    let res =
      List.map
        (fun (name, sql) ->
          let p = M.prepare mi sql in
          let s = Perf_runner.measure ~runs (fun () -> M.run_prepared mi p) in
          let ps = M.prepare ms sql in
          let ss =
            Perf_runner.measure ~runs (fun () -> M.run_prepared ms ps)
          in
          let speedup = ss.Perf_runner.wall_ns /. s.Perf_runner.wall_ns in
          let rows = Table.cardinality (M.run_prepared mi p) in
          Printf.printf "  %-24s %12.1f us/run  %8d rows  %5.2fx vs scan\n%!"
            ("asof/" ^ name)
            (s.Perf_runner.wall_ns /. 1e3)
            rows speedup;
          Bench_result.result ~suite:"asof" ~name ~runs
            ~counters:
              (jobs_counter
              :: ("rows_out", float_of_int rows)
              :: ("scan_ns_per_run", ss.Perf_runner.wall_ns)
              :: ("speedup_vs_scan_x", speedup)
              :: Perf_runner.gc_counters s)
            s.Perf_runner.wall_ns)
        [
          ("stab-mid", "SEQ VT AS OF 1000 (SELECT emp_no FROM history)");
          ("stab-early", "SEQ VT AS OF 13 (SELECT emp_no FROM history)");
          (* an early stab so the O(n) scan — not the shared downstream
             aggregation — is the dominant term being replaced *)
          ( "stab-count",
            "SEQ VT AS OF 13 (SELECT count(*) AS c FROM history)" );
        ]
    in
    M.shutdown mi;
    M.shutdown ms;
    res
  in
  (* one traced execution per employee query, so [bench export --folded]
     works on CLI-produced reports too *)
  let traces =
    Json.List
      (List.map
         (fun (name, sql) ->
           let p = M.prepare m sql in
           let obs = Trace.create ~gc:true () in
           ignore (M.run_prepared ~obs m p);
           Json.Obj
             [
               ("query", Json.Str name);
               ( "trace",
                 Json.List (List.map Trace.to_json_value (Trace.roots obs)) );
             ])
         Q.employee)
  in
  M.shutdown m;
  Option.iter M.shutdown m_row;
  ( employee @ coalesce @ interval_join @ split_agg @ asof @ par_scaling,
    [ ("operator_traces", traces) ] )

let bench_run out scale runs jobs engine index =
  let path = match out with Some p -> p | None -> Bench_result.default_filename () in
  Printf.printf "quick bench suite (scale %.2f, %d runs, %d jobs, %s engine):\n%!"
    scale runs jobs
    (match engine with M.Row -> "row" | M.Vec -> "vec");
  let results, extra = bench_suite ~scale ~runs ~jobs ~engine ~index in
  let report = Bench_result.make ~extra ~source:"tkr_cli bench run" results in
  Bench_result.write path report;
  Printf.printf "wrote %s (%d results)\n" path (List.length results)

let bench_compare base fresh threshold suite =
  match (Bench_result.read base, Bench_result.read fresh) with
  | b, f ->
      if b.Bench_result.env.Tkr_perf.Env.hostname
         <> f.Bench_result.env.Tkr_perf.Env.hostname
      then
        Printf.eprintf
          "warning: comparing runs from different hosts (%s vs %s)\n%!"
          b.Bench_result.env.Tkr_perf.Env.hostname
          f.Bench_result.env.Tkr_perf.Env.hostname;
      (* a +dirty report did not come from the commit its SHA names *)
      List.iter
        (fun (label, path, (r : Bench_result.report)) ->
          Option.iter (Printf.eprintf "warning: %s\n%!")
            (Perf_runner.provenance_warning ~label ~path r.Bench_result.env))
        [ ("base", base, b); ("new", fresh, f) ];
      let outcome = Perf_compare.compare_reports ~threshold ?suite b f in
      print_string (Perf_compare.render outcome);
      if Perf_compare.has_regression outcome then
        raise
          (Fail
             ( 1,
               Printf.sprintf "%d test(s) regressed beyond %.2fx"
                 (List.length (Perf_compare.regressions outcome))
                 threshold ))

let bench_export file openmetrics folded =
  let rep = Bench_result.read file in
  match (openmetrics, folded) with
  | true, false -> print_string (Perf_export.to_openmetrics rep)
  | false, true ->
      let out = Perf_export.to_folded rep in
      if out = "" then
        raise
          (Fail
             ( 5,
               "no operator_traces in this file (produced by bench run? \
                use bench/main.exe or experiments --json)" ))
      else print_string out
  | _ -> usage "choose exactly one of --openmetrics or --folded"

let bench_run_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:
            "output file; defaults to the next trajectory name \
             (BENCH_PR<n>.json past the highest one present, or \
             \\$TKR_BENCH_PR)")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale"; "s" ] ~docv:"F" ~doc:"workload scale factor")
  in
  let runs =
    Arg.(
      value & opt int 3
      & info [ "runs"; "r" ] ~docv:"N" ~doc:"timed samples per test (median)")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "worker domains; at N > 1 the temporal operators run on an \
             N-domain pool and a par-scaling suite records the \
             serial-vs-pooled speedup")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the quick bench suite and write the canonical JSON report")
    Term.(
      const (fun a b c d e f -> guarded (fun () -> bench_run a b c d e f))
      $ out $ scale $ runs $ jobs $ engine_arg $ index_arg)

let bench_compare_cmd =
  let base =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE")
  in
  let fresh = Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW") in
  let threshold =
    Arg.(
      value
      & opt float Perf_compare.default_threshold
      & info [ "threshold"; "t" ] ~docv:"F"
          ~doc:
            "regression ratio: NEW/BASE above $(docv) fails, its inverse \
             reports an improvement, anything between is noise")
  in
  let suite =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"NAME"
          ~doc:
            "compare only this suite's tests on both sides (e.g. \
             $(b,employee) for the CI row-vs-vec gate)")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two bench reports test-by-test; exit non-zero when any \
          test regressed beyond the threshold")
    Term.(
      const (fun a b c d -> guarded (fun () -> bench_compare a b c d))
      $ base $ fresh $ threshold $ suite)

let bench_export_cmd =
  let file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let openmetrics =
    Arg.(
      value & flag
      & info [ "openmetrics" ]
          ~doc:"print the report as an OpenMetrics/Prometheus text document")
  in
  let folded =
    Arg.(
      value & flag
      & info [ "folded" ]
          ~doc:
            "print the stored operator traces as flamegraph-compatible \
             folded stacks (query;operator;... self-ns)")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export a bench report for Prometheus or flamegraph tooling")
    Term.(
      const (fun a b c -> guarded (fun () -> bench_export a b c))
      $ file $ openmetrics $ folded)

(* --- bench serve --- *)

(* The timeslice-heavy repeated workload behind [bench serve]: a few
   snapshot timeslices of the employee join/agg/diff queries, cycled by
   every client.  After the first coverage every request is a cache hit,
   so the cached-vs-uncached ratio measures the result cache itself. *)
let timeslice_statements =
  let inners =
    [
      ( "join-1",
        "SELECT d.dept_no, s.emp_no, s.salary FROM dept_emp d, salaries s \
         WHERE d.emp_no = s.emp_no" );
      ( "join-4",
        "SELECT m.dept_no, m.emp_no, s.salary, e.name FROM dept_manager m, \
         salaries s, employees e WHERE m.emp_no = s.emp_no AND m.emp_no = \
         e.emp_no" );
      ( "agg-1",
        "SELECT d.dept_no, avg(s.salary) AS avg_salary FROM dept_emp d, \
         salaries s WHERE d.emp_no = s.emp_no GROUP BY d.dept_no" );
      ( "agg-join",
        "SELECT e.name FROM employees e, dept_emp d, salaries s, (SELECT \
         d2.dept_no AS dn, max(s2.salary) AS ms FROM dept_emp d2, salaries \
         s2 WHERE d2.emp_no = s2.emp_no GROUP BY d2.dept_no) AS mx WHERE \
         e.emp_no = d.emp_no AND e.emp_no = s.emp_no AND d.dept_no = mx.dn \
         AND s.salary = mx.ms" );
      ( "diff-1",
        "SELECT emp_no FROM employees EXCEPT ALL SELECT emp_no FROM \
         dept_manager" );
    ]
  in
  List.concat_map
    (fun t ->
      List.map
        (fun (n, q) ->
          ( Printf.sprintf "%s@%d" n t,
            Printf.sprintf "SEQ VT AS OF %d (%s)" t q ))
        inners)
    [ 100; 400; 700; 1000; 1300 ]

(* one closed-loop pass: N clients x M requests against an in-process
   server; returns per-request latencies (us), total wall ns, cache
   stats, error count *)
let serve_bench_pass ~scale ~connections ~requests ~jobs ~cache_mb =
  let db =
    let module W = Tkr_workload.Employees in
    W.generate
      { (W.scaled (max 20 (int_of_float (600. *. scale)))) with W.tmax = 2000 }
  in
  let m = M.create ~parallelism:jobs ~db () in
  Fun.protect ~finally:(fun () -> M.shutdown m) @@ fun () ->
  let config =
    {
      Server.default_config with
      port = 0;
      max_sessions = connections + 4;
      queue_depth = max 128 (connections * 4);
      cache_mb;
    }
  in
  let srv = Server.start ~config m in
  let port = Server.port srv in
  let stmts = Array.of_list (List.map snd timeslice_statements) in
  let nst = Array.length stmts in
  let lat_us = Array.make (connections * requests) 0.0 in
  let errors = Atomic.make 0 in
  let worker k () =
    try
      Client.with_client ~port @@ fun c ->
      for i = 0 to requests - 1 do
        let stmt = stmts.((k + i) mod nst) in
        let t0 = Clock.now_ns () in
        (match (Client.run c stmt).Wire.body with
        | Ok _ -> ()
        | Error _ -> Atomic.incr errors);
        lat_us.((k * requests) + i) <-
          Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e3
      done
    with _ -> Atomic.incr errors
  in
  let t0 = Clock.now_ns () in
  let threads = List.init connections (fun k -> Thread.create (worker k) ()) in
  List.iter Thread.join threads;
  let total_ns = Int64.to_float (Int64.sub (Clock.now_ns ()) t0) in
  let stats = Server.cache_stats srv in
  Server.stop srv;
  (lat_us, total_ns, stats, Atomic.get errors)

let percentile = Perf_runner.percentile

let bench_serve out append scale connections requests jobs cache_mb =
  Printf.printf
    "serve bench: %d clients x %d requests (%d distinct statements), scale \
     %.2f, jobs %d, cache %d MiB vs off:\n%!"
    connections requests
    (List.length timeslice_statements)
    scale jobs cache_mb;
  let pass label cache_mb =
    let lat, total_ns, stats, errors =
      serve_bench_pass ~scale ~connections ~requests ~jobs ~cache_mb
    in
    if errors > 0 then
      raise (Fail (4, Printf.sprintf "%s pass: %d request(s) failed" label errors));
    Array.sort compare lat;
    let n = connections * requests in
    let rps = float_of_int n /. (total_ns /. 1e9) in
    let looked = stats.Cache.hits + stats.Cache.misses in
    let hit_rate =
      if looked = 0 then 0.0
      else float_of_int stats.Cache.hits /. float_of_int looked
    in
    Printf.printf
      "  %-8s %8.0f req/s  p50 %8.0f us  p95 %8.0f us  p99 %8.0f us  hit \
       rate %.2f\n%!"
      label rps (percentile lat 0.50) (percentile lat 0.95)
      (percentile lat 0.99) hit_rate;
    (lat, total_ns, rps, hit_rate)
  in
  let lat_c, ns_c, rps_c, hits_c = pass "cached" cache_mb in
  let lat_u, ns_u, rps_u, hits_u = pass "uncached" 0 in
  let speedup = ns_u /. ns_c in
  Printf.printf "  cache speedup: %.2fx throughput\n%!" speedup;
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let result name lat rps hit_rate extra =
    Bench_result.result ~suite:"serve" ~name ~runs:(connections * requests)
      ~counters:
        ([
           ("connections", float_of_int connections);
           ("requests", float_of_int (connections * requests));
           ("jobs", float_of_int jobs);
           ("p50_us", percentile lat 0.50);
           ("p95_us", percentile lat 0.95);
           ("p99_us", percentile lat 0.99);
           ("rps", rps);
           ("cache_hit_rate", hit_rate);
         ]
        @ extra)
      (mean lat *. 1e3)
  in
  let results =
    [
      result "cached" lat_c rps_c hits_c [ ("speedup_x", speedup) ];
      result "uncached" lat_u rps_u hits_u [];
    ]
  in
  match append with
  | Some path ->
      let r = Bench_result.read path in
      let keep =
        List.filter
          (fun (x : Bench_result.result) -> x.Bench_result.suite <> "serve")
          r.Bench_result.results
      in
      (* the appended suite was measured now: re-stamp the report with the
         current environment instead of keeping the file's stale one *)
      let env, warn = Perf_runner.refresh_env ~path r.Bench_result.env in
      Option.iter (Printf.eprintf "warning: %s\n%!") warn;
      Bench_result.write path
        { r with Bench_result.results = keep @ results; Bench_result.env = env };
      Printf.printf "appended serve suite to %s\n" path
  | None ->
      let path =
        match out with Some p -> p | None -> Bench_result.default_filename ()
      in
      Bench_result.write path
        (Bench_result.make ~source:"tkr_cli bench serve" results);
      Printf.printf "wrote %s (%d results)\n" path (List.length results)

let bench_serve_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"output file (defaults like [bench run])")
  in
  let append =
    Arg.(
      value
      & opt (some string) None
      & info [ "append" ] ~docv:"PATH"
          ~doc:
            "append/replace the serve suite inside an existing bench \
             report instead of writing a fresh file")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale"; "s" ] ~docv:"F"
          ~doc:"workload scale factor (600 employees at 1.0)")
  in
  let connections =
    Arg.(
      value & opt int 8
      & info [ "connections"; "c" ] ~docv:"N" ~doc:"closed-loop clients")
  in
  let requests =
    Arg.(
      value & opt int 60
      & info [ "requests"; "r" ] ~docv:"M" ~doc:"requests per client")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"engine worker domains")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:"cache budget of the cached pass (the other pass runs at 0)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Benchmark the query server: closed-loop clients over a \
          timeslice-heavy repeated workload, cached vs uncached, \
          p50/p95/p99 latency, throughput and cache hit rate")
    Term.(
      const (fun a b c d e f g ->
          guarded (fun () -> bench_serve a b c d e f g))
      $ out $ append $ scale $ connections $ requests $ jobs $ cache_mb)

(* --- bench replay --- *)

(* a recording as a benchmark: replay it at full speed through a fresh
   in-process server and write the result in the canonical Perf schema,
   so recordings of real workloads join the BENCH_PR<n>.json trajectory
   and [bench compare] works on them *)
let bench_replay out append data workload cache_mb jobs path =
  let _header, o, stats =
    replay_pass ~data ~workload ~cache_mb ~jobs ~paced:false path
  in
  if not (Replay.identical o) then
    raise
      (Fail
         ( 4,
           Printf.sprintf
             "replay diverged (%d mismatch(es), %d failure(s)): fix the \
              recording or catalog before benchmarking it"
             (List.length o.Replay.mismatches)
             o.Replay.failed ));
  let lat = Array.copy o.Replay.lat_us in
  Array.sort compare lat;
  let n = max 1 o.Replay.total in
  let mean =
    Array.fold_left ( +. ) 0.0 lat /. float_of_int (max 1 (Array.length lat))
  in
  let rps = float_of_int o.Replay.total /. (o.Replay.wall_ns /. 1e9) in
  let looked = stats.Cache.hits + stats.Cache.misses in
  let hit_rate =
    if looked = 0 then 0.0
    else float_of_int stats.Cache.hits /. float_of_int looked
  in
  let name = Filename.remove_extension (Filename.basename path) in
  Printf.printf
    "replay bench %s: %d requests, %d sessions, %8.0f req/s, p50 %8.0f us, \
     p95 %8.0f us, hit rate %.2f\n%!"
    name o.Replay.total o.Replay.sessions rps (percentile lat 0.50)
    (percentile lat 0.95) hit_rate;
  let results =
    [
      Bench_result.result ~suite:"replay" ~name ~runs:n
        ~counters:
          [
            ("requests", float_of_int o.Replay.total);
            ("sessions", float_of_int o.Replay.sessions);
            ("matched", float_of_int o.Replay.matched);
            ("mismatches", float_of_int (List.length o.Replay.mismatches));
            ("cached", float_of_int o.Replay.cached);
            ("jobs", float_of_int jobs);
            ("rps", rps);
            ("p50_us", percentile lat 0.50);
            ("p95_us", percentile lat 0.95);
            ("p99_us", percentile lat 0.99);
            ("cache_hit_rate", hit_rate);
          ]
        (mean *. 1e3)
    ]
  in
  match append with
  | Some path ->
      let r = Bench_result.read path in
      let keep =
        List.filter
          (fun (x : Bench_result.result) -> x.Bench_result.suite <> "replay")
          r.Bench_result.results
      in
      (* replay baselines carry current provenance, like bench compare's
         warnings assume: never inherit the old file's env *)
      let env, warn = Perf_runner.refresh_env ~path r.Bench_result.env in
      Option.iter (Printf.eprintf "warning: %s\n%!") warn;
      Bench_result.write path
        { r with Bench_result.results = keep @ results; Bench_result.env = env };
      Printf.printf "appended replay suite to %s\n" path
  | None ->
      let path =
        match out with Some p -> p | None -> Bench_result.default_filename ()
      in
      Bench_result.write path
        (Bench_result.make ~source:"tkr_cli bench replay" results);
      Printf.printf "wrote %s (%d results)\n" path (List.length results)

let bench_replay_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"output file (defaults like [bench run])")
  in
  let append =
    Arg.(
      value
      & opt (some string) None
      & info [ "append" ] ~docv:"PATH"
          ~doc:
            "append/replace the replay suite inside an existing bench \
             report instead of writing a fresh file")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Benchmark a flight recording: replay it at full speed through a \
          fresh in-process server (verifying byte-identity first) and \
          write latency/throughput counters in the canonical bench \
          schema, compatible with [bench compare]")
    Term.(
      const (fun a b c d e f g ->
          guarded (fun () -> bench_replay a b c d e f g))
      $ out $ append $ replay_data_arg $ replay_workload_arg
      $ replay_cache_mb_arg $ replay_jobs_arg $ replay_path_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "Performance trajectory: run the quick suite, detect regressions, \
          export to external tooling, benchmark the query server, \
          benchmark flight recordings")
    [
      bench_run_cmd; bench_compare_cmd; bench_export_cmd; bench_serve_cmd;
      bench_replay_cmd;
    ]

let () =
  let doc = "snapshot-semantics temporal query middleware" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "tkr" ~doc)
          [
            demo_cmd; gen_cmd; run_cmd; explain_cmd; lint_cmd; serve_cmd;
            replay_cmd; connect_cmd; top_cmd; bench_cmd;
          ]))
