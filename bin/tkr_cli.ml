(* The middleware's command-line interface.

   Subcommands:
     demo                      run the paper's running example
     gen  --dataset D --out P  generate a workload dataset as CSV files
     run  --data DIR [-e SQL | -f FILE]
                               run SQL (with SEQ VT support) against CSVs
*)

open Cmdliner
module M = Tkr_middleware.Middleware
module Ast = Tkr_sql.Ast
module Database = Tkr_engine.Database
module Table = Tkr_engine.Table
module Csv_io = Tkr_engine.Csv_io

let print_result ?(max_rows = 100) = function
  | M.Rows t -> print_string (Table.to_text ~max_rows t)
  | M.Done msg -> Printf.printf "%s\n" msg

(* --- demo --- *)

let demo () =
  let m = M.create () in
  Database.set_time_bounds (M.database m) ~tmin:0 ~tmax:24;
  ignore
    (M.execute_script m
       {|
       CREATE TABLE works (name text, skill text, b int, e int) PERIOD (b, e);
       INSERT INTO works VALUES
         ('Ann', 'SP', 3, 10), ('Joe', 'NS', 8, 16),
         ('Sam', 'SP', 8, 16), ('Ann', 'SP', 18, 20);
     |});
  print_endline "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
  print_result
    (M.execute m
       "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP') ORDER BY vt_begin")

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Run the paper's running example (Figure 1b)")
    Term.(const demo $ const ())

(* --- gen --- *)

let gen dataset out scale =
  let db =
    match dataset with
    | "employees" ->
        Tkr_workload.Employees.generate
          (Tkr_workload.Employees.scaled (int_of_float (500. *. scale)))
    | "tpcbih" ->
        Tkr_workload.Tpcbih.generate { Tkr_workload.Tpcbih.default with scale }
    | d -> failwith ("unknown dataset " ^ d ^ " (try employees or tpcbih)")
  in
  (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun name ->
      let path = Filename.concat out (name ^ ".csv") in
      Csv_io.write_table path (Database.find db name);
      Printf.printf "wrote %s (%d rows)\n" path
        (Table.cardinality (Database.find db name)))
    (Database.names db)

let gen_cmd =
  let dataset =
    Arg.(
      required
      & opt (some string) None
      & info [ "dataset"; "d" ] ~docv:"NAME" ~doc:"employees or tpcbih")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"DIR" ~doc:"output directory")
  in
  let scale =
    Arg.(value & opt float 1.0 & info [ "scale"; "s" ] ~doc:"scale factor")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a workload dataset as CSV period tables")
    Term.(const gen $ dataset $ out $ scale)

(* --- run --- *)

let load_dir m dir =
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".csv" then (
        let name = Filename.remove_extension file in
        let table = Csv_io.read_table (Filename.concat dir file) in
        (* tables whose last two columns are integers named vt_* are
           registered as period tables *)
        let schema = Tkr_engine.Table.schema table in
        let n = Tkr_relation.Schema.arity schema in
        let is_period =
          n >= 2
          && (let a = Tkr_relation.Schema.get schema (n - 2) in
              let b = Tkr_relation.Schema.get schema (n - 1) in
              a.ty = Tkr_relation.Value.TInt
              && b.ty = Tkr_relation.Value.TInt
              && String.length a.name >= 3
              && String.sub a.name 0 3 = "vt_")
        in
        if is_period then Database.add_period_table (M.database m) name table
        else Database.add_table (M.database m) name table;
        Printf.eprintf "loaded %s (%d rows%s)\n%!" name
          (Table.cardinality table)
          (if is_period then ", period table" else "")))
    (Sys.readdir dir)

let run data sql file explain stats max_rows =
  let m = M.create () in
  (match data with Some dir -> load_dir m dir | None -> ());
  let script =
    match (sql, file) with
    | Some s, None -> s
    | None, Some f ->
        let ic = open_in f in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | _ -> failwith "provide exactly one of -e SQL or -f FILE"
  in
  List.iter
    (fun stmt ->
      (* --explain: run queries as EXPLAIN ANALYZE, leave DDL/DML alone *)
      let stmt =
        match stmt with
        | Ast.Query _ when explain -> Ast.Explain { analyze = true; target = stmt }
        | stmt -> stmt
      in
      print_result ~max_rows (M.execute_statement m stmt))
    (Tkr_sql.Parser.script script);
  if stats then Printf.printf "stats: %s\n" (M.totals_report m)

let run_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let sql =
    Arg.(
      value
      & opt (some string) None
      & info [ "e" ] ~docv:"SQL" ~doc:"SQL script to execute")
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f" ] ~docv:"FILE" ~doc:"SQL script file to execute")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"run every query as EXPLAIN ANALYZE: print the annotated \
                operator tree instead of the rows")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"after the script, print cumulative phase timings \
                (parse/analyze/rewrite/optimize/execute)")
  in
  let max_rows =
    Arg.(
      value & opt int 100
      & info [ "max-rows" ] ~docv:"N" ~doc:"print at most $(docv) result rows")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute SQL (including SEQ VT snapshot queries) against CSV data")
    Term.(const run $ data $ sql $ file $ explain $ stats $ max_rows)

(* --- explain --- *)

let explain data analyze sql =
  let m = M.create () in
  (match data with Some dir -> load_dir m dir | None -> ());
  print_endline (if analyze then M.explain_analyze m sql else M.explain m sql)

let explain_cmd =
  let data =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"DIR" ~doc:"directory of CSV tables to load")
  in
  let analyze =
    Arg.(
      value & flag
      & info [ "analyze" ]
          ~doc:"execute the query and annotate every operator with rows \
                in/out, internals and elapsed time")
  in
  let sql =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the optimized, rewritten plan of a query")
    Term.(const explain $ data $ analyze $ sql)

let () =
  let doc = "snapshot-semantics temporal query middleware" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "tkr" ~doc) [ demo_cmd; gen_cmd; run_cmd; explain_cmd ]))
