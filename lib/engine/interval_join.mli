(** A dedicated sort-based interval overlap join (forward-scan plane
    sweep, after Bouros & Mamoulis).  Produces exactly the rows of
    [Exec.join] with an equality + overlap predicate; it is the
    integration point for native temporal join operators the paper
    identifies in Section 10.5 (DBX's merge join). *)


val overlap_join :
  ?sp:Tkr_obs.Trace.span ->
  ?pool:Tkr_par.Pool.t ->
  ?chunks:int ->
  left_keys:int list ->
  right_keys:int list ->
  Table.t ->
  Table.t ->
  Table.t
(** Join encoded tables on key equality and interval overlap, returning
    concatenated rows.  NULL keys never match.

    Without a pool, the serial sweep runs and the output is byte-identical
    to the pre-parallel engine.  With [?pool], the joint time span is
    partitioned into contiguous chunks ([?chunks] overrides the count,
    which otherwise is a pure function of the input size, never of the
    pool size); rows are replicated into every chunk their period
    overlaps, and a pair is emitted only by the chunk containing its
    overlap start [max(b1, b2)], so each pair appears exactly once.  The
    parallel result is identical for every pool size and bag-equal to the
    serial result (the serial sweep's emission order cannot be reproduced
    under time partitioning). *)
