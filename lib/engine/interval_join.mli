(** A dedicated sort-based interval overlap join (forward-scan plane
    sweep, after Bouros & Mamoulis).  Produces exactly the rows of
    [Exec.join] with an equality + overlap predicate; it is the
    integration point for native temporal join operators the paper
    identifies in Section 10.5 (DBX's merge join). *)


val overlap_join :
  ?sp:Tkr_obs.Trace.span ->
  left_keys:int list ->
  right_keys:int list ->
  Table.t ->
  Table.t ->
  Table.t
(** Join encoded tables on key equality and interval overlap, returning
    concatenated rows.  NULL keys never match. *)
