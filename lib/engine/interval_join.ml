(** A dedicated sort-based interval overlap join (forward-scan plane sweep,
    after Bouros & Mamoulis, PVLDB 2017).

    The paper observes that DBX's native merge join for temporal joins
    significantly outperforms hash joins with an overlap residual and
    suggests integrating such operators with the rewriting (Section 10.5).
    This operator is that integration point: it produces exactly the same
    rows as [Exec.join] with an equality + overlap predicate and is
    compared against it in the ablation benchmarks. *)

open Tkr_relation
module Trace = Tkr_obs.Trace

let period_of_row = Ops.period_of_row

(* Forward-scan sweep over two begin-sorted row arrays of one key bucket;
   emits every overlapping pair exactly once. *)
let sweep_bucket emit (l : Tuple.t array) (r : Tuple.t array) =
  let nl = Array.length l and nr = Array.length r in
  let lb i = fst (period_of_row l.(i)) and le i = snd (period_of_row l.(i)) in
  let rb j = fst (period_of_row r.(j)) and re j = snd (period_of_row r.(j)) in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    if lb !i <= rb !j then (
      let k = ref !j in
      while !k < nr && rb !k < le !i do
        emit l.(!i) r.(!k);
        incr k
      done;
      incr i)
    else
      let k = ref !i in
      while !k < nl && lb !k < re !j do
        emit l.(!k) r.(!j);
        incr k
      done;
      incr j
  done

(** [overlap_join ~left_keys ~right_keys l r] joins encoded tables on
    equality of the given key columns and interval overlap, returning the
    concatenation of the matching rows. *)
let overlap_join ?sp ~(left_keys : int list) ~(right_keys : int list)
    (l : Table.t) (r : Table.t) : Table.t =
  let out_schema = Schema.concat (Table.schema l) (Table.schema r) in
  let bucketize keys t =
    let h : (Tuple.t, Tuple.t list ref) Hashtbl.t = Hashtbl.create 256 in
    Array.iter
      (fun row ->
        let key = Tuple.project keys row in
        if not (Array.exists Value.is_null key) then
          match Hashtbl.find_opt h key with
          | Some cell -> cell := row :: !cell
          | None -> Hashtbl.add h key (ref [ row ]))
      (Table.rows t);
    h
  in
  let lh = bucketize left_keys l and rh = bucketize right_keys r in
  let matched_buckets = ref 0 in
  let buf = ref [] in
  Hashtbl.iter
    (fun key lrows ->
      match Hashtbl.find_opt rh key with
      | None -> ()
      | Some rrows ->
          incr matched_buckets;
          let sort rows =
            let a = Array.of_list !rows in
            Array.sort
              (fun r1 r2 ->
                Int.compare (fst (period_of_row r1)) (fst (period_of_row r2)))
              a;
            a
          in
          sweep_bucket
            (fun lr rr -> buf := Tuple.append lr rr :: !buf)
            (sort lrows) (sort rrows))
    lh;
  (match sp with
  | None -> ()
  | Some _ ->
      Trace.set_str sp "strategy" "interval_sweep";
      Trace.set_int sp "buckets_left" (Hashtbl.length lh);
      Trace.set_int sp "buckets_right" (Hashtbl.length rh);
      Trace.set_int sp "buckets_matched" !matched_buckets;
      Trace.set_int sp "pairs_emitted" (List.length !buf));
  Table.make out_schema !buf
