(** A dedicated sort-based interval overlap join (forward-scan plane sweep,
    after Bouros & Mamoulis, PVLDB 2017).

    The paper observes that DBX's native merge join for temporal joins
    significantly outperforms hash joins with an overlap residual and
    suggests integrating such operators with the rewriting (Section 10.5).
    This operator is that integration point: it produces exactly the same
    rows as [Exec.join] with an equality + overlap predicate and is
    compared against it in the ablation benchmarks.

    With a {!Tkr_par.Pool.t} the join parallelizes over time-range chunks:
    the joint time span is partitioned into contiguous chunks, every row is
    replicated into each chunk its period overlaps, and a pair is emitted
    only by the chunk containing its overlap start [max(b1, b2)] — the
    standard dedup rule that makes boundary duplication exact.  The chunk
    count is a pure function of the input size (never of the pool size), so
    parallel output is identical for every jobs >= 2; it is bag-equal (not
    byte-equal) to the serial path, whose sweep emission order cannot be
    reproduced by time partitioning. *)

open Tkr_relation
module Trace = Tkr_obs.Trace
module Clock = Tkr_obs.Clock
module Pool = Tkr_par.Pool

let period_of_row = Ops.period_of_row

(* Forward-scan sweep over two begin-sorted row arrays of one key bucket;
   emits every overlapping pair exactly once. *)
let sweep_bucket emit (l : Tuple.t array) (r : Tuple.t array) =
  let nl = Array.length l and nr = Array.length r in
  let lb i = fst (period_of_row l.(i)) and le i = snd (period_of_row l.(i)) in
  let rb j = fst (period_of_row r.(j)) and re j = snd (period_of_row r.(j)) in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    if lb !i <= rb !j then (
      let k = ref !j in
      while !k < nr && rb !k < le !i do
        emit l.(!i) r.(!k);
        incr k
      done;
      incr i)
    else
      let k = ref !i in
      while !k < nl && lb !k < re !j do
        emit l.(!k) r.(!j);
        incr k
      done;
      incr j
  done

let bucketize keys t =
  let h : (Tuple.t, Tuple.t list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun row ->
      let key = Tuple.project keys row in
      if not (Array.exists Value.is_null key) then
        match Hashtbl.find_opt h key with
        | Some cell -> cell := row :: !cell
        | None -> Hashtbl.add h key (ref [ row ]))
    (Table.rows t);
  h

let sort_bucket rows =
  let a = Array.of_list !rows in
  Array.sort
    (fun r1 r2 ->
      Int.compare (fst (period_of_row r1)) (fst (period_of_row r2)))
    a;
  a

(* Default time-chunk count for the parallel path: a pure function of the
   input size — NEVER of the pool size — so output is identical at any
   parallelism. *)
let default_chunks ~total_rows = max 1 (min 32 (total_rows / 2048))

(* The rows of a sorted bucket whose period overlaps [lo, hi). *)
let filter_range (a : Tuple.t array) lo hi =
  Array.of_seq
    (Seq.filter
       (fun row ->
         let b, e = period_of_row row in
         b < hi && e > lo)
       (Array.to_seq a))

(** [overlap_join ~left_keys ~right_keys l r] joins encoded tables on
    equality of the given key columns and interval overlap, returning the
    concatenation of the matching rows. *)
let overlap_join ?sp ?pool ?chunks ~(left_keys : int list)
    ~(right_keys : int list) (l : Table.t) (r : Table.t) : Table.t =
  let out_schema = Schema.concat (Table.schema l) (Table.schema r) in
  let lh = bucketize left_keys l and rh = bucketize right_keys r in
  let matched_buckets = ref 0 in
  (* matched buckets, both sides begin-sorted, in hash-iteration order
     (deterministic for a given input) *)
  let matched = ref [] in
  Hashtbl.iter
    (fun key lrows ->
      match Hashtbl.find_opt rh key with
      | None -> ()
      | Some rrows ->
          incr matched_buckets;
          matched := (sort_bucket lrows, sort_bucket rrows) :: !matched)
    lh;
  let matched = Array.of_list !matched in
  let set_common_attrs () =
    Trace.set_int sp "buckets_left" (Hashtbl.length lh);
    Trace.set_int sp "buckets_right" (Hashtbl.length rh);
    Trace.set_int sp "buckets_matched" !matched_buckets
  in
  match pool with
  | None ->
      (* serial path: byte-identical to the pre-parallel engine *)
      let buf = ref [] in
      Array.iter
        (fun (la, ra) ->
          sweep_bucket (fun lr rr -> buf := Tuple.append lr rr :: !buf) la ra)
        matched;
      (match sp with
      | None -> ()
      | Some _ ->
          Trace.set_str sp "strategy" "interval_sweep";
          set_common_attrs ();
          Trace.set_int sp "pairs_emitted" (List.length !buf));
      Table.make out_schema !buf
  | Some pool ->
      if Array.length matched = 0 then (
        (match sp with
        | None -> ()
        | Some _ ->
            Trace.set_str sp "strategy" "interval_sweep_par";
            set_common_attrs ();
            Trace.set_int sp "pairs_emitted" 0);
        Table.make out_schema [])
      else begin
        (* joint time span of the matched buckets *)
        let tmin = ref max_int and tmax = ref min_int in
        Array.iter
          (fun (la, ra) ->
            let scan a =
              Array.iter
                (fun row ->
                  let b, e = period_of_row row in
                  if b < !tmin then tmin := b;
                  if e > !tmax then tmax := e)
                a
            in
            scan la;
            scan ra)
          matched;
        let total_rows = Table.cardinality l + Table.cardinality r in
        let c =
          match chunks with
          | Some c -> max 1 c
          | None -> default_chunks ~total_rows
        in
        let c = if !tmax <= !tmin then 1 else min c (!tmax - !tmin) in
        let tmin = !tmin and tmax = !tmax in
        let cut i = tmin + ((tmax - tmin) * i / c) in
        (* chunk [lo, hi): rows replicated into every overlapping chunk,
           a pair emitted only where its overlap start lands *)
        let chunk_rows ci =
          let lo = cut ci and hi = cut (ci + 1) in
          let buf = ref [] in
          if hi > lo then
            Array.iter
              (fun (la, ra) ->
                let fl = filter_range la lo hi and fr = filter_range ra lo hi in
                if Array.length fl > 0 && Array.length fr > 0 then
                  sweep_bucket
                    (fun lr rr ->
                      let s =
                        max (fst (period_of_row lr)) (fst (period_of_row rr))
                      in
                      if s >= lo && s < hi then
                        buf := Tuple.append lr rr :: !buf)
                    fl fr)
              matched;
          !buf
        in
        let parts, stats =
          Pool.run pool (Array.init c (fun ci -> fun () -> chunk_rows ci))
        in
        let t0 = Clock.now_ns () in
        let rows = List.concat (Array.to_list parts) in
        let merge_ns = Int64.sub (Clock.now_ns ()) t0 in
        (match sp with
        | None -> ()
        | Some _ ->
            Trace.set_str sp "strategy" "interval_sweep_par";
            set_common_attrs ();
            Trace.set_int sp "pairs_emitted" (List.length rows);
            Pool.record sp ~jobs:(Pool.jobs pool) { stats with merge_ns });
        Table.make out_schema rows
      end
