(** A closure-compiling executor: expressions and operators are compiled
    once into closures instead of being re-interpreted per row.  Produces
    exactly {!Exec}'s multisets (differentially tested); useful for
    prepared statements executed repeatedly.

    Compiled plans carry the same trace instrumentation as the
    interpreter (same span labels and counters), so traces from the two
    backends are directly comparable. *)

open Tkr_relation

val compile_expr : Expr.t -> Tuple.t -> Value.t
val compile_pred : Expr.t -> Tuple.t -> bool

type plan = Tkr_obs.Trace.t -> Database.t -> Table.t
(** A compiled plan, run against a trace collector (pass
    {!Tkr_obs.Trace.disabled} for no instrumentation) and a database. *)

val compile :
  ?pool:Tkr_par.Pool.t ->
  ?use_index:bool ->
  lookup:(string -> Schema.t) ->
  Algebra.t ->
  plan
(** [lookup] must give the schema of every base relation referenced;
    the compiled plan may be run against any database with compatible
    schemas.  [?pool] is captured by the compiled closures: the temporal
    operators (coalesce/split/split_agg) then run their sweeps on the
    pool, with byte-identical output to the serial plan.  [?use_index]
    (default false) makes index-answerable selections and no-equi-key
    joins over stored period tables probe {!Tkr_idx} interval indexes,
    exactly as {!Exec.eval} does — byte-identical rows either way. *)

val eval :
  ?obs:Tkr_obs.Trace.t ->
  ?use_index:bool ->
  ?pool:Tkr_par.Pool.t ->
  Database.t ->
  Algebra.t ->
  Table.t
