(** The plan interpreter: evaluates the (possibly rewritten) algebra over
    physical multiset tables.

    Join strategy: conjunctive predicates are scanned for equi-join keys
    ([Expr.equi_keys]); when any are found a hash join is used with the
    remaining conjuncts (e.g. the interval-overlap condition added by the
    rewriter) as a residual filter, otherwise a nested-loop join.

    Every operator can report into a {!Tkr_obs.Trace} span (rows in/out,
    chosen join strategy, residual-filter hit rate); with the default
    disabled collector the instrumentation reduces to a branch per
    operator, not per row. *)

open Tkr_relation
module Trace = Tkr_obs.Trace

let select pred (t : Table.t) : Table.t =
  Table.of_array (Table.schema t)
    (Array.of_seq
       (Seq.filter (fun row -> Expr.holds row pred)
          (Array.to_seq (Table.rows t))))

let project (projs : Algebra.proj list) (t : Table.t) : Table.t =
  let schema = Table.schema t in
  let out_schema =
    Schema.make
      (List.map
         (fun (p : Algebra.proj) ->
           Schema.attr p.name (Expr.infer_ty schema p.expr))
         projs)
  in
  let exprs = Array.of_list (List.map (fun (p : Algebra.proj) -> p.expr) projs) in
  Table.of_array out_schema
    (Array.map
       (fun row -> Tuple.of_array (Array.map (Expr.eval row) exprs))
       (Table.rows t))

let union (a : Table.t) (b : Table.t) : Table.t =
  if not (Schema.union_compatible (Table.schema a) (Table.schema b)) then
    invalid_arg "engine: UNION ALL over incompatible schemas";
  Table.of_array (Table.schema a) (Array.append (Table.rows a) (Table.rows b))

(** EXCEPT ALL via counting: each right row cancels one matching left row. *)
let except_all (a : Table.t) (b : Table.t) : Table.t =
  if not (Schema.union_compatible (Table.schema a) (Table.schema b)) then
    invalid_arg "engine: EXCEPT ALL over incompatible schemas";
  let counts : (Tuple.t, int ref) Hashtbl.t =
    Hashtbl.create (max 16 (Table.cardinality b))
  in
  Array.iter
    (fun row ->
      match Hashtbl.find_opt counts row with
      | Some c -> incr c
      | None -> Hashtbl.add counts row (ref 1))
    (Table.rows b);
  let buf = ref [] in
  Array.iter
    (fun row ->
      match Hashtbl.find_opt counts row with
      | Some c when !c > 0 -> decr c
      | _ -> buf := row :: !buf)
    (Table.rows a);
  Table.make (Table.schema a) (List.rev !buf)

let nested_loop_join pred (l : Table.t) (r : Table.t) : Table.t =
  let out_schema = Schema.concat (Table.schema l) (Table.schema r) in
  let buf = ref [] in
  Array.iter
    (fun lrow ->
      Array.iter
        (fun rrow ->
          let row = Tuple.append lrow rrow in
          if Expr.holds row pred then buf := row :: !buf)
        (Table.rows r))
    (Table.rows l);
  Table.make out_schema (List.rev !buf)

let hash_join ?sp keys residual (l : Table.t) (r : Table.t) : Table.t =
  let out_schema = Schema.concat (Table.schema l) (Table.schema r) in
  let lkeys = List.map fst keys and rkeys = List.map snd keys in
  let index : (Tuple.t, Tuple.t list ref) Hashtbl.t =
    Hashtbl.create (max 16 (Table.cardinality r))
  in
  Array.iter
    (fun rrow ->
      let key = Tuple.project rkeys rrow in
      match Hashtbl.find_opt index key with
      | Some cell -> cell := rrow :: !cell
      | None -> Hashtbl.add index key (ref [ rrow ]))
    (Table.rows r);
  let candidates = ref 0 and passed = ref 0 in
  let buf = ref [] in
  Array.iter
    (fun lrow ->
      let key = Tuple.project lkeys lrow in
      (* NULL keys never join (SQL equality semantics) *)
      if not (Array.exists Value.is_null key) then
        match Hashtbl.find_opt index key with
        | Some matches ->
            List.iter
              (fun rrow ->
                incr candidates;
                let row = Tuple.append lrow rrow in
                let ok =
                  match residual with
                  | None -> true
                  | Some p -> Expr.holds row p
                in
                if ok then (
                  incr passed;
                  buf := row :: !buf))
              (List.rev !matches)
        | None -> ())
    (Table.rows l);
  Trace.set_int sp "candidates" !candidates;
  Trace.set_bool sp "residual" (residual <> None);
  Trace.set_int sp "residual_passed" !passed;
  Table.make out_schema (List.rev !buf)

let join ?sp pred (l : Table.t) (r : Table.t) : Table.t =
  match Expr.equi_keys ~left_arity:(Schema.arity (Table.schema l)) pred with
  | [], _ ->
      Trace.set_str sp "strategy" "nested_loop";
      Trace.set_int sp "pairs" (Table.cardinality l * Table.cardinality r);
      nested_loop_join pred l r
  | keys, residual ->
      Trace.set_str sp "strategy" "hash";
      Trace.set_int sp "equi_keys" (List.length keys);
      hash_join ?sp keys residual l r

let aggregate (group : Algebra.proj list) (aggs : Algebra.agg_spec list)
    (t : Table.t) : Table.t =
  let child_schema = Table.schema t in
  let out_schema = Neval.agg_out_schema child_schema group aggs in
  let gexprs = Array.of_list (List.map (fun (p : Algebra.proj) -> p.expr) group) in
  let agg_arr = Array.of_list aggs in
  let table : (Tuple.t, Agg.acc array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let key = Tuple.of_array (Array.map (Expr.eval row) gexprs) in
      let accs =
        match Hashtbl.find_opt table key with
        | Some a -> a
        | None ->
            let a = Array.make (Array.length agg_arr) Agg.empty in
            Hashtbl.add table key a;
            order := key :: !order;
            a
      in
      Array.iteri
        (fun i (spec : Algebra.agg_spec) ->
          let v =
            match Agg.input_expr spec.func with
            | None -> Value.Int 1
            | Some e -> Expr.eval row e
          in
          accs.(i) <- Agg.step accs.(i) v)
        agg_arr)
    (Table.rows t);
  if group = [] && Hashtbl.length table = 0 then (
    Hashtbl.add table (Tuple.make []) (Array.make (Array.length agg_arr) Agg.empty);
    order := [ Tuple.make [] ]);
  let buf = ref [] in
  List.iter
    (fun key ->
      let accs = Hashtbl.find table key in
      let finals =
        List.mapi (fun i (spec : Algebra.agg_spec) -> Agg.final spec.func accs.(i)) aggs
      in
      buf := Tuple.append key (Tuple.make finals) :: !buf)
    (List.rev !order);
  Table.make out_schema (List.rev !buf)

let distinct (t : Table.t) : Table.t =
  let seen : (Tuple.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let buf = ref [] in
  Array.iter
    (fun row ->
      if not (Hashtbl.mem seen row) then (
        Hashtbl.add seen row ();
        buf := row :: !buf))
    (Table.rows t);
  Table.make (Table.schema t) (List.rev !buf)

(** Display name of the operator at the root of a plan (trace span
    labels; shared with the compiled backend so traces line up). *)
let op_label (q : Algebra.t) : string =
  match q with
  | Rel n -> "scan(" ^ n ^ ")"
  | ConstRel _ -> "const"
  | Select _ -> "select"
  | Project _ -> "project"
  | Join _ -> "join"
  | Union _ -> "union"
  | Diff _ -> "except_all"
  | Agg _ -> "aggregate"
  | Distinct _ -> "distinct"
  | Coalesce _ -> "coalesce"
  | Split _ -> "split"
  | Split_agg _ -> "split_agg"

let rows_in sp tables =
  match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "rows_in"
        (List.fold_left (fun acc t -> acc + Table.cardinality t) 0 tables)

let rec eval ?(obs = Trace.disabled) ?pool (db : Database.t) (q : Algebra.t) :
    Table.t =
  Trace.with_span obs (op_label q) @@ fun sp ->
  let result =
    match q with
    | Rel n ->
        let t = Database.find db n in
        rows_in sp [ t ];
        t
    | ConstRel (schema, tuples) ->
        let t = Table.make schema tuples in
        rows_in sp [ t ];
        t
    | Select (p, q) ->
        let t = eval ~obs ?pool db q in
        rows_in sp [ t ];
        select p t
    | Project (projs, q) ->
        let t = eval ~obs ?pool db q in
        rows_in sp [ t ];
        project projs t
    | Join (p, l, r) ->
        let lt = eval ~obs ?pool db l in
        let rt = eval ~obs ?pool db r in
        rows_in sp [ lt; rt ];
        join ?sp p lt rt
    | Union (l, r) ->
        let lt = eval ~obs ?pool db l in
        let rt = eval ~obs ?pool db r in
        rows_in sp [ lt; rt ];
        union lt rt
    | Diff (l, r) ->
        let lt = eval ~obs ?pool db l in
        let rt = eval ~obs ?pool db r in
        rows_in sp [ lt; rt ];
        except_all lt rt
    | Agg (group, aggs, q) ->
        let t = eval ~obs ?pool db q in
        rows_in sp [ t ];
        aggregate group aggs t
    | Distinct q ->
        let t = eval ~obs ?pool db q in
        rows_in sp [ t ];
        distinct t
    | Coalesce q ->
        let t = eval ~obs ?pool db q in
        rows_in sp [ t ];
        Ops.coalesce ?sp ?pool t
    | Split (g, l, r) ->
        (* avoid evaluating a shared subquery twice *)
        if l == r then (
          let t = eval ~obs ?pool db l in
          rows_in sp [ t ];
          Ops.split ?sp ?pool g t t)
        else
          let lt = eval ~obs ?pool db l in
          let rt = eval ~obs ?pool db r in
          rows_in sp [ lt; rt ];
          Ops.split ?sp ?pool g lt rt
    | Split_agg sa ->
        let t = eval ~obs ?pool db sa.sa_child in
        rows_in sp [ t ];
        Ops.split_agg ?sp ?pool ~group:sa.sa_group ~aggs:sa.sa_aggs ~gap:sa.sa_gap t
  in
  (match sp with
  | None -> ()
  | Some _ -> Trace.set_int sp "rows_out" (Table.cardinality result));
  result
