(** The plan interpreter: evaluates the (possibly rewritten) algebra over
    physical multiset tables.

    Join strategy: conjunctive predicates are scanned for equi-join keys
    ([Expr.equi_keys]); when any are found a hash join is used with the
    remaining conjuncts (e.g. the interval-overlap condition added by the
    rewriter) as a residual filter, otherwise a nested-loop join.

    Every operator can report into a {!Tkr_obs.Trace} span (rows in/out,
    chosen join strategy, residual-filter hit rate); with the default
    disabled collector the instrumentation reduces to a branch per
    operator, not per row. *)

open Tkr_relation
module Trace = Tkr_obs.Trace

let select pred (t : Table.t) : Table.t =
  Table.of_array (Table.schema t)
    (Array.of_seq
       (Seq.filter (fun row -> Expr.holds row pred)
          (Array.to_seq (Table.rows t))))

let project (projs : Algebra.proj list) (t : Table.t) : Table.t =
  let schema = Table.schema t in
  let out_schema =
    Schema.make
      (List.map
         (fun (p : Algebra.proj) ->
           Schema.attr p.name (Expr.infer_ty schema p.expr))
         projs)
  in
  let exprs = Array.of_list (List.map (fun (p : Algebra.proj) -> p.expr) projs) in
  Table.of_array out_schema
    (Array.map
       (fun row -> Tuple.of_array (Array.map (Expr.eval row) exprs))
       (Table.rows t))

let union (a : Table.t) (b : Table.t) : Table.t =
  if not (Schema.union_compatible (Table.schema a) (Table.schema b)) then
    invalid_arg "engine: UNION ALL over incompatible schemas";
  Table.of_array (Table.schema a) (Array.append (Table.rows a) (Table.rows b))

(** EXCEPT ALL via counting: each right row cancels one matching left row. *)
let except_all (a : Table.t) (b : Table.t) : Table.t =
  if not (Schema.union_compatible (Table.schema a) (Table.schema b)) then
    invalid_arg "engine: EXCEPT ALL over incompatible schemas";
  let counts : (Tuple.t, int ref) Hashtbl.t =
    Hashtbl.create (max 16 (Table.cardinality b))
  in
  Array.iter
    (fun row ->
      match Hashtbl.find_opt counts row with
      | Some c -> incr c
      | None -> Hashtbl.add counts row (ref 1))
    (Table.rows b);
  let buf = ref [] in
  Array.iter
    (fun row ->
      match Hashtbl.find_opt counts row with
      | Some c when !c > 0 -> decr c
      | _ -> buf := row :: !buf)
    (Table.rows a);
  Table.make (Table.schema a) (List.rev !buf)

let nested_loop_join pred (l : Table.t) (r : Table.t) : Table.t =
  let out_schema = Schema.concat (Table.schema l) (Table.schema r) in
  let buf = ref [] in
  Array.iter
    (fun lrow ->
      Array.iter
        (fun rrow ->
          let row = Tuple.append lrow rrow in
          if Expr.holds row pred then buf := row :: !buf)
        (Table.rows r))
    (Table.rows l);
  Table.make out_schema (List.rev !buf)

let hash_join ?sp keys residual (l : Table.t) (r : Table.t) : Table.t =
  let out_schema = Schema.concat (Table.schema l) (Table.schema r) in
  let lkeys = List.map fst keys and rkeys = List.map snd keys in
  let index : (Tuple.t, Tuple.t list ref) Hashtbl.t =
    Hashtbl.create (max 16 (Table.cardinality r))
  in
  Array.iter
    (fun rrow ->
      let key = Tuple.project rkeys rrow in
      match Hashtbl.find_opt index key with
      | Some cell -> cell := rrow :: !cell
      | None -> Hashtbl.add index key (ref [ rrow ]))
    (Table.rows r);
  let candidates = ref 0 and passed = ref 0 in
  let buf = ref [] in
  Array.iter
    (fun lrow ->
      let key = Tuple.project lkeys lrow in
      (* NULL keys never join (SQL equality semantics) *)
      if not (Array.exists Value.is_null key) then
        match Hashtbl.find_opt index key with
        | Some matches ->
            List.iter
              (fun rrow ->
                incr candidates;
                let row = Tuple.append lrow rrow in
                let ok =
                  match residual with
                  | None -> true
                  | Some p -> Expr.holds row p
                in
                if ok then (
                  incr passed;
                  buf := row :: !buf))
              (List.rev !matches)
        | None -> ())
    (Table.rows l);
  Trace.set_int sp "candidates" !candidates;
  Trace.set_bool sp "residual" (residual <> None);
  Trace.set_int sp "residual_passed" !passed;
  Table.make out_schema (List.rev !buf)

(** Index-assisted selection over a stored period table: when the
    conjuncts bound the period columns on both sides ({!Tkr_idx.Probe}),
    probe the interval index for the candidate rows and re-apply the
    {e full} predicate to them.  The probe bounds are necessary conditions
    of the predicate and candidates come back in physical row order, so
    the result is byte-identical to the scan.  [None] when the predicate
    is not index-answerable (caller falls back to the scan). *)
let index_select ?sp (db : Database.t) pred (n : string) : Table.t option =
  let t = Database.find db n in
  let arity = Schema.arity (Table.schema t) in
  match Tkr_idx.Probe.bounds ~arity pred with
  | None -> None
  | Some { Tkr_idx.Probe.b_hi; e_lo } -> (
      match Idx_cache.get db n with
      | None -> None
      | Some idx ->
          let cand = Tkr_idx.Interval.probe idx ~b_hi ~e_lo in
          Tkr_idx.Stats.record_probes ~probes:1
            ~candidates:(Array.length cand);
          Trace.set_str sp "access" "index";
          Trace.set_int sp "candidates" (Array.length cand);
          let rows = Table.rows t in
          let buf = ref [] in
          Array.iter
            (fun i ->
              let row = rows.(i) in
              if Expr.holds row pred then buf := row :: !buf)
            cand;
          Some (Table.make (Table.schema t) (List.rev !buf)))

(** Index nested-loop join: for [Join (p, l, Rel r)] with no equi-keys
    (the nested-loop regime) whose conjuncts sandwich the right table's
    period between left columns, probe the right side's index once per
    left row instead of scanning it.  Candidates are in right physical
    order and the full predicate is re-applied, so emission matches
    {!nested_loop_join} row for row.  A left probe key that is not an
    integer (e.g. NULL) falls back to scanning the right side for that
    row, which the full predicate then filters identically. *)
let index_join ?sp (db : Database.t) pred (lt : Table.t) (rn : string) :
    Table.t option =
  let rt = Database.find db rn in
  let la = Schema.arity (Table.schema lt) in
  let ra = Schema.arity (Table.schema rt) in
  match Tkr_idx.Probe.join_bounds ~left_arity:la ~right_arity:ra pred with
  | None -> None
  | Some jb -> (
      match Idx_cache.get db rn with
      | None -> None
      | Some idx ->
          let out_schema = Schema.concat (Table.schema lt) (Table.schema rt) in
          let rrows = Table.rows rt in
          let buf = ref [] in
          let probes = ref 0 and cands = ref 0 in
          Array.iter
            (fun lrow ->
              let emit rrow =
                let row = Tuple.append lrow rrow in
                if Expr.holds row pred then buf := row :: !buf
              in
              match
                (Tuple.get lrow jb.Tkr_idx.Probe.jb_col,
                 Tuple.get lrow jb.Tkr_idx.Probe.je_col)
              with
              | Value.Int bv, Value.Int ev ->
                  incr probes;
                  let cand =
                    Tkr_idx.Interval.probe idx
                      ~b_hi:{ Tkr_idx.Interval.v = bv; incl = jb.jb_incl }
                      ~e_lo:{ Tkr_idx.Interval.v = ev; incl = jb.je_incl }
                  in
                  cands := !cands + Array.length cand;
                  Array.iter (fun i -> emit rrows.(i)) cand
              | _ -> Array.iter emit rrows)
            (Table.rows lt);
          Tkr_idx.Stats.record_probes ~probes:!probes ~candidates:!cands;
          Trace.set_str sp "strategy" "index_nested_loop";
          Trace.set_str sp "access" "index";
          Trace.set_int sp "probes" !probes;
          Trace.set_int sp "candidates" !cands;
          Some (Table.make out_schema (List.rev !buf)))

let join ?sp pred (l : Table.t) (r : Table.t) : Table.t =
  match Expr.equi_keys ~left_arity:(Schema.arity (Table.schema l)) pred with
  | [], _ ->
      Trace.set_str sp "strategy" "nested_loop";
      Trace.set_int sp "pairs" (Table.cardinality l * Table.cardinality r);
      nested_loop_join pred l r
  | keys, residual ->
      Trace.set_str sp "strategy" "hash";
      Trace.set_int sp "equi_keys" (List.length keys);
      hash_join ?sp keys residual l r

let aggregate (group : Algebra.proj list) (aggs : Algebra.agg_spec list)
    (t : Table.t) : Table.t =
  let child_schema = Table.schema t in
  let out_schema = Neval.agg_out_schema child_schema group aggs in
  let gexprs = Array.of_list (List.map (fun (p : Algebra.proj) -> p.expr) group) in
  let agg_arr = Array.of_list aggs in
  let table : (Tuple.t, Agg.acc array) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let key = Tuple.of_array (Array.map (Expr.eval row) gexprs) in
      let accs =
        match Hashtbl.find_opt table key with
        | Some a -> a
        | None ->
            let a = Array.make (Array.length agg_arr) Agg.empty in
            Hashtbl.add table key a;
            order := key :: !order;
            a
      in
      Array.iteri
        (fun i (spec : Algebra.agg_spec) ->
          let v =
            match Agg.input_expr spec.func with
            | None -> Value.Int 1
            | Some e -> Expr.eval row e
          in
          accs.(i) <- Agg.step accs.(i) v)
        agg_arr)
    (Table.rows t);
  if group = [] && Hashtbl.length table = 0 then (
    Hashtbl.add table (Tuple.make []) (Array.make (Array.length agg_arr) Agg.empty);
    order := [ Tuple.make [] ]);
  let buf = ref [] in
  List.iter
    (fun key ->
      let accs = Hashtbl.find table key in
      let finals =
        List.mapi (fun i (spec : Algebra.agg_spec) -> Agg.final spec.func accs.(i)) aggs
      in
      buf := Tuple.append key (Tuple.make finals) :: !buf)
    (List.rev !order);
  Table.make out_schema (List.rev !buf)

let distinct (t : Table.t) : Table.t =
  let seen : (Tuple.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let buf = ref [] in
  Array.iter
    (fun row ->
      if not (Hashtbl.mem seen row) then (
        Hashtbl.add seen row ();
        buf := row :: !buf))
    (Table.rows t);
  Table.make (Table.schema t) (List.rev !buf)

(** Display name of the operator at the root of a plan (trace span
    labels; shared with the compiled backend so traces line up). *)
let op_label (q : Algebra.t) : string =
  match q with
  | Rel n -> "scan(" ^ n ^ ")"
  | ConstRel _ -> "const"
  | Select _ -> "select"
  | Project _ -> "project"
  | Join _ -> "join"
  | Union _ -> "union"
  | Diff _ -> "except_all"
  | Agg _ -> "aggregate"
  | Distinct _ -> "distinct"
  | Coalesce _ -> "coalesce"
  | Split _ -> "split"
  | Split_agg _ -> "split_agg"

let rows_in sp tables =
  match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "rows_in"
        (List.fold_left (fun acc t -> acc + Table.cardinality t) 0 tables)

let rec eval ?(obs = Trace.disabled) ?(use_index = false) ?pool
    (db : Database.t) (q : Algebra.t) : Table.t =
  Trace.with_span obs (op_label q) @@ fun sp ->
  let result =
    match q with
    | Rel n ->
        let t = Database.find db n in
        rows_in sp [ t ];
        t
    | ConstRel (schema, tuples) ->
        let t = Table.make schema tuples in
        rows_in sp [ t ];
        t
    | Select (p, q) -> (
        let scan () =
          let t = eval ~obs ~use_index ?pool db q in
          rows_in sp [ t ];
          select p t
        in
        match q with
        | Rel n when Database.is_period db n -> (
            match if use_index then index_select ?sp db p n else None with
            | Some result ->
                rows_in sp [ Database.find db n ];
                result
            | None ->
                Trace.set_str sp "access" "scan";
                scan ())
        | _ -> scan ())
    | Project (projs, q) ->
        let t = eval ~obs ~use_index ?pool db q in
        rows_in sp [ t ];
        project projs t
    | Join (p, l, r) -> (
        let lt = eval ~obs ~use_index ?pool db l in
        let indexed =
          match r with
          | Rel rn when use_index && Database.is_period db rn -> (
              match
                Expr.equi_keys ~left_arity:(Schema.arity (Table.schema lt)) p
              with
              | [], _ -> (
                  match index_join ?sp db p lt rn with
                  | Some res -> Some (res, Database.find db rn)
                  | None -> None)
              | _ -> None)
          | _ -> None
        in
        match indexed with
        | Some (res, rt) ->
            rows_in sp [ lt; rt ];
            res
        | None ->
            let rt = eval ~obs ~use_index ?pool db r in
            rows_in sp [ lt; rt ];
            join ?sp p lt rt)
    | Union (l, r) ->
        let lt = eval ~obs ~use_index ?pool db l in
        let rt = eval ~obs ~use_index ?pool db r in
        rows_in sp [ lt; rt ];
        union lt rt
    | Diff (l, r) ->
        let lt = eval ~obs ~use_index ?pool db l in
        let rt = eval ~obs ~use_index ?pool db r in
        rows_in sp [ lt; rt ];
        except_all lt rt
    | Agg (group, aggs, q) ->
        let t = eval ~obs ~use_index ?pool db q in
        rows_in sp [ t ];
        aggregate group aggs t
    | Distinct q ->
        let t = eval ~obs ~use_index ?pool db q in
        rows_in sp [ t ];
        distinct t
    | Coalesce q ->
        let t = eval ~obs ~use_index ?pool db q in
        rows_in sp [ t ];
        Ops.coalesce ?sp ?pool t
    | Split (g, l, r) ->
        (* avoid evaluating a shared subquery twice *)
        if l == r then (
          let t = eval ~obs ~use_index ?pool db l in
          rows_in sp [ t ];
          Ops.split ?sp ?pool g t t)
        else
          let lt = eval ~obs ~use_index ?pool db l in
          let rt = eval ~obs ~use_index ?pool db r in
          rows_in sp [ lt; rt ];
          Ops.split ?sp ?pool g lt rt
    | Split_agg sa ->
        let t = eval ~obs ~use_index ?pool db sa.sa_child in
        rows_in sp [ t ];
        Ops.split_agg ?sp ?pool ~group:sa.sa_group ~aggs:sa.sa_aggs ~gap:sa.sa_gap t
  in
  (match sp with
  | None -> ()
  | Some _ -> Trace.set_int sp "rows_out" (Table.cardinality result));
  result
