(** The engine catalog: named tables, optionally registered as period
    tables.

    Period tables follow the encoding convention of the rewriter: the two
    period attributes are stored as the {e last two} columns ([Abegin],
    [Aend], integer-typed).  {!add_period_table} reorders columns on
    registration if the caller stores the period elsewhere. *)

open Tkr_relation

type entry = { table : Table.t; is_period : bool }

type t = {
  tables : (string, entry) Hashtbl.t;
  versions : (string, int) Hashtbl.t;
      (** per-table version counters, monotone over the database's
          lifetime (never reset by DROP, so re-creating a table does not
          resurrect stale cache entries); bumped by every load/update —
          the invalidation signal of the snapshot-aware result cache *)
  mutable generation : int;
      (** whole-catalog mutation counter: bumped with every table version
          and on time-bound changes — a plan prepared at generation [g] is
          guaranteed valid while the generation stays [g] (schemas, table
          set and [tmin]/[tmax] are all unchanged) *)
  mutable tmin : int;
  mutable tmax : int;
  uid : int;
      (** process-unique database identity, for caches keyed outside the
          database value itself (e.g. per-table index build bookkeeping) *)
}

let next_uid = Atomic.make 0

let create ?(tmin = 0) ?(tmax = 1) () =
  {
    tables = Hashtbl.create 16;
    versions = Hashtbl.create 16;
    generation = 0;
    tmin;
    tmax;
    uid = Atomic.fetch_and_add next_uid 1;
  }

let uid db = db.uid

let version db name =
  Option.value ~default:0
    (Hashtbl.find_opt db.versions (String.lowercase_ascii name))

let generation db = db.generation

let bump_version db name =
  let key = String.lowercase_ascii name in
  db.generation <- db.generation + 1;
  Hashtbl.replace db.versions key (version db key + 1)

let time_bounds db = (db.tmin, db.tmax)
let set_time_bounds db ~tmin ~tmax =
  db.generation <- db.generation + 1;
  db.tmin <- tmin;
  db.tmax <- tmax

(** Register a plain (non-temporal) table. *)
let add_table db name table =
  bump_version db name;
  Hashtbl.replace db.tables (String.lowercase_ascii name)
    { table; is_period = false }

(** Register a period table.  [begin_col]/[end_col] give the current
    positions of the period attributes; the stored table moves them to the
    last two columns.  The database's time bounds are widened to cover the
    data. *)
let add_period_table db name ?begin_col ?end_col table =
  let schema = Table.schema table in
  let n = Schema.arity schema in
  let bc = Option.value begin_col ~default:(n - 2) in
  let ec = Option.value end_col ~default:(n - 1) in
  let data_cols =
    List.filter (fun i -> i <> bc && i <> ec) (List.init n Fun.id)
  in
  let order = data_cols @ [ bc; ec ] in
  let reordered =
    if order = List.init n Fun.id then table
    else
      Table.of_array
        (Schema.project schema order)
        (Array.map (Tuple.project order) (Table.rows table))
  in
  Array.iter
    (fun row ->
      let n = Tuple.arity row in
      match (Tuple.get row (n - 2), Tuple.get row (n - 1)) with
      | Value.Int b, Value.Int e ->
          if b < db.tmin then db.tmin <- b;
          if e > db.tmax then db.tmax <- e
      | _ -> invalid_arg "Database.add_period_table: non-integer period")
    (Table.rows reordered);
  bump_version db name;
  Hashtbl.replace db.tables (String.lowercase_ascii name)
    { table = reordered; is_period = true }

let find_entry db name =
  match Hashtbl.find_opt db.tables (String.lowercase_ascii name) with
  | Some e -> e
  | None -> raise (Schema.Unknown name)

let find db name = (find_entry db name).table
let is_period db name = (find_entry db name).is_period
let mem db name = Hashtbl.mem db.tables (String.lowercase_ascii name)
let schema_of db name = Table.schema (find db name)

(** Schema without the trailing period columns (what a snapshot query over
    this table sees). *)
let data_schema_of db name =
  let e = find_entry db name in
  let s = Table.schema e.table in
  if e.is_period then
    Schema.project s (List.init (Schema.arity s - 2) Fun.id)
  else s

(** Append rows to an existing table (INSERT).  Period tables get their
    time bounds widened; rows must already follow the stored column order. *)
let append_rows db name (rows : Tuple.t list) =
  let e = find_entry db name in
  let table =
    Table.of_array (Table.schema e.table)
      (Array.append (Table.rows e.table) (Array.of_list rows))
  in
  if e.is_period then
    List.iter
      (fun row ->
        let n = Tuple.arity row in
        match (Tuple.get row (n - 2), Tuple.get row (n - 1)) with
        | Value.Int b, Value.Int e ->
            if b < db.tmin then db.tmin <- b;
            if e > db.tmax then db.tmax <- e
        | _ -> invalid_arg "Database.append_rows: non-integer period")
      rows;
  bump_version db name;
  Hashtbl.replace db.tables (String.lowercase_ascii name) { e with table }

(** Replace a table's rows wholesale (UPDATE/DELETE), keeping its schema
    and period registration; period tables widen the time bounds. *)
let set_rows db name (rows : Tuple.t array) =
  let e = find_entry db name in
  if e.is_period then
    Array.iter
      (fun row ->
        let n = Tuple.arity row in
        match (Tuple.get row (n - 2), Tuple.get row (n - 1)) with
        | Value.Int b, Value.Int e ->
            if b < db.tmin then db.tmin <- b;
            if e > db.tmax then db.tmax <- e
        | _ -> invalid_arg "Database.set_rows: non-integer period")
      rows;
  bump_version db name;
  Hashtbl.replace db.tables (String.lowercase_ascii name)
    { e with table = Table.of_array (Table.schema e.table) rows }

let remove_table db name =
  bump_version db name;
  Hashtbl.remove db.tables (String.lowercase_ascii name)

let names db =
  Hashtbl.fold (fun n _ acc -> n :: acc) db.tables [] |> List.sort String.compare
