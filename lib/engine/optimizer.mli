(** Cost-based logical optimization: greedy join-order selection over
    flattened inner-join trees, driven by a base-table cardinality oracle.

    Runs on the logical query before the snapshot rewriting — one of the
    advantages the paper claims for the middleware architecture over
    alignment-based kernels, which constrain join reordering
    (Section 10.4).  Semantics-preserving: the output multiset is
    identical for every database instance. *)

open Tkr_relation

type stats = { card : string -> int }

val estimate : stats -> Algebra.t -> float
(** Crude, monotone cardinality estimate used for greedy ordering. *)

val optimize :
  ?prune:(Algebra.t -> Algebra.t) ->
  stats:stats ->
  lookup:(string -> Schema.t) ->
  Algebra.t ->
  Algebra.t
(** Reorder join trees; restores the original column order and names with
    a final projection when a reorder happens.  [prune] is applied to the
    result — the middleware supplies the analysis-driven pruner from
    [Tkr_check.Absint] (the engine does not depend on the checker); it
    must preserve the produced rows and their order exactly. *)

val merge_selects : Algebra.t -> Algebra.t
(** Collapse stacked selections into one conjunctive selection
    ([Select (p1, Select (p2, q))] → [Select (And (p2, p1), q)]), so a
    user filter above the AS OF aliveness pushdown fuses into a single
    index-answerable predicate.  Filtered rows and their order are
    identical.  Applied to physical plans unconditionally — the plan
    shape never depends on the index flag. *)

val access :
  use_index:bool ->
  is_period:(string -> bool) ->
  lookup:(string -> Schema.t) ->
  Algebra.t ->
  (string * string) list
(** The [(table, "index" | "scan")] access-path decisions {!Exec.eval}
    will make for stored period tables read through selections or
    no-equi-key joins, in plan order — rendered by EXPLAIN so the chosen
    path is visible without running the query. *)
