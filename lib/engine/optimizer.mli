(** Cost-based logical optimization: greedy join-order selection over
    flattened inner-join trees, driven by a base-table cardinality oracle.

    Runs on the logical query before the snapshot rewriting — one of the
    advantages the paper claims for the middleware architecture over
    alignment-based kernels, which constrain join reordering
    (Section 10.4).  Semantics-preserving: the output multiset is
    identical for every database instance. *)

open Tkr_relation

type stats = { card : string -> int }

val estimate : stats -> Algebra.t -> float
(** Crude, monotone cardinality estimate used for greedy ordering. *)

val optimize :
  ?prune:(Algebra.t -> Algebra.t) ->
  stats:stats ->
  lookup:(string -> Schema.t) ->
  Algebra.t ->
  Algebra.t
(** Reorder join trees; restores the original column order and names with
    a final projection when a reorder happens.  [prune] is applied to the
    result — the middleware supplies the analysis-driven pruner from
    [Tkr_check.Absint] (the engine does not depend on the checker); it
    must preserve the produced rows and their order exactly. *)
