(** Physical temporal operators over the period encoding.

    All three operators rely on the encoding convention that the last two
    columns of their input are the period attributes [Abegin]/[Aend]
    (integers).

    - {!coalesce} is the SQL-window-function style multiset coalescing of
      Section 9: per distinct data prefix, a single sort of the interval
      endpoints followed by a sweep that counts open intervals and emits
      maximal constant segments — O(n log n).
    - {!split} is the split operator N_G of Def. 8.3.
    - {!split_agg} is the fused, pre-aggregated split+aggregate of the
      paper's optimized rewriting (Section 9).

    Every operator takes an optional {!Tkr_par.Pool.t}.  Their sweeps are
    independent per group (coalesce, split_agg) or per row (split), so
    with a pool the groups/rows are mapped over the pool's domains and the
    results merged back in the serial emission order — the output rows are
    byte-identical to the serial path for any number of domains. *)

open Tkr_relation
module Trace = Tkr_obs.Trace
module Pool = Tkr_par.Pool

let period_of_row row =
  let n = Tuple.arity row in
  match (Tuple.get row (n - 2), Tuple.get row (n - 1)) with
  | Value.Int b, Value.Int e -> (b, e)
  | _ -> invalid_arg "engine: malformed period encoding (non-integer period)"

let data_of_row row =
  let n = Tuple.arity row in
  Tuple.project (List.init (n - 2) Fun.id) row

(* Map [f] over [keys] preserving order, through the pool when one is
   given and there is enough work to split; records the batch on the
   span.  The shared read-only state ([f]'s captured hash tables) is
   built before the call, so worker domains only read. *)
let map_groups ?sp ?pool (f : 'a -> 'b) (keys : 'a array) : 'b array =
  match pool with
  | Some pool when Array.length keys > 1 && Pool.jobs pool > 1 ->
      let results, stats = Pool.map_array pool f keys in
      Pool.record sp ~jobs:(Pool.jobs pool) stats;
      results
  | _ -> Array.map f keys

(** Multiset coalescing: for every distinct data prefix, compute the
    maximal intervals of constant multiplicity (counting open intervals)
    and emit that many duplicate rows per interval. *)
let coalesce ?sp ?pool (t : Table.t) : Table.t =
  let groups : (Tuple.t, (int * int) list ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  Array.iter
    (fun row ->
      let data = data_of_row row in
      let p = period_of_row row in
      match Hashtbl.find_opt groups data with
      | Some cell -> cell := p :: !cell
      | None ->
          Hashtbl.add groups data (ref [ p ]);
          order := data :: !order)
    (Table.rows t);
  (* one group's sweep: its rows in forward (time) order + segment count *)
  let group_rows data =
    let intervals = !(Hashtbl.find groups data) in
    let segments = ref 0 in
    let buf = ref [] in
    let emit b e count =
      if count > 0 then (
        incr segments;
        let row = Tuple.append data (Tuple.make [ Value.Int b; Value.Int e ]) in
        for _ = 1 to count do
          buf := row :: !buf
        done)
    in
    (* events: +1 at begins, -1 at ends; sweep in time order *)
    let events =
      List.concat_map (fun (b, e) -> [ (b, 1); (e, -1) ]) intervals
      |> List.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2)
    in
    (* emit only maximal segments: a segment closes when the count of
       open intervals actually changes, not at every endpoint *)
    let rec sweep seg_start count = function
      | [] -> ()
      | (t, d) :: rest ->
          (* fold all events at the same time point *)
          let rec absorb d rest =
            match rest with
            | (t', d') :: more when t' = t -> absorb (d + d') more
            | _ -> (d, rest)
          in
          let delta, rest = absorb d rest in
          if delta = 0 then sweep seg_start count rest
          else (
            if t > seg_start then emit seg_start t count;
            sweep t (count + delta) rest)
    in
    (match events with [] -> () | (t0, _) :: _ -> sweep t0 0 events);
    (List.rev !buf, !segments)
  in
  let results =
    map_groups ?sp ?pool group_rows (Array.of_list (List.rev !order))
  in
  let segments = Array.fold_left (fun acc (_, s) -> acc + s) 0 results in
  Trace.set_int sp "groups" (Hashtbl.length groups);
  Trace.set_int sp "endpoints" (2 * Table.cardinality t);
  Trace.set_int sp "segments" segments;
  Table.make (Table.schema t)
    (List.concat_map fst (Array.to_list results))

module IS = Set.Make (Int)

(* Endpoint sets per group key, from the rows of one or two tables. *)
let endpoint_sets group_cols tables =
  let eps : (Tuple.t, IS.t ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun t ->
      Array.iter
        (fun row ->
          let key = Tuple.project group_cols row in
          let b, e = period_of_row row in
          match Hashtbl.find_opt eps key with
          | Some cell -> cell := IS.add b (IS.add e !cell)
          | None -> Hashtbl.add eps key (ref (IS.add b (IS.singleton e))))
        (Table.rows t))
    tables;
  eps

(* Cut [b, e) at the endpoints of [eps] strictly inside it. *)
let cut_interval eps b e =
  let inner = IS.filter (fun p -> b < p && p < e) eps in
  let points = (b :: IS.elements inner) @ [ e ] in
  let rec pairs = function
    | x :: (y :: _ as rest) -> (x, y) :: pairs rest
    | _ -> []
  in
  pairs points

(* Endpoint sets per key, where each table contributes under its own key
   columns (used by the alignment baseline, whose two inputs have different
   schemas). *)
let endpoint_sets_keyed (sources : (int list * Table.t) list) =
  let eps : (Tuple.t, IS.t ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (key_cols, t) ->
      Array.iter
        (fun row ->
          let key = Tuple.project key_cols row in
          let b, e = period_of_row row in
          match Hashtbl.find_opt eps key with
          | Some cell -> cell := IS.add b (IS.add e !cell)
          | None -> Hashtbl.add eps key (ref (IS.add b (IS.singleton e))))
        (Table.rows t))
    sources;
  eps

(* Fragments of one row, split at its key's endpoints (forward order). *)
let row_fragments eps key_cols row =
  let key = Tuple.project key_cols row in
  let b, e = period_of_row row in
  let points =
    match Hashtbl.find_opt eps key with Some s -> !s | None -> IS.empty
  in
  let data = data_of_row row in
  List.map
    (fun (sb, se) ->
      Tuple.append data (Tuple.make [ Value.Int sb; Value.Int se ]))
    (cut_interval points b e)

(** Split every row of [t] at the endpoints its key maps to in [eps]. *)
let split_with eps key_cols (t : Table.t) : Table.t =
  Table.make (Table.schema t)
    (List.concat_map (row_fragments eps key_cols) (Table.to_list t))

(** N_G(R1, R2) of Def. 8.3: split every R1 row at the endpoints of all
    rows of R1 ∪ R2 that agree with it on the group columns. *)
let split ?sp ?pool group_cols (left : Table.t) (right : Table.t) : Table.t =
  let eps = endpoint_sets group_cols [ left; right ] in
  let per_row =
    map_groups ?sp ?pool (row_fragments eps group_cols) (Table.rows left)
  in
  let fragments =
    Array.fold_left (fun acc l -> acc + List.length l) 0 per_row
  in
  (match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "endpoint_keys" (Hashtbl.length eps);
      Trace.set_int sp "endpoints"
        (Hashtbl.fold (fun _ s acc -> acc + IS.cardinal !s) eps 0);
      Trace.set_int sp "fragments" fragments);
  Table.make (Table.schema left) (List.concat (Array.to_list per_row))

(** Fused pre-aggregated split+aggregate (Section 9).

    The input is first pre-aggregated per (group, interval); the
    pre-aggregates are then swept over the elementary segments of each
    group's endpoint set and combined per segment.  With [gap = Some
    (tmin, tmax)] (aggregation without GROUP BY) every segment of the
    whole time domain produces a row, using the aggregate's value over the
    empty input when nothing covers the segment — the fix for the
    aggregation-gap bug. *)
let split_agg ?sp ?pool ~(group : int list) ~(aggs : Algebra.agg_spec list)
    ~(gap : (int * int) option) (child : Table.t) : Table.t =
  let child_schema = Table.schema child in
  let n_aggs = List.length aggs in
  let agg_arr = Array.of_list aggs in
  (* pre-aggregate per (group values, b, e) *)
  let pre : (Tuple.t * int * int, Agg.acc array) Hashtbl.t = Hashtbl.create 256 in
  let pre_order = ref [] in
  let group_eps : (Tuple.t, IS.t ref) Hashtbl.t = Hashtbl.create 64 in
  let group_order = ref [] in
  Array.iter
    (fun row ->
      let key = Tuple.project group row in
      let b, e = period_of_row row in
      let accs =
        match Hashtbl.find_opt pre (key, b, e) with
        | Some a -> a
        | None ->
            let a = Array.make n_aggs Agg.empty in
            Hashtbl.add pre (key, b, e) a;
            pre_order := (key, b, e) :: !pre_order;
            a
      in
      Array.iteri
        (fun i (spec : Algebra.agg_spec) ->
          let v =
            match Agg.input_expr spec.func with
            | None -> Value.Int 1
            | Some ex -> Expr.eval row ex
          in
          accs.(i) <- Agg.step accs.(i) v)
        agg_arr;
      (match Hashtbl.find_opt group_eps key with
      | Some cell -> cell := IS.add b (IS.add e !cell)
      | None ->
          Hashtbl.add group_eps key (ref (IS.add b (IS.singleton e)));
          group_order := key :: !group_order))
    (Table.rows child);
  (* the empty group must exist for gap-covering aggregation *)
  (match gap with
  | Some (tmin, tmax) ->
      let key = Tuple.make [] in
      (match Hashtbl.find_opt group_eps key with
      | Some cell -> cell := IS.add tmin (IS.add tmax !cell)
      | None ->
          Hashtbl.add group_eps key (ref (IS.add tmin (IS.singleton tmax)));
          group_order := key :: !group_order)
  | None -> ());
  (* collect pre-aggregates per group for the sweep, in first-appearance
     order (not [Hashtbl.iter] order): together with the stable sort below
     this makes the per-segment combine order — and hence float rounding —
     a deterministic function of the input rows, reproducible by other
     engines *)
  let entries : (Tuple.t, (int * int * Agg.acc array) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun ((key, b, e) as k) ->
      let accs = Hashtbl.find pre k in
      match Hashtbl.find_opt entries key with
      | Some cell -> cell := (b, e, accs) :: !cell
      | None -> Hashtbl.add entries key (ref [ (b, e, accs) ]))
    (List.rev !pre_order);
  (* one group's sweep over its elementary segments, rows forward *)
  let group_rows key =
    let eps = !(Hashtbl.find group_eps key) in
    let segs =
      let pts = IS.elements eps in
      let rec pairs = function
        | x :: (y :: _ as rest) -> (x, y) :: pairs rest
        | _ -> []
      in
      pairs pts
    in
    let group_entries =
      match Hashtbl.find_opt entries key with
      | Some c -> List.rev !c
      | None -> []
    in
    (* entries sorted by begin, ties kept in first-appearance order;
       sweep with an active set *)
    let sorted =
      List.stable_sort
        (fun (b1, _, _) (b2, _, _) -> Int.compare b1 b2)
        group_entries
    in
    let remaining = ref sorted in
    let active = ref [] in
    let buf = ref [] in
    List.iter
      (fun (sb, se) ->
        (* activate entries starting at or before sb, drop finished ones *)
        let rec pull () =
          match !remaining with
          | (b, e, accs) :: rest when b <= sb ->
              remaining := rest;
              if e > sb then active := (e, accs) :: !active;
              pull ()
          | _ -> ()
        in
        pull ();
        active := List.filter (fun (e, _) -> e > sb) !active;
        let covering = List.map snd !active in
        if covering = [] && gap = None then ()
        else
          let finals =
            List.mapi
              (fun i (spec : Algebra.agg_spec) ->
                let acc =
                  List.fold_left
                    (fun acc accs -> Agg.combine acc accs.(i))
                    Agg.empty covering
                in
                Agg.final spec.func acc)
              aggs
          in
          buf :=
            Tuple.append key
              (Tuple.make (finals @ [ Value.Int sb; Value.Int se ]))
            :: !buf)
      segs;
    List.rev !buf
  in
  let per_group =
    map_groups ?sp ?pool group_rows (Array.of_list (List.rev !group_order))
  in
  (match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "groups" (Hashtbl.length group_eps);
      Trace.set_int sp "pre_aggregates" (Hashtbl.length pre);
      Trace.set_int sp "endpoints"
        (Hashtbl.fold (fun _ s acc -> acc + IS.cardinal !s) group_eps 0));
  let out_schema =
    let gattrs = List.map (fun i -> Schema.get child_schema i) group in
    let aattrs =
      List.map
        (fun (a : Algebra.agg_spec) ->
          Schema.attr a.agg_name (Agg.output_ty child_schema a.func))
        aggs
    in
    Schema.make
      (gattrs @ aattrs
      @ [ Schema.attr "__b" Value.TInt; Schema.attr "__e" Value.TInt ])
  in
  Table.make out_schema (List.concat (Array.to_list per_group))
