(** A cost-based logical optimizer: join-order selection by greedy
    cardinality estimation, plus selection pushdown through join trees.

    The paper observes (Section 10.4) that the alignment-based native
    approach "aligns both inputs with respect to each other \[which\]
    introduces unnecessary overhead and limits join reordering".  Our
    middleware rewrites snapshot queries into ordinary multiset algebra,
    so standard optimizations apply unchanged; this module provides them.

    The optimizer runs on the {e logical} query (before REWR) and is
    purely semantics-preserving: it never changes the multiset produced,
    which the differential tests in [test/test_optimizer.ml] verify on
    random queries. *)

open Tkr_relation

type stats = { card : string -> int }
(** Cardinality oracle for base relations (missing tables may raise; the
    estimator treats exceptions as a default size). *)

let default_card = 1000.

let rel_card stats n =
  match stats.card n with c -> float_of_int (max 1 c) | exception _ -> default_card

(* Crude but monotone cardinality estimation; only relative order
   matters for greedy join ordering. *)
let rec estimate (stats : stats) (q : Algebra.t) : float =
  match q with
  | Rel n -> rel_card stats n
  | ConstRel (_, ts) -> float_of_int (max 1 (List.length ts))
  | Select (p, q) ->
      let sel =
        match p with
        | Expr.Cmp (Expr.Eq, _, _) -> 0.1
        | Expr.And _ -> 0.05
        | _ -> 0.3
      in
      sel *. estimate stats q
  | Project (_, q) | Distinct q | Coalesce q -> estimate stats q
  | Join (p, l, r) ->
      let el = estimate stats l and er = estimate stats r in
      let keys, _ = Expr.equi_keys ~left_arity:10000 p in
      ignore keys;
      let sel =
        match p with
        | Expr.Const (Value.Bool true) -> 1.0
        | Expr.Cmp (Expr.Eq, _, _) | Expr.And (Expr.Cmp (Expr.Eq, _, _), _) -> 0.01
        | _ -> 0.1
      in
      el *. er *. sel
  | Union (l, r) -> estimate stats l +. estimate stats r
  | Diff (l, _) -> estimate stats l
  | Agg (group, _, q) ->
      if group = [] then 1.0 else Float.min (estimate stats q) 1000.
  | Split (_, l, _) -> 4. *. estimate stats l
  | Split_agg sa -> Float.min (4. *. estimate stats sa.sa_child) 10000.

(* --- join tree flattening --- *)

type item = { alg : Algebra.t; arity : int; offset : int }

let conjuncts_of = Expr.conjuncts

let conj = function
  | [] -> Expr.Const (Value.Bool true)
  | first :: rest -> List.fold_left (fun a c -> Expr.And (a, c)) first rest

(* Flatten a tree of inner joins (looking through selections above joins)
   into items in concatenation order plus a conjunct pool over the
   concatenated schema. *)
let rec flatten ~arity_of (q : Algebra.t) : item list * Expr.t list =
  match q with
  | Join (p, l, r) ->
      let li, lc = flatten ~arity_of l in
      let ri, rc = flatten ~arity_of r in
      let nl = List.fold_left (fun a i -> a + i.arity) 0 li in
      let ri =
        List.map (fun i -> { i with offset = i.offset + nl }) ri
      in
      let rc = List.map (Expr.map_cols (fun c -> c + nl)) rc in
      (li @ ri, lc @ rc @ conjuncts_of p)
  | Select (p, (Join _ as j)) ->
      let items, conjs = flatten ~arity_of j in
      (items, conjs @ conjuncts_of p)
  | q ->
      let n = arity_of q in
      ([ { alg = q; arity = n; offset = 0 } ], [])

(* Greedy join ordering: start from the smallest estimated item, then
   repeatedly add the item minimizing the estimated intermediate size,
   preferring items connected through an applicable conjunct. *)
let order_items stats (items : item list) (conjs : Expr.t list) : item list =
  match items with
  | [] | [ _ ] -> items
  | _ ->
      let covered_by chosen c =
        List.for_all
          (fun col ->
            List.exists
              (fun it -> it.offset <= col && col < it.offset + it.arity)
              chosen)
          (Expr.cols c)
      in
      let remaining = ref items and chosen = ref [] in
      let pick best =
        remaining := List.filter (fun i -> i != best) !remaining;
        chosen := !chosen @ [ best ]
      in
      (* seed: smallest estimated cardinality *)
      let seed =
        List.fold_left
          (fun best it ->
            if estimate stats it.alg < estimate stats best.alg then it else best)
          (List.hd items) items
      in
      pick seed;
      while !remaining <> [] do
        let score it =
          let connected =
            List.exists
              (fun c ->
                (not (covered_by !chosen c)) && covered_by (it :: !chosen) c)
              conjs
          in
          let e = estimate stats it.alg in
          if connected then e else e *. 1000.
        in
        let best =
          List.fold_left
            (fun best it -> if score it < score best then it else best)
            (List.hd !remaining) !remaining
        in
        pick best
      done;
      !chosen

(* Rebuild a left-deep join from ordered items, remapping conjunct columns
   from the original concatenation order to the new one, and appending a
   projection that restores the original column order. *)
let rebuild ~schema (items : item list) (ordered : item list)
    (conjs : Expr.t list) : Algebra.t =
  let total = List.fold_left (fun a i -> a + i.arity) 0 items in
  (* original position -> new position *)
  let old_to_new = Array.make total 0 in
  let _ =
    List.fold_left
      (fun newoff it ->
        for j = 0 to it.arity - 1 do
          old_to_new.(it.offset + j) <- newoff + j
        done;
        newoff + it.arity)
      0 ordered
  in
  let conjs = List.map (Expr.map_cols (fun c -> old_to_new.(c))) conjs in
  (* place each conjunct at the first join where its columns are available *)
  let pool = ref conjs in
  let take avail =
    let mine, rest =
      List.partition
        (fun c -> List.for_all (fun col -> col < avail) (Expr.cols c))
        !pool
    in
    pool := rest;
    mine
  in
  let tree =
    match ordered with
    | [] -> invalid_arg "Optimizer.rebuild: no items"
    | first :: rest ->
        let acc, _ =
          List.fold_left
            (fun (acc, avail) it ->
              let avail' = avail + it.arity in
              (Algebra.Join (conj (take avail'), acc, it.alg), avail'))
            ( (let local = take first.arity in
               if local = [] then first.alg else Algebra.Select (conj local, first.alg)),
              first.arity )
            rest
        in
        acc
  in
  let tree =
    match !pool with [] -> tree | left -> Algebra.Select (conj left, tree)
  in
  (* restore the original column order and names *)
  let projs =
    List.init total (fun c ->
        Algebra.proj (Expr.Col old_to_new.(c)) (Schema.name schema c))
  in
  Algebra.Project (projs, tree)

(** Optimize a logical query: reorder flattened join trees greedily by
    estimated cardinality, then apply the optional analysis-driven
    [prune] hook (supplied by the middleware from [Tkr_check.Absint];
    the engine does not depend on the checker).  Output multisets are
    identical to the input's on every database consistent with the
    schemas; [prune] must preserve rows {e and} their order. *)
let optimize ?(prune : (Algebra.t -> Algebra.t) option)
    ~(stats : stats) ~(lookup : string -> Schema.t) (q : Algebra.t) :
    Algebra.t =
  let arity_of q = Schema.arity (Algebra.schema_of ~lookup q) in
  let rec go (q : Algebra.t) : Algebra.t =
    match q with
    | Join _ | Select (_, Join _) -> (
        let items, conjs = flatten ~arity_of q in
        let items = List.map (fun it -> { it with alg = go it.alg }) items in
        match items with
        | [] | [ _ ] -> descend q
        | _ ->
            let schema = Algebra.schema_of ~lookup q in
            (* schema_of on a Select(_, Join) = join schema: fine *)
            let ordered = order_items stats items conjs in
            if
              List.map (fun i -> i.offset) ordered
              = List.map (fun i -> i.offset) items
            then descend q (* order unchanged: keep the original shape *)
            else rebuild ~schema items ordered conjs)
    | q -> descend q
  and descend (q : Algebra.t) : Algebra.t =
    match q with
    | Rel _ | ConstRel _ -> q
    | Select (p, q) -> Select (p, go q)
    | Project (ps, q) -> Project (ps, go q)
    | Join (p, l, r) -> Join (p, go l, go r)
    | Union (l, r) -> Union (go l, go r)
    | Diff (l, r) -> Diff (go l, go r)
    | Agg (g, a, q) -> Agg (g, a, go q)
    | Distinct q -> Distinct (go q)
    | Coalesce q -> Coalesce (go q)
    | Split (g, l, r) ->
        if l == r then
          let l' = go l in
          Split (g, l', l')
        else Split (g, go l, go r)
    | Split_agg sa -> Split_agg { sa with sa_child = go sa.sa_child }
  in
  let q = go q in
  match prune with Some f -> f q | None -> q

(** Collapse stacked selections: [Select (p1, Select (p2, q))] becomes
    [Select (And (p2, p1), q)] (inner predicate first, matching the
    filter order of the stacked form; Kleene AND makes the filtered rows
    identical).  Run after the AS OF pushdown so a user filter stacked on
    the pushed-down aliveness selection fuses into one conjunction whose
    conjuncts carry both period bounds — the shape {!Exec.index_select}
    recognizes.  Applied unconditionally: the plan shape does not depend
    on whether the index is enabled. *)
let rec merge_selects (q : Algebra.t) : Algebra.t =
  match q with
  | Rel _ | ConstRel _ -> q
  | Select (p, q) -> (
      match merge_selects q with
      | Select (p2, q') -> Select (Expr.And (p2, p), q')
      | q' -> Select (p, q'))
  | Project (ps, q) -> Project (ps, merge_selects q)
  | Join (p, l, r) -> Join (p, merge_selects l, merge_selects r)
  | Union (l, r) -> Union (merge_selects l, merge_selects r)
  | Diff (l, r) -> Diff (merge_selects l, merge_selects r)
  | Agg (g, a, q) -> Agg (g, a, merge_selects q)
  | Distinct q -> Distinct (merge_selects q)
  | Coalesce q -> Coalesce (merge_selects q)
  | Split (g, l, r) ->
      if l == r then
        let l' = merge_selects l in
        Split (g, l', l')
      else Split (g, merge_selects l, merge_selects r)
  | Split_agg sa -> Split_agg { sa with sa_child = merge_selects sa.sa_child }

(** The access paths the interpreter will choose for each stored period
    table read through a selection or a no-equi-key join — the
    [access=index|scan] decision of {!Exec.eval}, precomputed for
    EXPLAIN.  Entries are [(table, "index" | "scan")] in plan order;
    tables read by a bare scan (no selection) are not listed. *)
let access ~(use_index : bool) ~(is_period : string -> bool)
    ~(lookup : string -> Schema.t) (q : Algebra.t) : (string * string) list =
  let out = ref [] in
  let add n v = out := (n, v) :: !out in
  let rec go (q : Algebra.t) =
    match q with
    | Rel _ | ConstRel _ -> ()
    | Select (p, Rel n) when is_period n ->
        let answerable =
          Option.is_some
            (Tkr_idx.Probe.bounds ~arity:(Schema.arity (lookup n)) p)
        in
        add n (if use_index && answerable then "index" else "scan")
    | Select (_, q) -> go q
    | Project (_, q) | Agg (_, _, q) | Distinct q | Coalesce q -> go q
    | Join (p, l, (Rel rn as r)) when is_period rn ->
        go l;
        go r;
        let la = Schema.arity (Algebra.schema_of ~lookup l) in
        let ra = Schema.arity (lookup rn) in
        let answerable =
          fst (Expr.equi_keys ~left_arity:la p) = []
          && Option.is_some
               (Tkr_idx.Probe.join_bounds ~left_arity:la ~right_arity:ra p)
        in
        add rn (if use_index && answerable then "index" else "scan")
    | Join (_, l, r) | Union (l, r) | Diff (l, r) ->
        go l;
        go r
    | Split (_, l, r) ->
        go l;
        if l != r then go r
    | Split_agg sa -> go sa.sa_child
  in
  go q;
  List.rev !out
