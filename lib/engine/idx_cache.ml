(** Maintenance of per-table temporal interval indexes.

    Indexes are derived data: the authoritative state is the table's rows,
    and the index is rebuilt lazily on first use after any DML.  Staleness
    detection rides on the existing machinery — every {!Database} mutation
    installs a fresh immutable {!Table.t} (whose memo slots start empty)
    and bumps the table's version counter — so a cached index found in the
    table value's second memo slot is valid iff its stamped version equals
    the current {!Database.version}.  The belt-and-braces version check
    guards against a table value being re-registered under a bumped
    version.

    Build bookkeeping (for the [tkr_idx_rebuilds] gauge) lives outside the
    table values, keyed by {!Database.uid} and table name: a build for a
    (database, name) pair that was already built at an older version is a
    {e rebuild} — the index followed a DML — while a first build is not. *)

open Tkr_relation

type Table.memo +=
  | Temporal_index of { idx : Tkr_idx.Interval.t option; version : int }
        (** [idx = None] caches a negative result (a period table whose
            stored endpoints are not all integers — unreachable through
            the validated DML paths, but cheap to tolerate). *)

(* (Database.uid, lowercased name) -> version of the last index built *)
let last_built : (int * string, int) Hashtbl.t = Hashtbl.create 16
let last_built_lock = Mutex.create ()

let note_build db name version =
  let key = (Database.uid db, String.lowercase_ascii name) in
  Mutex.lock last_built_lock;
  let rebuild =
    match Hashtbl.find_opt last_built key with
    | Some v -> v <> version
    | None -> false
  in
  Hashtbl.replace last_built key version;
  Mutex.unlock last_built_lock;
  Tkr_idx.Stats.record_build ~rebuild

let periods_of (t : Table.t) : (int * int) array option =
  let n = Schema.arity (Table.schema t) in
  if n < 2 then None
  else
    try
      Some
        (Array.map
           (fun row ->
             match (Tuple.get row (n - 2), Tuple.get row (n - 1)) with
             | Value.Int b, Value.Int e -> (b, e)
             | _ -> raise Exit)
           (Table.rows t))
    with Exit -> None

(** The interval index for period table [name], building (and caching on
    the table value) if absent or stale.  [None] when [name] is not a
    period table or its endpoints are malformed. *)
let get (db : Database.t) (name : string) : Tkr_idx.Interval.t option =
  if not (Database.is_period db name) then None
  else
    let table = Database.find db name in
    let version = Database.version db name in
    match Table.memo2 table with
    | Some (Temporal_index e) when e.version = version -> e.idx
    | _ ->
        let idx =
          Option.map Tkr_idx.Interval.build (periods_of table)
        in
        Table.set_memo2 table (Temporal_index { idx; version });
        note_build db name version;
        idx
