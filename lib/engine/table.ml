(** Physical multiset tables: the engine's row representation of SQL
    (period) relations.  Duplicates are physical rows, matching the paper's
    implementation level where N^T-relations are encoded as SQL multiset
    relations (Section 8). *)

open Tkr_relation

type memo = ..

type t = {
  schema : Schema.t;
  rows : Tuple.t array;
  memo : memo option Atomic.t;
      (* engine-owned cache slot for a derived representation of this
         table value (e.g. the columnar image).  Tables are immutable —
         every [Database] mutation installs a fresh [t] — so the slot
         never needs invalidation.  Racing writers may both compute the
         derivation; last write wins, which is benign for pure
         derivations. *)
  memo2 : memo option Atomic.t;
      (* second, independently-owned slot (e.g. the temporal interval
         index) so two cache clients don't evict each other. *)
}

let make schema rows : t =
  {
    schema;
    rows = Array.of_list rows;
    memo = Atomic.make None;
    memo2 = Atomic.make None;
  }

let of_array schema rows : t =
  { schema; rows; memo = Atomic.make None; memo2 = Atomic.make None }

let empty schema : t =
  { schema; rows = [||]; memo = Atomic.make None; memo2 = Atomic.make None }

let memo t = Atomic.get t.memo
let set_memo t m = Atomic.set t.memo (Some m)
let memo2 t = Atomic.get t.memo2
let set_memo2 t m = Atomic.set t.memo2 (Some m)
let schema t = t.schema
let rows t = t.rows
let cardinality t = Array.length t.rows
let to_list t = Array.to_list t.rows

(** Multiset view as an N-relation (tuple -> multiplicity). *)
let to_nrel (t : t) : Tkr_semiring.Nat.t Krel.t =
  let module NR = Krel.Make (Tkr_semiring.Nat) in
  Array.fold_left (fun acc row -> NR.add acc row 1) (NR.empty t.schema) t.rows

(** Expand an N-relation into physical rows (duplicate per multiplicity). *)
let of_nrel (r : Tkr_semiring.Nat.t Krel.t) : t =
  let module NR = Krel.Make (Tkr_semiring.Nat) in
  let buf = ref [] in
  NR.iter
    (fun tuple m ->
      for _ = 1 to m do
        buf := tuple :: !buf
      done)
    r;
  make (Krel.schema r) (List.rev !buf)

(** Bag equality: same rows with the same multiplicities, order-insensitive. *)
let equal_bag (a : t) (b : t) =
  cardinality a = cardinality b
  &&
  let module NR = Krel.Make (Tkr_semiring.Nat) in
  NR.equal (to_nrel a) (to_nrel b)

(** Rows in canonical order, for deterministic output. *)
let sorted_rows (t : t) =
  let r = Array.copy t.rows in
  Array.sort Tuple.compare r;
  r

let pp ppf (t : t) =
  Format.fprintf ppf "@[<v>%a (%d rows)@,%a@]" Schema.pp t.schema
    (cardinality t)
    Fmt.(list ~sep:cut Tuple.pp)
    (Array.to_list (sorted_rows t))

(** Render as an aligned text table (used by the CLI and examples).  Row
    order is preserved (results of ORDER BY queries print as sorted). *)
let to_text ?(max_rows = 50) (t : t) =
  let buf = Buffer.create 256 in
  let headers = Schema.names t.schema in
  let rows = Array.to_list t.rows in
  let shown = List.filteri (fun i _ -> i < max_rows) rows in
  let cells = List.map (fun r -> List.map Value.to_string (Tuple.to_list r)) shown in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) cells)
      headers
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line xs = String.concat " | " (List.map2 pad xs widths) in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    cells;
  if List.length rows > max_rows then
    Buffer.add_string buf
      (Printf.sprintf "... (%d more rows)\n" (List.length rows - max_rows));
  Buffer.contents buf
