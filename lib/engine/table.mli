(** Physical multiset tables: rows with duplicates, the engine's
    representation of SQL (period) relations at the implementation level
    (Section 8). *)

open Tkr_relation

type t

type memo = ..
(** Extensible derived-representation cache (see {!memo} below). *)

val make : Schema.t -> Tuple.t list -> t
val of_array : Schema.t -> Tuple.t array -> t
val empty : Schema.t -> t
val schema : t -> Schema.t
val rows : t -> Tuple.t array
val cardinality : t -> int
val to_list : t -> Tuple.t list

val to_nrel : t -> Tkr_semiring.Nat.t Krel.t
(** Multiset view: tuple → multiplicity. *)

val of_nrel : Tkr_semiring.Nat.t Krel.t -> t
(** Expand multiplicities into duplicate rows. *)

val equal_bag : t -> t -> bool
(** Bag equality: same rows with same multiplicities; order-insensitive. *)

val sorted_rows : t -> Tuple.t array
(** A sorted copy, for deterministic output. *)

val memo : t -> memo option
(** The table's cached derived representation, if one was attached.  A
    table value is immutable (mutations install a fresh [t] in the
    database), so an attached memo stays valid for the value's lifetime. *)

val set_memo : t -> memo -> unit
(** Attach a derived representation.  One slot per table: a later
    {!set_memo} replaces the previous memo.  Safe under concurrent
    writers for pure derivations (last write wins). *)

val memo2 : t -> memo option
(** A second cache slot with the same contract as {!memo}, owned
    independently (the vectorized engine holds the columnar image in the
    first slot; the temporal index cache uses this one). *)

val set_memo2 : t -> memo -> unit

val pp : Format.formatter -> t -> unit
(** Sorted, for deterministic test failure output. *)

val to_text : ?max_rows:int -> t -> string
(** Aligned text rendering; preserves row order. *)
