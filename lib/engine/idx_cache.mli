(** Lazy, version-checked maintenance of per-table temporal interval
    indexes.  Built on first use, cached on the table value's memo slot,
    invalidated for free by the DML paths (which install fresh table
    values and bump version counters). *)

type Table.memo +=
  | Temporal_index of { idx : Tkr_idx.Interval.t option; version : int }

val get : Database.t -> string -> Tkr_idx.Interval.t option
(** The index over [name]'s [(Abegin, Aend)] columns, building if absent
    or stale.  [None] when [name] is not registered as a period table (or
    stores malformed endpoints).  Raises [Schema.Unknown] like
    {!Database.find} when the table does not exist. *)
