(** The plan interpreter: evaluates (rewritten) algebra over physical
    multiset tables.

    Joins extract equi-keys from conjunctive predicates and run as hash
    joins with the remaining conjuncts (e.g. interval overlap) as a
    residual filter; predicates without equi-keys fall back to a nested
    loop. *)

open Tkr_relation

val select : Expr.t -> Table.t -> Table.t
val project : Algebra.proj list -> Table.t -> Table.t

val union : Table.t -> Table.t -> Table.t
(** UNION ALL. @raise Invalid_argument on incompatible schemas. *)

val except_all : Table.t -> Table.t -> Table.t
(** Counting EXCEPT ALL: each right row cancels one matching left row. *)

val nested_loop_join : Expr.t -> Table.t -> Table.t -> Table.t
val hash_join :
  ?sp:Tkr_obs.Trace.span ->
  (int * int) list ->
  Expr.t option ->
  Table.t ->
  Table.t ->
  Table.t

val join : ?sp:Tkr_obs.Trace.span -> Expr.t -> Table.t -> Table.t -> Table.t
(** Strategy selection: hash join when equi-keys exist, else nested loop.
    The span (if any) records the chosen strategy and, for hash joins, the
    candidate count and residual-filter hit rate. *)

val aggregate :
  Algebra.proj list -> Algebra.agg_spec list -> Table.t -> Table.t
(** Hash aggregation with SQL semantics (one row over empty ungrouped
    input). *)

val distinct : Table.t -> Table.t

val op_label : Algebra.t -> string
(** Trace span label of the root operator (shared with {!Compiled} so the
    two backends produce comparable traces). *)

val index_select :
  ?sp:Tkr_obs.Trace.span -> Database.t -> Expr.t -> string -> Table.t option
(** Index-assisted selection over a stored period table, or [None] when
    the predicate does not bound both period columns ({!Tkr_idx.Probe}).
    Byte-identical to [select pred (find db name)]: probe bounds are
    necessary conditions, candidates keep physical row order, and the
    full predicate is re-applied. *)

val index_join :
  ?sp:Tkr_obs.Trace.span ->
  Database.t ->
  Expr.t ->
  Table.t ->
  string ->
  Table.t option
(** Index nested-loop join against a stored period table on the right:
    one interval probe per left row.  [None] when the conjuncts do not
    sandwich the right period between left columns.  Byte-identical to
    {!nested_loop_join} (callers must ensure the predicate has no
    equi-keys, i.e. the nested-loop regime). *)

val eval :
  ?obs:Tkr_obs.Trace.t ->
  ?use_index:bool ->
  ?pool:Tkr_par.Pool.t ->
  Database.t ->
  Algebra.t ->
  Table.t
(** Evaluate a full plan.  [Split] with physically equal children
    evaluates the shared subplan once.  With an enabled [obs] collector,
    every operator reports a span carrying rows in/out and operator
    internals (default: the disabled collector — no overhead).  [?pool]
    parallelizes the temporal operators (coalesce/split/split_agg) with
    byte-identical output; absent, the serial engine runs unchanged.
    [?use_index] (default off) lets selections and no-equi-key joins over
    stored period tables answer through the temporal interval index when
    their predicates are index-answerable; output is byte-identical
    either way, spans record [access=index|scan]. *)
