(** A closure-compiling executor: expressions and operators are compiled
    once into OCaml closures instead of being re-interpreted per row.

    Produces exactly the same multisets as {!Exec} (differentially tested
    on random queries); on expression-heavy plans it avoids the AST
    dispatch per row-evaluation, which is the interpreter's hot path.

    Compiled closures carry the same {!Tkr_obs.Trace} instrumentation as
    the interpreter — same span labels, same counters — so the two
    backends produce directly comparable traces (tested for equality on
    the deterministic fields). *)

open Tkr_relation
module Trace = Tkr_obs.Trace

(* ---- expression compilation ---- *)

let rec compile_expr (e : Expr.t) : Tuple.t -> Value.t =
  match e with
  | Expr.Col i -> fun t -> Tuple.get t i
  | Expr.Const v -> fun _ -> v
  | Expr.Binop (op, a, b) -> (
      let ca = compile_expr a and cb = compile_expr b in
      match op with
      | Expr.Add -> fun t -> Value.add (ca t) (cb t)
      | Expr.Sub -> fun t -> Value.sub (ca t) (cb t)
      | Expr.Mul -> fun t -> Value.mul (ca t) (cb t)
      | Expr.Div -> fun t -> Value.div (ca t) (cb t)
      | Expr.Mod -> fun t -> Value.modulo (ca t) (cb t))
  | Expr.Neg a ->
      let ca = compile_expr a in
      fun t -> Value.neg (ca t)
  | Expr.Cmp (op, a, b) ->
      let ca = compile_expr a and cb = compile_expr b in
      let test =
        match op with
        | Expr.Eq -> fun c -> c = 0
        | Expr.Ne -> fun c -> c <> 0
        | Expr.Lt -> fun c -> c < 0
        | Expr.Le -> fun c -> c <= 0
        | Expr.Gt -> fun c -> c > 0
        | Expr.Ge -> fun c -> c >= 0
      in
      fun t ->
        (match Value.sql_compare (ca t) (cb t) with
        | None -> Value.Null
        | Some c -> Value.Bool (test c))
  | Expr.And (a, b) -> (
      let ca = compile_expr a and cb = compile_expr b in
      fun t ->
        match (ca t, cb t) with
        | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
        | Value.Bool true, Value.Bool true -> Value.Bool true
        | _ -> Value.Null)
  | Expr.Or (a, b) -> (
      let ca = compile_expr a and cb = compile_expr b in
      fun t ->
        match (ca t, cb t) with
        | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
        | Value.Bool false, Value.Bool false -> Value.Bool false
        | _ -> Value.Null)
  | Expr.Not a -> (
      let ca = compile_expr a in
      fun t ->
        match ca t with Value.Bool b -> Value.Bool (not b) | _ -> Value.Null)
  | Expr.Is_null a ->
      let ca = compile_expr a in
      fun t -> Value.Bool (Value.is_null (ca t))
  | Expr.Like (a, pat) -> (
      let ca = compile_expr a in
      fun t ->
        match ca t with
        | Value.Str s -> Value.Bool (Expr.like_match pat s)
        | Value.Null -> Value.Null
        | _ -> invalid_arg "compiled: LIKE on non-string value")
  | Expr.In_list (a, vs) -> (
      let ca = compile_expr a in
      fun t ->
        match ca t with
        | Value.Null -> Value.Null
        | v ->
            Value.Bool
              (List.exists (fun w -> Value.sql_compare v w = Some 0) vs))
  | Expr.Case (branches, default) ->
      let cbranches =
        List.map (fun (c, r) -> (compile_expr c, compile_expr r)) branches
      in
      let cdefault =
        match default with
        | Some d -> compile_expr d
        | None -> fun _ -> Value.Null
      in
      fun t ->
        let rec go = function
          | [] -> cdefault t
          | (c, r) :: rest -> (
              match c t with Value.Bool true -> r t | _ -> go rest)
        in
        go cbranches
  | Expr.Greatest (a, b) -> (
      let ca = compile_expr a and cb = compile_expr b in
      fun t ->
        let va = ca t and vb = cb t in
        match Value.sql_compare va vb with
        | None -> Value.Null
        | Some c -> if c >= 0 then va else vb)
  | Expr.Least (a, b) -> (
      let ca = compile_expr a and cb = compile_expr b in
      fun t ->
        let va = ca t and vb = cb t in
        match Value.sql_compare va vb with
        | None -> Value.Null
        | Some c -> if c <= 0 then va else vb)

let compile_pred (e : Expr.t) : Tuple.t -> bool =
  match e with
  | Expr.Const (Value.Bool true) -> fun _ -> true
  | e ->
      let c = compile_expr e in
      fun t -> match c t with Value.Bool true -> true | _ -> false

(* ---- operator compilation ---- *)

type plan = Tkr_obs.Trace.t -> Database.t -> Table.t

(* Wrap a compiled operator body in a span named like the interpreter's
   ([Exec.op_label]); the body receives the span to record its inputs and
   internals, the wrapper records [rows_out].  Attribute order matches
   [Exec.eval] so the backends' traces compare equal on the deterministic
   fields. *)
let traced name (body : Trace.span option -> Trace.t -> Database.t -> Table.t) :
    plan =
 fun obs db ->
  Trace.with_span obs name @@ fun sp ->
  let result = body sp obs db in
  (match sp with
  | None -> ()
  | Some _ -> Trace.set_int sp "rows_out" (Table.cardinality result));
  result

let rows_in sp tables =
  match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp "rows_in"
        (List.fold_left (fun acc t -> acc + Table.cardinality t) 0 tables)

let rec compile ?pool ?(use_index = false) ~(lookup : string -> Schema.t)
    (q : Algebra.t) : plan =
  let name = Exec.op_label q in
  let compile ?pool ~lookup q = compile ?pool ~use_index ~lookup q in
  match q with
  | Rel n ->
      traced name (fun sp _ db ->
          let t = Database.find db n in
          rows_in sp [ t ];
          t)
  | ConstRel (schema, tuples) ->
      let t = Table.make schema tuples in
      traced name (fun sp _ _ ->
          rows_in sp [ t ];
          t)
  | Select (p, q0) ->
      let cp = compile_pred p and cq = compile ?pool ~lookup q0 in
      let scan sp obs db =
        let t = cq obs db in
        rows_in sp [ t ];
        Table.of_array (Table.schema t)
          (Array.of_seq (Seq.filter cp (Array.to_seq (Table.rows t))))
      in
      (match q0 with
      | Rel n ->
          traced name (fun sp obs db ->
              if Database.is_period db n then
                match
                  if use_index then Exec.index_select ?sp db p n else None
                with
                | Some result ->
                    rows_in sp [ Database.find db n ];
                    result
                | None ->
                    Trace.set_str sp "access" "scan";
                    scan sp obs db
              else scan sp obs db)
      | _ -> traced name scan)
  | Project (projs, q0) ->
      let cq = compile ?pool ~lookup q0 in
      let child_schema = Algebra.schema_of ~lookup q0 in
      let out_schema =
        Schema.make
          (List.map
             (fun (p : Algebra.proj) ->
               Schema.attr p.name (Expr.infer_ty child_schema p.expr))
             projs)
      in
      let cexprs =
        Array.of_list (List.map (fun (p : Algebra.proj) -> compile_expr p.expr) projs)
      in
      traced name (fun sp obs db ->
          let t = cq obs db in
          rows_in sp [ t ];
          Table.of_array out_schema
            (Array.map
               (fun row -> Tuple.of_array (Array.map (fun c -> c row) cexprs))
               (Table.rows t)))
  | Join (p, l, r) -> (
      let cl = compile ?pool ~lookup l and cr = compile ?pool ~lookup r in
      let nl = Schema.arity (Algebra.schema_of ~lookup l) in
      match Expr.equi_keys ~left_arity:nl p with
      | [], _ ->
          let cp = compile_pred p in
          let rel_r = match r with Algebra.Rel rn -> Some rn | _ -> None in
          traced name (fun sp obs db ->
              let lt = cl obs db in
              let indexed =
                match rel_r with
                | Some rn when use_index && Database.is_period db rn -> (
                    match Exec.index_join ?sp db p lt rn with
                    | Some res -> Some (res, Database.find db rn)
                    | None -> None)
                | _ -> None
              in
              match indexed with
              | Some (res, rt) ->
                  rows_in sp [ lt; rt ];
                  res
              | None ->
              let rt = cr obs db in
              rows_in sp [ lt; rt ];
              Trace.set_str sp "strategy" "nested_loop";
              Trace.set_int sp "pairs"
                (Table.cardinality lt * Table.cardinality rt);
              let out_schema = Schema.concat (Table.schema lt) (Table.schema rt) in
              let buf = ref [] in
              Array.iter
                (fun lrow ->
                  Array.iter
                    (fun rrow ->
                      let row = Tuple.append lrow rrow in
                      if cp row then buf := row :: !buf)
                    (Table.rows rt))
                (Table.rows lt);
              Table.make out_schema (List.rev !buf))
      | keys, residual ->
          let lkeys = List.map fst keys and rkeys = List.map snd keys in
          let has_residual = residual <> None in
          let cres =
            match residual with
            | None -> fun _ -> true
            | Some r -> compile_pred r
          in
          traced name (fun sp obs db ->
              let lt = cl obs db in
              let rt = cr obs db in
              rows_in sp [ lt; rt ];
              Trace.set_str sp "strategy" "hash";
              Trace.set_int sp "equi_keys" (List.length keys);
              let out_schema = Schema.concat (Table.schema lt) (Table.schema rt) in
              let index : (Tuple.t, Tuple.t list ref) Hashtbl.t =
                Hashtbl.create (max 16 (Table.cardinality rt))
              in
              Array.iter
                (fun rrow ->
                  let key = Tuple.project rkeys rrow in
                  match Hashtbl.find_opt index key with
                  | Some cell -> cell := rrow :: !cell
                  | None -> Hashtbl.add index key (ref [ rrow ]))
                (Table.rows rt);
              let candidates = ref 0 and passed = ref 0 in
              let buf = ref [] in
              Array.iter
                (fun lrow ->
                  let key = Tuple.project lkeys lrow in
                  if not (Array.exists Value.is_null key) then
                    match Hashtbl.find_opt index key with
                    | Some matches ->
                        List.iter
                          (fun rrow ->
                            incr candidates;
                            let row = Tuple.append lrow rrow in
                            if cres row then (
                              incr passed;
                              buf := row :: !buf))
                          (List.rev !matches)
                    | None -> ())
                (Table.rows lt);
              Trace.set_int sp "candidates" !candidates;
              Trace.set_bool sp "residual" has_residual;
              Trace.set_int sp "residual_passed" !passed;
              Table.make out_schema (List.rev !buf)))
  | Union (l, r) ->
      let cl = compile ?pool ~lookup l and cr = compile ?pool ~lookup r in
      traced name (fun sp obs db ->
          let lt = cl obs db in
          let rt = cr obs db in
          rows_in sp [ lt; rt ];
          Exec.union lt rt)
  | Diff (l, r) ->
      let cl = compile ?pool ~lookup l and cr = compile ?pool ~lookup r in
      traced name (fun sp obs db ->
          let lt = cl obs db in
          let rt = cr obs db in
          rows_in sp [ lt; rt ];
          Exec.except_all lt rt)
  | Agg (group, aggs, q0) ->
      let cq = compile ?pool ~lookup q0 in
      let child_schema = Algebra.schema_of ~lookup q0 in
      let out_schema = Neval.agg_out_schema child_schema group aggs in
      let cgroup =
        Array.of_list
          (List.map (fun (p : Algebra.proj) -> compile_expr p.expr) group)
      in
      let cinputs =
        Array.of_list
          (List.map
             (fun (spec : Algebra.agg_spec) ->
               match Agg.input_expr spec.func with
               | None -> fun _ -> Value.Int 1
               | Some e -> compile_expr e)
             aggs)
      in
      let funcs = Array.of_list (List.map (fun (s : Algebra.agg_spec) -> s.func) aggs) in
      traced name (fun sp obs db ->
          let t = cq obs db in
          rows_in sp [ t ];
          let table : (Tuple.t, Agg.acc array) Hashtbl.t = Hashtbl.create 64 in
          let order = ref [] in
          Array.iter
            (fun row ->
              let key = Tuple.of_array (Array.map (fun c -> c row) cgroup) in
              let accs =
                match Hashtbl.find_opt table key with
                | Some a -> a
                | None ->
                    let a = Array.make (Array.length funcs) Agg.empty in
                    Hashtbl.add table key a;
                    order := key :: !order;
                    a
              in
              Array.iteri
                (fun i c -> accs.(i) <- Agg.step accs.(i) (c row))
                cinputs)
            (Table.rows t);
          if group = [] && Hashtbl.length table = 0 then (
            Hashtbl.add table (Tuple.make []) (Array.make (Array.length funcs) Agg.empty);
            order := [ Tuple.make [] ]);
          let buf = ref [] in
          List.iter
            (fun key ->
              let accs = Hashtbl.find table key in
              let finals =
                Array.to_list (Array.mapi (fun i f -> Agg.final f accs.(i)) funcs)
              in
              buf := Tuple.append key (Tuple.make finals) :: !buf)
            (List.rev !order);
          Table.make out_schema (List.rev !buf))
  | Distinct q0 ->
      let cq = compile ?pool ~lookup q0 in
      traced name (fun sp obs db ->
          let t = cq obs db in
          rows_in sp [ t ];
          Exec.distinct t)
  | Coalesce q0 ->
      let cq = compile ?pool ~lookup q0 in
      traced name (fun sp obs db ->
          let t = cq obs db in
          rows_in sp [ t ];
          Ops.coalesce ?sp ?pool t)
  | Split (g, l, r) ->
      if l == r then
        let cl = compile ?pool ~lookup l in
        traced name (fun sp obs db ->
            let t = cl obs db in
            rows_in sp [ t ];
            Ops.split ?sp ?pool g t t)
      else
        let cl = compile ?pool ~lookup l and cr = compile ?pool ~lookup r in
        traced name (fun sp obs db ->
            let lt = cl obs db in
            let rt = cr obs db in
            rows_in sp [ lt; rt ];
            Ops.split ?sp ?pool g lt rt)
  | Split_agg sa ->
      let cq = compile ?pool ~lookup sa.sa_child in
      traced name (fun sp obs db ->
          let t = cq obs db in
          rows_in sp [ t ];
          Ops.split_agg ?sp ?pool ~group:sa.sa_group ~aggs:sa.sa_aggs ~gap:sa.sa_gap t)

(** Compile and immediately run (convenience; reuse the compiled plan for
    repeated execution). *)
let eval ?(obs = Trace.disabled) ?(use_index = false) ?pool (db : Database.t)
    (q : Algebra.t) : Table.t =
  let lookup n = Database.schema_of db n in
  (compile ?pool ~use_index ~lookup q) obs db
