(** Physical temporal operators over the period encoding (trailing
    [Abegin]/[Aend] columns):

    - {!coalesce} — multiset K-coalescing as an O(n log n) endpoint sweep
      per distinct data prefix, the engine counterpart of the paper's
      window-function implementation (Section 9);
    - {!split} — the split operator N_G of Def. 8.3;
    - {!split_agg} — the fused, pre-aggregating split+aggregate of the
      optimized rewriting.

    Each operator accepts an optional {!Tkr_par.Pool.t}: sweeps are
    independent per group (coalesce, split_agg) or per row (split), so a
    pool maps them over its domains and merges the results back in the
    serial emission order — output rows are byte-identical to the serial
    path for any pool size. *)

open Tkr_relation

val period_of_row : Tuple.t -> int * int
(** The trailing period of an encoded row.
    @raise Invalid_argument if the trailing columns are not integers. *)

val data_of_row : Tuple.t -> Tuple.t
(** Everything but the trailing period. *)

val coalesce :
  ?sp:Tkr_obs.Trace.span -> ?pool:Tkr_par.Pool.t -> Table.t -> Table.t
(** Emit, per data prefix, the maximal intervals of constant multiplicity,
    duplicated per multiplicity: the unique encoding of the input's
    snapshots. *)

module IS : Set.S with type elt = int

val endpoint_sets :
  int list -> Table.t list -> (Tuple.t, IS.t ref) Hashtbl.t
(** Endpoint sets per group key over the given tables. *)

val endpoint_sets_keyed :
  (int list * Table.t) list -> (Tuple.t, IS.t ref) Hashtbl.t
(** Like {!endpoint_sets}, but each table contributes under its own key
    columns (inputs with different schemas, e.g. alignment joins). *)

val split_with :
  (Tuple.t, IS.t ref) Hashtbl.t -> int list -> Table.t -> Table.t
(** Split every row at the endpoints its key maps to. *)

val split :
  ?sp:Tkr_obs.Trace.span ->
  ?pool:Tkr_par.Pool.t ->
  int list ->
  Table.t ->
  Table.t ->
  Table.t
(** N_G(R1, R2): split every R1 row at the endpoints of R1 ∪ R2 rows
    agreeing on the group columns (Def. 8.3). *)

val split_agg :
  ?sp:Tkr_obs.Trace.span ->
  ?pool:Tkr_par.Pool.t ->
  group:int list ->
  aggs:Algebra.agg_spec list ->
  gap:(int * int) option ->
  Table.t ->
  Table.t
(** Pre-aggregate per (group, interval), sweep the group's elementary
    segments, combine per segment.  With [gap = Some (tmin, tmax)]
    (no GROUP BY) every segment of the domain yields a row, using the
    aggregates' empty-input values over gaps.  Output columns: group,
    aggregate results, [Abegin], [Aend]. *)

val cut_interval : IS.t -> int -> int -> (int * int) list
