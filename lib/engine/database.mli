(** The engine catalog: named tables, optionally registered as period
    tables whose trailing two (integer) columns are the period attributes
    [Abegin]/[Aend].  The catalog also tracks the time domain bounds
    [\[tmin, tmax)] used by the rewriter for whole-domain constructions
    (gap rows, constants). *)

open Tkr_relation

type t

val create : ?tmin:int -> ?tmax:int -> unit -> t
val time_bounds : t -> int * int
val set_time_bounds : t -> tmin:int -> tmax:int -> unit

val add_table : t -> string -> Table.t -> unit
(** Register a plain (non-temporal) table.  Names are case-insensitive. *)

val add_period_table :
  t -> string -> ?begin_col:int -> ?end_col:int -> Table.t -> unit
(** Register a period table.  The period columns (by default the last two)
    are moved to the trailing positions; time bounds are widened to cover
    the data.
    @raise Invalid_argument on non-integer periods. *)

val find : t -> string -> Table.t
(** @raise Schema.Unknown for unregistered names. *)

val is_period : t -> string -> bool
val mem : t -> string -> bool
val schema_of : t -> string -> Schema.t

val data_schema_of : t -> string -> Schema.t
(** The schema a snapshot query sees: period columns hidden. *)

val append_rows : t -> string -> Tuple.t list -> unit
(** INSERT: rows must follow the stored column order. *)

val set_rows : t -> string -> Tuple.t array -> unit
(** Replace all rows (UPDATE/DELETE), keeping schema and registration. *)

val remove_table : t -> string -> unit
val names : t -> string list

val version : t -> string -> int
(** Per-table version counter: 0 for names never loaded, bumped by every
    {!add_table}, {!add_period_table}, {!append_rows}, {!set_rows} and
    {!remove_table}.  Monotone over the database's lifetime (DROP bumps
    but never resets), so a (name, version) pair identifies one immutable
    table state — the invalidation key of the snapshot-aware result
    cache. *)

val generation : t -> int
(** Whole-catalog mutation counter: bumped alongside every table version
    and by {!set_time_bounds}.  Monotone; while it is unchanged the table
    set, all schemas and the time bounds are unchanged, so plans prepared
    against this catalog state are still valid — the staleness signal for
    prepared-statement caches. *)

val uid : t -> int
(** Process-unique identity of this database value, assigned at
    {!create}.  Lets caches keyed outside the database (e.g. index build
    bookkeeping) distinguish same-named tables of different databases. *)
