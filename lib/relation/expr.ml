(** Scalar expressions over tuples, with SQL three-valued logic.

    Column references are positional ([Col i]); the SQL analyzer resolves
    names to positions.  Expressions are shared by every evaluation level:
    the logical K-relation operators, the snapshot evaluator, the rewritten
    period-encoding plans, and the physical engine. *)

type binop = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of int
  | Const of Value.t
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Like of t * string  (** SQL LIKE with [%] and [_] wildcards *)
  | In_list of t * Value.t list
  | Case of (t * t) list * t option  (** searched CASE *)
  | Greatest of t * t
  | Least of t * t

let vtrue = Value.Bool true
let vfalse = Value.Bool false

(* LIKE pattern matching, compiled on the fly (patterns are tiny). *)
let like_match pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
        let r =
          if pi >= np then si >= ns
          else
            match pattern.[pi] with
            | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
            | '_' -> si < ns && go (pi + 1) (si + 1)
            | c -> si < ns && Char.equal s.[si] c && go (pi + 1) (si + 1)
        in
        Hashtbl.add memo (pi, si) r;
        r
  in
  go 0 0

let cmp_result op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec eval (tuple : Tuple.t) (e : t) : Value.t =
  match e with
  | Col i -> Tuple.get tuple i
  | Const v -> v
  | Binop (op, a, b) -> (
      let va = eval tuple a and vb = eval tuple b in
      match op with
      | Add -> Value.add va vb
      | Sub -> Value.sub va vb
      | Mul -> Value.mul va vb
      | Div -> Value.div va vb
      | Mod -> Value.modulo va vb)
  | Neg a -> Value.neg (eval tuple a)
  | Cmp (op, a, b) -> (
      match Value.sql_compare (eval tuple a) (eval tuple b) with
      | None -> Value.Null
      | Some c -> Value.Bool (cmp_result op c))
  | And (a, b) -> (
      (* Kleene three-valued AND *)
      match (eval tuple a, eval tuple b) with
      | Value.Bool false, _ | _, Value.Bool false -> vfalse
      | Value.Bool true, Value.Bool true -> vtrue
      | _ -> Value.Null)
  | Or (a, b) -> (
      match (eval tuple a, eval tuple b) with
      | Value.Bool true, _ | _, Value.Bool true -> vtrue
      | Value.Bool false, Value.Bool false -> vfalse
      | _ -> Value.Null)
  | Not a -> (
      match eval tuple a with
      | Value.Bool b -> Value.Bool (not b)
      | _ -> Value.Null)
  | Is_null a -> Value.Bool (Value.is_null (eval tuple a))
  | Like (a, pat) -> (
      match eval tuple a with
      | Value.Str s -> Value.Bool (like_match pat s)
      | Value.Null -> Value.Null
      | _ -> invalid_arg "Expr: LIKE on non-string value")
  | In_list (a, vs) -> (
      match eval tuple a with
      | Value.Null -> Value.Null
      | v -> Value.Bool (List.exists (fun w -> Value.sql_compare v w = Some 0) vs))
  | Case (branches, default) -> (
      let rec go = function
        | [] -> ( match default with Some d -> eval tuple d | None -> Value.Null)
        | (cond, result) :: rest -> (
            match eval tuple cond with
            | Value.Bool true -> eval tuple result
            | _ -> go rest)
      in
      go branches)
  | Greatest (a, b) -> (
      let va = eval tuple a and vb = eval tuple b in
      match Value.sql_compare va vb with
      | None -> Value.Null
      | Some c -> if c >= 0 then va else vb)
  | Least (a, b) -> (
      let va = eval tuple a and vb = eval tuple b in
      match Value.sql_compare va vb with
      | None -> Value.Null
      | Some c -> if c <= 0 then va else vb)

(* A predicate holds iff it evaluates to TRUE (UNKNOWN filters out). *)
let holds tuple e = match eval tuple e with Value.Bool true -> true | _ -> false

let rec map_cols f = function
  | Col i -> Col (f i)
  | Const v -> Const v
  | Binop (op, a, b) -> Binop (op, map_cols f a, map_cols f b)
  | Neg a -> Neg (map_cols f a)
  | Cmp (op, a, b) -> Cmp (op, map_cols f a, map_cols f b)
  | And (a, b) -> And (map_cols f a, map_cols f b)
  | Or (a, b) -> Or (map_cols f a, map_cols f b)
  | Not a -> Not (map_cols f a)
  | Is_null a -> Is_null (map_cols f a)
  | Like (a, p) -> Like (map_cols f a, p)
  | In_list (a, vs) -> In_list (map_cols f a, vs)
  | Case (bs, d) ->
      Case
        ( List.map (fun (c, r) -> (map_cols f c, map_cols f r)) bs,
          Option.map (map_cols f) d )
  | Greatest (a, b) -> Greatest (map_cols f a, map_cols f b)
  | Least (a, b) -> Least (map_cols f a, map_cols f b)

(* Shift all column references >= [from] by [by]; used when a rewrite
   inserts columns (e.g. the period attributes of a join's left input). *)
let shift_cols ~from ~by e = map_cols (fun i -> if i >= from then i + by else i) e

let rec cols = function
  | Col i -> [ i ]
  | Const _ -> []
  | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b)
  | Greatest (a, b) | Least (a, b) ->
      cols a @ cols b
  | Neg a | Not a | Is_null a | Like (a, _) | In_list (a, _) -> cols a
  | Case (bs, d) ->
      List.concat_map (fun (c, r) -> cols c @ cols r) bs
      @ (match d with Some d -> cols d | None -> [])

(* Type inference relative to a schema; numeric operators unify int/float. *)
let rec infer_ty (schema : Schema.t) (e : t) : Value.ty =
  match e with
  | Col i -> Schema.ty schema i
  | Const v -> ( match Value.type_of v with Some ty -> ty | None -> Value.TInt)
  | Binop (Div, a, b) | Binop (Mod, a, b) | Binop (Add, a, b)
  | Binop (Sub, a, b) | Binop (Mul, a, b) -> (
      match (infer_ty schema a, infer_ty schema b) with
      | Value.TFloat, _ | _, Value.TFloat -> Value.TFloat
      | _ -> Value.TInt)
  | Neg a -> infer_ty schema a
  | Cmp _ | And _ | Or _ | Not _ | Is_null _ | Like _ | In_list _ -> Value.TBool
  | Case (branches, default) -> (
      match branches with
      | (_, r) :: _ -> infer_ty schema r
      | [] -> ( match default with Some d -> infer_ty schema d | None -> Value.TInt))
  | Greatest (a, _) | Least (a, _) -> infer_ty schema a

(* Split a conjunction into its conjuncts, left-to-right. *)
let conjuncts e =
  let rec go acc = function And (a, b) -> go (go acc a) b | e -> e :: acc in
  List.rev (go [] e)

(* Extract equi-join keys from a conjunctive predicate over a concatenated
   schema whose left part has [left_arity] columns.  Returns key pairs
   (left column, right column in right-local numbering) and the residual
   predicate, if any. *)
let equi_keys ~left_arity e =
  let conjuncts =
    let rec go acc = function And (a, b) -> go (go acc a) b | e -> e :: acc in
    List.rev (go [] e)
  in
  let keys, residual =
    List.partition_map
      (fun c ->
        match c with
        | Cmp (Eq, Col i, Col j) when i < left_arity && j >= left_arity ->
            Left (i, j - left_arity)
        | Cmp (Eq, Col j, Col i) when i < left_arity && j >= left_arity ->
            Left (i, j - left_arity)
        | other -> Right other)
      conjuncts
  in
  let residual =
    match residual with
    | [] -> None
    | first :: rest -> Some (List.fold_left (fun a c -> And (a, c)) first rest)
  in
  (keys, residual)

let rec pp ppf = function
  | Col i -> Format.fprintf ppf "#%d" i
  | Const v -> Value.pp ppf v
  | Binop (op, a, b) ->
      let s =
        match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
      in
      Format.fprintf ppf "(%a %s %a)" pp a s pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Cmp (op, a, b) ->
      let s =
        match op with
        | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      in
      Format.fprintf ppf "(%a %s %a)" pp a s pp b
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
  | Is_null a -> Format.fprintf ppf "(%a IS NULL)" pp a
  | Like (a, p) -> Format.fprintf ppf "(%a LIKE '%s')" pp a p
  | In_list (a, vs) ->
      Format.fprintf ppf "(%a IN (%a))" pp a Fmt.(list ~sep:(any ", ") Value.pp) vs
  | Case (bs, d) ->
      Format.fprintf ppf "CASE";
      List.iter (fun (c, r) -> Format.fprintf ppf " WHEN %a THEN %a" pp c pp r) bs;
      (match d with Some d -> Format.fprintf ppf " ELSE %a" pp d | None -> ());
      Format.fprintf ppf " END"
  | Greatest (a, b) -> Format.fprintf ppf "greatest(%a, %a)" pp a pp b
  | Least (a, b) -> Format.fprintf ppf "least(%a, %a)" pp a pp b
