(** SQL aggregation functions with mergeable partial states.

    The accumulator {!acc} tracks enough for all supported aggregates at
    once and supports {!combine}, which is what enables the paper's
    pre-aggregation optimization: pre-aggregate per (group, interval),
    split, then combine per elementary segment (Section 9). *)

type func =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

val input_expr : func -> Expr.t option
(** [None] for [count(·)]. *)

type acc

val empty : acc

val step : ?mult:int -> acc -> Value.t -> acc
(** Add one input value with multiplicity [mult] (the annotation of the
    contributing tuple).  NULL inputs count only towards [count(·)]. *)

val combine : acc -> acc -> acc
(** [combine a b] aggregates the union of the inputs of [a] and [b]. *)

val final : func -> acc -> Value.t
(** SQL results over the accumulated inputs: count over empty input is 0,
    every other aggregate is NULL. *)

val rows : acc -> int
(** Number of input rows, NULL inputs included (what [count( * )] reads). *)

val nonnull : acc -> int
(** Number of non-NULL inputs (what [count(e)] and [avg]'s divisor read). *)

val sum : acc -> Value.t
(** Running sum of non-NULL numeric inputs, [Null] when there were none.
    Integer inputs keep an exact [Int] sum, so it is safe to re-derive
    by any association of additions; float sums are order-sensitive. *)

val vmin : acc -> Value.t
(** Running minimum of non-NULL inputs, [Null] when there were none. *)

val vmax : acc -> Value.t
(** Running maximum of non-NULL inputs, [Null] when there were none. *)

val of_counters :
  rows:int ->
  nonnull:int ->
  sum:Value.t ->
  ?vmin:Value.t ->
  ?vmax:Value.t ->
  unit ->
  acc
(** An accumulator rebuilt from externally maintained state ([vmin]/[vmax]
    default to NULL).  This is what lets an incremental sweep hand exact
    per-segment state back to {!final} instead of re-folding {!combine}. *)

val output_ty : Schema.t -> func -> Value.ty
val default_name : func -> string
val map_cols : (int -> int) -> func -> func
val pp : Format.formatter -> func -> unit
