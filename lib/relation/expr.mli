(** Scalar expressions over tuples, with SQL three-valued logic.

    Column references are positional; the SQL analyzer resolves names to
    positions.  The same expressions drive every evaluation level, from
    the logical K-relation operators to the physical engine. *)

type binop = Add | Sub | Mul | Div | Mod
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Col of int
  | Const of Value.t
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Is_null of t
  | Like of t * string  (** SQL LIKE with [%] and [_] wildcards *)
  | In_list of t * Value.t list
  | Case of (t * t) list * t option  (** searched CASE *)
  | Greatest of t * t
  | Least of t * t

val eval : Tuple.t -> t -> Value.t
(** Three-valued: comparisons and connectives over NULL produce NULL
    (Kleene logic). *)

val holds : Tuple.t -> t -> bool
(** A predicate holds iff it evaluates to TRUE; UNKNOWN filters out. *)

val map_cols : (int -> int) -> t -> t

val shift_cols : from:int -> by:int -> t -> t
(** Shift every column reference [>= from] by [by]; used when a rewrite
    inserts columns. *)

val cols : t -> int list
(** All referenced columns, with duplicates, in syntactic order. *)

val infer_ty : Schema.t -> t -> Value.ty
(** Result type relative to a schema; numeric operators unify int/float. *)

val conjuncts : t -> t list
(** Split a conjunction into its conjuncts, left-to-right; a non-[And]
    expression is its own single conjunct. *)

val equi_keys : left_arity:int -> t -> (int * int) list * t option
(** Extract equi-join key pairs from a conjunctive predicate over a
    concatenated schema whose left part has [left_arity] columns.  Returns
    [(left column, right-local column)] pairs and the residual conjunct,
    if any. *)

val like_match : string -> string -> bool
(** [like_match pattern s]: SQL LIKE matching. *)

val pp : Format.formatter -> t -> unit
