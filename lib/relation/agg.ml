(** SQL aggregation functions with mergeable partial states.

    Partial states ({!acc}) support {!combine}, which enables the paper's
    pre-aggregation optimization: the engine pre-aggregates rows per
    (group, interval), splits the pre-aggregates at endpoint boundaries and
    combines them per elementary segment (Section 9). *)

type func =
  | Count_star
  | Count of Expr.t
  | Sum of Expr.t
  | Avg of Expr.t
  | Min of Expr.t
  | Max of Expr.t

let input_expr = function
  | Count_star -> None
  | Count e | Sum e | Avg e | Min e | Max e -> Some e

type acc = {
  rows : int;  (** number of input rows, including NULL inputs *)
  nonnull : int;  (** number of non-NULL inputs *)
  sum : Value.t;  (** running sum of non-NULL inputs, [Null] if none *)
  vmin : Value.t;
  vmax : Value.t;
}

let empty = { rows = 0; nonnull = 0; sum = Value.Null; vmin = Value.Null; vmax = Value.Null }

let val_min a b =
  match (a, b) with
  | Value.Null, x | x, Value.Null -> x
  | a, b -> ( match Value.sql_compare a b with Some c when c > 0 -> b | _ -> a)

let val_max a b =
  match (a, b) with
  | Value.Null, x | x, Value.Null -> x
  | a, b -> ( match Value.sql_compare a b with Some c when c < 0 -> b | _ -> a)

let val_add_null a b =
  match (a, b) with Value.Null, x | x, Value.Null -> x | a, b -> Value.add a b

(* Add one input value with multiplicity [mult] (annotation of the tuple). *)
let step ?(mult = 1) acc (v : Value.t) =
  if mult <= 0 then acc
  else
    match v with
    | Value.Null -> { acc with rows = acc.rows + mult }
    | v ->
        (* the accumulator serves every aggregate at once; summing only
           makes sense for numeric inputs (SUM/AVG over strings is a type
           error at the query level, but MIN/MAX/COUNT are fine) *)
        let sum =
          match v with
          | Value.Int _ | Value.Float _ ->
              let scaled = if mult = 1 then v else Value.mul v (Value.Int mult) in
              val_add_null acc.sum scaled
          | _ -> acc.sum
        in
        {
          rows = acc.rows + mult;
          nonnull = acc.nonnull + mult;
          sum;
          vmin = val_min acc.vmin v;
          vmax = val_max acc.vmax v;
        }

let combine a b =
  {
    rows = a.rows + b.rows;
    nonnull = a.nonnull + b.nonnull;
    sum = val_add_null a.sum b.sum;
    vmin = val_min a.vmin b.vmin;
    vmax = val_max a.vmax b.vmax;
  }

let final (f : func) (acc : acc) : Value.t =
  match f with
  | Count_star -> Value.Int acc.rows
  | Count _ -> Value.Int acc.nonnull
  | Sum _ -> acc.sum
  | Min _ -> acc.vmin
  | Max _ -> acc.vmax
  | Avg _ -> (
      if acc.nonnull = 0 then Value.Null
      else
        match Value.to_float_opt acc.sum with
        | Some s -> Value.Float (s /. float_of_int acc.nonnull)
        | None -> Value.Null)

let rows (acc : acc) = acc.rows
let nonnull (acc : acc) = acc.nonnull
let sum (acc : acc) = acc.sum
let vmin (acc : acc) = acc.vmin
let vmax (acc : acc) = acc.vmax

let of_counters ~rows ~nonnull ~(sum : Value.t) ?(vmin = Value.Null)
    ?(vmax = Value.Null) () : acc =
  { rows; nonnull; sum; vmin; vmax }

let output_ty (schema : Schema.t) = function
  | Count_star | Count _ -> Value.TInt
  | Avg _ -> Value.TFloat
  | Sum e | Min e | Max e -> Expr.infer_ty schema e

let default_name = function
  | Count_star -> "count"
  | Count _ -> "count"
  | Sum _ -> "sum"
  | Avg _ -> "avg"
  | Min _ -> "min"
  | Max _ -> "max"

let pp ppf f =
  match f with
  | Count_star -> Format.pp_print_string ppf "count(*)"
  | Count e -> Format.fprintf ppf "count(%a)" Expr.pp e
  | Sum e -> Format.fprintf ppf "sum(%a)" Expr.pp e
  | Avg e -> Format.fprintf ppf "avg(%a)" Expr.pp e
  | Min e -> Format.fprintf ppf "min(%a)" Expr.pp e
  | Max e -> Format.fprintf ppf "max(%a)" Expr.pp e

let map_cols f = function
  | Count_star -> Count_star
  | Count e -> Count (Expr.map_cols f e)
  | Sum e -> Sum (Expr.map_cols f e)
  | Avg e -> Avg (Expr.map_cols f e)
  | Min e -> Min (Expr.map_cols f e)
  | Max e -> Max (Expr.map_cols f e)
