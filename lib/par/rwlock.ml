(** A readers-writer lock for the middleware and the query server.

    Reader-preference: a thread may re-acquire the read side while
    already holding it (queries nest freely through the middleware's
    public API), at the cost of writers waiting for a quiet moment —
    acceptable because the write side guards rare catalog mutations
    (DDL/DML, settings), not the hot query path. *)

type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;  (** active readers *)
  mutable writer : bool;  (** a writer holds the lock *)
}

let create () =
  {
    m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
  }

let read_lock t =
  Mutex.lock t.m;
  while t.writer do
    Condition.wait t.can_read t.m
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.m

let read_unlock t =
  Mutex.lock t.m;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.m

let write_lock t =
  Mutex.lock t.m;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.m
  done;
  t.writer <- true;
  Mutex.unlock t.m

let write_unlock t =
  Mutex.lock t.m;
  t.writer <- false;
  Condition.broadcast t.can_read;
  Condition.signal t.can_write;
  Mutex.unlock t.m

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
