(** A readers-writer lock: any number of concurrent readers, or one
    exclusive writer.

    Reader-preference: taking the read side never blocks on a {e waiting}
    writer, so a thread already holding the read side may re-acquire it
    (nested middleware calls) without deadlocking.  Writers wait until no
    reader is active; under a saturated read load they can be delayed,
    which is the intended trade-off for a read-mostly query system. *)

type t

val create : unit -> t

val read_lock : t -> unit
val read_unlock : t -> unit

val write_lock : t -> unit
val write_unlock : t -> unit

val with_read : t -> (unit -> 'a) -> 'a
(** Exception-safe [read_lock]/[read_unlock] bracket. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Exception-safe [write_lock]/[write_unlock] bracket. *)
