(** A fixed-size pool of OCaml 5 [Domain]s with a chunked task queue and
    deterministic ordered-merge combiners.

    The pool is the engine's unit of parallelism: operators take a
    [?pool] and fall back to their serial code path when it is absent, so
    serial semantics stay the default (and byte-identical to the
    pre-parallel engine).  A pool of [jobs] executes batches with the
    calling domain plus [jobs - 1] worker domains; tasks are claimed from
    a shared atomic cursor (cheap work stealing) and results are always
    merged in task order, so the output of every combinator is
    deterministic and independent of how chunks were scheduled. *)

type t
(** A worker pool.  Values are safe to share across batches but a batch
    ([run]/[map_array]/...) must not be started from two domains at
    once — the engine always submits from the query's evaluating
    domain. *)

val create : ?name:string -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] is clamped
    to [\[1, 128\]]).  A pool with [jobs = 1] spawns nothing and runs
    every batch inline. *)

val jobs : t -> int
(** Total parallelism, caller included. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f (Some pool)] with a fresh pool when
    [jobs > 1] (shut down afterwards, also on exceptions), and [f None]
    when [jobs <= 1] — the serial engine path. *)

(** Execution statistics of one batch: what [EXPLAIN ANALYZE] reports as
    the parallel plan. *)
type stats = {
  chunks : int;  (** tasks in the batch *)
  steals : int;  (** chunks executed by worker domains (not the caller) *)
  merge_ns : int64;  (** time spent in the ordered merge of the results *)
  domains : (int * int * int64) list;
      (** per-participant [(slot, chunks, busy_ns)]; slot 0 is the
          calling domain *)
}

val no_stats : stats
(** The empty batch. *)

val run : t -> (unit -> 'a) array -> 'a array * stats
(** Execute every task on the pool (the caller participates) and return
    the results in task order.  The first exception raised by a task is
    re-raised in the caller after the batch drains. *)

val map_array : ?chunks:int -> t -> ('a -> 'b) -> 'a array -> 'b array * stats
(** Chunked, order-preserving parallel map: the input is split into
    [chunks] contiguous slices (default: enough for [4 * jobs]-way load
    balancing), mapped in parallel, and concatenated back in slice
    order — element order is exactly that of [Array.map]. *)

val map_list : ?chunks:int -> t -> ('a -> 'b) -> 'a list -> 'b list * stats
(** [map_array] for lists; element order is exactly that of [List.map]. *)

val concat_map_ranges :
  ?chunks:int -> t -> n:int -> (lo:int -> hi:int -> 'b list) -> 'b list * stats
(** Split the index range [\[0, n)] into [chunks] contiguous sub-ranges
    (some possibly empty), compute each in parallel, and concatenate the
    results in range order. *)

val record : Tkr_obs.Trace.span option -> jobs:int -> stats -> unit
(** Annotate an operator span with the batch: [par_jobs], [chunks],
    [steals], [merge_ns] and a per-domain [domains] attribution string
    ([slot:chunks/busy-ms], slot 0 being the calling domain). *)
