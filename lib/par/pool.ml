(** A fixed-size [Domain] pool with a chunked task queue and deterministic
    ordered-merge combiners.

    Scheduling: a batch is an array of tasks plus an atomic cursor; every
    participant (the submitting domain and the resident workers) claims
    the next index with [Atomic.fetch_and_add] until the batch drains.
    That is work stealing in its cheapest form — no per-worker deques,
    just a shared cursor — which is plenty for the engine's coarse chunks
    (hundreds to thousands of rows each).

    Determinism: combinators place the result of task [i] at slot [i] and
    merge slots in order, so results never depend on which domain ran
    which chunk.  Combined with jobs-independent chunking in the
    operators, parallel plans are reproducible run-to-run. *)

module Trace = Tkr_obs.Trace
module Clock = Tkr_obs.Clock

type batch = {
  b_run : int -> unit;  (** run task [i] (exception-safe wrapper) *)
  b_n : int;
  b_next : int Atomic.t;
  b_completed : int Atomic.t;
  b_chunks_by_slot : int array;  (** chunks executed per participant *)
  b_busy_ns_by_slot : int64 array;
}

type t = {
  p_jobs : int;
  m : Mutex.t;
  work_cv : Condition.t;  (** workers: a new batch (generation) exists *)
  done_cv : Condition.t;  (** submitter: the current batch drained *)
  mutable batch : batch option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.p_jobs

type stats = {
  chunks : int;
  steals : int;
  merge_ns : int64;
  domains : (int * int * int64) list;
}

let no_stats = { chunks = 0; steals = 0; merge_ns = 0L; domains = [] }

(* Claim-and-run until the batch cursor runs dry; the last finisher wakes
   the submitter.  [slot] indexes the per-participant counters. *)
let drain pool (b : batch) ~slot =
  let rec go () =
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i < b.b_n then (
      let t0 = Clock.now_ns () in
      b.b_run i;
      b.b_chunks_by_slot.(slot) <- b.b_chunks_by_slot.(slot) + 1;
      b.b_busy_ns_by_slot.(slot) <-
        Int64.add b.b_busy_ns_by_slot.(slot)
          (Int64.sub (Clock.now_ns ()) t0);
      if Atomic.fetch_and_add b.b_completed 1 = b.b_n - 1 then (
        Mutex.lock pool.m;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.m);
      go ())
  in
  go ()

let worker pool ~slot =
  let rec loop last_gen =
    Mutex.lock pool.m;
    while (not pool.stop) && pool.generation = last_gen do
      Condition.wait pool.work_cv pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else (
      let gen = pool.generation in
      let b = pool.batch in
      Mutex.unlock pool.m;
      (match b with Some b -> drain pool b ~slot | None -> ());
      loop gen)
  in
  loop 0

let create ?name:_ ~jobs () =
  let jobs = max 1 (min 128 jobs) in
  let pool =
    {
      p_jobs = jobs;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      batch = None;
      generation = 0;
      stop = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker pool ~slot:(i + 1)));
  pool

let shutdown pool =
  let ws =
    Mutex.lock pool.m;
    let ws = pool.workers in
    pool.workers <- [||];
    pool.stop <- true;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.m;
    ws
  in
  Array.iter Domain.join ws

let with_pool ~jobs f =
  if jobs <= 1 then f None
  else
    let pool = create ~jobs () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))

let stats_of_batch (b : batch) : stats =
  let domains = ref [] in
  for slot = Array.length b.b_chunks_by_slot - 1 downto 0 do
    if b.b_chunks_by_slot.(slot) > 0 then
      domains :=
        (slot, b.b_chunks_by_slot.(slot), b.b_busy_ns_by_slot.(slot))
        :: !domains
  done;
  {
    chunks = b.b_n;
    steals = b.b_n - b.b_chunks_by_slot.(0);
    merge_ns = 0L;
    domains = !domains;
  }

let run pool (tasks : (unit -> 'a) array) : 'a array * stats =
  let n = Array.length tasks in
  if n = 0 then ([||], no_stats)
  else begin
    let results : 'a option array = Array.make n None in
    let first_exn : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    let b =
      {
        b_run =
          (fun i ->
            match tasks.(i) () with
            | r -> results.(i) <- Some r
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set first_exn None (Some (e, bt))));
        b_n = n;
        b_next = Atomic.make 0;
        b_completed = Atomic.make 0;
        b_chunks_by_slot = Array.make pool.p_jobs 0;
        b_busy_ns_by_slot = Array.make pool.p_jobs 0L;
      }
    in
    if pool.p_jobs > 1 && n > 1 then (
      Mutex.lock pool.m;
      pool.batch <- Some b;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.m);
    drain pool b ~slot:0;
    if pool.p_jobs > 1 && n > 1 then (
      Mutex.lock pool.m;
      while Atomic.get b.b_completed < n do
        Condition.wait pool.done_cv pool.m
      done;
      pool.batch <- None;
      Mutex.unlock pool.m);
    (match Atomic.get first_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    ( Array.map
        (function Some r -> r | None -> assert false (* every task ran *))
        results,
      stats_of_batch b )
  end

(* Contiguous sub-ranges of [0, n): range [i] is [cut i, cut (i+1)), with
   the remainder spread over the first ranges. *)
let cut ~n ~chunks i = (n * i) / chunks

let default_chunks pool n = max 1 (min n (4 * pool.p_jobs))

let timed_merge merge =
  let t0 = Clock.now_ns () in
  let r = merge () in
  (r, Int64.sub (Clock.now_ns ()) t0)

let concat_map_ranges ?chunks pool ~n (f : lo:int -> hi:int -> 'b list) :
    'b list * stats =
  let chunks =
    match chunks with Some c -> max 1 c | None -> default_chunks pool n
  in
  let tasks =
    Array.init chunks (fun i ->
        fun () -> f ~lo:(cut ~n ~chunks i) ~hi:(cut ~n ~chunks (i + 1)))
  in
  let parts, stats = run pool tasks in
  let merged, merge_ns =
    timed_merge (fun () -> List.concat (Array.to_list parts))
  in
  (merged, { stats with merge_ns })

let map_array ?chunks pool (f : 'a -> 'b) (a : 'a array) : 'b array * stats =
  let n = Array.length a in
  if n = 0 then ([||], no_stats)
  else
    let chunks =
      match chunks with Some c -> max 1 c | None -> default_chunks pool n
    in
    let tasks =
      Array.init chunks (fun i ->
          fun () ->
            let lo = cut ~n ~chunks i and hi = cut ~n ~chunks (i + 1) in
            Array.init (hi - lo) (fun j -> f a.(lo + j)))
    in
    let parts, stats = run pool tasks in
    let merged, merge_ns =
      timed_merge (fun () -> Array.concat (Array.to_list parts))
    in
    (merged, { stats with merge_ns })

let map_list ?chunks pool f l =
  let arr, stats = map_array ?chunks pool f (Array.of_list l) in
  (Array.to_list arr, stats)

let record sp ~jobs (s : stats) =
  match sp with
  | None -> ()
  | Some _ ->
      Trace.set_int sp Trace.par_jobs jobs;
      Trace.set_int sp Trace.par_chunks s.chunks;
      Trace.set_int sp Trace.par_steals s.steals;
      Trace.set_int sp Trace.par_merge_ns (Int64.to_int s.merge_ns);
      Trace.set_str sp Trace.par_domains
        (String.concat " "
           (List.map
              (fun (slot, chunks, busy_ns) ->
                Printf.sprintf "%d:%d/%.3fms" slot chunks
                  (Clock.ns_to_ms busy_ns))
              s.domains))
