(** A hand-written SQL lexer.  Keywords are case-insensitive; identifiers
    are lower-cased; strings use single quotes with [''] escaping. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

type pos = Tkr_check.Diagnostic.pos = { line : int; col : int }

exception Error of Tkr_check.Diagnostic.t
(** Lexical errors, as [TKR005] diagnostics with a source position. *)

let keywords =
  [
    "select"; "from"; "where"; "group"; "by"; "having"; "order"; "limit";
    "as"; "and"; "or"; "not"; "null"; "is"; "like"; "in"; "between"; "case";
    "when"; "then"; "else"; "end"; "union"; "except"; "intersect"; "all";
    "distinct"; "join"; "inner"; "cross"; "on"; "true"; "false"; "seq";
    "vt"; "count"; "sum"; "avg"; "min"; "max"; "create"; "table"; "insert";
    "into"; "values"; "period"; "int"; "integer"; "float"; "real"; "text";
    "varchar"; "bool"; "boolean"; "asc"; "desc"; "drop"; "update"; "set";
    "delete"; "for"; "portion"; "of"; "to";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Map a byte offset to a 1-based line:col position. *)
let positioner (s : string) : int -> pos =
  let starts = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' then starts := (i + 1) :: !starts) s;
  let arr = Array.of_list (List.rev !starts) in
  fun i ->
    let lo = ref 0 and hi = ref (Array.length arr - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if arr.(mid) <= i then lo := mid else hi := mid - 1
    done;
    { line = !lo + 1; col = i - arr.(!lo) + 1 }

(** Tokenize a full SQL string, attaching each token's source position.
    Line comments ([-- ...]) are skipped. *)
let tokenize_pos (s : string) : (token * pos) list =
  let n = String.length s in
  let pos_of = positioner s in
  let lex_error i fmt =
    Format.kasprintf
      (fun msg ->
        raise
          (Error
             (Tkr_check.Diagnostic.v ~pos:(pos_of i) "TKR005" "%s" msg)))
      fmt
  in
  let rec go i acc =
    let emit j tok = go j ((tok, pos_of i) :: acc) in
    if i >= n then List.rev ((EOF, pos_of n) :: acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '-' when i + 1 < n && s.[i + 1] = '-' ->
          let rec skip j = if j < n && s.[j] <> '\n' then skip (j + 1) else j in
          go (skip i) acc
      | '(' -> emit (i + 1) LPAREN
      | ')' -> emit (i + 1) RPAREN
      | ',' -> emit (i + 1) COMMA
      | '.' when not (i + 1 < n && is_digit s.[i + 1] && acc_is_numeric acc) ->
          emit (i + 1) DOT
      | ';' -> emit (i + 1) SEMI
      | '*' -> emit (i + 1) STAR
      | '+' -> emit (i + 1) PLUS
      | '-' -> emit (i + 1) MINUS
      | '/' -> emit (i + 1) SLASH
      | '%' -> emit (i + 1) PERCENT
      | '=' -> emit (i + 1) EQ
      | '!' when i + 1 < n && s.[i + 1] = '=' -> emit (i + 2) NE
      | '<' when i + 1 < n && s.[i + 1] = '>' -> emit (i + 2) NE
      | '<' when i + 1 < n && s.[i + 1] = '=' -> emit (i + 2) LE
      | '<' -> emit (i + 1) LT
      | '>' when i + 1 < n && s.[i + 1] = '=' -> emit (i + 2) GE
      | '>' -> emit (i + 1) GT
      | '\'' ->
          let buf = Buffer.create 16 in
          let rec str j =
            if j >= n then lex_error i "unterminated string literal"
            else if s.[j] = '\'' then
              if j + 1 < n && s.[j + 1] = '\'' then (
                Buffer.add_char buf '\'';
                str (j + 2))
              else j + 1
            else (
              Buffer.add_char buf s.[j];
              str (j + 1))
          in
          let i' = str (i + 1) in
          emit i' (STRING (Buffer.contents buf))
      | c when is_digit c ->
          let rec num j = if j < n && is_digit s.[j] then num (j + 1) else j in
          let j = num i in
          if j < n && s.[j] = '.' && j + 1 < n && is_digit s.[j + 1] then (
            let j' = num (j + 1) in
            let f = float_of_string (String.sub s i (j' - i)) in
            emit j' (FLOAT f))
          else emit j (INT (int_of_string (String.sub s i (j - i))))
      | c when is_ident_start c ->
          let rec ident j = if j < n && is_ident_char s.[j] then ident (j + 1) else j in
          let j = ident i in
          let word = String.lowercase_ascii (String.sub s i (j - i)) in
          emit j (IDENT word)
      | c -> lex_error i "unexpected character %C" c
  and acc_is_numeric = function (INT _, _) :: _ -> true | _ -> false in
  go 0 []

(** Tokenize, positions dropped. *)
let tokenize (s : string) : token list = List.map fst (tokenize_pos s)

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "%s" s
  | INT i -> Format.fprintf ppf "%d" i
  | FLOAT f -> Format.fprintf ppf "%g" f
  | STRING s -> Format.fprintf ppf "'%s'" s
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | DOT -> Format.pp_print_string ppf "."
  | SEMI -> Format.pp_print_string ppf ";"
  | STAR -> Format.pp_print_string ppf "*"
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | SLASH -> Format.pp_print_string ppf "/"
  | PERCENT -> Format.pp_print_string ppf "%"
  | EQ -> Format.pp_print_string ppf "="
  | NE -> Format.pp_print_string ppf "<>"
  | LT -> Format.pp_print_string ppf "<"
  | LE -> Format.pp_print_string ppf "<="
  | GT -> Format.pp_print_string ppf ">"
  | GE -> Format.pp_print_string ppf ">="
  | EOF -> Format.pp_print_string ppf "<eof>"
