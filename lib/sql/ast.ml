(** Abstract syntax of the supported SQL subset.

    The subset covers everything the paper's workloads need: SELECT with
    expressions, aliases, WHERE, GROUP BY/HAVING, DISTINCT, multi-table
    FROM with JOIN ... ON, subqueries in FROM, UNION/EXCEPT/INTERSECT
    [ALL], ORDER BY/LIMIT at statement level, aggregate functions
    (count/sum/avg/min/max), CASE, LIKE, IN, BETWEEN — plus the paper's
    [SEQ VT (...)] snapshot-semantics block and simple DDL (CREATE TABLE /
    INSERT) for the CLI and examples. *)

type binop = Add | Sub | Mul | Div | Mod
type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type pos = Tkr_check.Diagnostic.pos = { line : int; col : int }
(** Source position ([line:col], 1-based) of the node in the SQL text;
    carried on the nodes semantic errors anchor to. *)

type expr =
  | Num of int
  | Fnum of float
  | Str of string
  | Bool of bool
  | Null
  | Ref of string list * pos  (** [a] or [t; a] for [t.a] *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | Like of expr * string
  | In_list of expr * expr list
  | Between of expr * expr * expr
  | Case of (expr * expr) list * expr option
  | Agg_call of string * agg_arg * pos

and agg_arg = Star | Arg of expr

type select_item = { item_expr : expr; item_alias : string option }

type from_item =
  | Table of { name : string; alias : string option }
  | Subquery of { sub : query; sub_alias : string }

and select = {
  distinct : bool;
  items : item list;
  from : (from_item * expr option) list;
      (** FROM items with optional JOIN ... ON conditions; the first item's
          condition is always [None] *)
  where : expr option;
  group_by : expr list;
  having : expr option;
}

and item = Star_item | Item of select_item

and query =
  | Select_q of select
  | Union_q of bool * query * query  (** [true] = ALL *)
  | Except_q of bool * query * query
  | Intersect_q of bool * query * query
  | Seq_vt of query  (** snapshot-semantics block *)
  | Seq_vt_as_of of int * query
      (** timeslice: the snapshot of a snapshot query at one time point —
          [SEQ VT AS OF t (...)] returns a non-temporal relation *)
  | Seq_vt_set of query
      (** snapshot semantics under {e set} semantics ([SEQ VT SET (...)]):
          every snapshot is deduplicated, difference is set difference —
          the B-instance of the framework (TSQL2-style) *)

type order_item = { ord_expr : expr; ord_desc : bool }

type statement =
  | Query of {
      q : query;
      order_by : order_item list;
      limit : int option;
      origin : pos option;
          (** source position of the statement, for plan-level diagnostics *)
    }
  | Create_table of {
      tbl_name : string;
      cols : (string * Tkr_relation.Value.ty) list;
      period : (string * string) option;
          (** PERIOD (begin_col, end_col): registers a period table *)
    }
  | Insert of { ins_name : string; rows : expr list list }
  | Drop_table of string
  | Update of {
      upd_name : string;
      portion : (int * int) option;
          (** [FOR PORTION OF <period> FROM a TO b] (SQL:2011): only the
              overlap with [\[a, b)] is updated; remainders are preserved
              by row splitting *)
      sets : (string * expr) list;
      upd_where : expr option;
    }
  | Delete of {
      del_name : string;
      del_portion : (int * int) option;
      del_where : expr option;
    }
  | Explain of { analyze : bool; target : statement }
      (** [EXPLAIN (stmt)] renders the final plan; [EXPLAIN ANALYZE (stmt)]
          also executes it and annotates every operator with rows in/out,
          internals and elapsed time *)
  | Check of { target : statement }
      (** [CHECK (stmt)] (alias [LINT]) runs the static analyzer over the
          statement without executing it and renders its diagnostics *)
