(** Recursive-descent parser for the SQL subset of {!Ast}. *)

open Ast

exception Error of Tkr_check.Diagnostic.t
(** Syntax errors, as [TKR004] diagnostics with a source position. *)

type state = { mutable toks : (Lexer.token * pos) list }

let peek st = match st.toks with [] -> Lexer.EOF | (t, _) :: _ -> t

let peek2 st =
  match st.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF

(* Position of the next token (the last seen position at end of input). *)
let cur_pos st =
  match st.toks with [] -> { line = 1; col = 1 } | (_, p) :: _ -> p

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  raise
    (Error
       (Tkr_check.Diagnostic.v ~pos:(cur_pos st) "TKR004"
          "%s (next token: %a)" msg Lexer.pp_token (peek st)))

let expect st tok msg =
  if peek st = tok then advance st else fail st ("expected " ^ msg)

let kw st k = match peek st with Lexer.IDENT w when w = k -> true | _ -> false

let eat_kw st k = if kw st k then (advance st; true) else false

let expect_kw st k = if not (eat_kw st k) then fail st ("expected " ^ String.uppercase_ascii k)

let ident st =
  match peek st with
  | Lexer.IDENT w when not (Lexer.is_keyword w) ->
      advance st;
      w
  | Lexer.IDENT w ->
      (* allow a few non-reserved words as identifiers *)
      if List.mem w [ "count"; "sum"; "avg"; "min"; "max"; "vt"; "period" ] then (
        advance st;
        w)
      else fail st (Printf.sprintf "unexpected keyword %s" w)
  | _ -> fail st "expected identifier"

let agg_names = [ "count"; "sum"; "avg"; "min"; "max" ]

(* --- expressions, by descending precedence --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if eat_kw st "or" then Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if eat_kw st "and" then And (lhs, parse_and st) else lhs

and parse_not st =
  if eat_kw st "not" then Not (parse_not st) else parse_predicate st

and parse_predicate st =
  let lhs = parse_additive st in
  match peek st with
  | Lexer.EQ -> advance st; Cmp (Eq, lhs, parse_additive st)
  | Lexer.NE -> advance st; Cmp (Ne, lhs, parse_additive st)
  | Lexer.LT -> advance st; Cmp (Lt, lhs, parse_additive st)
  | Lexer.LE -> advance st; Cmp (Le, lhs, parse_additive st)
  | Lexer.GT -> advance st; Cmp (Gt, lhs, parse_additive st)
  | Lexer.GE -> advance st; Cmp (Ge, lhs, parse_additive st)
  | Lexer.IDENT "is" ->
      advance st;
      if eat_kw st "not" then (
        expect_kw st "null";
        Is_not_null lhs)
      else (
        expect_kw st "null";
        Is_null lhs)
  | Lexer.IDENT "like" ->
      advance st;
      (match peek st with
      | Lexer.STRING p ->
          advance st;
          Like (lhs, p)
      | _ -> fail st "LIKE expects a string pattern")
  | Lexer.IDENT "not" when peek2 st = Lexer.IDENT "like" ->
      advance st;
      advance st;
      (match peek st with
      | Lexer.STRING p ->
          advance st;
          Not (Like (lhs, p))
      | _ -> fail st "NOT LIKE expects a string pattern")
  | Lexer.IDENT "not" when peek2 st = Lexer.IDENT "in" ->
      advance st;
      advance st;
      Not (parse_in lhs st)
  | Lexer.IDENT "not" when peek2 st = Lexer.IDENT "between" ->
      advance st;
      advance st;
      Not (parse_between lhs st)
  | Lexer.IDENT "in" ->
      advance st;
      parse_in lhs st
  | Lexer.IDENT "between" ->
      advance st;
      parse_between lhs st
  | _ -> lhs

and parse_in lhs st =
  expect st Lexer.LPAREN "(";
  let rec items acc =
    let e = parse_additive st in
    if peek st = Lexer.COMMA then (
      advance st;
      items (e :: acc))
    else List.rev (e :: acc)
  in
  let vs = items [] in
  expect st Lexer.RPAREN ")";
  In_list (lhs, vs)

and parse_between lhs st =
  let lo = parse_additive st in
  expect_kw st "and";
  let hi = parse_additive st in
  Between (lhs, lo, hi)

and parse_additive st =
  let rec go lhs =
    match peek st with
    | Lexer.PLUS -> advance st; go (Bin (Add, lhs, parse_multiplicative st))
    | Lexer.MINUS -> advance st; go (Bin (Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    match peek st with
    | Lexer.STAR -> advance st; go (Bin (Mul, lhs, parse_unary st))
    | Lexer.SLASH -> advance st; go (Bin (Div, lhs, parse_unary st))
    | Lexer.PERCENT -> advance st; go (Bin (Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Neg (parse_unary st)
  | Lexer.PLUS ->
      advance st;
      parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i -> advance st; Num i
  | Lexer.FLOAT f -> advance st; Fnum f
  | Lexer.STRING s -> advance st; Str s
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.IDENT "null" -> advance st; Null
  | Lexer.IDENT "true" -> advance st; Bool true
  | Lexer.IDENT "false" -> advance st; Bool false
  | Lexer.IDENT "case" ->
      advance st;
      let rec branches acc =
        if eat_kw st "when" then (
          let c = parse_expr st in
          expect_kw st "then";
          let r = parse_expr st in
          branches ((c, r) :: acc))
        else List.rev acc
      in
      let bs = branches [] in
      let default = if eat_kw st "else" then Some (parse_expr st) else None in
      expect_kw st "end";
      Case (bs, default)
  | Lexer.IDENT f when List.mem f agg_names && peek2 st = Lexer.LPAREN ->
      let pos = cur_pos st in
      advance st;
      advance st;
      let arg =
        if peek st = Lexer.STAR then (
          advance st;
          Star)
        else Arg (parse_expr st)
      in
      expect st Lexer.RPAREN ")";
      Agg_call (f, arg, pos)
  | Lexer.IDENT w when not (Lexer.is_keyword w) ->
      let pos = cur_pos st in
      advance st;
      if peek st = Lexer.DOT then (
        advance st;
        let col = ident st in
        Ref ([ w; col ], pos))
      else Ref ([ w ], pos)
  | _ -> fail st "expected expression"

(* --- queries --- *)

let rec parse_query st = parse_set_expr st

and parse_set_expr st =
  let lhs = parse_query_primary st in
  match peek st with
  | Lexer.IDENT "union" ->
      advance st;
      let all = eat_kw st "all" in
      Union_q (all, lhs, parse_set_expr st)
  | Lexer.IDENT "except" ->
      advance st;
      let all = eat_kw st "all" in
      Except_q (all, lhs, parse_set_expr st)
  | Lexer.IDENT "intersect" ->
      advance st;
      let all = eat_kw st "all" in
      Intersect_q (all, lhs, parse_set_expr st)
  | _ -> lhs

and parse_query_primary st =
  match peek st with
  | Lexer.IDENT "seq" ->
      advance st;
      expect_kw st "vt";
      let set_mode = eat_kw st "set" in
      let as_of =
        if kw st "as" then (
          advance st;
          expect_kw st "of";
          match peek st with
          | Lexer.INT t ->
              advance st;
              Some t
          | Lexer.MINUS -> (
              advance st;
              match peek st with
              | Lexer.INT t ->
                  advance st;
                  Some (-t)
              | _ -> fail st "AS OF expects an integer time point")
          | _ -> fail st "AS OF expects an integer time point")
        else None
      in
      expect st Lexer.LPAREN "(";
      let q = parse_query st in
      expect st Lexer.RPAREN ")";
      (match (set_mode, as_of) with
      | true, Some _ -> fail st "SEQ VT SET cannot be combined with AS OF"
      | true, None -> Seq_vt_set q
      | false, Some t -> Seq_vt_as_of (t, q)
      | false, None -> Seq_vt q)
  | Lexer.LPAREN ->
      advance st;
      let q = parse_query st in
      expect st Lexer.RPAREN ")";
      q
  | Lexer.IDENT "select" -> parse_select st
  | _ -> fail st "expected SELECT, SEQ VT or parenthesized query"

and parse_select st =
  expect_kw st "select";
  let distinct = eat_kw st "distinct" in
  let rec items acc =
    let item =
      if peek st = Lexer.STAR then (
        advance st;
        Star_item)
      else
        let e = parse_expr st in
        let alias =
          if eat_kw st "as" then Some (ident st)
          else
            match peek st with
            | Lexer.IDENT w
              when (not (Lexer.is_keyword w))
                   || List.mem w [ "count"; "sum"; "avg"; "min"; "max" ] ->
                Some (ident st)
            | _ -> None
        in
        Item { item_expr = e; item_alias = alias }
    in
    if peek st = Lexer.COMMA then (
      advance st;
      items (item :: acc))
    else List.rev (item :: acc)
  in
  let items = items [] in
  let from =
    if eat_kw st "from" then parse_from st
    else fail st "expected FROM (queries without FROM are not supported)"
  in
  let where = if eat_kw st "where" then Some (parse_expr st) else None in
  let group_by =
    if kw st "group" then (
      advance st;
      expect_kw st "by";
      let rec exprs acc =
        let e = parse_expr st in
        if peek st = Lexer.COMMA then (
          advance st;
          exprs (e :: acc))
        else List.rev (e :: acc)
      in
      exprs [])
    else []
  in
  let having = if eat_kw st "having" then Some (parse_expr st) else None in
  Select_q { distinct; items; from; where; group_by; having }

and parse_from st =
  let first = parse_from_item st in
  let rec more acc =
    match peek st with
    | Lexer.COMMA ->
        advance st;
        more ((parse_from_item st, None) :: acc)
    | Lexer.IDENT "cross" ->
        advance st;
        expect_kw st "join";
        more ((parse_from_item st, None) :: acc)
    | Lexer.IDENT "inner" | Lexer.IDENT "join" ->
        let _ = eat_kw st "inner" in
        expect_kw st "join";
        let item = parse_from_item st in
        expect_kw st "on";
        let cond = parse_expr st in
        more ((item, Some cond) :: acc)
    | _ -> List.rev acc
  in
  more [ (first, None) ]

and parse_from_item st =
  match peek st with
  | Lexer.LPAREN ->
      advance st;
      let q = parse_query st in
      expect st Lexer.RPAREN ")";
      let _ = eat_kw st "as" in
      let alias = ident st in
      Subquery { sub = q; sub_alias = alias }
  | _ ->
      let name = ident st in
      let alias =
        if eat_kw st "as" then Some (ident st)
        else
          match peek st with
          | Lexer.IDENT w when not (Lexer.is_keyword w) -> Some (ident st)
          | _ -> None
      in
      Table { name; alias }

(* --- statements --- *)

let parse_ty st =
  match peek st with
  | Lexer.IDENT ("int" | "integer") -> advance st; Tkr_relation.Value.TInt
  | Lexer.IDENT ("float" | "real") -> advance st; Tkr_relation.Value.TFloat
  | Lexer.IDENT ("text" | "varchar") ->
      advance st;
      (* optional (n) length, ignored *)
      if peek st = Lexer.LPAREN then (
        advance st;
        (match peek st with Lexer.INT _ -> advance st | _ -> fail st "length");
        expect st Lexer.RPAREN ")");
      Tkr_relation.Value.TStr
  | Lexer.IDENT ("bool" | "boolean") -> advance st; Tkr_relation.Value.TBool
  | _ -> fail st "expected a type (int, float, text, bool)"

(* [FOR PORTION OF <ident> FROM <int> TO <int>] *)
let parse_portion st =
  if kw st "for" then (
    advance st;
    expect_kw st "portion";
    expect_kw st "of";
    let _period_name = ident st in
    expect_kw st "from";
    let a =
      match peek st with
      | Lexer.INT a ->
          advance st;
          a
      | _ -> fail st "FOR PORTION OF expects integer bounds"
    in
    expect_kw st "to";
    let b =
      match peek st with
      | Lexer.INT b ->
          advance st;
          b
      | _ -> fail st "FOR PORTION OF expects integer bounds"
    in
    Some (a, b))
  else None

let rec parse_statement st =
  match peek st with
  | Lexer.IDENT "explain" ->
      advance st;
      let analyze = eat_kw st "analyze" in
      (* optional parens around the whole target statement, so that
         [EXPLAIN (q ORDER BY ...)] keeps the ORDER BY with the query *)
      let target =
        if peek st = Lexer.LPAREN then (
          advance st;
          let s = parse_statement st in
          expect st Lexer.RPAREN ")";
          s)
        else parse_statement st
      in
      Explain { analyze; target }
  | Lexer.IDENT ("check" | "lint") ->
      advance st;
      let target =
        if peek st = Lexer.LPAREN then (
          advance st;
          let s = parse_statement st in
          expect st Lexer.RPAREN ")";
          s)
        else parse_statement st
      in
      Check { target }
  | Lexer.IDENT "create" ->
      advance st;
      expect_kw st "table";
      let tbl_name = ident st in
      expect st Lexer.LPAREN "(";
      let rec cols acc =
        let c = ident st in
        let ty = parse_ty st in
        if peek st = Lexer.COMMA then (
          advance st;
          cols ((c, ty) :: acc))
        else List.rev ((c, ty) :: acc)
      in
      let cols = cols [] in
      expect st Lexer.RPAREN ")";
      let period =
        if eat_kw st "period" then (
          expect st Lexer.LPAREN "(";
          let b = ident st in
          expect st Lexer.COMMA ",";
          let e = ident st in
          expect st Lexer.RPAREN ")";
          Some (b, e))
        else None
      in
      Create_table { tbl_name; cols; period }
  | Lexer.IDENT "insert" ->
      advance st;
      expect_kw st "into";
      let ins_name = ident st in
      expect_kw st "values";
      let rec rows acc =
        expect st Lexer.LPAREN "(";
        let rec vals acc =
          let e = parse_expr st in
          if peek st = Lexer.COMMA then (
            advance st;
            vals (e :: acc))
          else List.rev (e :: acc)
        in
        let row = vals [] in
        expect st Lexer.RPAREN ")";
        if peek st = Lexer.COMMA then (
          advance st;
          rows (row :: acc))
        else List.rev (row :: acc)
      in
      Insert { ins_name; rows = rows [] }
  | Lexer.IDENT "drop" ->
      advance st;
      expect_kw st "table";
      Drop_table (ident st)
  | Lexer.IDENT "update" ->
      advance st;
      let upd_name = ident st in
      let portion = parse_portion st in
      expect_kw st "set";
      let rec sets acc =
        let col = ident st in
        expect st Lexer.EQ "=";
        let e = parse_expr st in
        if peek st = Lexer.COMMA then (
          advance st;
          sets ((col, e) :: acc))
        else List.rev ((col, e) :: acc)
      in
      let sets = sets [] in
      let upd_where = if eat_kw st "where" then Some (parse_expr st) else None in
      Update { upd_name; portion; sets; upd_where }
  | Lexer.IDENT "delete" ->
      advance st;
      expect_kw st "from";
      let del_name = ident st in
      let del_portion = parse_portion st in
      let del_where = if eat_kw st "where" then Some (parse_expr st) else None in
      Delete { del_name; del_portion; del_where }
  | _ ->
      let origin = Some (cur_pos st) in
      let q = parse_query st in
      let order_by =
        if kw st "order" then (
          advance st;
          expect_kw st "by";
          let rec items acc =
            let e = parse_expr st in
            let desc =
              if eat_kw st "desc" then true
              else (
                ignore (eat_kw st "asc");
                false)
            in
            if peek st = Lexer.COMMA then (
              advance st;
              items ({ ord_expr = e; ord_desc = desc } :: acc))
            else List.rev ({ ord_expr = e; ord_desc = desc } :: acc)
          in
          items [])
        else []
      in
      let limit =
        if eat_kw st "limit" then
          match peek st with
          | Lexer.INT i ->
              advance st;
              Some i
          | _ -> fail st "LIMIT expects an integer"
        else None
      in
      Query { q; order_by; limit; origin }

(** Parse a single statement (a trailing semicolon is allowed). *)
let statement (sql : string) : statement =
  let st = { toks = Lexer.tokenize_pos sql } in
  let s = parse_statement st in
  ignore (if peek st = Lexer.SEMI then (advance st; true) else false);
  if peek st <> Lexer.EOF then fail st "trailing input after statement";
  s

(** Parse a ;-separated script. *)
let script (sql : string) : statement list =
  let st = { toks = Lexer.tokenize_pos sql } in
  let rec go acc =
    if peek st = Lexer.EOF then List.rev acc
    else
      let s = parse_statement st in
      let rec semis () =
        if peek st = Lexer.SEMI then (
          advance st;
          semis ())
      in
      semis ();
      go (s :: acc)
  in
  go []
