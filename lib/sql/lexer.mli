(** Hand-written SQL lexer.  Keywords and identifiers are case-insensitive
    (lower-cased); strings use single quotes with [''] escaping; [-- ...]
    comments are skipped. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

type pos = Tkr_check.Diagnostic.pos = { line : int; col : int }

exception Error of Tkr_check.Diagnostic.t
(** Lexical errors, as [TKR005] diagnostics with a source position. *)

val is_keyword : string -> bool

val tokenize_pos : string -> (token * pos) list
(** Tokenize, attaching each token's 1-based [line:col] position.
    @raise Error on malformed input. *)

val tokenize : string -> token list
(** Like {!tokenize_pos}, positions dropped. *)

val pp_token : Format.formatter -> token -> unit
