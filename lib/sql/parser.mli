(** Recursive-descent parser for the SQL subset of {!Ast}, including the
    [SEQ VT (...)] / [SEQ VT AS OF t (...)] snapshot blocks and the
    SQL:2011 [FOR PORTION OF] update/delete forms. *)

exception Error of Tkr_check.Diagnostic.t
(** Syntax errors, as [TKR004] diagnostics with a source position. *)

val statement : string -> Ast.statement
(** Parse a single statement (a trailing semicolon is allowed).
    @raise Error on syntax errors or trailing input. *)

val script : string -> Ast.statement list
(** Parse a [;]-separated script. *)
