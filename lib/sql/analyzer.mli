(** Semantic analysis: resolves parsed SQL against a catalog into the
    logical algebra.

    Name resolution follows SQL (unique-suffix or qualified); FROM lists
    are planned into left-deep join trees with WHERE/ON conjuncts pushed
    to the lowest operator where their columns are available; aggregates
    are extracted from SELECT/HAVING into an [Agg] node with a final
    projection over group and aggregate columns. *)

open Tkr_relation

exception Error of Tkr_check.Diagnostic.t
(** Semantic errors, as [TKR0xx] diagnostics carrying the source position
    of the offending node when the AST provides one. *)

type catalog = { cat_schema : string -> Schema.t }
(** [cat_schema] returns the (data) schema of a base table or raises
    [Schema.Unknown]. *)

type analyzed = { algebra : Algebra.t; schema : Schema.t }

val analyze_query : catalog -> Ast.query -> analyzed
(** @raise Error on unknown/ambiguous names, aggregates in WHERE, bare
    non-grouped columns, incompatible set operations, or nested [SEQ VT]. *)

val resolve :
  schema:Schema.t ->
  on_agg:(string -> Ast.agg_arg -> Ast.pos -> Expr.t) ->
  Ast.expr ->
  Expr.t
(** Resolve a scalar expression; [on_agg] handles aggregate calls (it
    receives the call's source position). *)

val no_agg : string -> Ast.agg_arg -> Ast.pos -> Expr.t
(** An [on_agg] that rejects aggregate calls. *)

val resolve_order : Schema.t -> Ast.order_item -> int * bool
(** Resolve an ORDER BY item to (output column, descending): by 1-based
    position or output name. *)
