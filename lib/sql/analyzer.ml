(** Semantic analysis: resolves the parsed AST against a catalog into the
    logical algebra of [Tkr_relation.Algebra].

    Name resolution follows SQL: unqualified names match unique suffixes,
    qualified names match exactly; ambiguity and unknown names raise
    {!Error}.  FROM lists are planned into left-deep join trees, pushing
    WHERE/ON conjuncts to the lowest operator where all their columns are
    available (single-table conjuncts become selections below the join —
    without this, the comma-joins of the paper's workload would degenerate
    into cross products). *)

open Tkr_relation
module A = Ast

exception Error of Tkr_check.Diagnostic.t
(** Semantic errors, as [TKR0xx] diagnostics carrying the source position
    of the offending node when the AST provides one. *)

let err ?pos code fmt =
  Format.kasprintf
    (fun s -> raise (Error (Tkr_check.Diagnostic.v ?pos code "%s" s)))
    fmt

type catalog = { cat_schema : string -> Schema.t }

let resolve_name ?pos (schema : Schema.t) (path : string list) : int =
  let name = String.concat "." path in
  match Schema.find_opt schema name with
  | Some i -> i
  | None -> err ?pos "TKR001" "unknown column %s" name
  | exception Schema.Ambiguous n ->
      err ?pos "TKR002" "ambiguous column reference %s" n

let cmp_of : A.cmpop -> Expr.cmp = function
  | A.Eq -> Expr.Eq
  | A.Ne -> Expr.Ne
  | A.Lt -> Expr.Lt
  | A.Le -> Expr.Le
  | A.Gt -> Expr.Gt
  | A.Ge -> Expr.Ge

let bin_of : A.binop -> Expr.binop = function
  | A.Add -> Expr.Add
  | A.Sub -> Expr.Sub
  | A.Mul -> Expr.Mul
  | A.Div -> Expr.Div
  | A.Mod -> Expr.Mod

(** Resolve a scalar expression; [on_agg] handles aggregate calls (raises
    outside SELECT/HAVING). *)
let rec resolve ~(schema : Schema.t) ~on_agg (e : A.expr) : Expr.t =
  let r e = resolve ~schema ~on_agg e in
  match e with
  | A.Num i -> Expr.Const (Value.Int i)
  | A.Fnum f -> Expr.Const (Value.Float f)
  | A.Str s -> Expr.Const (Value.Str s)
  | A.Bool b -> Expr.Const (Value.Bool b)
  | A.Null -> Expr.Const Value.Null
  | A.Ref (path, pos) -> Expr.Col (resolve_name ~pos schema path)
  | A.Bin (op, a, b) -> Expr.Binop (bin_of op, r a, r b)
  | A.Neg a -> Expr.Neg (r a)
  | A.Cmp (op, a, b) -> Expr.Cmp (cmp_of op, r a, r b)
  | A.And (a, b) -> Expr.And (r a, r b)
  | A.Or (a, b) -> Expr.Or (r a, r b)
  | A.Not a -> Expr.Not (r a)
  | A.Is_null a -> Expr.Is_null (r a)
  | A.Is_not_null a -> Expr.Not (Expr.Is_null (r a))
  | A.Like (a, p) -> Expr.Like (r a, p)
  | A.In_list (a, vs) ->
      let consts =
        List.map
          (fun v ->
            match r v with
            | Expr.Const c -> c
            | _ -> err "TKR012" "IN list elements must be literals")
          vs
      in
      Expr.In_list (r a, consts)
  | A.Between (a, lo, hi) ->
      let ra = r a in
      Expr.And (Expr.Cmp (Expr.Ge, ra, r lo), Expr.Cmp (Expr.Le, ra, r hi))
  | A.Case (branches, default) ->
      Expr.Case
        (List.map (fun (c, v) -> (r c, r v)) branches, Option.map r default)
  | A.Agg_call (f, arg, pos) -> on_agg f arg pos

let no_agg _ _ pos =
  err ~pos "TKR013" "aggregate calls are not allowed in this context"

let agg_func ~schema ?pos (f : string) (arg : A.agg_arg) : Agg.func =
  let input () =
    match arg with
    | A.Star -> err ?pos "TKR014" "%s(*) is not supported; only count(*)" f
    | A.Arg e -> resolve ~schema ~on_agg:no_agg e
  in
  match (f, arg) with
  | "count", A.Star -> Agg.Count_star
  | "count", _ -> Agg.Count (input ())
  | "sum", _ -> Agg.Sum (input ())
  | "avg", _ -> Agg.Avg (input ())
  | "min", _ -> Agg.Min (input ())
  | "max", _ -> Agg.Max (input ())
  | _ -> err ?pos "TKR015" "unknown aggregate function %s" f

let conjuncts_of (e : Expr.t) : Expr.t list =
  let rec go acc = function Expr.And (a, b) -> go (go acc a) b | e -> e :: acc in
  List.rev (go [] e)

let conj = function
  | [] -> Expr.Const (Value.Bool true)
  | first :: rest -> List.fold_left (fun a c -> Expr.And (a, c)) first rest

let derived_name i (e : A.expr) =
  match e with
  | A.Ref (path, _) -> Schema.local_name (String.concat "." path)
  | A.Agg_call (f, _, _) -> f
  | _ -> Printf.sprintf "col%d" i

(** The result of analyzing a query: a logical algebra term and its output
    schema. *)
type analyzed = { algebra : Algebra.t; schema : Schema.t }

let rec analyze_query (cat : catalog) (q : A.query) : analyzed =
  match q with
  | A.Seq_vt _ | A.Seq_vt_as_of _ | A.Seq_vt_set _ ->
      err "TKR010" "SEQ VT must enclose the whole query"
  | A.Select_q s -> analyze_select cat s
  | A.Union_q (all, l, r) ->
      let la = analyze_query cat l and ra = analyze_query cat r in
      check_compat la ra "UNION";
      let u = Algebra.Union (la.algebra, ra.algebra) in
      {
        la with
        algebra = (if all then u else Algebra.Distinct u);
      }
  | A.Except_q (all, l, r) ->
      let la = analyze_query cat l and ra = analyze_query cat r in
      check_compat la ra "EXCEPT";
      if all then { la with algebra = Algebra.Diff (la.algebra, ra.algebra) }
      else
        {
          la with
          algebra =
            Algebra.Diff (Algebra.Distinct la.algebra, Algebra.Distinct ra.algebra);
        }
  | A.Intersect_q (all, l, r) ->
      let la = analyze_query cat l and ra = analyze_query cat r in
      check_compat la ra "INTERSECT";
      (* bag intersection: L - (L - R) *)
      let inter l r = Algebra.Diff (l, Algebra.Diff (l, r)) in
      if all then { la with algebra = inter la.algebra ra.algebra }
      else
        {
          la with
          algebra =
            Algebra.Distinct
              (inter (Algebra.Distinct la.algebra) (Algebra.Distinct ra.algebra));
        }

and check_compat la ra op =
  if not (Schema.union_compatible la.schema ra.schema) then
    err "TKR011" "%s branches have incompatible schemas %a vs %a" op Schema.pp
      la.schema Schema.pp ra.schema

and analyze_from_item (cat : catalog) (item : A.from_item) :
    Algebra.t * Schema.t =
  match item with
  | A.Table { name; alias } ->
      let schema =
        try cat.cat_schema name
        with Schema.Unknown n -> err "TKR003" "unknown table %s" n
      in
      let prefix = Option.value alias ~default:name in
      (Algebra.Rel name, Schema.qualify prefix schema)
  | A.Subquery { sub; sub_alias } ->
      let a = analyze_query cat sub in
      (a.algebra, Schema.qualify sub_alias a.schema)

and analyze_select (cat : catalog) (s : A.select) : analyzed =
  (* 1. FROM: resolve all items, then plan a left-deep join tree. *)
  let items = List.map (fun (item, on) -> (analyze_from_item cat item, on)) s.from in
  let full_schema =
    List.fold_left
      (fun acc ((_, sch), _) -> Schema.concat acc sch)
      (Schema.make []) items
  in
  let offsets =
    let _, offs =
      List.fold_left
        (fun (off, acc) ((_, sch), _) -> (off + Schema.arity sch, off :: acc))
        (0, []) items
    in
    List.rev offs
  in
  (* conjunct pool: WHERE plus all ON conditions, resolved over the full
     concatenated schema *)
  let where_conjs =
    match s.where with
    | None -> []
    | Some w -> conjuncts_of (resolve ~schema:full_schema ~on_agg:no_agg w)
  in
  let on_conjs =
    List.concat_map
      (fun ((_, _), on) ->
        match on with
        | None -> []
        | Some c -> conjuncts_of (resolve ~schema:full_schema ~on_agg:no_agg c))
      items
  in
  let pool = ref (where_conjs @ on_conjs) in
  let take pred =
    let mine, rest = List.partition pred !pool in
    pool := rest;
    mine
  in
  let within lo hi c = List.for_all (fun i -> lo <= i && i < hi) (Expr.cols c) in
  (* selections local to one item are pushed below the joins *)
  let items_planned =
    List.map2
      (fun ((alg, sch), _) off ->
        let n = Schema.arity sch in
        let local = take (within off (off + n)) in
        let alg =
          if local = [] then alg
          else
            Algebra.Select
              (Expr.map_cols (fun i -> i - off) (conj local), alg)
        in
        (alg, sch, off, n))
      items offsets
  in
  let planned =
    match items_planned with
    | [] -> err "TKR004" "empty FROM"
    | (alg0, _, _, n0) :: rest ->
        let acc, _ =
          List.fold_left
            (fun (acc, avail) (alg, _, off, n) ->
              let avail' = avail + n in
              assert (off = avail);
              let join_preds = take (within 0 avail') in
              (Algebra.Join (conj join_preds, acc, alg), avail'))
            (alg0, n0) rest
        in
        acc
  in
  let planned =
    match !pool with
    | [] -> planned
    | leftover -> Algebra.Select (conj leftover, planned)
  in
  (* 2. aggregation context *)
  let has_agg =
    let rec expr_has_agg = function
      | A.Agg_call _ -> true
      | A.Bin (_, a, b) | A.Cmp (_, a, b) | A.And (a, b) | A.Or (a, b) ->
          expr_has_agg a || expr_has_agg b
      | A.Neg a | A.Not a | A.Is_null a | A.Is_not_null a | A.Like (a, _) ->
          expr_has_agg a
      | A.In_list (a, vs) -> expr_has_agg a || List.exists expr_has_agg vs
      | A.Between (a, b, c) -> expr_has_agg a || expr_has_agg b || expr_has_agg c
      | A.Case (bs, d) ->
          List.exists (fun (c, v) -> expr_has_agg c || expr_has_agg v) bs
          || (match d with Some d -> expr_has_agg d | None -> false)
      | _ -> false
    in
    List.exists
      (function A.Star_item -> false | A.Item it -> expr_has_agg it.item_expr)
      s.items
    || (match s.having with Some h -> expr_has_agg h | None -> false)
  in
  let select_star schema =
    List.mapi
      (fun i attr ->
        ( Algebra.proj (Expr.Col i) (Schema.local_name attr.Schema.name),
          attr.Schema.name ))
      (Schema.attrs schema)
  in
  let analyzed =
    if (not has_agg) && s.group_by = [] then (
      (* plain projection *)
      let projs =
        List.concat_map
          (function
            | A.Star_item -> List.map fst (select_star full_schema)
            | A.Item it ->
                let e = resolve ~schema:full_schema ~on_agg:no_agg it.item_expr in
                let name =
                  match it.item_alias with
                  | Some a -> a
                  | None -> derived_name 0 it.item_expr
                in
                [ Algebra.proj e name ])
          s.items
      in
      (match s.having with
      | Some _ -> err "TKR016" "HAVING without GROUP BY or aggregates"
      | None -> ());
      let algebra = Algebra.Project (projs, planned) in
      let schema =
        Schema.make
          (List.map
             (fun (p : Algebra.proj) ->
               Schema.attr p.name (Expr.infer_ty full_schema p.expr))
             projs)
      in
      { algebra; schema })
    else (
      (* grouped / aggregated select *)
      let group_resolved =
        List.map (fun g -> (g, resolve ~schema:full_schema ~on_agg:no_agg g)) s.group_by
      in
      let group_projs =
        List.mapi
          (fun i (g, e) -> Algebra.proj e (derived_name i g))
          group_resolved
      in
      let k = List.length group_projs in
      let aggs : Algebra.agg_spec list ref = ref [] in
      let agg_col f arg pos =
        let func = agg_func ~schema:full_schema ~pos f arg in
        (* reuse identical aggregate calls *)
        let rec find i = function
          | [] -> None
          | (spec : Algebra.agg_spec) :: rest ->
              if spec.func = func then Some i else find (i + 1) rest
        in
        match find 0 !aggs with
        | Some i -> Expr.Col (k + i)
        | None ->
            let i = List.length !aggs in
            aggs :=
              !aggs @ [ { Algebra.func; agg_name = Printf.sprintf "agg%d" i } ];
            Expr.Col (k + i)
      in
      (* resolve an output expression over the aggregate's result schema:
         group expressions become group columns, aggregate calls become
         aggregate columns *)
      let rec resolve_out (e : A.expr) : Expr.t =
        match
          List.find_index (fun (g, _) -> g = e) group_resolved
        with
        | Some i -> Expr.Col i
        | None -> (
            match e with
            | A.Agg_call (f, arg, pos) -> agg_col f arg pos
            | A.Ref (path, pos) -> (
                (* a bare column must be one of the grouping columns *)
                let r = resolve ~schema:full_schema ~on_agg:no_agg e in
                match
                  List.find_index (fun (_, ge) -> ge = r) group_resolved
                with
                | Some i -> Expr.Col i
                | None ->
                    err ~pos "TKR017"
                      "column %s must appear in GROUP BY or an aggregate"
                      (String.concat "." path))
            | A.Num i -> Expr.Const (Value.Int i)
            | A.Fnum f -> Expr.Const (Value.Float f)
            | A.Str s -> Expr.Const (Value.Str s)
            | A.Bool b -> Expr.Const (Value.Bool b)
            | A.Null -> Expr.Const Value.Null
            | A.Bin (op, a, b) -> Expr.Binop (bin_of op, resolve_out a, resolve_out b)
            | A.Neg a -> Expr.Neg (resolve_out a)
            | A.Cmp (op, a, b) -> Expr.Cmp (cmp_of op, resolve_out a, resolve_out b)
            | A.And (a, b) -> Expr.And (resolve_out a, resolve_out b)
            | A.Or (a, b) -> Expr.Or (resolve_out a, resolve_out b)
            | A.Not a -> Expr.Not (resolve_out a)
            | A.Is_null a -> Expr.Is_null (resolve_out a)
            | A.Is_not_null a -> Expr.Not (Expr.Is_null (resolve_out a))
            | A.Like (a, p) -> Expr.Like (resolve_out a, p)
            | A.In_list (a, vs) ->
                let consts =
                  List.map
                    (fun v ->
                      match resolve_out v with
                      | Expr.Const c -> c
                      | _ -> err "TKR012" "IN list elements must be literals")
                    vs
                in
                Expr.In_list (resolve_out a, consts)
            | A.Between (a, lo, hi) ->
                let ra = resolve_out a in
                Expr.And
                  ( Expr.Cmp (Expr.Ge, ra, resolve_out lo),
                    Expr.Cmp (Expr.Le, ra, resolve_out hi) )
            | A.Case (bs, d) ->
                Expr.Case
                  ( List.map (fun (c, v) -> (resolve_out c, resolve_out v)) bs,
                    Option.map resolve_out d ))
      in
      let out_items =
        List.concat_map
          (function
            | A.Star_item ->
                err "TKR018" "SELECT * cannot be combined with GROUP BY"
            | A.Item it ->
                let e = resolve_out it.item_expr in
                let name =
                  match it.item_alias with
                  | Some a -> a
                  | None -> derived_name 0 it.item_expr
                in
                [ Algebra.proj e name ])
          s.items
      in
      let having_pred = Option.map resolve_out s.having in
      let agg_node = Algebra.Agg (group_projs, !aggs, planned) in
      let filtered =
        match having_pred with
        | None -> agg_node
        | Some p -> Algebra.Select (p, agg_node)
      in
      let algebra = Algebra.Project (out_items, filtered) in
      (* output schema: infer types over the aggregate output schema *)
      let agg_schema =
        Algebra.schema_of
          ~lookup:(fun n -> cat.cat_schema n)
          agg_node
      in
      let schema =
        Schema.make
          (List.map
             (fun (p : Algebra.proj) ->
               Schema.attr p.name (Expr.infer_ty agg_schema p.expr))
             out_items)
      in
      { algebra; schema })
  in
  if s.distinct then
    { analyzed with algebra = Algebra.Distinct analyzed.algebra }
  else analyzed

(** Resolve an ORDER BY item against the output schema of a query: either
    a 1-based output position or an output column name. *)
let resolve_order (schema : Schema.t) (o : A.order_item) : int * bool =
  match o.A.ord_expr with
  | A.Num i when i >= 1 && i <= Schema.arity schema -> (i - 1, o.A.ord_desc)
  | A.Ref (path, pos) -> (resolve_name ~pos schema path, o.A.ord_desc)
  | _ -> err "TKR019" "ORDER BY supports output columns or positions only"
