(** The logical model: period K-relations, i.e. K-relations annotated with
    elements of the period semiring K^T (Section 6).

    [Make (K) (D)] provides, for any m-semiring [K]:
    - evaluation of RA (selection, projection, join, union, difference)
      with K^T-annotations,
    - the timeslice operator (Def. 6.2), a homomorphism onto K-relations,
    - [encode] / [decode]: the bijection ENC_K between snapshot K-relations
      and period K-relations (Def. 6.3) and its inverse.

    Together these form the representation system of Thm. 6.6 / 7.x; the
    property-based tests in [test/test_representation.ml] check the
    commutative diagrams on randomized databases and queries. *)

module Domain = Tkr_timeline.Domain
module Interval = Tkr_timeline.Interval
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Krel = Tkr_relation.Krel
module Algebra = Tkr_relation.Algebra
module Period_semiring = Tkr_temporal.Period_semiring

module Make
    (K : Tkr_semiring.Semiring_intf.MONUS)
    (D : Period_semiring.DOMAIN) =
struct
  module KT = Period_semiring.MakeMonus (K) (D)
  module E = Tkr_relation.Eval.Make (KT)
  module R = E.R
  (** A period K-relation: tuples annotated with coalesced temporal
      K-elements. *)

  module KR = Tkr_relation.Krel.MakeMonus (K)
  module Snap = Tkr_snapshot.Snapshot_rel.Make (K)

  type t = R.t

  let domain = D.domain

  (** Build from interval-stamped facts [(tuple, (b, e), k)]. *)
  let of_facts schema facts : t =
    List.fold_left
      (fun acc (tuple, (b, e), k) ->
        R.add acc tuple (KT.of_assoc [ ((b, e), k) ]))
      (R.empty schema) facts

  (** Timeslice for K^T-relations (Def. 6.2): apply τ_T to every
      annotation.  Being a homomorphism, it commutes with queries. *)
  let timeslice (r : t) t : KR.t =
    R.fold
      (fun tuple el acc -> KR.add acc tuple (KT.timeslice el t))
      r
      (KR.empty (Krel.schema r))

  (** ENC_K (Def. 6.3): merge all snapshots into coalesced temporal
      elements, one per tuple.  The per-tuple coalescing normalization
      ([KT.of_raw]) is pure and independent across tuples; with [?pool]
      it runs on the pool's domains, results merged back in the serial
      fold order — the encoding is byte-identical either way. *)
  let encode ?pool (snap : Snap.t) : t =
    let domain = Snap.domain snap in
    let tmin = Domain.tmin domain in
    let table : (Tuple.t, (Interval.t * K.t) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    for i = 0 to Domain.size domain - 1 do
      let t = tmin + i in
      KR.iter
        (fun tuple k ->
          let cell =
            match Hashtbl.find_opt table tuple with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add table tuple c;
                c
          in
          cell := (Interval.singleton t, k) :: !cell)
        (Snap.timeslice snap t)
    done;
    match pool with
    | None ->
        Hashtbl.fold
          (fun tuple cell acc -> R.add acc tuple (KT.of_raw !cell))
          table
          (R.empty (Snap.schema snap))
    | Some pool ->
        (* same per-tuple order as the serial fold, normalization on the
           pool, merge in order *)
        let entries =
          List.rev (Hashtbl.fold (fun t c acc -> (t, !c) :: acc) table [])
        in
        let normalized, _stats =
          Tkr_par.Pool.map_list pool (fun (t, raw) -> (t, KT.of_raw raw)) entries
        in
        List.fold_left
          (fun acc (tuple, kt) -> R.add acc tuple kt)
          (R.empty (Snap.schema snap))
          normalized

  (** ENC_K⁻¹: recover the snapshot K-relation via timeslices. *)
  let decode (r : t) : Snap.t =
    Snap.make D.domain (Krel.schema r) (fun t -> timeslice r t)

  (** Evaluate RA over period K-relations with K^T semantics. *)
  let eval (db : string -> t) (q : Algebra.t) : t = E.eval db q

  let equal = R.equal
  let pp = R.pp
end
