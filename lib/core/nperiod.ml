(** Full RAagg evaluation over period N-relations (N^T, the multiset
    instance of the logical model).

    Difference uses the monus of N^T (Thm. 7.1).  Aggregation follows
    Def. 7.1: it is computed on the elementary segments induced by the
    endpoints of the group's annotations — never point-at-a-time — and the
    result tuple at each segment is annotated 1 there.  For aggregation
    without GROUP BY, the segments additionally cover the whole time
    domain, producing result rows over gaps (count = 0, other aggregates
    NULL): this is exactly what fixes the paper's aggregation-gap bug. *)

module Domain = Tkr_timeline.Domain
module Interval = Tkr_timeline.Interval
module Endpoints = Tkr_timeline.Endpoints
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Value = Tkr_relation.Value
module Expr = Tkr_relation.Expr
module Agg = Tkr_relation.Agg
module Krel = Tkr_relation.Krel
module Algebra = Tkr_relation.Algebra
module Neval = Tkr_relation.Neval

module Make (D : Tkr_temporal.Period_semiring.DOMAIN) = struct
  module P = Period_rel.Make (Tkr_semiring.Nat) (D)
  module KT = P.KT
  module R = P.R

  type t = P.t

  let aggregate (group : Algebra.proj list) (aggs : Algebra.agg_spec list)
      (r : t) : t =
    let child_schema = Krel.schema r in
    let out_schema = Neval.agg_out_schema child_schema group aggs in
    let groups : (Tuple.t, (Tuple.t * KT.t) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    R.iter
      (fun tuple el ->
        let key =
          Tuple.of_array
            (Array.of_list
               (List.map (fun (p : Algebra.proj) -> Expr.eval tuple p.expr) group))
        in
        match Hashtbl.find_opt groups key with
        | Some cell -> cell := (tuple, el) :: !cell
        | None -> Hashtbl.add groups key (ref [ (tuple, el) ]))
      r;
    (* Without GROUP BY there is always exactly one group, even on empty
       input (SQL returns a single row over the empty multiset). *)
    if group = [] && not (Hashtbl.mem groups (Tuple.make [])) then
      Hashtbl.add groups (Tuple.make []) (ref []);
    let out : (Tuple.t, (Interval.t * int) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let record tuple seg =
      match Hashtbl.find_opt out tuple with
      | Some cell -> cell := (seg, 1) :: !cell
      | None -> Hashtbl.add out tuple (ref [ (seg, 1) ])
    in
    let tmin, tmax = Domain.whole D.domain in
    Hashtbl.iter
      (fun key members ->
        let members = !members in
        let eps =
          List.fold_left
            (fun acc (_, el) ->
              List.fold_left
                (fun acc (i, _) ->
                  Endpoints.add (Interval.b i) (Endpoints.add (Interval.e i) acc))
                acc el)
            (Endpoints.of_list []) members
        in
        let eps =
          if group = [] then Endpoints.add tmin (Endpoints.add tmax eps) else eps
        in
        let segments = Endpoints.elementary eps in
        List.iter
          (fun seg ->
            let p = Interval.b seg in
            let live =
              List.filter_map
                (fun (tuple, el) ->
                  let m = KT.timeslice el p in
                  if m > 0 then Some (tuple, m) else None)
                members
            in
            if live = [] && group <> [] then ()
            else
              let accs = Array.make (List.length aggs) Agg.empty in
              List.iter
                (fun (tuple, mult) ->
                  List.iteri
                    (fun i (spec : Algebra.agg_spec) ->
                      let v =
                        match Agg.input_expr spec.func with
                        | None -> Value.Int 1
                        | Some e -> Expr.eval tuple e
                      in
                      accs.(i) <- Agg.step ~mult accs.(i) v)
                    aggs)
                live;
              let avals =
                List.mapi
                  (fun i (spec : Algebra.agg_spec) -> Agg.final spec.func accs.(i))
                  aggs
              in
              record (Tuple.append key (Tuple.make avals)) seg)
          segments)
      groups;
    Hashtbl.fold
      (fun tuple cell acc -> R.add acc tuple (KT.of_raw !cell))
      out (R.empty out_schema)

  (** DISTINCT over N^T: set semantics per snapshot — every non-zero
      multiplicity becomes 1, then re-coalesce. *)
  let distinct (r : t) : t =
    R.fold
      (fun tuple el acc ->
        R.add acc tuple (KT.of_raw (List.map (fun (i, _) -> (i, 1)) el)))
      r
      (R.empty (Krel.schema r))

  let rec eval (db : string -> t) (q : Algebra.t) : t =
    match q with
    | Agg (group, aggs, q) -> aggregate group aggs (eval db q)
    | Distinct q -> distinct (eval db q)
    | Select (p, q) -> R.select p (eval db q)
    | Project (projs, q) ->
        let r = eval db q in
        R.project
          (List.map (fun (p : Algebra.proj) -> p.expr) projs)
          (P.E.project_out_schema (Krel.schema r) projs)
          r
    | Join (p, l, r) -> R.join p (eval db l) (eval db r)
    | Union (l, r) -> R.union (eval db l) (eval db r)
    | Diff (l, r) -> R.diff (eval db l) (eval db r)
    | Rel _ | ConstRel _ | Coalesce _ | Split _ | Split_agg _ -> P.E.eval db q
end
