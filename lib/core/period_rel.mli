(** The logical model: period K-relations — K-relations annotated with
    elements of the period semiring K^T (Section 6).

    Together with {!Make.timeslice} and {!Make.encode}/{!Make.decode},
    these form the representation system of Thm. 6.6: the encoding is
    unique (coalesced), snapshot-preserving, and queries are
    snapshot-reducible because τ_T is a homomorphism. *)

module Domain = Tkr_timeline.Domain
module Interval = Tkr_timeline.Interval
module Schema = Tkr_relation.Schema
module Tuple = Tkr_relation.Tuple
module Krel = Tkr_relation.Krel
module Algebra = Tkr_relation.Algebra
module Period_semiring = Tkr_temporal.Period_semiring

module Make
    (K : Tkr_semiring.Semiring_intf.MONUS)
    (D : Period_semiring.DOMAIN) : sig
  module KT : module type of Period_semiring.MakeMonus (K) (D)
  (** The period semiring K^T the annotations live in. *)

  module E : module type of Tkr_relation.Eval.Make (KT)
  module R = E.R
  module KR : module type of Tkr_relation.Krel.MakeMonus (K)
  module Snap : module type of Tkr_snapshot.Snapshot_rel.Make (K)

  type t = R.t

  val domain : Domain.t

  val of_facts : Schema.t -> (Tuple.t * (int * int) * K.t) list -> t
  (** Interval-stamped facts; annotations are coalesced per tuple, so the
      result is the canonical encoding of the stated history. *)

  val timeslice : t -> int -> KR.t
  (** Def. 6.2; commutes with queries (Thm. 6.3 / 7.2). *)

  val encode : ?pool:Tkr_par.Pool.t -> Snap.t -> t
  (** ENC_K (Def. 6.3): bijective (Lemma 6.4), snapshot-preserving
      (Lemma 6.5).  [?pool] parallelizes the per-tuple coalescing
      normalization; the result is byte-identical to the serial
      encoding. *)

  val decode : t -> Snap.t
  (** ENC_K⁻¹, via timeslices. *)

  val eval : (string -> t) -> Algebra.t -> t
  (** RA with K^T semantics (difference via the monus of Thm. 7.1);
      aggregation is N-specific, see {!Nperiod}. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
