(** Analyzer driver: the passes combined per plan stage. *)

open Tkr_relation

val logical :
  ?absint:Absint.env -> lookup:Typecheck.lookup -> Algebra.t -> Diagnostic.t list
(** Type checking plus logical plan invariants (no physical operators)
    plus abstract interpretation ({!Absint}, the TKR4xx family).
    [absint] defaults to a bare non-temporal environment over [lookup]. *)

val physical :
  ?absint:Absint.env -> lookup:Typecheck.lookup -> Algebra.t -> Diagnostic.t list
(** Type checking plus period-encoding plan invariants plus abstract
    interpretation.  [lookup] must give the encoded base-table schemas
    (data plus [__b]/[__e]); [absint] defaults to a temporal environment
    over [lookup] — pass a seeded one for period/time-bounds facts. *)

val verdict :
  ?werror:bool ->
  Diagnostic.t list ->
  (Diagnostic.t list, Diagnostic.t list) result
(** [Error] when the list contains an error (with [~werror:true], any
    warning counts too). *)
