(** Analyzer driver: the passes combined per plan stage. *)

open Tkr_relation

val logical : lookup:Typecheck.lookup -> Algebra.t -> Diagnostic.t list
(** Type checking plus logical plan invariants (no physical operators). *)

val physical : lookup:Typecheck.lookup -> Algebra.t -> Diagnostic.t list
(** Type checking plus period-encoding plan invariants.  [lookup] must
    give the encoded base-table schemas (data plus [__b]/[__e]). *)

val verdict :
  ?werror:bool ->
  Diagnostic.t list ->
  (Diagnostic.t list, Diagnostic.t list) result
(** [Error] when the list contains an error (with [~werror:true], any
    warning counts too). *)
