(** Typed diagnostics with stable [TKR] error codes, severities, optional
    source positions and text/JSON rendering. *)

type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit

type severity = Error | Warning | Info

val severity_name : severity -> string

type t = {
  code : string;
  severity : severity;
  pos : pos option;
  msg : string;
  hint : string option;
}

exception Fail of t

val v :
  ?severity:severity ->
  ?pos:pos ->
  ?hint:string ->
  string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [v code fmt ...] builds a diagnostic ([Error] severity by default). *)

val error :
  ?pos:pos -> ?hint:string -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warning :
  ?pos:pos -> ?hint:string -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val fail :
  ?pos:pos -> ?hint:string -> string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Fail} with a formatted error diagnostic. *)

val is_error : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Tkr_obs.Json.t

val count_errors : ?werror:bool -> t list -> int
(** Number of error diagnostics; with [~werror:true] warnings count too. *)

val sort : t list -> t list
(** Errors first, then warnings/infos, each group ordered by code, then
    by source position (positioned before unpositioned). *)

val report_to_text : t list -> string
val report_to_json : t list -> Tkr_obs.Json.t

val registry : (string * string) list
(** Every stable code with a one-line description. *)

val describe : string -> string option
