(** Pass 3: snapshot-semantics linter.

    Given a {e logical} plan and a capability profile describing how an
    evaluation style compiles temporal operators, statically predict the
    paper's snapshot-semantics violations:

    - TKR301 — the AG bug (Sections 1, 6): ungrouped aggregation under a
      style with no gap coverage returns no rows over gaps instead of the
      aggregate's neutral snapshot value;
    - TKR302 — the BD bug (Sections 3, 7): bag difference compiled as an
      anti-join / [NOT EXISTS], which erases multiplicities;
    - TKR303 — difference not supported at all by the style;
    - TKR304 — the style leaves output uncoalesced, so the produced
      encoding is not unique (Section 8).

    Pointing the four built-in profiles at plans with aggregation and
    difference reproduces the paper's Table 1 bug matrix statically. *)

open Tkr_relation

type difference_style =
  | Bag  (** faithful bag difference (monus) *)
  | Set  (** compiled as anti-join / NOT EXISTS: the BD bug *)
  | Unsupported  (** the style rejects difference outright *)

type profile = {
  prof_name : string;
  gap_coverage : bool;
      (** ungrouped aggregates produce rows over gaps (Section 6) *)
  difference : difference_style;
  coalesced_output : bool;  (** outputs are K-coalesced (Section 8) *)
}

(* The paper's Table 1, as capability profiles.  [middleware] is this
   repo's REWR pipeline; the other three mirror lib/baseline. *)

let middleware =
  {
    prof_name = "middleware";
    gap_coverage = true;
    difference = Bag;
    coalesced_output = true;
  }

let interval_preservation =
  {
    prof_name = "interval-preservation";
    gap_coverage = false;
    difference = Set;
    coalesced_output = false;
  }

let alignment =
  {
    prof_name = "alignment";
    gap_coverage = false;
    difference = Set;
    coalesced_output = false;
  }

let teradata =
  {
    prof_name = "teradata";
    gap_coverage = false;
    difference = Unsupported;
    coalesced_output = false;
  }

let profiles = [ middleware; interval_preservation; alignment; teradata ]

let of_name n =
  List.find_opt (fun p -> String.equal p.prof_name n) profiles

(** Lint a logical plan under [profile]. *)
let plan (profile : profile) (q : Algebra.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let rec go (q : Algebra.t) =
    (match q with
    | Algebra.Agg ([], _, _) when not profile.gap_coverage ->
        add
          (Diagnostic.error "TKR301"
             ~hint:
               "snapshots in gaps must see the aggregate's value over the \
                empty bag (Section 6); rewrite with gap coverage \
                (Split_agg with sa_gap) or use the middleware"
             "AG bug: %s evaluates ungrouped aggregation with no rows over \
              gaps"
             profile.prof_name)
    | Algebra.Diff _ -> (
        match profile.difference with
        | Bag -> ()
        | Set ->
            add
              (Diagnostic.error "TKR302"
                 ~hint:
                   "EXCEPT ALL must subtract multiplicities per snapshot \
                    (Section 3); an anti-join removes every duplicate"
                 "BD bug: %s compiles difference as NOT EXISTS (set \
                  semantics)"
                 profile.prof_name)
        | Unsupported ->
            add
              (Diagnostic.error "TKR303"
                 "%s does not support snapshot difference" profile.prof_name))
    | _ -> ());
    match q with
    | Algebra.Rel _ | Algebra.ConstRel _ -> ()
    | Algebra.Select (_, q0)
    | Algebra.Project (_, q0)
    | Algebra.Agg (_, _, q0)
    | Algebra.Distinct q0
    | Algebra.Coalesce q0 ->
        go q0
    | Algebra.Join (_, l, r)
    | Algebra.Union (l, r)
    | Algebra.Diff (l, r)
    | Algebra.Split (_, l, r) ->
        go l;
        go r
    | Algebra.Split_agg sa -> go sa.sa_child
  in
  go q;
  if not profile.coalesced_output then
    add
      (Diagnostic.warning "TKR304"
         ~hint:
           "coalesce the result (eval_coalesced) to obtain the unique \
            K-coalesced encoding (Def. 8.2)"
         "%s leaves its output encoding uncoalesced" profile.prof_name);
  List.rev !diags
