(** Abstract interpretation over plans: interval and multiplicity-shape
    inference, the TKR4xx diagnostic family, and analysis-driven pruning.

    A bottom-up interpreter over {!Tkr_relation.Algebra.t} with two
    cooperating abstract domains ({!Domain}): per-column integer
    intervals with definite non-nullness (seeding the period columns of
    encoded relations from the database time bounds and refining through
    NULL-aware predicate analysis), and multiplicity shape
    (duplicate-freeness, coalescedness — the paper's K-coalesce,
    Def. 8.2).

    The analysis is purely structural: it never reads table contents, so
    its proofs remain valid for prepared plans across DML.  {!prune} is
    byte-identity-preserving on well-typed plans: the pruned plan
    produces the same rows in the same order as the original. *)

open Tkr_relation

type env = {
  lookup : Typecheck.lookup;  (** tolerant catalog *)
  is_period : string -> bool;
      (** base relations whose last two columns are the period encoding *)
  time_bounds : (int * int) option;
      (** [(tmin, tmax)]: every stored period endpoint lies within *)
  temporal : bool;
      (** analyzing a rewritten (period-encoded) plan: suppresses
          subsumption warnings (TKR403) on rewriter-generated predicates *)
}

val env :
  ?is_period:(string -> bool) ->
  ?time_bounds:int * int ->
  ?temporal:bool ->
  Typecheck.lookup ->
  env
(** Defaults: no period relations, no time bounds, non-temporal. *)

type fact = {
  schema : Schema.t option;  (** [None] when the subplan does not type *)
  empty : bool;  (** provably produces no rows *)
  cols : Domain.col array;
      (** per-column facts, positionally; [[||]] when unknown *)
  dup_free : bool;  (** provably duplicate-free *)
  coalesced : bool;
      (** [Coalesce] is provably the byte-identity on this output *)
  period : bool;  (** the last two columns are a period encoding *)
}

val analyze : env -> Algebra.t -> fact * Diagnostic.t list
(** Root fact plus all TKR4xx diagnostics (bottom-up order; TKR402 is
    appended when the whole plan is provably empty). *)

val diagnose : env -> Algebra.t -> Diagnostic.t list
(** Just the diagnostics of {!analyze}. *)

val prune : env -> Algebra.t -> Algebra.t
(** Byte-identity-preserving simplification driven by the analysis:
    provably-empty subplans collapse to empty constant relations,
    provably-idempotent [Distinct]/[Coalesce] are dropped, one-sided
    unions and differences shed their empty operand. *)

val render : env -> Algebra.t -> string
(** Indented per-operator rendering of the plan with the inferred facts
    ([time=[lo,hi)] windows, [empty], [dup-free], [coalesced]) for
    [EXPLAIN]. *)
