(** Typed diagnostics with stable [TKR] error codes.

    Every user-facing failure of the SQL front end, the middleware and the
    static analyzer ({!Typecheck}, {!Plan_check}, {!Lint}) is a value of
    {!t}: a stable code, a severity, an optional source position
    ([line:col] in the SQL text) and a message.  Diagnostics render as
    compiler-style text ([error[TKR101] at 1:8: ...]) and as JSON (via
    [Tkr_obs.Json]) for tooling. *)

type pos = { line : int; col : int }

let pp_pos ppf { line; col } = Format.fprintf ppf "%d:%d" line col

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  code : string;  (** stable code, e.g. ["TKR101"] *)
  severity : severity;
  pos : pos option;  (** position in the SQL source text, when known *)
  msg : string;
  hint : string option;  (** optional remediation hint *)
}

exception Fail of t

(* Build a diagnostic from a format string. *)
let v ?(severity = Error) ?pos ?hint code fmt =
  Format.kasprintf (fun msg -> { code; severity; pos; msg; hint }) fmt

let error ?pos ?hint code fmt = v ~severity:Error ?pos ?hint code fmt
let warning ?pos ?hint code fmt = v ~severity:Warning ?pos ?hint code fmt

(* Raise [Fail] with a formatted error diagnostic. *)
let fail ?pos ?hint code fmt =
  Format.kasprintf
    (fun msg -> raise (Fail { code; severity = Error; pos; msg; hint }))
    fmt

let is_error d = d.severity = Error

let pp ppf d =
  Format.fprintf ppf "%s[%s]" (severity_name d.severity) d.code;
  (match d.pos with Some p -> Format.fprintf ppf " at %a" pp_pos p | None -> ());
  Format.fprintf ppf ": %s" d.msg;
  match d.hint with
  | Some h -> Format.fprintf ppf " (hint: %s)" h
  | None -> ()

let to_string d = Format.asprintf "%a" pp d

let to_json d : Tkr_obs.Json.t =
  let open Tkr_obs.Json in
  Obj
    ([ ("code", Str d.code); ("severity", Str (severity_name d.severity)) ]
    @ (match d.pos with
      | Some p ->
          [ ("line", Int p.line); ("col", Int p.col) ]
      | None -> [])
    @ [ ("message", Str d.msg) ]
    @ match d.hint with Some h -> [ ("hint", Str h) ] | None -> [])

(* ---- reports: lists of diagnostics ---- *)

let count_errors ?(werror = false) (ds : t list) =
  List.length
    (List.filter (fun d -> is_error d || (werror && d.severity = Warning)) ds)

let sort (ds : t list) : t list =
  let sev_rank = function Error -> 0 | Warning -> 1 | Info -> 2 in
  (* positioned diagnostics first (in source order), unpositioned last,
     so multi-statement lint reports are deterministic and readable *)
  let pos_key = function
    | Some { line; col } -> (0, line, col)
    | None -> (1, 0, 0)
  in
  List.stable_sort
    (fun a b ->
      match Int.compare (sev_rank a.severity) (sev_rank b.severity) with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 -> (
              match compare (pos_key a.pos) (pos_key b.pos) with
              | 0 -> String.compare a.msg b.msg
              | c -> c)
          | c -> c)
      | c -> c)
    ds

let report_to_text (ds : t list) : string =
  match ds with
  | [] -> "OK: no diagnostics"
  | ds ->
      let errs = count_errors ds and all = List.length ds in
      Format.asprintf "@[<v>%a@,%d diagnostic%s (%d error%s)@]"
        Fmt.(list ~sep:(any "@,") pp)
        (sort ds) all
        (if all = 1 then "" else "s")
        errs
        (if errs = 1 then "" else "s")

let report_to_json (ds : t list) : Tkr_obs.Json.t =
  let open Tkr_obs.Json in
  Obj
    [
      ("errors", Int (count_errors ds));
      ("warnings",
       Int (List.length (List.filter (fun d -> d.severity = Warning) ds)));
      ("diagnostics", List (List.map to_json (sort ds)));
    ]

(* ---- the code registry ---- *)

(** Every stable code with a one-line description.  The golden test suite
    asserts each registered code is triggered at least once. *)
let registry : (string * string) list =
  [
    (* front end: names, syntax, statement shape *)
    ("TKR001", "unknown column");
    ("TKR002", "ambiguous column reference");
    ("TKR003", "unknown table");
    ("TKR004", "syntax error");
    ("TKR005", "lexical error");
    ("TKR010", "misplaced SEQ VT block");
    ("TKR011", "set-operation branches have incompatible schemas");
    ("TKR012", "IN list elements must be literals");
    ("TKR013", "aggregate call not allowed in this context");
    ("TKR014", "malformed aggregate call");
    ("TKR015", "unknown aggregate function");
    ("TKR016", "HAVING without GROUP BY or aggregates");
    ("TKR017", "column must appear in GROUP BY or an aggregate");
    ("TKR018", "SELECT * cannot be combined with GROUP BY");
    ("TKR019", "invalid ORDER BY item");
    ("TKR020", "table under SEQ VT is not a period table");
    ("TKR021", "statement kind mismatch");
    ("TKR022", "INSERT arity mismatch");
    ("TKR023", "INSERT values must be literals");
    ("TKR024", "invalid PERIOD declaration");
    ("TKR025", "invalid FOR PORTION OF");
    (* type checking (pass 1) *)
    ("TKR101", "arithmetic on non-numeric operand");
    ("TKR102", "comparison between incompatible types");
    ("TKR103", "condition is not boolean");
    ("TKR104", "LIKE on non-string operand");
    ("TKR105", "IN list element type incompatible with subject");
    ("TKR106", "CASE branches have incompatible types");
    ("TKR107", "aggregate over non-numeric input");
    ("TKR108", "union/difference operands have incompatible schemas");
    ("TKR109", "column reference out of range");
    ("TKR110", "comparison with NULL literal is always UNKNOWN");
    (* plan invariants (pass 2) *)
    ("TKR201", "physical operator in logical plan");
    ("TKR202", "encoded relation must end with two int period columns");
    ("TKR203", "split group index out of range");
    ("TKR204", "rewritten difference operands must be aligned split pairs");
    ("TKR205", "rewritten aggregation input must be endpoint-split");
    ("TKR206", "plan output is not coalesced");
    ("TKR207", "ungrouped split-aggregate must cover the time domain");
    (* snapshot-semantics lint (pass 3) *)
    ("TKR301", "AG bug: ungrouped aggregation without gap coverage");
    ("TKR302", "BD bug: difference compiled as NOT EXISTS / set semantics");
    ("TKR303", "snapshot difference unsupported in this style");
    ("TKR304", "output encoding is not coalesced (no unique encoding)");
    (* abstract interpretation (pass 4, {!Absint}) *)
    ("TKR401", "selection predicate is unsatisfiable");
    ("TKR402", "query provably returns no rows");
    ("TKR403", "selection conjunct implied by inferred bounds");
    ("TKR404", "DISTINCT over provably duplicate-free input");
    ("TKR405", "COALESCE over provably coalesced input");
    ("TKR406", "join predicate is unsatisfiable");
    ("TKR407", "selection admits only degenerate periods");
    ("TKR408", "AS OF timeslice outside the stored time bounds");
  ]

let describe code = List.assoc_opt code registry

let () =
  Printexc.register_printer (function
    | Fail d -> Some (to_string d)
    | _ -> None)
