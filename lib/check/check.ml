(** Analyzer driver: combine the passes for the two plan stages.

    The middleware runs {!logical} on the analyzer's output (and again on
    the optimizer's output — the optimizer's semantics-preservation claim
    becomes a machine-checked postcondition) and {!physical} on the REWR
    output, all under the obs-timed [check] phase. *)

open Tkr_relation

(** Type-check plus logical plan invariants plus abstract
    interpretation.  [absint] defaults to a bare non-temporal
    environment derived from [lookup]. *)
let logical ?absint ~(lookup : Typecheck.lookup) (q : Algebra.t) :
    Diagnostic.t list =
  let env =
    match absint with Some e -> e | None -> Absint.env lookup
  in
  Typecheck.algebra ~lookup q @ Plan_check.logical q @ Absint.diagnose env q

(** Type-check plus physical (period-encoding) plan invariants plus
    abstract interpretation.  [lookup] must give the encoded base-table
    schemas; [absint] defaults to a temporal environment derived from
    [lookup] (no period seeding — pass a real environment for bounds). *)
let physical ?absint ~(lookup : Typecheck.lookup) (q : Algebra.t) :
    Diagnostic.t list =
  let env =
    match absint with Some e -> e | None -> Absint.env ~temporal:true lookup
  in
  Typecheck.algebra ~lookup q
  @ Plan_check.physical ~lookup q
  @ Absint.diagnose env q

(** [verdict ~werror ds] is [Error ds] when [ds] contains an error (or,
    with [~werror:true], any warning), [Ok ds] otherwise. *)
let verdict ?(werror = false) (ds : Diagnostic.t list) :
    (Diagnostic.t list, Diagnostic.t list) result =
  if Diagnostic.count_errors ~werror ds > 0 then Error ds else Ok ds
