(** Pass 2: plan-invariant validation (TKR201–TKR207).

    Enforces the encoding contracts of {!Tkr_relation.Algebra} and the
    paper's Section 8: the last-two-int-column period convention, physical
    operators only in rewritten plans, split group indices in range,
    aligned split pairs under difference, endpoint-split aggregation input,
    coalesced roots and gap coverage for ungrouped aggregation. *)

open Tkr_relation

val logical : Algebra.t -> Diagnostic.t list
(** Pre-rewrite plans must not contain [Coalesce]/[Split]/[Split_agg]. *)

val physical : lookup:Typecheck.lookup -> Algebra.t -> Diagnostic.t list
(** Validate a rewritten plan over the period encoding.  [lookup] must
    give the {e encoded} base-table schemas (data plus [__b]/[__e]). *)
