(** Pass 1: type inference and checking over expressions and plans.

    Never raises: accumulates diagnostics (TKR101–TKR110 plus TKR003 for
    unknown relations) and keeps inferring with the best schema it has. *)

open Tkr_relation

type lookup = string -> Schema.t option
(** Tolerant catalog: [None] for unknown relations. *)

val comparable : Value.ty option -> Value.ty option -> bool
(** SQL comparability over the type lattice; [None] (NULL/unknown)
    compares with everything, int and float coerce. *)

val expr : schema:Schema.t -> Expr.t -> Value.ty option * Diagnostic.t list
(** Infer the type of an expression; [None] for NULL-valued ones. *)

val predicate : schema:Schema.t -> what:string -> Expr.t -> Diagnostic.t list
(** Check that an expression is well-typed and boolean ([what] names the
    context in the diagnostic). *)

val schema_of : lookup:lookup -> Algebra.t -> Schema.t option
(** Tolerant schema inference: [None] as soon as a subtree's schema cannot
    be determined.  Never raises, unlike {!Algebra.schema_of}. *)

val algebra : lookup:lookup -> Algebra.t -> Diagnostic.t list
(** Type-check a whole plan: every expression at every operator, aggregate
    signatures, union/difference schema compatibility. *)
