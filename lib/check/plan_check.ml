(** Pass 2: plan-invariant validation.

    Enforces the documented-but-previously-unchecked encoding contracts of
    {!Tkr_relation.Algebra} and the paper's Section 8:

    - logical plans contain no physical operators ([Coalesce], [Split],
      [Split_agg]) — those only appear after REWR (TKR201);
    - every operator of a rewritten (physical) plan produces the period
      encoding: at least two columns, the last two int-typed [__b]/[__e]
      (TKR202) — except the literal aggregation γ_{G∪{B,E}} of Fig. 4,
      whose enclosing projection restores the encoding and is checked
      in its place;
    - [Split]/[Split_agg] group indices reference data columns, never the
      period columns (TKR203);
    - a rewritten [Diff] takes mirrored split pairs
      [Diff (N_G(l, r), N_G(r, l))] so both sides are aligned on the same
      elementary intervals before the bag difference (TKR204);
    - a rewritten [Agg]/[Distinct] consumes endpoint-split input (TKR205);
    - the plan's root must coalesce, otherwise the output encoding is not
      unique (TKR206, warning);
    - an ungrouped [Split_agg] must carry [sa_gap = Some _] to cover the
      whole time domain — the paper's AG fix, Section 6 (TKR207). *)

open Tkr_relation

let physical_op_name : Algebra.t -> string option = function
  | Algebra.Coalesce _ -> Some "Coalesce"
  | Algebra.Split _ -> Some "Split"
  | Algebra.Split_agg _ -> Some "Split_agg"
  | _ -> None

(** Check a logical (pre-rewrite) plan: physical operators must not
    appear (TKR201). *)
let logical (q : Algebra.t) : Diagnostic.t list =
  let diags = ref [] in
  let rec go q =
    (match physical_op_name q with
    | Some op ->
        diags :=
          Diagnostic.error "TKR201"
            ~hint:"physical operators are introduced by the REWR rewrite only"
            "operator %s appears in a logical plan" op
          :: !diags
    | None -> ());
    match (q : Algebra.t) with
    | Rel _ | ConstRel _ -> ()
    | Select (_, q0) | Project (_, q0) | Distinct q0 | Coalesce q0 -> go q0
    | Join (_, l, r) | Union (l, r) | Diff (l, r) | Split (_, l, r) ->
        go l;
        go r
    | Agg (_, _, q0) -> go q0
    | Split_agg sa -> go sa.sa_child
  in
  go q;
  List.rev !diags

(* Does this node type's output end with two int period columns? *)
let encoded (s : Schema.t) =
  let n = Schema.arity s in
  n >= 2 && Schema.ty s (n - 2) = Value.TInt && Schema.ty s (n - 1) = Value.TInt

let op_label (q : Algebra.t) : string =
  match q with
  | Rel n -> Printf.sprintf "relation %s" n
  | ConstRel _ -> "constant relation"
  | Select _ -> "selection"
  | Project _ -> "projection"
  | Join _ -> "join"
  | Union _ -> "union"
  | Diff _ -> "difference"
  | Agg _ -> "aggregation"
  | Distinct _ -> "distinct"
  | Coalesce _ -> "coalesce"
  | Split _ -> "split"
  | Split_agg _ -> "split-aggregate"

(** Check a rewritten (physical) plan over the period encoding:
    TKR202–TKR207.  [lookup] must give the *encoded* base-table schemas
    (data columns plus [__b]/[__e]). *)
let physical ~(lookup : Typecheck.lookup) (q : Algebra.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let schema q = Typecheck.schema_of ~lookup q in
  let check_encoded q =
    match schema q with
    | None -> () (* unknown relation somewhere below: reported by pass 1 *)
    | Some s ->
        if not (encoded s) then
          add
            (Diagnostic.error "TKR202"
               ~hint:
                 "encoded relations carry their period as the last two int \
                  columns __b/__e"
               "%s output %a does not end with two int period columns"
               (op_label q) Schema.pp s)
  in
  (* The literal (non-fused) aggregation of Fig. 4 groups by G ∪ {B, E}:
     its own output carries the period among the group columns, and the
     projection above it restores the trailing-__b/__e encoding (which
     check_encoded enforces on that projection). *)
  let literal_agg (q : Algebra.t) =
    match q with
    | Agg (gs, _, (Split _ as child)) -> (
        match schema child with
        | None -> false
        | Some s ->
            let n = Schema.arity s in
            let has c =
              List.exists (fun (p : Algebra.proj) -> p.expr = Expr.Col c) gs
            in
            has (n - 2) && has (n - 1))
    | _ -> false
  in
  let check_group ~what ~child group =
    match schema child with
    | None -> ()
    | Some s ->
        (* group columns must be data columns: [0, arity - 2) *)
        let limit = Schema.arity s - 2 in
        List.iter
          (fun i ->
            if i < 0 || i >= limit then
              add
                (Diagnostic.error "TKR203"
                   "%s group index %d out of data-column range [0,%d)" what i
                   limit))
          group
  in
  let rec go (q : Algebra.t) =
    if not (literal_agg q) then check_encoded q;
    match q with
    | Rel _ | ConstRel _ -> ()
    | Select (_, q0) | Project (_, q0) | Coalesce q0 -> go q0
    | Join (_, l, r) | Union (l, r) ->
        go l;
        go r
    | Diff (l, r) ->
        (match (l, r) with
        | Split (gl, a, b), Split (gr, b', a')
          when gl = gr && a = a' && b = b' ->
            ()
        | _ ->
            add
              (Diagnostic.error "TKR204"
                 ~hint:
                   "rewrite R − S as Diff (N_G(R, S), N_G(S, R)) so both \
                    sides are split at the same endpoints (Fig. 4)"
                 "difference operands are not mirrored split pairs"));
        go l;
        go r
    | Agg (_, _, q0) ->
        (match q0 with
        | Split _ -> ()
        | _ ->
            add
              (Diagnostic.error "TKR205"
                 ~hint:
                   "a rewritten aggregation consumes N_G-split input so every \
                    elementary interval aggregates whole tuples (Fig. 4)"
                 "aggregation input is not endpoint-split"));
        go q0
    | Distinct q0 ->
        (match q0 with
        | Split _ -> ()
        | _ ->
            add
              (Diagnostic.error "TKR205"
                 ~hint:
                   "a rewritten DISTINCT consumes N_G(Q, Q)-split input \
                    (Fig. 4)"
                 "distinct input is not endpoint-split"));
        go q0
    | Split (g, l, r) ->
        check_group ~what:"split" ~child:l g;
        go l;
        go r
    | Split_agg sa ->
        check_group ~what:"split-aggregate" ~child:sa.sa_child sa.sa_group;
        if sa.sa_group = [] && sa.sa_gap = None then
          add
            (Diagnostic.error "TKR207"
               ~hint:
                 "ungrouped aggregation must produce rows over gaps \
                  (sa_gap = Some (tmin, tmax)); see Section 6 on the AG bug"
               "ungrouped split-aggregate does not cover the time domain");
        go sa.sa_child
  in
  go q;
  (match q with
  | Algebra.Coalesce _ -> ()
  | _ ->
      add
        (Diagnostic.warning "TKR206"
           ~hint:
             "wrap the plan in Coalesce: only K-coalesced output encodings \
              are unique (Def. 8.2)"
           "plan root is not a coalesce: output encoding may not be unique"));
  List.rev !diags
