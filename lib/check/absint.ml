(** Abstract interpretation over plans: interval and multiplicity-shape
    inference, the TKR4xx diagnostic family, and analysis-driven pruning.

    A bottom-up interpreter over {!Tkr_relation.Algebra.t} with two
    cooperating abstract domains, justified by the paper's
    snapshot-reducibility of the rewritten period-encoded plans
    (Sections 8–9):

    - {e time bounds / value intervals}: every column of every subplan is
      bounded by an interval ({!Domain.Itv}); the trailing
      [Abegin]/[Aend] columns of period-encoded relations are seeded from
      the database's time bounds and refined through selections and joins
      by NULL-aware predicate analysis (a conjunct can only keep a row
      when it evaluates to TRUE, so a comparison both implies membership
      in the constraint interval and non-nullness).  Contradictory
      predicates prove subplans empty (TKR401/TKR406, and TKR402 for a
      whole plan), conjuncts already implied by the inferred bounds are
      redundant (TKR403), and selections admitting only degenerate
      periods ([Abegin >= Aend]) are reported (TKR407).
    - {e multiplicity shape}: duplicate-freeness and coalescedness are
      proved structurally, making [Distinct] (TKR404) and [Coalesce]
      (TKR405 — the paper's K-coalesce, Def. 8.2) provably idempotent.

    {!prune} consumes the proofs: provably-empty subplans collapse to
    empty constant relations, idempotent [Distinct]/[Coalesce] nodes are
    dropped, and one-sided unions/differences shed their empty operand.
    Every rule preserves {e byte identity} on well-typed plans: the
    pruned and unpruned plans produce the same rows in the same order
    (the soundness bar the differential tests enforce).  The analysis is
    purely structural — it never reads table contents, so its proofs stay
    valid for prepared plans across DML (the same staleness model as the
    rewriter's baked-in time bounds, guarded by the middleware epoch). *)

open Tkr_relation

type env = {
  lookup : Typecheck.lookup;  (** tolerant catalog *)
  is_period : string -> bool;
      (** base relations whose last two columns are the period encoding *)
  time_bounds : (int * int) option;
      (** [(tmin, tmax)]: every stored period endpoint lies within *)
  temporal : bool;
      (** analyzing a rewritten (period-encoded) plan: suppresses
          subsumption warnings on rewriter-generated predicates *)
}

let env ?(is_period = fun _ -> false) ?time_bounds ?(temporal = false)
    (lookup : Typecheck.lookup) : env =
  { lookup; is_period; time_bounds; temporal }

type fact = {
  schema : Schema.t option;  (** [None] when the subplan does not type *)
  empty : bool;  (** provably produces no rows *)
  cols : Domain.col array;
      (** per-column facts, positionally; [[||]] when unknown *)
  dup_free : bool;  (** provably duplicate-free *)
  coalesced : bool;
      (** [Coalesce] is provably the byte-identity on this output *)
  period : bool;  (** the last two columns are a period encoding *)
}

(* ---- predicate analysis ---- *)

(* [Col i op k] or [k op Col i], normalized to the column on the left *)
let col_cmp (e : Expr.t) : (int * Expr.cmp * int) option =
  let flip : Expr.cmp -> Expr.cmp = function
    | Expr.Lt -> Expr.Gt
    | Expr.Le -> Expr.Ge
    | Expr.Gt -> Expr.Lt
    | Expr.Ge -> Expr.Le
    | (Expr.Eq | Expr.Ne) as op -> op
  in
  match e with
  | Expr.Cmp (op, Expr.Col i, Expr.Const (Value.Int k)) -> Some (i, op, k)
  | Expr.Cmp (op, Expr.Const (Value.Int k), Expr.Col i) -> Some (i, flip op, k)
  | _ -> None

(* the interval a TRUE comparison confines the column to *)
let constraint_itv (op : Expr.cmp) (k : int) : Domain.Itv.t =
  match op with
  | Expr.Eq -> Domain.Itv.singleton k
  | Expr.Lt -> Domain.Itv.at_most (k - 1)
  | Expr.Le -> Domain.Itv.at_most k
  | Expr.Gt -> Domain.Itv.at_least (k + 1)
  | Expr.Ge -> Domain.Itv.at_least k
  | Expr.Ne -> Domain.Itv.top

type refined = {
  rcols : Domain.col array;
  unsat : bool;  (** the predicate can never evaluate to TRUE *)
  redundant : Expr.t list;
      (** conjuncts implied by the facts established before them *)
}

(* Fold the (constant-folded) conjuncts left-to-right into the column
   facts.  Sound in three-valued logic: a selection keeps a row only when
   the whole conjunction is TRUE, so every conjunct is TRUE, so a
   comparison against a constant both bounds the column and proves it
   non-null.  Unsatisfiability of any single column refutes the whole
   selection even for nullable columns (NULL rows yield UNKNOWN and are
   filtered anyway). *)
let refine (cols : Domain.col array) (pred : Expr.t) : refined =
  let cols = Array.copy cols in
  let n = Array.length cols in
  let unsat = ref false in
  let redundant = ref [] in
  List.iter
    (fun conjunct ->
      match conjunct with
      | Expr.Const (Value.Bool false) | Expr.Const Value.Null -> unsat := true
      | Expr.Is_null (Expr.Col i) when i < n ->
          if cols.(i).Domain.nonnull then unsat := true
      | Expr.Not (Expr.Is_null (Expr.Col i)) when i < n ->
          if cols.(i).Domain.nonnull then redundant := conjunct :: !redundant
          else cols.(i) <- { (cols.(i)) with Domain.nonnull = true }
      | Expr.In_list (Expr.Col i, vs)
        when i < n && vs <> []
             && List.for_all
                  (function Value.Int _ -> true | _ -> false)
                  vs ->
          let hull =
            List.fold_left
              (fun acc v ->
                match v with
                | Value.Int k -> Domain.Itv.join acc (Domain.Itv.singleton k)
                | _ -> acc)
              Domain.Itv.bot vs
          in
          cols.(i) <-
            { Domain.itv = Domain.Itv.meet cols.(i).Domain.itv hull;
              nonnull = true }
      | conjunct -> (
          match col_cmp conjunct with
          | Some (i, Expr.Ne, k) when i < n ->
              let cur = cols.(i) in
              if cur.Domain.itv = Domain.Itv.singleton k then unsat := true
              else if
                cur.Domain.nonnull && not (Domain.Itv.mem k cur.Domain.itv)
              then redundant := conjunct :: !redundant;
              cols.(i) <- { cur with Domain.nonnull = true }
          | Some (i, op, k) when i < n ->
              let cur = cols.(i) in
              let c = constraint_itv op k in
              if cur.Domain.nonnull && Domain.Itv.subset cur.Domain.itv c then
                redundant := conjunct :: !redundant;
              cols.(i) <-
                { Domain.itv = Domain.Itv.meet cur.Domain.itv c;
                  nonnull = true }
          | _ -> ()))
    (Expr.conjuncts (Simplify.fold_expr pred));
  {
    rcols = cols;
    unsat = !unsat || Array.exists Domain.col_impossible cols;
    redundant = List.rev !redundant;
  }

(* abstract value of a projection/grouping expression *)
let rec expr_fact (cols : Domain.col array) (e : Expr.t) : Domain.col =
  match e with
  | Expr.Col i when i < Array.length cols -> cols.(i)
  | Expr.Const (Value.Int k) ->
      { Domain.itv = Domain.Itv.singleton k; nonnull = true }
  | Expr.Const Value.Null -> Domain.col_top
  | Expr.Const _ -> { Domain.col_top with Domain.nonnull = true }
  | Expr.Greatest (a, b) ->
      let fa = expr_fact cols a and fb = expr_fact cols b in
      {
        Domain.itv =
          {
            Domain.Itv.lo = Domain.Itv.max_lo fa.Domain.itv.Domain.Itv.lo fb.Domain.itv.Domain.Itv.lo;
            hi = Domain.Itv.max_hi fa.Domain.itv.Domain.Itv.hi fb.Domain.itv.Domain.Itv.hi;
          };
        nonnull = fa.Domain.nonnull && fb.Domain.nonnull;
      }
  | Expr.Least (a, b) ->
      let fa = expr_fact cols a and fb = expr_fact cols b in
      {
        Domain.itv =
          {
            Domain.Itv.lo = Domain.Itv.min_lo fa.Domain.itv.Domain.Itv.lo fb.Domain.itv.Domain.Itv.lo;
            hi = Domain.Itv.min_hi fa.Domain.itv.Domain.Itv.hi fb.Domain.itv.Domain.Itv.hi;
          };
        nonnull = fa.Domain.nonnull && fb.Domain.nonnull;
      }
  | _ -> Domain.col_top

(* abstract value of an aggregate output; groups are never empty, but any
   aggregate except count can still be NULL (all-NULL group), and a
   gap-covering split-aggregate emits count 0 / NULL for gaps *)
let agg_fact (cols : Domain.col array) (f : Agg.func) : Domain.col =
  match f with
  | Agg.Count_star | Agg.Count _ ->
      { Domain.itv = Domain.Itv.at_least 0; nonnull = true }
  | Agg.Min (Expr.Col i) | Agg.Max (Expr.Col i) when i < Array.length cols ->
      { (cols.(i)) with Domain.nonnull = false }
  | _ -> Domain.col_top

(* ---- seeding ---- *)

let seed_rel (env : env) (name : string) (s : Schema.t) : Domain.col array =
  let n = Schema.arity s in
  let period = env.is_period name in
  Array.init n (fun i ->
      if period && i >= n - 2 then
        match env.time_bounds with
        | Some (tmin, tmax) ->
            { Domain.itv = Domain.Itv.of_bounds tmin tmax; nonnull = true }
        | None -> { Domain.col_top with Domain.nonnull = true }
      else Domain.col_top)

let seed_const (s : Schema.t) (ts : Tuple.t list) : Domain.col array =
  Array.init (Schema.arity s) (fun i ->
      List.fold_left
        (fun (c : Domain.col) t ->
          match Tuple.get t i with
          | Value.Int k ->
              { c with Domain.itv = Domain.Itv.join c.Domain.itv (Domain.Itv.singleton k) }
          | Value.Null -> { c with Domain.nonnull = false }
          | _ -> { c with Domain.itv = Domain.Itv.top })
        { Domain.itv = Domain.Itv.bot; nonnull = true }
        ts)

(* ---- rendering ---- *)

let label (q : Algebra.t) : string =
  match q with
  | Algebra.Rel n -> n
  | ConstRel (_, ts) -> Printf.sprintf "const[%d rows]" (List.length ts)
  | Select (p, _) -> Format.asprintf "σ[%a]" Expr.pp p
  | Project (ps, _) -> Printf.sprintf "Π[%d cols]" (List.length ps)
  | Join _ -> "⋈"
  | Union _ -> "∪"
  | Diff _ -> "−"
  | Agg (g, a, _) ->
      Printf.sprintf "γ[%d group%s; %d agg%s]" (List.length g)
        (if List.length g = 1 then "" else "s")
        (List.length a)
        (if List.length a = 1 then "" else "s")
  | Distinct _ -> "δ"
  | Coalesce _ -> "C"
  | Split (g, _, _) ->
      Format.asprintf "N[%a]" Fmt.(list ~sep:(any ",") int) g
  | Split_agg sa ->
      Printf.sprintf "Nγ[%d group%s; %d agg%s%s]" (List.length sa.sa_group)
        (if List.length sa.sa_group = 1 then "" else "s")
        (List.length sa.sa_aggs)
        (if List.length sa.sa_aggs = 1 then "" else "s")
        (match sa.sa_gap with Some _ -> "; gaps" | None -> "")

(* the inferred time window [Abegin.lo, Aend.hi) of a period-encoded
   output, when either bound is known *)
let time_window (f : fact) : (int option * int option) option =
  if not f.period then None
  else
    match f.schema with
    | Some s when Schema.arity s >= 2 && Array.length f.cols = Schema.arity s
      ->
        let n = Schema.arity s in
        let lo = f.cols.(n - 2).Domain.itv.Domain.Itv.lo in
        let hi = f.cols.(n - 1).Domain.itv.Domain.Itv.hi in
        if lo = None && hi = None then None else Some (lo, hi)
    | _ -> None

let annot (f : fact) : string =
  let parts = ref [] in
  let add s = parts := s :: !parts in
  (match time_window f with
  | Some (lo, hi) ->
      let b inf = function Some k -> string_of_int k | None -> inf in
      add (Printf.sprintf "time=[%s,%s)" (b "-inf" lo) (b "+inf" hi))
  | None -> ());
  if f.empty then add "empty";
  if f.dup_free then add "dup-free";
  if f.coalesced then add "coalesced";
  match List.rev !parts with
  | [] -> ""
  | ps -> "  " ^ String.concat " " ps

(* ---- the interpreter ---- *)

type out = {
  fact : fact;
  pruned : Algebra.t;
  diags : Diagnostic.t list;  (** bottom-up, children first *)
  lines : (int * string) list;  (** depth-tagged render of the original *)
}

(* degenerate encoding: every surviving row would need Abegin >= Aend *)
let degenerate_period (f : fact) : bool =
  f.period
  && (match f.schema with
     | Some s ->
         let n = Schema.arity s in
         n >= 2
         && Array.length f.cols = n
         && (match
               ( f.cols.(n - 2).Domain.itv.Domain.Itv.lo,
                 f.cols.(n - 1).Domain.itv.Domain.Itv.hi )
             with
            | Some bl, Some eh -> bl >= eh
            | _ -> false)
     | None -> false)

(* keep [want]'s output names when replacing a union by its surviving
   operand (the engine takes a union's schema from the left side) *)
let rename_like (want : Schema.t option) (have : Schema.t option)
    (q : Algebra.t) : Algebra.t option =
  match (want, have) with
  | Some w, Some h when Schema.equal w h -> Some q
  | Some w, Some h when Schema.arity w = Schema.arity h ->
      Some
        (Algebra.Project
           ( List.mapi
               (fun i (a : Schema.attr) -> Algebra.proj (Expr.Col i) a.name)
               (Schema.attrs w),
             q ))
  | _ -> None

(* finish one node: apply the provably-empty collapse, emit its render
   line above its children's *)
let node (q : Algebra.t) (fact : fact) (pruned : Algebra.t)
    (diags : Diagnostic.t list) (kids_lines : (int * string) list) : out =
  let pruned =
    if fact.empty then
      match (fact.schema, pruned) with
      | _, Algebra.ConstRel (_, []) -> pruned
      | Some s, _ -> Algebra.ConstRel (s, [])
      | None, _ -> pruned
    else pruned
  in
  {
    fact;
    pruned;
    diags;
    lines =
      (0, label q ^ annot fact)
      :: List.map (fun (d, s) -> (d + 1, s)) kids_lines;
  }

let rec go (env : env) (q : Algebra.t) : out =
  let sch = Typecheck.schema_of ~lookup:env.lookup q in
  match q with
  | Algebra.Rel name ->
      let cols =
        match sch with Some s -> seed_rel env name s | None -> [||]
      in
      node q
        { schema = sch; empty = false; cols; dup_free = false;
          coalesced = false; period = env.is_period name }
        q [] []
  | ConstRel (s, ts) ->
      let dup_free =
        List.length (List.sort_uniq Tuple.compare ts) = List.length ts
      in
      node q
        { schema = Some s; empty = ts = []; cols = seed_const s ts; dup_free;
          coalesced = ts = []; period = false }
        q [] []
  | Select (p, q0) ->
      let c = go env q0 in
      let f0 = c.fact in
      let r = refine f0.cols p in
      let data_only =
        match sch with
        | Some s ->
            List.for_all (fun i -> i < Schema.arity s - 2) (Expr.cols p)
        | None -> false
      in
      let fact =
        { schema = sch; empty = f0.empty || r.unsat; cols = r.rcols;
          dup_free = f0.dup_free; coalesced = f0.coalesced && data_only;
          period = f0.period }
      in
      let own =
        if f0.empty then []
        else if r.unsat then
          [
            Diagnostic.warning "TKR401"
              ~hint:"the predicate can never evaluate to TRUE, so the \
                     selection returns no rows"
              "selection predicate %a is unsatisfiable" Expr.pp p;
          ]
        else
          (if env.temporal then []
           else
             List.map
               (fun conjunct ->
                 Diagnostic.warning "TKR403"
                   ~hint:"the conjunct is implied by the inferred value \
                          bounds and can be dropped"
                   "selection conjunct %a is redundant" Expr.pp conjunct)
               r.redundant)
          @
          if degenerate_period fact && not (degenerate_period f0) then
            [
              Diagnostic.warning "TKR407"
                ~hint:"the inferred bounds force Abegin >= Aend, which no \
                       stored period satisfies"
                "selection %a admits only degenerate periods" Expr.pp p;
            ]
          else []
      in
      node q fact (Algebra.Select (p, c.pruned)) (c.diags @ own) c.lines
  | Project (ps, q0) ->
      let c = go env q0 in
      let f0 = c.fact in
      let cols =
        Array.of_list
          (List.map (fun (p : Algebra.proj) -> expr_fact f0.cols p.expr) ps)
      in
      let covers_child =
        f0.dup_free
        &&
        match f0.schema with
        | Some s ->
            let bare =
              List.filter_map
                (fun (p : Algebra.proj) ->
                  match p.expr with Expr.Col i -> Some i | _ -> None)
                ps
            in
            List.for_all
              (fun i -> List.mem i bare)
              (List.init (Schema.arity s) Fun.id)
        | None -> false
      in
      let period =
        f0.period
        &&
        match f0.schema with
        | Some s -> (
            let nc = Schema.arity s in
            match List.rev ps with
            | pe :: pb :: _ ->
                pb.Algebra.expr = Expr.Col (nc - 2)
                && pe.Algebra.expr = Expr.Col (nc - 1)
            | _ -> false)
        | None -> false
      in
      node q
        { schema = sch; empty = f0.empty; cols; dup_free = covers_child;
          coalesced = false; period }
        (Algebra.Project (ps, c.pruned))
        c.diags c.lines
  | Join (p, l, r) ->
      let lo = go env l and ro = go env r in
      let fl = lo.fact and fr = ro.fact in
      let cols0 =
        match (fl.schema, fr.schema) with
        | Some sl, Some sr
          when Array.length fl.cols = Schema.arity sl
               && Array.length fr.cols = Schema.arity sr ->
            Array.append fl.cols fr.cols
        | _ -> [||]
      in
      let rf = refine cols0 p in
      let sides_empty = fl.empty || fr.empty in
      let own =
        if rf.unsat && not sides_empty then
          [
            Diagnostic.warning "TKR406"
              ~hint:"the predicate can never evaluate to TRUE, so the join \
                     produces no rows"
              "join predicate %a is unsatisfiable" Expr.pp p;
          ]
        else []
      in
      node q
        { schema = sch; empty = sides_empty || rf.unsat; cols = rf.rcols;
          dup_free = fl.dup_free && fr.dup_free; coalesced = false;
          period = fr.period }
        (Algebra.Join (p, lo.pruned, ro.pruned))
        (lo.diags @ ro.diags @ own)
        (lo.lines @ ro.lines)
  | Union (l, r) ->
      let lo = go env l and ro = go env r in
      let fl = lo.fact and fr = ro.fact in
      let fact =
        if fl.empty then { fr with schema = sch }
        else if fr.empty then { fl with schema = sch }
        else
          let cols =
            if
              Array.length fl.cols > 0
              && Array.length fl.cols = Array.length fr.cols
            then Array.map2 Domain.col_join fl.cols fr.cols
            else [||]
          in
          { schema = sch; empty = false; cols; dup_free = false;
            coalesced = false; period = fl.period && fr.period }
      in
      let pruned =
        if fl.empty && not fr.empty then
          match rename_like sch fr.schema ro.pruned with
          | Some p -> p
          | None -> Algebra.Union (lo.pruned, ro.pruned)
        else if fr.empty && not fl.empty then lo.pruned
        else Algebra.Union (lo.pruned, ro.pruned)
      in
      node q fact pruned (lo.diags @ ro.diags) (lo.lines @ ro.lines)
  | Diff (l, r) ->
      let lo = go env l and ro = go env r in
      let fl = lo.fact and fr = ro.fact in
      let pruned =
        if fr.empty then lo.pruned
        else Algebra.Diff (lo.pruned, ro.pruned)
      in
      node q
        { schema = sch; empty = fl.empty; cols = fl.cols;
          dup_free = fl.dup_free; coalesced = fl.coalesced && fr.empty;
          period = fl.period }
        pruned (lo.diags @ ro.diags) (lo.lines @ ro.lines)
  | Agg (group, aggs, q0) ->
      let c = go env q0 in
      let f0 = c.fact in
      let gcols =
        List.map (fun (p : Algebra.proj) -> expr_fact f0.cols p.expr) group
      in
      let acols =
        List.map
          (fun (a : Algebra.agg_spec) -> agg_fact f0.cols a.func)
          aggs
      in
      node q
        { schema = sch;
          (* aggregation without GROUP BY yields one row even on empty
             input, so emptiness only propagates through grouped forms *)
          empty = f0.empty && group <> [];
          cols = Array.of_list (gcols @ acols); dup_free = true;
          coalesced = false; period = false }
        (Algebra.Agg (group, aggs, c.pruned))
        c.diags c.lines
  | Distinct q0 ->
      let c = go env q0 in
      let f0 = c.fact in
      let own =
        if f0.dup_free && not f0.empty then
          [
            Diagnostic.warning "TKR404"
              ~hint:"the input is provably duplicate-free, so DISTINCT is \
                     a no-op"
              "DISTINCT over provably duplicate-free input";
          ]
        else []
      in
      if f0.dup_free then node q f0 c.pruned (c.diags @ own) c.lines
      else
        node q
          { f0 with schema = sch; dup_free = true; coalesced = false }
          (Algebra.Distinct c.pruned)
          (c.diags @ own) c.lines
  | Coalesce q0 ->
      let c = go env q0 in
      let f0 = c.fact in
      let own =
        if f0.coalesced && not f0.empty then
          [
            Diagnostic.warning "TKR405"
              ~hint:"the input is provably coalesced (Def. 8.2), so \
                     COALESCE is a no-op"
              "COALESCE over provably coalesced input";
          ]
        else []
      in
      if f0.coalesced then node q f0 c.pruned (c.diags @ own) c.lines
      else
        node q
          { schema = sch; empty = f0.empty; cols = f0.cols; dup_free = false;
            coalesced = true; period = true }
          (Algebra.Coalesce c.pruned)
          (c.diags @ own) c.lines
  | Split (g, l, r) ->
      let lo = go env l in
      let ro = if r == l then lo else go env r in
      let fl = lo.fact in
      let cols =
        (* fragments stay within the original interval, so both endpoint
           columns lie in the left input's [Abegin.lo, Aend.hi] window *)
        let n = Array.length fl.cols in
        if fl.period && n >= 2 then (
          let w =
            {
              Domain.Itv.lo = fl.cols.(n - 2).Domain.itv.Domain.Itv.lo;
              hi = fl.cols.(n - 1).Domain.itv.Domain.Itv.hi;
            }
          in
          let a = Array.copy fl.cols in
          a.(n - 2) <- { (a.(n - 2)) with Domain.itv = w };
          a.(n - 1) <- { (a.(n - 1)) with Domain.itv = w };
          a)
        else fl.cols
      in
      let pruned =
        if r == l then
          let l' = lo.pruned in
          Algebra.Split (g, l', l')
        else Algebra.Split (g, lo.pruned, ro.pruned)
      in
      node q
        { schema = sch; empty = fl.empty; cols; dup_free = false;
          coalesced = false; period = fl.period }
        pruned
        (if r == l then lo.diags else lo.diags @ ro.diags)
        (lo.lines @ ro.lines)
  | Split_agg sa ->
      let c = go env sa.sa_child in
      let f0 = c.fact in
      let window =
        let base =
          let n = Array.length f0.cols in
          if f0.period && n >= 2 then
            {
              Domain.Itv.lo = f0.cols.(n - 2).Domain.itv.Domain.Itv.lo;
              hi = f0.cols.(n - 1).Domain.itv.Domain.Itv.hi;
            }
          else Domain.Itv.top
        in
        match sa.sa_gap with
        | Some (tmin, tmax) ->
            Domain.Itv.join base (Domain.Itv.of_bounds tmin tmax)
        | None -> base
      in
      let gcols =
        List.map
          (fun i ->
            if i < Array.length f0.cols then f0.cols.(i) else Domain.col_top)
          sa.sa_group
      in
      let acols =
        List.map
          (fun (a : Algebra.agg_spec) -> agg_fact f0.cols a.func)
          sa.sa_aggs
      in
      let pcol = { Domain.itv = window; nonnull = true } in
      node q
        { schema = sch;
          (* a gap-covering split-aggregate emits rows over the whole
             domain even on empty input *)
          empty = f0.empty && sa.sa_gap = None;
          cols = Array.of_list (gcols @ acols @ [ pcol; pcol ]);
          dup_free = true; coalesced = false; period = true }
        (Algebra.Split_agg { sa with sa_child = c.pruned })
        c.diags c.lines

(* ---- public API ---- *)

let analyze (env : env) (q : Algebra.t) : fact * Diagnostic.t list =
  let o = go env q in
  let ds =
    if o.fact.empty then
      o.diags
      @ [
          Diagnostic.warning "TKR402"
            ~hint:"a contradictory predicate or empty operand makes the \
                   whole plan empty"
            "query provably returns no rows";
        ]
    else o.diags
  in
  (o.fact, ds)

let diagnose (env : env) (q : Algebra.t) : Diagnostic.t list =
  snd (analyze env q)

let prune (env : env) (q : Algebra.t) : Algebra.t = (go env q).pruned

let render (env : env) (q : Algebra.t) : string =
  let o = go env q in
  String.concat "\n"
    (List.map (fun (d, s) -> String.make (2 * d) ' ' ^ s) o.lines)
