(** Abstract domains shared by the plan-level abstract interpreter
    ({!Absint}): integer intervals with unbounded ends and per-column
    facts (interval plus definite non-nullness).

    The interval lattice is the classic one: elements are [lo, hi] with
    optional (= infinite) bounds ordered by inclusion, [meet] intersects,
    [join] takes the convex hull.  Any interval with [lo > hi] is empty
    (bottom); {!Itv.bot} is the canonical representative. *)

module Itv = struct
  type t = {
    lo : int option;  (** inclusive lower bound; [None] = -oo *)
    hi : int option;  (** inclusive upper bound; [None] = +oo *)
  }

  let top = { lo = None; hi = None }
  let bot = { lo = Some 1; hi = Some 0 }
  let of_bounds lo hi = { lo = Some lo; hi = Some hi }
  let at_least lo = { lo = Some lo; hi = None }
  let at_most hi = { lo = None; hi = Some hi }
  let singleton k = of_bounds k k

  let is_bot i =
    match (i.lo, i.hi) with Some l, Some h -> l > h | _ -> false

  let is_top i = i.lo = None && i.hi = None

  (* bound arithmetic: in lower-bound position [None] is -oo, in
     upper-bound position it is +oo *)
  let max_lo a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (max a b)

  let min_hi a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)

  let min_lo a b =
    match (a, b) with
    | None, _ | _, None -> None
    | Some a, Some b -> Some (min a b)

  let max_hi a b =
    match (a, b) with
    | None, _ | _, None -> None
    | Some a, Some b -> Some (max a b)

  let meet a b = { lo = max_lo a.lo b.lo; hi = min_hi a.hi b.hi }

  (* convex hull; bottoms are identities *)
  let join a b =
    if is_bot a then b
    else if is_bot b then a
    else { lo = min_lo a.lo b.lo; hi = max_hi a.hi b.hi }

  let mem k i =
    (match i.lo with Some l -> l <= k | None -> true)
    && match i.hi with Some h -> k <= h | None -> true

  (* [subset a b]: every element of [a] is in [b] *)
  let subset a b =
    is_bot a
    || (match b.lo with
       | None -> true
       | Some bl -> ( match a.lo with Some al -> bl <= al | None -> false))
       && (match b.hi with
          | None -> true
          | Some bh -> ( match a.hi with Some ah -> ah <= bh | None -> false))

  let pp ppf i =
    if is_bot i then Format.pp_print_string ppf "empty"
    else
      let bound inf ppf = function
        | Some k -> Format.pp_print_int ppf k
        | None -> Format.pp_print_string ppf inf
      in
      Format.fprintf ppf "[%a,%a]" (bound "-inf") i.lo (bound "+inf") i.hi
end

type col = {
  itv : Itv.t;
      (** bounds on the column's {e non-null} integer values (vacuous for
          non-integer columns, which stay at {!Itv.top}) *)
  nonnull : bool;  (** the column provably never holds NULL *)
}
(** One column's abstract value.  [itv] = {!Itv.bot} together with
    [nonnull] proves the relation empty; with [nonnull = false] it only
    says every value is NULL. *)

let col_top = { itv = Itv.top; nonnull = false }

(** No possible value at all: the refutation certificate. *)
let col_impossible (c : col) = c.nonnull && Itv.is_bot c.itv

let col_meet a b = { itv = Itv.meet a.itv b.itv; nonnull = a.nonnull || b.nonnull }
let col_join a b = { itv = Itv.join a.itv b.itv; nonnull = a.nonnull && b.nonnull }

let pp_col ppf c =
  Format.fprintf ppf "%a%s" Itv.pp c.itv (if c.nonnull then "!" else "")
