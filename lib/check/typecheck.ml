(** Pass 1: type inference and checking over scalar expressions
    ({!Tkr_relation.Expr}) and whole plans ({!Tkr_relation.Algebra}).

    The type lattice is [Value.ty] extended with an unknown element for
    NULL literals ([None]): NULL unifies with every type, int and float
    unify to float under arithmetic, everything else must match exactly.
    The checker never raises on malformed input — it accumulates
    diagnostics and keeps inferring with the best schema it has, so a
    single query can report several independent errors. *)

open Tkr_relation

type lookup = string -> Schema.t option
(** Tolerant catalog: [None] for unknown relations (reported as TKR003). *)

let is_numeric = function
  | None | Some Value.TInt | Some Value.TFloat -> true
  | _ -> false

let is_boolish = function None | Some Value.TBool -> true | _ -> false

(* SQL comparability: unknown compares with everything, numerics coerce,
   otherwise types must match ({!Value.sql_compare} raises otherwise). *)
let comparable a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some x, Some y when x = y -> true
  | Some Value.TInt, Some Value.TFloat | Some Value.TFloat, Some Value.TInt ->
      true
  | _ -> false

let pp_ty ppf = function
  | None -> Format.pp_print_string ppf "null"
  | Some ty -> Value.pp_ty ppf ty

(* Least upper bound of two inferable types, [Error ()] if incompatible. *)
let join a b =
  match (a, b) with
  | None, t | t, None -> Ok t
  | Some x, Some y when x = y -> Ok (Some x)
  | Some Value.TInt, Some Value.TFloat | Some Value.TFloat, Some Value.TInt ->
      Ok (Some Value.TFloat)
  | _ -> Error ()

(** Infer the type of [e] over [schema], accumulating diagnostics.
    Returns [None] for NULL-valued/unknown expressions. *)
let expr ~(schema : Schema.t) (e : Expr.t) : Value.ty option * Diagnostic.t list
    =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let n = Schema.arity schema in
  let rec infer (e : Expr.t) : Value.ty option =
    match e with
    | Expr.Col i ->
        if i < 0 || i >= n then (
          add
            (Diagnostic.error "TKR109"
               "column reference #%d out of range (schema has %d columns)" i n);
          None)
        else Some (Schema.ty schema i)
    | Expr.Const v -> Value.type_of v
    | Expr.Binop (op, a, b) ->
        let ta = infer a and tb = infer b in
        let opname =
          match op with
          | Expr.Add -> "+"
          | Expr.Sub -> "-"
          | Expr.Mul -> "*"
          | Expr.Div -> "/"
          | Expr.Mod -> "%"
        in
        List.iter
          (fun t ->
            if not (is_numeric t) then
              add
                (Diagnostic.error "TKR101"
                   "operand of %s has type %a; expected a numeric type" opname
                   pp_ty t))
          [ ta; tb ];
        if ta = Some Value.TFloat || tb = Some Value.TFloat then
          Some Value.TFloat
        else Some Value.TInt
    | Expr.Neg a ->
        let ta = infer a in
        if not (is_numeric ta) then
          add
            (Diagnostic.error "TKR101"
               "operand of unary minus has type %a; expected a numeric type"
               pp_ty ta);
        ta
    | Expr.Cmp (_, a, b) ->
        let ta = infer a and tb = infer b in
        if not (comparable ta tb) then
          add
            (Diagnostic.error "TKR102"
               "cannot compare %a with %a" pp_ty ta pp_ty tb);
        if a = Expr.Const Value.Null || b = Expr.Const Value.Null then
          add
            (Diagnostic.warning "TKR110"
               ~hint:"use IS NULL / IS NOT NULL"
               "comparison with NULL is always UNKNOWN");
        Some Value.TBool
    | Expr.And (a, b) | Expr.Or (a, b) ->
        require_bool a;
        require_bool b;
        Some Value.TBool
    | Expr.Not a ->
        require_bool a;
        Some Value.TBool
    | Expr.Is_null a ->
        ignore (infer a);
        Some Value.TBool
    | Expr.Like (a, _) ->
        let ta = infer a in
        (match ta with
        | None | Some Value.TStr -> ()
        | t ->
            add
              (Diagnostic.error "TKR104"
                 "LIKE applied to %a; expected text" pp_ty t));
        Some Value.TBool
    | Expr.In_list (a, vs) ->
        let ta = infer a in
        List.iter
          (fun v ->
            let tv = Value.type_of v in
            if not (comparable ta tv) then
              add
                (Diagnostic.error "TKR105"
                   "IN list element %a has type %a, incompatible with %a"
                   Value.pp v pp_ty tv pp_ty ta))
          vs;
        Some Value.TBool
    | Expr.Case (branches, default) ->
        List.iter (fun (c, _) -> require_bool c) branches;
        let results =
          List.map (fun (_, r) -> infer r) branches
          @ match default with Some d -> [ infer d ] | None -> []
        in
        List.fold_left
          (fun acc t ->
            match join acc t with
            | Ok u -> u
            | Error () ->
                add
                  (Diagnostic.error "TKR106"
                     "CASE branches have incompatible types %a and %a" pp_ty
                     acc pp_ty t);
                acc)
          None results
    | Expr.Greatest (a, b) | Expr.Least (a, b) -> (
        let ta = infer a and tb = infer b in
        if not (comparable ta tb) then
          add
            (Diagnostic.error "TKR102"
               "cannot compare %a with %a" pp_ty ta pp_ty tb);
        match join ta tb with Ok t -> t | Error () -> ta)
  and require_bool e =
    let t = infer e in
    if not (is_boolish t) then
      add
        (Diagnostic.error "TKR103"
           "condition has type %a; expected bool" pp_ty t)
  in
  let ty = infer e in
  (ty, List.rev !diags)

(** Check a predicate: well-typed and boolean.  [what] names the context
    ("WHERE clause", "join condition", ...) in the diagnostic. *)
let predicate ~(schema : Schema.t) ~(what : string) (e : Expr.t) :
    Diagnostic.t list =
  let ty, ds = expr ~schema e in
  if is_boolish ty then ds
  else
    ds
    @ [
        Diagnostic.error "TKR103" "%s has type %a; expected bool" what pp_ty ty;
      ]

(* Output type of a projection item, defaulting unknown to int (mirrors
   {!Expr.infer_ty}). *)
let proj_ty ty = Option.value ty ~default:Value.TInt

let agg_output_ty (input : Value.ty option) (f : Agg.func) : Value.ty =
  match f with
  | Agg.Count_star | Agg.Count _ -> Value.TInt
  | Agg.Avg _ -> Value.TFloat
  | Agg.Sum _ | Agg.Min _ | Agg.Max _ -> proj_ty input

(* Check one aggregate spec over a child schema; returns its output type. *)
let check_agg ~schema ~add (spec : Algebra.agg_spec) : Value.ty =
  let input =
    match Agg.input_expr spec.func with
    | None -> None
    | Some e ->
        let ty, ds = expr ~schema e in
        List.iter add ds;
        (match spec.func with
        | Agg.Sum _ | Agg.Avg _ ->
            if not (is_numeric ty) then
              add
                (Diagnostic.error "TKR107"
                   "%s over input of type %a; expected a numeric type"
                   (Agg.default_name spec.func)
                   pp_ty ty)
        | _ -> ());
        ty
  in
  agg_output_ty input spec.func

(** Tolerant schema inference over a plan: [None] as soon as a subtree's
    schema cannot be determined (unknown relation, out-of-range group
    index).  Never raises. *)
let schema_of ~(lookup : lookup) (q : Algebra.t) : Schema.t option =
  let open Algebra in
  let rec schema_of ~lookup q =
    match q with
  | Rel n -> lookup n
  | ConstRel (s, _) -> Some s
  | Select (_, q) | Distinct q | Coalesce q -> schema_of ~lookup q
  | Project (projs, q) ->
      Option.map
        (fun s ->
          Schema.make
            (List.map
               (fun (p : proj) ->
                 let ty, _ = expr ~schema:s p.expr in
                 Schema.attr p.name (proj_ty ty))
               projs))
        (schema_of ~lookup q)
  | Join (_, l, r) -> (
      match (schema_of ~lookup l, schema_of ~lookup r) with
      | Some a, Some b -> Some (Schema.concat a b)
      | _ -> None)
  | Union (l, _) | Diff (l, _) | Split (_, l, _) -> schema_of ~lookup l
  | Agg (group, aggs, q) ->
      Option.map
        (fun s ->
          let gattrs =
            List.map
              (fun (p : proj) ->
                let ty, _ = expr ~schema:s p.expr in
                Schema.attr p.name (proj_ty ty))
              group
          in
          let aattrs =
            List.map
              (fun (a : agg_spec) ->
                let input =
                  match Agg.input_expr a.func with
                  | None -> None
                  | Some e -> fst (expr ~schema:s e)
                in
                Schema.attr a.agg_name (agg_output_ty input a.func))
              aggs
          in
          Schema.make (gattrs @ aattrs))
        (schema_of ~lookup q)
  | Split_agg sa ->
      Option.bind (schema_of ~lookup sa.sa_child) (fun s ->
          let n = Schema.arity s in
          if List.exists (fun i -> i < 0 || i >= n) sa.sa_group then None
          else
            let gattrs = List.map (fun i -> Schema.get s i) sa.sa_group in
            let aattrs =
              List.map
                (fun (a : Algebra.agg_spec) ->
                  let input =
                    match Agg.input_expr a.func with
                    | None -> None
                    | Some e -> fst (expr ~schema:s e)
                  in
                  Schema.attr a.agg_name (agg_output_ty input a.func))
                sa.sa_aggs
            in
            Some
              (Schema.make
                 (gattrs @ aattrs
                 @ [
                     Schema.attr "__b" Value.TInt; Schema.attr "__e" Value.TInt;
                   ])))
  in
  schema_of ~lookup q

(** Type-check a whole plan: every expression at every operator, aggregate
    signatures, and union/difference schema compatibility (TKR108). *)
let algebra ~(lookup : lookup) (q : Algebra.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let seen_unknown = Hashtbl.create 4 in
  let rec go (q : Algebra.t) : Schema.t option =
    let open Algebra in
    match q with
    | Rel n -> (
        match lookup n with
        | Some s -> Some s
        | None ->
            if not (Hashtbl.mem seen_unknown n) then (
              Hashtbl.add seen_unknown n ();
              add (Diagnostic.error "TKR003" "unknown table %s" n));
            None)
    | ConstRel (s, _) -> Some s
    | Select (p, q0) ->
        let s = go q0 in
        Option.iter
          (fun s ->
            List.iter add (predicate ~schema:s ~what:"selection predicate" p))
          s;
        s
    | Project (projs, q0) ->
        Option.map
          (fun s ->
            Schema.make
              (List.map
                 (fun (pj : proj) ->
                   let ty, ds = expr ~schema:s pj.expr in
                   List.iter add ds;
                   Schema.attr pj.name (proj_ty ty))
                 projs))
          (go q0)
    | Join (p, l, r) ->
        let sl = go l and sr = go r in
        let s =
          match (sl, sr) with
          | Some a, Some b -> Some (Schema.concat a b)
          | _ -> None
        in
        Option.iter
          (fun s ->
            List.iter add (predicate ~schema:s ~what:"join condition" p))
          s;
        s
    | Union (l, r) | Diff (l, r) ->
        let opname = match q with Union _ -> "union" | _ -> "difference" in
        let sl = go l and sr = go r in
        (match (sl, sr) with
        | Some a, Some b when not (Schema.union_compatible a b) ->
            add
              (Diagnostic.error "TKR108"
                 "%s operands have incompatible schemas %a vs %a" opname
                 Schema.pp a Schema.pp b)
        | _ -> ());
        sl
    | Agg (group, aggs, q0) ->
        Option.map
          (fun s ->
            let gattrs =
              List.map
                (fun (pj : proj) ->
                  let ty, ds = expr ~schema:s pj.expr in
                  List.iter add ds;
                  Schema.attr pj.name (proj_ty ty))
                group
            in
            let aattrs =
              List.map
                (fun (a : agg_spec) ->
                  Schema.attr a.agg_name (check_agg ~schema:s ~add a))
                aggs
            in
            Schema.make (gattrs @ aattrs))
          (go q0)
    | Distinct q0 | Coalesce q0 -> go q0
    | Split (_, l, r) ->
        let sl = go l in
        ignore (go r);
        sl
    | Split_agg sa ->
        Option.bind (go sa.sa_child) (fun s ->
            let aattrs =
              List.map
                (fun (a : Algebra.agg_spec) ->
                  Schema.attr a.agg_name (check_agg ~schema:s ~add a))
                sa.sa_aggs
            in
            let n = Schema.arity s in
            if List.exists (fun i -> i < 0 || i >= n) sa.sa_group then None
            else
              let gattrs = List.map (fun i -> Schema.get s i) sa.sa_group in
              Some
                (Schema.make
                   (gattrs @ aattrs
                   @ [
                       Schema.attr "__b" Value.TInt;
                       Schema.attr "__e" Value.TInt;
                     ])))
  in
  ignore (go q);
  List.rev !diags
