(** Pass 3: snapshot-semantics linter (TKR301–TKR304).

    Capability profiles describe how an evaluation style compiles temporal
    operators; linting a logical plan under a profile statically predicts
    the paper's AG and BD snapshot-semantics bugs (Table 1). *)

open Tkr_relation

type difference_style =
  | Bag  (** faithful bag difference (monus) *)
  | Set  (** compiled as anti-join / NOT EXISTS: the BD bug *)
  | Unsupported  (** the style rejects difference outright *)

type profile = {
  prof_name : string;
  gap_coverage : bool;
      (** ungrouped aggregates produce rows over gaps (Section 6) *)
  difference : difference_style;
  coalesced_output : bool;  (** outputs are K-coalesced (Section 8) *)
}

val middleware : profile
(** This repo's REWR pipeline: no bugs. *)

val interval_preservation : profile
val alignment : profile
val teradata : profile
(** The three baseline styles of [lib/baseline] (paper's Table 1). *)

val profiles : profile list
val of_name : string -> profile option

val plan : profile -> Algebra.t -> Diagnostic.t list
(** Lint a logical plan under a profile. *)
