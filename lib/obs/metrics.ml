(** A lightweight metrics registry: named counters, monotonic-clock
    timers and fixed-bucket histograms.

    Metrics are find-or-create by name, so instrumentation sites don't
    need setup code; reads ([value], [snapshot], [to_json]) are cheap and
    never disturb the instruments.  A registry is a plain value — the
    engine, middleware and benchmarks each keep their own, and {!global}
    is a process-wide default for ad-hoc use.

    Every operation is safe under concurrent callers (threads or
    domains): counters are atomics, timers and histograms take a
    per-instrument mutex, and find-or-create is serialized on a
    per-registry mutex — the middleware and the query server share
    registries across their worker threads. *)

type counter = { count : int Atomic.t }

type gauge = { level : int Atomic.t }

type timer = {
  clock : Clock.t;
  tm_lock : Mutex.t;
  mutable total_ns : int64;
  mutable samples : int;
}

type histogram = {
  h_lock : Mutex.t;
  bounds : int array;  (** upper bucket bounds, ascending *)
  buckets : int array;  (** [Array.length bounds + 1] slots; last = overflow *)
  mutable observations : int;
  mutable sum : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Timer of timer
  | Histogram of histogram

type t = {
  reg_clock : Clock.t;
  reg_lock : Mutex.t;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (** registration order, reversed *)
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let create ?(clock = Clock.monotonic) () =
  { reg_clock = clock; reg_lock = Mutex.create (); tbl = Hashtbl.create 32; order = [] }

let global = create ()

let find_or_add t name make =
  locked t.reg_lock @@ fun () ->
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.tbl name m;
      t.order <- name :: t.order;
      m

let counter t name : counter =
  match find_or_add t name (fun () -> Counter { count = Atomic.make 0 }) with
  | Counter c -> c
  | _ -> invalid_arg ("metric " ^ name ^ " is not a counter")

let gauge t name : gauge =
  match find_or_add t name (fun () -> Gauge { level = Atomic.make 0 }) with
  | Gauge g -> g
  | _ -> invalid_arg ("metric " ^ name ^ " is not a gauge")

let timer t name : timer =
  match
    find_or_add t name (fun () ->
        Timer
          {
            clock = t.reg_clock;
            tm_lock = Mutex.create ();
            total_ns = 0L;
            samples = 0;
          })
  with
  | Timer tm -> tm
  | _ -> invalid_arg ("metric " ^ name ^ " is not a timer")

let default_bounds = [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000 |]

let histogram ?(bounds = default_bounds) t name : histogram =
  match
    find_or_add t name (fun () ->
        Histogram
          {
            h_lock = Mutex.create ();
            bounds;
            buckets = Array.make (Array.length bounds + 1) 0;
            observations = 0;
            sum = 0;
          })
  with
  | Histogram h -> h
  | _ -> invalid_arg ("metric " ^ name ^ " is not a histogram")

(* ---- instrument operations ---- *)

let incr (c : counter) = Atomic.incr c.count

let add (c : counter) n = ignore (Atomic.fetch_and_add c.count n)

let value (c : counter) = Atomic.get c.count

let set (g : gauge) v = Atomic.set g.level v

let gauge_add (g : gauge) n = ignore (Atomic.fetch_and_add g.level n)

let gauge_value (g : gauge) = Atomic.get g.level

let record_ns (tm : timer) ns =
  locked tm.tm_lock @@ fun () ->
  tm.total_ns <- Int64.add tm.total_ns ns;
  tm.samples <- tm.samples + 1

let time (tm : timer) (f : unit -> 'a) : 'a =
  let t0 = tm.clock () in
  let finish () = record_ns tm (Int64.sub (tm.clock ()) t0) in
  match f () with
  | r ->
      finish ();
      r
  | exception e ->
      finish ();
      raise e

let timer_total_ns (tm : timer) = locked tm.tm_lock (fun () -> tm.total_ns)
let timer_samples (tm : timer) = locked tm.tm_lock (fun () -> tm.samples)

let observe (h : histogram) v =
  locked h.h_lock @@ fun () ->
  let n = Array.length h.bounds in
  let rec slot i = if i >= n || v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.observations <- h.observations + 1;
  h.sum <- h.sum + v

let histogram_observations (h : histogram) =
  locked h.h_lock (fun () -> h.observations)

let histogram_sum (h : histogram) = locked h.h_lock (fun () -> h.sum)

let histogram_buckets (h : histogram) =
  locked h.h_lock (fun () -> Array.copy h.buckets)

let histogram_bounds (h : histogram) = Array.copy h.bounds

(** The [q]-quantile (q in [0,1]) estimated from the bucket counts by
    linear interpolation inside the covering bucket, the standard
    Prometheus [histogram_quantile] estimator.  The overflow bucket has
    no upper bound, so ranks landing there report the largest finite
    bound; an empty histogram reports 0. *)
(* zero one histogram in place, keeping its bounds: ring-buffer consumers
   (the serve ledger) recycle per-slot histograms when a slot is
   reassigned to a new owner *)
let histogram_reset (h : histogram) =
  locked h.h_lock @@ fun () ->
  Array.fill h.buckets 0 (Array.length h.buckets) 0;
  h.observations <- 0;
  h.sum <- 0

let histogram_quantile (h : histogram) (q : float) : int =
  let observations, buckets =
    locked h.h_lock (fun () -> (h.observations, Array.copy h.buckets))
  in
  if observations = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int observations in
    let nb = Array.length h.bounds in
    let rec go i cumulative =
      if i > nb then h.bounds.(nb - 1)
      else
        let cumulative' = cumulative +. float_of_int buckets.(i) in
        if cumulative' >= rank && buckets.(i) > 0 then
          if i >= nb then (* overflow bucket: no upper bound to interpolate to *)
            h.bounds.(nb - 1)
          else
            let lo = if i = 0 then 0. else float_of_int h.bounds.(i - 1) in
            let hi = float_of_int h.bounds.(i) in
            let inside = (rank -. cumulative) /. float_of_int buckets.(i) in
            int_of_float (lo +. ((hi -. lo) *. inside))
        else go (i + 1) cumulative'
    in
    if nb = 0 then 0 else go 0 0.
  end

let reset t =
  locked t.reg_lock @@ fun () ->
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Counter c -> Atomic.set c.count 0
      | Gauge g -> Atomic.set g.level 0
      | Timer tm ->
          locked tm.tm_lock @@ fun () ->
          tm.total_ns <- 0L;
          tm.samples <- 0
      | Histogram h ->
          locked h.h_lock @@ fun () ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.observations <- 0;
          h.sum <- 0)
    t.order

(* ---- export ---- *)

let names t = locked t.reg_lock (fun () -> List.rev t.order)

(** A read-only snapshot of one instrument, for exporters that must
    dispatch on the metric kind without find-or-create side effects. *)
type view =
  | V_counter of int
  | V_gauge of int
  | V_timer of int64 * int  (** total ns, samples *)
  | V_histogram of histogram

let view t name : view option =
  match locked t.reg_lock (fun () -> Hashtbl.find_opt t.tbl name) with
  | Some (Counter c) -> Some (V_counter (Atomic.get c.count))
  | Some (Gauge g) -> Some (V_gauge (Atomic.get g.level))
  | Some (Timer tm) ->
      Some (locked tm.tm_lock (fun () -> V_timer (tm.total_ns, tm.samples)))
  | Some (Histogram h) -> Some (V_histogram h)
  | None -> None

let metric_json = function
  | Counter c ->
      Json.Obj
        [ ("type", Json.Str "counter"); ("value", Json.Int (Atomic.get c.count)) ]
  | Gauge g ->
      Json.Obj
        [ ("type", Json.Str "gauge"); ("value", Json.Int (Atomic.get g.level)) ]
  | Timer tm ->
      let total_ns, samples =
        locked tm.tm_lock (fun () -> (tm.total_ns, tm.samples))
      in
      Json.Obj
        [
          ("type", Json.Str "timer");
          ("total_ns", Json.Int (Int64.to_int total_ns));
          ("samples", Json.Int samples);
        ]
  | Histogram h ->
      let observations, sum, buckets =
        locked h.h_lock (fun () -> (h.observations, h.sum, Array.copy h.buckets))
      in
      Json.Obj
        [
          ("type", Json.Str "histogram");
          ("observations", Json.Int observations);
          ("sum", Json.Int sum);
          ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Int b) h.bounds)));
          ("buckets", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) buckets)));
        ]

let to_json_value t : Json.t =
  Json.Obj
    (List.map
       (fun name ->
         (name, metric_json (locked t.reg_lock (fun () -> Hashtbl.find t.tbl name))))
       (names t))

let to_json t : string = Json.to_string (to_json_value t)

let pp ppf t =
  List.iter
    (fun name ->
      match locked t.reg_lock (fun () -> Hashtbl.find t.tbl name) with
      | Counter c -> Format.fprintf ppf "%-40s %12d@," name (Atomic.get c.count)
      | Gauge g -> Format.fprintf ppf "%-40s %12d@," name (Atomic.get g.level)
      | Timer tm ->
          let total_ns, samples =
            locked tm.tm_lock (fun () -> (tm.total_ns, tm.samples))
          in
          Format.fprintf ppf "%-40s %9.3f ms / %d samples@," name
            (Clock.ns_to_ms total_ns) samples
      | Histogram h ->
          let observations, sum =
            locked h.h_lock (fun () -> (h.observations, h.sum))
          in
          Format.fprintf ppf "%-40s %d obs, sum %d@," name observations sum)
    (names t)
