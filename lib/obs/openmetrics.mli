(** OpenMetrics / Prometheus text exposition.

    Counters export as [<name>_total], timers as [<name>_ns_total] /
    [<name>_samples_total], histograms as cumulative buckets
    ([<name>_bucket{le="..."}], [_sum], [_count]).  Names are sanitized
    to the OpenMetrics grammar and every document ends with [# EOF]. *)

val sanitize : string -> string
(** Map a metric name onto [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val escape_label : string -> string
(** Escape a label value (backslash, quote, newline). *)

val sample : ?labels:(string * string) list -> string -> float -> string
(** One exposition line: [name{labels} value]. *)

val type_line : string -> string -> string
(** A [# TYPE name kind] header line. *)

val gauge :
  ?help:string -> string -> ((string * string) list * float) list -> string
(** A gauge family, one sample per (labels, value) row. *)

val of_metrics : ?extra:string list -> Metrics.t -> string
(** A whole registry as an OpenMetrics document (ending in [# EOF]).
    [extra] pre-rendered families ({!gauge} output) are appended before
    the terminator. *)

val document : string list -> string
(** Concatenate pre-rendered families ({!gauge} output) and terminate
    with [# EOF]. *)
