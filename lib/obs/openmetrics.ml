(** OpenMetrics / Prometheus text exposition of a {!Metrics} registry.

    Counters become [<name>_total] counters, gauges bare [<name>]
    gauges, timers a pair of [<name>_ns_total] / [<name>_samples_total]
    counters, histograms the classic cumulative-bucket encoding
    ([<name>_bucket{le="..."}] up to
    [le="+Inf"], plus [_sum] and [_count]).  Metric names are sanitized
    to the OpenMetrics grammar; the document ends with the mandatory
    [# EOF] marker. *)

(* OpenMetrics names: [a-zA-Z_:][a-zA-Z0-9_:]* — everything else maps
   to '_' (a leading digit gets a '_' prefix) *)
let sanitize (name : string) : string =
  let ok i c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
    | '0' .. '9' -> i > 0
    | _ -> false
  in
  let buf = Buffer.create (String.length name + 1) in
  String.iteri
    (fun i c ->
      if ok i c then Buffer.add_char buf c
      else if i = 0 && (match c with '0' .. '9' -> true | _ -> false) then (
        Buffer.add_char buf '_';
        Buffer.add_char buf c)
      else Buffer.add_char buf '_')
    name;
  Buffer.contents buf

(* Label values: escape backslash, double quote, newline *)
let escape_label (v : string) : string =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_to_string = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
             labels)
      ^ "}"

(* a float rendered the way Prometheus clients do: integral values
   without a fraction, everything else with full precision *)
let float_repr (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(** One sample line: [name{labels} value]. *)
let sample ?(labels = []) name (value : float) : string =
  Printf.sprintf "%s%s %s\n" (sanitize name) (labels_to_string labels)
    (float_repr value)

(** One [# TYPE] header line. *)
let type_line name (ty : string) : string =
  Printf.sprintf "# TYPE %s %s\n" (sanitize name) ty

(** A gauge family with one sample per (labels, value) row — the building
    block used by the bench exporter. *)
let gauge ?(help = "") name (rows : ((string * string) list * float) list) :
    string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (type_line name "gauge");
  if help <> "" then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" (sanitize name) help);
  List.iter
    (fun (labels, v) -> Buffer.add_string buf (sample ~labels name v))
    rows;
  Buffer.contents buf

let render_metric buf name (v : Metrics.view) =
  match v with
  | Metrics.V_counter c ->
      Buffer.add_string buf (type_line (name ^ "_total") "counter");
      Buffer.add_string buf (sample (name ^ "_total") (float_of_int c))
  | Metrics.V_gauge g ->
      Buffer.add_string buf (type_line name "gauge");
      Buffer.add_string buf (sample name (float_of_int g))
  | Metrics.V_timer (total_ns, samples) ->
      Buffer.add_string buf (type_line (name ^ "_ns_total") "counter");
      Buffer.add_string buf (sample (name ^ "_ns_total") (Int64.to_float total_ns));
      Buffer.add_string buf (type_line (name ^ "_samples_total") "counter");
      Buffer.add_string buf (sample (name ^ "_samples_total") (float_of_int samples))
  | Metrics.V_histogram h ->
      let bounds = Metrics.histogram_bounds h in
      let buckets = Metrics.histogram_buckets h in
      Buffer.add_string buf (type_line name "histogram");
      let cumulative = ref 0 in
      Array.iteri
        (fun i count ->
          cumulative := !cumulative + count;
          let le =
            if i < Array.length bounds then string_of_int bounds.(i) else "+Inf"
          in
          Buffer.add_string buf
            (sample ~labels:[ ("le", le) ] (name ^ "_bucket")
               (float_of_int !cumulative)))
        buckets;
      Buffer.add_string buf
        (sample (name ^ "_sum") (float_of_int (Metrics.histogram_sum h)));
      Buffer.add_string buf
        (sample (name ^ "_count")
           (float_of_int (Metrics.histogram_observations h)))

(** The whole registry as an OpenMetrics document (with [# EOF]).
    [extra] families (pre-rendered with {!gauge}) are appended before the
    terminator — the hook for info-style metrics that live outside any
    registry (build info, environment). *)
let of_metrics ?(extra = []) (m : Metrics.t) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Metrics.view m name with
      | Some v -> render_metric buf name v
      | None -> ())
    (Metrics.names m);
  List.iter (Buffer.add_string buf) extra;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(** Wrap pre-rendered families ({!gauge} output) into a document. *)
let document (families : string list) : string =
  String.concat "" families ^ "# EOF\n"
