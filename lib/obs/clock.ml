(** Monotonic time source for all observability timings.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via bechamel's stubs, so
    timings are immune to wall-clock adjustments.  Everything in [Tkr_obs]
    takes the clock as a value so tests can substitute a deterministic
    one. *)

type t = unit -> int64
(** A clock yields a monotonically non-decreasing timestamp in
    nanoseconds. *)

let monotonic : t = Monotonic_clock.now

let now_ns () : int64 = monotonic ()

let frozen : t = fun () -> 0L
(** A clock stuck at 0: every measured duration is exactly zero.  Used by
    tests that compare traces across backends. *)

(** Elapsed nanoseconds of [f ()], alongside its result. *)
let elapsed ?(clock = monotonic) (f : unit -> 'a) : int64 * 'a =
  let t0 = clock () in
  let r = f () in
  (Int64.sub (clock ()) t0, r)

let ns_to_ms (ns : int64) : float = Int64.to_float ns /. 1e6
