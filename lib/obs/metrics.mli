(** A lightweight metrics registry: named counters, gauges,
    monotonic-clock timers and fixed-bucket histograms, find-or-create by
    name.

    Thread-safe: counters and gauges are atomics, timers/histograms take
    a per-instrument mutex and registration is serialized, so one
    registry can be shared by concurrent threads or domains. *)

type counter
type gauge
type timer
type histogram
type t

val create : ?clock:Clock.t -> unit -> t
val global : t
(** A process-wide default registry. *)

val counter : t -> string -> counter
(** Find-or-create. @raise Invalid_argument on a kind mismatch. *)

val gauge : t -> string -> gauge
(** Find-or-create.  A gauge is a level that can go up and down —
    queue depths, in-flight requests, cache residency — exported without
    the [_total] suffix counters get. *)

val timer : t -> string -> timer
val histogram : ?bounds:int array -> t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit
(** [gauge_add g n] moves the level by [n] (negative to decrease). *)

val gauge_value : gauge -> int

val record_ns : timer -> int64 -> unit
val time : timer -> (unit -> 'a) -> 'a
(** Time a thunk with the registry's clock (exception-safe). *)

val timer_total_ns : timer -> int64
val timer_samples : timer -> int

val observe : histogram -> int -> unit
(** Count [v] into the first bucket whose bound is [>= v] (last bucket is
    the overflow). *)

val histogram_observations : histogram -> int
val histogram_sum : histogram -> int
val histogram_buckets : histogram -> int array
val histogram_bounds : histogram -> int array

val histogram_reset : histogram -> unit
(** Zero this histogram's buckets, observations and sum, keeping its
    bounds — for consumers that recycle instruments (e.g. a ring-buffer
    ledger reassigning a slot's histogram to a new owner). *)

val histogram_quantile : histogram -> float -> int
(** The [q]-quantile (q in [0,1]) estimated by linear interpolation
    inside the covering bucket (the Prometheus [histogram_quantile]
    estimator).  Ranks in the overflow bucket report the largest finite
    bound; an empty histogram reports 0. *)

val reset : t -> unit
(** Zero every instrument, keeping registrations. *)

val names : t -> string list
(** Registration order. *)

(** A read-only snapshot of one instrument, for exporters that must
    dispatch on the metric kind without find-or-create side effects. *)
type view =
  | V_counter of int
  | V_gauge of int
  | V_timer of int64 * int  (** total ns, samples *)
  | V_histogram of histogram

val view : t -> string -> view option

val to_json_value : t -> Json.t
val to_json : t -> string
val pp : Format.formatter -> t -> unit
