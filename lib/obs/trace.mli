(** Span-based execution traces with pluggable sinks.

    The {!disabled} collector (the default everywhere) makes {!with_span}
    run its body with no span, no timing and no allocation beyond the
    call — instrumentation is effectively free unless a caller opts in
    with {!create}. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span
(** A node of a trace tree: name, attributes, children, duration. *)

type t
(** A trace collector. *)

val disabled : t
(** The no-op collector: spans are never created. *)

val create : ?clock:Clock.t -> ?gc:bool -> unit -> t
(** An enabled collector.  [clock] defaults to the monotonic clock; tests
    pass {!Clock.frozen} for zero, deterministic durations.  With
    [~gc:true] every span is annotated on finish with the GC/allocation
    delta of its body: {!gc_minor_words}/{!gc_major_words} (floats, in
    words) and {!gc_minor_collections}/{!gc_major_collections} (ints). *)

val gc_minor_words : string
val gc_major_words : string
val gc_minor_collections : string
val gc_major_collections : string
(** Attribute names used by [~gc:true] profiling. *)

val par_jobs : string
val par_chunks : string
val par_steals : string
val par_merge_ns : string
val par_domains : string
(** Attribute names set by pool-aware operators: jobs, chunk count, chunks
    executed off the calling domain, ordered-merge time, and a per-domain
    [slot:chunks/busy-ms] attribution string. *)

val enabled : t -> bool

val with_span : t -> string -> (span option -> 'a) -> 'a
(** [with_span t name f] runs [f (Some span)] timing it into a fresh child
    of the innermost open span (or a new root), or [f None] if [t] is
    disabled.  Exception-safe: the span is finished either way. *)

val roots : t -> span list
(** Finished top-level spans, oldest first. *)

val clear : t -> unit
(** Drop all finished and open spans (collector reuse). *)

val set : span option -> string -> value -> unit
(** No-op on [None], so instrumentation sites need no match. *)

val set_int : span option -> string -> int -> unit
val set_float : span option -> string -> float -> unit
val set_str : span option -> string -> string -> unit
val set_bool : span option -> string -> bool -> unit

val name : span -> string
val elapsed_ns : span -> int64
val children : span -> span list
val attrs : span -> (string * value) list
(** Insertion order. *)

val find_attr : span -> string -> value option
val iter : (span -> unit) -> span -> unit
(** Pre-order. *)

val to_text : ?show_time:bool -> span -> string
(** One operator per line, [key=value] attributes, children indented. *)

val to_json_value : span -> Json.t
val to_json : span -> string

val of_json_value : Json.t -> span
(** Rebuild a span tree from the {!to_json_value} dump format (missing
    fields default sensibly), so stored traces can be re-rendered. *)

val to_folded : span -> string
(** Folded-stack (flamegraph-collapse) rendering: one
    [root;child;leaf <self-ns>] line per span, self time clamped at zero.
    Compatible with [flamegraph.pl] and speedscope. *)

type sink = Noop | Text of out_channel | Json_chan of out_channel | Fn of (span -> unit)

val noop : sink
val emit : sink -> span -> unit
val emit_all : sink -> t -> unit
