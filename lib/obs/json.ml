(** A minimal JSON document builder — just enough for the metrics/trace
    sinks and the benchmark dumps, so the observability layer adds no
    external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

(* A recursive-descent parser for the documents the sinks above produce
   (and ordinary JSON in general).  Numbers without '.', 'e' or 'E' parse
   as [Int], everything else as [Float]. *)
let of_string (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, found %c" c c'
    | None -> fail "expected %c, found end of input" c
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then (
      pos := !pos + m;
      v)
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "invalid \\u escape %s" hex
                   in
                   (* basic-multilingual-plane code points as UTF-8 *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then (
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
                   else (
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))));
                   pos := !pos + 4
               | c -> fail "invalid escape \\%c" c);
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "invalid number %s" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "invalid number %s" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character %c" c
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- accessors (for readers of the bench/trace dumps) ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> items | _ -> []

let to_string_opt = function Str s -> Some s | _ -> None

let to_int_opt = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None

let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
