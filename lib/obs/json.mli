(** A minimal JSON document builder for the observability sinks. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering with proper string escaping. *)
