(** A minimal JSON document builder for the observability sinks. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering with proper string escaping. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a JSON document (inverse of {!to_string}; accepts ordinary JSON).
    Numbers without a fraction or exponent parse as [Int].
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list : t -> t list
(** Items of a [List]; [[]] on other constructors. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
(** [Int] directly, [Float] truncated. *)

val to_float_opt : t -> float option
(** [Float] directly, [Int] widened. *)
