(** Monotonic time source for observability timings. *)

type t = unit -> int64
(** A clock yields a monotonically non-decreasing timestamp in
    nanoseconds. *)

val monotonic : t
(** The real monotonic clock (CLOCK_MONOTONIC). *)

val now_ns : unit -> int64

val frozen : t
(** Always 0: measured durations are exactly zero (deterministic tests). *)

val elapsed : ?clock:t -> (unit -> 'a) -> int64 * 'a
(** Elapsed nanoseconds of a thunk, alongside its result. *)

val ns_to_ms : int64 -> float
