(** Span-based execution traces.

    A collector is either {!disabled} — the default, in which case
    {!with_span} runs its body with no span and no timing, making
    instrumentation effectively free — or created with {!create}, in which
    case each [with_span] produces a node of a trace tree annotated with a
    monotonic-clock duration and arbitrary key/value attributes (rows
    in/out, join strategy, coalesce segment counts, ...).

    Finished trees are rendered by the pluggable sinks: {!to_text} for the
    EXPLAIN ANALYZE operator tree and {!to_json_value}/{!to_json} for
    machine-readable dumps. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_name : string;
  mutable sp_attrs : (string * value) list;  (** reversed insertion order *)
  mutable sp_children : span list;  (** reversed *)
  mutable sp_elapsed_ns : int64;
}

type state = {
  clock : Clock.t;
  mutable stack : (span * int64) list;  (** open spans with start times *)
  mutable finished : span list;  (** finished root spans, reversed *)
}

type t = Disabled | Enabled of state

let disabled = Disabled
let create ?(clock = Clock.monotonic) () = Enabled { clock; stack = []; finished = [] }
let enabled = function Disabled -> false | Enabled _ -> true

let with_span (t : t) (name : string) (f : span option -> 'a) : 'a =
  match t with
  | Disabled -> f None
  | Enabled st ->
      let sp = { sp_name = name; sp_attrs = []; sp_children = []; sp_elapsed_ns = 0L } in
      let t0 = st.clock () in
      st.stack <- (sp, t0) :: st.stack;
      let finish () =
        sp.sp_elapsed_ns <- Int64.sub (st.clock ()) t0;
        (match st.stack with
        | (top, _) :: rest when top == sp -> st.stack <- rest
        | _ -> ());
        match st.stack with
        | (parent, _) :: _ -> parent.sp_children <- sp :: parent.sp_children
        | [] -> st.finished <- sp :: st.finished
      in
      (match f (Some sp) with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e)

let roots = function Disabled -> [] | Enabled st -> List.rev st.finished

let clear = function
  | Disabled -> ()
  | Enabled st ->
      st.stack <- [];
      st.finished <- []

(* ---- attributes ---- *)

let set (sp : span option) key v =
  match sp with None -> () | Some sp -> sp.sp_attrs <- (key, v) :: sp.sp_attrs

let set_int sp key i = set sp key (Int i)
let set_str sp key s = set sp key (Str s)
let set_bool sp key b = set sp key (Bool b)

(* ---- span accessors ---- *)

let name sp = sp.sp_name
let elapsed_ns sp = sp.sp_elapsed_ns
let children sp = List.rev sp.sp_children
let attrs sp = List.rev sp.sp_attrs
let find_attr sp key = List.assoc_opt key (attrs sp)

let rec iter f sp =
  f sp;
  List.iter (iter f) (children sp)

(* ---- sinks ---- *)

let pp_value ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%s" s
  | Bool b -> Format.fprintf ppf "%b" b

(** One operator per line, attributes as [key=value], children indented. *)
let to_text ?(show_time = true) (sp : span) : string =
  let buf = Buffer.create 256 in
  let rec go indent sp =
    Buffer.add_string buf indent;
    Buffer.add_string buf sp.sp_name;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Format.asprintf "  %s=%a" k pp_value v))
      (attrs sp);
    if show_time then
      Buffer.add_string buf
        (Printf.sprintf "  [%.3f ms]" (Clock.ns_to_ms sp.sp_elapsed_ns));
    Buffer.add_char buf '\n';
    List.iter (go (indent ^ "  ")) (children sp)
  in
  go "" sp;
  Buffer.contents buf

let value_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let rec to_json_value (sp : span) : Json.t =
  Json.Obj
    [
      ("op", Json.Str sp.sp_name);
      ("elapsed_ns", Json.Int (Int64.to_int sp.sp_elapsed_ns));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_json v)) (attrs sp)));
      ("children", Json.List (List.map to_json_value (children sp)));
    ]

let to_json (sp : span) : string = Json.to_string (to_json_value sp)

type sink = Noop | Text of out_channel | Json_chan of out_channel | Fn of (span -> unit)

let noop = Noop

let emit (sink : sink) (sp : span) =
  match sink with
  | Noop -> ()
  | Text oc ->
      output_string oc (to_text sp);
      flush oc
  | Json_chan oc ->
      output_string oc (to_json sp);
      output_char oc '\n';
      flush oc
  | Fn f -> f sp

let emit_all (sink : sink) (t : t) = List.iter (emit sink) (roots t)
