(** Span-based execution traces.

    A collector is either {!disabled} — the default, in which case
    {!with_span} runs its body with no span and no timing, making
    instrumentation effectively free — or created with {!create}, in which
    case each [with_span] produces a node of a trace tree annotated with a
    monotonic-clock duration and arbitrary key/value attributes (rows
    in/out, join strategy, coalesce segment counts, ...).

    Finished trees are rendered by the pluggable sinks: {!to_text} for the
    EXPLAIN ANALYZE operator tree and {!to_json_value}/{!to_json} for
    machine-readable dumps. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_name : string;
  mutable sp_attrs : (string * value) list;  (** reversed insertion order *)
  mutable sp_children : span list;  (** reversed *)
  mutable sp_elapsed_ns : int64;
}

type state = {
  clock : Clock.t;
  gc : bool;  (** annotate every span with GC/allocation deltas *)
  mutable stack : (span * int64 * (float * Gc.stat) option) list;
      (** open spans with start times and (when profiling) start GC
          stats; the float is [Gc.minor_words ()], which is precise
          between collections where [quick_stat]'s minor_words is not *)
  mutable finished : span list;  (** finished root spans, reversed *)
}

type t = Disabled | Enabled of state

let disabled = Disabled

let create ?(clock = Clock.monotonic) ?(gc = false) () =
  Enabled { clock; gc; stack = []; finished = [] }

let enabled = function Disabled -> false | Enabled _ -> true

(* GC/allocation attribute names, shared with the profiling consumers *)
let gc_minor_words = "gc_minor_words"
let gc_major_words = "gc_major_words"
let gc_minor_collections = "gc_minor_collections"
let gc_major_collections = "gc_major_collections"

(* parallel-plan attribute names, set by pool-aware operators so EXPLAIN
   ANALYZE shows the chunk decomposition and per-domain attribution *)
let par_jobs = "par_jobs"
let par_chunks = "chunks"
let par_steals = "steals"
let par_merge_ns = "merge_ns"
let par_domains = "domains"

let with_span (t : t) (name : string) (f : span option -> 'a) : 'a =
  match t with
  | Disabled -> f None
  | Enabled st ->
      let sp = { sp_name = name; sp_attrs = []; sp_children = []; sp_elapsed_ns = 0L } in
      let gc0 =
        if st.gc then Some (Gc.minor_words (), Gc.quick_stat ()) else None
      in
      let t0 = st.clock () in
      st.stack <- (sp, t0, gc0) :: st.stack;
      let finish () =
        sp.sp_elapsed_ns <- Int64.sub (st.clock ()) t0;
        (match gc0 with
        | None -> ()
        | Some (mw0, g0) ->
            let mw1 = Gc.minor_words () in
            let g1 = Gc.quick_stat () in
            sp.sp_attrs <-
              (gc_major_collections, Int (g1.major_collections - g0.major_collections))
              :: (gc_minor_collections, Int (g1.minor_collections - g0.minor_collections))
              :: (gc_major_words, Float (g1.major_words -. g0.major_words))
              :: (gc_minor_words, Float (mw1 -. mw0))
              :: sp.sp_attrs);
        (match st.stack with
        | (top, _, _) :: rest when top == sp -> st.stack <- rest
        | _ -> ());
        match st.stack with
        | (parent, _, _) :: _ -> parent.sp_children <- sp :: parent.sp_children
        | [] -> st.finished <- sp :: st.finished
      in
      (match f (Some sp) with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e)

let roots = function Disabled -> [] | Enabled st -> List.rev st.finished

let clear = function
  | Disabled -> ()
  | Enabled st ->
      st.stack <- [];
      st.finished <- []

(* ---- attributes ---- *)

let set (sp : span option) key v =
  match sp with None -> () | Some sp -> sp.sp_attrs <- (key, v) :: sp.sp_attrs

let set_int sp key i = set sp key (Int i)
let set_float sp key f = set sp key (Float f)
let set_str sp key s = set sp key (Str s)
let set_bool sp key b = set sp key (Bool b)

(* ---- span accessors ---- *)

let name sp = sp.sp_name
let elapsed_ns sp = sp.sp_elapsed_ns
let children sp = List.rev sp.sp_children
let attrs sp = List.rev sp.sp_attrs
let find_attr sp key = List.assoc_opt key (attrs sp)

let rec iter f sp =
  f sp;
  List.iter (iter f) (children sp)

(* ---- sinks ---- *)

let pp_value ppf = function
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%s" s
  | Bool b -> Format.fprintf ppf "%b" b

(** One operator per line, attributes as [key=value], children indented. *)
let to_text ?(show_time = true) (sp : span) : string =
  let buf = Buffer.create 256 in
  let rec go indent sp =
    Buffer.add_string buf indent;
    Buffer.add_string buf sp.sp_name;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Format.asprintf "  %s=%a" k pp_value v))
      (attrs sp);
    if show_time then
      Buffer.add_string buf
        (Printf.sprintf "  [%.3f ms]" (Clock.ns_to_ms sp.sp_elapsed_ns));
    Buffer.add_char buf '\n';
    List.iter (go (indent ^ "  ")) (children sp)
  in
  go "" sp;
  Buffer.contents buf

let value_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let rec to_json_value (sp : span) : Json.t =
  Json.Obj
    [
      ("op", Json.Str sp.sp_name);
      ("elapsed_ns", Json.Int (Int64.to_int sp.sp_elapsed_ns));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, value_json v)) (attrs sp)));
      ("children", Json.List (List.map to_json_value (children sp)));
    ]

let to_json (sp : span) : string = Json.to_string (to_json_value sp)

(** Inverse of {!to_json_value}: rebuild a span tree from a trace dump, so
    stored traces (bench JSON files) can be re-rendered by any sink. *)
let rec of_json_value (j : Json.t) : span =
  let str_of = function
    | Json.Str s -> s
    | Json.Int i -> string_of_int i
    | Json.Float f -> Printf.sprintf "%g" f
    | Json.Bool b -> string_of_bool b
    | Json.Null -> "null"
    | Json.List _ | Json.Obj _ -> "?"
  in
  let attr_value = function
    | Json.Int i -> Int i
    | Json.Float f -> Float f
    | Json.Bool b -> Bool b
    | v -> Str (str_of v)
  in
  {
    sp_name = (match Json.member "op" j with Some v -> str_of v | None -> "?");
    sp_elapsed_ns =
      (match Option.bind (Json.member "elapsed_ns" j) Json.to_int_opt with
      | Some ns -> Int64.of_int ns
      | None -> 0L);
    sp_attrs =
      (match Json.member "attrs" j with
      | Some (Json.Obj fields) ->
          List.rev_map (fun (k, v) -> (k, attr_value v)) fields
      | _ -> []);
    sp_children =
      (match Json.member "children" j with
      | Some (Json.List items) -> List.rev_map of_json_value items
      | _ -> []);
  }

(** Folded-stack (flamegraph-collapse) rendering: one line per span,
    [root;child;grandchild <self-time-ns>], self time being the span's
    elapsed time minus its children's (clamped at zero).  Feed the output
    straight to [flamegraph.pl] or speedscope. *)
let to_folded (sp : span) : string =
  let buf = Buffer.create 256 in
  (* frame separators inside names would corrupt the stack structure *)
  let frame name =
    String.map (function ';' -> ',' | '\n' | ' ' -> '_' | c -> c) name
  in
  let rec go prefix sp =
    let stack =
      if prefix = "" then frame sp.sp_name else prefix ^ ";" ^ frame sp.sp_name
    in
    let kids = children sp in
    let child_ns =
      List.fold_left (fun acc c -> Int64.add acc c.sp_elapsed_ns) 0L kids
    in
    let self = Int64.sub sp.sp_elapsed_ns child_ns in
    let self = if Int64.compare self 0L < 0 then 0L else self in
    Buffer.add_string buf (Printf.sprintf "%s %Ld\n" stack self);
    List.iter (go stack) kids
  in
  go "" sp;
  Buffer.contents buf

type sink = Noop | Text of out_channel | Json_chan of out_channel | Fn of (span -> unit)

let noop = Noop

let emit (sink : sink) (sp : span) =
  match sink with
  | Noop -> ()
  | Text oc ->
      output_string oc (to_text sp);
      flush oc
  | Json_chan oc ->
      output_string oc (to_json sp);
      output_char oc '\n';
      flush oc
  | Fn f -> f sp

let emit_all (sink : sink) (t : t) = List.iter (emit sink) (roots t)
