module Middleware = Tkr_middleware.Middleware

type session = {
  sid : int;
  stmts : (string, int * Middleware.prepared) Hashtbl.t;
      (* statement text -> (middleware epoch at prepare time, plan);
         entries from an older epoch are stale — the plan baked catalog
         state (time bounds, schema arities) that has since changed *)
  s_lock : Mutex.t;
  mutable counted : bool;  (* still counted in the manager's [live] *)
}

type manager = {
  max_sessions : int;
  mutable next_id : int;
  mutable live : int;
  m_lock : Mutex.t;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let manager ~max_sessions =
  { max_sessions; next_id = 1; live = 0; m_lock = Mutex.create () }

let open_session m =
  locked m.m_lock @@ fun () ->
  if m.live >= m.max_sessions then None
  else begin
    let sid = m.next_id in
    m.next_id <- sid + 1;
    m.live <- m.live + 1;
    Some { sid; stmts = Hashtbl.create 16; s_lock = Mutex.create (); counted = true }
  end

(* idempotent: connection teardown can race with server drain *)
let close m s =
  locked m.m_lock @@ fun () ->
  if s.counted then begin
    s.counted <- false;
    m.live <- m.live - 1
  end

let id s = s.sid
let active m = locked m.m_lock (fun () -> m.live)

let prepared s mw stmt =
  (* fast path under the session lock; prepare outside it so slow
     preparations don't serialize unrelated statements of the session.
     Callers executing the plan run this under Middleware.read_locked, so
     the epoch cannot move between the check and the execution; outside
     that bracket a concurrent mutation at worst stores an entry that is
     already stale, which the next lookup re-prepares. *)
  let ep = Middleware.epoch mw in
  match locked s.s_lock (fun () -> Hashtbl.find_opt s.stmts stmt) with
  | Some (e, p) when e = ep -> p
  | Some _ | None ->
      let p = Middleware.prepare mw stmt in
      locked s.s_lock (fun () ->
          match Hashtbl.find_opt s.stmts stmt with
          | Some (e, winner) when e = ep ->
              winner (* another thread of this session won *)
          | _ ->
              Hashtbl.replace s.stmts stmt (ep, p);
              p)

let prepared_count s = locked s.s_lock (fun () -> Hashtbl.length s.stmts)
