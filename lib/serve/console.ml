(** Pure rendering for [tkr_cli top]: scrape JSON in, one text frame
    out.  Keeping this side-effect free is what makes the console
    golden-testable, zero-window edge cases included. *)

module Json = Tkr_obs.Json

let jint j key =
  Option.value ~default:0 (Option.bind (Json.member key j) Json.to_int_opt)

let jstr j key =
  Option.value ~default:"" (Option.bind (Json.member key j) Json.to_string_opt)

let jobj j key = Option.value ~default:(Json.Obj []) (Json.member key j)
let mib b = float_of_int b /. (1024. *. 1024.)

let truncate_stmt s =
  let s = String.map (function '\n' | '\t' -> ' ' | c -> c) s in
  if String.length s <= 48 then s else String.sub s 0 45 ^ "..."

(* request rate over the window, rendered defensively: before the first
   full window (prev_requests < 0) or with a degenerate interval there
   is no rate to show — print "-" rather than nan/inf *)
let qps_text ~interval ~prev_requests ~requests =
  if prev_requests < 0 || interval <= 0.0 then "-"
  else
    Printf.sprintf "%.1f" (float_of_int (requests - prev_requests) /. interval)

(* cache hit rate as a percentage; 0.0 (never nan) when nothing has
   looked the cache up yet *)
let hit_rate_pct ~hits ~misses =
  let looked = hits + misses in
  if looked <= 0 then 0.0 else 100. *. float_of_int hits /. float_of_int looked

let frame ~host ~port ~interval ~prev_requests ~stats ~health ~ledger () :
    string =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let requests = jint stats "requests" in
  let lat = jobj stats "latency_us" in
  let cache = jobj stats "cache" in
  pr "tkr top — %s:%d   %s   up %ds\n" host port (jstr health "status")
    (jint stats "uptime_s");
  pr "requests  %d   (%s req/s)   errors %d   busy %d   deadline %d\n"
    requests
    (qps_text ~interval ~prev_requests ~requests)
    (jint stats "errors") (jint stats "busy")
    (jint stats "deadline_exceeded");
  pr "sessions  %d   queue %d   inflight %d   pool domains %d\n"
    (jint stats "sessions") (jint stats "queue_depth") (jint stats "inflight")
    (jint stats "pool_domains");
  pr "latency   p50 %d us   p95 %d us   p99 %d us   (%d samples)\n"
    (jint lat "p50") (jint lat "p95") (jint lat "p99") (jint lat "count");
  pr
    "cache     hit %.1f%%   entries %d   %.1f/%.1f MiB   evictions %d   \
     invalidations %d\n"
    (hit_rate_pct ~hits:(jint cache "hits") ~misses:(jint cache "misses"))
    (jint cache "entries")
    (mib (jint cache "bytes"))
    (mib (jint cache "max_bytes"))
    (jint cache "evictions") (jint cache "invalidations");
  (match Json.member "index" stats with
  | Some (Json.Obj _ as idx) ->
      let enabled =
        match Json.member "enabled" idx with
        | Some (Json.Bool b) -> b
        | _ -> false
      in
      pr
        "index     %s   built %d   rebuilds %d   probes %d   candidates %d\n"
        (if enabled then "on " else "off")
        (jint idx "built") (jint idx "rebuilds") (jint idx "probes")
        (jint idx "candidates")
  | _ -> ());
  (match Json.member "slowest" stats with
  | Some (Json.List (_ :: _ as slow)) ->
      pr "slowest plans:\n";
      pr "  %-14s %6s %9s %9s  %s\n" "fingerprint" "count" "max ms" "avg ms"
        "stmt";
      List.iter
        (fun e ->
          let count = max 1 (jint e "count") in
          pr "  %-14s %6d %9.1f %9.1f  %s\n" (jstr e "fingerprint")
            (jint e "count")
            (float_of_int (jint e "max_us") /. 1000.)
            (float_of_int (jint e "total_us") /. float_of_int count /. 1000.)
            (truncate_stmt (jstr e "stmt")))
        slow
  | _ -> ());
  (match Option.map (fun l -> Json.member "rows" l) ledger with
  | Some (Some (Json.List (_ :: _ as rows))) ->
      pr "ledger (top by wall time):\n";
      pr "  %-14s %6s %9s %9s %6s %9s  %s\n" "fingerprint" "count" "wall ms"
        "p95 ms" "hit%" "rows" "stmt";
      List.iter
        (fun r ->
          pr "  %-14s %6d %9.1f %9.1f %5.1f%% %9d  %s\n" (jstr r "fingerprint")
            (jint r "count")
            (float_of_int (jint r "total_us") /. 1000.)
            (float_of_int (jint r "p95_us") /. 1000.)
            (hit_rate_pct ~hits:(jint r "hits") ~misses:(jint r "misses"))
            (jint r "rows_out")
            (truncate_stmt (jstr r "stmt")))
        rows
  | _ -> ());
  Buffer.contents buf
