(** The Tkr_serve wire protocol: length-prefixed JSON frames.

    Every message is one frame: a 4-byte big-endian payload length
    followed by that many bytes of JSON.  Values round-trip exactly —
    floats travel as hexadecimal literals ([%h]) so a cached result is
    byte-identical to a fresh one and the client renders the same text
    the server-side engine would. *)

open Tkr_relation
module Json = Tkr_obs.Json
module Table = Tkr_engine.Table

exception Protocol_error of string

let max_frame = 256 * 1024 * 1024
(** Hard frame cap (256 MiB): anything larger is a protocol error, not an
    allocation attempt. *)

(* ---- frame I/O ---- *)

let really_write fd (buf : Bytes.t) =
  let len = Bytes.length buf in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd buf !off (len - !off) in
    if n = 0 then raise (Protocol_error "short write");
    off := !off + n
  done

(* [exact = true]: EOF mid-read is a protocol error; [false]: EOF before
   the first byte is a clean close ([None]). *)
let really_read fd len : Bytes.t option =
  let buf = Bytes.create len in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    match Unix.read fd buf !off (len - !off) with
    | 0 -> eof := true
    | n -> off := !off + n
  done;
  if !off = len then Some buf
  else if !off = 0 then None
  else raise (Protocol_error "truncated frame")

let write_frame fd (payload : string) =
  let n = String.length payload in
  if n > max_frame then raise (Protocol_error "frame too large");
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  really_write fd buf

let read_frame fd : string option =
  match really_read fd 4 with
  | None -> None
  | Some hdr ->
      let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if n < 0 || n > max_frame then
        raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
      (match really_read fd n with
      | Some body -> Some (Bytes.to_string body)
      | None -> raise (Protocol_error "truncated frame"))

(* ---- values and tables ---- *)

let ty_to_string = function
  | Value.TBool -> "bool"
  | Value.TInt -> "int"
  | Value.TFloat -> "float"
  | Value.TStr -> "text"

let ty_of_string = function
  | "bool" -> Value.TBool
  | "int" -> Value.TInt
  | "float" -> Value.TFloat
  | "text" -> Value.TStr
  | s -> raise (Protocol_error ("unknown column type " ^ s))

(* floats as [%h] hex literals: exact bit-level round-trip, so rendering
   client-side reproduces the server's bytes *)
let value_to_json : Value.t -> Json.t = function
  | Value.Null -> Json.Null
  | Value.Bool b -> Json.Bool b
  | Value.Int i -> Json.Int i
  | Value.Str s -> Json.Str s
  | Value.Float f -> Json.Obj [ ("f", Json.Str (Printf.sprintf "%h" f)) ]

let value_of_json : Json.t -> Value.t = function
  | Json.Null -> Value.Null
  | Json.Bool b -> Value.Bool b
  | Json.Int i -> Value.Int i
  | Json.Str s -> Value.Str s
  | Json.Obj [ ("f", Json.Str h) ] -> (
      match float_of_string_opt h with
      | Some f -> Value.Float f
      | None -> raise (Protocol_error ("bad float literal " ^ h)))
  | Json.Float f -> Value.Float f  (* lenient: hand-written clients *)
  | _ -> raise (Protocol_error "bad value")

let table_to_json (t : Table.t) : Json.t =
  Json.Obj
    [
      ("kind", Json.Str "rows");
      ( "schema",
        Json.List
          (List.map
             (fun (a : Schema.attr) ->
               Json.List [ Json.Str a.name; Json.Str (ty_to_string a.ty) ])
             (Schema.attrs (Table.schema t))) );
      ( "rows",
        Json.List
          (Array.to_list
             (Array.map
                (fun row ->
                  Json.List
                    (List.map value_to_json
                       (Array.to_list (row : Tuple.t :> Value.t array))))
                (Table.rows t))) );
    ]

let table_of_json (j : Json.t) : Table.t =
  let attr = function
    | Json.List [ Json.Str name; Json.Str ty ] ->
        Schema.attr name (ty_of_string ty)
    | _ -> raise (Protocol_error "bad schema attribute")
  in
  let schema =
    match Json.member "schema" j with
    | Some (Json.List attrs) -> Schema.make (List.map attr attrs)
    | _ -> raise (Protocol_error "missing schema")
  in
  let row = function
    | Json.List vs ->
        Tuple.of_array (Array.of_list (List.map value_of_json vs))
    | _ -> raise (Protocol_error "bad row")
  in
  match Json.member "rows" j with
  | Some (Json.List rows) ->
      Table.of_array schema (Array.of_list (List.map row rows))
  | _ -> raise (Protocol_error "missing rows")

(* ---- requests ---- *)

type request = {
  id : int;
  stmt : string;
  deadline_ms : int option;
      (** time budget from receipt; expired requests are cancelled while
          queued and answered with [Deadline_exceeded] *)
  trace : bool;  (** attach the Tkr_obs execution trace to the response *)
  trace_id : string option;
      (** client-supplied correlation id, echoed on the response and
          stamped on every server-side event-log line for this request *)
}

let request ?(id = 0) ?deadline_ms ?(trace = false) ?trace_id stmt =
  { id; stmt; deadline_ms; trace; trace_id }

let request_to_json (r : request) : Json.t =
  Json.Obj
    (("id", Json.Int r.id) :: ("stmt", Json.Str r.stmt)
    :: ((match r.deadline_ms with
        | Some ms -> [ ("deadline_ms", Json.Int ms) ]
        | None -> [])
       @ (if r.trace then [ ("trace", Json.Bool true) ] else [])
       @ (match r.trace_id with
         | Some tid -> [ ("trace_id", Json.Str tid) ]
         | None -> [])))

let request_of_json (j : Json.t) : request =
  let stmt =
    match Option.bind (Json.member "stmt" j) Json.to_string_opt with
    | Some s -> s
    | None -> raise (Protocol_error "request without stmt")
  in
  {
    id =
      Option.value ~default:0
        (Option.bind (Json.member "id" j) Json.to_int_opt);
    stmt;
    deadline_ms = Option.bind (Json.member "deadline_ms" j) Json.to_int_opt;
    trace = (match Json.member "trace" j with Some (Json.Bool b) -> b | _ -> false);
    trace_id = Option.bind (Json.member "trace_id" j) Json.to_string_opt;
  }

(* ---- responses ---- *)

type error_code =
  | Parse_error  (** the statement does not lex/parse *)
  | Check_error  (** rejected by the static check phase *)
  | Runtime_error  (** semantic or execution failure *)
  | Server_busy  (** admission queue above high-water: back off and retry *)
  | Deadline_exceeded  (** cancelled while queued past its deadline *)
  | Server_shutdown  (** draining: no new work accepted *)
  | Session_limit  (** connection rejected: too many sessions *)
  | Protocol_violation  (** malformed frame or request *)

let error_code_to_string = function
  | Parse_error -> "PARSE_ERROR"
  | Check_error -> "CHECK_ERROR"
  | Runtime_error -> "RUNTIME_ERROR"
  | Server_busy -> "SERVER_BUSY"
  | Deadline_exceeded -> "DEADLINE_EXCEEDED"
  | Server_shutdown -> "SERVER_SHUTDOWN"
  | Session_limit -> "SESSION_LIMIT"
  | Protocol_violation -> "PROTOCOL_ERROR"

let error_code_of_string = function
  | "PARSE_ERROR" -> Parse_error
  | "CHECK_ERROR" -> Check_error
  | "RUNTIME_ERROR" -> Runtime_error
  | "SERVER_BUSY" -> Server_busy
  | "DEADLINE_EXCEEDED" -> Deadline_exceeded
  | "SERVER_SHUTDOWN" -> Server_shutdown
  | "SESSION_LIMIT" -> Session_limit
  | "PROTOCOL_ERROR" -> Protocol_violation
  | s -> raise (Protocol_error ("unknown error code " ^ s))

type error = { code : error_code; message : string }

type body = Rows of Table.t | Message of string

type response = {
  rsp_id : int;
  cached : bool;  (** served from the snapshot-aware result cache *)
  elapsed_us : int;  (** server-side queue wait + execution *)
  body : (body, error) result;
  rsp_trace : Json.t option;  (** execution trace when the request opted in *)
  rsp_trace_id : string option;
      (** the correlation id the server logged this request under:
          echoes the request's [trace_id], or a server-generated id when
          telemetry is on and the client sent none *)
}

(** The result payload as JSON text — this exact string is what the
    result cache stores, so cached responses are byte-identical. *)
let body_to_payload (b : body) : string =
  match b with
  | Rows t -> Json.to_string (table_to_json t)
  | Message s ->
      Json.to_string
        (Json.Obj [ ("kind", Json.Str "done"); ("message", Json.Str s) ])

let body_of_payload (payload : Json.t) : body =
  match Option.bind (Json.member "kind" payload) Json.to_string_opt with
  | Some "rows" -> Rows (table_of_json payload)
  | Some "done" -> (
      match Option.bind (Json.member "message" payload) Json.to_string_opt with
      | Some m -> Message m
      | None -> raise (Protocol_error "done without message"))
  | _ -> raise (Protocol_error "bad payload kind")

(* the payload travels pre-rendered (possibly straight from the cache):
   splice it into the envelope as-is.  [trace_id] is omitted entirely
   when [None], keeping frames byte-identical to a telemetry-free
   server for clients that never send one. *)
let ok_frame ~id ~cached ~elapsed_us ?trace ?trace_id (payload : string) :
    string =
  let buf = Buffer.create (String.length payload + 96) in
  Buffer.add_string buf
    (Printf.sprintf {|{"id":%d,"status":"ok","cached":%b,"elapsed_us":%d|} id
       cached elapsed_us);
  (match trace_id with
  | Some tid ->
      Buffer.add_string buf {|,"trace_id":|};
      Buffer.add_string buf (Json.to_string (Json.Str tid))
  | None -> ());
  (match trace with
  | Some t ->
      Buffer.add_string buf {|,"trace":|};
      Buffer.add_string buf (Json.to_string t)
  | None -> ());
  Buffer.add_string buf {|,"result":|};
  Buffer.add_string buf payload;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* invert [ok_frame]: the payload is everything between the first
   result-key marker and the closing brace.  The marker's quotes are
   unescaped, and any quote inside a serialized JSON string (trace_id,
   trace) travels backslash-escaped, so the first occurrence is always
   the envelope's own key. *)
let ok_frame_payload (frame : string) : string option =
  let marker = {|,"result":|} in
  let mlen = String.length marker in
  let flen = String.length frame in
  let rec find i =
    if i + mlen > flen then None
    else if String.sub frame i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | Some start when flen > start && frame.[flen - 1] = '}' ->
      Some (String.sub frame start (flen - start - 1))
  | _ -> None

let error_frame ~id ?trace_id (e : error) : string =
  Json.to_string
    (Json.Obj
       ([
          ("id", Json.Int id);
          ("status", Json.Str "error");
          ("code", Json.Str (error_code_to_string e.code));
          ("message", Json.Str e.message);
        ]
       @ match trace_id with
         | Some tid -> [ ("trace_id", Json.Str tid) ]
         | None -> []))

let response_of_string (s : string) : response =
  let j = Json.of_string s in
  let rsp_id =
    Option.value ~default:0 (Option.bind (Json.member "id" j) Json.to_int_opt)
  in
  match Option.bind (Json.member "status" j) Json.to_string_opt with
  | Some "ok" ->
      let payload =
        match Json.member "result" j with
        | Some p -> p
        | None -> raise (Protocol_error "ok response without result")
      in
      {
        rsp_id;
        cached =
          (match Json.member "cached" j with Some (Json.Bool b) -> b | _ -> false);
        elapsed_us =
          Option.value ~default:0
            (Option.bind (Json.member "elapsed_us" j) Json.to_int_opt);
        body = Ok (body_of_payload payload);
        rsp_trace = Json.member "trace" j;
        rsp_trace_id = Option.bind (Json.member "trace_id" j) Json.to_string_opt;
      }
  | Some "error" ->
      let code =
        match Option.bind (Json.member "code" j) Json.to_string_opt with
        | Some c -> error_code_of_string c
        | None -> raise (Protocol_error "error response without code")
      in
      let message =
        Option.value ~default:""
          (Option.bind (Json.member "message" j) Json.to_string_opt)
      in
      {
        rsp_id;
        cached = false;
        elapsed_us = 0;
        body = Error { code; message };
        rsp_trace = None;
        rsp_trace_id = Option.bind (Json.member "trace_id" j) Json.to_string_opt;
      }
  | _ -> raise (Protocol_error "response without status")

(* ---- greeting ---- *)

let proto_version = 1

let greeting_frame ~session_id : string =
  Json.to_string
    (Json.Obj
       [
         ("server", Json.Str "tkr_serve");
         ("proto", Json.Int proto_version);
         ("session", Json.Int session_id);
       ])

(** [Ok session_id] on a greeting, [Error e] on a rejection frame. *)
let greeting_of_string (s : string) : (int, error) result =
  let j = Json.of_string s in
  match Json.member "session" j with
  | Some (Json.Int id) -> Ok id
  | _ -> (
      match Option.bind (Json.member "code" j) Json.to_string_opt with
      | Some c ->
          Error
            {
              code = error_code_of_string c;
              message =
                Option.value ~default:""
                  (Option.bind (Json.member "message" j) Json.to_string_opt);
            }
      | None -> raise (Protocol_error "bad greeting"))
