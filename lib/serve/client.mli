(** Synchronous client for the Tkr_serve wire protocol.

    One connection, one request in flight at a time (the server supports
    pipelining; this client keeps the simple call/response shape the CLI
    and tests need).  Thread-safe: concurrent callers serialize on an
    internal lock.  For concurrency, open one client per thread. *)

type t

exception Server_error of Wire.error
(** Raised by {!run_exn} and {!connect} (for [SESSION_LIMIT]
    rejections). *)

val connect : ?host:string -> port:int -> unit -> t
(** Dial, read the greeting.
    @raise Server_error when the server rejects the connection.
    @raise Unix.Unix_error when the server is unreachable. *)

val session_id : t -> int

val request : t -> Wire.request -> Wire.response
(** Send one request and wait for its response.
    @raise Wire.Protocol_error when the response id does not match the
    request id (desynchronized stream). *)

val run :
  ?deadline_ms:int -> ?trace:bool -> ?trace_id:string -> t -> string ->
  Wire.response
(** {!request} with an auto-assigned id.  [trace_id] is the correlation
    id the server stamps on its event-log lines for this request and
    echoes on the response. *)

val run_exn :
  ?deadline_ms:int -> ?trace:bool -> ?trace_id:string -> t -> string ->
  Wire.response
(** Like {!run} but raises {!Server_error} on error responses. *)

val close : t -> unit
(** Idempotent. *)

val with_client : ?host:string -> port:int -> (t -> 'a) -> 'a
(** Connect, run, always close. *)
