(** The Tkr_serve wire protocol: length-prefixed JSON frames.

    Frame format: a 4-byte big-endian payload length followed by that
    many bytes of JSON (frames above {!max_frame} are protocol errors).
    A connection opens with a server {e greeting} (or a rejection), then
    carries independent request/response pairs correlated by [id] —
    responses may arrive out of order when a client pipelines.

    Floats are encoded as OCaml [%h] hexadecimal literals, so every value
    round-trips bit-exactly: rendering a wire table client-side produces
    the same bytes as rendering it in the server process, which is what
    lets the result cache replay stored payloads verbatim. *)

open Tkr_relation
module Json = Tkr_obs.Json
module Table = Tkr_engine.Table

exception Protocol_error of string

val max_frame : int
(** Hard frame cap (256 MiB). *)

val proto_version : int

(* ---- frame I/O ---- *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> string option
(** [None] on a clean peer close before the first header byte.
    @raise Protocol_error on truncated or oversized frames. *)

(* ---- values and tables ---- *)

val value_to_json : Value.t -> Json.t
val value_of_json : Json.t -> Value.t
val table_to_json : Table.t -> Json.t
val table_of_json : Json.t -> Table.t

(* ---- requests ---- *)

type request = {
  id : int;
  stmt : string;
  deadline_ms : int option;
      (** time budget from receipt; requests still queued past it are
          cancelled with [Deadline_exceeded] *)
  trace : bool;  (** attach the Tkr_obs execution trace to the response *)
  trace_id : string option;
      (** client-supplied correlation id, echoed on the response and
          stamped on every server-side event-log line for this request *)
}

val request :
  ?id:int ->
  ?deadline_ms:int ->
  ?trace:bool ->
  ?trace_id:string ->
  string ->
  request
val request_to_json : request -> Json.t
val request_of_json : Json.t -> request

(* ---- responses ---- *)

type error_code =
  | Parse_error
  | Check_error
  | Runtime_error
  | Server_busy
  | Deadline_exceeded
  | Server_shutdown
  | Session_limit
  | Protocol_violation

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code

type error = { code : error_code; message : string }

type body = Rows of Table.t | Message of string

type response = {
  rsp_id : int;
  cached : bool;  (** served from the snapshot-aware result cache *)
  elapsed_us : int;
  body : (body, error) result;
  rsp_trace : Json.t option;
  rsp_trace_id : string option;
      (** the correlation id the server logged this request under:
          echoes the request's [trace_id], or a server-generated id when
          telemetry is on and the client sent none *)
}

val body_to_payload : body -> string
(** The result payload as JSON text — the exact string the result cache
    stores, so cached responses are byte-identical to fresh ones. *)

val body_of_payload : Json.t -> body

val ok_frame :
  id:int ->
  cached:bool ->
  elapsed_us:int ->
  ?trace:Json.t ->
  ?trace_id:string ->
  string ->
  string
(** Assemble an ok envelope around a pre-rendered payload string.  The
    [trace_id] field is omitted entirely when [None], so frames stay
    byte-identical to a telemetry-free server for clients that never
    send one. *)

val ok_frame_payload : string -> string option
(** Recover the exact payload bytes from an assembled ok frame — the
    inverse of {!ok_frame}, used by replay to digest responses the way
    the recorder digested them (no reparse, no re-render).  [None] if
    the frame is not an ok envelope. *)

val error_frame : id:int -> ?trace_id:string -> error -> string
val response_of_string : string -> response

(* ---- greeting ---- *)

val greeting_frame : session_id:int -> string
val greeting_of_string : string -> (int, error) result
(** [Ok session_id] on a greeting, [Error e] on a rejection frame. *)
