(** Pure rendering for [tkr_cli top].

    [frame] turns one round of scrape payloads ([STATS], [HEALTH] and
    optionally [LEDGER]) into the text frame the console prints.  It is
    deliberately side-effect free so the output — including the
    zero-window edge cases — can be golden-tested: a first frame
    ([prev_requests < 0]) or a degenerate [interval] renders the request
    rate as ["-"], and an untouched cache renders a [0.0%%] hit rate;
    neither ever prints [nan] or [inf]. *)

module Json = Tkr_obs.Json

val qps_text : interval:float -> prev_requests:int -> requests:int -> string
(** ["-"] before the first full window or when [interval <= 0];
    otherwise the rate over the window with one decimal. *)

val hit_rate_pct : hits:int -> misses:int -> float
(** Hit percentage; [0.0] when there were no lookups (never [nan]). *)

val frame :
  host:string ->
  port:int ->
  interval:float ->
  prev_requests:int ->
  stats:Json.t ->
  health:Json.t ->
  ledger:Json.t option ->
  unit ->
  string
(** Render one frame.  [stats]/[health] are the parsed scrape payloads;
    [ledger] is the parsed [LEDGER] payload when the server supports it
    ([None] omits the panel — older servers answer the statement with a
    parse error).  Missing JSON fields render as zero. *)
