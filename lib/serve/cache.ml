(** Snapshot-aware result cache: LRU over payload strings, entries keyed
    on the normalized plan and guarded by [(table, version)] dependency
    sets.  See the interface for the equivalence argument. *)

module Json = Tkr_obs.Json

type node = {
  key : string;
  deps : (string * int) list;  (* sorted by table name *)
  payload : string;
  rows : int;  (* result cardinality, carried so hits can report rows_out *)
  size : int;
  mutable prev : node;
  mutable next : node;
}

type t = {
  max_bytes : int;
  tbl : (string, node) Hashtbl.t;
  sent : node;  (* sentinel: [sent.next] is most recent, [sent.prev] least *)
  lock : Mutex.t;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
  max_bytes : int;
}

let make_sentinel () =
  let rec s =
    { key = ""; deps = []; payload = ""; rows = 0; size = 0; prev = s; next = s }
  in
  s

let create ~max_bytes =
  {
    max_bytes = (if max_bytes < 0 then 0 else max_bytes);
    tbl = Hashtbl.create 64;
    sent = make_sentinel ();
    lock = Mutex.create ();
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let enabled (c : t) = c.max_bytes > 0

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

(* ---- intrusive LRU list (all under the lock) ---- *)

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front c n =
  n.next <- c.sent.next;
  n.prev <- c.sent;
  c.sent.next.prev <- n;
  c.sent.next <- n

let remove c n =
  unlink n;
  Hashtbl.remove c.tbl n.key;
  c.bytes <- c.bytes - n.size

let normalize_deps deps =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) deps

type outcome =
  | Hit of string * int  (* payload, result cardinality *)
  | Miss
  | Stale of (string * int) list
      (* the dependencies that moved, at their current versions *)

let lookup (c : t) ~key ~deps : outcome =
  if not (enabled c) then Miss
  else
    locked c @@ fun () ->
    match Hashtbl.find_opt c.tbl key with
    | None ->
        c.misses <- c.misses + 1;
        Miss
    | Some n ->
        let now = normalize_deps deps in
        if n.deps = now then (
          unlink n;
          push_front c n;
          c.hits <- c.hits + 1;
          Hit (n.payload, n.rows))
        else (
          (* a dependency moved on: the entry can never hit again *)
          let changed =
            List.filter (fun d -> not (List.mem d n.deps)) now
          in
          remove c n;
          c.invalidations <- c.invalidations + 1;
          c.misses <- c.misses + 1;
          Stale changed)

let find (c : t) ~key ~deps =
  match lookup c ~key ~deps with
  | Hit (p, _) -> Some p
  | Miss | Stale _ -> None

let add (c : t) ?(rows = 0) ~key ~deps payload =
  let size = String.length payload in
  if (not (enabled c)) || size > c.max_bytes then 0
  else
    locked c @@ fun () ->
    (match Hashtbl.find_opt c.tbl key with
    | Some old -> remove c old
    | None -> ());
    let n =
      let rec n =
        {
          key;
          deps = normalize_deps deps;
          payload;
          rows;
          size;
          prev = n;
          next = n;
        }
      in
      n
    in
    Hashtbl.replace c.tbl key n;
    push_front c n;
    c.bytes <- c.bytes + size;
    let evicted = ref 0 in
    while c.bytes > c.max_bytes do
      let lru = c.sent.prev in
      remove c lru;
      c.evictions <- c.evictions + 1;
      incr evicted
    done;
    !evicted

let invalidate_table (c : t) name =
  if not (enabled c) then 0
  else
    let name = String.lowercase_ascii name in
    locked c @@ fun () ->
    let victims =
      Hashtbl.fold
        (fun _ n acc ->
          if List.exists (fun (t, _) -> String.lowercase_ascii t = name) n.deps
          then n :: acc
          else acc)
        c.tbl []
    in
    List.iter
      (fun n ->
        remove c n;
        c.invalidations <- c.invalidations + 1)
      victims;
    List.length victims

let clear (c : t) =
  locked c @@ fun () ->
  Hashtbl.reset c.tbl;
  c.sent.next <- c.sent;
  c.sent.prev <- c.sent;
  c.bytes <- 0

let stats (c : t) : stats =
  locked c @@ fun () ->
  {
    hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    invalidations = c.invalidations;
    entries = Hashtbl.length c.tbl;
    bytes = c.bytes;
    max_bytes = c.max_bytes;
  }

let stats_json c =
  let s = stats c in
  Json.Obj
    [
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
      ("invalidations", Json.Int s.invalidations);
      ("entries", Json.Int s.entries);
      ("bytes", Json.Int s.bytes);
      ("max_bytes", Json.Int s.max_bytes);
    ]
