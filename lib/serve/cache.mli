(** Snapshot-aware result cache.

    An entry is keyed on the normalized final plan of a query and guarded
    by its dependency set: the [(table, version)] pairs the plan reads,
    with versions from {!Tkr_engine.Database.version}.  A lookup whose
    current versions differ from the stored ones invalidates that entry —
    any load, INSERT, UPDATE, DELETE or DROP of a dependency bumps its
    version, so a hit proves the cached bytes equal a fresh evaluation
    (table states are immutable per version).

    Entries hold the serialized result payload itself, so replaying a hit
    is byte-identical to re-executing and re-serializing.

    Eviction is LRU under a byte budget.  All operations are mutex-locked
    and safe for concurrent callers. *)

type t

type stats = {
  hits : int;
  misses : int;  (** lookups that found nothing usable (includes stale) *)
  evictions : int;  (** entries dropped for the byte budget *)
  invalidations : int;  (** entries dropped because a dependency moved *)
  entries : int;
  bytes : int;  (** payload bytes currently held *)
  max_bytes : int;
}

val create : max_bytes:int -> t
(** [max_bytes <= 0] disables the cache: every lookup misses and
    {!add} is a no-op. *)

val enabled : t -> bool

type outcome =
  | Hit of string * int
      (** the stored payload and its result cardinality (as passed to
          {!add} — lets hit paths report rows served without reparsing
          the payload) *)
  | Miss  (** no entry for the key *)
  | Stale of (string * int) list
      (** entry dropped: these dependencies moved (at current versions) *)

val lookup : t -> key:string -> deps:(string * int) list -> outcome
(** [Hit (payload, rows)] iff an entry for [key] exists and its recorded
    dependency versions equal [deps] (compared order-insensitively).
    A stale entry is removed, counted as an invalidation, and reported
    with its changed dependencies — the hook for invalidation
    telemetry. *)

val find : t -> key:string -> deps:(string * int) list -> string option
(** [lookup] collapsed to an option (rows dropped). *)

val add :
  t -> ?rows:int -> key:string -> deps:(string * int) list -> string -> int
(** Insert (or replace) an entry, then evict least-recently-used entries
    until the byte budget holds; returns how many entries were evicted,
    so callers can feed a live eviction metric.  A payload alone above
    the budget is not stored (returns 0, as does a disabled cache). *)

val invalidate_table : t -> string -> int
(** Drop every entry depending on the table (case-insensitive); returns
    the number dropped.  Version checks already make stale entries
    unreachable — this is for explicit RELOAD-style eviction of the
    bytes. *)

val clear : t -> unit
val stats : t -> stats
val stats_json : t -> Tkr_obs.Json.t
